// Package nvm simulates a PCM-like byte-addressable non-volatile memory
// device (the paper's evaluations run on Intel Optane, one kind of PCM).
//
// The simulator models exactly what the paper measures:
//
//   - per-write bit flips (PCM cells are written individually, so flipped
//     bits — not written words — determine energy and wear);
//   - cache-line write granularity: unchanged 64 B cache lines are skipped
//     by the controller, which is where the latency win in the paper's
//     Figure 1 comes from;
//   - per-segment write counts and optional per-bit wear counters (Fig 19);
//   - an in-controller wear-leveling unit (start-gap style) that swaps a
//     memory segment every ψ writes, matching the paper's §2.1 model;
//   - an energy model charging the literature's PCM constants per flipped
//     bit (≈50 pJ/b to write, ≈2 pJ/b to read) plus fixed access overheads.
//
// All methods are safe for concurrent use.
package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Config describes the simulated device geometry and cost model.
type Config struct {
	// SegmentSize is the size in bytes of one memory segment (the unit of
	// allocation handed out by the dynamic address pool).
	SegmentSize int
	// NumSegments is the number of segments in the device's data zone.
	NumSegments int
	// CacheLineSize is the controller write granularity in bytes. Cache
	// lines whose content is unchanged are not written. Default 64.
	CacheLineSize int

	// WriteEnergyPerBitPJ is the energy to flip one PCM cell (default 50,
	// the PCM figure the paper quotes in its introduction).
	WriteEnergyPerBitPJ float64
	// ReadEnergyPerBitPJ is the energy to sense one bit during the
	// read-before-write or a read operation (default 2).
	ReadEnergyPerBitPJ float64
	// AccessOverheadPJ is the fixed per-operation controller/bus energy
	// (default 2000 pJ).
	AccessOverheadPJ float64

	// WriteBaseLatencyNs is the fixed write latency (default 300 ns,
	// Optane-class). Each dirty cache line adds WriteLineLatencyNs
	// (default 100 ns); clean lines are skipped.
	WriteBaseLatencyNs float64
	WriteLineLatencyNs float64
	// ReadLatencyNs is the latency of reading one segment (default 170 ns
	// plus 10 ns per cache line).
	ReadLatencyNs     float64
	ReadLineLatencyNs float64

	// WearLevelPeriod is ψ: the controller performs one start-gap segment
	// move every ψ segment writes. 0 disables wear leveling.
	WearLevelPeriod int

	// TrackBitWear enables per-bit flip counters (needed for the Fig 19
	// CDFs; costs 4 bytes of host memory per device bit, so keep pools
	// modest when enabled).
	TrackBitWear bool

	// EnduranceWrites is the per-cell write endurance budget used by
	// lifetime estimates and the wear-out fault model (default 1e8).
	EnduranceWrites float64

	// Fault configures probabilistic cell wear-out (see fault.go). The zero
	// value disables it.
	Fault FaultConfig

	// EmulateLatency makes Read/ReadInto/Write also impose their modeled
	// latency on the host clock: the call busy-spins until the modeled
	// nanoseconds have elapsed since it began, the way a CPU stalls on a
	// synchronous NVM load. Accounting is unchanged — the same LatencyNs
	// totals accumulate either way. Off by default; wall-clock benchmarks
	// opt in so their tail latencies include device time, not just host
	// simulation softcosts.
	EmulateLatency bool

	// VerifyWrites models a controller that reads back after programming:
	// when a write leaves stuck cells disagreeing with the requested data,
	// Write returns ErrWornOut (the WriteResult still reports the cost and
	// FaultyBits). Without it, callers must inspect WriteResult.FaultyBits.
	VerifyWrites bool
}

// DefaultConfig returns the cost-model defaults described in DESIGN.md §6
// for a device with the given geometry.
func DefaultConfig(segSize, numSegs int) Config {
	return Config{
		SegmentSize:         segSize,
		NumSegments:         numSegs,
		CacheLineSize:       64,
		WriteEnergyPerBitPJ: 50,
		ReadEnergyPerBitPJ:  2,
		AccessOverheadPJ:    2000,
		WriteBaseLatencyNs:  300,
		WriteLineLatencyNs:  100,
		ReadLatencyNs:       170,
		ReadLineLatencyNs:   10,
		WearLevelPeriod:     0,
		EnduranceWrites:     1e8,
	}
}

func (c *Config) validate() error {
	if c.SegmentSize <= 0 {
		return fmt.Errorf("nvm: SegmentSize %d must be positive: %w", c.SegmentSize, ErrBadConfig)
	}
	if c.NumSegments <= 0 {
		return fmt.Errorf("nvm: NumSegments %d must be positive: %w", c.NumSegments, ErrBadConfig)
	}
	if c.CacheLineSize <= 0 {
		c.CacheLineSize = 64
	}
	if c.WriteEnergyPerBitPJ == 0 {
		c.WriteEnergyPerBitPJ = 50
	}
	if c.ReadEnergyPerBitPJ == 0 {
		c.ReadEnergyPerBitPJ = 2
	}
	if c.AccessOverheadPJ == 0 {
		c.AccessOverheadPJ = 2000
	}
	if c.WriteBaseLatencyNs == 0 {
		c.WriteBaseLatencyNs = 300
	}
	if c.WriteLineLatencyNs == 0 {
		c.WriteLineLatencyNs = 100
	}
	if c.ReadLatencyNs == 0 {
		c.ReadLatencyNs = 170
	}
	if c.ReadLineLatencyNs == 0 {
		c.ReadLineLatencyNs = 10
	}
	if c.EnduranceWrites == 0 {
		c.EnduranceWrites = 1e8
	}
	return c.Fault.validate()
}

// ErrBadAddress is returned for out-of-range segment addresses.
var ErrBadAddress = errors.New("nvm: segment address out of range")

// ErrBadConfig is returned by NewDevice for an invalid geometry.
var ErrBadConfig = errors.New("nvm: invalid device config")

// ErrSegmentSize is returned when a buffer's length does not match the
// device's segment size.
var ErrSegmentSize = errors.New("nvm: buffer length != segment size")

// WriteResult reports the cost of a single segment write.
type WriteResult struct {
	BitsFlipped  int     // PCM cells actually flipped
	BitsWritten  int     // payload bits presented by the caller
	LinesWritten int     // dirty cache lines the controller had to write
	LinesSkipped int     // clean cache lines skipped
	EnergyPJ     float64 // energy charged for this operation
	LatencyNs    float64 // modeled device latency
	WearLevelOps int     // segment moves triggered by the wear-leveling unit
	FaultyBits   int     // stuck cells left disagreeing with the written data
}

// Stats is a snapshot of cumulative device activity.
type Stats struct {
	Writes           uint64
	Reads            uint64
	BitsFlipped      uint64
	BitsWritten      uint64
	BitsRead         uint64
	LinesWritten     uint64
	LinesSkipped     uint64
	WearLevelMoves   uint64
	WearLevelFlips   uint64
	EnergyPJ         float64
	WriteLatencyNs   float64
	ReadLatencyNs    float64
	MaxSegmentWrites uint64
	FaultEvents      uint64 // wear-out events (probabilistic or injected)
	StuckBits        uint64 // total cells currently stuck device-wide
	FailedSegments   uint64 // segments fenced by FailSegment
	FaultyWrites     uint64 // writes that left FaultyBits > 0 or hit a failed segment
}

// Device is a simulated PCM device.
type Device struct {
	cfg Config

	mu        sync.Mutex
	mem       []byte   // NumSegments * SegmentSize bytes (physical layout)
	segWrites []uint64 // per logical segment: write-op count
	bitWear   []uint32 // optional per logical bit: flip count

	// Start-gap wear leveling state. Physical slots number NumSegments+1;
	// the extra slot is the roaming gap. logical l maps to physical
	// (l + start) mod (N+1), skipping the gap.
	gapPos        int
	start         int
	writesSinceWL int

	// Fault state, all indexed by physical slot (NumSegments+1 entries) and
	// lazily allocated so fault-free devices pay nothing. See fault.go.
	rng       *rand.Rand // private fault RNG, nil when wear faults are off
	stuckMask [][]byte   // per slot: bitmask of stuck cells (nil = none)
	stuckVal  [][]byte   // per slot: the values those cells are stuck at
	failedSeg []bool     // per slot: fenced by FailSegment

	stats Stats
}

// NewDevice creates a device with cfg, with all cells initialized to zero.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{
		cfg:       cfg,
		mem:       make([]byte, (cfg.NumSegments+1)*cfg.SegmentSize),
		segWrites: make([]uint64, cfg.NumSegments),
		gapPos:    cfg.NumSegments, // gap starts in the spare slot
	}
	if cfg.TrackBitWear {
		d.bitWear = make([]uint32, cfg.NumSegments*cfg.SegmentSize*8)
	}
	if cfg.Fault.ProbPerWrite > 0 {
		d.rng = rand.New(rand.NewSource(cfg.Fault.Seed))
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumSegments returns the number of logical segments.
func (d *Device) NumSegments() int { return d.cfg.NumSegments }

// SegmentSize returns the segment size in bytes.
func (d *Device) SegmentSize() int { return d.cfg.SegmentSize }

// physIndex maps a logical segment to its physical slot under start-gap
// (Qureshi et al.): PA = (LA + Start) mod N, then slots at or past the gap
// are shifted down by one so the gap slot is never addressed.
func (d *Device) physIndex(logical int) int {
	p := (logical + d.start) % d.cfg.NumSegments
	if p >= d.gapPos {
		p++
	}
	return p
}

func (d *Device) segBytes(phys int) []byte {
	off := phys * d.cfg.SegmentSize
	return d.mem[off : off+d.cfg.SegmentSize]
}

// emulate busy-spins until ns modeled nanoseconds have elapsed since t0.
// Spinning — not sleeping — is how a CPU waits out a synchronous NVM
// load, and stays accurate at the sub-microsecond scale where timer
// sleeps cannot. Runs with the device lock held: the device serves one
// operation at a time, so queueing delay behind a slow write is part of
// what the emulation models.
func emulate(t0 time.Time, ns float64) {
	d := time.Duration(ns)
	// lint:allow deepdeterminism — the clock only paces the spin-wait; no result depends on it, and experiments leave EmulateLatency off
	for time.Since(t0) < d {
	}
}

// Read returns a copy of the segment's current content and charges read
// energy/latency.
func (d *Device) Read(addr int) ([]byte, error) {
	var t0 time.Time
	if d.cfg.EmulateLatency {
		t0 = time.Now()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return nil, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	src := d.segBytes(d.physIndex(addr))
	out := make([]byte, len(src))
	copy(out, src)
	lines := float64(d.linesPerSegment())
	d.stats.Reads++
	d.stats.BitsRead += uint64(len(src) * 8)
	d.stats.EnergyPJ += float64(len(src)*8)*d.cfg.ReadEnergyPerBitPJ + d.cfg.AccessOverheadPJ
	d.stats.ReadLatencyNs += d.cfg.ReadLatencyNs + lines*d.cfg.ReadLineLatencyNs
	if d.cfg.EmulateLatency {
		emulate(t0, d.cfg.ReadLatencyNs+lines*d.cfg.ReadLineLatencyNs)
	}
	return out, nil
}

// Peek returns the segment content without charging any cost. It models the
// software layer's cached view of memory (the dynamic address pool already
// knows what free segments contain) and is also used by tests.
func (d *Device) Peek(addr int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return nil, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	src := d.segBytes(d.physIndex(addr))
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// ReadInto copies the segment's current content into dst (which must be
// exactly one segment long) and charges read energy/latency — the
// allocation-free variant of Read for the measured path.
func (d *Device) ReadInto(addr int, dst []byte) error {
	var t0 time.Time
	if d.cfg.EmulateLatency {
		t0 = time.Now() // lint:allow deepdeterminism — only paces the opt-in latency spin; off in every experiment
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if len(dst) != d.cfg.SegmentSize {
		return fmt.Errorf("nvm: read into %d bytes from %d-byte segment: %w", len(dst), d.cfg.SegmentSize, ErrSegmentSize)
	}
	src := d.segBytes(d.physIndex(addr))
	copy(dst, src)
	lines := float64(d.linesPerSegment())
	d.stats.Reads++
	d.stats.BitsRead += uint64(len(src) * 8)
	d.stats.EnergyPJ += float64(len(src)*8)*d.cfg.ReadEnergyPerBitPJ + d.cfg.AccessOverheadPJ
	d.stats.ReadLatencyNs += d.cfg.ReadLatencyNs + lines*d.cfg.ReadLineLatencyNs
	if d.cfg.EmulateLatency {
		emulate(t0, d.cfg.ReadLatencyNs+lines*d.cfg.ReadLineLatencyNs)
	}
	return nil
}

// PeekInto copies the segment content into dst (exactly one segment long)
// without charging any cost — the allocation-free variant of Peek.
func (d *Device) PeekInto(addr int, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if len(dst) != d.cfg.SegmentSize {
		return fmt.Errorf("nvm: peek into %d bytes from %d-byte segment: %w", len(dst), d.cfg.SegmentSize, ErrSegmentSize)
	}
	copy(dst, d.segBytes(d.physIndex(addr)))
	return nil
}

func (d *Device) linesPerSegment() int {
	return (d.cfg.SegmentSize + d.cfg.CacheLineSize - 1) / d.cfg.CacheLineSize
}

// Write stores data into segment addr using differential (data-comparison)
// writes: only cells whose value changes are flipped, and only dirty cache
// lines are written. data must be exactly one segment long.
//
// lint:hotpath
func (d *Device) Write(addr int, data []byte) (WriteResult, error) {
	return d.write(addr, data, true)
}

// WriteRaw stores data into segment addr modeling a naive controller that
// rewrites every cell (every written bit is charged as a flip and every
// cache line is dirty). It is the "no bit-flip optimization" baseline.
func (d *Device) WriteRaw(addr int, data []byte) (WriteResult, error) {
	return d.write(addr, data, false)
}

func (d *Device) write(addr int, data []byte, differential bool) (WriteResult, error) {
	var t0 time.Time
	if d.cfg.EmulateLatency {
		t0 = time.Now() // lint:allow deepdeterminism — only paces the opt-in latency spin; off in every experiment
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var res WriteResult
	if addr < 0 || addr >= d.cfg.NumSegments {
		return res, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if len(data) != d.cfg.SegmentSize {
		return res, fmt.Errorf("nvm: write of %d bytes to %d-byte segment: %w", len(data), d.cfg.SegmentSize, ErrSegmentSize)
	}
	phys := d.physIndex(addr)
	if d.failedSeg != nil && d.failedSeg[phys] {
		d.stats.FaultyWrites++
		return res, fmt.Errorf("nvm: write to failed segment %d: %w", addr, ErrWornOut)
	}
	dst := d.segBytes(phys)

	cl := d.cfg.CacheLineSize
	for off := 0; off < len(data); off += cl {
		end := off + cl
		if end > len(data) {
			end = len(data)
		}
		var flips int
		dirty := false
		for i := off; i < end; i++ {
			x := dst[i] ^ data[i]
			if x != 0 {
				dirty = true
				flips += onesCount8(x)
				if d.bitWear != nil {
					d.recordBitWear(addr, i, x)
				}
			}
		}
		if differential {
			if dirty {
				res.LinesWritten++
				res.BitsFlipped += flips
			} else {
				res.LinesSkipped++
			}
		} else {
			// Naive write: every cell is re-programmed.
			res.LinesWritten++
			res.BitsFlipped += (end - off) * 8
			if d.bitWear != nil {
				d.recordAllBitWear(addr, off, end)
			}
		}
		copy(dst[off:end], data[off:end])
	}
	res.BitsWritten = len(data) * 8

	// Stuck cells ignore the programming pulse and keep their value; any
	// that now disagree with the requested data are the write's fault bits.
	if d.stuckMask != nil {
		if mask := d.stuckMask[phys]; mask != nil {
			res.FaultyBits = applyStuck(dst, data, mask, d.stuckVal[phys])
		}
	}

	res.EnergyPJ = float64(res.BitsFlipped)*d.cfg.WriteEnergyPerBitPJ + d.cfg.AccessOverheadPJ
	res.LatencyNs = d.cfg.WriteBaseLatencyNs + float64(res.LinesWritten)*d.cfg.WriteLineLatencyNs

	d.segWrites[addr]++
	if d.segWrites[addr] > d.stats.MaxSegmentWrites {
		d.stats.MaxSegmentWrites = d.segWrites[addr]
	}
	if d.rng != nil {
		d.maybeWearFault(addr, phys, dst) // lint:allow hotpathalloc — fault events only fire on the end-of-life tail
	}

	// Wear leveling runs (and its costs are folded into res) before the
	// cumulative counters are updated, so Stats() sees the same energy and
	// latency the caller is charged.
	if d.cfg.WearLevelPeriod > 0 {
		d.writesSinceWL++
		if d.writesSinceWL >= d.cfg.WearLevelPeriod {
			d.writesSinceWL = 0
			wlFlips := d.startGapMove()
			res.WearLevelOps++
			res.EnergyPJ += float64(wlFlips) * d.cfg.WriteEnergyPerBitPJ
			res.LatencyNs += d.cfg.WriteBaseLatencyNs + float64(d.linesPerSegment())*d.cfg.WriteLineLatencyNs
		}
	}

	d.stats.Writes++
	d.stats.BitsFlipped += uint64(res.BitsFlipped)
	d.stats.BitsWritten += uint64(res.BitsWritten)
	d.stats.LinesWritten += uint64(res.LinesWritten)
	d.stats.LinesSkipped += uint64(res.LinesSkipped)
	d.stats.EnergyPJ += res.EnergyPJ
	d.stats.WriteLatencyNs += res.LatencyNs
	if d.cfg.EmulateLatency {
		emulate(t0, res.LatencyNs)
	}

	if res.FaultyBits > 0 {
		d.stats.FaultyWrites++
		if d.cfg.VerifyWrites {
			return res, fmt.Errorf("nvm: verify failed at segment %d, %d stuck bits: %w", addr, res.FaultyBits, ErrWornOut)
		}
	}
	return res, nil
}

// recordBitWear bumps wear counters for the differing bits of byte i in the
// logical segment addr.
func (d *Device) recordBitWear(addr, byteIdx int, xor byte) {
	base := (addr*d.cfg.SegmentSize + byteIdx) * 8
	for b := 0; b < 8; b++ {
		if xor&(1<<uint(b)) != 0 {
			d.bitWear[base+b]++
		}
	}
}

func (d *Device) recordAllBitWear(addr, off, end int) {
	base := (addr*d.cfg.SegmentSize + off) * 8
	for i := 0; i < (end-off)*8; i++ {
		d.bitWear[base+i]++
	}
}

// startGapMove advances the gap one slot (start-gap wear leveling): the
// segment adjacent to the gap is copied into the gap and becomes the new
// location of its logical address. Returns the number of cell flips the
// copy incurred (charged as wear-leveling overhead).
func (d *Device) startGapMove() int {
	n := d.cfg.NumSegments + 1
	gap := d.gapPos
	victim := gap - 1
	if victim < 0 {
		victim = n - 1
	}
	src := d.segBytes(victim)
	dst := d.segBytes(gap)
	flips := 0
	for i := range src {
		flips += onesCount8(src[i] ^ dst[i])
		dst[i] = src[i]
	}
	// Stuck cells in the destination slot hold their values through the
	// copy: the wear-leveling unit can silently corrupt relocated data,
	// which only the CRC layer above will notice.
	if d.stuckMask != nil {
		if mask := d.stuckMask[gap]; mask != nil {
			applyStuck(dst, src, mask, d.stuckVal[gap])
		}
	}
	d.gapPos = victim
	if d.gapPos == n-1 {
		// Gap wrapped all the way around: rotate the start register.
		d.start = (d.start + 1) % d.cfg.NumSegments
	}
	// Energy and latency for the move are charged by the caller (write)
	// through the WriteResult, so Stats() and res stay consistent.
	d.stats.WearLevelMoves++
	d.stats.WearLevelFlips += uint64(flips)
	d.stats.BitsFlipped += uint64(flips)
	return flips
}

// Fill initializes every segment with bytes drawn from r without charging
// writes, flips, or energy. It models the pre-existing ("old") data the
// experiments seed the pool with.
func (d *Device) Fill(r *rand.Rand) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for s := 0; s < d.cfg.NumSegments; s++ {
		seg := d.segBytes(d.physIndex(s))
		for i := range seg {
			seg[i] = byte(r.Intn(256))
		}
	}
}

// FillSegment overwrites one segment's content without charging any cost
// (seed/warm-up helper).
func (d *Device) FillSegment(addr int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if len(data) != d.cfg.SegmentSize {
		return fmt.Errorf("nvm: fill of %d bytes to %d-byte segment: %w", len(data), d.cfg.SegmentSize, ErrSegmentSize)
	}
	copy(d.segBytes(d.physIndex(addr)), data)
	return nil
}

// Stats returns a snapshot of cumulative counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the cumulative counters (contents, wear-leveling state,
// and wear counters are preserved).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// SegmentWrites returns a copy of the per-segment write-op counters.
func (d *Device) SegmentWrites() []uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]uint64, len(d.segWrites))
	copy(out, d.segWrites)
	return out
}

// SegmentWriteCount returns the write-op counter of a single segment —
// the wear statistic the address pool's hot/cold steering averages per
// cluster — without copying the whole table. Out-of-range addresses
// report 0.
func (d *Device) SegmentWriteCount(addr int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= len(d.segWrites) {
		return 0
	}
	return d.segWrites[addr]
}

// BitWear returns a copy of the per-bit flip counters, or nil when
// TrackBitWear is disabled.
func (d *Device) BitWear() []uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bitWear == nil {
		return nil
	}
	out := make([]uint32, len(d.bitWear))
	copy(out, d.bitWear)
	return out
}

// LifetimeFraction estimates the consumed fraction of device lifetime as
// (max per-bit flips) / endurance. Returns 0 when bit wear is untracked.
func (d *Device) LifetimeFraction() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.bitWear == nil {
		return 0
	}
	var max uint32
	for _, w := range d.bitWear {
		if w > max {
			max = w
		}
	}
	return float64(max) / d.cfg.EnduranceWrites
}

func onesCount8(b byte) int {
	// Inlined 8-bit popcount (nibble lookup), avoiding a math/bits import
	// dependency in the innermost loop for clarity of the cost model.
	const lut = "\x00\x01\x01\x02\x01\x02\x02\x03\x01\x02\x02\x03\x02\x03\x03\x04"
	return int(lut[b&0xf]) + int(lut[b>>4])
}
