package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := map[float64]float64{0: 0, 1: 0.25, 2: 0.75, 2.5: 0.75, 3: 1, 10: 1}
	for x, want := range cases {
		if got := c.P(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if q := c.Quantile(0.5); q != 20 {
		t.Fatalf("Quantile(0.5) = %v", q)
	}
	if q := c.Quantile(0); q != 10 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := c.Quantile(1); q != 40 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestCDFFromCounters(t *testing.T) {
	c32 := NewCDFUint32([]uint32{1, 2, 3})
	c64 := NewCDFUint64([]uint64{1, 2, 3})
	if c32.P(2) != c64.P(2) {
		t.Fatal("uint32/uint64 CDFs disagree")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 10 {
		t.Fatalf("support endpoints wrong: %v %v", pts[0], pts[10])
	}
	if pts[10][1] != 1 {
		t.Fatal("CDF must reach 1 at max")
	}
	if got := NewCDF([]float64{5, 5}).Points(3); len(got) != 1 || got[0][1] != 1 {
		t.Fatalf("degenerate Points = %v", got)
	}
	if NewCDF(nil).Points(3) != nil {
		t.Fatal("empty Points should be nil")
	}
}

// Property: CDF is monotone and bounded in [0,1].
func TestCDFMonotone(t *testing.T) {
	f := func(vals []float64, probe []float64) bool {
		c := NewCDF(vals)
		prev := -1.0
		for _, x := range probe {
			p := c.P(x)
			if p < 0 || p > 1 {
				return false
			}
			_ = prev
		}
		// Check monotonicity on sorted probes.
		for i := 0; i+1 < len(probe); i++ {
			a, b := probe[i], probe[i+1]
			if a > b {
				a, b = b, a
			}
			if c.P(a) > c.P(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMoments(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := Std(v); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("Std = %v", s)
	}
	if Mean(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("degenerate moments wrong")
	}
	if Max(v) != 9 || Min(v) != 2 {
		t.Fatal("Max/Min wrong")
	}
}

func TestWindowedMean(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	got := WindowedMean(v, 2)
	want := []float64{1.5, 3.5, 5}
	if len(got) != 3 {
		t.Fatalf("WindowedMean = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WindowedMean = %v, want %v", got, want)
		}
	}
	if got := WindowedMean(v, 1); len(got) != 5 {
		t.Fatal("window 1 should copy")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("b", 1e9)
	tb.AddRow("zero", 0.0)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.142") {
		t.Fatalf("table output:\n%s", out)
	}
	if !strings.Contains(out, "1.000e+09") {
		t.Fatalf("big float formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + sep + 3 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}
