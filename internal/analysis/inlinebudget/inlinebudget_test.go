package inlinebudget

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

// TestInlineBudget drives the analyzer over canned -m=2 inliner verdicts:
// a cost-budget rejection, a go:noinline rejection, and a missing
// decision are flagged; the inlinable function and an allowed rejection
// stay silent.
func TestInlineBudget(t *testing.T) {
	Reports = analysistest.CannedReports()
	defer func() { Reports = nil }()
	analysistest.RunProgram(t, "../testdata", Analyzer, "inlinebudget")
}

// TestInlineBudgetDegraded: with no compiler feedback wired up the
// analyzer must be a silent no-op, not an error.
func TestInlineBudgetDegraded(t *testing.T) {
	Reports = nil
	analysistest.RunProgramExpectNone(t, "../testdata", Analyzer, "inlinebudget")
}
