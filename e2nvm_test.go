package e2nvm

import (
	"bytes"
	"sync"
	"testing"
)

func smallConfig() Config {
	return Config{
		SegmentSize: 32,
		NumSegments: 64,
		Clusters:    3,
		TrainEpochs: 4,
		LatentDim:   4,
		Seed:        1,
	}
}

func TestOpenDefaults(t *testing.T) {
	cfg := Config{SegmentSize: 32, NumSegments: 32, Clusters: 2, TrainEpochs: 3, Seed: 1}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Clusters() != 2 {
		t.Fatalf("Clusters = %d", s.Clusters())
	}
	if s.MaxValue() != 13 {
		t.Fatalf("MaxValue = %d", s.MaxValue())
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPutGetDeleteScan(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 20; k++ {
		if err := s.Put(k, []byte{byte(k), byte(k + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d", s.Len())
	}
	v, ok, err := s.Get(5)
	if err != nil || !ok || !bytes.Equal(v, []byte{5, 6}) {
		t.Fatalf("Get = (%v,%v,%v)", v, ok, err)
	}
	var seen []uint64
	if err := s.Scan(10, 14, func(k uint64, _ []byte) bool {
		seen = append(seen, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("Scan saw %v", seen)
	}
	ok, err = s.Delete(5)
	if err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(5); ok {
		t.Fatal("deleted key still present")
	}
}

func TestMetrics(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMetrics()
	if err := s.Put(1, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Writes != 1 || m.BitsWritten == 0 || m.EnergyPJ <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.FlipsPerDataBit <= 0 || m.FlipsPerDataBit > 1 {
		t.Fatalf("FlipsPerDataBit = %v", m.FlipsPerDataBit)
	}
	if m.AvgWriteLatencyNs <= 0 {
		t.Fatalf("AvgWriteLatencyNs = %v", m.AvgWriteLatencyNs)
	}
	s.ResetMetrics()
	if got := s.Metrics(); got.Writes != 0 {
		t.Fatal("ResetMetrics did not clear")
	}
}

func TestBitWearTracking(t *testing.T) {
	cfg := smallConfig()
	cfg.TrackBitWear = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if s.BitWear() == nil {
		t.Fatal("BitWear nil with tracking on")
	}
	if len(s.SegmentWrites()) != 64 {
		t.Fatal("SegmentWrites length wrong")
	}
	// Without tracking: nil.
	s2, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s2.BitWear() != nil {
		t.Fatal("BitWear should be nil without tracking")
	}
}

func TestSeedContent(t *testing.T) {
	cfg := smallConfig()
	cfg.SeedContent = func(addr int, seg []byte) {
		for i := range seg {
			seg[i] = byte(addr)
		}
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The model trained on the seeded contents; store must work normally.
	if err := s.Put(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestWearLevelingEnabled(t *testing.T) {
	cfg := smallConfig()
	cfg.WearLevelPeriod = 2
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMetrics()
	for k := uint64(0); k < 10; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Metrics().WearLevelMoves == 0 {
		t.Fatal("wear leveling never triggered")
	}
	// Data survives wear-leveling moves.
	for k := uint64(0); k < 10; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
}

func TestRetrainViaPublicAPI(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	if s.Metrics().Retrains != 1 {
		t.Fatalf("Retrains = %d", s.Metrics().Retrains)
	}
	v, ok, _ := s.Get(3)
	if !ok || v[0] != 3 {
		t.Fatal("data lost across retrain")
	}
}

func TestArbitraryPlacement(t *testing.T) {
	cfg := smallConfig()
	cfg.Placement = PlacementArbitrary
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get(1)
	if !ok || v[0] != 'a' {
		t.Fatal("arbitrary placement store broken")
	}
}

func TestPaddingOptionsAccepted(t *testing.T) {
	for _, pt := range []PadType{PadZero, PadOne, PadRandom, PadInputBased, PadDatasetBased, PadMemoryBased} {
		cfg := smallConfig()
		cfg.PadType = pt
		cfg.PadLocation = PadMiddle
		s, err := Open(cfg)
		if err != nil {
			t.Fatalf("pad type %d: %v", pt, err)
		}
		if err := s.Put(1, []byte("z")); err != nil {
			t.Fatalf("pad type %d put: %v", pt, err)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 10)
			for i := uint64(0); i < 10; i++ {
				if err := s.Put(base+i, []byte{byte(base + i)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if v, ok, err := s.Get(base + i); err != nil || !ok || v[0] != byte(base+i) {
					t.Errorf("get(%d) = (%v,%v,%v)", base+i, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 40 {
		t.Fatalf("Len = %d, want 40", s.Len())
	}
}

func TestCrashSafePublicConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.CrashSafe = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMetrics()
	if err := s.Put(1, []byte("tx")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get(1)
	if !ok || string(v) != "tx" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	// Redo logging amplifies device writes: one put issues several.
	if s.Metrics().Writes < 3 {
		t.Fatalf("Writes = %d, expected logging amplification", s.Metrics().Writes)
	}
}
