package pnw

import (
	"math/rand"
	"testing"
)

func bitClusters(r *rand.Rand, n, k, dim int, noise float64) ([][]float64, []int) {
	protos := make([][]float64, k)
	for c := range protos {
		p := make([]float64, dim)
		for j := range p {
			if r.Intn(2) == 1 {
				p[j] = 1
			}
		}
		protos[c] = p
	}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		c := r.Intn(k)
		labels[i] = c
		row := append([]float64(nil), protos[c]...)
		for j := range row {
			if r.Float64() < noise {
				row[j] = 1 - row[j]
			}
		}
		data[i] = row
	}
	return data, labels
}

func purity(m *Model, data [][]float64, labels []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, x := range data {
		counts[m.Predict(x)][labels[i]]++
	}
	pure, total := 0, 0
	for _, cm := range counts {
		best := 0
		for _, n := range cm {
			total += n
			if n > best {
				best = n
			}
		}
		pure += best
	}
	return float64(pure) / float64(total)
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{K: 2}); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := Train([][]float64{{1}}, Config{K: 0}); err == nil {
		t.Fatal("expected error on K=0")
	}
}

func TestModeString(t *testing.T) {
	if KMeansOnly.String() != "K-means" || PCAKMeans.String() != "PCA+K-means" {
		t.Fatal("mode names wrong")
	}
}

func TestKMeansOnlyRecoversClusters(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data, labels := bitClusters(r, 300, 3, 64, 0.03)
	m, err := Train(data, Config{K: 3, Mode: KMeansOnly, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 || m.Mode() != KMeansOnly {
		t.Fatal("model metadata wrong")
	}
	if p := purity(m, data, labels, 3); p < 0.95 {
		t.Fatalf("raw K-means purity %.3f < 0.95", p)
	}
	if m.TrainTime <= 0 {
		t.Fatal("TrainTime not recorded")
	}
}

func TestPCAKMeansRecoversClusters(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data, labels := bitClusters(r, 300, 3, 64, 0.03)
	m, err := Train(data, Config{K: 3, Mode: PCAKMeans, PCADims: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := purity(m, data, labels, 3); p < 0.9 {
		t.Fatalf("PCA+K-means purity %.3f < 0.9", p)
	}
}

func TestPCADimsClampedToWidth(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _ := bitClusters(r, 60, 2, 6, 0.05)
	m, err := Train(data, Config{K: 2, Mode: PCAKMeans, PCADims: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := m.Predict(data[0]); c < 0 || c >= 2 {
		t.Fatalf("prediction %d out of range", c)
	}
}

func TestFLOPsPerPredict(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data, _ := bitClusters(r, 80, 2, 32, 0.05)
	raw, err := Train(data, Config{K: 2, Mode: KMeansOnly, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Train(data, Config{K: 2, Mode: PCAKMeans, PCADims: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if raw.FLOPsPerPredict() <= 0 || red.FLOPsPerPredict() <= 0 {
		t.Fatal("FLOPs must be positive")
	}
	// Raw K-means scans centroids in full 32-dim space; PCA mode pays the
	// projection but scans in 4 dims.
	if raw.FLOPsPerPredict() == red.FLOPsPerPredict() {
		t.Fatal("modes should differ in predict cost")
	}
}
