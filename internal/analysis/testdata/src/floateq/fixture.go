// Package floateq is a golden fixture for the floateq analyzer.
package floateq

// Converged compares computed floats exactly — the classic bug.
func Converged(prev, cur float64) bool {
	return prev == cur // want "floating-point == comparison"
}

// Different uses != on floats.
func Different(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

// SkipZero compares against the literal-0 sentinel, which is sanctioned.
func SkipZero(x float64) bool {
	return x == 0
}

// SkipZeroFlipped has the sentinel on the left.
func SkipZeroFlipped(x float64) bool {
	return 0.0 != x
}

// Ints are fine: exact integer equality is reliable.
func Ints(a, b int) bool {
	return a == b
}

// Tolerance is the sanctioned pattern (mirrors mat.EqualWithin).
func Tolerance(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Allowed demonstrates the escape hatch.
func Allowed(a, b float64) bool {
	return a == b // lint:allow floateq — fixture-only demonstration
}
