package index

import (
	"encoding/binary"
	"fmt"

	"e2nvm/internal/nvm"
)

// Store is the common interface of the five persistent KV designs compared
// in Figure 12. Implementations are not safe for concurrent use; callers
// serialize (as the experiments do).
type Store interface {
	// Name returns the design's display name as used in the paper.
	Name() string
	Put(key uint64, value []byte) error
	Get(key uint64) ([]byte, bool, error)
	Delete(key uint64) (bool, error)
	// DataBitsWritten returns the cumulative payload bits presented by
	// Put calls, the denominator of Figure 12's "bit updates per data
	// bit" metric.
	DataBitsWritten() uint64
}

// baseStats implements the DataBitsWritten accounting shared by stores.
type baseStats struct{ dataBits uint64 }

func (b *baseStats) DataBitsWritten() uint64 { return b.dataBits }
func (b *baseStats) countValue(value []byte) { b.dataBits += uint64(len(value)) * 8 }

// valueZone stores one value per NVM segment, placed through an Allocator.
// Segment layout: uint16 length followed by the value bytes (zero padded).
type valueZone struct {
	dev   *nvm.Device
	alloc Allocator
}

func (z *valueZone) maxValue() int { return z.dev.SegmentSize() - 2 }

// writeValue places and persists a value, returning its segment address.
func (z *valueZone) writeValue(value []byte) (int, error) {
	if len(value) > z.maxValue() {
		return 0, fmt.Errorf("index: value of %d bytes exceeds segment payload %d", len(value), z.maxValue())
	}
	buf := make([]byte, z.dev.SegmentSize())
	binary.LittleEndian.PutUint16(buf, uint16(len(value)))
	copy(buf[2:], value)
	addr, err := z.alloc.Place(buf)
	if err != nil {
		return 0, err
	}
	if _, err := z.dev.Write(addr, buf); err != nil {
		return 0, err
	}
	return addr, nil
}

// readValue fetches the value stored at addr.
func (z *valueZone) readValue(addr int) ([]byte, error) {
	seg, err := z.dev.Read(addr)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(seg))
	if n > len(seg)-2 {
		return nil, fmt.Errorf("index: corrupt value length %d at segment %d", n, addr)
	}
	return seg[2 : 2+n], nil
}

// freeValue recycles addr, handing its current content back to the
// allocator (E2-NVM re-predicts the cluster of the freed content,
// Algorithm 2 steps 3–4).
func (z *valueZone) freeValue(addr int) error {
	content, err := z.dev.Peek(addr)
	if err != nil {
		return err
	}
	z.alloc.Release(addr, content)
	return nil
}

// pageWriter persists serialized metadata pages (leaves, buckets, runs).
type pageWriter struct {
	dev *nvm.Device
}

func (p *pageWriter) writePage(addr int, image []byte) error {
	if len(image) > p.dev.SegmentSize() {
		return fmt.Errorf("index: page image %d bytes exceeds segment %d", len(image), p.dev.SegmentSize())
	}
	buf := make([]byte, p.dev.SegmentSize())
	copy(buf, image)
	_, err := p.dev.Write(addr, buf)
	return err
}
