package e2nvm

import (
	"errors"
	"testing"
)

func TestFaultSurvivalViaPublicAPI(t *testing.T) {
	cfg := smallConfig()
	cfg.VerifyWrites = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fence a quarter of the device; puts must route around the fenced
	// segments by retiring them.
	for a := 0; a < 16; a++ {
		if err := s.FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 20; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatalf("Put(%d) with fenced segments: %v", k, err)
		}
	}
	for k := uint64(0); k < 20; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
	if _, err := s.Scrub(64); err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Retired == 0 || !h.Degraded && h.Retired < 16 {
		t.Fatalf("Health after scrubbing a fenced quarter: %+v", h)
	}
	m := s.Metrics()
	if m.RetiredSegments == 0 || m.FailedSegments != 16 {
		t.Fatalf("fault metrics not plumbed: %+v", m)
	}
}

func TestFaultSentinelsViaPublicAPI(t *testing.T) {
	cfg := smallConfig()
	cfg.VerifyWrites = true
	cfg.DisableRetirement = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 64; a++ {
		if err := s.FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(2, []byte("b")); !errors.Is(err, ErrWornOut) {
		t.Fatalf("Put on fenced device = %v, want ErrWornOut", err)
	}
	// With retirement on and a tight threshold, exhausting capacity
	// escalates to ErrDegraded (which still matches ErrNoSpace).
	cfg2 := smallConfig()
	cfg2.VerifyWrites = true
	cfg2.DegradeThreshold = 0.05
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 64; a++ {
		if err := s2.FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	var lastErr error
	for k := uint64(0); k < 64; k++ {
		if lastErr = s2.Put(k, []byte{byte(k)}); errors.Is(lastErr, ErrDegraded) {
			break
		}
	}
	if !errors.Is(lastErr, ErrDegraded) || !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("exhausted device = %v, want ErrDegraded wrapping ErrNoSpace", lastErr)
	}
	if !s2.Health().Degraded {
		t.Fatal("Health().Degraded false after ErrDegraded")
	}
}

func TestInjectStuckAtSurfacesCorrupt(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableRetirement = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(7, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	// Stick cells under every segment's checksum region. Sticking freezes
	// cells at their current values, so the stored record is untouched;
	// the overwrite of key 7 now lands on faulty cells and must either
	// succeed cleanly or surface ErrWornOut with the old record intact —
	// never store wrong bytes.
	for a := 0; a < 64; a++ {
		for bit := 0; bit < 8; bit++ {
			if err := s.InjectStuckAt(a, 15*8+bit); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Metrics().StuckBits == 0 {
		t.Fatal("StuckBits not plumbed")
	}
	putErr := s.Put(7, []byte("SEVEN"))
	if putErr != nil && !errors.Is(putErr, ErrWornOut) {
		t.Fatalf("Put over stuck cells = %v, want nil or ErrWornOut", putErr)
	}
	want := "SEVEN"
	if putErr != nil {
		want = "seven" // the failed overwrite must not have touched the old record
	}
	v, ok, err := s.Get(7)
	if err != nil || !ok || string(v) != want {
		t.Fatalf("Get(7) = (%q,%v,%v), want %q", v, ok, err, want)
	}
}
