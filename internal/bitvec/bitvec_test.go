package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(17)
	if v.Len() != 17 {
		t.Fatalf("Len = %d, want 17", v.Len())
	}
	if v.OnesCount() != 0 {
		t.Fatalf("new vector has %d ones, want 0", v.OnesCount())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetBitFlip(t *testing.T) {
	v := New(10)
	v.Set(3, true)
	if !v.Bit(3) {
		t.Fatal("bit 3 not set")
	}
	v.Flip(3)
	if v.Bit(3) {
		t.Fatal("bit 3 still set after flip")
	}
	v.Flip(9)
	if !v.Bit(9) {
		t.Fatal("bit 9 not set after flip")
	}
	if got := v.OnesCount(); got != 1 {
		t.Fatalf("OnesCount = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestFromBitsRoundTrip(t *testing.T) {
	in := []int{0, 1, 1, 0, 1, 0, 0, 0, 1}
	v := FromBits(in)
	out := v.Bits()
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("bit %d = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestFromFloatsThreshold(t *testing.T) {
	v := FromFloats([]float64{0.49, 0.5, 0.51, 0, 1})
	want := []int{0, 1, 1, 0, 1}
	for i, w := range want {
		if got := v.Bits()[i]; got != w {
			t.Fatalf("bit %d = %d, want %d", i, got, w)
		}
	}
}

func TestFromBytesAliases(t *testing.T) {
	b := []byte{0x01, 0x80}
	v := FromBytes(b)
	if v.Len() != 16 {
		t.Fatalf("Len = %d, want 16", v.Len())
	}
	if !v.Bit(0) || !v.Bit(15) {
		t.Fatal("expected bits 0 and 15 set")
	}
	v.Set(1, true)
	if b[0] != 0x03 {
		t.Fatalf("mutation not visible through alias: %#x", b[0])
	}
}

func TestHamming(t *testing.T) {
	a := FromBits([]int{0, 0, 1, 1})
	b := FromBits([]int{0, 1, 1, 0})
	if d := Hamming(a, b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	if d := Hamming(a, a); d != 0 {
		t.Fatalf("self Hamming = %d, want 0", d)
	}
}

func TestHammingBytesLong(t *testing.T) {
	// Exercise both the 8-byte fast path and the byte tail.
	a := make([]byte, 37)
	b := make([]byte, 37)
	for i := range a {
		a[i] = byte(i * 7)
		b[i] = byte(i * 13)
	}
	want := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			want++
			x &= x - 1
		}
	}
	if got := HammingBytes(a, b); got != want {
		t.Fatalf("HammingBytes = %d, want %d", got, want)
	}
}

func TestHammingLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Hamming(New(8), New(9))
}

func TestHammingFloats(t *testing.T) {
	a := []float64{0.1, 0.9, 0.6}
	b := []float64{0.9, 0.9, 0.2}
	if d := HammingFloats(a, b); d != 2 {
		t.Fatalf("HammingFloats = %d, want 2", d)
	}
}

func TestDiffBits(t *testing.T) {
	a := FromBits([]int{1, 0, 0, 1, 1, 0, 0, 0, 1, 0})
	b := FromBits([]int{1, 1, 0, 0, 1, 0, 0, 0, 0, 0})
	got := DiffBits(a, b)
	want := []int{1, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("DiffBits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DiffBits = %v, want %v", got, want)
		}
	}
}

func TestInvertMasksTail(t *testing.T) {
	v := New(5)
	v.Invert()
	if got := v.OnesCount(); got != 5 {
		t.Fatalf("OnesCount after invert = %d, want 5", got)
	}
	// The three unused tail bits must remain zero.
	if v.Bytes()[0] != 0x1f {
		t.Fatalf("tail bits leaked: %#x", v.Bytes()[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromBits([]int{1, 0, 1})
	c := v.Clone()
	c.Flip(0)
	if !v.Bit(0) {
		t.Fatal("Clone shares storage with original")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(8)
	src := FromBits([]int{1, 1, 0, 0, 1, 0, 1, 0})
	v.CopyFrom(src)
	if !v.Equal(src) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestSliceAndConcat(t *testing.T) {
	v := FromBits([]int{1, 0, 1, 1, 0, 0, 1, 0})
	s := v.Slice(2, 6)
	if s.String() != "1100" {
		t.Fatalf("Slice = %s, want 1100", s.String())
	}
	back := Concat(v.Slice(0, 2), s, v.Slice(6, 8))
	if !back.Equal(v) {
		t.Fatalf("Concat(slices) = %s, want %s", back.String(), v.String())
	}
}

func TestShiftRight(t *testing.T) {
	v := FromBits([]int{1, 0, 0, 0})
	if got := v.ShiftRight(1).String(); got != "0100" {
		t.Fatalf("ShiftRight(1) = %s, want 0100", got)
	}
	if got := v.ShiftRight(4).String(); got != v.String() {
		t.Fatalf("ShiftRight(n) = %s, want identity", got)
	}
	if got := v.ShiftRight(-1).String(); got != "0001" {
		t.Fatalf("ShiftRight(-1) = %s, want 0001", got)
	}
}

func TestOnesDensity(t *testing.T) {
	if d := New(0).OnesDensity(); d != 0 {
		t.Fatalf("empty density = %v, want 0", d)
	}
	v := FromBits([]int{1, 1, 0, 0})
	if d := v.OnesDensity(); d != 0.5 {
		t.Fatalf("density = %v, want 0.5", d)
	}
}

func TestStringRendering(t *testing.T) {
	v := FromBits([]int{0, 1, 1, 0, 1})
	if v.String() != "01101" {
		t.Fatalf("String = %q", v.String())
	}
}

func randVec(r *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// Property: Hamming is a metric — symmetric, zero iff equal, triangle
// inequality.
func TestHammingMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(200)
		a, b, c := randVec(r, n), randVec(r, n), randVec(r, n)
		dab, dba := Hamming(a, b), Hamming(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: %d vs %d", dab, dba)
		}
		if (dab == 0) != a.Equal(b) {
			t.Fatalf("zero-distance vs equality mismatch")
		}
		if Hamming(a, c) > dab+Hamming(b, c) {
			t.Fatal("triangle inequality violated")
		}
	}
}

// Property: Hamming(a,b) == OnesCount(a XOR b) via DiffBits length.
func TestHammingMatchesDiffBits(t *testing.T) {
	f := func(seed int64, ln uint8) bool {
		n := int(ln)%128 + 1
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r, n), randVec(r, n)
		return Hamming(a, b) == len(DiffBits(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rotations preserve popcount and compose additively.
func TestShiftProperties(t *testing.T) {
	f := func(seed int64, ln uint8, k1, k2 int8) bool {
		n := int(ln)%64 + 1
		r := rand.New(rand.NewSource(seed))
		v := randVec(r, n)
		s := v.ShiftRight(int(k1))
		if s.OnesCount() != v.OnesCount() {
			return false
		}
		return s.ShiftRight(int(k2)).Equal(v.ShiftRight(int(k1) + int(k2)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromFloats(v.Floats()) == v.
func TestFloatsRoundTrip(t *testing.T) {
	f := func(seed int64, ln uint8) bool {
		n := int(ln)%100 + 1
		r := rand.New(rand.NewSource(seed))
		v := randVec(r, n)
		return FromFloats(v.Floats()).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHammingBytes256(b *testing.B) {
	x := make([]byte, 256)
	y := make([]byte, 256)
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(i * 3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HammingBytes(x, y)
	}
}

// hammingBytesByteLoop is the pre-optimization HammingBytes: uint64 lanes
// assembled with a manual 8-iteration byte loop instead of
// binary.LittleEndian.Uint64. Kept as the benchmark baseline and as an
// independent reference implementation.
func hammingBytesByteLoop(a, b []byte) int {
	d := 0
	i := 0
	for ; i+8 <= len(a); i += 8 {
		var x, y uint64
		for j := 0; j < 8; j++ {
			x |= uint64(a[i+j]) << (8 * uint(j))
			y |= uint64(b[i+j]) << (8 * uint(j))
		}
		d += bits.OnesCount64(x ^ y)
	}
	for ; i < len(a); i++ {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// TestHammingBytesMatchesByteLoop pins the LittleEndian.Uint64 rewrite to
// the original lane-assembly loop across lengths that cover the 8-byte
// body and every tail size.
func TestHammingBytesMatchesByteLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for n := 0; n <= 67; n++ {
		a := make([]byte, n)
		b := make([]byte, n)
		rng.Read(a)
		rng.Read(b)
		if got, want := HammingBytes(a, b), hammingBytesByteLoop(a, b); got != want {
			t.Fatalf("len %d: HammingBytes = %d, byte-loop reference = %d", n, got, want)
		}
	}
}

// BenchmarkHammingBytesByteLoop measures the replaced implementation so
// the win from the single unaligned load shows up next to
// BenchmarkHammingBytes256 in the same run.
func BenchmarkHammingBytesByteLoop(b *testing.B) {
	x := make([]byte, 256)
	y := make([]byte, 256)
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(i * 3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hammingBytesByteLoop(x, y)
	}
}
