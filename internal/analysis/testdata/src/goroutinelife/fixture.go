// Package goroutinelife is a golden fixture for the goroutinelife
// analyzer. The Pool case is the inter-procedural positive ground: the
// launch, the Done, and the Wait live in three different methods, so only
// the program-wide signal collection can prove the join.
package goroutinelife

import "sync"

// Joined is the classic fan-out/fan-in: negative.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// Fire launches with no join, no channel, nothing: positive.
func Fire() {
	go func() { // want "goroutine has no provable join or shutdown edge"
		_ = 1 + 1
	}()
}

// Pool joins across methods: Start launches run, run Done()s the field
// WaitGroup, Close Waits it. Provable only program-wide.
type Pool struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// Start launches the worker.
func (p *Pool) Start() {
	p.wg.Add(1)
	go p.run()
}

func (p *Pool) run() {
	defer p.wg.Done()
	<-p.done
}

// Close shuts the worker down and joins it.
func (p *Pool) Close() {
	close(p.done)
	p.wg.Wait()
}

// ResultChan hands the result back on a channel the caller receives:
// the receive is the join. Negative.
func ResultChan() int {
	ch := make(chan int)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// leakCh is sent to but never received from anywhere in the program.
var leakCh = make(chan int, 1)

// Leak's goroutine sends into the void: positive.
func Leak() {
	go func() { // want "goroutine has no provable join or shutdown edge"
		leakCh <- 1
	}()
}

// Worker ranges over a jobs channel: closing jobs shuts it down — a
// shutdown edge without a join. Negative.
func Worker(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// Dynamic launches through a function value the engine cannot resolve.
func Dynamic(f func()) {
	go f() // want "goroutine target is a function value the engine cannot resolve"
}

// Detached is deliberately fire-and-forget, with the documented escape.
func Detached() {
	go func() { // lint:allow goroutinelife — demonstration of the escape hatch
		_ = 1
	}()
}
