// Package gcdiag turns the Go compiler's own optimization diagnostics into
// a position-indexed report the lint suite can enforce budgets against.
//
// The AST/callgraph analyzers (hotpathalloc, kernelpure) approximate what
// the compiler decides; the compiler computes the ground truth — escape
// analysis, bounds-check elimination, and inlining — and prints it under
//
//	go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'
//
// This package invokes that build per package, parses the emitted
// diagnostics into a Report (escapes with their full "flows to"
// explanation chains, bounds/slice checks, inlining decisions with cost
// and rejection reason), and caches the raw compiler output keyed on the
// go version plus a hash of the package's source files, so repeated lint
// runs do not pay for a compile. The parser is pure text over canned
// output — tests need no compiler — and degrades gracefully: unknown
// lines are skipped, an empty stream yields an empty Report.
//
// Three analyzers consume it (see DESIGN.md §13): escapes (no value
// reachable from a lint:hotpath / lint:kernelpure root escapes to heap),
// nobce (lint:nobce functions compile with no bounds checks inside
// loops), and inlinebudget (lint:inline leaves stay under the inliner
// cost threshold).
package gcdiag

import (
	"fmt"
	"path/filepath"
)

// GCFlags is the exact -gcflags value whose diagnostics this package
// parses. Exported so benchmarks and CI record the flag set a baseline
// was produced under.
const GCFlags = "-m=2 -d=ssa/check_bce/debug=1"

// Position is one compiler-reported source coordinate. File is as emitted
// by the compiler (relative to the build's working directory unless the
// invoker absolutized it); Line and Col are 1-based.
type Position struct {
	File string
	Line int
	Col  int
}

func (p Position) String() string { return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col) }

// Escape is one value the compiler proved escapes to the heap: an
// allocation whose storage outlives its frame ("escapes to heap") or a
// stack variable forced into the heap ("moved to heap").
type Escape struct {
	Pos Position
	// What is the compiler's subject: the escaping expression, or the
	// variable name for a moved-to-heap diagnostic.
	What string
	// Moved distinguishes "moved to heap: x" from "<expr> escapes to
	// heap".
	Moved bool
	// Flow is the -m=2 explanation chain ("flow: {heap} = &{storage
	// ...}", "from ... at ...") in emission order; empty at -m=1 or for
	// summary repeats.
	Flow []string
}

// Bound is one bounds or slice check the BCE pass could not eliminate.
type Bound struct {
	Pos Position
	// Kind is the SSA op the compiler reported: "IsInBounds" for an index
	// check, "IsSliceInBounds" for a slice-expression check.
	Kind string
}

// Inline is the inliner's verdict on one declared function.
type Inline struct {
	Pos Position
	// Name is the function as the compiler prints it, e.g. "HammingBytes"
	// or "(*Vector).Set".
	Name string
	// CanInline reports whether the function is inlinable.
	CanInline bool
	// Cost is the inliner's cost for the function body; -1 when the
	// compiler did not report one (e.g. "marked go:noinline").
	Cost int
	// Budget is the threshold a rejected function exceeded; 0 unless the
	// reason carried one.
	Budget int
	// Reason is the rejection explanation for CanInline == false
	// ("function too complex: cost 109 exceeds budget 80", "marked
	// go:noinline", ...); empty for inlinable functions.
	Reason string
}

// InlinedCall is one call site the inliner expanded. Escapes and bounds
// checks of the inlined body are reported at the call site's position, so
// the mapping lets consumers attribute such diagnostics to the callee —
// whose own annotations (lint:allow on the allocation line) would
// otherwise be invisible at the caller.
type InlinedCall struct {
	Pos Position
	// Name is the callee as the compiler prints it, e.g. "growFloats" or
	// "(*Vector).check"; stdlib callees come package-qualified
	// ("bits.OnesCount8").
	Name string
}

// Report is the parsed diagnostic set of one package compilation,
// position-indexed by the lookup helpers below.
type Report struct {
	Escapes []Escape
	Bounds  []Bound
	Inlines []Inline
	Inlined []InlinedCall
}

// Empty reports whether the compiler emitted no diagnostics at all — the
// degraded case (diagnostics absent, e.g. a cached empty output or a
// toolchain that swallowed -m), which consumers treat as "nothing to
// enforce" rather than an error.
func (r *Report) Empty() bool {
	return r == nil ||
		(len(r.Escapes) == 0 && len(r.Bounds) == 0 && len(r.Inlines) == 0 && len(r.Inlined) == 0)
}

// Rebase joins every relative file position against root, so compiler
// output (relative to the build's working directory) lines up with a
// FileSet whose names are rooted elsewhere — the module root for real
// builds, the fixture directory for canned golden output.
func (r *Report) Rebase(root string) {
	fix := func(p *Position) {
		if !filepath.IsAbs(p.File) {
			p.File = filepath.Join(root, filepath.FromSlash(p.File))
		}
	}
	for i := range r.Escapes {
		fix(&r.Escapes[i].Pos)
	}
	for i := range r.Bounds {
		fix(&r.Bounds[i].Pos)
	}
	for i := range r.Inlines {
		fix(&r.Inlines[i].Pos)
	}
	for i := range r.Inlined {
		fix(&r.Inlined[i].Pos)
	}
}

// InlinedAt returns the callee name inlined at exactly this position, or
// "" when the position is not an inlined call site.
func (r *Report) InlinedAt(p Position) string {
	if r == nil {
		return ""
	}
	for i := range r.Inlined {
		if r.Inlined[i].Pos == p {
			return r.Inlined[i].Name
		}
	}
	return ""
}

// InlineFor returns the inlining decision reported for the function named
// at file:line (the compiler positions the verdict on the declaration
// line), or nil when none was reported.
func (r *Report) InlineFor(file string, line int) *Inline {
	if r == nil {
		return nil
	}
	for i := range r.Inlines {
		d := &r.Inlines[i]
		if d.Pos.Line == line && d.Pos.File == file {
			return d
		}
	}
	return nil
}
