package gcdiag

import (
	"os"
	"path/filepath"
	"testing"
)

func mustParseFile(t *testing.T, name string) *Report {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("reading canned output: %v", err)
	}
	return Parse(string(data))
}

// TestParseCanned drives the parser over canned -m=2 + check_bce output
// captured from two Go releases: the diagnostic wording drifts between
// versions (cost-less "can inline ... as:", go:noinline rejections, PGO
// budgets, chain-less escapes), and the parser must absorb all of it.
func TestParseCanned(t *testing.T) {
	cases := []struct {
		file    string
		escapes int // "escapes to heap" + "moved to heap", deduped
		bounds  int // Found lines, deduped by position+kind
		inlines int
		inlined int // "inlining call to" sites, including self-recursive
	}{
		// go1.24: full flow chains, summary-line repeats, duplicated BCE
		// reports for inlined copies.
		{"go1.24-m2.txt", 4, 6, 5, 2},
		// go1.22 flavor: no chains, a go:noinline rejection, a raised
		// budget, a cost-less can-inline.
		{"go1.22-m2.txt", 4, 3, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			r := mustParseFile(t, tc.file)
			if got := len(r.Escapes); got != tc.escapes {
				t.Errorf("escapes: got %d, want %d: %+v", got, tc.escapes, r.Escapes)
			}
			if got := len(r.Bounds); got != tc.bounds {
				t.Errorf("bounds: got %d, want %d: %+v", got, tc.bounds, r.Bounds)
			}
			if got := len(r.Inlines); got != tc.inlines {
				t.Errorf("inlines: got %d, want %d: %+v", got, tc.inlines, r.Inlines)
			}
			if got := len(r.Inlined); got != tc.inlined {
				t.Errorf("inlined calls: got %d, want %d: %+v", got, tc.inlined, r.Inlined)
			}
		})
	}
}

func TestParseInlinedCalls(t *testing.T) {
	r := mustParseFile(t, "go1.24-m2.txt")
	if got := r.InlinedAt(Position{"internal/bitvec/bitvec.go", 75, 9}); got != "(*Vector).check" {
		t.Errorf("InlinedAt(75:9) = %q, want (*Vector).check", got)
	}
	if got := r.InlinedAt(Position{"internal/bitvec/bitvec.go", 75, 10}); got != "" {
		t.Errorf("InlinedAt at a non-call position = %q, want empty", got)
	}
}

func TestParseEscapeDetails(t *testing.T) {
	r := mustParseFile(t, "go1.24-m2.txt")

	var vec *Escape
	for i := range r.Escapes {
		if r.Escapes[i].What == "&Vector{...}" {
			vec = &r.Escapes[i]
		}
	}
	if vec == nil {
		t.Fatalf("no &Vector{...} escape parsed: %+v", r.Escapes)
	}
	if vec.Pos != (Position{"internal/bitvec/bitvec.go", 27, 9}) {
		t.Errorf("escape position = %v", vec.Pos)
	}
	// The full flow chain rides along (flow header + two from-steps), and
	// the bare summary repeat later in the stream must not duplicate or
	// truncate it.
	if len(vec.Flow) != 3 {
		t.Errorf("flow chain: got %d steps %q, want 3", len(vec.Flow), vec.Flow)
	}
	if vec.Moved {
		t.Errorf("&Vector{...} is an escape, not a moved variable")
	}

	moved := false
	for _, e := range r.Escapes {
		if e.Moved && e.What == "buf" {
			moved = true
		}
	}
	if !moved {
		t.Errorf("moved-to-heap diagnostic not parsed: %+v", r.Escapes)
	}
}

func TestParseInlineDetails(t *testing.T) {
	r := mustParseFile(t, "go1.22-m2.txt")

	byName := map[string]Inline{}
	for _, d := range r.Inlines {
		byName[d.Name] = d
	}

	set := byName["(*Vector).Set"]
	if set.CanInline || set.Cost != 109 || set.Budget != 80 {
		t.Errorf("(*Vector).Set decision = %+v, want cost 109 budget 80", set)
	}
	if set.Reason != "function too complex: cost 109 exceeds budget 80" {
		t.Errorf("(*Vector).Set reason = %q", set.Reason)
	}

	noin := byName["(*Vector).Floats"]
	if noin.CanInline || noin.Reason != "marked go:noinline" || noin.Cost != -1 {
		t.Errorf("go:noinline decision = %+v", noin)
	}

	pgo := byName["(*Vector).Invert"]
	if pgo.Budget != 88 || pgo.Cost != 143 {
		t.Errorf("raised-budget decision = %+v", pgo)
	}

	// Older toolchains omit the cost on inlinable functions.
	lenD := byName["(*Vector).Len"]
	if !lenD.CanInline || lenD.Cost != -1 {
		t.Errorf("cost-less can-inline = %+v", lenD)
	}

	newD := byName["New"]
	if !newD.CanInline || newD.Cost != 19 {
		t.Errorf("can-inline with cost = %+v", newD)
	}
}

func TestParseBoundsDedup(t *testing.T) {
	r := mustParseFile(t, "go1.24-m2.txt")
	// bitvec.go:190:21 appears three times in the stream (once per inlined
	// copy): IsSliceInBounds + IsInBounds survive, the repeat collapses.
	n := 0
	for _, b := range r.Bounds {
		if b.Pos.Line == 190 {
			n++
		}
	}
	if n != 2 {
		t.Errorf("inlined-copy dedup: got %d checks at line 190, want 2", n)
	}
	if r.Bounds[0].Kind != "IsSliceInBounds" {
		t.Errorf("first bound kind = %q", r.Bounds[0].Kind)
	}
}

// TestParseDegraded: when diagnostics are absent — an empty stream, or
// output that carries no recognizable diagnostic at all — the parser must
// yield an empty Report rather than fail, and lookups on it must be safe.
func TestParseDegraded(t *testing.T) {
	for _, in := range []string{
		"",
		"# e2nvm/internal/bitvec\n",
		"go: downloading something\nplain noise without positions\n",
		"internal/x/x.go:3:1: some future diagnostic wording\n",
	} {
		r := Parse(in)
		if !r.Empty() {
			t.Errorf("Parse(%q) not empty: %+v", in, r)
		}
		if d := r.InlineFor("internal/x/x.go", 3); d != nil {
			t.Errorf("InlineFor on empty report = %+v", d)
		}
	}
	var nilRep *Report
	if !nilRep.Empty() || nilRep.InlineFor("f.go", 1) != nil {
		t.Errorf("nil Report must degrade gracefully")
	}
}
