// Package energy is the repo's stand-in for the perf/RAPL energy profiler
// the paper measures with (§5.1): an explicit accounting model that charges
//
//   - NVM cell energy, taken directly from the simulated device's counters;
//   - DRAM traffic energy (≈1 pJ/bit, the figure the paper quotes);
//   - model-compute energy per multiply-accumulate, standing in for the
//     CPU/GPU package energy of training and prediction;
//
// and maintains a simulated clock advanced by device latencies and compute
// time, so experiments can sample a power/energy time series exactly the
// way the paper samples RAPL at 1000 Hz (Figure 16).
package energy

import (
	"sync"
)

// Constants of the cost model (all picojoules).
const (
	// DRAMPJPerBit is DRAM access energy (the paper's ~1 pJ/b figure).
	DRAMPJPerBit = 1.0
	// ComputePJPerFLOP models CPU package energy per multiply-accumulate,
	// including instruction and cache overheads.
	ComputePJPerFLOP = 10.0
	// ComputeNsPerFLOP models effective time per multiply-accumulate for
	// the simulated clock (≈1 GFLOP/s effective single-thread training
	// throughput).
	ComputeNsPerFLOP = 1.0
)

// Sample is one point of the profiler's time series.
type Sample struct {
	TimeNs   float64 // simulated time of the sample
	EnergyPJ float64 // cumulative energy at the sample
	Label    string  // phase label ("train", "write", ...)
}

// Profiler accumulates energy and simulated time. Safe for concurrent use.
type Profiler struct {
	mu       sync.Mutex
	energyPJ float64
	timeNs   float64
	series   []Sample
}

// New returns an empty profiler.
func New() *Profiler { return &Profiler{} }

// AddNVM charges device energy and advances the clock by the device
// latency (both usually deltas of nvm.Stats or one WriteResult).
func (p *Profiler) AddNVM(energyPJ, latencyNs float64) {
	p.mu.Lock()
	p.energyPJ += energyPJ
	p.timeNs += latencyNs
	p.mu.Unlock()
}

// AddDRAM charges DRAM traffic of the given size.
func (p *Profiler) AddDRAM(bits float64) {
	p.mu.Lock()
	p.energyPJ += bits * DRAMPJPerBit
	p.mu.Unlock()
}

// AddCompute charges model compute of the given FLOP count, advancing the
// clock by the modeled compute time.
func (p *Profiler) AddCompute(flops float64) {
	p.mu.Lock()
	p.energyPJ += flops * ComputePJPerFLOP
	p.timeNs += flops * ComputeNsPerFLOP
	p.mu.Unlock()
}

// AdvanceTime moves the simulated clock without charging energy (idle
// periods).
func (p *Profiler) AdvanceTime(ns float64) {
	p.mu.Lock()
	p.timeNs += ns
	p.mu.Unlock()
}

// EnergyPJ returns cumulative energy.
func (p *Profiler) EnergyPJ() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.energyPJ
}

// TimeNs returns the simulated clock.
func (p *Profiler) TimeNs() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeNs
}

// Sample records a point in the time series under the given phase label
// and returns it.
func (p *Profiler) Sample(label string) Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Sample{TimeNs: p.timeNs, EnergyPJ: p.energyPJ, Label: label}
	p.series = append(p.series, s)
	return s
}

// Series returns a copy of the recorded samples.
func (p *Profiler) Series() []Sample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Sample, len(p.series))
	copy(out, p.series)
	return out
}

// PowerW computes average power in watts between two samples
// (ΔpJ / Δns = mW·10⁻³... 1 pJ/ns = 1 mW·10³ = 1 W·10⁻³·10³ = 1 W? —
// 1 pJ/ns = 10⁻¹² J / 10⁻⁹ s = 10⁻³ W, i.e. one milliwatt).
func PowerW(a, b Sample) float64 {
	dt := b.TimeNs - a.TimeNs
	if dt <= 0 {
		return 0
	}
	return (b.EnergyPJ - a.EnergyPJ) / dt * 1e-3
}

// Reset clears energy, time and the series.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.energyPJ = 0
	p.timeNs = 0
	p.series = nil
	p.mu.Unlock()
}
