package experiments

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig17", Fig17) }

// Fig17 reproduces Figure 17: E2-NVM's adaptability as the memory content
// and the incoming workload change over five scenarios — (I) model trained
// on random content, MNIST stream arrives (fluctuations narrow as deleted
// items recycle); (II) retrain, more MNIST (stable and low); (III) a 1:2
// Fashion-MNIST/MNIST mixture arrives (degrades immediately); (IV) CIFAR
// arrives (fluctuates more); (V) retrain on current content, more CIFAR
// (recovers fast).
func Fig17(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	numSegs := cfg.scaleInt(512, 128)
	const k = 10
	perPhase := cfg.scaleInt(1600, 300)

	mnist := workload.MNISTLike(2*perPhase+numSegs, bits, cfg.Seed)
	fashion := workload.FashionMNISTLike(perPhase, bits, cfg.Seed+1)
	cifar := workload.CIFARLike(2*perPhase, bits, cfg.Seed+2)

	// Scenario I starts from completely random memory content.
	r := rand.New(rand.NewSource(cfg.Seed + 3))
	randomImgs := make([][]byte, numSegs)
	randomBits := make([][]float64, numSegs)
	for i := range randomImgs {
		img := make([]byte, segSize)
		r.Read(img)
		randomImgs[i] = img
		randomBits[i] = core.BytesToBits(img)
	}
	dev, err := seededDevice(nvm.DefaultConfig(segSize, numSegs), randomImgs)
	if err != nil {
		return nil, err
	}
	trainCfg := core.Config{
		InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 2, Seed: cfg.Seed,
	}
	model, err := core.Train(randomBits, trainCfg)
	if err != nil {
		return nil, err
	}
	p, err := newClusterPlacer(model, k, dev, addrRange(numSegs))
	if err != nil {
		return nil, err
	}

	table := stats.NewTable("scenario", "stream", "avg_flips/write", "std_flips/write")
	var trace stats.Series
	trace.Name = "flips_per_write_windowed"
	opIndex := 0

	stream := func(name, streamName string, items [][]float64) error {
		imgs := toBytesAll(items, segSize)
		flips, err := runPlacement(dev, p, imgs, numSegs/2)
		if err != nil {
			return err
		}
		for _, f := range stats.WindowedMean(flips, 32) {
			trace.Add(float64(opIndex), f)
			opIndex += 32
		}
		table.AddRow(name, streamName, stats.Mean(flips), stats.Std(flips))
		return nil
	}
	retrain := func() error {
		images, err := currentImages(dev)
		if err != nil {
			return err
		}
		model, err = core.Train(images, trainCfg)
		if err != nil {
			return err
		}
		p, err = newClusterPlacer(model, k, dev, addrRange(numSegs))
		return err
	}

	// I: random-trained model, MNIST stream (with deletes via recycling).
	if err := stream("I", "MNIST on random-trained model", mnist.Items[:perPhase]); err != nil {
		return nil, err
	}
	// II: retrain on current content, continue MNIST.
	if err := retrain(); err != nil {
		return nil, err
	}
	if err := stream("II", "MNIST after retrain", mnist.Items[perPhase:2*perPhase]); err != nil {
		return nil, err
	}
	// III: 1:2 Fashion/MNIST mixture.
	var mixed [][]float64
	for i := 0; i < perPhase; i++ {
		if i%3 == 0 {
			mixed = append(mixed, fashion.Items[i%len(fashion.Items)])
		} else {
			mixed = append(mixed, mnist.Items[(2*perPhase+i)%len(mnist.Items)])
		}
	}
	if err := stream("III", "Fashion:MNIST 1:2 (unseen data)", mixed); err != nil {
		return nil, err
	}
	// IV: CIFAR, never seen.
	if err := stream("IV", "CIFAR-10 (unseen)", cifar.Items[:perPhase]); err != nil {
		return nil, err
	}
	// V: retrain on current content, continue CIFAR.
	if err := retrain(); err != nil {
		return nil, err
	}
	if err := stream("V", "CIFAR-10 after retrain", cifar.Items[perPhase:2*perPhase]); err != nil {
		return nil, err
	}

	return &Result{
		ID:     "fig17",
		Title:  "Adaptability to dynamic content/workload changes (five scenarios)",
		Table:  table,
		Series: []stats.Series{trace},
		Notes: []string{
			fmt.Sprintf("%d segments × %d B, %d writes per scenario, k=%d", numSegs, segSize, perPhase, k),
			"expected shape: I high/fluctuating, II low, III jumps (unseen data), IV fluctuates more, V recovers after retraining",
		},
	}, nil
}
