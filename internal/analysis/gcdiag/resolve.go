package gcdiag

import "go/token"

// Resolver maps compiler-reported positions into a token.FileSet so
// analyzers can reuse the framework's position machinery (lint:allow
// lookup, cold-range containment) unchanged.
type Resolver struct {
	files map[string]*token.File
}

// NewResolver indexes fset's files by name. Names must match the File
// field of resolved positions, i.e. absolute paths when the Source
// absolutized its reports against the same tree the loader parsed.
func NewResolver(fset *token.FileSet) *Resolver {
	r := &Resolver{files: map[string]*token.File{}}
	fset.Iterate(func(f *token.File) bool {
		r.files[f.Name()] = f
		return true
	})
	return r
}

// Pos translates p to a token.Pos, or token.NoPos when the file or line
// is unknown to the set (a diagnostic for generated or out-of-program
// code). Columns beyond the line's width clamp to the line start — the
// compiler occasionally points one past a rewritten expression.
func (r *Resolver) Pos(p Position) token.Pos {
	f, ok := r.files[p.File]
	if !ok || p.Line < 1 || p.Line > f.LineCount() {
		return token.NoPos
	}
	start := f.LineStart(p.Line)
	if p.Col <= 1 {
		return start
	}
	pos := start + token.Pos(p.Col-1)
	// Clamp to the file: LineStart of the next line (or file end) bounds
	// the valid offsets for this line.
	end := token.Pos(f.Base() + f.Size())
	if p.Line < f.LineCount() {
		end = f.LineStart(p.Line + 1)
	}
	if pos >= end {
		return start
	}
	return pos
}
