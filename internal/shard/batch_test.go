package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"e2nvm/internal/kvstore"
	"e2nvm/internal/testutil"
)

// TestPutBatchGetBatchRoundTrip: the fan-out must deliver every item to
// its shard and scatter results back in caller order, across shard
// counts (1 exercises the delegation fast path).
func TestPutBatchGetBatchRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := newRouter(t, shards, 32, 64, kvstore.Options{})
			n := 24
			keys := make([]uint64, n)
			vals := make([][]byte, n)
			for i := range keys {
				keys[i] = uint64(i * 13)
				vals[i] = []byte(fmt.Sprintf("v-%02d", i))
			}
			if err := r.PutBatch(keys, vals, nil); err != nil {
				t.Fatalf("PutBatch: %v", err)
			}
			dsts := make([][]byte, n)
			oks := make([]bool, n)
			if err := r.GetBatch(keys, dsts, oks, nil); err != nil {
				t.Fatalf("GetBatch: %v", err)
			}
			for i := range keys {
				if !oks[i] {
					t.Fatalf("key %d not found", keys[i])
				}
				if !bytes.Equal(dsts[i], vals[i]) {
					t.Fatalf("key %d: got %q, want %q", keys[i], dsts[i], vals[i])
				}
			}
			// Misses stay misses, interleaved with hits, in caller order.
			mixed := []uint64{keys[3], 99999, keys[7]}
			mdsts := make([][]byte, 3)
			moks := make([]bool, 3)
			if err := r.GetBatch(mixed, mdsts, moks, nil); err != nil {
				t.Fatalf("GetBatch mixed: %v", err)
			}
			if !moks[0] || moks[1] || !moks[2] {
				t.Fatalf("mixed oks = %v, want [true false true]", moks)
			}
		})
	}
}

// TestPutBatchMatchesPerItemPuts: batched routing must place every item
// in the same shard the per-item path would.
func TestPutBatchMatchesPerItemPuts(t *testing.T) {
	batched := newRouter(t, 3, 32, 64, kvstore.Options{})
	perItem := newRouter(t, 3, 32, 64, kvstore.Options{})
	n := 30
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = []byte(fmt.Sprintf("x-%02d", i))
	}
	if err := batched.PutBatch(keys, vals, nil); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i := range keys {
		if err := perItem.Put(keys[i], vals[i]); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for sh := 0; sh < batched.N(); sh++ {
		if b, p := batched.Store(sh).Len(), perItem.Store(sh).Len(); b != p {
			t.Fatalf("shard %d: batched holds %d keys, per-item %d", sh, b, p)
		}
	}
}

// TestPutBatchPerItemErrors: a failing item must surface under its caller
// index after the scatter back, and the returned error must be the first
// failure by caller order even though shards run out of order.
func TestPutBatchPerItemErrors(t *testing.T) {
	r := newRouter(t, 4, 32, 64, kvstore.Options{})
	maxValue := r.Store(0).MaxValue()
	n := 12
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = []byte("fine")
	}
	vals[5] = make([]byte, maxValue+1)
	vals[9] = make([]byte, maxValue+1)
	errs := make([]error, n)
	err := r.PutBatch(keys, vals, errs)
	if !errors.Is(err, kvstore.ErrValueTooLarge) {
		t.Fatalf("PutBatch error = %v, want ErrValueTooLarge", err)
	}
	for i := range errs {
		switch i {
		case 5, 9:
			if !errors.Is(errs[i], kvstore.ErrValueTooLarge) {
				t.Fatalf("errs[%d] = %v, want ErrValueTooLarge", i, errs[i])
			}
		default:
			if errs[i] != nil {
				t.Fatalf("errs[%d] = %v, want nil", i, errs[i])
			}
		}
	}
}

// TestBatchLengthMismatch: misaligned batch slices are rejected before
// any routing.
func TestBatchLengthMismatch(t *testing.T) {
	r := newRouter(t, 2, 32, 64, kvstore.Options{})
	if err := r.PutBatch([]uint64{1, 2}, make([][]byte, 1), nil); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("PutBatch mismatch = %v, want ErrBadBatch", err)
	}
	if err := r.GetBatch([]uint64{1}, make([][]byte, 1), make([]bool, 2), nil); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("GetBatch mismatch = %v, want ErrBadBatch", err)
	}
}

// TestRouterBatchZeroAlloc: the fan-out's grouping scratch is pooled, so
// steady-state batches must not allocate beyond the per-shard paths
// (which are themselves 0-alloc).
func TestRouterBatchZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the pooled batch scratch allocates by design")
	}
	r := newRouter(t, 4, 32, 128, kvstore.Options{})
	n := 16
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = []byte("steady-val")
	}
	dsts := make([][]byte, n)
	oks := make([]bool, n)
	if err := r.PutBatch(keys, vals, nil); err != nil { // warm all scratch
		t.Fatal(err)
	}
	if err := r.GetBatch(keys, dsts, oks, nil); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := r.PutBatch(keys, vals, nil); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("PutBatch allocates %v per batch, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() {
		if err := r.GetBatch(keys, dsts, oks, nil); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Fatalf("GetBatch allocates %v per batch, want 0", a)
	}
}
