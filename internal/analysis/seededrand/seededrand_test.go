package seededrand

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "seededrand")
}
