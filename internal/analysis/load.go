package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of a single module without any
// external dependencies: module-internal imports are type-checked from
// source recursively, and standard-library imports go through the
// compiler-independent "source" importer (which also works offline).
type Loader struct {
	Fset *token.FileSet
	// ModPath is the module path from go.mod ("" disables module-internal
	// import resolution; used by analysistest for stdlib-only fixtures).
	ModPath string
	// ModRoot is the module root directory.
	ModRoot string

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader builds a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	return newLoader(modPath, root), nil
}

// NewFixtureLoader builds a loader for standalone test fixture packages
// (no module context; imports resolve against the standard library only).
func NewFixtureLoader() *Loader { return newLoader("", "") }

func newLoader(modPath, modRoot string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
	}
}

// Import implements types.Importer over module-internal and stdlib paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if l.ModPath != "" && (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path, memoizing the result. Test files (_test.go) are excluded: the lint
// invariants target library code, and tests routinely use fixed inline
// seeds and exact comparisons deliberately.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if !buildOK(filepath.Join(dir, n)) {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[pkgPath] = p
	return p, nil
}

// Load resolves package patterns relative to the module root. Supported
// forms are "./..." (every package under the root), "dir/..." (every
// package under dir), and plain relative/absolute directories.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if l.ModRoot == "" {
		return nil, fmt.Errorf("analysis: pattern loading requires a module loader")
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			base := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			walked, err := packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		}
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// packageDirs walks base collecting directories that contain at least one
// non-test Go file, skipping testdata, hidden, and VCS directories.
func packageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// buildOK reports whether the file's //go:build constraint (if any) is
// satisfied by the default build configuration: GOOS, GOARCH and the gc
// toolchain, with no extra tags. Files gated on a tag such as `race` are
// excluded, mirroring what `go build` compiles.
func buildOK(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return true // let the parser produce the real error
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			})
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		return true // reached the package clause: no constraint
	}
	return true
}
