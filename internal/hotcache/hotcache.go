// Package hotcache is a lock-free, hot-spot-aware read cache in the style
// of HotRing (Chen et al., FAST '20), sitting between the facade and the
// shard router / replica cluster so that zipf-skewed read traffic is
// served from DRAM with zero device reads and zero allocations.
//
// # Structure
//
// Keys hash (SplitMix64, the shard router's permutation) into a power-of-
// two array of buckets. Each bucket holds an immutable, copy-on-write
// "ring": a hotness-ordered array of entries published through one atomic
// pointer. Readers traverse the current ring snapshot without any lock;
// writers (insert, invalidate, promote, evict) build a fresh array and
// install it with a compare-and-swap — the atomic head swap that gives
// HotRing its lock-free updates. Every entry carries a shared atomic
// access counter; when an entry's count crosses a multiple of
// adjustEvery while it is not at the head, it is moved to the front of
// its ring (the periodic hot-pointer adjustment), so the hottest key of
// every bucket is found on the first probe.
//
// # Invalidation protocol
//
// The cache is write-through-invalidate, and correctness under arbitrary
// interleavings rests on a per-bucket sequence counter:
//
//   - A writer first completes the store write, then bumps the bucket's
//     seq, then removes the key's cached value, and only then
//     acknowledges the write to its caller.
//   - A reader that misses snapshots the seq (BeginFill), reads the
//     store, installs the value provisionally (CompleteFill), re-checks
//     the seq, and only then publishes the entry. Unpublished entries
//     are invisible to readers, so a fill racing a write can never leak
//     its possibly-stale value: either the seq moved — the fill demotes
//     itself — or the writer's removal scan runs later and removes the
//     entry (published or not) before the write is acknowledged.
//
// The guarantee is read-your-acknowledged-writes: once a write returns,
// no read can serve the overwritten value. Reads concurrent with an
// in-flight write may serve either version, as with any linearizable
// register.
//
// # Hotness tracking
//
// Invalidating a key does not forget it: the entry is demoted to a ghost
// (a value-less entry keeping the access counter), and invalidations of
// uncached keys insert ghosts. The counter therefore measures total
// touch frequency — reads and writes — which is what the hot/cold wear
// steering policy (dap.Pool.GetFor) wants: write-hot keys must steer to
// low-wear clusters even if they are rarely read.
package hotcache

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// adjustEvery is the access-count period of hot-pointer adjustment: an
// entry whose counter crosses a multiple of this while not at its ring's
// head is moved to the front.
const adjustEvery = 64

// entryOverhead approximates the DRAM cost of one entry beyond its value
// bytes (entry header, ring slot, allocator slack), used for the byte
// budget.
const entryOverhead = 64

// Config configures New.
type Config struct {
	// MaxBytes bounds the cache's DRAM footprint (values plus per-entry
	// overhead). Default 4 MiB.
	MaxBytes int
	// Buckets is the hash-ring count; rounded up to a power of two.
	// Default: one bucket per 512 B of budget — a handful of entries per
	// ring, so scans and promotion copies stay O(small) — clamped to
	// [16, 65536].
	Buckets int
	// HotHits is the access count at which Hotness reports a key hot
	// (default 8).
	HotHits uint32
}

// entry is one cached key. val is immutable once set; a nil val marks a
// ghost — an invalidated or demoted entry that only tracks the key's
// access frequency. pub flips true once the entry's fill verified its
// seq token; readers skip unpublished entries. hits is shared by every
// ring snapshot that references the entry, so promotion copies never
// lose counts.
type entry struct {
	key  uint64
	val  []byte
	pub  atomic.Bool
	hits atomic.Uint32
}

// ring is one bucket's immutable entry array. A new ring is built for
// every mutation and published via bucket.head; entries are shared
// between snapshots but the arrays themselves are never written after
// publication.
type ring struct {
	entries []*entry
}

// bucket is one hash slot: the invalidation sequence counter and the
// current ring.
type bucket struct {
	seq  atomic.Uint64
	head atomic.Pointer[ring]
}

// Cache is a lock-free hot-key read cache. All methods are safe for
// concurrent use.
type Cache struct {
	mask     uint64
	maxBytes int64
	hotHits  uint32
	buckets  []bucket

	bytes atomic.Int64
	clock atomic.Uint64 // eviction hand over buckets

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	adjustments   atomic.Uint64
}

// ErrConfig marks New failures caused by an invalid Config. Test with
// errors.Is.
var ErrConfig = errors.New("hotcache: invalid configuration")

// New creates a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("%w: MaxBytes %d must not be negative", ErrConfig, cfg.MaxBytes)
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 4 << 20
	}
	if cfg.Buckets < 0 {
		return nil, fmt.Errorf("%w: Buckets %d must not be negative", ErrConfig, cfg.Buckets)
	}
	if cfg.Buckets == 0 {
		cfg.Buckets = cfg.MaxBytes / 512
	}
	if cfg.Buckets < 16 {
		cfg.Buckets = 16
	}
	if cfg.Buckets > 1<<16 {
		cfg.Buckets = 1 << 16
	}
	n := 1
	for n < cfg.Buckets {
		n <<= 1
	}
	if cfg.HotHits == 0 {
		cfg.HotHits = 8
	}
	return &Cache{
		mask:     uint64(n - 1),
		maxBytes: int64(cfg.MaxBytes),
		hotHits:  cfg.HotHits,
		buckets:  make([]bucket, n),
	}, nil
}

// mix is the SplitMix64 finalizer — the same key permutation the shard
// router uses (shard.Mix64), copied here so the cache does not depend on
// the serving layers it fronts.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c *Cache) bucketOf(key uint64) *bucket {
	return &c.buckets[mix(key)&c.mask]
}

// GetInto looks key up, copying a hit's value into dst's backing array
// (grown only when too small) and returning the resulting slice. The
// steady-state hit path performs no allocation and no device access.
//
// lint:hotpath
func (c *Cache) GetInto(key uint64, dst []byte) ([]byte, bool) {
	b := &c.buckets[mix(key)&c.mask]
	r := b.head.Load()
	if r == nil {
		c.misses.Add(1)
		return dst, false
	}
	for i := 0; i < len(r.entries); i++ {
		e := r.entries[i]
		if e.key != key {
			continue
		}
		h := e.hits.Add(1)
		if e.val == nil || !e.pub.Load() {
			// Ghost or not-yet-published fill: the access is counted for
			// hotness, but the value must come from the store.
			c.misses.Add(1)
			return dst, false
		}
		if i > 0 && h%adjustEvery == 0 {
			// Periodic hot-pointer adjustment; runs once per adjustEvery
			// touches of a non-head entry. lint:allow hotpathalloc
			c.promote(b, key)
		}
		c.hits.Add(1)
		n := len(e.val)
		if cap(dst) < n {
			dst = make([]byte, n) // lint:allow hotpathalloc — grow-once, the GetInto buffer contract
		}
		dst = dst[:n]
		copy(dst, e.val)
		return dst, true
	}
	c.misses.Add(1)
	return dst, false
}

// Get is GetInto returning a fresh caller-owned copy.
func (c *Cache) Get(key uint64) ([]byte, bool) {
	v, ok := c.GetInto(key, nil)
	if !ok {
		return nil, false
	}
	return v, true
}

// BeginFill opens a fill attempt for key after a miss: the caller reads
// the store, then hands the value and the returned token to
// CompleteFill. The token must be taken before the store read — it is
// what orders the fill against concurrent invalidations.
func (c *Cache) BeginFill(key uint64) uint64 {
	return c.bucketOf(key).seq.Load()
}

// CompleteFill installs the value read from the store under the fill
// token from BeginFill. The value is copied; the caller keeps ownership
// of val. It reports whether the value is resident afterwards: false
// when a concurrent invalidation raced the fill (the entry is demoted
// again), when another fill already installed a live value, or when the
// value is too large to admit.
func (c *Cache) CompleteFill(key uint64, val []byte, token uint64) bool {
	sz := int64(len(val)) + entryOverhead
	if sz > c.maxBytes/4 {
		return false // never let one value monopolize the budget
	}
	b := c.bucketOf(key)
	e := &entry{key: key, val: append([]byte(nil), val...)}
	for {
		r := b.head.Load()
		idx, old := findKey(r, key)
		if old != nil && old.val != nil {
			return false // lost the fill race to another reader
		}
		if old != nil {
			e.hits.Store(old.hits.Load() + 1)
		} else {
			e.hits.Store(1)
		}
		if !b.head.CompareAndSwap(r, withReplaced(r, idx, e)) {
			continue
		}
		if old != nil {
			c.bytes.Add(entryBytes(e) - entryBytes(old))
		} else {
			c.bytes.Add(entryBytes(e))
		}
		break
	}
	if b.seq.Load() != token {
		// An invalidation moved the seq while the store read was in
		// flight: the value may predate a concurrent write. Demote the
		// still-unpublished entry; no reader ever saw it.
		c.demote(b, e)
		return false
	}
	// Publish: the seq held from BeginFill through the install, so the
	// value cannot predate any acknowledged write. A removal scan that
	// runs after this point finds the entry and demotes it as usual.
	e.pub.Store(true)
	c.evictOver()
	return true
}

// Invalidate removes key's cached value, bumping the bucket's sequence
// counter first so any in-flight fill for the key self-demotes. The key
// itself is kept (or created) as a ghost, so its access frequency — now
// including this write — keeps feeding the hot/cold steering policy.
// Callers must invalidate after the store write completes and before
// acknowledging it.
func (c *Cache) Invalidate(key uint64) {
	b := c.bucketOf(key)
	b.seq.Add(1)
	for {
		r := b.head.Load()
		idx, old := findKey(r, key)
		if old == nil {
			g := &entry{key: key}
			g.hits.Store(1)
			if !b.head.CompareAndSwap(r, withReplaced(r, -1, g)) {
				continue
			}
			c.bytes.Add(entryBytes(g))
			c.evictOver()
			return
		}
		if old.val == nil {
			old.hits.Add(1) // already a ghost: just count the touch
			return
		}
		g := &entry{key: key}
		g.hits.Store(old.hits.Load() + 1)
		if !b.head.CompareAndSwap(r, withReplaced(r, idx, g)) {
			continue
		}
		c.bytes.Add(entryBytes(g) - entryBytes(old))
		c.invalidations.Add(1)
		return
	}
}

// Hotness reports whether key currently has a resident value and whether
// its touch frequency classifies it as hot. A ghost can be hot: a
// write-hot key is exactly what wear steering must catch.
func (c *Cache) Hotness(key uint64) (present, hot bool) {
	r := c.bucketOf(key).head.Load()
	_, e := findKey(r, key)
	if e == nil {
		return false, false
	}
	return e.val != nil && e.pub.Load(), e.hits.Load() >= c.hotHits
}

// demote replaces e — located by identity, so a ring that has already
// replaced or evicted it is left alone — with a ghost carrying its
// access count.
func (c *Cache) demote(b *bucket, e *entry) {
	g := &entry{key: e.key}
	g.hits.Store(e.hits.Load())
	for {
		r := b.head.Load()
		idx := -1
		if r != nil {
			for i, x := range r.entries {
				if x == e {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return
		}
		if b.head.CompareAndSwap(r, withReplaced(r, idx, g)) {
			c.bytes.Add(entryBytes(g) - entryBytes(e))
			return
		}
	}
}

// promote moves key's entry to the front of its ring (best-effort: it
// yields after a few CAS collisions, because the next counter crossing
// will try again).
func (c *Cache) promote(b *bucket, key uint64) {
	for try := 0; try < 4; try++ {
		r := b.head.Load()
		idx, _ := findKey(r, key)
		if idx <= 0 {
			return
		}
		ne := make([]*entry, len(r.entries))
		ne[0] = r.entries[idx]
		copy(ne[1:idx+1], r.entries[:idx])
		copy(ne[idx+1:], r.entries[idx+1:])
		if b.head.CompareAndSwap(r, &ring{entries: ne}) {
			c.adjustments.Add(1)
			return
		}
	}
}

// evictOver walks the eviction hand over the buckets, dropping each
// visited ring's tail entry — rings are hotness-ordered, so the tail is
// the bucket's coldest key — until the cache is back under its byte
// budget. The sweep is bounded so a racing filler cannot spin here.
func (c *Cache) evictOver() {
	limit := 4 * len(c.buckets)
	for spins := 0; c.bytes.Load() > c.maxBytes && spins < limit; spins++ {
		b := &c.buckets[c.clock.Add(1)&c.mask]
		r := b.head.Load()
		if r == nil || len(r.entries) == 0 {
			continue
		}
		victim := r.entries[len(r.entries)-1]
		ne := make([]*entry, len(r.entries)-1)
		copy(ne, r.entries[:len(r.entries)-1])
		if !b.head.CompareAndSwap(r, &ring{entries: ne}) {
			continue
		}
		c.bytes.Add(-entryBytes(victim))
		if victim.val != nil {
			c.evictions.Add(1)
		}
	}
}

// findKey returns the index and entry of key in r, or (-1, nil).
func findKey(r *ring, key uint64) (int, *entry) {
	if r == nil {
		return -1, nil
	}
	for i, e := range r.entries {
		if e.key == key {
			return i, e
		}
	}
	return -1, nil
}

// withReplaced builds a fresh ring with entry e at idx (or appended when
// idx < 0). The input ring's array is never aliased: every snapshot
// stays immutable.
func withReplaced(r *ring, idx int, e *entry) *ring {
	if r == nil {
		return &ring{entries: []*entry{e}}
	}
	if idx < 0 {
		ne := make([]*entry, len(r.entries)+1)
		copy(ne, r.entries)
		ne[len(ne)-1] = e
		return &ring{entries: ne}
	}
	ne := make([]*entry, len(r.entries))
	copy(ne, r.entries)
	ne[idx] = e
	return &ring{entries: ne}
}

func entryBytes(e *entry) int64 {
	return int64(len(e.val)) + entryOverhead
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Hits          uint64 // GetInto served from DRAM
	Misses        uint64 // GetInto that fell through to the store
	Evictions     uint64 // live values dropped by the byte budget
	Invalidations uint64 // live values removed by writes
	Adjustments   uint64 // hot-pointer promotions performed
	Entries       int    // live cached values
	Ghosts        int    // value-less hotness trackers
	Bytes         int64  // budgeted footprint (values + overhead)
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Adjustments:   c.adjustments.Load(),
		Bytes:         c.bytes.Load(),
	}
	for i := range c.buckets {
		r := c.buckets[i].head.Load()
		if r == nil {
			continue
		}
		for _, e := range r.entries {
			if e.val != nil {
				s.Entries++
			} else {
				s.Ghosts++
			}
		}
	}
	return s
}

// ResetCounters zeroes the activity counters (hits, misses, evictions,
// invalidations, adjustments). Residency — entries, ghosts, bytes — is
// untouched.
func (c *Cache) ResetCounters() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.invalidations.Store(0)
	c.adjustments.Store(0)
}

// Len returns the number of live cached values.
func (c *Cache) Len() int {
	n := 0
	for i := range c.buckets {
		r := c.buckets[i].head.Load()
		if r == nil {
			continue
		}
		for _, e := range r.entries {
			if e.val != nil {
				n++
			}
		}
	}
	return n
}

// Bytes returns the budgeted footprint.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }
