package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig19", Fig19) }

// Fig19 reproduces Figure 19: the CDFs of (a) the maximum number of times
// each address in the data zone is written and (b) per-bit wear, after
// running E2-NVM with a large cluster count on a MNIST+Fashion-MNIST
// mixture with warm-up, streaming writes, and deletes. The paper reads off
// P(address writes ≤ 10) ≈ 0.81 and P(bit wear ≤ 5) ≈ 0.85, P(≤7) ≈ 0.98 —
// i.e. placement does not create hot spots.
func Fig19(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	numSegs := cfg.scaleInt(768, 192)
	k := 10
	warm := numSegs / 2
	writes := cfg.scaleInt(4*numSegs, 2*numSegs)

	mix, err := workload.Mixture("mnist+fashion",
		workload.MNISTLike(warm+writes, bits, cfg.Seed),
		workload.FashionMNISTLike(warm+writes, bits, cfg.Seed+1),
	)
	if err != nil {
		return nil, err
	}
	mix = mix.Shuffled(cfg.Seed + 2)

	devCfg := nvm.DefaultConfig(segSize, numSegs)
	devCfg.TrackBitWear = true
	dev, err := nvm.NewDevice(devCfg)
	if err != nil {
		return nil, err
	}
	for a := 0; a < numSegs; a++ {
		if err := dev.FillSegment(a, toBytes(mix.Items[a%len(mix.Items)], segSize)); err != nil {
			return nil, err
		}
	}
	model, err := core.Train(currentSample(mix.Items, numSegs), core.Config{
		InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	store, err := kvstore.OpenWith(dev, model, kvstore.Options{})
	if err != nil {
		return nil, err
	}
	dev.ResetStats()

	// Warm up the data zone, then stream writes with deletes so every
	// word in the zone is updated ~4 times on average.
	next := 0
	val := func() []byte {
		v := toBytes(mix.Items[next%len(mix.Items)], segSize)
		next++
		return v[:segSize-kvstore.RecordOverhead]
	}
	for key := uint64(0); key < uint64(warm); key++ {
		if err := store.Put(key, val()); err != nil {
			return nil, err
		}
	}
	live := uint64(warm)
	for i := 0; i < writes; i++ {
		key := uint64(i % warm)
		if i%5 == 4 {
			// Delete an item to make space (keeps the pool churning).
			if _, err := store.Delete(key); err != nil {
				return nil, err
			}
			live--
		}
		if err := store.Put(key, val()); err != nil {
			return nil, err
		}
		live++
	}
	_ = live

	addrCDF := stats.NewCDFUint64(dev.SegmentWrites())
	bitCDF := stats.NewCDFUint32(dev.BitWear())

	table := stats.NewTable("metric", "x", "P(X<=x)")
	for _, x := range []float64{1, 2, 5, 10, 20, 50} {
		table.AddRow("address_writes", x, addrCDF.P(x))
	}
	for _, x := range []float64{1, 2, 3, 5, 7, 10, 20} {
		table.AddRow("bit_wear", x, bitCDF.P(x))
	}
	addrSeries := stats.Series{Name: "cdf_address_writes"}
	for _, pt := range addrCDF.Points(40) {
		addrSeries.Add(pt[0], pt[1])
	}
	bitSeries := stats.Series{Name: "cdf_bit_wear"}
	for _, pt := range bitCDF.Points(40) {
		bitSeries.Add(pt[0], pt[1])
	}
	return &Result{
		ID:     "fig19",
		Title:  "Wear distribution CDFs: per-address writes and per-bit flips",
		Table:  table,
		Series: []stats.Series{addrSeries, bitSeries},
		Notes: []string{
			fmt.Sprintf("%d segments × %d B, warm-up %d, %d streamed writes with deletes, k=%d", numSegs, segSize, warm, writes, k),
			fmt.Sprintf("p50/p95/p99 address writes: %.0f/%.0f/%.0f; p50/p95/p99 bit wear: %.0f/%.0f/%.0f",
				addrCDF.Quantile(0.5), addrCDF.Quantile(0.95), addrCDF.Quantile(0.99),
				bitCDF.Quantile(0.5), bitCDF.Quantile(0.95), bitCDF.Quantile(0.99)),
			"expected shape: heavy concentration at low counts — no hot spots",
		},
	}, nil
}

// currentSample converts up to n items to bit vectors for training.
func currentSample(items [][]float64, n int) [][]float64 {
	if n > len(items) {
		n = len(items)
	}
	return items[:n]
}
