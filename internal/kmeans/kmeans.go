// Package kmeans implements Lloyd's algorithm with k-means++ seeding, the
// SSE ("elbow") diagnostics the paper uses to choose K (§4.1.4, Figure 8),
// and incremental assignment for streaming prediction. It clusters either
// raw bit vectors (the PNW baseline) or VAE latent vectors (E2-NVM).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"e2nvm/internal/mat"
)

// Model is a trained K-means clustering.
type Model struct {
	K         int
	Centroids [][]float64
	// Iterations is the number of Lloyd iterations performed in Fit.
	Iterations int
	// SSE is the final sum of squared errors over the training set.
	SSE float64
}

// Config controls training.
type Config struct {
	K        int
	MaxIter  int     // default 50
	Tol      float64 // centroid-shift convergence threshold, default 1e-4
	Seed     int64
	PlusPlus bool // use k-means++ seeding (default true via NewConfig)

	// Rand, when non-nil, is the generator seeding draws come from,
	// overriding Seed. Injecting a shared *rand.Rand lets a caller thread
	// one deterministic stream through several fits; otherwise each Fit
	// derives its own stream from Seed, so same-seed runs are
	// bit-identical.
	Rand *rand.Rand
}

// NewConfig returns a Config with defaults for the given K.
func NewConfig(k int) Config {
	return Config{K: k, MaxIter: 50, Tol: 1e-4, PlusPlus: true}
}

func (c *Config) validate(n int) error {
	if c.K <= 0 {
		return fmt.Errorf("kmeans: K %d must be positive", c.K)
	}
	if n == 0 {
		return fmt.Errorf("kmeans: empty training set")
	}
	if c.K > n {
		return fmt.Errorf("kmeans: K %d exceeds sample count %d", c.K, n)
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	return nil
}

// Fit trains K-means on data (each row one sample).
func Fit(data [][]float64, cfg Config) (*Model, error) {
	if err := cfg.validate(len(data)); err != nil {
		return nil, err
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("kmeans: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}

	m := &Model{K: cfg.K}
	if cfg.PlusPlus {
		m.Centroids = seedPlusPlus(data, cfg.K, rng)
	} else {
		m.Centroids = seedRandom(data, cfg.K, rng)
	}

	assign := make([]int, len(data))
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		m.Iterations = iter + 1
		// Assignment step.
		for i, x := range data {
			assign[i] = m.Predict(x)
		}
		// Update step.
		for c := range sums {
			mat.Fill(sums[c], 0)
			counts[c] = 0
		}
		for i, x := range data {
			c := assign[i]
			counts[c]++
			mat.AddScaled(sums[c], 1, x)
		}
		shift := 0.0
		for c := range sums {
			if counts[c] == 0 {
				// Empty cluster: reseed at the farthest point.
				far := farthestPoint(data, m)
				copy(sums[c], data[far])
				counts[c] = 1
			}
			inv := 1.0 / float64(counts[c])
			for j := range sums[c] {
				sums[c][j] *= inv
			}
			shift += mat.SqDist(m.Centroids[c], sums[c])
			copy(m.Centroids[c], sums[c])
		}
		if math.Sqrt(shift) < cfg.Tol {
			break
		}
	}
	m.SSE = SSE(data, m)
	return m, nil
}

func seedRandom(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	perm := rng.Perm(len(data))
	cents := make([][]float64, k)
	for i := 0; i < k; i++ {
		cents[i] = append([]float64(nil), data[perm[i]]...)
	}
	return cents
}

// seedPlusPlus implements k-means++ (Arthur & Vassilvitskii): pick each new
// seed with probability proportional to its squared distance from the
// nearest existing seed.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	cents := make([][]float64, 0, k)
	cents = append(cents, append([]float64(nil), data[rng.Intn(len(data))]...))
	d2 := make([]float64, len(data))
	for len(cents) < k {
		total := 0.0
		last := cents[len(cents)-1]
		for i, x := range data {
			d := mat.SqDist(x, last)
			if len(cents) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// Degenerate data: fall back to any point.
			cents = append(cents, append([]float64(nil), data[rng.Intn(len(data))]...))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(data) - 1
		for i := range data {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		cents = append(cents, append([]float64(nil), data[pick]...))
	}
	return cents
}

func farthestPoint(data [][]float64, m *Model) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		d := mat.SqDist(x, m.Centroids[m.Predict(x)])
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Predict returns the index of the nearest centroid to x. The distance to
// each centroid accumulates term by term — in the same ascending order as
// mat.SqDist — and bails as soon as the running sum reaches the best seen:
// squared terms only grow, and the winner update is strict-<, so the early
// exit returns exactly the full scan's answer (first wins ties) while
// skipping most of the arithmetic on far centroids.
func (m *Model) Predict(x []float64) int {
	if len(m.Centroids) > 0 && len(x) != len(m.Centroids[0]) {
		panic(fmt.Sprintf("kmeans: Predict input %d wide, centroids %d", len(x), len(m.Centroids[0])))
	}
	best, bestD := 0, math.Inf(1)
	for c, cent := range m.Centroids {
		d := 0.0
		for i, cv := range cent {
			diff := x[i] - cv
			d += diff * diff
			if d >= bestD {
				break
			}
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Distance returns the squared distance from x to its nearest centroid.
func (m *Model) Distance(x []float64) float64 {
	return mat.SqDist(x, m.Centroids[m.Predict(x)])
}

// SSE computes the sum of squared errors of data under model m (equation 1
// in the paper).
func SSE(data [][]float64, m *Model) float64 {
	s := 0.0
	for _, x := range data {
		s += m.Distance(x)
	}
	return s
}

// ElbowPoint scans SSE values fitted for increasing K and returns the index
// of the "elbow": the point after which the marginal SSE reduction collapses.
// It maximizes the scale-invariant ratio between the improvement achieved by
// step i and the improvement achieved by step i+1, which locates the knee
// even when early steps also produce large absolute drops. sses must be
// ordered by increasing K.
func ElbowPoint(sses []float64) int {
	if len(sses) < 3 {
		return len(sses) - 1
	}
	const eps = 1e-12
	best, bestRatio := 1, math.Inf(-1)
	for i := 1; i < len(sses)-1; i++ {
		gain := sses[i-1] - sses[i]
		next := sses[i] - sses[i+1]
		if next < eps {
			next = eps
		}
		if ratio := gain / next; ratio > bestRatio {
			best, bestRatio = i, ratio
		}
	}
	return best
}

// SSECurve fits a model for each K in ks and returns the corresponding SSE
// values (the elbow-method input).
func SSECurve(data [][]float64, ks []int, seed int64) ([]float64, error) {
	out := make([]float64, len(ks))
	for i, k := range ks {
		cfg := NewConfig(k)
		cfg.Seed = seed
		m, err := Fit(data, cfg)
		if err != nil {
			return nil, err
		}
		out[i] = m.SSE
	}
	return out, nil
}
