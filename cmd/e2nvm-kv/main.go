// Command e2nvm-kv is an interactive key/value shell over an
// E2-NVM-managed simulated PCM device. It exists to poke at the system by
// hand: every command prints the bit flips and energy it cost.
//
// Usage:
//
//	e2nvm-kv [-segments 1024] [-segsize 256] [-clusters 0] [-seed 42]
//
// Commands:
//
//	put <key> <value>     store a value
//	get <key>             read a value
//	del <key>             delete a key
//	scan <lo> <hi>        list keys in a range
//	stats                 cumulative device/store metrics
//	retrain               retrain the model on current contents
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"e2nvm"
)

func main() {
	var (
		segments = flag.Int("segments", 1024, "number of NVM segments")
		segsize  = flag.Int("segsize", 256, "segment size in bytes")
		clusters = flag.Int("clusters", 0, "cluster count K (0 = elbow method)")
		seed     = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	fmt.Printf("training E2-NVM model over %d×%dB segments...\n", *segments, *segsize)
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: *segsize,
		NumSegments: *segments,
		Clusters:    *clusters,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	fmt.Printf("ready: %s (max value %d B)\n", store, store.MaxValue())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if done := execute(store, strings.Fields(sc.Text())); done {
			return
		}
		fmt.Print("> ")
	}
}

func execute(store *e2nvm.Store, args []string) bool {
	if len(args) == 0 {
		return false
	}
	before := store.Metrics()
	switch args[0] {
	case "put":
		if len(args) < 3 {
			fmt.Println("usage: put <key> <value>")
			return false
		}
		key, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Println("bad key:", err)
			return false
		}
		if err := store.Put(key, []byte(strings.Join(args[2:], " "))); err != nil {
			fmt.Println("put:", err)
			return false
		}
		report(before, store.Metrics())
	case "get":
		key, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Println("bad key:", err)
			return false
		}
		v, ok, err := store.Get(key)
		switch {
		case err != nil:
			fmt.Println("get:", err)
		case !ok:
			fmt.Println("(not found)")
		default:
			fmt.Printf("%q\n", v)
		}
	case "del":
		key, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			fmt.Println("bad key:", err)
			return false
		}
		ok, err := store.Delete(key)
		if err != nil {
			fmt.Println("del:", err)
		} else if !ok {
			fmt.Println("(not found)")
		} else {
			report(before, store.Metrics())
		}
	case "scan":
		if len(args) < 3 {
			fmt.Println("usage: scan <lo> <hi>")
			return false
		}
		lo, _ := strconv.ParseUint(args[1], 10, 64)
		hi, _ := strconv.ParseUint(args[2], 10, 64)
		n := 0
		_ = store.Scan(lo, hi, func(k uint64, v []byte) bool {
			fmt.Printf("  %d = %q\n", k, v)
			n++
			return n < 50
		})
		fmt.Printf("(%d keys)\n", n)
	case "stats":
		m := store.Metrics()
		fmt.Printf("writes=%d reads=%d flips=%d flips/databit=%.4f energy=%.2f uJ avg_write=%.0f ns fallbacks=%d retrains=%d\n",
			m.Writes, m.Reads, m.BitsFlipped, m.FlipsPerDataBit, m.EnergyPJ/1e6, m.AvgWriteLatencyNs, m.Fallbacks, m.Retrains)
	case "retrain":
		fmt.Println("retraining...")
		if err := store.Retrain(); err != nil {
			fmt.Println("retrain:", err)
		} else {
			fmt.Println("done")
		}
	case "quit", "exit":
		return true
	default:
		fmt.Println("commands: put get del scan stats retrain quit")
	}
	return false
}

func report(before, after e2nvm.Metrics) {
	fmt.Printf("ok (%d bit flips, %.0f pJ)\n",
		after.BitsFlipped-before.BitsFlipped, after.EnergyPJ-before.EnergyPJ)
}
