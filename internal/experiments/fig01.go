package experiments

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
)

func init() { register("fig01", Fig1) }

// Fig1 reproduces Figure 1: the latency and energy of overwriting Optane
// blocks with content that is x% different (Hamming) from what the block
// already holds, for x from 0 to 100. The paper measures up to 56% energy
// savings at low difference and a latency win from skipped cache lines.
func Fig1(cfg RunConfig) (*Result, error) {
	const segSize = 256 // one Optane block
	numSegs := cfg.scaleInt(512, 32)
	r := rand.New(rand.NewSource(cfg.Seed))

	table := stats.NewTable("diff_%", "avg_flips/write", "avg_energy_pJ/write", "avg_latency_ns/write", "energy_savings_%")
	var energySeries, latencySeries stats.Series
	energySeries.Name = "energy_pJ_per_write"
	latencySeries.Name = "latency_ns_per_write"

	type row struct {
		diff                   int
		flips, energy, latency float64
	}
	var rows []row
	for diff := 0; diff <= 100; diff += 10 {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			return nil, err
		}
		dev.Fill(r)
		dev.ResetStats()
		flipTarget := segSize * 8 * diff / 100
		for a := 0; a < numSegs; a++ {
			old, err := dev.Peek(a)
			if err != nil {
				return nil, err
			}
			nw := flipFraction(r, old, flipTarget)
			if _, err := dev.Write(a, nw); err != nil {
				return nil, err
			}
		}
		s := dev.Stats()
		n := float64(numSegs)
		rows = append(rows, row{
			diff:    diff,
			flips:   float64(s.BitsFlipped) / n,
			energy:  s.EnergyPJ / n,
			latency: s.WriteLatencyNs / n,
		})
	}
	base := rows[len(rows)-1].energy // 100% difference = worst case
	for _, rw := range rows {
		savings := (1 - rw.energy/base) * 100
		table.AddRow(rw.diff, rw.flips, rw.energy, rw.latency, savings)
		energySeries.Add(float64(rw.diff), rw.energy)
		latencySeries.Add(float64(rw.diff), rw.latency)
	}
	res := &Result{
		ID:     "fig01",
		Title:  "Latency and memory energy vs content difference (real-Optane motivation)",
		Table:  table,
		Series: []stats.Series{energySeries, latencySeries},
		Notes: []string{
			fmt.Sprintf("%d blocks of %d B; energy model: 50 pJ/flipped bit + fixed access overhead", numSegs, segSize),
			"paper reports up to 56% average energy savings when overwriting similar content",
		},
	}
	return res, nil
}

// flipFraction returns a copy of old with exactly n bits flipped in a
// contiguous run starting at a random offset (wrapping). Real partial
// updates touch contiguous regions, which is what lets the controller skip
// clean cache lines — the source of the latency trend in Figure 1.
func flipFraction(r *rand.Rand, old []byte, n int) []byte {
	out := append([]byte(nil), old...)
	total := len(old) * 8
	if n >= total {
		for i := range out {
			out[i] = ^out[i]
		}
		return out
	}
	start := r.Intn(total)
	for i := 0; i < n; i++ {
		b := (start + i) % total
		out[b>>3] ^= 1 << (uint(b) & 7)
	}
	return out
}
