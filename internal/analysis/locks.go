package analysis

// This file is the shared lock-tracking half of the inter-procedural
// framework: it identifies the program's mutexes (mutex-typed struct
// fields and package-level mutex variables), simulates which of them are
// held along the statement paths of one function (the same conservative
// structural walk lockdiscipline uses for its leaked-lock rule), and
// propagates held-lock contexts across the call graph so whole-program
// analyzers can ask two questions lockdiscipline cannot:
//
//   - which locks may be held when another lock is acquired (the
//     lock-acquisition graph lockorder builds its deadlock-cycle check
//     on), and
//   - which locks are guaranteed held on entry to a function that never
//     locks anything itself (the guard inference atomicmix needs to
//     classify field accesses inside unexported helpers).
//
// Mutexes are identified at type granularity: every instance of
// kvstore.Store shares the LockID "kvstore.Store.mu". That approximation
// is what makes the analysis whole-program tractable, and it is exact for
// this codebase, where no code path locks two instances of the same
// struct type.
//
// Propagation semantics, chosen to match how the code actually runs:
//
//   - a static or dynamic call transfers the caller's held set to the
//     callee as its entry context;
//   - a go statement's target runs with an empty held set (a goroutine
//     does not inherit its creator's locks);
//   - creating a function literal transfers the creation-site held set
//     (a closure built under a lock is conservatively assumed to run
//     under it — suppressible with lint:allow on the creation line when
//     the closure provably runs after release);
//   - calls through unresolvable function values propagate nothing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockID names one program mutex at type granularity: "pkg.Type.field"
// for a mutex-typed struct field, "pkg.var" for a package-level mutex.
type LockID string

// LockSet is a set of held LockIDs. Treat values as immutable: with and
// without return clones.
type LockSet map[LockID]bool

func (s LockSet) with(id LockID) LockSet {
	if s[id] {
		return s
	}
	out := make(LockSet, len(s)+1)
	for k := range s {
		out[k] = true
	}
	out[id] = true
	return out
}

func (s LockSet) without(id LockID) LockSet {
	if !s[id] {
		return s
	}
	out := make(LockSet, len(s))
	for k := range s {
		if k != id {
			out[k] = true
		}
	}
	return out
}

func (s LockSet) union(t LockSet) LockSet {
	if len(t) == 0 {
		return s
	}
	if len(s) == 0 {
		return t
	}
	out := make(LockSet, len(s)+len(t))
	for k := range s {
		out[k] = true
	}
	for k := range t {
		out[k] = true
	}
	return out
}

// key returns a canonical string for memoizing (function, held-set)
// contexts.
func (s LockSet) key() string {
	if len(s) == 0 {
		return ""
	}
	ids := make([]string, 0, len(s))
	for id := range s {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return strings.Join(ids, "+")
}

// Names returns the set's ids sorted, for deterministic diagnostics.
func (s LockSet) Names() []string {
	ids := make([]string, 0, len(s))
	for id := range s {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// LockOp classifies a mutex method call.
type LockOp int

// Lock operations. RLock/RUnlock map to the same acquire/release pair:
// the read/write distinction does not matter for ordering or guarding.
const (
	LockAcquire LockOp = iota
	LockRelease
)

// LockInfo indexes the program's trackable mutexes by their defining
// *types.Var (struct field or package-level variable).
type LockInfo struct {
	ids map[*types.Var]LockID
	// guards maps each mutex field's LockID to the sibling fields it
	// guards under the lockdiscipline convention (every non-mutex field
	// declared after the mutex), keyed by field object.
	guarded map[*types.Var]LockID
}

// CollectLockInfo finds every mutex-typed struct field and package-level
// mutex variable across pkgs, and records — for struct fields named "mu"
// — which sibling fields the lockdiscipline convention places under them.
func CollectLockInfo(pkgs []*Package) *LockInfo {
	li := &LockInfo{ids: map[*types.Var]LockID{}, guarded: map[*types.Var]LockID{}}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.TypeName:
				if obj.IsAlias() {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				var guardID LockID
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if isMutexType(f.Type()) {
						id := LockID(pkg.Types.Name() + "." + obj.Name() + "." + f.Name())
						li.ids[f] = id
						if f.Name() == "mu" && guardID == "" {
							guardID = id
						}
					} else if guardID != "" {
						li.guarded[f] = guardID
					}
				}
			case *types.Var:
				if isMutexType(obj.Type()) {
					li.ids[obj] = LockID(pkg.Types.Name() + "." + obj.Name())
				}
			}
		}
	}
	return li
}

// GuardOf returns the LockID guarding a struct field under the
// lockdiscipline convention (the field is declared after its struct's
// "mu" mutex), or "" when the field is unguarded.
func (li *LockInfo) GuardOf(field *types.Var) LockID { return li.guarded[field] }

// VarOf returns the LockID of a mutex field or package-level mutex
// variable, or "".
func (li *LockInfo) VarOf(v *types.Var) LockID { return li.ids[v] }

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// LockOpAt classifies call as an acquire or release of a tracked mutex.
func (li *LockInfo) LockOpAt(info *types.Info, call *ast.CallExpr) (LockID, LockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op LockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = LockAcquire
	case "Unlock", "RUnlock":
		op = LockRelease
	default:
		return "", 0, false
	}
	v := li.resolveMutexExpr(info, sel.X)
	if v == "" {
		return "", 0, false
	}
	return v, op, true
}

// resolveMutexExpr maps the receiver expression of a Lock/Unlock call to
// a tracked LockID: a field selection x.mu, or a (package-level) mutex
// identifier.
func (li *LockInfo) resolveMutexExpr(info *types.Info, e ast.Expr) LockID {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return li.ids[v]
			}
			return ""
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return li.ids[v]
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return li.ids[v]
		}
	}
	return ""
}

// HeldVisitor receives WalkHeld's events.
type HeldVisitor struct {
	// Node is invoked for every visited AST node of the function's own
	// body with the locks held at that point. A nested function literal
	// is delivered once (its creation node) and not descended into.
	Node func(n ast.Node, held LockSet)
	// Spawn is invoked for each go statement with the locks held at the
	// launch site. The goroutine's body runs with no inherited locks; the
	// statement's call expression is not separately delivered to Node.
	Spawn func(g *ast.GoStmt, held LockSet)
}

// WalkHeld simulates lock state through fn's own body starting from the
// entry held-set, invoking v's callbacks with the set current at each
// point. The walk mirrors lockdiscipline's structural return-path walk:
// Lock/RLock adds, explicit Unlock/RUnlock removes, defer Unlock keeps
// the lock held for the remainder of the body (it releases only at
// return), and an if/else merge unions the branch exits, dropping
// branches that terminate in return or panic.
func (li *LockInfo) WalkHeld(fn *FuncNode, entry LockSet, v HeldVisitor) {
	info := fn.Pkg.TypesInfo
	if entry == nil {
		entry = LockSet{}
	}

	visitExpr := func(e ast.Expr, held LockSet) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Lit {
				if v.Node != nil {
					v.Node(lit, held)
				}
				return false
			}
			if v.Node != nil {
				v.Node(n, held)
			}
			return true
		})
	}

	var walkStmts func(stmts []ast.Stmt, held LockSet) LockSet
	var walkStmt func(s ast.Stmt, held LockSet) LockSet

	walkStmt = func(s ast.Stmt, held LockSet) LockSet {
		switch s := s.(type) {
		case *ast.ExprStmt:
			visitExpr(s.X, held)
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, op, ok := li.LockOpAt(info, call); ok {
					if op == LockAcquire {
						held = held.with(id)
					} else {
						held = held.without(id)
					}
				}
			}
		case *ast.DeferStmt:
			if _, op, ok := li.LockOpAt(info, s.Call); ok && op == LockRelease {
				// The lock stays held for the rest of the body; the defer
				// releases it only on the way out.
				break
			}
			visitExpr(s.Call, held)
		case *ast.GoStmt:
			if v.Spawn != nil {
				v.Spawn(s, held)
			}
			for _, a := range s.Call.Args {
				visitExpr(a, held)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				visitExpr(r, held)
			}
		case *ast.BlockStmt:
			held = walkStmts(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				held = walkStmt(s.Init, held)
			}
			visitExpr(s.Cond, held)
			bodyExit := walkStmts(s.Body.List, held)
			if s.Else != nil {
				elseExit := walkStmt(s.Else, held)
				held = mergeHeld(s.Body.List, bodyExit, flattenElse(s.Else), elseExit)
			} else if !heldTerminates(s.Body.List) {
				held = held.union(bodyExit)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				held = walkStmt(s.Init, held)
			}
			visitExpr(s.Cond, held)
			if s.Post != nil {
				walkStmt(s.Post, held)
			}
			walkStmts(s.Body.List, held)
		case *ast.RangeStmt:
			visitExpr(s.X, held)
			visitExpr(s.Key, held)
			visitExpr(s.Value, held)
			walkStmts(s.Body.List, held)
		case *ast.SwitchStmt:
			if s.Init != nil {
				held = walkStmt(s.Init, held)
			}
			visitExpr(s.Tag, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						visitExpr(e, held)
					}
					walkStmts(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				held = walkStmt(s.Init, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm != nil {
						walkStmt(cc.Comm, held)
					}
					walkStmts(cc.Body, held)
				}
			}
		case *ast.LabeledStmt:
			held = walkStmt(s.Stmt, held)
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				visitExpr(l, held)
			}
			for _, r := range s.Rhs {
				visitExpr(r, held)
			}
		case *ast.IncDecStmt:
			visitExpr(s.X, held)
		case *ast.SendStmt:
			visitExpr(s.Chan, held)
			visitExpr(s.Value, held)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok {
						for _, val := range vs.Values {
							visitExpr(val, held)
						}
					}
				}
			}
		}
		return held
	}

	walkStmts = func(stmts []ast.Stmt, held LockSet) LockSet {
		for _, s := range stmts {
			held = walkStmt(s, held)
		}
		return held
	}

	body := fn.Body()
	if body == nil {
		return
	}
	walkStmts(body.List, entry)
}

// flattenElse flattens an else arm into its statement list.
func flattenElse(s ast.Stmt) []ast.Stmt {
	if b, ok := s.(*ast.BlockStmt); ok {
		return b.List
	}
	return []ast.Stmt{s}
}

// mergeHeld combines the exit sets of an if/else pair: a branch that
// terminates (return or panic) does not flow out.
func mergeHeld(body []ast.Stmt, bodyExit LockSet, els []ast.Stmt, elseExit LockSet) LockSet {
	bt, et := heldTerminates(body), heldTerminates(els)
	switch {
	case bt && et:
		return LockSet{}
	case bt:
		return elseExit
	case et:
		return bodyExit
	default:
		return bodyExit.union(elseExit)
	}
}

// heldTerminates reports whether a statement list ends in return or panic.
func heldTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// LockEdge is the first witness of one acquired-while-held pair: inner
// was acquired at Site inside Fn while outer was held, reached from an
// entry point via Chain.
type LockEdge struct {
	Outer, Inner LockID
	Site         token.Pos
	Fn           *FuncNode
	Chain        string // "entry -> ... -> Fn" context provenance
}

// LockGraph is the program's lock-acquisition graph plus the per-function
// guaranteed-entry-held sets the propagation computed on the way.
type LockGraph struct {
	// Edges[outer][inner] is the first witness of inner being acquired
	// while outer was held.
	Edges map[LockID]map[LockID]*LockEdge
	// EntryHeld[fn] is the set of locks guaranteed held whenever fn runs:
	// the intersection of every propagated entry context. Functions
	// callable from outside the program (exported, or never called
	// in-program) include the empty context, so their set is empty.
	EntryHeld map[*FuncNode]LockSet
	// Order lists every LockID that appears in Edges, sorted.
	Order []LockID
}

// lockCtx is one propagation work item: fn analyzed under an entry
// held-set, with provenance back to the context that created it.
type lockCtx struct {
	fn     *FuncNode
	entry  LockSet
	parent *lockCtx
}

func (c *lockCtx) chain() string {
	var names []string
	for cur := c; cur != nil; cur = cur.parent {
		names = append(names, cur.fn.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// BuildLockGraph runs the context-sensitive propagation over the whole
// call graph. skip, when non-nil, prunes a propagation edge (the hook
// analyzers use to honor lint:allow on a call or closure-creation site);
// it receives the call-graph edge when one exists and a synthesized
// CallRef for closure creations.
func (li *LockInfo) BuildLockGraph(g *CallGraph, skip func(from *FuncNode, c Call) bool) *LockGraph {
	lg := &LockGraph{
		Edges:     map[LockID]map[LockID]*LockEdge{},
		EntryHeld: map[*FuncNode]LockSet{},
	}

	// In-program callee set, to find entry points.
	hasCaller := map[*FuncNode]bool{}
	for _, n := range g.Nodes() {
		for _, c := range n.Calls {
			if c.Callee != nil {
				hasCaller[c.Callee] = true
			}
			for _, t := range c.Targets {
				hasCaller[t] = true
			}
		}
	}

	// callAt maps a node's call-site positions back to its resolved
	// call-graph edges, so the AST walk can follow them.
	type siteKey struct {
		fn   *FuncNode
		site token.Pos
	}
	callAt := map[siteKey]Call{}
	for _, n := range g.Nodes() {
		for _, c := range n.Calls {
			callAt[siteKey{n, c.Site}] = c
		}
	}

	ctxSeen := map[*FuncNode]map[string]bool{}
	var queue []*lockCtx
	enqueue := func(fn *FuncNode, entry LockSet, parent *lockCtx) {
		if fn == nil {
			return
		}
		if prev, ok := lg.EntryHeld[fn]; !ok {
			lg.EntryHeld[fn] = entry
		} else {
			// Guaranteed-held is the intersection across contexts.
			inter := LockSet{}
			for id := range prev {
				if entry[id] {
					inter[id] = true
				}
			}
			lg.EntryHeld[fn] = inter
		}
		byKey := ctxSeen[fn]
		if byKey == nil {
			byKey = map[string]bool{}
			ctxSeen[fn] = byKey
		}
		k := entry.key()
		if byKey[k] {
			return
		}
		byKey[k] = true
		queue = append(queue, &lockCtx{fn: fn, entry: entry, parent: parent})
	}

	// Seed: every function callable from outside the program runs with no
	// locks held — exported declared functions, and any function with no
	// in-program caller.
	for _, n := range g.Nodes() {
		if n.Obj != nil && (n.Obj.Exported() || !hasCaller[n]) {
			enqueue(n, LockSet{}, nil)
		}
	}

	for len(queue) > 0 {
		ctx := queue[0]
		queue = queue[1:]
		fn := ctx.fn
		info := fn.Pkg.TypesInfo
		li.WalkHeld(fn, ctx.entry, HeldVisitor{
			Node: func(n ast.Node, held LockSet) {
				switch n := n.(type) {
				case *ast.CallExpr:
					if id, op, ok := li.LockOpAt(info, n); ok && op == LockAcquire {
						for outer := range held {
							recordEdge(lg, outer, id, n.Pos(), fn, ctx)
						}
						return
					}
					c, ok := callAt[siteKey{fn, n.Pos()}]
					if !ok {
						return
					}
					if skip != nil && skip(fn, c) {
						return
					}
					if c.Callee != nil {
						enqueue(c.Callee, held, ctx)
					}
					for _, t := range c.Targets {
						enqueue(t, held, ctx)
					}
				case *ast.FuncLit:
					// Closure creation: conservatively assume it runs with
					// the creation-site locks held.
					ref := Call{Site: n.Pos(), Kind: CallRef, Callee: g.LitNode(n)}
					if skip != nil && skip(fn, ref) {
						return
					}
					enqueue(g.LitNode(n), held, ctx)
				}
			},
			Spawn: func(s *ast.GoStmt, held LockSet) {
				// A goroutine starts with no inherited locks.
				switch f := ast.Unparen(s.Call.Fun).(type) {
				case *ast.FuncLit:
					enqueue(g.LitNode(f), LockSet{}, ctx)
				default:
					if c, ok := callAt[siteKey{fn, s.Call.Pos()}]; ok {
						if skip != nil && skip(fn, c) {
							return
						}
						if c.Callee != nil {
							enqueue(c.Callee, LockSet{}, ctx)
						}
						for _, t := range c.Targets {
							enqueue(t, LockSet{}, ctx)
						}
					}
				}
			},
		})
	}

	// Functions the seeding and propagation never reached (e.g. helpers of
	// dead code) still get walked once with an empty context so their own
	// nested acquisitions contribute edges.
	for _, n := range g.Nodes() {
		if _, ok := lg.EntryHeld[n]; !ok {
			enqueue(n, LockSet{}, nil)
		}
	}
	for len(queue) > 0 {
		ctx := queue[0]
		queue = queue[1:]
		info := ctx.fn.Pkg.TypesInfo
		li.WalkHeld(ctx.fn, ctx.entry, HeldVisitor{
			Node: func(n ast.Node, held LockSet) {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, op, ok := li.LockOpAt(info, call); ok && op == LockAcquire {
						for outer := range held {
							recordEdge(lg, outer, id, call.Pos(), ctx.fn, ctx)
						}
					}
				}
			},
		})
	}

	ids := map[LockID]bool{}
	for outer, inner := range lg.Edges {
		ids[outer] = true
		for id := range inner {
			ids[id] = true
		}
	}
	for id := range ids {
		lg.Order = append(lg.Order, id)
	}
	sort.Slice(lg.Order, func(i, j int) bool { return lg.Order[i] < lg.Order[j] })
	return lg
}

func recordEdge(lg *LockGraph, outer, inner LockID, site token.Pos, fn *FuncNode, ctx *lockCtx) {
	m := lg.Edges[outer]
	if m == nil {
		m = map[LockID]*LockEdge{}
		lg.Edges[outer] = m
	}
	if _, ok := m[inner]; ok {
		return
	}
	m[inner] = &LockEdge{Outer: outer, Inner: inner, Site: site, Fn: fn, Chain: ctx.chain()}
}
