package vae

import (
	"math"
	"math/rand"
	"testing"

	"e2nvm/internal/kmeans"
)

// bitClusters generates n binary vectors around k prototype patterns with
// per-bit flip noise — the same planted structure the workload generators
// use.
func bitClusters(r *rand.Rand, n, k, dim int, noise float64) ([][]float64, []int) {
	protos := make([][]float64, k)
	for c := range protos {
		p := make([]float64, dim)
		for j := range p {
			if r.Intn(2) == 1 {
				p[j] = 1
			}
		}
		protos[c] = p
	}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		c := r.Intn(k)
		labels[i] = c
		row := append([]float64(nil), protos[c]...)
		for j := range row {
			if r.Float64() < noise {
				row[j] = 1 - row[j]
			}
		}
		data[i] = row
	}
	return data, labels
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 0}); err == nil {
		t.Fatal("expected error for InputDim 0")
	}
}

func TestDefaults(t *testing.T) {
	m, err := New(Config{InputDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.LatentDim != 10 || cfg.HiddenDim != 32 || cfg.LR != 1e-3 || cfg.Beta != 1 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
	if m.LatentDim() != 10 || m.InputDim() != 64 {
		t.Fatal("accessor mismatch")
	}
	if m.ParamCount() == 0 {
		t.Fatal("ParamCount zero")
	}
	if m.FLOPsPerPredict() <= 0 {
		t.Fatal("FLOPsPerPredict not positive")
	}
}

func TestEncodeShapeAndDeterminism(t *testing.T) {
	m, err := New(Config{InputDim: 32, LatentDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 32)
	x[3] = 1
	z1 := m.Encode(x)
	z2 := m.Encode(x)
	if len(z1) != 4 {
		t.Fatalf("latent len = %d, want 4", len(z1))
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("Encode not deterministic")
		}
	}
}

func TestEncodeWrongSizePanics(t *testing.T) {
	m, _ := New(Config{InputDim: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Encode(make([]float64, 7))
}

func TestTrainingReducesLoss(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data, _ := bitClusters(r, 200, 4, 48, 0.05)
	m, err := New(Config{InputDim: 48, HiddenDim: 32, LatentDim: 6, Seed: 3, Beta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := m.Fit(data, FitOptions{Epochs: 15, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	first := hist[0].Train.Total(0.1, 0)
	last := hist[len(hist)-1].Train.Total(0.1, 0)
	if last >= first*0.8 {
		t.Fatalf("loss did not drop: %v -> %v", first, last)
	}
}

func TestValidationLossTracked(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _ := bitClusters(r, 150, 3, 32, 0.05)
	train, val := data[:120], data[120:]
	m, err := New(Config{InputDim: 32, LatentDim: 4, Seed: 5, Beta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	hist, err := m.Fit(train, FitOptions{Epochs: 8, BatchSize: 16, Validation: val,
		OnEpoch: func(e EpochLoss) { epochs++ }})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 8 {
		t.Fatalf("OnEpoch called %d times, want 8", epochs)
	}
	for _, h := range hist {
		if h.Validation.Recon == 0 {
			t.Fatal("validation loss not recorded")
		}
	}
	// Validation loss must also come down on in-distribution data.
	if hist[len(hist)-1].Validation.Recon >= hist[0].Validation.Recon {
		t.Fatalf("validation loss rose: %v -> %v",
			hist[0].Validation.Recon, hist[len(hist)-1].Validation.Recon)
	}
}

func TestReconstructionQuality(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _ := bitClusters(r, 300, 3, 32, 0.02)
	m, err := New(Config{InputDim: 32, HiddenDim: 48, LatentDim: 8, Seed: 7, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(data, FitOptions{Epochs: 30, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	// After training, reconstructions should match most input bits.
	wrong, total := 0, 0
	for _, x := range data[:50] {
		rec := m.Reconstruct(x)
		for i := range x {
			total++
			if (rec[i] >= 0.5) != (x[i] >= 0.5) {
				wrong++
			}
		}
	}
	if frac := float64(wrong) / float64(total); frac > 0.15 {
		t.Fatalf("reconstruction bit error rate %.3f too high", frac)
	}
}

// TestLatentSeparatesClusters is the core property E2-NVM relies on: K-means
// in latent space recovers the planted Hamming clusters.
func TestLatentSeparatesClusters(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data, labels := bitClusters(r, 400, 4, 64, 0.03)
	m, err := New(Config{InputDim: 64, HiddenDim: 48, LatentDim: 8, Seed: 9, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(data, FitOptions{Epochs: 25, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	latents := m.EncodeAll(data)
	cfg := kmeans.NewConfig(4)
	cfg.Seed = 1
	km, err := kmeans.Fit(latents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Measure purity: majority planted label per predicted cluster.
	counts := make([]map[int]int, 4)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, z := range latents {
		counts[km.Predict(z)][labels[i]]++
	}
	pure, total := 0, 0
	for _, cm := range counts {
		best := 0
		for _, n := range cm {
			total += n
			if n > best {
				best = n
			}
		}
		pure += best
	}
	if purity := float64(pure) / float64(total); purity < 0.9 {
		t.Fatalf("latent clustering purity %.3f < 0.9", purity)
	}
}

func TestJointClusterLossPullsTowardCentroids(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	data, _ := bitClusters(r, 200, 3, 32, 0.05)
	m, err := New(Config{InputDim: 32, LatentDim: 4, Seed: 11, Beta: 0.05, Gamma: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Pretrain, then compute centroids and fine-tune jointly.
	if _, err := m.Fit(data, FitOptions{Epochs: 10, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}
	latents := m.EncodeAll(data)
	cfg := kmeans.NewConfig(3)
	km, err := kmeans.Fit(latents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Evaluate(data, km.Centroids).Cluster
	if _, err := m.Fit(data, FitOptions{Epochs: 10, BatchSize: 16, Centroids: km.Centroids}); err != nil {
		t.Fatal(err)
	}
	after := m.Evaluate(data, km.Centroids).Cluster
	if after >= before {
		t.Fatalf("joint training did not tighten clusters: %v -> %v", before, after)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, _ := New(Config{InputDim: 8})
	l := m.Evaluate(nil, nil)
	if l.Recon != 0 || l.KL != 0 {
		t.Fatal("empty Evaluate should be zero")
	}
	if tb := m.TrainBatch(nil, nil); tb.Recon != 0 {
		t.Fatal("empty TrainBatch should be zero")
	}
}

func TestFitEmptyErrors(t *testing.T) {
	m, _ := New(Config{InputDim: 8})
	if _, err := m.Fit(nil, FitOptions{}); err == nil {
		t.Fatal("expected error for empty Fit")
	}
}

func TestLossTotal(t *testing.T) {
	l := Loss{Recon: 1, KL: 2, Cluster: 3}
	if got := l.Total(0.5, 2); math.Abs(got-(1+1+6)) > 1e-12 {
		t.Fatalf("Total = %v, want 8", got)
	}
}

func TestBCEStability(t *testing.T) {
	// Extreme logits must not produce NaN/Inf.
	for _, l := range []float64{-1000, -30, 0, 30, 1000} {
		for _, x := range []float64{0, 1} {
			v := bceWithLogit(l, x)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bceWithLogit(%v,%v) = %v", l, x, v)
			}
			if v < -1e-12 {
				t.Fatalf("bceWithLogit(%v,%v) = %v negative", l, x, v)
			}
		}
	}
}

func BenchmarkEncode256(b *testing.B) {
	m, err := New(Config{InputDim: 256, HiddenDim: 64, LatentDim: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 256)
	for i := range x {
		x[i] = float64(i % 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Encode(x)
	}
}

func BenchmarkTrainBatch32(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data, _ := bitClusters(r, 32, 4, 128, 0.05)
	m, err := New(Config{InputDim: 128, HiddenDim: 64, LatentDim: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(data, nil)
	}
}
