// Package deepdeterminism defines an inter-procedural Analyzer that keeps
// the experiment pipeline bit-reproducible: every function reachable from
// an experiment entry point must be a pure function of the seeded
// RunConfig. It generalizes the per-function seededrand check across the
// call graph and adds two more nondeterminism sources:
//
//   - time.Now / time.Since (wall-clock dependence),
//   - the global math/rand source (unseeded, process-global),
//   - ranging over a map where iteration order can feed output — unless
//     the surrounding function visibly sorts afterwards (a call into
//     package sort later in the same function), the idiomatic fix.
//
// Roots are every function of the packages in RootPackages (the lint
// driver sets internal/experiments) plus any function carrying a
// `// lint:entrypoint` doc marker (used by fixtures and one-off tools).
// A `lint:allow deepdeterminism` comment on a call site prunes the edge
// (e.g. a wall-clock progress message on a cold path); on a use site it
// suppresses the finding.
package deepdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"

	"e2nvm/internal/analysis"
)

// Marker is the doc-comment marker for explicit entry-point roots.
const Marker = "lint:entrypoint"

// RootPackages lists import paths whose every function is an entry point;
// the lint driver sets it to the experiments package. Fixtures leave it
// empty and mark roots with the doc marker instead.
var RootPackages []string

// Analyzer flags nondeterminism reachable from experiment entry points.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "deepdeterminism",
	Doc: "code reachable from experiment entry points must not read the wall clock, " +
		"the global math/rand source, or emit map-ordered output",
	Run: run,
}

// globalRandFuncs mirrors seededrand's list of top-level math/rand
// functions backed by the process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Read": true, "Seed": true,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Graph
	rootPkg := map[string]bool{}
	for _, p := range RootPackages {
		rootPkg[p] = true
	}
	var roots []*analysis.FuncNode
	for _, n := range g.Nodes() {
		if rootPkg[n.Pkg.PkgPath] && n.Obj != nil {
			roots = append(roots, n)
		} else if n.DocContains(Marker) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reach(roots, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site)
	})
	for _, n := range g.Nodes() {
		step, ok := reach[n]
		if !ok {
			continue
		}
		checkFunc(pass, n, step.Root, reach)
	}
	return nil
}

func checkFunc(pass *analysis.ProgramPass, n, root *analysis.FuncNode, reach map[*analysis.FuncNode]analysis.ReachStep) {
	info := n.Pkg.TypesInfo
	flag := func(x ast.Node, what string) {
		if n == root {
			pass.Reportf(x.Pos(), "%s in experiment entry point %s", what, root.Name())
			return
		}
		pass.Reportf(x.Pos(), "%s reachable from experiment entry point %s (%s)",
			what, root.Name(), analysis.PathTo(reach, n))
	}

	// Map ranges are fine when the function visibly sorts afterwards.
	sortCalls := sortCallOffsets(n)

	n.InspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			obj := calleeOf(info, x)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" || obj.Name() == "Since" {
					flag(x, "wall-clock time."+obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] && obj.Type().(*types.Signature).Recv() == nil {
					flag(x, "global math/rand."+obj.Name())
				}
			}
		case *ast.RangeStmt:
			t := info.Types[x.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sorted := false
			for _, off := range sortCalls {
				if off > x.Pos() {
					sorted = true
					break
				}
			}
			if !sorted {
				flag(x, "map iteration order feeds output (no sort call after the range)")
			}
		}
		return true
	})
}

// calleeOf resolves the called *types.Func of a call expression, or nil.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// sortCallOffsets records positions of calls into packages sort and slices
// within n's own body.
func sortCallOffsets(n *analysis.FuncNode) []token.Pos {
	info := n.Pkg.TypesInfo
	var out []token.Pos
	n.InspectOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeOf(info, call); obj != nil && obj.Pkg() != nil {
			if p := obj.Pkg().Path(); p == "sort" || p == "slices" {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}
