package e2nvm

import (
	"e2nvm/internal/dap"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/replica"
	"e2nvm/internal/shard"
)

// Role and shard lifecycle names reported by Replication and Health.
const (
	RoleLeader   = replica.RoleLeader
	RoleFollower = replica.RoleFollower
	RoleDead     = replica.RoleDead

	ShardActive   = replica.StateActive
	ShardDraining = replica.StateDraining
	ShardDrained  = replica.StateDrained
	ShardDown     = replica.StateDown
)

// ReplicaInfo describes one replica of a shard's replica set.
type ReplicaInfo struct {
	Role    string // RoleLeader, RoleFollower, or RoleDead
	Shipped uint64 // redo entries acknowledged to this follower
	Applied uint64 // entries durably applied to its device
	Lag     uint64 // Shipped - Applied: queued but not yet applied
}

// ShardReplication describes one shard's replication state: its lifecycle,
// how many times its leadership moved, what its migration (if any) has
// drained, and each replica's role and apply lag.
type ShardReplication struct {
	Shard     int
	State     string // ShardActive, ShardDraining, ShardDrained, or ShardDown
	Failovers uint64
	Migrated  uint64 // records live-migrated into other shards
	Lost      uint64 // corrupt records the dying medium had already eaten
	Replicas  []ReplicaInfo
}

// Replication snapshots every shard's replica-set state. It returns nil
// when ReplicationFactor is 1.
func (s *Store) Replication() []ShardReplication {
	if s.cluster == nil {
		return nil
	}
	status := s.cluster.Status()
	out := make([]ShardReplication, len(status))
	for i, gs := range status {
		sr := ShardReplication{
			Shard:     gs.Group,
			State:     gs.State,
			Failovers: gs.Failovers,
			Migrated:  gs.Migrated,
			Lost:      gs.Lost,
		}
		for _, rs := range gs.Replicas {
			sr.Replicas = append(sr.Replicas, ReplicaInfo{
				Role:    rs.Role,
				Shipped: rs.Shipped,
				Applied: rs.Applied,
				Lag:     rs.Lag,
			})
		}
		out[i] = sr
	}
	return out
}

// ReplicationFactor returns the configured replicas per shard (1 when
// unreplicated).
func (s *Store) ReplicationFactor() int {
	if s.cluster == nil {
		return 1
	}
	return len(s.cluster.Devices()) / s.cluster.N() // every group has the same replica count
}

// CheckHealth sweeps a replicated store for conditions failure-driven
// handling has not observed yet: shards whose leader reports Degraded fail
// over proactively, and stalled migrations are relaunched. It is a no-op
// returning nil when ReplicationFactor is 1 (Health covers inspection).
func (s *Store) CheckHealth() error {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.CheckHealth()
}

// Close releases background resources: on a replicated store it waits out
// live migrations and stops the follower apply goroutines. Serving traffic
// must have stopped. Close is idempotent, and a no-op when
// ReplicationFactor is 1.
func (s *Store) Close() {
	if s.cluster != nil {
		s.cluster.Close()
	}
}

// newCluster assembles the replication layer over the freshly opened
// leaders: ReplicationFactor-1 follower devices per shard, seeded with the
// leader's content so a promoted follower converges byte-identically, each
// drawing an independent fault sequence.
func (c Config) newCluster(stores []*kvstore.Store, starts []int, keyTemp func(uint64) dap.Temp) (*replica.Cluster, error) {
	specs := make([]replica.GroupSpec, len(stores))
	opts := c.storeOptions(c.placement(), keyTemp)
	for i, st := range stores {
		spec := replica.GroupSpec{Leader: st, Opts: opts}
		for f := 0; f < c.ReplicationFactor-1; f++ {
			fdev, err := c.newFollowerDevice(i, f, starts[i], starts[i+1]-starts[i])
			if err != nil {
				return nil, err
			}
			spec.Followers = append(spec.Followers, fdev)
		}
		specs[i] = spec
	}
	return replica.New(specs, replica.Config{})
}

// clusterPutBatch applies a batch through the replicated write path. The
// batch contract matches the router's — index order, first failure by
// index, optional per-item errs — but each pair routes individually:
// replicated writes synchronize per shard on the replica set, so there is
// no per-shard lock worth amortizing.
func (s *Store) clusterPutBatch(keys []uint64, values [][]byte, errs []error) error {
	if len(values) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return shard.ErrBadBatch
	}
	var first error
	for i, k := range keys {
		err := s.cluster.Put(k, values[i])
		if errs != nil {
			errs[i] = err
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clusterGetBatch reads a batch through the replicated read path, with the
// router's contract: values land in dsts[i] (grown as needed), liveness in
// oks[i], per-item errors in errs when non-nil.
func (s *Store) clusterGetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if len(dsts) != len(keys) || len(oks) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return shard.ErrBadBatch
	}
	var first error
	for i, k := range keys {
		v, ok, err := s.cluster.GetInto(k, dsts[i])
		dsts[i], oks[i] = v, ok
		if errs != nil {
			errs[i] = err
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clusterMetrics aggregates over every device in the cluster — leaders,
// followers, and dead replicas all spend real energy and wear — plus the
// stores still serving, and adds the replication counters.
func (s *Store) clusterMetrics() Metrics {
	var ds nvm.Stats
	var ss kvstore.Stats
	for _, dev := range s.cluster.Devices() {
		addDeviceStats(&ds, dev.Stats())
	}
	for _, st := range s.cluster.ServingStores() {
		addStoreStats(&ss, st.Stats())
	}
	m := metricsFrom(ds, ss)
	s.addCacheMetrics(&m)
	m.Failovers = s.cluster.Failovers()
	for _, gs := range s.cluster.Status() {
		m.MigratedRecords += gs.Migrated
	}
	return m
}

// clusterShardMetrics reports each shard's replica set as one entry:
// device counters summed over the whole set (the shard's true wear and
// energy bill), store counters from whichever store still serves it.
func (s *Store) clusterShardMetrics() []Metrics {
	out := make([]Metrics, s.cluster.N())
	status := s.cluster.Status()
	for i := range out {
		var ds nvm.Stats
		var ss kvstore.Stats
		for _, dev := range s.cluster.GroupDevices(i) {
			addDeviceStats(&ds, dev.Stats())
		}
		if st := s.cluster.ServingStore(i); st != nil {
			addStoreStats(&ss, st.Stats())
		}
		out[i] = metricsFrom(ds, ss)
		out[i].Failovers = status[i].Failovers
		out[i].MigratedRecords = status[i].Migrated
	}
	return out
}

// clusterHealth aggregates capacity over the stores still serving and
// summarizes failover and migration activity.
func (s *Store) clusterHealth() Health {
	var agg kvstore.Health
	for _, st := range s.cluster.ServingStores() {
		h := st.Health()
		agg.DataSegments += h.DataSegments
		agg.Retired += h.Retired
		agg.LiveKeys += h.LiveKeys
		agg.PoolFree += h.PoolFree
		agg.Degraded = agg.Degraded || h.Degraded
	}
	out := healthFrom(agg)
	out.Failovers = s.cluster.Failovers()
	out.DrainedShards = s.cluster.DrainedGroups()
	for _, gs := range s.cluster.Status() {
		for _, rs := range gs.Replicas {
			if rs.Role == RoleFollower && rs.Lag > out.ReplicaLag {
				out.ReplicaLag = rs.Lag
			}
		}
	}
	return out
}

// clusterShardHealth reports each shard's serving store capacity plus its
// lifecycle state and worst follower lag. A drained shard reports only the
// replication fields: its records live on other shards now.
func (s *Store) clusterShardHealth() []Health {
	status := s.cluster.Status()
	out := make([]Health, s.cluster.N())
	for i := range out {
		if st := s.cluster.ServingStore(i); st != nil {
			out[i] = healthFrom(st.Health())
		}
		out[i].State = status[i].State
		out[i].Failovers = status[i].Failovers
		for _, rs := range status[i].Replicas {
			if rs.Role == RoleFollower && rs.Lag > out[i].ReplicaLag {
				out[i].ReplicaLag = rs.Lag
			}
		}
	}
	return out
}

// addDeviceStats folds one device snapshot into an aggregate (sums, except
// the max for MaxSegmentWrites).
func addDeviceStats(agg *nvm.Stats, d nvm.Stats) {
	agg.Writes += d.Writes
	agg.Reads += d.Reads
	agg.BitsFlipped += d.BitsFlipped
	agg.BitsWritten += d.BitsWritten
	agg.EnergyPJ += d.EnergyPJ
	agg.WriteLatencyNs += d.WriteLatencyNs
	agg.LinesWritten += d.LinesWritten
	agg.LinesSkipped += d.LinesSkipped
	agg.WearLevelMoves += d.WearLevelMoves
	agg.StuckBits += d.StuckBits
	agg.FailedSegments += d.FailedSegments
	if d.MaxSegmentWrites > agg.MaxSegmentWrites {
		agg.MaxSegmentWrites = d.MaxSegmentWrites
	}
}

// addStoreStats folds one store snapshot into an aggregate.
func addStoreStats(agg *kvstore.Stats, st kvstore.Stats) {
	agg.Fallbacks += st.Fallbacks
	agg.Steered += st.Steered
	agg.Retrains += st.Retrains
	agg.WornWrites += st.WornWrites
	agg.Retired += st.Retired
	agg.Relocations += st.Relocations
}
