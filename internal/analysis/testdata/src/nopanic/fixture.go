// Package nopanic is a golden fixture for the nopanic analyzer.
package nopanic

import (
	"errors"
	"fmt"
)

// ErrBad is the sentinel the good path wraps.
var ErrBad = errors.New("bad input")

// Bad panics from an exported API path.
func Bad(n int) int {
	if n < 0 {
		panic("negative") // want "panic in exported API Bad"
	}
	return n * 2
}

// BadMethod panics from an exported method.
type Widget struct{}

func (Widget) Size(n int) int {
	if n == 0 {
		panic("zero") // want "panic in exported API Size"
	}
	return n
}

// Good returns a wrapped sentinel error instead.
func Good(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("doubling %d: %w", n, ErrBad)
	}
	return n * 2, nil
}

// internalInvariant is unexported; panics on invariants are its business.
func internalInvariant(n int) int {
	if n < 0 {
		panic("unreachable")
	}
	return n
}

// MustGood demonstrates the sanctioned Must* escape hatch.
func MustGood(n int) int {
	v, err := Good(n)
	if err != nil {
		panic(err) // lint:allow nopanic — Must* convenience for driver code
	}
	return v
}
