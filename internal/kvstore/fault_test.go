package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// addrOf returns the segment address the index holds for key.
func addrOf(t *testing.T, s *Store, key uint64) int {
	t.Helper()
	a, ok := s.tree.Get(key)
	if !ok {
		t.Fatalf("key %d not indexed", key)
	}
	return int(a)
}

// TestPutRetiresWornSegmentsAndSucceeds fences most of the device; Puts
// must detect the worn targets, retire them, and land on the healthy
// remainder.
func TestPutRetiresWornSegmentsAndSucceeds(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	dev := s.Device()
	for addr := 0; addr < 48; addr++ {
		if err := dev.FailSegment(addr); err != nil {
			t.Fatal(err)
		}
	}
	wrote := map[uint64][]byte{}
	for k := uint64(0); k < 12; k++ {
		v := []byte{byte(k), 0xab, byte(k * 3)}
		if err := s.Put(k, v); err != nil {
			if !errors.Is(err, ErrWornOut) && !errors.Is(err, ErrNoSpace) {
				t.Fatalf("Put(%d): unexpected error %v", k, err)
			}
			continue
		}
		wrote[k] = v
	}
	if len(wrote) == 0 {
		t.Fatal("no Put succeeded despite 16 healthy segments")
	}
	st := s.Stats()
	if st.Retired == 0 || st.WornWrites == 0 {
		t.Fatalf("stats = %+v, want Retired > 0 and WornWrites > 0", st)
	}
	for k, v := range wrote {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%d) = %x/%v/%v, want %x", k, got, ok, err, v)
		}
	}
	// Retired addresses must be refused if anything tries to recycle them.
	refused := 0
	for addr := 0; addr < 48; addr++ {
		if s.Pool().IsRetired(addr) {
			if s.Pool().Add(0, addr) {
				t.Fatalf("retired segment %d re-entered the pool", addr)
			}
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("no address was retired")
	}
}

// TestPutWithRetirementDisabledFailsFast is the baseline: a worn write
// surfaces directly instead of retrying elsewhere.
func TestPutWithRetirementDisabledFailsFast(t *testing.T) {
	s := openStore(t, 32, 64, Options{DisableRetirement: true})
	dev := s.Device()
	for addr := 0; addr < 64; addr++ {
		if err := dev.FailSegment(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(1, []byte("x")); !errors.Is(err, ErrWornOut) {
		t.Fatalf("Put = %v, want ErrWornOut", err)
	}
	if st := s.Stats(); st.Retired != 0 {
		t.Fatalf("retirement disabled but Retired = %d", st.Retired)
	}
}

// TestDegradedEscalation wears out the whole device: allocation failures
// must escalate from ErrNoSpace to ErrDegraded once retirement crosses the
// threshold, and Health must report it.
func TestDegradedEscalation(t *testing.T) {
	s := openStore(t, 32, 64, Options{DegradeThreshold: 0.05})
	if h := s.Health(); h.Degraded {
		t.Fatalf("fresh store reports degraded: %+v", h)
	}
	dev := s.Device()
	for addr := 0; addr < 64; addr++ {
		if err := dev.FailSegment(addr); err != nil {
			t.Fatal(err)
		}
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		lastErr = s.Put(uint64(i), []byte("v"))
		if errors.Is(lastErr, ErrDegraded) {
			break
		}
	}
	if !errors.Is(lastErr, ErrDegraded) {
		t.Fatalf("never degraded; last error: %v", lastErr)
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatal("ErrDegraded must keep matching ErrNoSpace")
	}
	h := s.Health()
	if !h.Degraded || h.Retired == 0 {
		t.Fatalf("Health = %+v, want Degraded with Retired > 0", h)
	}
}

// TestDeleteWornRetiresAndShreds sticks the valid-flag cell so the
// invalidation cannot take: Delete must still delete, retire the segment,
// and shred the stale record so recovery cannot resurrect it.
func TestDeleteWornRetiresAndShreds(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Put(7, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	addr := addrOf(t, s, 7)
	// Bit 0 of byte 0 is the valid flag, currently 1; stick it there.
	if err := s.Device().InjectStuckAt(addr, 0); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete = %v/%v, want true/nil", ok, err)
	}
	if _, ok, _ := s.Get(7); ok {
		t.Fatal("deleted key still readable")
	}
	if !s.Pool().IsRetired(addr) {
		t.Fatalf("segment %d not retired after worn delete", addr)
	}
	// The shred must have broken the stale record: recovery over the same
	// device must not bring key 7 back.
	s2, err := RecoverWith(s.Device(), s.Model(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get(7); ok {
		t.Fatal("recovery resurrected a deleted key")
	}
}

// TestRecoverSkipsFailedSegments fences a deleted key's segment entirely
// (even the shred is refused, freezing the valid record in place): recovery
// must refuse to re-index records on fenced segments.
func TestRecoverSkipsFailedSegments(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Put(9, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	addr := addrOf(t, s, 9)
	if err := s.Device().FailSegment(addr); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Delete(9); err != nil || !ok {
		t.Fatalf("Delete = %v/%v, want true/nil", ok, err)
	}
	s2, err := RecoverWith(s.Device(), s.Model(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.Get(9); ok {
		t.Fatal("record on a fenced segment was resurrected")
	}
	if !s2.Pool().IsRetired(addr) {
		t.Fatalf("fenced segment %d not retired by recovery", addr)
	}
}

// TestScrubRelocatesLiveRecordOffFaultySegment injects stuck cells under a
// live record (data intact — cells stick at their current values) and
// checks the scrubber moves the record to a healthy segment before the
// damage can corrupt a future overwrite.
func TestScrubRelocatesLiveRecordOffFaultySegment(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	want := map[uint64][]byte{}
	for k := uint64(1); k <= 5; k++ {
		v := []byte{0x10, byte(k), 0x30}
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	oldAddr := addrOf(t, s, 3)
	if err := s.Device().InjectStuckAt(oldAddr, 77); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 64 || rep.Relocated != 1 || rep.Retired != 1 || rep.Lost != 0 {
		t.Fatalf("ScrubReport = %+v, want Scanned=64 Relocated=1 Retired=1 Lost=0", rep)
	}
	if newAddr := addrOf(t, s, 3); newAddr == oldAddr {
		t.Fatal("record not moved off the faulty segment")
	}
	if !s.Pool().IsRetired(oldAddr) {
		t.Fatal("faulty segment not retired")
	}
	for k, v := range want {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("Get(%d) after scrub = %x/%v/%v, want %x", k, got, ok, err, v)
		}
	}
	if st := s.Stats(); st.Relocations != 1 {
		t.Fatalf("Relocations = %d, want 1", st.Relocations)
	}
	// A second full pass finds nothing left to do.
	rep, err = s.Scrub(64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relocated != 0 || rep.Retired != 0 {
		t.Fatalf("second scrub pass not idle: %+v", rep)
	}
}

// TestScrubRetiresFaultyFreeSegment: stuck cells on a segment holding no
// live record retire it without any relocation.
func TestScrubRetiresFaultyFreeSegment(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Device().InjectStuckAt(11, 5); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(64)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired != 1 || rep.Relocated != 0 {
		t.Fatalf("ScrubReport = %+v, want Retired=1 Relocated=0", rep)
	}
	if !s.Pool().IsRetired(11) {
		t.Fatal("faulty free segment not retired")
	}
}

// mkRecordImage builds a full random-tailed segment image holding one
// record.
func mkRecordImage(segSize int, key uint64, seq uint32, value []byte, r *rand.Rand) []byte {
	img := make([]byte, segSize)
	r.Read(img)
	rec := img[:valueHeader+len(value)]
	encodeRecord(rec, key, seq, value)
	return img
}

// TestRecoverResolvesDuplicatesBySequence plants two valid records for one
// key (the state a crash between persist-new and invalidate-old leaves) and
// checks recovery keeps the higher sequence — including across wraparound.
func TestRecoverResolvesDuplicatesBySequence(t *testing.T) {
	cases := []struct {
		name             string
		oldSeq, newSeq   uint32
		oldAddr, newAddr int
	}{
		{"ordered", 5, 6, 3, 9},
		{"reversed-addresses", 5, 6, 9, 3},
		{"wraparound", math.MaxUint32, 1, 4, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t, 32, 16, Options{})
			dev := s.Device()
			r := rand.New(rand.NewSource(7))
			if err := dev.FillSegment(tc.oldAddr, mkRecordImage(32, 42, tc.oldSeq, []byte("old"), r)); err != nil {
				t.Fatal(err)
			}
			if err := dev.FillSegment(tc.newAddr, mkRecordImage(32, 42, tc.newSeq, []byte("new"), r)); err != nil {
				t.Fatal(err)
			}
			s2, err := RecoverWith(dev, s.Model(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := s2.Get(42)
			if err != nil || !ok || string(got) != "new" {
				t.Fatalf("Get = %q/%v/%v, want \"new\"", got, ok, err)
			}
			if a := addrOf(t, s2, 42); a != tc.newAddr {
				t.Fatalf("index points at %d, want %d", a, tc.newAddr)
			}
			// The stale copy was invalidated and recycled.
			img, err := dev.Peek(tc.oldAddr)
			if err != nil {
				t.Fatal(err)
			}
			if img[0]&1 != 0 {
				t.Fatal("stale duplicate still flagged valid")
			}
			// A fresh Put must not collide with the recovered sequence.
			if err := s2.Put(43, []byte("post")); err != nil {
				t.Fatal(err)
			}
			if seq := binary.LittleEndian.Uint32(func() []byte {
				i, _ := dev.Peek(addrOf(t, s2, 43))
				return i
			}()[recSeqOff:]); !seqAfter(seq, tc.newSeq) {
				t.Fatalf("post-recovery Put seq %d not after %d", seq, tc.newSeq)
			}
		})
	}
}

// TestFaultedWorkloadZeroWrongReads is the acceptance scenario: fence over
// 5%% of the data segments mid-workload and run mixed traffic with periodic
// scrubbing. Every Get must return the last successfully Put value or a
// sentinel error — never wrong bytes — and retired segments must never be
// handed out again.
func TestFaultedWorkloadZeroWrongReads(t *testing.T) {
	const (
		numSegs = 128
		keys    = 40
		ops     = 3000
		kills   = 9 // 7% of 128
	)
	s := openStore(t, 32, numSegs, Options{DegradeThreshold: 0.5})
	dev := s.Device()
	r := rand.New(rand.NewSource(99))
	shadow := map[uint64][]byte{}
	var killed []int
	wrongReads := 0
	for i := 0; i < ops; i++ {
		if i == ops/3 {
			// Mid-workload wear-out: fence a batch of random segments.
			for len(killed) < kills {
				a := r.Intn(numSegs)
				if err := dev.FailSegment(a); err != nil {
					t.Fatal(err)
				}
				killed = append(killed, a)
			}
		}
		k := uint64(r.Intn(keys))
		switch r.Intn(10) {
		case 0: // delete
			if _, err := s.Delete(k); err != nil {
				if !errors.Is(err, ErrWornOut) {
					t.Fatalf("op %d: Delete(%d): %v", i, k, err)
				}
			} else {
				delete(shadow, k)
			}
		case 1, 2, 3, 4: // put
			v := make([]byte, 1+r.Intn(12))
			r.Read(v)
			if err := s.Put(k, v); err != nil {
				if !errors.Is(err, ErrWornOut) && !errors.Is(err, ErrNoSpace) {
					t.Fatalf("op %d: Put(%d): %v", i, k, err)
				}
			} else {
				shadow[k] = v
			}
		default: // get
			got, ok, err := s.Get(k)
			want, live := shadow[k]
			switch {
			case err != nil:
				// A sentinel is an acceptable answer; wrong bytes are not.
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("op %d: Get(%d): %v", i, k, err)
				}
			case ok != live:
				wrongReads++
				t.Errorf("op %d: Get(%d) present=%v, shadow=%v", i, k, ok, live)
			case ok && !bytes.Equal(got, want):
				wrongReads++
				t.Errorf("op %d: Get(%d) = %x, want %x", i, k, got, want)
			}
		}
		if i%200 == 199 {
			if _, err := s.Scrub(numSegs / 4); err != nil {
				t.Fatalf("op %d: Scrub: %v", i, err)
			}
		}
	}
	if wrongReads != 0 {
		t.Fatalf("%d wrong reads", wrongReads)
	}
	// Deletions on fenced segments notwithstanding, the shadow must be fully
	// served at the end.
	for k, v := range shadow {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("final Get(%d) = %x/%v/%v, want %x", k, got, ok, err, v)
		}
	}
	// Every fenced segment that was retired stays out of the pool for good.
	pool := s.Pool()
	for _, a := range killed {
		if pool.IsRetired(a) && pool.Add(0, a) {
			t.Fatalf("retired segment %d re-entered the pool", a)
		}
	}
	if st := s.Stats(); st.Retired == 0 {
		t.Logf("note: workload never hit a fenced segment (retired=0)")
	}
}
