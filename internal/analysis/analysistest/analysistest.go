// Package analysistest runs an analyzer over golden fixture packages under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments, mirroring the x/tools harness of the same name.
//
// Each fixture package is stdlib-only and compiled with the fixture loader,
// so the goldens exercise exactly the code path the e2nvm-lint driver uses.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/gcdiag"
)

// wantRe extracts the quoted expectation regexes from a want comment; a
// line may carry several: // want "first" "second"
var wantRe = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package at testdataDir/src/<pkgName> and fails t
// on any mismatch between reported diagnostics and want expectations.
func Run(t *testing.T, testdataDir string, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	pkg := loadFixture(t, testdataDir, pkgName)
	wants := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, pkg, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkDiags(t, diags, wants)
}

// RunProgram analyzes the fixture package at testdataDir/src/<pkgName> with
// a whole-program analyzer — the package is its own complete program, so
// call-graph roots and reachability come from its declarations alone — and
// fails t on any mismatch between diagnostics and want expectations.
func RunProgram(t *testing.T, testdataDir string, a *analysis.ProgramAnalyzer, pkgName string) {
	t.Helper()
	pkg := loadFixture(t, testdataDir, pkgName)
	wants := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass, err := analysis.NewProgramPass(a, []*analysis.Package{pkg}, &diags)
	if err != nil {
		t.Fatalf("building program pass for %s: %v", a.Name, err)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkDiags(t, diags, wants)
}

// RunProgramExpectNone analyzes the fixture like RunProgram but demands
// zero diagnostics, ignoring the fixture's want comments — the harness
// for degraded modes (compiler feedback absent) where an analyzer must
// fall silent rather than guess.
func RunProgramExpectNone(t *testing.T, testdataDir string, a *analysis.ProgramAnalyzer, pkgName string) {
	t.Helper()
	pkg := loadFixture(t, testdataDir, pkgName)

	var diags []analysis.Diagnostic
	pass, err := analysis.NewProgramPass(a, []*analysis.Package{pkg}, &diags)
	if err != nil {
		t.Fatalf("building program pass for %s: %v", a.Name, err)
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic in degraded mode: %s", d)
	}
}

// CannedReports returns a Reports hook for the gcdiag-backed analyzers
// that parses the fixture package's sibling gcdiag.txt — canned compiler
// output whose positions are relative to the fixture directory — and
// rebases it so positions land in the fixture loader's FileSet. Golden
// tests for escapes/nobce/inlinebudget install it in place of a real
// compiler invocation.
func CannedReports() func(pkg *analysis.Package) (*gcdiag.Report, error) {
	return func(pkg *analysis.Package) (*gcdiag.Report, error) {
		data, err := os.ReadFile(filepath.Join(pkg.Dir, "gcdiag.txt"))
		if err != nil {
			return nil, err
		}
		rep := gcdiag.Parse(string(data))
		rep.Rebase(pkg.Dir)
		return rep, nil
	}
}

func loadFixture(t *testing.T, testdataDir, pkgName string) *analysis.Package {
	t.Helper()
	dir := filepath.Join(testdataDir, "src", pkgName)
	loader := analysis.NewFixtureLoader()
	pkg, err := loader.LoadDir(dir, pkgName)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants = append(wants, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return wants
}

func checkDiags(t *testing.T, diags []analysis.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
