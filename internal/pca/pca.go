// Package pca implements principal component analysis via the covariance
// matrix and a cyclic Jacobi eigensolver. It exists to reproduce the PNW
// baseline (Kargar, Litz & Nawab, ICDE 2021), which reduces bit-vector
// dimensionality with PCA before K-means — the configuration E2-NVM's VAE
// is compared against in Figures 4 and 10.
package pca

import (
	"fmt"
	"math"
	"sort"
)

// Model is a fitted PCA projection.
type Model struct {
	Mean       []float64
	Components [][]float64 // Dims rows, each of length len(Mean)
	// Explained holds the eigenvalue (variance) of each kept component.
	Explained []float64
}

// Fit computes the top dims principal components of data (rows = samples).
// For inputs wider than maxJacobiDim features it falls back to orthogonal
// power iteration, since Jacobi is O(d^3) per sweep.
func Fit(data [][]float64, dims int) (*Model, error) {
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("pca: empty training set")
	}
	d := len(data[0])
	if dims <= 0 || dims > d {
		return nil, fmt.Errorf("pca: dims %d out of range (1..%d)", dims, d)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("pca: row %d has %d features, want %d", i, len(row), d)
		}
	}

	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	const maxJacobiDim = 96
	if d <= maxJacobiDim {
		return fitJacobi(data, mean, dims)
	}
	return fitPower(data, mean, dims)
}

func covariance(data [][]float64, mean []float64) [][]float64 {
	n, d := len(data), len(mean)
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	centered := make([]float64, d)
	for _, row := range data {
		for j := range row {
			centered[j] = row[j] - mean[j]
		}
		for i := 0; i < d; i++ {
			ci := centered[i]
			if ci == 0 {
				continue
			}
			for j := i; j < d; j++ {
				cov[i][j] += ci * centered[j]
			}
		}
	}
	inv := 1.0 / float64(maxInt(n-1, 1))
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}
	return cov
}

func fitJacobi(data [][]float64, mean []float64, dims int) (*Model, error) {
	d := len(mean)
	a := covariance(data, mean)
	// Eigenvectors accumulate in v (columns).
	v := make([][]float64, d)
	for i := range v {
		v[i] = make([]float64, d)
		v[i][i] = 1
	}
	const sweeps = 30
	for s := 0; s < sweeps; s++ {
		off := 0.0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < d; p++ {
			for q := p + 1; q < d; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := sign(theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rotate(a, v, p, q, c, sn)
			}
		}
	}
	type eig struct {
		val float64
		idx int
	}
	eigs := make([]eig, d)
	for i := 0; i < d; i++ {
		eigs[i] = eig{a[i][i], i}
	}
	sort.Slice(eigs, func(i, j int) bool { return eigs[i].val > eigs[j].val })

	m := &Model{Mean: mean}
	for k := 0; k < dims; k++ {
		comp := make([]float64, d)
		for i := 0; i < d; i++ {
			comp[i] = v[i][eigs[k].idx]
		}
		m.Components = append(m.Components, comp)
		m.Explained = append(m.Explained, eigs[k].val)
	}
	return m, nil
}

func rotate(a, v [][]float64, p, q int, c, s float64) {
	d := len(a)
	app, aqq, apq := a[p][p], a[q][q], a[p][q]
	a[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
	a[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
	a[p][q] = 0
	a[q][p] = 0
	for i := 0; i < d; i++ {
		if i != p && i != q {
			aip, aiq := a[i][p], a[i][q]
			a[i][p] = c*aip - s*aiq
			a[p][i] = a[i][p]
			a[i][q] = s*aip + c*aiq
			a[q][i] = a[i][q]
		}
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

// fitPower extracts the leading components by orthogonal (deflated) power
// iteration applied implicitly to XᵀX without materializing the covariance.
func fitPower(data [][]float64, mean []float64, dims int) (*Model, error) {
	d := len(mean)
	n := len(data)
	centered := make([][]float64, n)
	for i, row := range data {
		c := make([]float64, d)
		for j := range row {
			c[j] = row[j] - mean[j]
		}
		centered[i] = c
	}
	m := &Model{Mean: mean}
	for k := 0; k < dims; k++ {
		vec := make([]float64, d)
		// Deterministic pseudo-random start varies by component.
		for j := range vec {
			vec[j] = math.Sin(float64(j*31+k*17) + 1)
		}
		orthonormalize(vec, m.Components)
		var lambda float64
		for iter := 0; iter < 100; iter++ {
			next := make([]float64, d)
			// next = Cov·vec computed as Σ_i x_i (x_i·vec) / (n-1)
			for _, x := range centered {
				dot := 0.0
				for j := range x {
					dot += x[j] * vec[j]
				}
				for j := range x {
					next[j] += x[j] * dot
				}
			}
			inv := 1.0 / float64(maxInt(n-1, 1))
			for j := range next {
				next[j] *= inv
			}
			orthonormalize(next, m.Components)
			nrm := norm(next)
			if nrm == 0 {
				break
			}
			for j := range next {
				next[j] /= nrm
			}
			diff := 0.0
			for j := range next {
				dd := next[j] - vec[j]
				diff += dd * dd
			}
			vec = next
			lambda = nrm
			if diff < 1e-12 {
				break
			}
		}
		m.Components = append(m.Components, vec)
		m.Explained = append(m.Explained, lambda)
	}
	return m, nil
}

func orthonormalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		dot := 0.0
		for j := range v {
			dot += v[j] * b[j]
		}
		for j := range v {
			v[j] -= dot * b[j]
		}
	}
	if nrm := norm(v); nrm > 0 {
		for j := range v {
			v[j] /= nrm
		}
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Transform projects x onto the fitted components.
func (m *Model) Transform(x []float64) []float64 {
	if len(x) != len(m.Mean) {
		panic(fmt.Sprintf("pca: Transform input %d, want %d", len(x), len(m.Mean)))
	}
	out := make([]float64, len(m.Components))
	for k, comp := range m.Components {
		s := 0.0
		for j := range x {
			s += (x[j] - m.Mean[j]) * comp[j]
		}
		out[k] = s
	}
	return out
}

// TransformAll projects every row of data.
func (m *Model) TransformAll(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for i, row := range data {
		out[i] = m.Transform(row)
	}
	return out
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
