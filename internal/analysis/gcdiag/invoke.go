package gcdiag

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Source produces per-package Reports by running the compiler, memoizing
// in-process and (when CacheDir is set) persisting the raw compiler
// output keyed on go version + package source hash, so a clean tree costs
// one cache read per package instead of a compile.
type Source struct {
	// ModRoot is the module root the build runs in; compiler positions
	// are absolutized against it.
	ModRoot string
	// CacheDir holds one file of raw compiler output per (go version,
	// package hash) key; "" disables the on-disk cache.
	CacheDir string

	mu        sync.Mutex
	goVersion string
	memo      map[string]*Report
}

// NewSource builds a Source rooted at modRoot. cacheDir == "" disables
// the on-disk cache (the in-process memo still applies). It fails when no
// go tool is available — callers treat that as "compiler feedback
// unavailable" and skip the gcdiag analyzers rather than erroring the
// whole lint run.
func NewSource(modRoot, cacheDir string) (*Source, error) {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return nil, fmt.Errorf("gcdiag: go tool unavailable: %w", err)
	}
	return &Source{
		ModRoot:   modRoot,
		CacheDir:  cacheDir,
		goVersion: strings.TrimSpace(string(out)),
		memo:      map[string]*Report{},
	}, nil
}

// DefaultCacheDir returns the user-cache location for persisted compiler
// output ("" when the platform reports no cache home).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "e2nvm-gcdiag")
}

// For returns the Report for the package in dir (an absolute directory
// under ModRoot), compiling it if no cached output matches.
func (s *Source) For(dir string) (*Report, error) {
	rel, err := filepath.Rel(s.ModRoot, dir)
	if err != nil {
		return nil, fmt.Errorf("gcdiag: %s outside module %s: %w", dir, s.ModRoot, err)
	}
	key, err := s.packageKey(dir, rel)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	rep, ok := s.memo[key]
	s.mu.Unlock()
	if ok {
		return rep, nil
	}

	raw, cached := s.readCache(key)
	if !cached {
		raw, err = s.compile(rel)
		if err != nil {
			return nil, err
		}
		s.writeCache(key, raw)
	}
	rep = Parse(raw)
	rep.Rebase(s.ModRoot)

	s.mu.Lock()
	s.memo[key] = rep
	s.mu.Unlock()
	return rep, nil
}

// compile runs the diagnostic build for one package and returns the
// compiler's combined output. The -gcflags value applies only to the
// named package, so dependencies stay quiet; the go build cache replays
// diagnostics on repeated identical invocations, so warm runs are cheap
// even without the gcdiag cache.
func (s *Source) compile(rel string) (string, error) {
	tmp, err := os.MkdirTemp("", "gcdiag-*")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp)
	cmd := exec.Command("go", "build",
		"-gcflags="+GCFlags,
		"-o", filepath.Join(tmp, "out"),
		"./"+filepath.ToSlash(rel))
	cmd.Dir = s.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("gcdiag: go build %s: %w\n%s", rel, err, out)
	}
	return string(out), nil
}

// packageKey hashes the go version, the package path, and every non-test
// source file's name and contents, so edits and toolchain switches miss
// the cache while mtime churn does not.
func (s *Source) packageKey(dir, rel string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n", s.goVersion, GCFlags, rel)
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", n, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (s *Source) readCache(key string) (string, bool) {
	if s.CacheDir == "" {
		return "", false
	}
	data, err := os.ReadFile(filepath.Join(s.CacheDir, key+".txt"))
	if err != nil {
		return "", false
	}
	return string(data), true
}

func (s *Source) writeCache(key, raw string) {
	if s.CacheDir == "" {
		return
	}
	if err := os.MkdirAll(s.CacheDir, 0o755); err != nil {
		return // cache is best-effort; the report was still produced
	}
	tmp := filepath.Join(s.CacheDir, key+".tmp")
	if err := os.WriteFile(tmp, []byte(raw), 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(s.CacheDir, key+".txt"))
}
