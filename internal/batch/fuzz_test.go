package batch

import (
	"bytes"
	"testing"
)

// FuzzBatcher drives puts/gets/deletes/flushes from an opcode stream
// against a reference map.
func FuzzBatcher(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{100, 100, 100, 3, 3, 3, 250, 250})
	f.Fuzz(func(t *testing.T, ops []byte) {
		b, err := New(newMapKV(), 96, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64][]byte{}
		for i := 0; i+2 < len(ops); i += 3 {
			key := uint64(ops[i] % 24)
			switch ops[i+1] % 5 {
			case 0, 1:
				val := []byte{ops[i+2]}
				if err := b.Put(key, val); err != nil {
					t.Fatal(err)
				}
				ref[key] = val
			case 2:
				got, ok, err := b.Get(key)
				if err != nil {
					t.Fatal(err)
				}
				want, wantOK := ref[key]
				if ok != wantOK || (ok && !bytes.Equal(got, want)) {
					t.Fatalf("Get(%d) = (%x,%v), want (%x,%v)", key, got, ok, want, wantOK)
				}
			case 3:
				ok, err := b.Delete(key)
				if err != nil {
					t.Fatal(err)
				}
				if _, want := ref[key]; ok != want {
					t.Fatalf("Delete(%d) = %v", key, ok)
				}
				delete(ref, key)
			case 4:
				if err := b.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if b.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", b.Len(), len(ref))
			}
		}
		for k, want := range ref {
			got, ok, err := b.Get(k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("final Get(%d) = (%x,%v,%v), want %x", k, got, ok, err, want)
			}
		}
	})
}
