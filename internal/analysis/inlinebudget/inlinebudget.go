// Package inlinebudget defines an Analyzer enforcing that functions
// annotated `lint:inline` stay within the compiler's inlining budget.
//
// Small leaf helpers on the serving path — bitvec.HammingBytes,
// shard.Router.Of, the record codec's seqAfter — are written to be
// inlined into their callers; the call overhead would otherwise dominate
// their few-instruction bodies. But inlinability is an emergent property:
// adding one bounds check or call can push the inliner cost estimate past
// its budget (80 by default) and the compiler stops inlining with no
// warning. This analyzer reads the inliner's decisions from `-m=2` output
// (via gcdiag) and flags every annotated function the compiler declined
// to inline, quoting the cost, budget, and reason so the fix is obvious.
//
// A missing decision for an annotated function when the package report is
// otherwise populated is also flagged: it usually means the annotation
// sits on a generic function or a name the toolchain reports differently,
// and the contract is silently unverified.
//
// Like escapes and nobce, the analyzer degrades to a no-op when compiler
// feedback is unavailable (Reports == nil or an empty Report).
package inlinebudget

import (
	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/gcdiag"
)

// Marker annotates a function that must remain inlinable.
const Marker = "lint:inline"

// Reports supplies the per-package compiler diagnostics. The lint driver
// wires it to a gcdiag.Source; golden tests substitute canned output; nil
// disables the analyzer.
var Reports func(pkg *analysis.Package) (*gcdiag.Report, error)

// Analyzer flags lint:inline functions the compiler declined to inline.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "inlinebudget",
	Doc: "functions marked lint:inline must be reported inlinable by the compiler " +
		"(per -m=2 \"can inline\"); findings quote the inliner's cost, budget, and " +
		"rejection reason; suppress with lint:allow inlinebudget",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	if Reports == nil {
		return nil
	}
	marked := map[*analysis.Package][]*analysis.FuncNode{}
	for _, n := range pass.Graph.Nodes() {
		if n.Decl != nil && n.DocContains(Marker) {
			marked[n.Pkg] = append(marked[n.Pkg], n)
		}
	}
	if len(marked) == 0 {
		return nil
	}
	for _, pkg := range pass.Pkgs {
		nodes := marked[pkg]
		if len(nodes) == 0 {
			continue
		}
		rep, err := Reports(pkg)
		if err != nil {
			return err
		}
		if rep.Empty() {
			continue // diagnostics absent: degrade, do not fabricate findings
		}
		for _, n := range nodes {
			p := pass.Fset.Position(n.Decl.Pos())
			d := rep.InlineFor(p.Filename, p.Line)
			switch {
			case d == nil:
				pass.Reportf(n.Decl.Pos(),
					"no inlining decision reported for lint:inline function %s: contract unverified", n.Name())
			case !d.CanInline && d.Cost >= 0:
				pass.Reportf(n.Decl.Pos(),
					"lint:inline function %s is not inlinable: cost %d exceeds budget %d", n.Name(), d.Cost, d.Budget)
			case !d.CanInline:
				pass.Reportf(n.Decl.Pos(),
					"lint:inline function %s is not inlinable: %s", n.Name(), d.Reason)
			}
		}
	}
	return nil
}
