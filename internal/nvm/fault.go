// Cell wear-out fault model.
//
// PCM cells survive ~1e8 writes; after that they fail as stuck-at faults:
// the cell keeps returning the last value it held and no longer responds to
// programming pulses (Longofono et al., "Virtual Coset Coding"). The device
// models this two ways:
//
//   - probabilistically: with Config.Fault.ProbPerWrite > 0, every write to
//     a segment whose write count has passed OnsetFraction·EnduranceWrites
//     may stick cells at their just-written values, with probability ramping
//     linearly up to ProbPerWrite at full wear — all driven by a private
//     RNG seeded from Config.Fault.Seed, so runs are reproducible;
//   - deterministically: InjectStuckAt pins one named cell at its current
//     value and FailSegment fences a whole segment, for tests and sweeps.
//
// A stuck cell never silently changes stored data — corruption appears only
// when a later write tries to flip it. Write reports the mismatch in
// WriteResult.FaultyBits, and with Config.VerifyWrites it also returns
// ErrWornOut, modeling a controller that reads back after programming.
// Reads always serve the true (possibly corrupt) cell contents; the layers
// above are responsible for detecting damage (CRC) and retiring segments.
//
// Faults live with *physical* slots: a start-gap move does not carry a bad
// cell along with the logical address, and data moved onto a stuck cell by
// the wear-leveling unit can be corrupted in place — exactly the hazard the
// kvstore's Scrub pass exists to catch.
package nvm

import (
	"errors"
	"fmt"
)

// ErrWornOut is returned by Write for a failed segment, and — when
// Config.VerifyWrites is set — for any write whose readback does not match
// the requested data because of stuck cells.
var ErrWornOut = errors.New("nvm: segment worn out")

// FaultConfig controls the probabilistic wear-out model. The zero value
// disables it; deterministic injection (InjectStuckAt, FailSegment) works
// regardless.
type FaultConfig struct {
	// Seed seeds the device's private fault RNG. Same seed + same write
	// sequence = same faults.
	Seed int64
	// ProbPerWrite is the per-write probability of a fault event once a
	// segment reaches its full endurance budget. Below
	// OnsetFraction·EnduranceWrites the probability is zero; in between it
	// ramps linearly. 0 disables probabilistic faults.
	ProbPerWrite float64
	// OnsetFraction is the fraction of EnduranceWrites at which faults may
	// begin to fire (default 0.85).
	OnsetFraction float64
	// BitsPerFault is how many cells stick per fault event (default 1).
	BitsPerFault int
}

func (f *FaultConfig) validate() error {
	if f.ProbPerWrite < 0 || f.ProbPerWrite > 1 {
		return fmt.Errorf("nvm: Fault.ProbPerWrite %v outside [0,1]: %w", f.ProbPerWrite, ErrBadConfig)
	}
	if f.OnsetFraction == 0 {
		f.OnsetFraction = 0.85
	}
	if f.OnsetFraction < 0 || f.OnsetFraction >= 1 {
		return fmt.Errorf("nvm: Fault.OnsetFraction %v outside [0,1): %w", f.OnsetFraction, ErrBadConfig)
	}
	if f.BitsPerFault <= 0 {
		f.BitsPerFault = 1
	}
	return nil
}

// ensureFaultState lazily allocates the per-physical-slot stuck-cell maps so
// fault-free devices pay nothing.
func (d *Device) ensureFaultState() {
	if d.stuckMask == nil {
		d.stuckMask = make([][]byte, d.cfg.NumSegments+1)
		d.stuckVal = make([][]byte, d.cfg.NumSegments+1)
	}
}

// slotStuck returns (allocating if needed) the stuck mask/value planes of
// one physical slot.
func (d *Device) slotStuck(phys int) (mask, val []byte) {
	d.ensureFaultState()
	mask, val = d.stuckMask[phys], d.stuckVal[phys]
	if mask == nil {
		mask = make([]byte, d.cfg.SegmentSize)
		val = make([]byte, d.cfg.SegmentSize)
		d.stuckMask[phys], d.stuckVal[phys] = mask, val
	}
	return mask, val
}

// applyStuck forces dst's stuck cells back to their stuck values and returns
// how many of them now disagree with the data the caller wanted stored.
func applyStuck(dst, want, mask, val []byte) int {
	faulty := 0
	for i, m := range mask {
		if m == 0 {
			continue
		}
		dst[i] = (dst[i] &^ m) | (val[i] & m)
		faulty += onesCount8((dst[i] ^ want[i]) & m)
	}
	return faulty
}

// maybeWearFault is called (under d.mu) after each write with the segment's
// freshly written physical content. Once wear passes the onset fraction it
// may stick BitsPerFault cells at their just-written values — so the damage
// surfaces only on a later write that tries to flip them.
func (d *Device) maybeWearFault(addr, phys int, content []byte) {
	f := &d.cfg.Fault
	wear := float64(d.segWrites[addr]) / d.cfg.EnduranceWrites
	if wear < f.OnsetFraction {
		return
	}
	ramp := (wear - f.OnsetFraction) / (1 - f.OnsetFraction)
	if ramp > 1 {
		ramp = 1
	}
	if d.rng.Float64() >= f.ProbPerWrite*ramp {
		return
	}
	mask, val := d.slotStuck(phys)
	for n := 0; n < f.BitsPerFault; n++ {
		bit := d.rng.Intn(d.cfg.SegmentSize * 8)
		byi, m := bit>>3, byte(1)<<uint(bit&7)
		if mask[byi]&m != 0 {
			continue // that cell is already stuck
		}
		mask[byi] |= m
		val[byi] = (val[byi] &^ m) | (content[byi] & m)
		d.stats.StuckBits++
	}
	d.stats.FaultEvents++
}

// InjectStuckAt deterministically sticks one cell of segment addr at its
// current value. bit indexes the segment's bits ([0, SegmentSize*8)). The
// fault attaches to the physical slot currently backing addr.
func (d *Device) InjectStuckAt(addr, bit int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if bit < 0 || bit >= d.cfg.SegmentSize*8 {
		return fmt.Errorf("nvm: stuck-at bit %d outside [0,%d): %w", bit, d.cfg.SegmentSize*8, ErrBadAddress)
	}
	phys := d.physIndex(addr)
	mask, val := d.slotStuck(phys)
	byi, m := bit>>3, byte(1)<<uint(bit&7)
	if mask[byi]&m != 0 {
		return nil // already stuck
	}
	mask[byi] |= m
	cur := d.segBytes(phys)[byi] & m
	val[byi] = (val[byi] &^ m) | cur
	d.stats.StuckBits++
	d.stats.FaultEvents++
	return nil
}

// FailSegment fences the physical slot currently backing segment addr:
// every subsequent Write to it returns ErrWornOut. Reads still serve the
// stored content (the cells hold their last values; the controller just
// refuses to program them).
func (d *Device) FailSegment(addr int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	if d.failedSeg == nil {
		d.failedSeg = make([]bool, d.cfg.NumSegments+1)
	}
	phys := d.physIndex(addr)
	if !d.failedSeg[phys] {
		d.failedSeg[phys] = true
		d.stats.FailedSegments++
	}
	return nil
}

// SegmentFaults reports the fault state of the physical slot currently
// backing segment addr: how many of its cells are stuck, and whether the
// whole segment has been fenced.
func (d *Device) SegmentFaults(addr int) (stuckBits int, failed bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if addr < 0 || addr >= d.cfg.NumSegments {
		return 0, false, fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	phys := d.physIndex(addr)
	if d.stuckMask != nil && d.stuckMask[phys] != nil {
		for _, m := range d.stuckMask[phys] {
			stuckBits += onesCount8(m)
		}
	}
	failed = d.failedSeg != nil && d.failedSeg[phys]
	return stuckBits, failed, nil
}
