// Package nobce defines an Analyzer enforcing that functions annotated
// `lint:nobce` compile with no bounds or slice checks inside their loops.
//
// The serving kernels (infer.Forward/ForwardBlock, bitvec.HammingBytes,
// the kvstore record codec) spend their cycles in tight inner loops over
// slices; a bounds check the prove pass fails to eliminate there costs a
// branch per element, and regressions slip in silently — an innocuous
// refactor reorders a reslice and the check is back. This analyzer reads
// the compiler's own `-d=ssa/check_bce` output (via gcdiag) and flags
// every surviving check inside a for/range statement of an annotated
// function.
//
// Deliberately narrower than "zero checks anywhere in the function":
//
//   - Straight-line checks outside loops are exempt. A prologue reslice
//     like `h = h[:k.hidden]` is one predictable check per call that
//     *enables* elimination inside the loop — demanding its removal would
//     outlaw the standard idiom for removing the expensive ones.
//   - Lines holding a `_ = s[n]` bounds hint are exempt wherever they
//     appear; the hint exists to concentrate checks at one site.
//   - Cold ranges (blocks ending in a panic or error return, per
//     hotpathalloc's rule) are off the measured path and exempt.
//
// Structurally unprovable checks — e.g. indexing by a variable stride the
// prove pass cannot reason about — are suppressed with `lint:allow nobce`
// plus a comment giving the reason.
//
// Like escapes, the analyzer degrades to a no-op when compiler feedback
// is unavailable (Reports == nil or an empty Report).
package nobce

import (
	"go/ast"
	"go/token"

	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/gcdiag"
	"e2nvm/internal/analysis/hotpathalloc"
)

// Marker annotates a function whose loops must be free of bounds checks.
const Marker = "lint:nobce"

// Reports supplies the per-package compiler diagnostics. The lint driver
// wires it to a gcdiag.Source; golden tests substitute canned output; nil
// disables the analyzer.
var Reports func(pkg *analysis.Package) (*gcdiag.Report, error)

// Analyzer flags bounds checks the compiler could not eliminate from
// loops of lint:nobce functions.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "nobce",
	Doc: "functions marked lint:nobce must compile with zero bounds/slice checks inside " +
		"their loops (per -d=ssa/check_bce); straight-line prologue checks, `_ = s[n]` " +
		"hint lines, and cold exits are exempt; suppress with lint:allow nobce",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	if Reports == nil {
		return nil
	}
	// Collect annotated functions per package.
	marked := map[*analysis.Package][]*analysis.FuncNode{}
	for _, n := range pass.Graph.Nodes() {
		if n.DocContains(Marker) && n.Body() != nil {
			marked[n.Pkg] = append(marked[n.Pkg], n)
		}
	}
	if len(marked) == 0 {
		return nil
	}
	resolver := gcdiag.NewResolver(pass.Fset)
	for _, pkg := range pass.Pkgs {
		nodes := marked[pkg]
		if len(nodes) == 0 {
			continue
		}
		rep, err := Reports(pkg)
		if err != nil {
			return err
		}
		if rep.Empty() {
			continue // diagnostics absent: degrade, do not fabricate findings
		}
		for _, n := range nodes {
			checkFunc(pass, resolver, rep, n)
		}
	}
	return nil
}

type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func checkFunc(pass *analysis.ProgramPass, resolver *gcdiag.Resolver, rep *gcdiag.Report, n *analysis.FuncNode) {
	body := n.Body()
	loops := loopRanges(n)
	if len(loops) == 0 {
		return // nothing in a loop, nothing to enforce
	}
	hints := hintLines(pass.Fset, n)
	cold := hotpathalloc.ColdRanges(n)
	for _, b := range rep.Bounds {
		pos := resolver.Pos(b.Pos)
		if !pos.IsValid() || pos < body.Pos() || pos >= body.End() {
			continue
		}
		inLoop := false
		for _, r := range loops {
			if r.contains(pos) {
				inLoop = true
				break
			}
		}
		if !inLoop || hints[pass.Fset.Position(pos).Line] {
			continue
		}
		inCold := false
		for _, r := range cold {
			if r.Contains(pos) {
				inCold = true
				break
			}
		}
		if inCold {
			continue
		}
		pass.Reportf(pos, "compiler: %s survives in loop of lint:nobce function %s", b.Kind, n.Name())
	}
}

// loopRanges collects the position ranges of for/range statements in n's
// own body (nested function literals have their own nodes and their own
// annotations, so they are not descended into).
func loopRanges(n *analysis.FuncNode) []span {
	var out []span
	n.InspectOwn(func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.ForStmt:
			out = append(out, span{s.Pos(), s.End()})
		case *ast.RangeStmt:
			out = append(out, span{s.Pos(), s.End()})
		}
		return true
	})
	return out
}

// hintLines records source lines holding a `_ = expr[index]` bounds-check
// hint: a deliberate single check placed to let prove eliminate the rest.
func hintLines(fset *token.FileSet, n *analysis.FuncNode) map[int]bool {
	lines := map[int]bool{}
	n.InspectOwn(func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
			return true
		}
		if _, ok := as.Rhs[0].(*ast.IndexExpr); ok {
			lines[fset.Position(as.Pos()).Line] = true
		}
		return true
	})
	return lines
}
