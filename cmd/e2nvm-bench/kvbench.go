// kvbench: the -kvbench mode emits a machine-readable micro-benchmark
// baseline for the store's hot operations (PUT/GET/DELETE), so successive
// PRs have a committed perf trajectory (BENCH_PR2.json and onwards).
//
// Each entry carries testing.Benchmark's ns/op, B/op and allocs/op plus
// the device's bit-flip counters accumulated during the run — the same
// quantities the paper's latency/energy evaluation rests on.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"e2nvm"
	"e2nvm/internal/infer"
	"e2nvm/internal/mat"
	"e2nvm/internal/nn"
	"e2nvm/internal/workload"
)

// kvBenchGeometry pins the micro-benchmark store shape so numbers are
// comparable across PRs (64 B segments, 1 Ki segments, K=8, fixed seed).
const (
	kvBenchSegSize  = 64
	kvBenchSegments = 1024
	kvBenchClusters = 8
	kvBenchEpochs   = 5
	kvBenchSeed     = 1
	kvBenchKeys     = 512
	kvBenchValue    = 32
)

type kvBenchEntry struct {
	Name        string  `json:"name"`
	Note        string  `json:"note,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Concurrent scenarios: shard count, GOMAXPROCS during the run, and
	// aggregate throughput.
	Shards    int     `json:"shards,omitempty"`
	CPU       int     `json:"cpu,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// Device counters over the measured run, normalized per operation.
	BitsFlippedPerOp float64 `json:"bits_flipped_per_op"`
	FlipsPerDataBit  float64 `json:"flips_per_data_bit"`
	// Fault-pipeline counters (only set by the faulted scenario).
	WornWrites      uint64 `json:"worn_writes,omitempty"`
	RetiredSegments uint64 `json:"retired_segments,omitempty"`
	// Replication counters (only set by the replicated scenarios).
	ReplicationFactor int    `json:"replication_factor,omitempty"`
	Failovers         uint64 `json:"failovers,omitempty"`
	MigratedRecords   uint64 `json:"migrated_records,omitempty"`
	// Latency percentiles (only set by the hand-timed zipfian scenarios;
	// testing.Benchmark reports means only).
	P50NsPerOp float64 `json:"p50_ns_per_op,omitempty"`
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	// Hot-key cache and steering counters (only set by the cached
	// scenarios).
	CacheHits         uint64 `json:"cache_hits,omitempty"`
	CacheMisses       uint64 `json:"cache_misses,omitempty"`
	SteeredPlacements uint64 `json:"steered_placements,omitempty"`
}

type kvBenchDoc struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	// GCFlags is the -gcflags setting the benchmark binary was built with
	// (from debug.ReadBuildInfo), so a baseline produced under diagnostic
	// or optimization-tweaking flags is never mistaken for a default build.
	GCFlags string `json:"gcflags"`
	// HostCPUs is runtime.NumCPU() on the machine that produced the
	// baseline. The shards×cpu sweep only shows real parallel speedup when
	// HostCPUs > 1; on a single core the sharded rows measure reduced lock
	// contention, not added parallelism.
	HostCPUs int            `json:"host_cpus"`
	Geometry string         `json:"geometry"`
	Entries  []kvBenchEntry `json:"entries"`
}

// buildGCFlags returns the -gcflags value this binary was compiled with,
// or "" for a default build (including `go run`, which embeds no setting).
func buildGCFlags() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "-gcflags" {
				return s.Value
			}
		}
	}
	return ""
}

func newKVBenchStore() (*e2nvm.Store, error) {
	return e2nvm.Open(e2nvm.Config{
		SegmentSize: kvBenchSegSize,
		NumSegments: kvBenchSegments,
		Clusters:    kvBenchClusters,
		TrainEpochs: kvBenchEpochs,
		Seed:        kvBenchSeed,
	})
}

func newCachedKVBenchStore() (*e2nvm.Store, error) {
	return e2nvm.Open(e2nvm.Config{
		SegmentSize:  kvBenchSegSize,
		NumSegments:  kvBenchSegments,
		Clusters:     kvBenchClusters,
		TrainEpochs:  kvBenchEpochs,
		Seed:         kvBenchSeed,
		CacheEnabled: true,
	})
}

// zipfKVBenchGeometry shapes the hand-timed zipfian rows: YCSB's
// canonical 1 KiB record on 4 KiB segments (a common NVM block
// granularity; 64 cache lines, so a segment read models 170+64*10 =
// 810 ns of NVM time), over the usual 512-key working set. The hidden
// width is capped so a 32 Ki-bit-input encoder stays trainable; the
// rows measure the read path, where clustering quality is irrelevant.
const (
	zipfBenchSegSize = 4096
	zipfBenchValue   = 1024
	zipfBenchEpochs  = 1
	zipfBenchHidden  = 64
)

// zipfGetKVBench hand-times a theta=0.99 zipfian GetInto stream on a
// store whose device emulates its modeled latency on the host clock, so
// the row carries p50/p99 alongside the mean (testing.Benchmark only
// reports means). Emulation is what makes the comparison meaningful:
// without it an uncached read costs only the simulator's host softcosts
// (~100 ns of index walk and memcpy) and the device read the cache is
// built to absorb — the modeled NVM sense time — never shows up on the
// clock. Cached hot reads are DRAM probes that skip the device
// entirely, so the same stream collapses to hit cost.
func zipfGetKVBench(cached bool) (kvBenchEntry, error) {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize:          zipfBenchSegSize,
		NumSegments:          kvBenchSegments,
		Clusters:             kvBenchClusters,
		TrainEpochs:          zipfBenchEpochs,
		HiddenDim:            zipfBenchHidden,
		Seed:                 kvBenchSeed,
		CacheEnabled:         cached,
		EmulateDeviceLatency: true,
	})
	if err != nil {
		return kvBenchEntry{}, err
	}
	val := make([]byte, zipfBenchValue)
	for k := uint64(0); k < kvBenchKeys; k++ {
		val[0] = byte(k)
		if err := store.Put(k, val); err != nil {
			return kvBenchEntry{}, err
		}
	}
	z, err := workload.NewZipfSampler(kvBenchKeys, 0.99, kvBenchSeed)
	if err != nil {
		return kvBenchEntry{}, err
	}
	const warm = 20000
	const samples = 100000
	const passes = 3
	buf := make([]byte, 0, zipfBenchValue)
	for i := 0; i < warm; i++ {
		v, _, err := store.GetInto(z.Next(), buf)
		if err != nil {
			return kvBenchEntry{}, err
		}
		buf = v[:0]
	}

	// Each statistic is the median over three independent sampling
	// passes: the host's noise (hypervisor steal, timer interrupts) is
	// bursty at exactly the scale of one pass, so a single pass's p99 can
	// carry a burst that has nothing to do with the store. The median
	// discards a wholly-noisy pass in either row.
	store.ResetMetrics()
	lat := make([]float64, samples)
	var means, p50s, p99s []float64
	for p := 0; p < passes; p++ {
		runtime.GC() // earlier scenarios' garbage must not collect mid-sample
		for i := range lat {
			k := z.Next()
			t0 := time.Now()
			v, _, gerr := store.GetInto(k, buf)
			lat[i] = float64(time.Since(t0).Nanoseconds())
			if gerr != nil {
				return kvBenchEntry{}, gerr
			}
			buf = v[:0]
		}
		sort.Float64s(lat)
		var sum float64
		for _, v := range lat {
			sum += v
		}
		means = append(means, sum/samples)
		p50s = append(p50s, lat[samples/2])
		p99s = append(p99s, lat[samples*99/100])
	}
	sort.Float64s(means)
	sort.Float64s(p50s)
	sort.Float64s(p99s)
	m := store.Metrics()
	name, note := "kvstore.Get/zipf/uncached", "theta=0.99 zipfian GetInto stream, 1 KiB records on 4 KiB segments, hand-timed on an emulated-latency device (every read pays the modeled NVM sense time); each statistic is the median of 3 sampling passes; the comparator for kvstore.Get/zipf/cached"
	if cached {
		name, note = "kvstore.Get/zipf/cached", "same zipfian stream with the DRAM cache on; hot reads never touch the device, collapsing mean/p50/p99 vs the uncached row"
	}
	return kvBenchEntry{
		Name:        name,
		Note:        note,
		Iterations:  passes * samples,
		NsPerOp:     means[passes/2],
		P50NsPerOp:  p50s[passes/2],
		P99NsPerOp:  p99s[passes/2],
		CacheHits:   m.CacheHits,
		CacheMisses: m.CacheMisses,
	}, nil
}

// runKVBench measures the Put/Get/Delete paths and writes the JSON baseline
// to out ("-" for stdout).
func runKVBench(out string) error {
	var entries []kvBenchEntry

	// PUT: steady-state overwrites across a fixed working set.
	{
		store, err := newKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench put: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Put",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// PUTBATCH: the same steady-state overwrite workload as PUT, but
	// submitted 8 pairs at a time through the batched serving path (one
	// lock acquisition and one blocked kernel prediction per batch).
	// ns/op, B/op and allocs/op are normalized per ITEM so the row
	// compares directly against kvstore.Put.
	{
		store, err := newKVBenchStore()
		if err != nil {
			return err
		}
		const batch = 8
		keys := make([]uint64, batch)
		vals := make([][]byte, batch)
		for j := range vals {
			vals[j] = make([]byte, kvBenchValue)
		}
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = uint64((i*batch + j) % kvBenchKeys)
					vals[j][0] = byte(i)
				}
				if err := store.PutBatch(keys, vals, nil); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench putbatch: %w", failed)
		}
		m := store.Metrics()
		items := float64(r.N) * batch
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.PutBatch/batch=8",
			Note:             "8-pair batches through the batched serving path; ns/op, B/op, allocs/op and flips are per item (one benchmark op = 8 items), directly comparable to kvstore.Put",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()) / batch,
			BytesPerOp:       r.AllocedBytesPerOp() / batch,
			AllocsPerOp:      r.AllocsPerOp() / batch,
			BitsFlippedPerOp: float64(m.BitsFlipped) / items,
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// GET: reads over a pre-populated working set.
	{
		store, err := newKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		for k := uint64(0); k < kvBenchKeys; k++ {
			val[0] = byte(k)
			if err := store.Put(k, val); err != nil {
				return err
			}
		}
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := store.Get(uint64(i % kvBenchKeys)); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench get: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Get",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// GETINTO: the zero-alloc read path — same working set as GET, but the
	// caller reuses one buffer across reads.
	{
		store, err := newKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		for k := uint64(0); k < kvBenchKeys; k++ {
			val[0] = byte(k)
			if err := store.Put(k, val); err != nil {
				return err
			}
		}
		buf := make([]byte, 0, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, _, err := store.GetInto(uint64(i%kvBenchKeys), buf)
				if err != nil {
					failed = err
					b.FailNow()
				}
				buf = v[:0]
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench getinto: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.GetInto",
			Note:             "Get into a caller-reused buffer; the delta vs kvstore.Get is the cost of handing out a fresh copy",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// GET/HOT: one key pinned hot in the DRAM cache, read in a tight loop —
	// the path the HotRing-style front exists for. Expect a small fraction
	// of kvstore.Get's ns/op, zero allocations, and zero device reads.
	{
		store, err := newCachedKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		if err := store.Put(0, val); err != nil {
			return err
		}
		buf := make([]byte, 0, kvBenchValue)
		for i := 0; i < 32; i++ { // fill + cross the hot threshold
			v, _, err := store.GetInto(0, buf)
			if err != nil {
				return err
			}
			buf = v[:0]
		}
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, _, err := store.GetInto(0, buf)
				if err != nil {
					failed = err
					b.FailNow()
				}
				buf = v[:0]
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench get/hot: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:        "kvstore.Get/hot",
			Note:        "GetInto of one cache-resident hot key; the delta vs kvstore.GetInto is the whole device+index path the DRAM cache removes",
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			CacheHits:   m.CacheHits,
			CacheMisses: m.CacheMisses,
		})
	}

	// GET/ZIPF: a theta=0.99 zipfian read stream (YCSB's request skew),
	// hand-timed per op for tail latency, uncached then cached. The cached
	// p99 is the acceptance bar: the skew concentrates most reads on
	// DRAM-resident keys, so the tail collapses.
	for _, cached := range []bool{false, true} {
		e, err := zipfGetKVBench(cached)
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}

	// PUT/STEERED: the overwrite loop with the cache on and hot, so every
	// placement consults the hot/cold temperature and hot keys steer to the
	// least-worn cluster. The delta vs kvstore.Put is the steering cost
	// (one cache probe plus per-cluster wear bookkeeping on recycle).
	{
		store, err := newCachedKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		for k := uint64(0); k < kvBenchKeys; k++ {
			val[0] = byte(k)
			if err := store.Put(k, val); err != nil {
				return err
			}
		}
		z, err := workload.NewZipfSampler(kvBenchKeys, 0.99, kvBenchSeed)
		if err != nil {
			return err
		}
		buf := make([]byte, 0, kvBenchValue)
		for i := 0; i < 8*kvBenchKeys; i++ { // heat the skewed working set
			v, _, err := store.GetInto(z.Next(), buf)
			if err != nil {
				return err
			}
			buf = v[:0]
		}
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(z.Next(), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench put/steered: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:              "kvstore.Put/steered",
			Note:              "zipfian overwrites with the cache hot, so placement steers by key temperature; the delta vs kvstore.Put is the cache-probe + wear-tracking cost",
			Iterations:        r.N,
			NsPerOp:           float64(r.NsPerOp()),
			BytesPerOp:        r.AllocedBytesPerOp(),
			AllocsPerOp:       r.AllocsPerOp(),
			BitsFlippedPerOp:  float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:   m.FlipsPerDataBit,
			SteeredPlacements: m.SteeredPlacements,
		})
	}

	// PUT/FAULTED: the same overwrite loop as PUT, but with verify-after-
	// write on and ~5% of the data segments fenced as worn out before the
	// run. Puts route around the dead segments by retiring them; the
	// delta vs kvstore.Put is the detect/retry/retire pipeline's cost,
	// and the entry doubles as a regression guard that a faulted store
	// keeps serving.
	{
		store, err := e2nvm.Open(e2nvm.Config{
			SegmentSize:  kvBenchSegSize,
			NumSegments:  kvBenchSegments,
			Clusters:     kvBenchClusters,
			TrainEpochs:  kvBenchEpochs,
			Seed:         kvBenchSeed,
			VerifyWrites: true,
		})
		if err != nil {
			return err
		}
		for a := 0; a < kvBenchSegments; a += 20 { // every 20th segment: ~5%
			if err := store.FailSegment(a); err != nil {
				return err
			}
		}
		val := make([]byte, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench put/faulted: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Put/faulted",
			Note:             "verify-after-write with 5% of segments fenced before the run; the delta vs kvstore.Put is the detect/retry/retire cost",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
			WornWrites:       m.WornWrites,
			RetiredSegments:  m.RetiredSegments,
		})
	}

	// DELETE: each op deletes an existing key and re-inserts it so the
	// store never drains; the numbers therefore include one PUT per op.
	{
		store, err := newKVBenchStore()
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		for k := uint64(0); k < kvBenchKeys; k++ {
			val[0] = byte(k)
			if err := store.Put(k, val); err != nil {
				return err
			}
		}
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := uint64(i % kvBenchKeys)
				if _, err := store.Delete(k); err != nil {
					failed = err
					b.FailNow()
				}
				if err := store.Put(k, val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench delete: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Delete",
			Note:             "each op is delete + reinsert (the store must not drain); subtract kvstore.Put for the delete-only cost",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// PUT/SHARDED: the sequential overwrite loop again, but with the
	// keyspace hash-partitioned over 4 shards (same total capacity). The
	// flips_per_data_bit delta vs kvstore.Put is the placement cost of
	// per-shard models; it must stay within a few percent.
	{
		store, err := e2nvm.Open(e2nvm.Config{
			SegmentSize: kvBenchSegSize,
			NumSegments: kvBenchSegments,
			Shards:      4,
			Clusters:    kvBenchClusters,
			TrainEpochs: kvBenchEpochs,
			Seed:        kvBenchSeed,
		})
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench put/sharded: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Put/sharded",
			Note:             "same workload as kvstore.Put over 4 shards; the flips_per_data_bit delta is the placement cost of per-shard models",
			Shards:           4,
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// PUT/CRASHSAFE: the overwrite loop with the redo log on — the
	// comparator that separates logging cost from replication cost in the
	// two rows below (Put -> +crashsafe is the log, +crashsafe ->
	// +replicated is the shipping).
	{
		store, err := e2nvm.Open(e2nvm.Config{
			SegmentSize: kvBenchSegSize,
			NumSegments: kvBenchSegments,
			Clusters:    kvBenchClusters,
			TrainEpochs: kvBenchEpochs,
			Seed:        kvBenchSeed,
			CrashSafe:   true,
		})
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		if failed != nil {
			return fmt.Errorf("kvbench put/crashsafe: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:             "kvstore.Put/crashsafe",
			Note:             "same workload as kvstore.Put with the redo log on; the delta vs kvstore.Put is pure logging cost",
			Iterations:       r.N,
			NsPerOp:          float64(r.NsPerOp()),
			BytesPerOp:       r.AllocedBytesPerOp(),
			AllocsPerOp:      r.AllocsPerOp(),
			BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:  m.FlipsPerDataBit,
		})
	}

	// PUT/REPLICATED: acknowledged writes at ReplicationFactor 2 over 2
	// shards. Every commit builds one ship entry and enqueues it to the
	// follower, so allocs/op is expected to be nonzero here — that buffer
	// is the price of the ack guarantee; the delta vs kvstore.Put/crashsafe
	// is the full shipping cost. Flip counters aggregate leader and
	// follower devices (the follower applies every image too).
	{
		store, err := e2nvm.Open(e2nvm.Config{
			SegmentSize:       kvBenchSegSize,
			NumSegments:       kvBenchSegments,
			Shards:            2,
			ReplicationFactor: 2,
			Clusters:          kvBenchClusters,
			TrainEpochs:       kvBenchEpochs,
			Seed:              kvBenchSeed,
		})
		if err != nil {
			return err
		}
		val := make([]byte, kvBenchValue)
		var failed error
		r := testing.Benchmark(func(b *testing.B) {
			store.ResetMetrics()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				val[0] = byte(i)
				if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
					failed = err
					b.FailNow()
				}
			}
		})
		store.Close()
		if failed != nil {
			return fmt.Errorf("kvbench put/replicated: %w", failed)
		}
		m := store.Metrics()
		entries = append(entries, kvBenchEntry{
			Name:              "kvstore.Put/replicated",
			Note:              "acknowledged writes at rf=2 over 2 shards; the delta vs kvstore.Put/crashsafe is the redo-stream shipping cost, and flips include the follower applies",
			Shards:            2,
			ReplicationFactor: 2,
			Iterations:        r.N,
			NsPerOp:           float64(r.NsPerOp()),
			BytesPerOp:        r.AllocedBytesPerOp(),
			AllocsPerOp:       r.AllocsPerOp(),
			BitsFlippedPerOp:  float64(m.BitsFlipped) / float64(r.N),
			FlipsPerDataBit:   m.FlipsPerDataBit,
		})
	}

	// PUT/DRAINED: writes served after a shard's whole replica set died and
	// its keyspace live-migrated away. Shard 0's devices are fenced (leader,
	// then the promoted follower), the drain runs to completion, and the
	// measured loop then writes the full working set — about half the keys
	// re-route through the drained shard's redirect. The delta vs
	// kvstore.Put/replicated is the redirect-chase cost of degraded serving.
	{
		e, err := drainedKVBench()
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}

	// INFER.FORWARD: the bit-native kernel alone (forward + assignment for
	// one 64 B segment at the store's encoder geometry), next to the float
	// encoder path it replaced — the per-Put inference cost before any
	// store machinery. See DESIGN.md §11.
	{
		kernelE, naiveE, err := inferForwardBench()
		if err != nil {
			return err
		}
		entries = append(entries, kernelE, naiveE)
	}

	// CONCURRENT: a mixed Put+GetInto workload driven from GOMAXPROCS
	// goroutines, swept over shard counts and -cpu style parallelism. The
	// shards=4/cpu=N row vs shards=1/cpu=N is the serving-layer scaling win
	// (on multi-core hosts; on a single core only the reduced lock
	// contention shows).
	for _, sc := range []struct{ shards, procs int }{
		{1, 1}, {1, 2}, {1, 4}, {4, 1}, {4, 2}, {4, 4},
	} {
		e, err := concurrentKVBench(sc.shards, sc.procs)
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}

	doc := kvBenchDoc{
		Schema:    "e2nvm-kvbench/1",
		GoVersion: runtime.Version(),
		GCFlags:   buildGCFlags(),
		HostCPUs:  runtime.NumCPU(),
		Geometry: fmt.Sprintf("%dB segments x %d, K=%d, %d keys, %dB values, seed %d",
			kvBenchSegSize, kvBenchSegments, kvBenchClusters, kvBenchKeys, kvBenchValue, kvBenchSeed),
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" || out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// inferForwardBench measures cluster prediction for one 64 B segment at
// the kvbench store's encoder geometry (512 input bits → 128 hidden → 10
// latent, K=8): once through the byte-LUT kernel, once through the float
// path it replaced (bit expansion + Dense matvecs + full centroid scan).
// The pair isolates the per-Put inference cost from the store machinery.
func inferForwardBench() (kernel, naive kvBenchEntry, err error) {
	const (
		inBits = kvBenchSegSize * 8
		hidden = inBits / 4 // vae default: max(32, InputDim/4)
		latent = 10
	)
	rng := rand.New(rand.NewSource(kvBenchSeed))
	encH := nn.NewDense(inBits, hidden, nn.ReLU, rng)
	encMu := nn.NewDense(hidden, latent, nn.Identity, rng)
	cents := make([][]float64, kvBenchClusters)
	for c := range cents {
		cents[c] = make([]float64, latent)
		for i := range cents[c] {
			cents[c][i] = rng.NormFloat64()
		}
	}
	kern, err := infer.New(encH, encMu, cents)
	if err != nil {
		return kernel, naive, err
	}
	if kern == nil {
		return kernel, naive, fmt.Errorf("kvbench infer: kernel declined %d×%d geometry", inBits, hidden)
	}
	seg := make([]byte, kvBenchSegSize)
	rng.Read(seg)

	h := make([]float64, kern.HiddenDim())
	mu := make([]float64, kern.LatentDim())
	rk := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kern.Predict(seg, h, mu)
		}
	})
	kernel = kvBenchEntry{
		Name:        "infer.Forward",
		Note:        fmt.Sprintf("byte-LUT kernel forward + assignment, one %dB segment (%d->%d->%d, K=%d, g=%d, table %d KiB); lint:nobce since PR 7 — the matvec/centroid loops are bounds-check-free (-23%% ns/op vs the PR 5 baseline)", kvBenchSegSize, inBits, hidden, latent, kvBenchClusters, kern.GroupBits(), kern.TableBytes()>>10),
		Iterations:  rk.N,
		NsPerOp:     float64(rk.NsPerOp()),
		BytesPerOp:  rk.AllocedBytesPerOp(),
		AllocsPerOp: rk.AllocsPerOp(),
	}

	x := make([]float64, inBits)
	rn := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range x {
				x[j] = float64(seg[j>>3] >> (uint(j) & 7) & 1)
			}
			encH.Apply(x, h)
			encMu.Apply(h, mu)
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := mat.SqDist(mu, cent); d < bestD {
					best, bestD = c, d
				}
			}
			_ = best
		}
	})
	naive = kvBenchEntry{
		Name:        "infer.Forward/naive",
		Note:        "the replaced float path at the same geometry: bit expansion + Dense matvecs + full centroid scan",
		Iterations:  rn.N,
		NsPerOp:     float64(rn.NsPerOp()),
		BytesPerOp:  rn.AllocedBytesPerOp(),
		AllocsPerOp: rn.AllocsPerOp(),
	}
	return kernel, naive, nil
}

// drainedKVBench builds the degraded-serving scenario: a 2-shard rf=2
// store whose shard 0 loses both replicas — the first fence fails the
// writes over to the follower, the second forces the live migration into
// shard 1 — then measures steady-state Puts once the drain completes.
func drainedKVBench() (kvBenchEntry, error) {
	// Twice the standard geometry: after the drain the surviving shard
	// holds the full working set, so it needs the whole standard pool to
	// itself.
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize:       kvBenchSegSize,
		NumSegments:       2 * kvBenchSegments,
		Shards:            2,
		ReplicationFactor: 2,
		Clusters:          kvBenchClusters,
		TrainEpochs:       kvBenchEpochs,
		Seed:              kvBenchSeed,
	})
	if err != nil {
		return kvBenchEntry{}, err
	}
	defer store.Close()
	val := make([]byte, kvBenchValue)
	writeAll := func() error {
		for k := uint64(0); k < kvBenchKeys; k++ {
			val[0] = byte(k)
			if err := store.Put(k, val); err != nil {
				return err
			}
		}
		return nil
	}
	fenceShard0 := func() error {
		for a := 0; a < kvBenchSegments; a++ { // shard 0's zone
			if err := store.FailSegment(a); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeAll(); err != nil {
		return kvBenchEntry{}, fmt.Errorf("kvbench put/drained populate: %w", err)
	}
	// Kill the leader, then the promoted follower; each write pass drives
	// the failure-driven failover for the keys that land on shard 0.
	for round := 0; round < 2; round++ {
		if err := fenceShard0(); err != nil {
			return kvBenchEntry{}, err
		}
		if err := writeAll(); err != nil {
			return kvBenchEntry{}, fmt.Errorf("kvbench put/drained round %d: %w", round, err)
		}
	}
	drained := false
	for try := 0; try < 100 && !drained; try++ {
		store.Quiesce()
		if err := store.CheckHealth(); err != nil {
			return kvBenchEntry{}, fmt.Errorf("kvbench put/drained health: %w", err)
		}
		for _, sr := range store.Replication() {
			if sr.State == e2nvm.ShardDrained {
				drained = true
			}
		}
	}
	if !drained {
		return kvBenchEntry{}, fmt.Errorf("kvbench put/drained: shard 0 never finished draining")
	}
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		store.ResetMetrics()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			val[0] = byte(i)
			if err := store.Put(uint64(i%kvBenchKeys), val); err != nil {
				failed = err
				b.FailNow()
			}
		}
	})
	if failed != nil {
		return kvBenchEntry{}, fmt.Errorf("kvbench put/drained: %w", failed)
	}
	m := store.Metrics()
	return kvBenchEntry{
		Name:              "kvstore.Put/drained",
		Note:              "2-shard rf=2 store after shard 0 lost both replicas and live-migrated into shard 1; roughly half the keys re-route through the drained shard's redirect",
		Shards:            2,
		ReplicationFactor: 2,
		Iterations:        r.N,
		NsPerOp:           float64(r.NsPerOp()),
		BytesPerOp:        r.AllocedBytesPerOp(),
		AllocsPerOp:       r.AllocsPerOp(),
		BitsFlippedPerOp:  float64(m.BitsFlipped) / float64(r.N),
		FlipsPerDataBit:   m.FlipsPerDataBit,
		Failovers:         m.Failovers,
		MigratedRecords:   m.MigratedRecords,
	}, nil
}

// concurrentKVBench measures an even Put+GetInto mix driven from one
// goroutine per proc over a store with the given shard count. Workers share
// the kvBenchKeys working set; each derives its key sequence from its own
// stride so writers collide across goroutines (the contended case the
// sharding tentpole targets) while the per-goroutine buffers keep the read
// path allocation-free.
func concurrentKVBench(shards, procs int) (kvBenchEntry, error) {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: kvBenchSegSize,
		NumSegments: kvBenchSegments,
		Shards:      shards,
		Clusters:    kvBenchClusters,
		TrainEpochs: kvBenchEpochs,
		Seed:        kvBenchSeed,
	})
	if err != nil {
		return kvBenchEntry{}, err
	}
	val := make([]byte, kvBenchValue)
	for k := uint64(0); k < kvBenchKeys; k++ {
		val[0] = byte(k)
		if err := store.Put(k, val); err != nil {
			return kvBenchEntry{}, err
		}
	}
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var (
		failed   atomic.Value
		workerID atomic.Uint64
		setErr   sync.Once
	)
	r := testing.Benchmark(func(b *testing.B) {
		store.ResetMetrics()
		b.ReportAllocs()
		b.SetParallelism(1) // procs goroutines total
		b.RunParallel(func(pb *testing.PB) {
			id := workerID.Add(1)
			val := make([]byte, kvBenchValue)
			buf := make([]byte, 0, kvBenchValue)
			i := id * 0x9e3779b9 // de-correlate the workers' key sequences
			for pb.Next() {
				i++
				k := i % kvBenchKeys
				if i%2 == 0 {
					val[0] = byte(i)
					if err := store.Put(k, val); err != nil {
						setErr.Do(func() { failed.Store(err) })
						return
					}
				} else {
					v, _, err := store.GetInto(k, buf)
					if err != nil {
						setErr.Do(func() { failed.Store(err) })
						return
					}
					if v != nil {
						buf = v[:0]
					}
				}
			}
		})
	})
	if err, ok := failed.Load().(error); ok {
		return kvBenchEntry{}, fmt.Errorf("kvbench concurrent shards=%d cpu=%d: %w", shards, procs, err)
	}
	m := store.Metrics()
	return kvBenchEntry{
		Name:             fmt.Sprintf("kvstore.PutGet/shards=%d/cpu=%d", shards, procs),
		Note:             "50/50 Put+GetInto from cpu goroutines over the shared working set",
		Shards:           shards,
		CPU:              procs,
		Iterations:       r.N,
		NsPerOp:          float64(r.NsPerOp()),
		OpsPerSec:        1e9 / float64(r.NsPerOp()),
		BytesPerOp:       r.AllocedBytesPerOp(),
		AllocsPerOp:      r.AllocsPerOp(),
		BitsFlippedPerOp: float64(m.BitsFlipped) / float64(r.N),
		FlipsPerDataBit:  m.FlipsPerDataBit,
	}, nil
}
