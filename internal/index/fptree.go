package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"e2nvm/internal/nvm"
)

// FPTree follows Oukid et al.'s design: persistent leaves with *unsorted*
// fixed-size slots, a validity bitmap, and one-byte key fingerprints, with
// volatile inner nodes. Because an insert claims a free slot and touches
// only that slot plus the bitmap/fingerprint bytes, the differential write
// flips far fewer bits than the B+-Tree's sorted-shift rewrite — the
// behaviour Figure 12 contrasts.
//
// Leaf page layout:
//
//	[bitmap  slotsPerLeaf/8 bytes][fingerprints slotsPerLeaf bytes]
//	[slot 0][slot 1]…   each slot: key(8) vlen(2) payload(slotPayload)
type FPTree struct {
	baseStats
	dev   *nvm.Device
	meta  *FreeList
	pages pageWriter
	vals  *valueZone // nil in inline mode

	slotsPerLeaf int
	slotPayload  int
	leaves       []*fpLeaf // sorted by min key (volatile inner level)
}

type fpLeaf struct {
	addr    int
	minKey  uint64
	used    []bool
	keys    []uint64
	payload [][]byte
}

// NewFPTree creates an FP-Tree. slotPayload is the per-slot payload size
// (inline values must fit it; out-of-line mode needs only 8 bytes).
func NewFPTree(dev *nvm.Device, meta *FreeList, values Allocator, slotPayload int) (*FPTree, error) {
	if values != nil && slotPayload < 8 {
		slotPayload = 8
	}
	if slotPayload <= 0 {
		return nil, fmt.Errorf("fptree: slotPayload %d must be positive", slotPayload)
	}
	t := &FPTree{dev: dev, meta: meta, pages: pageWriter{dev}, slotPayload: slotPayload}
	if values != nil {
		t.vals = &valueZone{dev: dev, alloc: values}
	}
	slotBytes := 8 + 2 + slotPayload
	// Solve slots so bitmap + fingerprints + slots fit one segment.
	s := (dev.SegmentSize() - 1) / (slotBytes + 1)
	for s > 0 && (s+7)/8+s+s*slotBytes > dev.SegmentSize() {
		s--
	}
	if s == 0 {
		return nil, fmt.Errorf("fptree: slot payload %d too large for %d-byte segments", slotPayload, dev.SegmentSize())
	}
	t.slotsPerLeaf = s
	leaf, err := t.newLeaf(0)
	if err != nil {
		return nil, err
	}
	t.leaves = []*fpLeaf{leaf}
	return t, nil
}

func (t *FPTree) newLeaf(minKey uint64) (*fpLeaf, error) {
	addr, err := t.meta.Place(nil)
	if err != nil {
		return nil, fmt.Errorf("fptree: leaf allocation: %w", err)
	}
	return &fpLeaf{
		addr:    addr,
		minKey:  minKey,
		used:    make([]bool, t.slotsPerLeaf),
		keys:    make([]uint64, t.slotsPerLeaf),
		payload: make([][]byte, t.slotsPerLeaf),
	}, nil
}

// Name implements Store.
func (t *FPTree) Name() string { return "FP-Tree" }

func fingerprint(key uint64) byte {
	h := key * 0x9e3779b97f4a7c15
	return byte(h >> 56)
}

func (t *FPTree) serializeLeaf(l *fpLeaf) []byte {
	bmBytes := (t.slotsPerLeaf + 7) / 8
	slotBytes := 8 + 2 + t.slotPayload
	out := make([]byte, bmBytes+t.slotsPerLeaf+t.slotsPerLeaf*slotBytes)
	for i := 0; i < t.slotsPerLeaf; i++ {
		if !l.used[i] {
			continue
		}
		out[i>>3] |= 1 << (uint(i) & 7)
		out[bmBytes+i] = fingerprint(l.keys[i])
		off := bmBytes + t.slotsPerLeaf + i*slotBytes
		binary.LittleEndian.PutUint64(out[off:], l.keys[i])
		binary.LittleEndian.PutUint16(out[off+8:], uint16(len(l.payload[i])))
		copy(out[off+10:off+10+t.slotPayload], l.payload[i])
	}
	return out
}

func (t *FPTree) leafFor(key uint64) int {
	i := sort.Search(len(t.leaves), func(i int) bool { return t.leaves[i].minKey > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

func (l *fpLeaf) findSlot(key uint64) int {
	fp := fingerprint(key)
	for i, u := range l.used {
		if u && fingerprint(l.keys[i]) == fp && l.keys[i] == key {
			return i
		}
	}
	return -1
}

func (l *fpLeaf) freeSlot() int {
	for i, u := range l.used {
		if !u {
			return i
		}
	}
	return -1
}

// Put implements Store.
func (t *FPTree) Put(key uint64, value []byte) error {
	t.countValue(value)
	payload := value
	if t.vals != nil {
		addr, err := t.vals.writeValue(value)
		if err != nil {
			return err
		}
		payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(addr))
	}
	if len(payload) > t.slotPayload {
		return fmt.Errorf("fptree: payload %d exceeds slot payload %d", len(payload), t.slotPayload)
	}
	li := t.leafFor(key)
	l := t.leaves[li]
	if s := l.findSlot(key); s >= 0 {
		if t.vals != nil {
			old := int(binary.LittleEndian.Uint64(l.payload[s]))
			if err := t.vals.freeValue(old); err != nil {
				return err
			}
		}
		l.payload[s] = payload
		return t.pages.writePage(l.addr, t.serializeLeaf(l))
	}
	s := l.freeSlot()
	if s < 0 {
		var err error
		if li, err = t.splitAndPersist(li); err != nil {
			return err
		}
		// Re-locate after the split.
		l = t.leaves[t.leafFor(key)]
		s = l.freeSlot()
		if s < 0 {
			return fmt.Errorf("fptree: no free slot after split")
		}
	}
	l = t.leaves[t.leafFor(key)]
	l.used[s] = true
	l.keys[s] = key
	l.payload[s] = payload
	return t.pages.writePage(l.addr, t.serializeLeaf(l))
}

// splitAndPersist splits leaf li by key median into two leaves.
func (t *FPTree) splitAndPersist(li int) (int, error) {
	l := t.leaves[li]
	keys := make([]uint64, 0, t.slotsPerLeaf)
	for i, u := range l.used {
		if u {
			keys = append(keys, l.keys[i])
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	median := keys[len(keys)/2]
	right, err := t.newLeaf(median)
	if err != nil {
		return li, err
	}
	for i, u := range l.used {
		if u && l.keys[i] >= median {
			s := right.freeSlot()
			right.used[s] = true
			right.keys[s] = l.keys[i]
			right.payload[s] = l.payload[i]
			l.used[i] = false
			l.payload[i] = nil
		}
	}
	t.leaves = append(t.leaves, nil)
	copy(t.leaves[li+2:], t.leaves[li+1:])
	t.leaves[li+1] = right
	if err := t.pages.writePage(l.addr, t.serializeLeaf(l)); err != nil {
		return li, err
	}
	return li, t.pages.writePage(right.addr, t.serializeLeaf(right))
}

// Get implements Store.
func (t *FPTree) Get(key uint64) ([]byte, bool, error) {
	l := t.leaves[t.leafFor(key)]
	s := l.findSlot(key)
	if s < 0 {
		return nil, false, nil
	}
	if t.vals == nil {
		return append([]byte(nil), l.payload[s]...), true, nil
	}
	v, err := t.vals.readValue(int(binary.LittleEndian.Uint64(l.payload[s])))
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements Store.
func (t *FPTree) Delete(key uint64) (bool, error) {
	l := t.leaves[t.leafFor(key)]
	s := l.findSlot(key)
	if s < 0 {
		return false, nil
	}
	if t.vals != nil {
		addr := int(binary.LittleEndian.Uint64(l.payload[s]))
		if err := t.vals.freeValue(addr); err != nil {
			return false, err
		}
	}
	l.used[s] = false
	l.payload[s] = nil
	return true, t.pages.writePage(l.addr, t.serializeLeaf(l))
}

// Len returns the number of live keys (test helper).
func (t *FPTree) Len() int {
	n := 0
	for _, l := range t.leaves {
		for _, u := range l.used {
			if u {
				n++
			}
		}
	}
	return n
}
