// Replication: a 2-shard store at ReplicationFactor 2 surviving the
// death of a whole shard — first by failing over to the follower, then,
// when that replica dies too, by live-migrating the keyspace into the
// healthy shard. No acknowledged write is lost at any point.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"

	"e2nvm"
)

func main() {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize:       64,
		NumSegments:       2048,
		Shards:            2,
		ReplicationFactor: 2, // leader + 1 follower per shard
		Clusters:          6,
		TrainEpochs:       5,
		Seed:              1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	fmt.Println("opened:", store)

	// Write a working set; each key is acked only once durable on its
	// shard's leader and shipped to the follower.
	const keys = 256
	put := func(round int) {
		for k := uint64(0); k < keys; k++ {
			if err := store.Put(k, []byte(fmt.Sprintf("k%d-r%d", k, round))); err != nil {
				log.Fatalf("put(%d) round %d: %v", k, round, err)
			}
		}
	}
	put(0)

	// fenceShard0 fails every segment of shard 0's zone on whichever
	// replica currently serves it — the fault model standing in for a
	// device aging past the endurance cliff.
	fenceShard0 := func() {
		for a := 0; a < 1024; a++ {
			if err := store.FailSegment(a); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Round 1: kill shard 0's leader. Writes that hit the dying device
	// retry transparently on the promoted follower.
	fenceShard0()
	put(1)
	h := store.Health()
	fmt.Printf("after leader death: failovers=%d drained=%d\n", h.Failovers, h.DrainedShards)

	// Round 2: kill the promoted leader too. With no replicas left,
	// shard 0's keyspace live-migrates into shard 1 while writes flow.
	fenceShard0()
	put(2)
	store.Quiesce()
	if err := store.CheckHealth(); err != nil {
		log.Fatal(err)
	}
	store.Quiesce()
	for _, sr := range store.Replication() {
		fmt.Printf("shard %d: state=%s failovers=%d migrated=%d lost=%d\n",
			sr.Shard, sr.State, sr.Failovers, sr.Migrated, sr.Lost)
	}

	// Every acknowledged write survived both device deaths.
	for k := uint64(0); k < keys; k++ {
		want := fmt.Sprintf("k%d-r2", k)
		v, ok, err := store.Get(k)
		if err != nil || !ok || string(v) != want {
			log.Fatalf("get(%d) = (%q,%v,%v), want %q", k, v, ok, err, want)
		}
	}
	m := store.Metrics()
	fmt.Printf("all %d acked writes intact; failovers=%d migrated=%d flips/data-bit=%.4f\n",
		keys, m.Failovers, m.MigratedRecords, m.FlipsPerDataBit)
}
