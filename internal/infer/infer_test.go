package infer

import (
	"math"
	"math/rand"
	"testing"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/mat"
	"e2nvm/internal/nn"
)

// testEncoder builds a random (Glorot-initialized) two-layer encoder and
// centroid set at the given geometry, mirroring the shapes core trains.
func testEncoder(t *testing.T, seed int64, inBits, hidden, latent, k int) (*nn.Dense, *nn.Dense, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	encH := nn.NewDense(inBits, hidden, nn.ReLU, rng)
	encMu := nn.NewDense(hidden, latent, nn.Identity, rng)
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = make([]float64, latent)
		for i := range cents[c] {
			cents[c][i] = rng.NormFloat64()
		}
	}
	return encH, encMu, cents
}

// naivePredict is the reference path the kernel replaces: bit-expand,
// Dense forwards, full-scan nearest centroid.
func naivePredict(encH, encMu *nn.Dense, cents [][]float64, seg []byte) (int, []float64) {
	x := bitvec.FromBytes(seg).Floats()
	h := make([]float64, encH.Out)
	mu := make([]float64, encMu.Out)
	encH.Apply(x, h)
	encMu.Apply(h, mu)
	best, bestD := 0, math.Inf(1)
	for c, cent := range cents {
		if d := mat.SqDist(mu, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best, mu
}

// TestKernelMatchesNaive is the kernel-vs-naive equivalence suite: across
// random models, geometries (hitting group widths 8, 4 and 2) and random
// inputs, the kernel's cluster assignment must match vae-style
// EncodeInto + nearest-centroid exactly, and μ must agree to tight
// tolerance (bit-exactness is not promised across the two summation
// orders; see the package comment).
func TestKernelMatchesNaive(t *testing.T) {
	cases := []struct {
		name                     string
		inBits, hidden, latent,k int
		wantG                    int
	}{
		{"g8/64B", 512, 128, 10, 8, 8},
		{"g8/tiny", 32, 32, 6, 2, 8},
		{"g4/wide", 2048, 512, 10, 8, 4},
		{"g2/huge-hidden", 1024, 4096, 10, 8, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			encH, encMu, cents := testEncoder(t, 42, tc.inBits, tc.hidden, tc.latent, tc.k)
			k, err := New(encH, encMu, cents)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if k == nil {
				t.Fatalf("New declined geometry %d×%d", tc.inBits, tc.hidden)
			}
			if k.GroupBits() != tc.wantG {
				t.Fatalf("GroupBits = %d, want %d", k.GroupBits(), tc.wantG)
			}
			rng := rand.New(rand.NewSource(7))
			h := make([]float64, k.HiddenDim())
			mu := make([]float64, k.LatentDim())
			seg := make([]byte, tc.inBits/8)
			for trial := 0; trial < 50; trial++ {
				rng.Read(seg)
				wantC, wantMu := naivePredict(encH, encMu, cents, seg)
				gotMu := k.Forward(seg, h, mu)
				for i := range gotMu {
					if !mat.EqualWithin(gotMu[i], wantMu[i], 1e-9) {
						t.Fatalf("trial %d lane %d: kernel μ %v, naive μ %v", trial, i, gotMu[i], wantMu[i])
					}
				}
				if gotC := k.Assign(gotMu); gotC != wantC {
					t.Fatalf("trial %d: kernel cluster %d, naive %d", trial, gotC, wantC)
				}
				if gotC := k.Predict(seg, h, mu); gotC != wantC {
					t.Fatalf("trial %d: Predict %d, naive %d", trial, gotC, wantC)
				}
			}
		})
	}
}

// TestKernelDeterminism: same input → bit-identical latent across calls
// AND across kernels rebuilt from the same weights.
func TestKernelDeterminism(t *testing.T) {
	encH, encMu, cents := testEncoder(t, 3, 512, 128, 10, 8)
	k1, err := New(encH, encMu, cents)
	if err != nil || k1 == nil {
		t.Fatalf("New: %v %v", k1, err)
	}
	k2, err := New(encH, encMu, cents)
	if err != nil || k2 == nil {
		t.Fatalf("New (rebuild): %v %v", k2, err)
	}
	rng := rand.New(rand.NewSource(11))
	seg := make([]byte, 64)
	h := make([]float64, k1.HiddenDim())
	mu1 := make([]float64, k1.LatentDim())
	mu2 := make([]float64, k1.LatentDim())
	for trial := 0; trial < 25; trial++ {
		rng.Read(seg)
		k1.Forward(seg, h, mu1)
		a := append([]float64(nil), mu1...)
		k1.Forward(seg, h, mu1) // same kernel, second pass
		k2.Forward(seg, h, mu2) // rebuilt kernel
		for i := range a {
			ab, rb, bb := math.Float64bits(a[i]), math.Float64bits(mu1[i]), math.Float64bits(mu2[i])
			if ab != rb || ab != bb {
				t.Fatalf("trial %d lane %d: latent bits differ across runs: %x %x %x", trial, i, ab, rb, bb)
			}
		}
	}
}

// TestPredictBlockMatchesPredict: the blocked multi-sample path must be
// the exact per-item path.
func TestPredictBlockMatchesPredict(t *testing.T) {
	encH, encMu, cents := testEncoder(t, 5, 256, 64, 8, 4)
	k, err := New(encH, encMu, cents)
	if err != nil || k == nil {
		t.Fatalf("New: %v %v", k, err)
	}
	rng := rand.New(rand.NewSource(9))
	segs := make([][]byte, 33)
	for i := range segs {
		segs[i] = make([]byte, 32)
		rng.Read(segs[i])
	}
	h := make([]float64, BlockSamples*k.HiddenDim())
	mu := make([]float64, BlockSamples*k.LatentDim())
	out := make([]int, len(segs))
	k.PredictBlock(segs, out, h, mu)
	for i, seg := range segs {
		if want := k.Predict(seg, h, mu); out[i] != want {
			t.Fatalf("item %d: block %d, single %d", i, out[i], want)
		}
	}
}

// TestForwardBlockBitIdentical: the interleaved multi-sample forward must
// produce bit-identical latents to per-sample Forward at every group
// width and partial block size — it reorders memory traffic, never
// arithmetic.
func TestForwardBlockBitIdentical(t *testing.T) {
	cases := []struct {
		name                      string
		inBits, hidden, latent, k int
	}{
		{"g8", 256, 64, 8, 4},
		{"g4", 2048, 512, 10, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			encH, encMu, cents := testEncoder(t, 17, tc.inBits, tc.hidden, tc.latent, tc.k)
			k, err := New(encH, encMu, cents)
			if err != nil || k == nil {
				t.Fatalf("New: %v %v", k, err)
			}
			rng := rand.New(rand.NewSource(23))
			segs := make([][]byte, BlockSamples)
			for i := range segs {
				segs[i] = make([]byte, tc.inBits/8)
				rng.Read(segs[i])
			}
			hBlk := make([]float64, BlockSamples*k.HiddenDim())
			muBlk := make([]float64, BlockSamples*k.LatentDim())
			h := make([]float64, k.HiddenDim())
			mu := make([]float64, k.LatentDim())
			for n := 1; n <= BlockSamples; n++ {
				k.ForwardBlock(segs[:n], hBlk, muBlk)
				for s := 0; s < n; s++ {
					k.Forward(segs[s], h, mu)
					for i := range mu {
						got := muBlk[s*k.LatentDim()+i]
						if math.Float64bits(got) != math.Float64bits(mu[i]) {
							t.Fatalf("n=%d sample %d lane %d: block %v, single %v", n, s, i, got, mu[i])
						}
					}
				}
			}
		})
	}
}

// TestAssignEarlyExit: early-exit nearest centroid must equal the full
// scan, including first-wins tie handling.
func TestAssignEarlyExit(t *testing.T) {
	latent := 6
	cents := [][]float64{
		{0, 0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1, 1},
		{0, 0, 0, 0, 0, 0}, // duplicate of centroid 0: ties go to the first
		{-1, 2, 0, 1, -2, 3},
	}
	encH := nn.NewDense(8, 4, nn.ReLU, rand.New(rand.NewSource(1)))
	encMu := nn.NewDense(4, latent, nn.Identity, rand.New(rand.NewSource(2)))
	k, err := New(encH, encMu, cents)
	if err != nil || k == nil {
		t.Fatalf("New: %v %v", k, err)
	}
	rng := rand.New(rand.NewSource(13))
	mu := make([]float64, latent)
	for trial := 0; trial < 200; trial++ {
		for i := range mu {
			mu[i] = rng.NormFloat64()
		}
		best, bestD := 0, math.Inf(1)
		for c, cent := range cents {
			if d := mat.SqDist(mu, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if got := k.Assign(mu); got != best {
			t.Fatalf("trial %d: Assign %d, full scan %d", trial, got, best)
		}
	}
	if got := k.Assign(make([]float64, latent)); got != 0 {
		t.Fatalf("tie broke to %d, want first centroid 0", got)
	}
}

// TestNewDecline: geometries whose smallest table exceeds the budget get
// (nil, nil) — decline, not error — so callers keep the float path.
func TestNewDecline(t *testing.T) {
	// 1-bit groups need inBits*2*hidden*8 bytes; 65536×32768 → 32 GiB.
	// The budget check is pure arithmetic, so a header-only weight matrix
	// (no Data) is enough — New must decline before touching weights.
	encH := &nn.Dense{In: 65536, Out: 32768, Act: nn.ReLU,
		W: &mat.Matrix{R: 32768, C: 65536}, B: make([]float64, 32768)}
	encMu := nn.NewDense(32768, 4, nn.Identity, rand.New(rand.NewSource(1)))
	k, err := New(encH, encMu, [][]float64{make([]float64, 4)})
	if err != nil {
		t.Fatalf("decline should not error: %v", err)
	}
	if k != nil {
		t.Fatalf("want nil kernel for over-budget geometry, got table %d bytes", k.TableBytes())
	}
}

// TestNewGeometryErrors: incoherent shapes must error, not panic later.
func TestNewGeometryErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok := nn.NewDense(16, 8, nn.ReLU, rng)
	head := nn.NewDense(8, 4, nn.Identity, rng)
	cents := [][]float64{make([]float64, 4)}
	cases := []struct {
		name string
		h, m *nn.Dense
		c    [][]float64
	}{
		{"nil trunk", nil, head, cents},
		{"nil head", ok, nil, cents},
		{"no centroids", ok, head, nil},
		{"unaligned input", nn.NewDense(13, 8, nn.ReLU, rng), head, cents},
		{"width chain", ok, nn.NewDense(9, 4, nn.Identity, rng), cents},
		{"centroid width", ok, head, [][]float64{make([]float64, 5)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if k, err := New(tc.h, tc.m, tc.c); err == nil {
				t.Fatalf("want geometry error, got kernel %v", k)
			}
		})
	}
}

// TestVersionMonotonic: every build gets a fresh, strictly increasing
// version, so swapped kernels are always observable.
func TestVersionMonotonic(t *testing.T) {
	encH, encMu, cents := testEncoder(t, 8, 64, 16, 4, 2)
	var last uint64
	for i := 0; i < 4; i++ {
		k, err := New(encH, encMu, cents)
		if err != nil || k == nil {
			t.Fatalf("New: %v %v", k, err)
		}
		if k.Version() <= last {
			t.Fatalf("version %d not above previous %d", k.Version(), last)
		}
		last = k.Version()
	}
}

// TestForwardZeroAlloc: the kernel serving path must not allocate.
func TestForwardZeroAlloc(t *testing.T) {
	encH, encMu, cents := testEncoder(t, 21, 512, 128, 10, 8)
	k, err := New(encH, encMu, cents)
	if err != nil || k == nil {
		t.Fatalf("New: %v %v", k, err)
	}
	seg := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(seg)
	h := make([]float64, k.HiddenDim())
	mu := make([]float64, k.LatentDim())
	if n := testing.AllocsPerRun(100, func() { k.Predict(seg, h, mu) }); n != 0 {
		t.Fatalf("Predict allocates %v per op, want 0", n)
	}
	segs := make([][]byte, BlockSamples)
	for i := range segs {
		segs[i] = seg
	}
	hBlk := make([]float64, BlockSamples*k.HiddenDim())
	muBlk := make([]float64, BlockSamples*k.LatentDim())
	out := make([]int, len(segs))
	if n := testing.AllocsPerRun(100, func() { k.PredictBlock(segs, out, hBlk, muBlk) }); n != 0 {
		t.Fatalf("PredictBlock allocates %v per op, want 0", n)
	}
}

// BenchmarkForward measures the bit-native kernel at the kvbench store
// geometry (64-byte segments, 512→128→10, K=8); BenchmarkForwardNaive is
// the float path it replaces.
func BenchmarkForward(b *testing.B) {
	encH, encMu, cents := benchEncoder()
	k, err := New(encH, encMu, cents)
	if err != nil || k == nil {
		b.Fatalf("New: %v %v", k, err)
	}
	seg := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(seg)
	h := make([]float64, k.HiddenDim())
	mu := make([]float64, k.LatentDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Predict(seg, h, mu)
	}
}

// BenchmarkForwardBlock8 measures the interleaved 8-sample path; ns/op is
// per sample, directly comparable to BenchmarkForward.
func BenchmarkForwardBlock8(b *testing.B) {
	encH, encMu, cents := benchEncoder()
	k, err := New(encH, encMu, cents)
	if err != nil || k == nil {
		b.Fatalf("New: %v %v", k, err)
	}
	rng := rand.New(rand.NewSource(2))
	segs := make([][]byte, BlockSamples)
	for i := range segs {
		segs[i] = make([]byte, 64)
		rng.Read(segs[i])
	}
	h := make([]float64, BlockSamples*k.HiddenDim())
	mu := make([]float64, BlockSamples*k.LatentDim())
	out := make([]int, len(segs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(segs) {
		k.PredictBlock(segs, out, h, mu)
	}
}

func BenchmarkForwardNaive(b *testing.B) {
	encH, encMu, cents := benchEncoder()
	seg := make([]byte, 64)
	rand.New(rand.NewSource(2)).Read(seg)
	x := make([]float64, 512)
	h := make([]float64, 128)
	mu := make([]float64, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = float64(seg[j>>3] >> (uint(j) & 7) & 1)
		}
		encH.Apply(x, h)
		encMu.Apply(h, mu)
		best, bestD := 0, math.Inf(1)
		for c, cent := range cents {
			if d := mat.SqDist(mu, cent); d < bestD {
				best, bestD = c, d
			}
		}
		_ = best
	}
}

func benchEncoder() (*nn.Dense, *nn.Dense, [][]float64) {
	rng := rand.New(rand.NewSource(42))
	encH := nn.NewDense(512, 128, nn.ReLU, rng)
	encMu := nn.NewDense(128, 10, nn.Identity, rng)
	cents := make([][]float64, 8)
	for c := range cents {
		cents[c] = make([]float64, 10)
		for i := range cents[c] {
			cents[c][i] = rng.NormFloat64()
		}
	}
	return encH, encMu, cents
}
