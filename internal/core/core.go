// Package core implements the E2-NVM model itself (§3.2–3.4): the VAE
// encoder jointly trained with K-means clustering over the latent space,
// the padding front-end for undersized items, elbow-based selection of K,
// and the background-retraining manager that swaps in a freshly trained
// model when the dynamic address pool runs low.
//
// Training follows the paper's recipe: (1) pretrain the VAE on the bit
// images of the memory segments, (2) run K-means on the latent means,
// (3) fine-tune the VAE with the joint clustering loss pulling latents
// toward their centroids while re-fitting the centroids, and (4) keep only
// the encoder + centroids for prediction.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/infer"
	"e2nvm/internal/kmeans"
	"e2nvm/internal/padding"
	"e2nvm/internal/vae"
)

// Config controls model architecture and training.
type Config struct {
	// InputBits is the model width w: the number of bits in one memory
	// segment image.
	InputBits int
	// K is the number of clusters. 0 selects K automatically with the
	// elbow method over ElbowRange.
	K int
	// ElbowRange is the candidate K values scanned when K == 0
	// (default 2..12).
	ElbowRange []int

	HiddenDim int
	LatentDim int

	Epochs      int     // VAE pretraining epochs (default 15)
	JointEpochs int     // joint fine-tuning epochs with cluster loss (default 5)
	BatchSize   int     // default 32
	Beta        float64 // KL weight (default 0.1 — bits are near-deterministic)
	Gamma       float64 // cluster-loss weight during fine-tuning (default 0.5)
	LR          float64

	// PadLocation/PadType select the padding strategy for items narrower
	// than InputBits. Unless PadExplicit is set, the zero value selects
	// the default strategy End + InputBased.
	PadLocation padding.Location
	PadType     padding.Type
	// PadExplicit marks PadLocation/PadType as deliberately chosen, so
	// that Begin+Zero (their zero values) can be requested explicitly.
	PadExplicit bool
	// LearnedPadWindow/LearnedPadPredict configure the sliding-window
	// LSTM when PadType == Learned (defaults 64 and 8, the paper's).
	LearnedPadWindow  int
	LearnedPadPredict int
	LearnedPadHidden  int // default 10
	LearnedPadEpochs  int // default 20

	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.InputBits <= 0 {
		return c, fmt.Errorf("core: InputBits %d must be positive: %w", c.InputBits, ErrBadConfig)
	}
	if c.K < 0 {
		return c, fmt.Errorf("core: K %d must be non-negative: %w", c.K, ErrBadConfig)
	}
	if len(c.ElbowRange) == 0 {
		c.ElbowRange = []int{2, 3, 4, 5, 6, 8, 10, 12}
	}
	if c.Epochs <= 0 {
		c.Epochs = 15
	}
	if c.JointEpochs < 0 {
		c.JointEpochs = 0
	} else if c.JointEpochs == 0 {
		c.JointEpochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Beta <= 0 {
		c.Beta = 0.1
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.5
	}
	if !c.PadExplicit && c.PadType == padding.Zero && c.PadLocation == padding.Begin {
		c.PadLocation = padding.End
		c.PadType = padding.InputBased
	}
	if c.LearnedPadWindow <= 0 {
		c.LearnedPadWindow = 64
	}
	if c.LearnedPadPredict <= 0 {
		c.LearnedPadPredict = 8
	}
	if c.LearnedPadHidden <= 0 {
		c.LearnedPadHidden = 10
	}
	if c.LearnedPadEpochs <= 0 {
		c.LearnedPadEpochs = 20
	}
	return c, nil
}

// Model is a trained E2-NVM predictor: VAE encoder + K-means centroids +
// padding front-end. Prediction methods are safe for concurrent use
// (they are read-only after training), matching the paper's note that VAE
// operations in the serving path are read-only.
type Model struct {
	cfg Config
	vae *vae.Model
	km  *kmeans.Model

	// kern is the bit-native inference kernel built from the trained
	// encoder + centroids (nil when the geometry cannot be
	// table-accelerated; prediction then stays on the float path). It is
	// immutable and set before the model is published, so serving never
	// observes a half-built table; a retrain produces a whole new Model
	// with its own kernel at a fresh infer version.
	kern *infer.Kernel

	history   []vae.EpochLoss
	sseCurve  []float64 // populated when K was chosen by the elbow method
	trainedOn int

	// scratch pools *predictScratch buffers so the PredictBytes serving
	// path does not allocate in steady state.
	scratch sync.Pool

	mu     sync.Mutex // guards padder (its RNG and dataset stats mutate)
	padder *padding.Padder
}

// predictScratch holds the reusable buffers of one PredictBytes call: the
// expanded bit image, the padded model input, the packed kernel input,
// and the encoder activations.
type predictScratch struct {
	bits, padded, h, mu []float64
	packed              []byte

	// blocked-path staging: up to infer.BlockSamples padded images live in
	// packBlk at segment-size stride, referenced through segBlk.
	segBlk  [][]byte
	packBlk []byte
}

// ErrBadSegment reports an item whose geometry does not match the model or
// store configuration (wrong width, oversized value, misconfigured segment
// size). Callers detect it with errors.Is.
var ErrBadSegment = errors.New("segment geometry mismatch")

// ErrBadConfig reports an invalid model configuration (non-positive width,
// negative K). Callers detect it with errors.Is.
var ErrBadConfig = errors.New("invalid model config")

// ErrBadTrainingSet reports training data the model cannot be fitted on
// (empty, wrong row width, too few samples for the elbow range).
var ErrBadTrainingSet = errors.New("invalid training set")

// ErrBadSnapshot reports a serialized model that cannot be restored.
var ErrBadSnapshot = errors.New("invalid model snapshot")

// Train fits an E2-NVM model on the bit images of the current memory
// segments. Each row of data must hold exactly cfg.InputBits values in
// {0,1}; BytesToBits converts raw segment contents.
func Train(data [][]float64, cfg Config) (*Model, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty training set: %w", ErrBadTrainingSet)
	}
	for i, row := range data {
		if len(row) != c.InputBits {
			return nil, fmt.Errorf("core: row %d has %d bits, want %d: %w", i, len(row), c.InputBits, ErrBadTrainingSet)
		}
	}

	v, err := vae.New(vae.Config{
		InputDim:  c.InputBits,
		HiddenDim: c.HiddenDim,
		LatentDim: c.LatentDim,
		LR:        c.LR,
		Beta:      c.Beta,
		Gamma:     c.Gamma,
		Seed:      c.Seed,
	})
	if err != nil {
		return nil, err
	}
	m := &Model{cfg: c, vae: v, trainedOn: len(data)}

	// (1) Pretrain the VAE.
	hist, err := v.Fit(data, vae.FitOptions{Epochs: c.Epochs, BatchSize: c.BatchSize})
	if err != nil {
		return nil, err
	}
	m.history = hist

	// (2) Cluster latents; choose K by the elbow method when unset.
	latents := v.EncodeAll(data)
	k := c.K
	if k == 0 {
		ks := feasibleKs(c.ElbowRange, len(data))
		if len(ks) == 0 {
			return nil, fmt.Errorf("core: no feasible K in elbow range for %d samples: %w", len(data), ErrBadTrainingSet)
		}
		curve, err := kmeans.SSECurve(latents, ks, c.Seed)
		if err != nil {
			return nil, err
		}
		m.sseCurve = curve
		k = ks[kmeans.ElbowPoint(curve)]
	}
	if k > len(data) {
		k = len(data)
	}
	kcfg := kmeans.NewConfig(k)
	kcfg.Seed = c.Seed
	km, err := kmeans.Fit(latents, kcfg)
	if err != nil {
		return nil, err
	}
	m.km = km

	// (3) Joint fine-tuning: alternate VAE epochs (with the cluster pull)
	// and centroid refits.
	for e := 0; e < c.JointEpochs; e++ {
		h, err := v.Fit(data, vae.FitOptions{Epochs: 1, BatchSize: c.BatchSize, Centroids: km.Centroids})
		if err != nil {
			return nil, err
		}
		m.history = append(m.history, h...)
		latents = v.EncodeAll(data)
		km, err = kmeans.Fit(latents, kcfg)
		if err != nil {
			return nil, err
		}
		m.km = km
	}

	// (4) Padding front-end.
	p := padding.New(c.PadLocation, c.PadType, c.Seed+1)
	for _, row := range data {
		p.Observe(row)
	}
	if c.PadType == padding.Learned {
		net, err := padding.TrainLearnedModel(data, c.LearnedPadWindow, c.LearnedPadPredict,
			c.LearnedPadHidden, c.LearnedPadEpochs, c.Seed+2)
		if err != nil {
			return nil, err
		}
		p.SetModel(net, c.LearnedPadWindow, c.LearnedPadPredict)
	}
	m.padder = p
	m.kern = buildKernel(m.vae, m.km)
	return m, nil
}

// buildKernel constructs the bit-native inference kernel for a trained
// encoder + centroid set, or nil when the geometry cannot be
// table-accelerated (input not byte-aligned, or no group width fits the
// table budget) — the serving path then falls back to the float encoder.
func buildKernel(v *vae.Model, km *kmeans.Model) *infer.Kernel {
	encH, encMu := v.EncoderLayers()
	k, err := infer.New(encH, encMu, km.Centroids)
	if err != nil {
		return nil
	}
	return k
}

// feasibleKs filters candidate K values to those not exceeding the sample
// count.
func feasibleKs(ks []int, n int) []int {
	var out []int
	for _, k := range ks {
		if k >= 1 && k <= n {
			out = append(out, k)
		}
	}
	return out
}

// Config returns the defaulted configuration the model was trained with.
func (m *Model) Config() Config { return m.cfg }

// K returns the number of clusters.
func (m *Model) K() int { return m.km.K }

// InputBits returns the model width w.
func (m *Model) InputBits() int { return m.cfg.InputBits }

// History returns the training loss curve (pretraining followed by joint
// fine-tuning epochs).
func (m *Model) History() []vae.EpochLoss { return m.history }

// SSECurve returns the elbow-method SSE values when K was auto-selected,
// or nil when K was fixed.
func (m *Model) SSECurve() []float64 { return m.sseCurve }

// TrainedOn returns the number of segment images the model was fitted on.
func (m *Model) TrainedOn() int { return m.trainedOn }

// Centroids exposes the latent-space centroids (read-only).
func (m *Model) Centroids() [][]float64 { return m.km.Centroids }

// LatentSSE returns the final K-means sum of squared errors over the
// training latents — the cluster-tightness metric joint training improves.
func (m *Model) LatentSSE() float64 { return m.km.SSE }

// FLOPsPerPredict estimates the compute per prediction (encoder pass plus
// the K·latent centroid scan), consumed by the energy profiler.
func (m *Model) FLOPsPerPredict() float64 {
	return m.vae.FLOPsPerPredict() + 2*float64(m.km.K)*float64(m.vae.LatentDim())
}

// Predict maps a full-width item (InputBits values in {0,1}) to its
// cluster. Items of the wrong width report ErrBadSegment; use
// PredictPadded for narrower items.
func (m *Model) Predict(item []float64) (int, error) {
	if len(item) != m.cfg.InputBits {
		return 0, fmt.Errorf("core: Predict item of %d bits, want %d (use PredictPadded): %w",
			len(item), m.cfg.InputBits, ErrBadSegment)
	}
	return m.km.Predict(m.vae.Encode(item)), nil
}

// PredictPadded maps an item of up to InputBits bits to its cluster,
// applying the configured padding strategy when the item is narrower than
// the model (§4). The padded bits are used only for this prediction. Items
// wider than InputBits report ErrBadSegment.
func (m *Model) PredictPadded(item []float64) (int, error) {
	if len(item) == m.cfg.InputBits {
		return m.Predict(item)
	}
	m.mu.Lock()
	padded, err := m.padder.PadChecked(item, m.cfg.InputBits)
	m.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("core: %v: %w", err, ErrBadSegment)
	}
	return m.Predict(padded)
}

// PredictBytes maps a raw segment image to its cluster. It is the serving
// path (Algorithm 1 step 4): full-width images go straight through the
// bit-native inference kernel when one is available (DESIGN.md §11);
// narrower items are bit-expanded, padded (§4), packed back to bytes and
// then pushed through the kernel. All scratch is pooled, so steady-state
// calls do not allocate.
//
// lint:hotpath
func (m *Model) PredictBytes(b []byte) (int, error) {
	s, _ := m.scratch.Get().(*predictScratch)
	if s == nil {
		s = new(predictScratch) // lint:allow hotpathalloc — one scratch set per P, amortized by the pool
	}
	c, err := m.predictBytesScratched(s, b)
	m.scratch.Put(s)
	return c, err
}

// predictBytesScratched routes one raw image through the kernel (packing
// padded bits back to bytes when the item is undersized) or, when no
// kernel fits the geometry, through the float encoder.
func (m *Model) predictBytesScratched(s *predictScratch, b []byte) (int, error) {
	kern := m.kern
	if kern == nil {
		s.bits = bytesToBitsInto(s.bits, b)
		return m.predictScratched(s, s.bits)
	}
	seg := b
	if len(b)*8 != m.cfg.InputBits {
		m.mu.Lock()
		packed, err := m.padPackedLocked(s, s.packed, b)
		m.mu.Unlock()
		if err != nil {
			return 0, err
		}
		s.packed = packed
		seg = packed
	}
	s.h = growFloats(s.h, kern.HiddenDim())
	s.mu = growFloats(s.mu, kern.LatentDim())
	return kern.Predict(seg, s.h, s.mu), nil
}

// padPackedLocked pads an undersized item to the model width in packed
// byte form, writing into dst's backing array: directly in byte space
// when the padder supports it (End placement — the common configuration),
// otherwise expand, pad in bit space (§4) and pack the padded bits.
// Either way the padder RNG draws the same values in the same order, so
// the two routes produce the same image and the kernel consumes exactly
// what the float encoder would see. Callers hold m.mu.
func (m *Model) padPackedLocked(s *predictScratch, dst []byte, b []byte) ([]byte, error) {
	if m.padder.CanPadBytes() {
		packed, err := m.padder.PadBytesTo(dst, b, m.cfg.InputBits)
		if err != nil {
			return nil, fmt.Errorf("core: %v: %w", err, ErrBadSegment)
		}
		return packed, nil
	}
	s.bits = bytesToBitsInto(s.bits, b)
	padded, err := m.padder.PadCheckedTo(s.padded, s.bits, m.cfg.InputBits)
	if err != nil {
		return nil, fmt.Errorf("core: %v: %w", err, ErrBadSegment)
	}
	s.padded = padded
	return packBitsInto(dst, padded), nil
}

// packBitsInto packs a {0,1} float vector into bytes (LSB-first, matching
// bitvec's layout), reusing dst's backing array. Values threshold at 0.5
// like bitvec.FromFloats; padders emit exact 0/1 bits, so nothing is lost.
func packBitsInto(dst []byte, bits []float64) []byte {
	n := (len(bits) + 7) / 8
	if cap(dst) < n {
		dst = make([]byte, n) // lint:allow hotpathalloc — scratch grows once to the segment width
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range bits {
		if v >= 0.5 {
			dst[i>>3] |= 1 << (uint(i) & 7)
		}
	}
	return dst
}

// predictScratched pads (when the item is narrower than the model) and
// encodes item using the buffers in s.
func (m *Model) predictScratched(s *predictScratch, item []float64) (int, error) {
	if len(item) != m.cfg.InputBits {
		m.mu.Lock()
		padded, err := m.padder.PadCheckedTo(s.padded, item, m.cfg.InputBits)
		m.mu.Unlock()
		if err != nil {
			return 0, fmt.Errorf("core: %v: %w", err, ErrBadSegment)
		}
		s.padded = padded
		item = padded
	}
	s.h = growFloats(s.h, m.vae.HiddenDim())
	s.mu = growFloats(s.mu, m.vae.LatentDim())
	return m.km.Predict(m.vae.EncodeInto(item, s.h, s.mu)), nil
}

// growFloats returns a slice of length n, reusing s's backing array when it
// is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) // lint:allow hotpathalloc — scratch sized once per model geometry
	}
	return s[:n]
}

// MustPredictBytes is PredictBytes for callers that construct their inputs
// (experiment drivers, examples) and treat a geometry mismatch as a bug.
func (m *Model) MustPredictBytes(b []byte) int {
	c, err := m.PredictBytes(b)
	if err != nil {
		panic(err) // lint:allow nopanic — Must* convenience for driver code with self-made inputs
	}
	return c
}

// PredictBytesBlock predicts every image in imgs sequentially into out
// (len(out) must be ≥ len(imgs)), reusing one pooled scratch set across
// the block — the amortized multi-sample path batched writes ride on. A
// failed item reports -1 in its slot and processing continues; the
// returned error wraps the first failure with its index.
//
// lint:hotpath
func (m *Model) PredictBytesBlock(imgs [][]byte, out []int) error {
	idx, err := m.predictBlock(imgs, out, 0)
	if err != nil {
		return fmt.Errorf("core: batch item %d: %w", idx, err)
	}
	return nil
}

// predictBlock is the shared worker body of PredictBytesBlock and
// PredictBytesBatch: it predicts imgs into out with one pooled scratch
// set, marking failed items -1 and returning the absolute index (base+i)
// of the first failure, or -1. With a kernel available it stages each
// run of up to infer.BlockSamples images (padding undersized ones under
// one padder lock) and pushes them through the kernel's interleaved
// multi-sample forward, whose table lookups overlap in the memory system;
// results are bit-identical to the per-item path.
//
// lint:hotpath
func (m *Model) predictBlock(imgs [][]byte, out []int, base int) (int, error) {
	s, _ := m.scratch.Get().(*predictScratch)
	if s == nil {
		s = new(predictScratch) // lint:allow hotpathalloc — one scratch set per P, amortized by the pool
	}
	kern := m.kern
	firstIdx, firstErr := -1, error(nil)
	if kern == nil {
		for i, b := range imgs {
			c, err := m.predictBytesScratched(s, b)
			if err != nil {
				out[i] = -1
				if firstErr == nil {
					firstIdx, firstErr = base+i, err
				}
				continue
			}
			out[i] = c
		}
		m.scratch.Put(s)
		return firstIdx, firstErr
	}

	segBytes := m.cfg.InputBits / 8
	if cap(s.packBlk) < infer.BlockSamples*segBytes {
		s.packBlk = make([]byte, infer.BlockSamples*segBytes) // lint:allow hotpathalloc — staging sized once to a block of segments
		s.segBlk = make([][]byte, infer.BlockSamples)         // lint:allow hotpathalloc — sized once with the staging buffer
	}
	s.h = growFloats(s.h, infer.BlockSamples*kern.HiddenDim())
	s.mu = growFloats(s.mu, infer.BlockSamples*kern.LatentDim())
	latent := kern.LatentDim()
	for lo := 0; lo < len(imgs); lo += infer.BlockSamples {
		hi := lo + infer.BlockSamples
		if hi > len(imgs) {
			hi = len(imgs)
		}
		// Stage the run: full-width images go in by reference, undersized
		// ones pad into their own stride of packBlk — all under one padder
		// lock. idxs maps staged slots back to caller indices.
		var idxs [infer.BlockSamples]int
		segs := s.segBlk[:infer.BlockSamples]
		n := 0
		m.mu.Lock()
		for i := lo; i < hi; i++ {
			b := imgs[i]
			if len(b)*8 != m.cfg.InputBits {
				stride := s.packBlk[n*segBytes : (n+1)*segBytes : (n+1)*segBytes]
				packed, err := m.padPackedLocked(s, stride, b)
				if err != nil {
					out[i] = -1
					if firstErr == nil {
						firstIdx, firstErr = base+i, err
					}
					continue
				}
				b = packed
			}
			segs[n] = b
			idxs[n] = i
			n++
		}
		m.mu.Unlock()
		if n == 0 {
			continue
		}
		kern.ForwardBlock(segs[:n], s.h, s.mu)
		for j := 0; j < n; j++ {
			out[idxs[j]] = kern.Assign(s.mu[j*latent:][:latent])
		}
	}
	m.scratch.Put(s)
	return firstIdx, firstErr
}

// PredictBytesBatch predicts the clusters of many segment images in
// parallel (prediction is thread-safe), preserving input order. It is the
// bulk path used when populating or rebuilding the address pool over large
// devices. Every item is attempted: a failed item reports -1 in its slot
// while the rest of the batch keeps its predictions, and the returned
// error wraps the first failure (by input order) with its index.
func (m *Model) PredictBytesBatch(imgs [][]byte) ([]int, error) {
	out := make([]int, len(imgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(imgs) {
		workers = len(imgs)
	}
	if workers <= 1 {
		if idx, err := m.predictBlock(imgs, out, 0); err != nil {
			return out, fmt.Errorf("core: batch item %d: %w", idx, err)
		}
		return out, nil
	}
	var wg sync.WaitGroup
	idxs := make([]int, workers)
	errs := make([]error, workers)
	chunk := (len(imgs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(imgs) {
			hi = len(imgs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			idxs[w], errs[w] = m.predictBlock(imgs[lo:hi], out[lo:hi], lo)
		}(w, lo, hi)
	}
	wg.Wait()
	firstIdx, firstErr := -1, error(nil)
	for w, err := range errs {
		if err != nil && (firstErr == nil || idxs[w] < firstIdx) {
			firstIdx, firstErr = idxs[w], err
		}
	}
	if firstErr != nil {
		return out, fmt.Errorf("core: batch item %d: %w", firstIdx, firstErr)
	}
	return out, nil
}

// Encode exposes the latent embedding of a full-width item.
func (m *Model) Encode(item []float64) []float64 { return m.vae.Encode(item) }

// Kernel returns the model's bit-native inference kernel, or nil when the
// geometry fell back to the float path. The kernel's Version identifies
// the training generation serving predictions.
func (m *Model) Kernel() *infer.Kernel { return m.kern }

// Padder returns the model's padding front-end (used by experiments to
// install memory-density callbacks).
func (m *Model) Padder() *padding.Padder {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.padder
}

// SetPadder swaps the padding front-end, letting experiments sweep padding
// strategies against one trained encoder (Figure 14).
func (m *Model) SetPadder(p *padding.Padder) {
	m.mu.Lock()
	m.padder = p
	m.mu.Unlock()
}

// BytesToBits expands raw bytes into the {0,1} float vector the model
// consumes.
func BytesToBits(b []byte) []float64 { return bitvec.FromBytes(b).Floats() }

// bytesToBitsInto is BytesToBits reusing dst's backing array (LSB-first
// within each byte, matching bitvec's layout).
func bytesToBitsInto(dst []float64, b []byte) []float64 {
	n := len(b) * 8
	if cap(dst) < n {
		dst = make([]float64, n) // lint:allow hotpathalloc — scratch grows once to the segment width
	}
	dst = dst[:n]
	for i, by := range b {
		for j := 0; j < 8; j++ {
			dst[i*8+j] = float64((by >> uint(j)) & 1)
		}
	}
	return dst
}

// BitsToBytes packs a {0,1} float vector back into bytes (thresholding at
// 0.5).
func BitsToBytes(bits []float64) []byte {
	v := bitvec.FromFloats(bits)
	out := make([]byte, len(v.Bytes()))
	copy(out, v.Bytes())
	return out
}

// ---------------------------------------------------------------------- --

// Manager holds the live model and performs background retraining with an
// atomic swap, implementing the paper's lazy-retraining policy: serving
// continues on the old model while the new one trains; once ready, the new
// model takes over.
type Manager struct {
	// wg tracks in-flight retrain goroutines so Quiesce can join them.
	wg sync.WaitGroup

	mu      sync.RWMutex
	current *Model

	retraining sync.Mutex // serializes retrains
	inFlight   bool

	// Retrains counts completed background retrains.
	retrains int
}

// NewManager wraps an initially trained model.
func NewManager(m *Model) *Manager {
	return &Manager{current: m}
}

// Current returns the live model.
func (g *Manager) Current() *Model {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.current
}

// Retrains returns the number of completed background retrains.
func (g *Manager) Retrains() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.retrains
}

// Retraining reports whether a background retrain is in flight.
func (g *Manager) Retraining() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inFlight
}

// RetrainAsync trains a new model on data in the background and swaps it
// in when done, invoking onDone (which may be nil) with the new model or
// the training error. At most one retrain runs at a time; a concurrent
// request returns false and is dropped.
func (g *Manager) RetrainAsync(data [][]float64, cfg Config, onDone func(*Model, error)) bool {
	g.mu.Lock()
	if g.inFlight {
		g.mu.Unlock()
		return false
	}
	g.inFlight = true
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		m, err := Train(data, cfg)
		g.mu.Lock()
		if err == nil {
			g.current = m
			g.retrains++
		}
		g.inFlight = false
		g.mu.Unlock()
		if onDone != nil {
			onDone(m, err)
		}
	}()
	return true
}

// Quiesce blocks until every in-flight background retrain has finished
// (including its onDone callback). It does not prevent new retrains from
// starting; callers that need a hard stop should quiesce after the last
// RetrainAsync they issue.
func (g *Manager) Quiesce() {
	g.wg.Wait()
}

// RetrainSync trains and swaps synchronously (used by experiments that
// model the paper's "stop the world and retrain" Figure 16 step).
func (g *Manager) RetrainSync(data [][]float64, cfg Config) (*Model, error) {
	g.retraining.Lock()
	defer g.retraining.Unlock()
	m, err := Train(data, cfg)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.current = m
	g.retrains++
	g.mu.Unlock()
	return m, nil
}
