// Package inlinebudget is the golden fixture for the inlinebudget
// analyzer: the sibling gcdiag.txt carries canned -m=2 inliner verdicts
// for the annotated functions below — one inlinable (silent), one pushed
// past the cost budget, one pinned by go:noinline, one with no decision
// at all, and one rejected but explicitly allowed.
package inlinebudget

// Mix stays comfortably under the budget: no finding.
// lint:inline
func Mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	return x ^ x>>29
}

// Heavy regressed past the inliner budget.
// lint:inline
func Heavy(b []byte) int { // want "lint:inline function inlinebudget\.Heavy is not inlinable: cost 120 exceeds budget 80"
	s := 0
	for i := range b {
		if b[i] > 0x7f {
			s += 2
		} else {
			s++
		}
	}
	return s
}

// Pinned is rejected for a reason with no cost attached.
// lint:inline
func Pinned() int { // want "lint:inline function inlinebudget\.Pinned is not inlinable: marked go:noinline"
	return 1
}

// Ghost has no verdict in the canned stream — the contract is silently
// unverified, which is itself a finding.
// lint:inline
func Ghost() int { // want "no inlining decision reported for lint:inline function inlinebudget\.Ghost: contract unverified"
	return 2
}

// Waived is rejected like Heavy but the regression is accepted.
// lint:inline
// lint:allow inlinebudget — accepted regression pending codec refactor
func Waived(b []byte) int {
	s := 0
	for i := range b {
		s += int(b[i]) * 31
	}
	return s
}
