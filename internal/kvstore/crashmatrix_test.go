package kvstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/txn"
)

// crashOp is one step of the crash-matrix workload.
type crashOp struct {
	del   bool
	key   uint64
	value []byte
}

// crashWorkload is a mixed Put/Delete sequence covering new keys, updates,
// deletes, and re-inserts after delete.
var crashWorkload = []crashOp{
	{key: 1, value: []byte("alpha")},
	{key: 2, value: []byte("beta")},
	{key: 1, value: []byte("alpha-2")}, // update: persist-new + invalidate-old
	{del: true, key: 2},
	{key: 3, value: []byte("gamma")},
	{del: true, key: 1},
	{key: 2, value: []byte("beta-2")}, // re-insert a deleted key
}

// TestCrashMatrix sweeps an injected crash across every redo-log write
// point of the workload. After each crash the store is recovered from the
// device alone and every key must hold either the value from before or
// after the interrupted operation — with all earlier operations fully
// applied — never a torn mix.
func TestCrashMatrix(t *testing.T) {
	// One model serves every run: all devices are seeded identically.
	mkDev := func() *nvm.Device {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 64))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(42)))
		return dev
	}
	modelCfg := quickModelCfg()
	modelCfg.InputBits = 32 * 8
	model, err := core.Train(func() [][]float64 {
		imgs, err := segmentImages(mkDev())
		if err != nil {
			t.Fatal(err)
		}
		return imgs
	}(), modelCfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CrashSafe: true}

	completed := false
	for failAt := 0; !completed; failAt++ {
		dev := mkDev()
		s, err := OpenWith(dev, model, opts)
		if err != nil {
			t.Fatal(err)
		}
		s.TxnManager().FailAfter(failAt)

		// Run ops until the injected crash fires; pre tracks the state
		// after the last fully successful op, post additionally includes
		// the op in flight when the crash hit.
		pre := map[uint64][]byte{}
		var post map[uint64][]byte
		crashed := false
		for _, op := range crashWorkload {
			next := map[uint64][]byte{}
			for k, v := range pre {
				next[k] = v
			}
			var err error
			if op.del {
				_, err = s.Delete(op.key)
				delete(next, op.key)
			} else {
				err = s.Put(op.key, op.value)
				next[op.key] = op.value
			}
			if err != nil {
				if !errorsIsCrash(err) {
					t.Fatalf("failAt=%d: op on key %d: %v", failAt, op.key, err)
				}
				crashed = true
				post = next
				break
			}
			pre = next
		}
		if !crashed {
			// The crash point lies beyond the workload: matrix complete.
			completed = true
			post = pre
		}

		// Recover from the device alone and check every key settled on a
		// pre- or post-state value of the interrupted operation.
		r, err := RecoverWith(dev, model, opts)
		if err != nil {
			t.Fatalf("failAt=%d: recover: %v", failAt, err)
		}
		keys := map[uint64]bool{}
		for k := range pre {
			keys[k] = true
		}
		for k := range post {
			keys[k] = true
		}
		for k := range keys {
			got, ok, err := r.Get(k)
			if err != nil {
				t.Fatalf("failAt=%d: Get(%d) after recovery: %v", failAt, k, err)
			}
			preV, preOK := pre[k]
			postV, postOK := post[k]
			matchPre := ok == preOK && (!ok || bytes.Equal(got, preV))
			matchPost := ok == postOK && (!ok || bytes.Equal(got, postV))
			if !matchPre && !matchPost {
				t.Fatalf("failAt=%d: key %d = %q/%v, want pre %q/%v or post %q/%v",
					failAt, k, got, ok, preV, preOK, postV, postOK)
			}
		}
		if failAt > 200 {
			t.Fatal("matrix never completed; crash injection is not advancing")
		}
	}
}

// errorsIsCrash reports whether err stems from the injected crash.
func errorsIsCrash(err error) bool { return errors.Is(err, txn.ErrCrashed) }
