// Live keyspace migration: when a group's last replica dies, its records
// drain into the surviving groups while clients keep writing.
//
// The protocol is target-first with tombstones:
//
//   - At drain start the group snapshots the then-active groups as its
//     redirect set; a key's migration target is a pure hash over that set,
//     so routing after the drain needs no per-key table.
//   - Client writes during the drain go straight to the target group; a
//     tombstone marks the source copy stale. The migrator copies with
//     PutIfAbsent, so a stale source record can never clobber a newer
//     client write regardless of interleaving.
//   - Client deletes must hold the drain lock across the target delete:
//     delete is the one operation where "absent in the target" and "not
//     yet migrated" are indistinguishable, and an unsynchronized migrator
//     could resurrect the deleted record.
//   - Reads try the target first, then the untombstoned source. A read
//     racing the end of the drain can see a source record one write stale
//     — the bounded-staleness window the handoff allows.
//
// The redirect graph is acyclic: a group only redirects to groups that
// were active when it began draining, and a drained group never serves
// again, so chains strictly follow drain start order and every route
// terminates.
package replica

import (
	"errors"

	"e2nvm/internal/kvstore"
)

// startDrainLocked begins migrating the group's keyspace out of source
// (its last living store) into the groups still active. Callers hold
// g.mu; the atomic state store publishes the migration fields to readers
// that never take that lock.
func (g *Group) startDrainLocked(source *kvstore.Store) error {
	targets := g.c.activeGroupIDs(g.id)
	g.drain.source = source
	if len(targets) == 0 {
		g.state.Store(stateDown)
		return g.drain.downErr
	}
	g.drain.redirect = targets
	g.drain.mu.Lock()
	g.drain.tombs = make(map[uint64]struct{})
	g.drain.migRunning = true
	g.drain.mu.Unlock()
	g.state.Store(stateDraining)
	g.c.migWG.Add(1)
	go g.migrate()
	return nil
}

// targetFor returns the group id serving key after this group's drain.
// The choice hashes the bits Of leaves untouched, so keys of one drained
// group spread evenly over its redirect set.
func (g *Group) targetFor(key uint64) int {
	r := g.drain.redirect
	return r[int((mix64(key)>>32)%uint64(len(r)))]
}

// targetGroup resolves key's migration target, chasing groups that have
// themselves drained since this group's redirect set was snapshotted.
func (g *Group) targetGroup(key uint64) *Group {
	tgt := g.c.groups[g.targetFor(key)]
	for tgt.state.Load() == stateDrained {
		tgt = g.c.groups[tgt.targetFor(key)]
	}
	return tgt
}

// drainPut serves a client write during the drain: write to the target,
// then tombstone the source copy. No drain lock is needed across the
// target write — the migrator's PutIfAbsent cannot overwrite it — but the
// tombstone comes after the write so a migrator that observes it can
// trust the target copy exists.
func (g *Group) drainPut(key uint64, value []byte) error {
	for {
		tgt := g.targetGroup(key)
		err := tgt.put(key, value)
		if errors.Is(err, errMoved) {
			continue
		}
		if err != nil {
			return err
		}
		break
	}
	g.drain.mu.Lock()
	if g.drain.tombs != nil {
		g.drain.tombs[key] = struct{}{}
	}
	g.drain.mu.Unlock()
	return nil
}

// drainGet serves a client read during the drain: target first (it holds
// every value written since the drain began), then the source unless
// tombstoned. The tombstone re-checks bracket the source read so a
// concurrent overwrite or completed drain flips the read back to the
// authoritative target instead of returning the stale source copy.
func (g *Group) drainGet(key uint64, dst []byte) ([]byte, bool, error) {
	tgt := g.targetGroup(key)
	v, ok, err := tgt.getInto(key, dst)
	if ok || (err != nil && !errors.Is(err, errMoved)) {
		return v, ok, err
	}
	g.drain.mu.Lock()
	drained := g.drain.tombs == nil
	_, tomb := g.drain.tombs[key]
	src := g.drain.source
	g.drain.mu.Unlock()
	if drained {
		return v, false, nil // every surviving record reached the target
	}
	if tomb {
		return g.targetGroup(key).getInto(key, dst)
	}
	v, ok, err = src.GetInto(key, dst)
	if !ok || err != nil {
		return v, ok, err
	}
	g.drain.mu.Lock()
	_, tomb = g.drain.tombs[key]
	g.drain.mu.Unlock()
	if tomb || g.state.Load() != stateDraining {
		return g.targetGroup(key).getInto(key, dst)
	}
	return v, ok, err
}

// drainDelete serves a client delete during the drain. The drain lock is
// held across the target delete and the tombstone write: without it, a
// migrator between the two could copy the source record back into the
// target, resurrecting a deleted key.
func (g *Group) drainDelete(key uint64) (bool, error) {
	g.drain.mu.Lock()
	defer g.drain.mu.Unlock()
	if g.drain.tombs == nil {
		return false, errMoved
	}
	had := false
	for {
		tgt := g.targetGroup(key)
		// The target is always a group that started draining after this
		// one (redirect sets exclude the owner and chains follow drain
		// start order), so holding our drain.mu across its serving call
		// cannot close a cycle. lint:allow lockorder
		ok, err := tgt.delete(key)
		if errors.Is(err, errMoved) {
			continue
		}
		if err != nil {
			return false, err
		}
		had = ok
		break
	}
	if _, tomb := g.drain.tombs[key]; !tomb {
		// Not superseded yet: the source copy (if any) is still live.
		// Delete it best-effort — the index entry always clears; the
		// device invalidation may fail on the dying medium, which is why
		// the tombstone, not the source, is authoritative from here on.
		if _, ok, gerr := g.drain.source.Get(key); gerr == nil && ok {
			had = true
		}
		_, _ = g.drain.source.Delete(key)
	}
	g.drain.tombs[key] = struct{}{}
	return had, nil
}

// migrate walks the source index and copies every record that has not
// been superseded into its target group, then marks the group drained.
// It runs concurrently with client traffic; the per-key drain lock
// section is the only synchronization it needs (see the package comment
// for why PutIfAbsent carries the rest). Corrupt source records — the
// dying device may have eaten some — are counted as lost and skipped.
func (g *Group) migrate() {
	defer g.c.migWG.Done()
	src := g.drain.source
	var buf []byte
	lo := uint64(0)
	for {
		k, v, ok, err := src.NextInto(lo, ^uint64(0), buf)
		if err != nil {
			if errors.Is(err, kvstore.ErrCorrupt) {
				g.migLost.Add(1)
				if k == ^uint64(0) {
					break
				}
				lo = k + 1
				continue
			}
			g.finishMigrate(err)
			return
		}
		if !ok {
			break
		}
		buf = v
		g.drain.mu.Lock()
		var perr error
		if _, tomb := g.drain.tombs[k]; !tomb {
			// Cross-instance by construction: the copy lands on a different
			// group (a key's target is never its draining owner), so this
			// drain.mu -> Group.mu chain is acyclic. lint:allow lockorder
			wrote, err := g.migrateCopyLocked(k, v)
			perr = err
			if wrote {
				g.migrated.Add(1)
			}
		}
		g.drain.mu.Unlock()
		if perr != nil {
			g.finishMigrate(perr)
			return
		}
		if k == ^uint64(0) {
			break
		}
		lo = k + 1
	}
	g.finishMigrate(nil)
}

// migrateCopyLocked copies one untombstoned source record into its
// target. Callers hold g.drain.mu — the migrator-side half of the delete
// race above.
func (g *Group) migrateCopyLocked(k uint64, v []byte) (bool, error) {
	for {
		tgt := g.targetGroup(k)
		wrote, err := tgt.putIfAbsent(k, v)
		if errors.Is(err, errMoved) {
			continue
		}
		return wrote, err
	}
}

// finishMigrate records the migration outcome. On success the group
// becomes drained and drops its tombstones; on failure it stays draining
// (the drain paths keep serving) and Cluster.CheckHealth can relaunch the
// migrator.
func (g *Group) finishMigrate(err error) {
	if err == nil {
		g.state.Store(stateDrained)
	}
	g.drain.mu.Lock()
	g.drain.migRunning = false
	g.drain.migErr = err
	if err == nil {
		g.drain.tombs = nil
	}
	g.drain.mu.Unlock()
}
