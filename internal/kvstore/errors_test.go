package kvstore

import (
	"errors"
	"math/rand"
	"testing"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/nvm"
	"e2nvm/internal/txn"
)

// trainNarrowModel trains a model whose InputBits disagree with the target
// device geometry (a misconfigured store).
func trainNarrowModel(t *testing.T, bits int) *core.Model {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	data := make([][]float64, 40)
	for i := range data {
		row := make([]float64, bits)
		for j := range row {
			row[j] = float64(r.Intn(2))
		}
		data[i] = row
	}
	cfg := quickModelCfg()
	cfg.InputBits = bits
	m, err := core.Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestOpenWithBadGeometryIsErrBadSegment: a model trained for a different
// segment size must be rejected with the sentinel, not a panic.
func TestOpenWithBadGeometryIsErrBadSegment(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 16))
	if err != nil {
		t.Fatal(err)
	}
	model := trainNarrowModel(t, 64) // != 32*8
	if _, err := OpenWith(dev, model, Options{}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("OpenWith geometry mismatch: err = %v, want ErrBadSegment", err)
	}
	cfg := quickModelCfg()
	cfg.InputBits = 64
	if _, err := Open(dev, cfg, Options{}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("Open geometry mismatch: err = %v, want ErrBadSegment", err)
	}
	if !errors.Is(ErrBadSegment, core.ErrBadSegment) {
		t.Fatal("kvstore.ErrBadSegment must re-export core.ErrBadSegment")
	}
}

// TestClusteredAllocatorOversizedValue: Place on a value wider than the
// model's segment returns ErrBadSegment instead of panicking, and Release
// of unparsable content degrades to cluster 0 instead of crashing.
func TestClusteredAllocatorOversizedValue(t *testing.T) {
	model := trainNarrowModel(t, 32) // 4-byte segments
	pool, err := dap.New(model.K())
	if err != nil {
		t.Fatal(err)
	}
	pool.Add(0, 1)
	alloc := NewClusteredAllocator(core.NewManager(model), pool)

	if _, err := alloc.Place(make([]byte, 100)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("Place oversized: err = %v, want ErrBadSegment", err)
	}
	if _, err := alloc.Place(make([]byte, 4)); err != nil {
		t.Fatalf("Place well-sized: %v", err)
	}
	alloc.Release(1, make([]byte, 100)) // must not panic
	if alloc.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d after Release, want 1", alloc.FreeCount())
	}
}

// TestOutOfRangeIsSentinel: device and transaction out-of-range accesses
// all satisfy errors.Is(err, ErrOutOfRange).
func TestOutOfRangeIsSentinel(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(16, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Read(99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("device Read out of range: err = %v, want ErrOutOfRange", err)
	}
	if _, err := dev.Write(-1, make([]byte, 16)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("device Write out of range: err = %v, want ErrOutOfRange", err)
	}
	// Larger segments so the redo-log entry header fits.
	logDev, err := nvm.NewDevice(nvm.DefaultConfig(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	mgr, dataSegs, err := txn.NewManager(logDev, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Format(); err != nil {
		t.Fatal(err)
	}
	tx := mgr.Begin()
	if err := tx.Write(dataSegs, make([]byte, 32)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("txn Write into log zone: err = %v, want ErrOutOfRange", err)
	}
	tx.Abort()
}

// TestMisconfiguredStoreOperationsReturnErrors drives Put/Get/Delete on a
// store whose device was shrunk after open (simulating a configuration
// gone bad) and checks errors surface instead of panics.
func TestMisconfiguredStoreOperationsReturnErrors(t *testing.T) {
	s := openStore(t, 32, 16, Options{})
	// Force the index to point at an address the device rejects.
	s.mu.Lock()
	s.tree.Put(5, int64(1000))
	s.mu.Unlock()
	if _, _, err := s.Get(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Get with out-of-range address: err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.Delete(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Delete with out-of-range address: err = %v, want ErrOutOfRange", err)
	}
}
