package lockorder

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.RunProgram(t, "../testdata", Analyzer, "lockorder")
}
