package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestKernelBuiltAndServing: a trained model at byte-aligned geometry
// carries a kernel, and the byte serving path agrees with the float path
// on cluster assignments.
func TestKernelBuiltAndServing(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _ := segmentSet(r, 120, 3, 64, 0.05)
	m, err := Train(data, quickCfg(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	k := m.Kernel()
	if k == nil {
		t.Fatal("trained model at byte-aligned geometry has no kernel")
	}
	if k.InBits() != 64 || k.K() != 3 {
		t.Fatalf("kernel geometry %d bits K=%d, want 64/3", k.InBits(), k.K())
	}
	for trial := 0; trial < 30; trial++ {
		seg := make([]byte, 8)
		r.Read(seg)
		byteC, err := m.PredictBytes(seg)
		if err != nil {
			t.Fatal(err)
		}
		floatC := mustP(m.Predict(BytesToBits(seg)))
		if byteC != floatC {
			t.Fatalf("trial %d: kernel path %d, float path %d", trial, byteC, floatC)
		}
	}
}

// TestKernelSurvivesSnapshot: Save/Load rebuilds the kernel from the
// restored weights (it is derived state, never serialized) at a fresh
// version, and the restored kernel predicts identically.
func TestKernelSurvivesSnapshot(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _ := segmentSet(r, 100, 3, 32, 0.05)
	m, err := Train(data, quickCfg(32, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kernel() == nil {
		t.Fatal("restored model has no kernel")
	}
	if m2.Kernel().Version() == m.Kernel().Version() {
		t.Fatal("restored kernel reused the original's version")
	}
	for trial := 0; trial < 20; trial++ {
		seg := make([]byte, 4)
		r.Read(seg)
		a, err := m.PredictBytes(seg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := m2.PredictBytes(seg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: original %d, restored %d", trial, a, b)
		}
	}
}

// TestKernelModelSwapRace: serve PredictBytes (single and blocked) from
// many goroutines while the manager retrains and swaps models. Run under
// -race this verifies a Put can never mix tables and centroids from
// different trainings: each Model owns an immutable kernel built before
// publication, so the only shared mutable state is the manager's pointer.
func TestKernelModelSwapRace(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data, _ := segmentSet(r, 120, 3, 64, 0.05)
	m, err := Train(data, quickCfg(64, 3))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(m)
	v0 := mgr.Current().Kernel().Version()

	segs := make([][]byte, 16)
	for i := range segs {
		segs[i] = make([]byte, 8)
		r.Read(segs[i])
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, len(segs))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				model := mgr.Current()
				if g%2 == 0 {
					if _, err := model.PredictBytes(segs[i%len(segs)]); err != nil {
						t.Error(err)
						return
					}
				} else if err := model.PredictBytesBlock(segs, out); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	swaps := 0
	for retrain := 0; retrain < 3; retrain++ {
		cfg := quickCfg(64, 3)
		cfg.Seed = int64(100 + retrain)
		if _, err := mgr.RetrainSync(data, cfg); err != nil {
			t.Error(err)
			break
		}
		swaps++
	}
	close(stop)
	wg.Wait()
	vN := mgr.Current().Kernel().Version()
	if swaps == 3 && vN <= v0 {
		t.Fatalf("kernel version did not advance across swaps: %d -> %d", v0, vN)
	}
}
