package kvstore

import (
	"math/rand"
	"testing"

	"e2nvm/internal/nvm"
)

// BenchmarkPut / BenchmarkPutBatch8 mirror the kvbench Put scenarios at
// the same geometry so the serving path can be profiled in-package
// (go test -bench Put -cpuprofile ...). BENCH_PR5.json numbers come from
// cmd/e2nvm-bench, not from these.
func BenchmarkPut(b *testing.B) {
	s := benchStore(b)
	val := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val[0] = byte(i)
		if err := s.Put(uint64(i%512), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutBatch8(b *testing.B) {
	s := benchStore(b)
	const batch = 8
	keys := make([]uint64, batch)
	vals := make([][]byte, batch)
	for j := range vals {
		vals[j] = make([]byte, 32)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint64((i*batch + j) % 512)
			vals[j][0] = byte(i)
		}
		if err := s.PutBatch(keys, vals, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchStore(b *testing.B) *Store {
	b.Helper()
	cfg := quickModelCfg()
	cfg.K = 8
	cfg.Epochs = 5
	dev, err := nvm.NewDevice(nvm.DefaultConfig(64, 1024))
	if err != nil {
		b.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(42)))
	s, err := Open(dev, cfg, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return s
}
