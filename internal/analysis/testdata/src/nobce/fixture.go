// Package nobce is the golden fixture for the nobce analyzer: the
// sibling gcdiag.txt carries canned -d=ssa/check_bce output with checks
// in loops (flagged), on prologue reslices and hint lines (exempt), on
// cold exits (exempt), under lint:allow (suppressed), and in an
// unannotated function (ignored).
package nobce

// Sum carries the deliberate regression: a surviving in-loop check.
// lint:nobce
func Sum(b []byte, n int) int {
	b = b[:n] // prologue reslice: one straight-line check per call, exempt
	s := 0
	for i := 0; i < n; i++ {
		if s > 1<<30 {
			panic(b[n-1]) // cold: the block ends in panic, its check is exempt
		}
		s += int(b[i]) // want "compiler: IsInBounds survives in loop of lint:nobce function nobce\.Sum"
	}
	return s
}

// Rows indexes by a variable stride the prove pass cannot reason about;
// the check is structurally unavoidable and suppressed with a reason.
// lint:nobce
func Rows(t []byte, idx, w int) int {
	s := 0
	for i := 0; i < w; i++ {
		row := t[idx*w+i] // lint:allow nobce — variable stride defeats prove
		s += int(row)
	}
	return s
}

// Hinted concentrates its checks on a `_ = b[i+7]` hint so the loads
// below it are check-free; the hint's own check is exempt.
// lint:nobce
func Hinted(b []byte) int {
	s := 0
	for i := 0; i+8 <= len(b); i += 8 {
		_ = b[i+7] // bounds hint: one deliberate check covering the block
		s += int(b[i]) + int(b[i+7])
	}
	return s
}

// Plain has the same surviving check but no annotation: ignored.
func Plain(b []byte) int {
	s := 0
	for i := range b {
		s += int(b[i])
	}
	return s
}
