package atomicmix

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.RunProgram(t, "../testdata", Analyzer, "atomicmix")
}
