package vae

import (
	"fmt"

	"e2nvm/internal/nn"
)

// Snapshot is a serializable copy of a trained model's parameters (gob- and
// JSON-friendly: exported fields only).
type Snapshot struct {
	Cfg    Config
	Layers []LayerSnapshot
}

// LayerSnapshot captures one dense layer.
type LayerSnapshot struct {
	In, Out int
	Act     int
	W       []float64
	B       []float64
}

// Snapshot exports the model parameters.
func (m *Model) Snapshot() *Snapshot {
	s := &Snapshot{Cfg: m.cfg}
	for _, l := range m.layers() {
		s.Layers = append(s.Layers, LayerSnapshot{
			In:  l.In,
			Out: l.Out,
			Act: int(l.Act),
			W:   append([]float64(nil), l.W.Data...),
			B:   append([]float64(nil), l.B...),
		})
	}
	return s
}

// FromSnapshot reconstructs a model from exported parameters. The restored
// model predicts identically to the original; its optimizer state is fresh
// (resuming training re-warms Adam).
func FromSnapshot(s *Snapshot) (*Model, error) {
	m, err := New(s.Cfg)
	if err != nil {
		return nil, err
	}
	layers := m.layers()
	if len(s.Layers) != len(layers) {
		return nil, fmt.Errorf("vae: snapshot has %d layers, want %d", len(s.Layers), len(layers))
	}
	for i, ls := range s.Layers {
		l := layers[i]
		if ls.In != l.In || ls.Out != l.Out {
			return nil, fmt.Errorf("vae: snapshot layer %d is %dx%d, want %dx%d", i, ls.Out, ls.In, l.Out, l.In)
		}
		if len(ls.W) != len(l.W.Data) || len(ls.B) != len(l.B) {
			return nil, fmt.Errorf("vae: snapshot layer %d parameter sizes mismatch", i)
		}
		l.Act = nn.Activation(ls.Act)
		copy(l.W.Data, ls.W)
		copy(l.B, ls.B)
	}
	return m, nil
}
