package index

import (
	"bytes"
	"testing"

	"e2nvm/internal/nvm"
)

// FuzzRBTree drives the red-black tree with an opcode stream against a
// reference map, checking invariants after every operation. Under plain
// `go test` only the seed corpus runs; `go test -fuzz=FuzzRBTree` explores.
func FuzzRBTree(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{10, 10, 10, 11, 11, 12})
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var tr RBTree
		ref := map[uint64]int64{}
		for i := 0; i+1 < len(ops); i += 2 {
			key := uint64(ops[i] % 32)
			switch ops[i+1] % 3 {
			case 0, 1:
				tr.Put(key, int64(ops[i+1]))
				ref[key] = int64(ops[i+1])
			case 2:
				_, okT := tr.Delete(key)
				_, okR := ref[key]
				if okT != okR {
					t.Fatalf("Delete(%d) = %v, ref %v", key, okT, okR)
				}
				delete(ref, key)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				t.Fatalf("Get(%d) = (%d,%v), want %d", k, got, ok, v)
			}
		}
	})
}

// FuzzBPTreeStore drives the persistent B+-Tree with fuzzed keys/values
// against a reference map.
func FuzzBPTreeStore(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{9, 9, 9, 1, 1, 1, 200, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(128, 256))
		if err != nil {
			t.Fatal(err)
		}
		meta := NewFreeList(addrSeq(256))
		s, err := NewBPTree(dev, meta, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := map[uint64][]byte{}
		for i := 0; i+2 < len(ops); i += 3 {
			key := uint64(ops[i] % 40)
			switch ops[i+1] % 3 {
			case 0, 1:
				val := []byte{ops[i+2], ops[i+1]}
				if err := s.Put(key, val); err != nil {
					t.Skip("meta region exhausted") // valid fuzz input, bounded device
				}
				ref[key] = val
			case 2:
				ok, err := s.Delete(key)
				if err != nil {
					t.Fatal(err)
				}
				if _, want := ref[key]; ok != want {
					t.Fatalf("Delete(%d) = %v", key, ok)
				}
				delete(ref, key)
			}
		}
		for k, want := range ref {
			got, ok, err := s.Get(k)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get(%d) = (%x,%v,%v), want %x", k, got, ok, err, want)
			}
		}
	})
}

func addrSeq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
