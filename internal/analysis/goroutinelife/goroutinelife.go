// Package goroutinelife defines a whole-program Analyzer that requires
// every goroutine launch to carry a provable join or shutdown edge, so no
// fire-and-forget goroutine can outlive the store that spawned it (and
// keep mutating a swapped-out model, a closed device, or a drained pool).
//
// A launch is accepted when the goroutine's body — the function literal,
// or the statically resolved callee of `go f()` — contains any of:
//
//   - a WaitGroup.Done whose WaitGroup is Wait()ed somewhere in the
//     program (matched by the variable or field object, so the Add/Done
//     and the Wait may live in different methods or packages);
//   - a send on a channel some function receives from (a result handoff:
//     the receiver blocks until the goroutine finishes);
//   - a channel receive of its own — `<-ch`, `range ch`, or a select
//     receive arm — which is a shutdown edge: the owner ends the
//     goroutine by sending or closing.
//
// A launch whose target cannot be resolved (a function value) cannot be
// verified and is flagged. Deliberately detached goroutines use
// `lint:allow goroutinelife` on the launch line with the reason.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"e2nvm/internal/analysis"
)

// Analyzer flags goroutine launches with no provable join or shutdown.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "goroutinelife",
	Doc: "every go statement needs a provable join (WaitGroup.Wait, result-channel " +
		"receive) or shutdown edge (channel receive in the body); fire-and-forget " +
		"goroutines can outlive their owner",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Graph

	// Program-wide signal collection: which WaitGroup objects are ever
	// Wait()ed, and which channel objects are ever received from.
	waited := map[*types.Var]bool{}
	received := map[*types.Var]bool{}
	for _, n := range g.Nodes() {
		info := n.Pkg.TypesInfo
		n.InspectOwn(func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					if v := resolveVar(info, sel.X); v != nil && isWaitGroup(v.Type()) {
						waited[v] = true
					}
				}
			case *ast.UnaryExpr:
				if x.Op == recvOp {
					if v := resolveVar(info, x.X); v != nil {
						received[v] = true
					}
				}
			case *ast.RangeStmt:
				if t := info.Types[x.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						if v := resolveVar(info, x.X); v != nil {
							received[v] = true
						}
					}
				}
			}
			return true
		})
	}

	for _, n := range g.Nodes() {
		info := n.Pkg.TypesInfo
		n.InspectOwn(func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(g, info, gs)
			if body == nil {
				pass.Reportf(gs.Pos(),
					"goroutine target is a function value the engine cannot resolve; "+
						"its lifetime is unverifiable — launch a named function or literal, or lint:allow goroutinelife with the reason")
				return true
			}
			if joined(info, body, waited, received) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no provable join or shutdown edge (no WaitGroup.Done matched by a Wait, "+
					"no send on a received channel, no channel receive of its own); "+
					"a fire-and-forget goroutine can outlive its owner — join it or lint:allow goroutinelife with the reason")
			return true
		})
	}
	return nil
}

// recvOp is the channel-receive operator token.
const recvOp = token.ARROW

// goBody resolves the launched goroutine's body: the literal's own body,
// or the statically resolved in-program callee's.
func goBody(g *analysis.CallGraph, info *types.Info, gs *ast.GoStmt) *ast.BlockStmt {
	switch f := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return f.Body
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return n.Body()
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if n := g.NodeOf(fn); n != nil {
				return n.Body()
			}
		}
	}
	return nil
}

// joined reports whether the body carries a join or shutdown edge.
func joined(info *types.Info, body *ast.BlockStmt, waited, received map[*types.Var]bool) bool {
	ok := false
	ast.Inspect(body, func(x ast.Node) bool {
		if ok {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if sel, selOK := x.Fun.(*ast.SelectorExpr); selOK && sel.Sel.Name == "Done" {
				if v := resolveVar(info, sel.X); v != nil && isWaitGroup(v.Type()) && waited[v] {
					ok = true
				}
			}
		case *ast.SendStmt:
			if v := resolveVar(info, x.Chan); v != nil && received[v] {
				ok = true
			}
		case *ast.UnaryExpr:
			if x.Op == recvOp {
				ok = true // shutdown edge: the owner can end this goroutine
			}
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}

// resolveVar maps an identifier or field selection to its variable
// object, unwrapping one level of selector (x.wg, p.done, wg, done).
func resolveVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
