package analysis

// Whole-program analyzers: unlike the per-package Analyzer/Pass pair, a
// ProgramAnalyzer sees every loaded package at once plus the call graph
// built over them, so it can follow facts across function and package
// boundaries (reachability from annotated roots, error provenance through
// private helpers, and so on).

import (
	"fmt"
	"go/token"
)

// ProgramAnalyzer describes one whole-program static check.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the check over the whole program.
	Run func(*ProgramPass) error
}

// ProgramPass carries the whole program through one ProgramAnalyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Fset     *token.FileSet
	// Pkgs are the analyzed packages in load order.
	Pkgs []*Package
	// Graph is the static call graph over Pkgs.
	Graph *CallGraph

	diags *[]Diagnostic
	allow allowIndex
}

// NewProgramPass prepares a pass over pkgs for a, building the call graph.
// Diagnostics accumulate into out.
func NewProgramPass(a *ProgramAnalyzer, pkgs []*Package, out *[]Diagnostic) (*ProgramPass, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: program pass needs at least one package")
	}
	p := &ProgramPass{
		Analyzer: a,
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		Graph:    BuildCallGraph(pkgs),
		diags:    out,
		allow:    allowIndex{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			p.allow.indexFile(pkg.Fset, f)
		}
	}
	return p, nil
}

// Allowed reports whether a lint:allow comment for this analyzer covers
// pos (same line or the line above). Analyzers use it both to suppress a
// diagnostic at an interior site and to prune a call-graph edge whose call
// site is declared a cold branch.
func (p *ProgramPass) Allowed(pos token.Pos) bool {
	return p.allow.allowed(p.Fset.Position(pos), p.Analyzer.Name)
}

// AllowedAs reports whether a lint:allow comment for the given analyzer
// name covers pos. Analyzers that enforce a stricter view of another
// analyzer's invariant (escapes over hotpathalloc's root set) use it to
// honor the weaker analyzer's existing suppressions instead of demanding
// every site be annotated twice.
func (p *ProgramPass) AllowedAs(pos token.Pos, name string) bool {
	return p.allow.allowed(p.Fset.Position(pos), name)
}

// Reportf records a diagnostic at pos unless a lint:allow comment
// suppresses it.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allow.allowed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
