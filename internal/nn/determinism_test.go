package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainSteps initializes a layer from seed, runs a few Adam steps on a
// fixed input, and returns the resulting weights.
func trainSteps(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(8, 4, Sigmoid, rng)
	opt := NewAdam(0.01)
	opt.Register(d.Params()...)
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i%2) - 0.5
	}
	for step := 0; step < 5; step++ {
		y := d.Forward(x)
		grad := make([]float64, len(y))
		for i := range grad {
			grad[i] = y[i] - 0.5
		}
		d.ZeroGrad()
		d.Backward(grad)
		opt.Step()
	}
	return append([]float64(nil), d.W.Data...)
}

// TestDenseSameSeedBitIdentical asserts that the injected-*rand.Rand
// initialization plus training is fully deterministic: two same-seed runs
// end with bit-identical weights (math.Float64bits).
func TestDenseSameSeedBitIdentical(t *testing.T) {
	w1 := trainSteps(11)
	w2 := trainSteps(11)
	for i := range w1 {
		if math.Float64bits(w1[i]) != math.Float64bits(w2[i]) {
			t.Fatalf("weight %d diverged: %v vs %v", i, w1[i], w2[i])
		}
	}
	// Different seeds must actually change the initialization, otherwise
	// the identity above is vacuous.
	w3 := trainSteps(12)
	same := true
	for i := range w1 {
		if math.Float64bits(w1[i]) != math.Float64bits(w3[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}
