package kvstore

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip checks the record codec's integrity contract: a clean
// encode/parse round-trips exactly, and a corrupted record either still
// yields the original fields or is rejected (ok=false, which the store
// surfaces as ErrCorrupt) — it never parses into different bytes. Only the
// flags byte sits outside the checksum, and flipping its valid bit rejects
// the record outright, so no single-byte corruption can change what a
// reader sees.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint32(0), []byte("hello"), 0, byte(1))
	f.Add(uint64(0), uint32(2<<30), []byte{}, 15, byte(0xff))
	f.Add(^uint64(0), ^uint32(0), bytes.Repeat([]byte{0xa5}, 40), 22, byte(0x80))
	f.Fuzz(func(t *testing.T, key uint64, seq uint32, value []byte, corruptAt int, xor byte) {
		if len(value) > 1<<16-1-valueHeader {
			value = value[:1<<16-1-valueHeader]
		}
		buf := make([]byte, valueHeader+len(value))
		encodeRecord(buf, key, seq, value)

		k, s, v, ok := parseRecord(buf)
		if !ok || k != key || s != seq || !bytes.Equal(v, value) {
			t.Fatalf("clean round-trip failed: %v %v %x ok=%v", k, s, v, ok)
		}

		// Truncations must be rejected or round-trip, never panic or lie.
		if corruptAt >= 0 && corruptAt < len(buf) {
			if k, s, v, ok := parseRecord(buf[:corruptAt]); ok {
				if k != key || s != seq || !bytes.Equal(v, value) {
					t.Fatalf("truncation to %d parsed into different record", corruptAt)
				}
			}
		}

		// Single-byte corruption: the parser must reject it or return the
		// original fields (only dead flag bits are outside the CRC).
		if xor == 0 {
			return
		}
		i := corruptAt % len(buf)
		if i < 0 {
			i += len(buf)
		}
		buf[i] ^= xor
		k, s, v, ok = parseRecord(buf)
		if !ok {
			return
		}
		if i != 0 {
			t.Fatalf("corruption at byte %d (xor %#x) accepted by CRC", i, xor)
		}
		if k != key || s != seq || !bytes.Equal(v, value) {
			t.Fatal("flags-byte corruption served different record fields")
		}
	})
}
