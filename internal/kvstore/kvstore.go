// Package kvstore implements the persistent key/value store the paper
// builds on E2-NVM (§3.3, Figure 3): an RB-tree index in DRAM maps keys to
// NVM segments; incoming writes are steered by the E2-NVM model through the
// cluster-to-memory dynamic address pool; deletes reset a flag bit and
// recycle the address back to the pool under its (re-predicted) cluster.
//
// The store also exports ClusteredAllocator, which adapts the same
// model+pool machinery to the index.Allocator interface so that existing
// NVM data structures (B+-Tree, FP-Tree, Path Hashing, WiscKey, NoveLSM)
// can be "plugged into" E2-NVM exactly as in the paper's Figure 12.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/index"
	"e2nvm/internal/nvm"
	"e2nvm/internal/padding"
	"e2nvm/internal/txn"
)

// Placement selects the write-placement policy.
type Placement int

// Placement policies.
const (
	// PlaceE2NVM steers writes to content-similar free segments via the
	// model (the paper's scheme).
	PlaceE2NVM Placement = iota
	// PlaceArbitrary takes any free segment for new keys and overwrites
	// in place on update — what the paper calls "prior methods pick the
	// memory location arbitrarily".
	PlaceArbitrary
)

// String returns the policy name.
func (p Placement) String() string {
	if p == PlaceArbitrary {
		return "arbitrary"
	}
	return "e2nvm"
}

// The segment record layout (flags, length, key, sequence, CRC, value)
// lives in record.go. Records are self-describing — the key is in the
// segment — so a store can be rebuilt from NVM alone after a crash (see
// Recover), and CRC-protected, so cell-level corruption is detected rather
// than served.

// ErrValueTooLarge is returned when a value exceeds the segment payload.
var ErrValueTooLarge = errors.New("kvstore: value exceeds segment payload")

// ErrNoSpace is returned when no free segment remains.
var ErrNoSpace = errors.New("kvstore: no free segments")

// ErrDegraded is returned instead of a bare ErrNoSpace when allocation
// fails after retirement has consumed at least Options.DegradeThreshold of
// the data zone: the device is wearing out, not merely full. It wraps
// ErrNoSpace, so existing errors.Is(err, ErrNoSpace) checks still match.
var ErrDegraded = fmt.Errorf("kvstore: capacity degraded by worn-out segments: %w", ErrNoSpace)

// ErrCorrupt reports a stored record that cannot be trusted (an invalidated
// flag where a live record was expected, an out-of-range length, or a CRC
// mismatch). Callers detect it with errors.Is.
var ErrCorrupt = errors.New("kvstore: corrupt record")

// ErrWornOut re-exports nvm.ErrWornOut: a write failed because the target
// segment's cells no longer program. Puts handle it internally (retire and
// retry elsewhere); it escapes only when retries are exhausted or
// retirement is disabled.
var ErrWornOut = nvm.ErrWornOut

// ErrBadOptions reports invalid Options passed to Open/OpenWith/Recover.
var ErrBadOptions = errors.New("kvstore: invalid options")

// ErrBadSegment reports a geometry mismatch between the model and the
// device (wrong InputBits for the segment size, item wider than a
// segment). It re-exports core.ErrBadSegment so store callers need only
// this package for errors.Is checks.
var ErrBadSegment = core.ErrBadSegment

// ErrOutOfRange reports a segment address outside the device (or inside
// the reserved redo-log zone). It aliases nvm.ErrBadAddress, so device and
// transaction errors wrapped anywhere below the store satisfy
// errors.Is(err, ErrOutOfRange).
var ErrOutOfRange = nvm.ErrBadAddress

// Log geometry used by crash-safe stores: every record write is one
// single-entry transaction, and two slots let a commit restage around one
// worn slot without stalling. Exported so replication followers can build
// a txn.Manager with the identical layout over their own devices — the
// shipped home addresses only make sense if both logs reserve the same
// tail segments.
const (
	LogSlots      = 2
	LogMaxEntries = 1
)

// Options configures Open.
type Options struct {
	// Placement selects the placement policy (default PlaceE2NVM).
	Placement Placement
	// LowWater is the per-cluster free-list threshold that marks the
	// model as due for retraining (default: NumSegments/(K*10), min 2).
	LowWater int
	// AutoRetrain triggers background retraining automatically when a
	// cluster runs low (default false: callers drive retraining, as the
	// experiments do).
	AutoRetrain bool
	// IndexFraction bounds the portion of the device indexed into the
	// address pool at open (0 < f ≤ 1; 0 means 1). The paper's §4.1.4
	// incremental approach: start small, call IndexMore as demand grows.
	IndexFraction float64
	// CrashSafe routes every segment write through a redo-log transaction
	// (the role PMDK transactions play in the paper), making each write
	// atomic even across torn cache lines. Costs log space at the top of
	// the device plus the logging write amplification.
	CrashSafe bool
	// PutRetries bounds how many alternate free segments one Put will try
	// when writes keep landing on worn-out segments (default 8).
	PutRetries int
	// DisableRetirement turns off the detect-retire-retry machinery: a
	// worn write fails the operation directly and the segment stays in
	// circulation. This is the baseline the fault sweep compares against.
	DisableRetirement bool
	// DegradeThreshold is the fraction of data segments that must be
	// retired before allocation failures escalate from ErrNoSpace to
	// ErrDegraded (default 0.1).
	DegradeThreshold float64
	// KeyTemp, when non-nil, classifies each key's access temperature at
	// placement time: hot keys are steered to the least-worn segment
	// cluster and cold keys to the most-worn one (dap.Pool.GetFor). The
	// pool then tracks per-cluster wear on every recycle. Nil keeps the
	// pure content-similarity placement with zero wear bookkeeping.
	KeyTemp func(key uint64) dap.Temp
}

// Stats reports store activity.
type Stats struct {
	Puts, Gets, Deletes, Scans uint64
	// Fallbacks counts placements served by a different cluster than
	// predicted because the predicted cluster's free list was empty.
	Fallbacks uint64
	// Steered counts placements the hot/cold temperature policy moved off
	// the predicted cluster (Options.KeyTemp; distinct from Fallbacks).
	Steered uint64
	// Retrains counts completed model retrains.
	Retrains int
	// WornWrites counts segment writes that failed on worn-out cells.
	WornWrites uint64
	// Retired counts segments permanently removed from circulation.
	Retired uint64
	// Relocations counts live records Scrub moved off failing segments.
	Relocations uint64
}

// Store is the E2-NVM key/value store.
type Store struct {
	dev  *nvm.Device
	mgr  *core.Manager
	pool *dap.Pool
	opts Options

	txnMgr   *txn.Manager // non-nil in crash-safe mode; set once at open
	dataSegs int          // segments usable for data (device minus txn log)

	// densityBits caches the data zone's sampled 1-density
	// (math.Float64bits-encoded) for MemoryBased padding. The padding
	// callback reads it under the model's lock — possibly from
	// PredictBytesBatch workers — concurrently with store writes, hence
	// atomic rather than s.mu.
	densityBits atomic.Uint64
	mbPadding   bool // MemoryBased density callback installed (set once at open)

	mu      sync.Mutex
	tree    *index.RBTree // key → segment address
	stats   Stats
	indexed int    // segments [0, indexed) are under DAP management
	seq     uint32 // next record sequence number

	// retrainBase is the manager's completed-retrain count at the last
	// ResetStats, so Stats.Retrains reports retrains since the reset.
	retrainBase int

	// poolK is the pool's live cluster count. A retrain swaps the model in
	// before s.mu is taken to rebuild the pool, so for that window the
	// model may predict clusters the pool does not have yet; predictions
	// are clamped to poolK (see clampClusterLocked).
	poolK int

	// Serving-path scratch, reused under mu so steady-state operations do
	// not allocate.
	encBuf           []byte // encode() record staging
	segBuf           []byte // segment staging for Put/invalidate/recycle/density
	getBuf           []byte // segment staging for reads
	putsSinceDensity int    // Puts since the density cache was refreshed

	scrubCursor int    // next segment Scrub will examine
	scrubBuf    []byte // Scrub's own staging (putLocked reuses segBuf)

	// Batched-path scratch (batch.go), reused under mu: one block of
	// staged records (stride SegmentSize), the image and original-index
	// views over it, and the blocked-prediction output.
	batchBuf      []byte
	batchImgs     [][]byte
	batchIdx      []int
	batchClusters []int
}

// densityRefreshEvery is the Put interval at which the MemoryBased-padding
// density cache is re-sampled from the device.
const densityRefreshEvery = 256

// Open trains an E2-NVM model on the device's current segment contents
// (the "old data" in the paper's experiments) and builds the dynamic
// address pool over all segments not referenced by any key.
func Open(dev *nvm.Device, modelCfg core.Config, opts Options) (*Store, error) {
	segBits := dev.SegmentSize() * 8
	if modelCfg.InputBits == 0 {
		modelCfg.InputBits = segBits
	}
	if modelCfg.InputBits != segBits {
		return nil, fmt.Errorf("kvstore: model InputBits %d != segment bits %d: %w", modelCfg.InputBits, segBits, ErrBadSegment)
	}
	data, err := segmentImages(dev)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(data, modelCfg)
	if err != nil {
		return nil, err
	}
	return OpenWith(dev, model, opts)
}

// OpenWith builds a store around an already-trained model (e.g. one shared
// across several experiment runs over identically seeded devices). In
// crash-safe mode the redo log is formatted: use RecoverWith to preserve
// and replay a previous incarnation's pending transactions.
func OpenWith(dev *nvm.Device, model *core.Model, opts Options) (*Store, error) {
	return openWith(dev, model, opts, false)
}

func openWith(dev *nvm.Device, model *core.Model, opts Options, recovering bool) (*Store, error) {
	if model.InputBits() != dev.SegmentSize()*8 {
		return nil, fmt.Errorf("kvstore: model InputBits %d != segment bits %d: %w", model.InputBits(), dev.SegmentSize()*8, ErrBadSegment)
	}
	if opts.LowWater <= 0 {
		opts.LowWater = dev.NumSegments() / (model.K() * 10)
		if opts.LowWater < 2 {
			opts.LowWater = 2
		}
	}
	pool, err := dap.New(model.K(), dap.WithLowWater(opts.LowWater))
	if err != nil {
		return nil, err
	}
	if opts.IndexFraction < 0 || opts.IndexFraction > 1 {
		return nil, fmt.Errorf("kvstore: IndexFraction %v out of (0,1]: %w", opts.IndexFraction, ErrBadOptions)
	}
	if opts.PutRetries < 0 {
		return nil, fmt.Errorf("kvstore: PutRetries %d must not be negative: %w", opts.PutRetries, ErrBadOptions)
	}
	if opts.PutRetries == 0 {
		opts.PutRetries = 8
	}
	if opts.DegradeThreshold < 0 || opts.DegradeThreshold > 1 {
		return nil, fmt.Errorf("kvstore: DegradeThreshold %v out of [0,1]: %w", opts.DegradeThreshold, ErrBadOptions)
	}
	if opts.DegradeThreshold == 0 {
		opts.DegradeThreshold = 0.1
	}
	s := &Store{
		dev:      dev,
		mgr:      core.NewManager(model),
		pool:     pool,
		opts:     opts,
		tree:     &index.RBTree{},
		dataSegs: dev.NumSegments(),
		poolK:    model.K(),
	}
	if opts.CrashSafe {
		mgr, dataSegs, err := txn.NewManager(dev, LogSlots, LogMaxEntries)
		if err != nil {
			return nil, err
		}
		if recovering {
			if _, _, err := mgr.Recover(); err != nil {
				return nil, err
			}
		} else if err := mgr.Format(); err != nil {
			return nil, err
		}
		s.txnMgr = mgr
		s.dataSegs = dataSegs
	}
	// Populate the pool: free segments are assigned to the cluster their
	// current content predicts (the initialization phase of §3.3.1),
	// covering IndexFraction of the device; the rest joins via IndexMore.
	limit := s.dataSegs
	if opts.IndexFraction > 0 {
		limit = int(opts.IndexFraction * float64(limit))
		if limit < 1 {
			limit = 1
		}
	}
	if _, err := s.indexRange(0, limit); err != nil {
		return nil, err
	}
	// Memory-based padding draws its bit density from the memory locations
	// incoming items will replace. The density is sampled into an atomic
	// cache (refreshed every densityRefreshEvery Puts) rather than walking
	// the device on every prediction: the callback runs under the model's
	// lock inside the serving path.
	if p := model.Padder(); p != nil && p.Kind == padding.MemoryBased {
		s.mu.Lock()
		s.refreshDensityLocked()
		s.mu.Unlock()
		s.mbPadding = true
		p.SetMemoryDensity(s.cachedDensity)
	}
	return s, nil
}

// cachedDensity returns the last sampled data-zone 1-density (the MB
// padding source).
func (s *Store) cachedDensity() float64 {
	return math.Float64frombits(s.densityBits.Load())
}

// refreshDensityLocked re-samples the 1-density of the data zone from a
// fixed sample of segments into the atomic cache. Callers hold s.mu.
func (s *Store) refreshDensityLocked() {
	const samples = 16
	buf := s.segScratchLocked()
	ones, bits := 0, 0
	step := s.dataSegs/samples + 1
	for addr := 0; addr < s.dataSegs; addr += step {
		if err := s.dev.PeekInto(addr, buf); err != nil {
			continue
		}
		for _, b := range buf {
			bits += 8
			ones += popcount8(b)
		}
	}
	d := 0.5
	if bits > 0 {
		d = float64(ones) / float64(bits)
	}
	s.densityBits.Store(math.Float64bits(d))
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// indexRange predicts segments [lo, hi) into the pool and advances the
// indexed watermark.
func (s *Store) indexRange(lo, hi int) (int, error) {
	model := s.mgr.Current()
	if hi > s.dataSegs {
		hi = s.dataSegs
	}
	var imgs [][]byte
	for addr := lo; addr < hi; addr++ {
		img, err := s.dev.Peek(addr)
		if err != nil {
			return 0, err
		}
		imgs = append(imgs, img)
	}
	// Predict in parallel, then insert in address order so the pool's
	// FIFO contents stay deterministic. A failed item (-1, impossible for
	// raw full-width segments in practice) skips only its own slot: the
	// rest of the batch's work is kept and the watermark still advances,
	// so a retry cannot double-add the successes.
	clusters, err := model.PredictBytesBatch(imgs)
	added := 0
	for i, c := range clusters {
		if c < 0 {
			continue
		}
		s.poolAdd(c, lo+i)
		added++
	}
	s.mu.Lock()
	if hi > s.indexed {
		s.indexed = hi
		if s.indexed > s.dataSegs {
			s.indexed = s.dataSegs
		}
	}
	s.mu.Unlock()
	return added, err
}

// Indexed returns the number of device segments currently under DAP
// management.
func (s *Store) Indexed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.indexed
}

// IndexMore incrementally indexes up to n further segments into the pool
// (the paper's dynamic incremental approach), returning how many were
// added.
func (s *Store) IndexMore(n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	s.mu.Lock()
	lo := s.indexed
	s.mu.Unlock()
	return s.indexRange(lo, lo+n)
}

func segmentImages(dev *nvm.Device) ([][]float64, error) {
	data := make([][]float64, dev.NumSegments())
	for addr := 0; addr < dev.NumSegments(); addr++ {
		img, err := dev.Peek(addr)
		if err != nil {
			return nil, err
		}
		data[addr] = core.BytesToBits(img)
	}
	return data, nil
}

// Device returns the underlying NVM device (for experiment accounting).
func (s *Store) Device() *nvm.Device { return s.dev }

// TxnManager returns the redo-log manager in crash-safe mode (nil
// otherwise). Exposed for crash-injection tests and experiments.
func (s *Store) TxnManager() *txn.Manager { return s.txnMgr }

// Model returns the live E2-NVM model.
func (s *Store) Model() *core.Model { return s.mgr.Current() }

// Pool returns the dynamic address pool.
func (s *Store) Pool() *dap.Pool { return s.pool }

// MaxValue returns the largest storable value in bytes.
func (s *Store) MaxValue() int { return s.dev.SegmentSize() - valueHeader }

// encode serializes a record — header (flags, length, key, sequence, CRC)
// plus the value — into the store's record scratch, stamping the next
// store-wide sequence number. The result aliases s.encBuf and is valid
// until the next encode; callers hold s.mu.
func (s *Store) encode(key uint64, value []byte) []byte {
	n := valueHeader + len(value)
	if cap(s.encBuf) < n {
		s.encBuf = make([]byte, n) // lint:allow hotpathalloc — record scratch grows once to the largest value seen
	}
	buf := s.encBuf[:n]
	encodeRecord(buf, key, s.seq, value)
	s.seq++
	return buf
}

// segScratchLocked returns the segment-size staging buffer. Callers hold
// s.mu; the buffer is valid until the next call that uses it.
func (s *Store) segScratchLocked() []byte {
	if cap(s.segBuf) < s.dev.SegmentSize() {
		s.segBuf = make([]byte, s.dev.SegmentSize()) // lint:allow hotpathalloc — sized once to the segment size
	}
	return s.segBuf[:s.dev.SegmentSize()]
}

// Put implements the paper's Algorithm 1: predict the cluster of the
// incoming value — padded with the configured strategy when it is narrower
// than a segment (§4) — take the first free address of that cluster, write
// only the record's bits (padded bits are never stored; the rest of the
// segment keeps its old content), and update the index. Updates free the
// key's previous segment back into the pool.
//
// The path is hardened against cell wear-out: the write is verified
// (WriteResult.FaultyBits / ErrWornOut), a worn target is retired and the
// record retried on a different free segment (bounded by
// Options.PutRetries), and the new record is persisted before the old one
// is invalidated — so a crash or a worn old segment leaves at worst two
// valid records whose sequence numbers recovery can order.
//
// lint:hotpath
func (s *Store) Put(key uint64, value []byte) error {
	if len(value) > s.MaxValue() {
		return fmt.Errorf("%w: %d > %d", ErrValueTooLarge, len(value), s.MaxValue())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.putLocked(key, value); err != nil {
		return err
	}
	s.stats.Puts++
	if s.mbPadding {
		if s.putsSinceDensity++; s.putsSinceDensity >= densityRefreshEvery {
			s.putsSinceDensity = 0
			s.refreshDensityLocked()
		}
	}
	if s.opts.AutoRetrain && s.pool.NeedsRetrain() {
		s.retrainAsyncLocked() // lint:allow hotpathalloc — retraining is the deliberate slow path (§4.1.4)
	}
	return nil
}

// PutIfAbsent writes the record only when no live record for key exists,
// reporting whether it wrote. The existence check and the write happen
// under one lock acquisition, which is what live migration needs for
// duplicate safety: a migrator copying a stale source record can never
// clobber a newer value a concurrent client already wrote to this store.
func (s *Store) PutIfAbsent(key uint64, value []byte) (bool, error) {
	if len(value) > s.MaxValue() {
		return false, fmt.Errorf("%w: %d > %d", ErrValueTooLarge, len(value), s.MaxValue())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tree.Get(key); ok {
		return false, nil
	}
	if err := s.putLocked(key, value); err != nil {
		return false, err
	}
	s.stats.Puts++
	if s.opts.AutoRetrain && s.pool.NeedsRetrain() {
		s.retrainAsyncLocked()
	}
	return true, nil
}

// putLocked places and persists one record, retiring and retrying around
// worn-out segments. Callers hold s.mu; Scrub reuses it to relocate
// records off failing segments.
func (s *Store) putLocked(key uint64, value []byte) error {
	record := s.encode(key, value)

	oldAddr := -1
	if old, ok := s.tree.Get(key); ok {
		oldAddr = int(old)
	}
	if s.opts.Placement == PlaceArbitrary {
		return s.putArbitraryLocked(key, record, oldAddr)
	}

	cluster, err := s.mgr.Current().PredictBytes(record)
	if err != nil {
		return err
	}
	return s.placeLocked(key, record, s.clampClusterLocked(cluster), oldAddr)
}

// placeLocked writes record into a free segment of cluster (the pool
// falls back across clusters when it is empty), retiring and retrying
// around worn-out segments, then indexes the new copy and recycles the
// superseded one. Shared by the single-op and batched put paths; callers
// hold s.mu.
//
// lint:hotpath
func (s *Store) placeLocked(key uint64, record []byte, cluster, oldAddr int) error {
	temp := dap.TempNone
	if s.opts.KeyTemp != nil {
		temp = s.opts.KeyTemp(key) // lint:allow hotpathalloc — the cache's lock-free hotness probe; allocation-free by its own lint:hotpath contract
	}
	for attempt := 0; ; attempt++ {
		addr, servedBy, steered, ok := s.pool.GetFor(cluster, temp)
		if !ok {
			return s.noSpaceErrLocked()
		}
		if steered {
			s.stats.Steered++
		} else if servedBy != cluster {
			s.stats.Fallbacks++
		}
		werr := s.writeRecordLocked(addr, record)
		if werr == nil {
			s.tree.Put(key, int64(addr))
			if oldAddr >= 0 {
				s.retireOrRecycleOldLocked(oldAddr)
			}
			return nil
		}
		if s.opts.DisableRetirement || !errors.Is(werr, ErrWornOut) || attempt >= s.opts.PutRetries {
			return werr
		}
		s.retireLocked(addr)
	}
}

// putArbitraryLocked is the arbitrary-placement path: update in place when
// the key exists, otherwise take any free segment. Worn segments are still
// retired and the write relocated, so the baseline policy keeps its
// correctness (it pays for in-place churn with lifetime instead).
func (s *Store) putArbitraryLocked(key uint64, record []byte, oldAddr int) error {
	addr := oldAddr
	for attempt := 0; ; attempt++ {
		if addr < 0 {
			a, _, ok := s.pool.Get(0) // any cluster; pool falls back across all
			if !ok {
				return s.noSpaceErrLocked()
			}
			addr = a
		}
		werr := s.writeRecordLocked(addr, record)
		if werr == nil {
			s.tree.Put(key, int64(addr))
			return nil
		}
		if s.opts.DisableRetirement || !errors.Is(werr, ErrWornOut) || attempt >= s.opts.PutRetries {
			return werr
		}
		// A failed in-place update either corrupted the old record's CRC in
		// place or left it intact with a lower sequence number than the
		// replacement — recovery handles both.
		s.retireLocked(addr)
		addr = -1
	}
}

// writeRecordLocked lays the record over segment addr's current content
// (Algorithm 1 line 3: the untouched tail keeps its previous bits, so the
// differential write flips record bits only) and persists it. Callers hold
// s.mu.
func (s *Store) writeRecordLocked(addr int, record []byte) error {
	img := s.segScratchLocked()
	if err := s.dev.PeekInto(addr, img); err != nil {
		return err
	}
	copy(img[:len(record)], record)
	return s.writeSegmentLocked(addr, img)
}

// retireOrRecycleOldLocked invalidates a superseded record and recycles
// its segment — or retires the segment when the invalidation write reveals
// worn cells. The replacement record is already persisted and indexed; a
// stale copy that cannot be invalidated loses to it by sequence number
// during recovery. Callers hold s.mu.
func (s *Store) retireOrRecycleOldLocked(oldAddr int) {
	if err := s.invalidateLocked(oldAddr); err != nil {
		if errors.Is(err, ErrWornOut) && !s.opts.DisableRetirement {
			s.retireLocked(oldAddr)
		}
		return
	}
	s.recycleLocked(oldAddr)
}

// retireLocked permanently removes a segment from circulation. Callers
// hold s.mu.
func (s *Store) retireLocked(addr int) bool {
	if !s.pool.Retire(addr) { // lint:allow hotpathalloc — retirement is the cold wear-out path
		return false
	}
	s.stats.Retired++
	return true
}

// noSpaceErrLocked reports an allocation failure, escalating to
// ErrDegraded with live-capacity figures once retirement crosses the
// configured threshold. Callers hold s.mu.
func (s *Store) noSpaceErrLocked() error {
	retired := s.pool.RetiredCount()
	if float64(retired) >= s.opts.DegradeThreshold*float64(s.dataSegs) {
		return fmt.Errorf("%w: %d of %d data segments retired, %d live keys, %d pooled",
			ErrDegraded, retired, s.dataSegs, s.tree.Len(), s.pool.Free())
	}
	return ErrNoSpace
}

// invalidateLocked resets a record's valid flag (a one-bit differential
// write). Callers hold s.mu.
func (s *Store) invalidateLocked(addr int) error {
	img := s.segScratchLocked()
	if err := s.dev.PeekInto(addr, img); err != nil {
		return err
	}
	if img[0]&1 == 0 {
		return nil
	}
	img[0] &^= 1
	return s.writeSegmentLocked(addr, img)
}

// writeSegmentLocked persists one segment image, through a redo-log
// transaction in crash-safe mode, and verifies it took: a write that left
// stuck cells disagreeing with the image reports ErrWornOut. Callers hold
// s.mu.
func (s *Store) writeSegmentLocked(addr int, img []byte) error {
	if s.txnMgr == nil {
		res, err := s.dev.Write(addr, img)
		if err != nil {
			if errors.Is(err, ErrWornOut) {
				s.stats.WornWrites++
			}
			return err
		}
		if res.FaultyBits > 0 {
			s.stats.WornWrites++
			return fmt.Errorf("kvstore: write left %d faulty bits at segment %d: %w", res.FaultyBits, addr, ErrWornOut)
		}
		return nil
	}
	tx := s.txnMgr.Begin()
	if err := tx.Write(addr, img); err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		if errors.Is(err, ErrWornOut) {
			s.stats.WornWrites++
		}
		return err
	}
	return nil
}

// recycleLocked returns segment addr to the pool under the cluster of its
// current content (Algorithm 2 steps 3–4). Callers hold s.mu.
func (s *Store) recycleLocked(addr int) {
	img := s.segScratchLocked()
	if err := s.dev.PeekInto(addr, img); err != nil {
		return
	}
	c, err := s.mgr.Current().PredictBytes(img)
	if err != nil {
		return // segment unparsable under the live model; drop from pool
	}
	s.poolAdd(s.clampClusterLocked(c), addr)
}

// poolAdd recycles addr into cluster c, carrying the segment's cumulative
// write count when the hot/cold steering policy is active (Options.KeyTemp)
// so the pool's per-cluster wear averages stay current. Without steering it
// is a plain Add: the recycle path pays no extra device-lock round trip.
func (s *Store) poolAdd(c, addr int) {
	if s.opts.KeyTemp != nil {
		s.pool.AddWear(c, addr, s.dev.SegmentWriteCount(addr))
		return
	}
	s.pool.Add(c, addr)
}

// clampClusterLocked bounds a model prediction to the pool's live cluster
// range. Between a retrain's model swap (done under the manager's lock,
// not s.mu) and rebuildPoolLocked resizing the pool, the fresh model may
// predict cluster ids the pool does not have yet — dap.Pool panics on
// out-of-range ids. Clamped placements at worst take the nearest existing
// cluster, exactly the pool's own fallback behaviour. Callers hold s.mu.
func (s *Store) clampClusterLocked(c int) int {
	if c >= s.poolK {
		return s.poolK - 1
	}
	return c
}

// Get returns the value stored for key. The returned slice is a fresh
// caller-owned copy; use GetInto on the measured path.
//
// lint:hotpath
func (s *Store) Get(key uint64) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrV, ok := s.tree.Get(key)
	if !ok {
		return nil, false, nil
	}
	v, err := s.readValueLocked(int(addrV))
	if err != nil {
		return nil, false, err
	}
	s.stats.Gets++
	out := make([]byte, len(v)) // lint:allow hotpathalloc — Get hands out a caller-owned copy; GetInto is the zero-alloc variant
	copy(out, v)
	return out, true, nil
}

// GetInto is Get writing the value into dst's backing array (grown only
// when too small), for serving paths that reuse one buffer across reads.
// It returns the resulting slice, which may share storage with dst.
//
// lint:hotpath
func (s *Store) GetInto(key uint64, dst []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrV, ok := s.tree.Get(key)
	if !ok {
		return dst[:0], false, nil
	}
	v, err := s.readValueLocked(int(addrV))
	if err != nil {
		return dst[:0], false, err
	}
	s.stats.Gets++
	if cap(dst) < len(v) {
		dst = make([]byte, len(v)) // lint:allow hotpathalloc — grows once to the value size
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return dst, true, nil
}

// readValueLocked reads the record at addr into the store's read scratch
// and returns its value bytes. The result aliases s.getBuf and is valid
// until the next read; callers hold s.mu.
func (s *Store) readValueLocked(addr int) ([]byte, error) {
	if cap(s.getBuf) < s.dev.SegmentSize() {
		s.getBuf = make([]byte, s.dev.SegmentSize()) // lint:allow hotpathalloc — read scratch sized once to the segment size
	}
	seg := s.getBuf[:s.dev.SegmentSize()]
	if err := s.dev.ReadInto(addr, seg); err != nil {
		return nil, err
	}
	if seg[0]&1 == 0 {
		return nil, fmt.Errorf("kvstore: segment %d flagged invalid: %w", addr, ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(seg[recLenOff:]))
	if n > len(seg)-valueHeader {
		return nil, fmt.Errorf("kvstore: corrupt length %d at segment %d: %w", n, addr, ErrCorrupt)
	}
	rec := seg[:valueHeader+n]
	if binary.LittleEndian.Uint32(rec[recCRCOff:]) != recordCRC(rec) {
		return nil, fmt.Errorf("kvstore: CRC mismatch at segment %d: %w", addr, ErrCorrupt)
	}
	return rec[valueHeader:], nil
}

// Delete implements the paper's Algorithm 2: find the address via the
// index, reset the valid flag bit (a one-bit differential write), and
// recycle the address into the pool under its content's cluster.
//
// lint:hotpath
func (s *Store) Delete(key uint64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrV, ok := s.tree.Delete(key)
	if !ok {
		return false, nil
	}
	addr := int(addrV)
	if err := s.invalidateLocked(addr); err != nil {
		if errors.Is(err, ErrWornOut) && !s.opts.DisableRetirement {
			// The flag cell no longer clears: take the segment out of
			// circulation and shred the stale record so a future Recover
			// cannot resurrect the deleted key.
			s.retireLocked(addr)
			s.shredLocked(addr)
			s.stats.Deletes++
			return true, nil
		}
		return false, err
	}
	s.recycleLocked(addr)
	s.stats.Deletes++
	return true, nil
}

// shredLocked overwrites a retired segment with zeros, best-effort: even on
// a worn segment the non-stuck cells are programmed, which is enough to
// break a stale record's CRC so recovery treats the segment as free.
// Callers hold s.mu.
func (s *Store) shredLocked(addr int) {
	img := s.segScratchLocked()
	for i := range img {
		img[i] = 0
	}
	if err := s.writeSegmentLocked(addr, img); err != nil {
		return // the segment is already retired; nothing more to do
	}
}

// scanChunk bounds how many records one Scan critical section captures
// before the lock is released and the callbacks run.
const scanChunk = 128

// Scan calls fn for each key in [lo, hi] in ascending key order with its
// value, stopping early if fn returns false (the paper's SCAN).
//
// The callback runs with no store lock held, so it may safely call back
// into the store (Get, Put, Delete, even a nested Scan) — earlier versions
// held the store mutex across fn and deadlocked on re-entry. Keys and
// value copies are captured in bounded chunks under the lock, so a scan
// concurrent with writers is not one atomic snapshot: a key inserted or
// deleted after its chunk was captured may or may not be visited, but
// every value delivered was current when its chunk was read. The value
// slice is backed by a per-call buffer reused across callbacks; fn must
// copy it to retain it past the callback.
func (s *Store) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	err := s.scanChunks(lo, hi, fn)
	if err == nil {
		s.mu.Lock()
		s.stats.Scans++
		s.mu.Unlock()
	}
	return err
}

// scanChunks alternates between capturing up to scanChunk records under
// s.mu and delivering them to fn with the lock released.
func (s *Store) scanChunks(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	var (
		keys [scanChunk]uint64
		offs [scanChunk + 1]int
		buf  []byte
	)
	cursor := lo
	for {
		n := 0
		var readErr error
		s.mu.Lock()
		buf = buf[:0]
		s.tree.Range(cursor, hi, func(k uint64, addrV int64) bool {
			v, err := s.readValueLocked(int(addrV))
			if err != nil {
				readErr = err
				return false
			}
			keys[n] = k
			offs[n] = len(buf)
			buf = append(buf, v...)
			n++
			return n < scanChunk
		})
		offs[n] = len(buf)
		s.mu.Unlock()
		for i := 0; i < n; i++ {
			if !fn(keys[i], buf[offs[i]:offs[i+1]]) {
				return nil
			}
		}
		if readErr != nil {
			return readErr
		}
		if n < scanChunk {
			return nil // the range is exhausted
		}
		last := keys[n-1]
		if last >= hi || last == ^uint64(0) {
			return nil
		}
		cursor = last + 1
	}
}

// NextInto returns the smallest live key in [lo, hi] with its value copied
// into dst's backing array (grown only when too small). ok is false when
// the range holds no live key. It is the primitive shard routers use to
// merge ordered scans across independent stores.
func (s *Store) NextInto(lo, hi uint64, dst []byte) (key uint64, value []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	found := false
	var addrV int64
	s.tree.Range(lo, hi, func(k uint64, a int64) bool {
		key, addrV, found = k, a, true
		return false
	})
	if !found {
		return 0, dst[:0], false, nil
	}
	v, rerr := s.readValueLocked(int(addrV))
	if rerr != nil {
		return key, dst[:0], false, rerr
	}
	if cap(dst) < len(v) {
		dst = make([]byte, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return key, dst, true, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Len()
}

// Stats returns a snapshot of store counters (cumulative since open or the
// last ResetStats).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Retrains = s.mgr.Retrains() - s.retrainBase
	return st
}

// ResetStats zeroes the store-level operation counters (Puts, Gets,
// Deletes, Scans, Fallbacks, WornWrites, Retired, Relocations) and rebases
// the retrain counter, so benchmarks that reset between phases measure
// only their own activity. Content, index, pool, and wear state are
// untouched; the device's counters are reset separately via
// Device().ResetStats.
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
	s.retrainBase = s.mgr.Retrains()
}

// Health is a live-capacity snapshot of the store.
type Health struct {
	DataSegments int  // segments in the data zone
	Retired      int  // segments permanently out of circulation
	LiveKeys     int  // records reachable through the index
	PoolFree     int  // free segments available for placement
	Degraded     bool // retirement has crossed Options.DegradeThreshold
}

// Health reports how much of the store's capacity is still serviceable.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	retired := s.pool.RetiredCount()
	return Health{
		DataSegments: s.dataSegs,
		Retired:      retired,
		LiveKeys:     s.tree.Len(),
		PoolFree:     s.pool.Free(),
		Degraded:     float64(retired) >= s.opts.DegradeThreshold*float64(s.dataSegs),
	}
}

// ScrubReport summarizes one incremental Scrub pass.
type ScrubReport struct {
	Scanned   int // segments examined
	Relocated int // live records moved off failing segments
	Retired   int // segments newly taken out of circulation
	Lost      int // indexed records whose data is already unrecoverable
}

// Scrub examines up to n segments, continuing round-robin from where the
// previous call stopped. A live record on a segment with stuck or fenced
// cells is relocated to a healthy segment and the old one retired; a
// faulty segment holding no live record is retired on sight; an indexed
// record that no longer passes its CRC is counted as lost (reads keep
// returning ErrCorrupt for it — the store never serves corrupt bytes as
// data). Run it periodically to catch damage before it spreads: stuck
// cells corrupt lazily, on the next overwrite or wear-leveling move.
func (s *Store) Scrub(n int) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	for i := 0; i < n && s.indexed > 0; i++ {
		addr := s.scrubCursor % s.indexed
		s.scrubCursor = addr + 1
		rep.Scanned++
		if s.pool.IsRetired(addr) {
			continue
		}
		stuck, failed, err := s.dev.SegmentFaults(addr)
		if err != nil {
			return rep, err
		}
		faulty := stuck > 0 || failed
		img := s.scrubBufLocked()
		if err := s.dev.PeekInto(addr, img); err != nil {
			return rep, err
		}
		key, _, value, ok := parseRecord(img)
		if ok {
			if a, live := s.tree.Get(key); live && int(a) == addr {
				if !faulty {
					continue // healthy live record
				}
				// Relocate, then retire. putLocked supersedes the copy at
				// addr (invalidating and recycling it); retiring pulls the
				// address back out of the pool for good.
				if err := s.putLocked(key, value); err != nil {
					return rep, err
				}
				if s.retireLocked(addr) {
					rep.Retired++
				}
				s.stats.Relocations++
				rep.Relocated++
				continue
			}
		} else if img[0]&1 == 1 {
			// Flagged valid but unparsable: if the index still points here,
			// the record's data is gone.
			if nlen := int(binary.LittleEndian.Uint16(img[recLenOff:])); nlen <= len(img)-valueHeader {
				k := binary.LittleEndian.Uint64(img[recKeyOff:])
				if a, live := s.tree.Get(k); live && int(a) == addr {
					rep.Lost++
				}
			}
		}
		if faulty && s.retireLocked(addr) {
			rep.Retired++
		}
	}
	return rep, nil
}

// scrubBufLocked returns Scrub's staging buffer (distinct from segBuf,
// which putLocked needs while Scrub relocates). Callers hold s.mu.
func (s *Store) scrubBufLocked() []byte {
	if cap(s.scrubBuf) < s.dev.SegmentSize() {
		s.scrubBuf = make([]byte, s.dev.SegmentSize())
	}
	return s.scrubBuf[:s.dev.SegmentSize()]
}

// NeedsRetrain reports whether any cluster's free list is at or below the
// low-water mark.
func (s *Store) NeedsRetrain() bool {
	return s.pool.NeedsRetrain()
}

// Retrain synchronously retrains the model on the device's current
// contents and rebuilds the pool from the currently free segments — the
// paper's Figure 16 step 3, without stopping the world.
//
// Writes are NOT paused: the snapshot reads segments one at a time through
// the device's own lock, so a concurrent Put may interleave and the
// training set is only loosely consistent. That is safe — the snapshot is
// training data, not placement state. Placement stays correct because
// rebuildPoolLocked re-reads every free segment's actual content under
// s.mu after the new model is swapped in, and writes that land between the
// model swap and the pool rebuild at worst take a fallback cluster (the
// pool still reflects the old model's clustering), never a wrong segment.
// Concurrent Retrain calls are serialized by the manager.
func (s *Store) Retrain() error {
	data, err := segmentImages(s.dev)
	if err != nil {
		return err
	}
	cfg := s.mgr.Current().Config()
	model, err := s.mgr.RetrainSync(data, cfg)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildPoolLocked(model)
}

// Quiesce blocks until any in-flight background retrain (launched by the
// write path when the density drift threshold trips) has completed and
// its pool rebuild has been applied. Tests and orderly shutdown use it to
// join the retrain goroutine instead of racing it.
func (s *Store) Quiesce() {
	s.mgr.Quiesce()
}

// retrainAsyncLocked launches a background retrain; the pool is rebuilt
// under the new model once it is ready. Callers hold s.mu.
func (s *Store) retrainAsyncLocked() {
	data, err := segmentImages(s.dev)
	if err != nil {
		return
	}
	cfg := s.mgr.Current().Config()
	// The callback runs on the retrain goroutine after the launching Put
	// released s.mu, so its Lock is a fresh acquisition, not a nested one.
	// lint:allow lockorder — callback runs after the creation-site lock is released
	s.mgr.RetrainAsync(data, cfg, func(m *core.Model, err error) {
		if err != nil {
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		_ = s.rebuildPoolLocked(m)
	})
}

// rebuildPoolLocked re-predicts every currently free *indexed* segment
// under the new model. Callers hold s.mu.
func (s *Store) rebuildPoolLocked(model *core.Model) error {
	used := map[int]bool{}
	s.tree.Range(0, ^uint64(0), func(_ uint64, addrV int64) bool {
		used[int(addrV)] = true
		return true
	})
	if err := s.pool.Reset(model.K()); err != nil {
		return err
	}
	s.poolK = model.K()
	for addr := 0; addr < s.indexed; addr++ {
		if used[addr] {
			continue
		}
		img, err := s.dev.Peek(addr)
		if err != nil {
			return err
		}
		c, err := model.PredictBytes(img)
		if err != nil {
			return err
		}
		s.poolAdd(c, addr)
	}
	return nil
}

// Recover rebuilds a store from a device's persistent contents alone: it
// scans every segment, re-indexes the valid self-describing records
// (flag + length + key headers), trains a model on the contents (or reuse
// one via RecoverWith), and pools the remaining segments. This is the
// crash-recovery path: the RB-tree index and the address pool live in
// DRAM and are reconstructible, exactly as the paper's Figure 3 layout
// implies.
func Recover(dev *nvm.Device, modelCfg core.Config, opts Options) (*Store, error) {
	segBits := dev.SegmentSize() * 8
	if modelCfg.InputBits == 0 {
		modelCfg.InputBits = segBits
	}
	data, err := segmentImages(dev)
	if err != nil {
		return nil, err
	}
	model, err := core.Train(data, modelCfg)
	if err != nil {
		return nil, err
	}
	return RecoverWith(dev, model, opts)
}

// RecoverWith is Recover with a pre-trained (e.g. persisted) model. In
// crash-safe mode, committed-but-unapplied redo-log transactions are
// replayed (and torn ones discarded) before the record scan.
func RecoverWith(dev *nvm.Device, model *core.Model, opts Options) (*Store, error) {
	s, err := openWith(dev, model, opts, true)
	if err != nil {
		return nil, err
	}
	// openWith pooled every segment; re-scan and claim the live records.
	if err := s.pool.Reset(model.K()); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.indexed = s.dataSegs
	// A record is recognized by its set valid flag, parsable length, and
	// matching CRC; everything else — pre-use garbage, torn writes,
	// cell-corrupted records — is treated as free space.
	seqOf := map[uint64]uint32{}
	var stale []int
	var maxSeq uint32
	haveSeq := false
	for addr := 0; addr < s.dataSegs; addr++ {
		if _, failed, ferr := dev.SegmentFaults(addr); ferr != nil {
			return nil, ferr
		} else if failed {
			// A fenced segment refuses every write, so a record on it can
			// be neither invalidated nor shredded — trusting it would let a
			// deleted key resurrect. Retire it instead of re-indexing.
			if !opts.DisableRetirement {
				s.retireLocked(addr)
			}
			continue
		}
		img, err := dev.Peek(addr)
		if err != nil {
			return nil, err
		}
		key, seq, _, ok := parseRecord(img)
		if !ok {
			c, err := model.PredictBytes(img)
			if err != nil {
				return nil, err
			}
			s.poolAdd(c, addr)
			continue
		}
		if !haveSeq || seqAfter(seq, maxSeq) {
			maxSeq, haveSeq = seq, true
		}
		if oldA, dup := s.tree.Get(key); dup {
			// Two valid records for one key: a Put persisted its
			// replacement but did not get to invalidate the old copy
			// (crash in between, or a worn segment refusing the flag
			// write). The higher sequence number is the live record.
			loser := addr
			if seqAfter(seq, seqOf[key]) {
				loser = int(oldA)
				s.tree.Put(key, int64(addr))
				seqOf[key] = seq
			}
			stale = append(stale, loser)
			continue
		}
		s.tree.Put(key, int64(addr))
		seqOf[key] = seq
	}
	// Invalidate the stale copies (best-effort: worn segments may refuse
	// and are then retired) and return them to circulation.
	for _, addr := range stale {
		if err := s.invalidateLocked(addr); err != nil {
			if errors.Is(err, ErrWornOut) && !opts.DisableRetirement {
				s.retireLocked(addr)
			}
			continue
		}
		s.recycleLocked(addr)
	}
	if haveSeq {
		s.seq = maxSeq + 1
	}
	return s, nil
}

// --------------------------------------------------- clustered allocator --

// ClusteredAllocator adapts the E2-NVM model and pool to index.Allocator,
// so existing NVM data structures place their values content-aware — the
// "after plugging to E2-NVM" configuration of Figure 12.
type ClusteredAllocator struct {
	mgr  *core.Manager
	pool *dap.Pool
}

// NewClusteredAllocator builds an allocator over a trained model manager
// and a pool already populated with free segments.
func NewClusteredAllocator(mgr *core.Manager, pool *dap.Pool) *ClusteredAllocator {
	return &ClusteredAllocator{mgr: mgr, pool: pool}
}

// Place implements index.Allocator. Values wider than the model's segment
// report ErrBadSegment instead of panicking.
func (a *ClusteredAllocator) Place(value []byte) (int, error) {
	cluster, err := a.mgr.Current().PredictBytes(value)
	if err != nil {
		return 0, err
	}
	addr, _, ok := a.pool.Get(cluster)
	if !ok {
		return 0, index.ErrNoSpace
	}
	return addr, nil
}

// Release implements index.Allocator.
func (a *ClusteredAllocator) Release(addr int, content []byte) {
	cluster := 0
	if content != nil {
		if c, err := a.mgr.Current().PredictBytes(content); err == nil {
			cluster = c
		}
	}
	a.pool.Add(cluster, addr)
}

// FreeCount implements index.Allocator.
func (a *ClusteredAllocator) FreeCount() int { return a.pool.Free() }
