// Package padding implements E2-NVM's strategies for fitting data items
// smaller than the model's input width w (§4): the padded bits exist only
// so the item can be pushed through the fixed-width VAE — they are never
// written to NVM.
//
// Two orthogonal choices define a strategy:
//
//   - Location: where the padded bits sit relative to the data. Begin
//     ([pad|data]), End ([data|pad]), Middle (pad inserted into the middle
//     of the data, as in the paper's Figure 5), and Edges (pad split
//     half-before/half-after the data, the third position of the paper's
//     Figure 14 evaluation).
//
//   - Type: what the padded bits contain. Universal data-agnostic: Zero,
//     One, Random. Universal data-aware: InputBased (IB — Bernoulli with
//     the input item's 1-density), DatasetBased (DB — 1-density of all
//     items observed so far), MemoryBased (MB — 1-density of the candidate
//     replacement segments in NVM). Learned (LB) — an LSTM slides a window
//     over the item and generates the padding bits (§4.1.3).
package padding

import (
	"fmt"
	mathbits "math/bits"
	"math/rand"

	"e2nvm/internal/lstm"
)

// Location selects where padding bits are placed.
type Location int

// Padding locations.
const (
	Begin Location = iota
	Middle
	End
	Edges
)

// String returns the location's name as used in the paper's figures.
func (l Location) String() string {
	switch l {
	case Begin:
		return "begin"
	case Middle:
		return "middle"
	case End:
		return "end"
	case Edges:
		return "edges"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Locations lists every supported padding location.
func Locations() []Location { return []Location{Begin, Middle, End, Edges} }

// Type selects the padding-bit generation rule.
type Type int

// Padding types, in the order the paper's Figure 14 plots them.
const (
	Zero Type = iota
	One
	Random
	InputBased
	DatasetBased
	MemoryBased
	Learned
)

// String returns the type's short name from the paper.
func (t Type) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	case Random:
		return "rand"
	case InputBased:
		return "IB"
	case DatasetBased:
		return "DB"
	case MemoryBased:
		return "MB"
	case Learned:
		return "LB"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Types lists every supported padding type.
func Types() []Type {
	return []Type{Zero, One, Random, InputBased, DatasetBased, MemoryBased, Learned}
}

// Padder generates padded model inputs for undersized items.
type Padder struct {
	Loc  Location
	Kind Type

	rng *rand.Rand

	// dataset statistics for DatasetBased padding
	dsOnes, dsBits uint64

	// memoryDensity supplies the 1-density of the memory locations that
	// incoming items will replace (MemoryBased padding). Defaults to 0.5
	// when unset.
	memoryDensity func() float64

	// learned-padding model state
	model       *lstm.Network
	windowBits  int
	predictBits int

	// edgeScratch holds the contiguous pad sequence for Edges placement on
	// the PadTo path, so generation order matches the other locations.
	edgeScratch []float64
}

// New returns a Padder for the given location and type. Learned padders
// must also be given a model via SetModel before use.
func New(loc Location, kind Type, seed int64) *Padder {
	return &Padder{Loc: loc, Kind: kind, rng: rand.New(rand.NewSource(seed))}
}

// SetMemoryDensity installs the callback MemoryBased padding samples from.
func (p *Padder) SetMemoryDensity(f func() float64) { p.memoryDensity = f }

// SetModel installs a trained sliding-window LSTM for Learned padding.
// windowBits is the context consumed per step and predictBits the number of
// bits generated per step (the paper uses 64 and 8).
func (p *Padder) SetModel(m *lstm.Network, windowBits, predictBits int) {
	p.model = m
	p.windowBits = windowBits
	p.predictBits = predictBits
}

// DatasetStats exports the running 1s/total-bit counters behind
// DatasetBased padding (for model serialization).
func (p *Padder) DatasetStats() (ones, bits uint64) { return p.dsOnes, p.dsBits }

// SetDatasetStats restores previously exported dataset statistics.
func (p *Padder) SetDatasetStats(ones, bits uint64) {
	p.dsOnes, p.dsBits = ones, bits
}

// Model returns the learned-padding LSTM and its window/predict widths, or
// nil when no model is installed.
func (p *Padder) Model() (m *lstm.Network, windowBits, predictBits int) {
	return p.model, p.windowBits, p.predictBits
}

// Observe folds an item into the dataset statistics used by DatasetBased
// padding.
func (p *Padder) Observe(data []float64) {
	for _, b := range data {
		if b >= 0.5 {
			p.dsOnes++
		}
		p.dsBits++
	}
}

// PadChecked expands data to width w like Pad, but reports an error
// instead of panicking when the item is wider than w or a Learned padder
// has no model installed. It is the variant serving paths use so that a
// misconfigured store fails a request rather than the process.
func (p *Padder) PadChecked(data []float64, w int) ([]float64, error) {
	return p.PadCheckedTo(nil, data, w)
}

// PadCheckedTo is PadTo with PadChecked's error reporting: misuse fails the
// request instead of the process. It is the serving-path entry point.
func (p *Padder) PadCheckedTo(dst, data []float64, w int) ([]float64, error) {
	if len(data) > w {
		return nil, fmt.Errorf("padding: item of %d bits exceeds width %d", len(data), w)
	}
	if p.Kind == Learned && p.model == nil && len(data) < w {
		return nil, fmt.Errorf("padding: Learned padder has no model (call SetModel)")
	}
	return p.PadTo(dst, data, w), nil
}

// Pad expands data to width w. The result is freshly allocated; data is
// not modified. Pad panics if len(data) > w, or if a Learned padder has no
// model; PadChecked is the error-returning variant.
func (p *Padder) Pad(data []float64, w int) []float64 {
	return p.PadTo(nil, data, w)
}

// PadTo is Pad writing into dst's backing array, reallocating only when
// cap(dst) < w. It returns the padded slice of length w; data must not
// alias dst. In steady state (a scratch buffer already grown to w) it does
// not allocate for the non-Learned padding types.
func (p *Padder) PadTo(dst, data []float64, w int) []float64 {
	q := w - len(data)
	if q < 0 {
		panic(fmt.Sprintf("padding: item of %d bits exceeds width %d", len(data), w))
	}
	if cap(dst) < w {
		dst = make([]float64, w) // lint:allow hotpathalloc — grows once to the model width
	}
	dst = dst[:w]
	if q == 0 {
		copy(dst, data)
		return dst
	}
	switch p.Loc {
	case Begin:
		copy(dst[q:], data)
		p.padBitsInto(dst[:q], data)
	case End:
		copy(dst, data)
		p.padBitsInto(dst[len(data):], data)
	case Middle:
		half := len(data) / 2
		copy(dst, data[:half])
		copy(dst[half+q:], data[half:])
		p.padBitsInto(dst[half:half+q], data)
	case Edges:
		// The pad is one generated sequence split around the data, so
		// Learned generation sees the same context as the contiguous
		// placements.
		if cap(p.edgeScratch) < q {
			p.edgeScratch = make([]float64, q) // lint:allow hotpathalloc — grows once to the model width
		}
		pad := p.edgeScratch[:q]
		p.padBitsInto(pad, data)
		half := q / 2
		copy(dst[:half], pad[:half])
		copy(dst[half:half+len(data)], data)
		copy(dst[half+len(data):], pad[half:])
	default:
		panic(fmt.Sprintf("padding: unknown location %d", int(p.Loc)))
	}
	return dst
}

// CanPadBytes reports whether this padder supports PadBytesTo, the
// packed-byte fast path: End placement (the item stays byte-aligned at
// offset 0) with any non-Learned type. Other placements shift the item to
// bit offsets the byte path does not model, and Learned generation works
// on float windows.
func (p *Padder) CanPadBytes() bool {
	return p.Loc == End && p.Kind != Learned
}

// PadBytesTo expands a packed byte item (LSB-first bit order, matching
// bitvec) to w bits directly in byte form, writing into dst's backing
// array: [data | pad], with the pad bits generated exactly as PadTo would
// generate them — same RNG draws, in the same order — so a PadBytesTo
// image packs bit-identical to the float path's. Only valid when
// CanPadBytes; w must be a multiple of 8. In steady state it does not
// allocate.
func (p *Padder) PadBytesTo(dst, data []byte, w int) ([]byte, error) {
	if !p.CanPadBytes() {
		return nil, fmt.Errorf("padding: byte path unsupported for %v/%v", p.Loc, p.Kind)
	}
	if w%8 != 0 {
		return nil, fmt.Errorf("padding: byte path needs byte-aligned width, got %d bits", w)
	}
	if len(data)*8 > w {
		return nil, fmt.Errorf("padding: item of %d bits exceeds width %d", len(data)*8, w)
	}
	n := w / 8
	if cap(dst) < n {
		dst = make([]byte, n) // lint:allow hotpathalloc — grows once to the model width
	}
	dst = dst[:n]
	copy(dst, data)
	tail := dst[len(data):]
	switch p.Kind {
	case Zero:
		for i := range tail {
			tail[i] = 0
		}
	case One:
		for i := range tail {
			tail[i] = 0xFF
		}
	case Random:
		for i := range tail {
			b := byte(0)
			for j := 0; j < 8; j++ {
				b |= byte(p.rng.Intn(2)) << uint(j)
			}
			tail[i] = b
		}
	case InputBased:
		p.bernoulliBytes(tail, byteDensity(data))
	case DatasetBased:
		d := 0.5
		if p.dsBits > 0 {
			d = float64(p.dsOnes) / float64(p.dsBits)
		}
		p.bernoulliBytes(tail, d)
	case MemoryBased:
		d := 0.5
		if p.memoryDensity != nil {
			d = p.memoryDensity() // lint:allow hotpathalloc — owner-supplied density callback, opaque to the call graph
		}
		p.bernoulliBytes(tail, d)
	default:
		return nil, fmt.Errorf("padding: unknown type %d", int(p.Kind))
	}
	return dst, nil
}

// bernoulliBytes fills tail with Bernoulli(d) bits, LSB-first — the same
// per-bit draws bernoulli makes, packed as it goes.
func (p *Padder) bernoulliBytes(tail []byte, d float64) {
	for i := range tail {
		b := byte(0)
		for j := 0; j < 8; j++ {
			if p.rng.Float64() < d {
				b |= 1 << uint(j)
			}
		}
		tail[i] = b
	}
}

// byteDensity is density over a packed item: ones/bits via popcount,
// arithmetically identical to the float version.
func byteDensity(data []byte) float64 {
	if len(data) == 0 {
		return 0.5
	}
	ones := 0
	for _, b := range data {
		ones += mathbits.OnesCount8(b)
	}
	return float64(ones) / float64(len(data)*8)
}

// padBitsInto fills pad (a region of a possibly reused buffer — every slot
// is overwritten) with q generated bits.
func (p *Padder) padBitsInto(pad []float64, data []float64) {
	switch p.Kind {
	case Zero:
		for i := range pad {
			pad[i] = 0
		}
	case One:
		for i := range pad {
			pad[i] = 1
		}
	case Random:
		for i := range pad {
			pad[i] = float64(p.rng.Intn(2))
		}
	case InputBased:
		p.bernoulli(pad, density(data))
	case DatasetBased:
		d := 0.5
		if p.dsBits > 0 {
			d = float64(p.dsOnes) / float64(p.dsBits)
		}
		p.bernoulli(pad, d)
	case MemoryBased:
		d := 0.5
		if p.memoryDensity != nil {
			d = p.memoryDensity() // lint:allow hotpathalloc — owner-supplied density callback, opaque to the call graph
		}
		p.bernoulli(pad, d)
	case Learned:
		if p.model == nil {
			panic("padding: Learned padder has no model (call SetModel)")
		}
		p.generateLearned(data, pad) // lint:allow hotpathalloc — LSTM window generation allocates by design (§4.1.3); LB trades CPU for flips
	default:
		panic(fmt.Sprintf("padding: unknown type %d", int(p.Kind)))
	}
}

func (p *Padder) bernoulli(pad []float64, d float64) {
	for i := range pad {
		if p.rng.Float64() < d {
			pad[i] = 1
		} else {
			pad[i] = 0
		}
	}
}

// generateLearned slides the LSTM window over data followed by the bits
// generated so far, emitting predictBits per step (§4.1.3).
func (p *Padder) generateLearned(data []float64, pad []float64) {
	buf := append([]float64(nil), data...)
	for generated := 0; generated < len(pad); {
		window := lastWindow(buf, p.windowBits)
		out := p.model.PredictStep(window)
		for i := 0; i < p.predictBits && generated < len(pad); i++ {
			bit := 0.0
			if i < len(out) && out[i] >= 0.5 {
				bit = 1
			}
			pad[generated] = bit
			buf = append(buf, bit)
			generated++
		}
	}
}

// lastWindow returns the trailing w entries of buf, left-padded with zeros
// when buf is shorter than w.
func lastWindow(buf []float64, w int) []float64 {
	out := make([]float64, w)
	n := len(buf)
	if n >= w {
		copy(out, buf[n-w:])
		return out
	}
	copy(out[w-n:], buf)
	return out
}

func density(data []float64) float64 {
	if len(data) == 0 {
		return 0.5
	}
	ones := 0
	for _, b := range data {
		if b >= 0.5 {
			ones++
		}
	}
	return float64(ones) / float64(len(data))
}

// maxLearnedWindows caps the number of sliding-window samples used to fit
// the learned-padding LSTM; beyond this, additional windows add training
// cost without measurably improving the generated padding.
const maxLearnedWindows = 5000

// TrainLearnedModel fits the sliding-window LSTM on full-width items:
// every (windowBits → next predictBits) pair at stride predictBits becomes
// a training sample, exactly the regime the trained model is used in. When
// the items yield more than maxLearnedWindows samples, windows are taken
// at a coarser stride to stay within the cap.
func TrainLearnedModel(items [][]float64, windowBits, predictBits, hidden, epochs int, seed int64) (*lstm.Network, error) {
	if windowBits <= 0 || predictBits <= 0 {
		return nil, fmt.Errorf("padding: invalid window %d / predict %d", windowBits, predictBits)
	}
	total := 0
	for _, item := range items {
		if n := (len(item) - windowBits) / predictBits; n > 0 {
			total += n
		}
	}
	stride := predictBits
	if total > maxLearnedWindows {
		stride = predictBits * (total/maxLearnedWindows + 1)
	}
	var seqs [][][]float64
	var targets [][]float64
	for _, item := range items {
		for off := 0; off+windowBits+predictBits <= len(item); off += stride {
			win := append([]float64(nil), item[off:off+windowBits]...)
			tgt := append([]float64(nil), item[off+windowBits:off+windowBits+predictBits]...)
			seqs = append(seqs, [][]float64{win})
			targets = append(targets, tgt)
		}
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("padding: no training windows (items shorter than window+predict = %d bits)", windowBits+predictBits)
	}
	net, err := lstm.New(windowBits, hidden, predictBits, seed)
	if err != nil {
		return nil, err
	}
	if _, err := net.Fit(seqs, targets, epochs, 32); err != nil {
		return nil, err
	}
	return net, nil
}
