package kvstore

import (
	"bytes"
	"math/rand"
	"testing"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/index"
	"e2nvm/internal/nvm"
)

func quickModelCfg() core.Config {
	return core.Config{K: 3, HiddenDim: 32, LatentDim: 4, Epochs: 4, JointEpochs: 1, BatchSize: 16, Seed: 1}
}

// openStore builds a store over a randomly seeded device.
func openStore(t *testing.T, segSize, numSegs int, opts Options) *Store {
	t.Helper()
	dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(42)))
	s, err := Open(dev, quickModelCfg(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dev.ResetStats() // ignore any setup activity
	return s
}

func TestOpenPopulatesPool(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if s.Pool().Free() != 64 {
		t.Fatalf("pool free = %d, want 64", s.Pool().Free())
	}
	if s.Model().K() != 3 {
		t.Fatalf("K = %d, want 3", s.Model().K())
	}
	if s.MaxValue() != 32-19 {
		t.Fatalf("MaxValue = %d", s.MaxValue())
	}
}

func TestOpenRejectsMismatchedModelWidth(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickModelCfg()
	cfg.InputBits = 64 // != 32*8
	if _, err := Open(dev, cfg, Options{}); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestPutGetDelete(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Put(7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get(7)
	if err != nil || !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if _, ok, _ := s.Get(8); ok {
		t.Fatal("missing key found")
	}
	ok, err = s.Delete(7)
	if err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(7); ok {
		t.Fatal("deleted key still found")
	}
	if ok, _ := s.Delete(7); ok {
		t.Fatal("double delete succeeded")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutTooLarge(t *testing.T) {
	s := openStore(t, 32, 16, Options{})
	if err := s.Put(1, make([]byte, 30)); err == nil {
		t.Fatal("expected ErrValueTooLarge")
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	wrote, err := s.PutIfAbsent(5, []byte("new"))
	if err != nil || !wrote {
		t.Fatalf("PutIfAbsent on empty key = (%v,%v), want wrote", wrote, err)
	}
	wrote, err = s.PutIfAbsent(5, []byte("stale"))
	if err != nil || wrote {
		t.Fatalf("PutIfAbsent on live key = (%v,%v), want no write", wrote, err)
	}
	v, ok, err := s.Get(5)
	if err != nil || !ok || !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get = (%q,%v,%v), want the first value kept", v, ok, err)
	}
	// After a delete the key is absent again.
	if ok, err := s.Delete(5); err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	wrote, err = s.PutIfAbsent(5, []byte("back"))
	if err != nil || !wrote {
		t.Fatalf("PutIfAbsent after delete = (%v,%v), want wrote", wrote, err)
	}
	if _, err := s.PutIfAbsent(6, make([]byte, 30)); err == nil {
		t.Fatal("expected ErrValueTooLarge")
	}
}

func TestUpdateRecyclesOldSegment(t *testing.T) {
	s := openStore(t, 32, 16, Options{})
	if err := s.Put(1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	free := s.Pool().Free()
	if err := s.Put(1, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	// Update pops one segment and recycles one: net unchanged.
	if got := s.Pool().Free(); got != free {
		t.Fatalf("pool free = %d after update, want %d", got, free)
	}
	v, _, _ := s.Get(1)
	if !bytes.Equal(v, []byte("bbbb")) {
		t.Fatalf("value after update = %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDeleteFlagBitIsOneFlip(t *testing.T) {
	s := openStore(t, 32, 16, Options{})
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	before := s.Device().Stats().BitsFlipped
	if _, err := s.Delete(1); err != nil {
		t.Fatal(err)
	}
	after := s.Device().Stats().BitsFlipped
	if after-before != 1 {
		t.Fatalf("delete flipped %d bits, want exactly 1 (the flag)", after-before)
	}
}

func TestScan(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	for k := uint64(0); k < 10; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	if err := s.Scan(3, 7, func(k uint64, v []byte) bool {
		if v[0] != byte(k) {
			t.Fatalf("scan value mismatch at %d", k)
		}
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[0] != 3 || keys[4] != 7 {
		t.Fatalf("scan keys = %v", keys)
	}
}

func TestNoSpace(t *testing.T) {
	s := openStore(t, 32, 4, Options{})
	var err error
	for k := uint64(0); k < 10; k++ {
		if err = s.Put(k, []byte{byte(k)}); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected ErrNoSpace when keys exceed segments")
	}
}

func TestArbitraryPlacementUpdatesInPlace(t *testing.T) {
	s := openStore(t, 32, 16, Options{Placement: PlaceArbitrary})
	if err := s.Put(1, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	free := s.Pool().Free()
	if err := s.Put(1, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	// In-place update consumes no pool entries.
	if got := s.Pool().Free(); got != free {
		t.Fatalf("pool free changed on in-place update: %d -> %d", free, got)
	}
	v, _, _ := s.Get(1)
	if !bytes.Equal(v, []byte("bb")) {
		t.Fatalf("value = %q", v)
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceE2NVM.String() != "e2nvm" || PlaceArbitrary.String() != "arbitrary" {
		t.Fatal("placement names wrong")
	}
}

// TestE2NVMPlacementReducesFlips is the headline end-to-end comparison: the
// same workload against the same initial device contents flips fewer bits
// under E2-NVM placement than under arbitrary placement.
func TestE2NVMPlacementReducesFlips(t *testing.T) {
	run := func(p Placement) uint64 {
		segSize := 32
		numSegs := 256
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			t.Fatal(err)
		}
		// Seed the device with clustered content: half the segments hold
		// mostly-zero patterns, half mostly-one patterns.
		r := rand.New(rand.NewSource(5))
		for a := 0; a < numSegs; a++ {
			img := make([]byte, segSize)
			if a%2 == 0 {
				for i := range img {
					img[i] = byte(r.Intn(4)) // sparse ones
				}
			} else {
				for i := range img {
					img[i] = byte(255 - r.Intn(4)) // dense ones
				}
			}
			if err := dev.FillSegment(a, img); err != nil {
				t.Fatal(err)
			}
		}
		cfg := quickModelCfg()
		cfg.K = 2
		s, err := Open(dev, cfg, Options{Placement: p})
		if err != nil {
			t.Fatal(err)
		}
		dev.ResetStats()
		// Write a mixture of sparse and dense values.
		wr := rand.New(rand.NewSource(6))
		for k := uint64(0); k < 128; k++ {
			v := make([]byte, segSize-19)
			if k%2 == 0 {
				for i := range v {
					v[i] = byte(wr.Intn(4))
				}
			} else {
				for i := range v {
					v[i] = byte(255 - wr.Intn(4))
				}
			}
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
		}
		return dev.Stats().BitsFlipped
	}
	aware := run(PlaceE2NVM)
	arbitrary := run(PlaceArbitrary)
	if float64(aware) > 0.8*float64(arbitrary) {
		t.Fatalf("E2-NVM placement flips %d not well below arbitrary %d", aware, arbitrary)
	}
}

func TestRetrainRebuildsPool(t *testing.T) {
	s := openStore(t, 32, 32, Options{})
	for k := uint64(0); k < 8; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	// 8 segments in use, the rest free.
	if got := s.Pool().Free(); got != 24 {
		t.Fatalf("pool free after retrain = %d, want 24", got)
	}
	if s.Stats().Retrains != 1 {
		t.Fatalf("Retrains = %d", s.Stats().Retrains)
	}
	// Data still readable under the new model.
	for k := uint64(0); k < 8; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) after retrain = (%v,%v,%v)", k, v, ok, err)
		}
	}
}

func TestNeedsRetrainSignal(t *testing.T) {
	s := openStore(t, 32, 16, Options{LowWater: 3})
	// Drain the pool far enough that some cluster dips below 3.
	for k := uint64(0); k < 10; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.NeedsRetrain() {
		t.Fatal("NeedsRetrain should fire after draining the pool")
	}
}

func TestCrashSafeMode(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 64))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(42)))
	s, err := Open(dev, quickModelCfg(), Options{CrashSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	// The redo log reserves segments: fewer than 64 are poolable.
	if s.Pool().Free() >= 64 {
		t.Fatalf("pool free = %d, expected log reservation", s.Pool().Free())
	}
	baseline := openStore(t, 32, 64, Options{})
	dev.ResetStats()
	baseline.Device().ResetStats()
	for k := uint64(0); k < 20; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
		if err := baseline.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 20; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("crash-safe Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
	// Transactions amplify writes: log staging + commit + apply.
	cs := dev.Stats().Writes
	raw := baseline.Device().Stats().Writes
	if cs <= raw {
		t.Fatalf("crash-safe writes %d not above raw %d (logging missing?)", cs, raw)
	}
	// Recovery over a crash-safe store finds the data and skips the log.
	r, err := RecoverWith(dev, s.Model(), Options{CrashSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 20 {
		t.Fatalf("recovered Len = %d, want 20", r.Len())
	}
}

// TestCrashSafePutAtomicity injects crashes at every point of a put's
// commit protocol and verifies the store recovers to a consistent state:
// the key is either fully present with the new value or absent.
func TestCrashSafePutAtomicity(t *testing.T) {
	for failAt := 0; failAt < 6; failAt++ {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 64))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(42)))
		s, err := Open(dev, quickModelCfg(), Options{CrashSafe: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(1, []byte("stable")); err != nil {
			t.Fatal(err)
		}
		s.TxnManager().FailAfter(failAt)
		err = s.Put(2, []byte("maybe"))
		s.TxnManager().FailAfter(-1)
		r, rerr := RecoverWith(dev, s.Model(), Options{CrashSafe: true})
		if rerr != nil {
			t.Fatalf("failAt=%d: recover: %v", failAt, rerr)
		}
		// Key 1 must always survive.
		v, ok, gerr := r.Get(1)
		if gerr != nil || !ok || string(v) != "stable" {
			t.Fatalf("failAt=%d: key 1 = (%q,%v,%v)", failAt, v, ok, gerr)
		}
		// Key 2 is all-or-nothing.
		v, ok, gerr = r.Get(2)
		if gerr != nil {
			t.Fatalf("failAt=%d: key 2 read: %v", failAt, gerr)
		}
		if ok && string(v) != "maybe" {
			t.Fatalf("failAt=%d: key 2 torn: %q", failAt, v)
		}
		if err == nil && !ok {
			t.Fatalf("failAt=%d: put reported success but key lost", failAt)
		}
	}
}

func TestIncrementalIndexing(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 64))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(42)))
	s, err := Open(dev, quickModelCfg(), Options{IndexFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if s.Indexed() != 16 || s.Pool().Free() != 16 {
		t.Fatalf("indexed/free = %d/%d, want 16/16", s.Indexed(), s.Pool().Free())
	}
	added, err := s.IndexMore(10)
	if err != nil || added != 10 {
		t.Fatalf("IndexMore = (%d,%v)", added, err)
	}
	if s.Indexed() != 26 || s.Pool().Free() != 26 {
		t.Fatalf("after IndexMore: indexed/free = %d/%d", s.Indexed(), s.Pool().Free())
	}
	// Indexing past the end clamps.
	added, err = s.IndexMore(1000)
	if err != nil || added != 64-26 {
		t.Fatalf("IndexMore overflow = (%d,%v), want %d", added, err, 64-26)
	}
	if s.Indexed() != 64 {
		t.Fatalf("Indexed = %d", s.Indexed())
	}
	if added, _ := s.IndexMore(5); added != 0 {
		t.Fatal("IndexMore past end should add nothing")
	}
	if _, err := Open(dev, quickModelCfg(), Options{IndexFraction: 1.5}); err == nil {
		t.Fatal("IndexFraction > 1 accepted")
	}
}

func TestIncrementalIndexingSurvivesRetrain(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(7)))
	s, err := Open(dev, quickModelCfg(), Options{IndexFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	// Retrain rebuilds only the indexed half: 16 indexed, 4 in use.
	if got := s.Pool().Free(); got != 12 {
		t.Fatalf("pool free after retrain = %d, want 12", got)
	}
}

func TestAutoRetrainFires(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 24))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(42)))
	cfg := quickModelCfg()
	cfg.Epochs = 2
	cfg.JointEpochs = -1
	// LowWater = 8 over 24 segments across 3 clusters: some cluster is low
	// immediately, so the first put schedules a background retrain.
	s, err := Open(dev, cfg, Options{AutoRetrain: true, LowWater: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The first put scheduled the retrain synchronously, so Quiesce joins
	// it deterministically — no polling.
	s.Quiesce()
	if s.Stats().Retrains == 0 {
		t.Fatal("background retrain never completed")
	}
	// The store keeps serving during and after the swap.
	v, ok, err := s.Get(1)
	if err != nil || !ok || v[0] != 'x' {
		t.Fatalf("Get after auto-retrain = (%v,%v,%v)", v, ok, err)
	}
}

// TestRecoverRebuildsFromDevice simulates a crash (the DRAM index and pool
// vanish) and rebuilds the store by scanning the self-describing records.
func TestRecoverRebuildsFromDevice(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	for k := uint64(0); k < 20; k++ {
		if err := s.Put(k, []byte{byte(k), byte(k * 3)}); err != nil {
			t.Fatal(err)
		}
	}
	// Exercise updates and deletes so stale records exist on the device.
	for k := uint64(0); k < 10; k++ {
		if err := s.Put(k, []byte{byte(k + 100)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(15); k < 20; k++ {
		if _, err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	dev := s.Device()
	// "Crash": discard the store; recover from the device alone, reusing
	// the trained model (RecoverWith) to keep the test fast.
	r, err := RecoverWith(dev, s.Model(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 15 {
		t.Fatalf("recovered Len = %d, want 15", r.Len())
	}
	for k := uint64(0); k < 10; k++ {
		v, ok, err := r.Get(k)
		if err != nil || !ok || v[0] != byte(k+100) {
			t.Fatalf("recovered Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
	for k := uint64(10); k < 15; k++ {
		v, ok, err := r.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("recovered Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
	for k := uint64(15); k < 20; k++ {
		if _, ok, _ := r.Get(k); ok {
			t.Fatalf("deleted key %d resurrected", k)
		}
	}
	// Pool + index together must cover the device exactly once.
	if r.Pool().Free()+r.Len() != dev.NumSegments() {
		t.Fatalf("pool %d + live %d != %d segments", r.Pool().Free(), r.Len(), dev.NumSegments())
	}
	// The recovered store keeps working.
	if err := r.Put(99, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := r.Get(99)
	if !ok || string(v) != "post-recovery" {
		t.Fatal("recovered store cannot serve writes")
	}
}

// TestRecoverTrainsWhenNoModel exercises the full Recover entry point.
func TestRecoverTrainsWhenNoModel(t *testing.T) {
	s := openStore(t, 32, 32, Options{})
	if err := s.Put(5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(s.Device(), quickModelCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.Get(5)
	if err != nil || !ok || string(v) != "five" {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
}

func TestClusteredAllocatorWithStores(t *testing.T) {
	// Plug a B+-Tree into E2-NVM through ClusteredAllocator and confirm
	// correct behaviour end to end.
	segSize := 64
	numSegs := 256
	dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(3)))
	s, err := Open(dev, quickModelCfg(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reserve the first 64 segments for tree pages: remove them from the
	// pool by draining then re-adding the rest is awkward, so build a
	// second device region instead: here we just hand the allocator the
	// store's pool (value zone) and a plain free list for meta.
	meta := index.NewFreeList(drain(s, 64))
	alloc := NewClusteredAllocator(core.NewManager(s.Model()), s.Pool())
	tree, err := index.NewBPTree(dev, meta, alloc)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	ref := map[uint64][]byte{}
	for i := 0; i < 300; i++ {
		k := uint64(r.Intn(60))
		v := make([]byte, 16)
		r.Read(v)
		if err := tree.Put(k, v); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	for k, want := range ref {
		got, ok, err := tree.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("plugged B+-Tree Get(%d) = (%x,%v,%v)", k, got, ok, err)
		}
	}
	if alloc.FreeCount() <= 0 {
		t.Fatal("allocator exhausted unexpectedly")
	}
}

// drain pops n addresses from the store's pool (helper to carve out a
// metadata region).
func drain(s *Store, n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		addr, _, ok := s.Pool().Get(0)
		if !ok {
			break
		}
		out = append(out, addr)
	}
	return out
}

// TestKeyTempSteering pins the hot/cold placement policy end to end: with
// Options.KeyTemp installed, placements consult per-cluster wear (recycles
// carry the segment's write count) and steered placements are counted
// separately from empty-cluster fallbacks.
func TestKeyTempSteering(t *testing.T) {
	hot := map[uint64]bool{1: true}
	s := openStore(t, 32, 64, Options{
		KeyTemp: func(key uint64) dap.Temp {
			if hot[key] {
				return dap.TempHot
			}
			return dap.TempCold
		},
	})
	// Burn wear into some segments: overwrite one key many times so its
	// recycled addresses carry high write counts.
	val := []byte("burn")
	for i := 0; i < 200; i++ {
		if err := s.Put(1, val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Steered == 0 {
		t.Fatalf("no steered placements recorded: %+v", st)
	}
	// Wear is visible to the pool on the steering-enabled path.
	var worn bool
	for _, w := range s.Pool().ClusterWear() {
		if w > 0 {
			worn = true
		}
	}
	if !worn {
		t.Fatal("recycles did not carry segment wear into the pool")
	}
	// A cold key must still read back correctly after steering.
	if err := s.Put(2, []byte("cold")); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Get(2)
	if err != nil || !found || string(got) != "cold" {
		t.Fatalf("Get(2) = %q, %v, %v", got, found, err)
	}
	if got, found, err := s.Get(1); err != nil || !found || string(got) != "burn" {
		t.Fatalf("Get(1) = %q, %v, %v", got, found, err)
	}
}

// TestNilKeyTempUnchanged pins that a store without KeyTemp never records
// steered placements or pool wear — the pre-steering behavior.
func TestNilKeyTempUnchanged(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	for i := 0; i < 50; i++ {
		if err := s.Put(uint64(i%5), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Steered != 0 {
		t.Fatalf("Steered = %d without KeyTemp", st.Steered)
	}
	for _, w := range s.Pool().ClusterWear() {
		if w != 0 {
			t.Fatalf("pool wear tracked without KeyTemp: %v", s.Pool().ClusterWear())
		}
	}
}
