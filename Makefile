GO ?= go

.PHONY: all build test race stress lint lint-self vet bench fault chaos

all: build lint test

build:
	$(GO) build ./...

# Repo-specific static analysis: per-function analyzers (lockdiscipline,
# seededrand, floateq, nopanic) plus the inter-procedural ones
# (hotpathalloc, errflow, deepdeterminism, the concurrency set lockorder,
# atomicmix, goroutinelife, kernelpure, and the compiler-feedback budgets
# escapes, nobce, inlinebudget) — see DESIGN.md §8, §12 and §13. -github
# makes each finding a ::error annotation under Actions; it prints nothing
# extra when the tree is clean.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/e2nvm-lint -github ./...

# Compiler-feedback budgets only (escapes/nobce/inlinebudget): each package
# is compiled with -m=2 and the BCE debug flag and the diagnostics are
# checked against the lint:hotpath/lint:nobce/lint:inline contracts. The
# per-package compiler output is cached under ~/.cache/e2nvm-gcdiag keyed
# on go version + source hash, so a warm run recompiles nothing.
lint-perf:
	$(GO) run ./cmd/e2nvm-lint -github -gcdiag-only ./...

# The analyzers must satisfy their own invariants (lock discipline in the
# engine's worklists, seeded randomness in fixtures, error flow in the
# loader): run the suite over internal/analysis itself — gcdiag and the
# three budget analyzers included, since they live under internal/analysis.
lint-self:
	$(GO) run ./cmd/e2nvm-lint -github ./internal/analysis/...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency stress: the multi-goroutine facade hammer (sharded and
# unsharded) plus the kvstore/shard concurrency suites, under the race
# detector.
stress:
	$(GO) test -race -run 'TestConcurrentStress|TestRetrainConcurrentPut|TestScanReentrant' \
		. ./internal/kvstore ./internal/shard

# Fault-injection pipeline under the race detector: the nvm fault model,
# kvstore detect/retry/retire/scrub tests, the crash matrix, the txn worn-
# slot tests, pool retirement, and the record-codec fuzz seeds (see
# DESIGN.md §9).
fault:
	$(GO) test -race -run 'Fault|Worn|Retire|Scrub|Degrad|Corrupt|CrashMatrix|Fuzz' \
		./internal/nvm ./internal/kvstore ./internal/txn ./internal/dap ./internal/experiments .
	$(GO) test -race -run=NONE -fuzz FuzzRecordRoundTrip -fuzztime 10s ./internal/kvstore

# Replication chaos: the seeded kill-a-shard-mid-workload suite (leader
# devices fenced at fixed points while concurrent writers run; zero lost
# acknowledged writes), the follower-apply/migration crash matrices, and
# the facade failover/migration lifecycle — all under the race detector.
# Every seed is fixed in the tests, so a failure reproduces exactly.
chaos:
	$(GO) test -race -run 'TestChaos|TestCrashMatrix|TestReplicatedFailoverAndMigration' \
		./internal/replica .

# Regenerate the committed micro-benchmark baseline (Put/Get/GetInto/Delete
# ns/op, B/op, allocs/op plus bit-flip counters, the replicated-write,
# degraded-serving, hot-cache and steered-placement rows, and the
# concurrent shards×cpu throughput sweep).
bench:
	$(GO) run ./cmd/e2nvm-bench -kvbench -out BENCH_PR9.json
