package kmeans

import (
	"math"
	"math/rand"
	"testing"
)

// clusterTestData builds a fixed mixture so two Fit runs see identical
// inputs; all nondeterminism then comes from the training RNG alone.
func clusterTestData(seed int64, n, dim int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dim)
		center := float64(i % 3 * 5)
		for j := range row {
			row[j] = center + r.NormFloat64()
		}
		data[i] = row
	}
	return data
}

// TestFitSameSeedBitIdentical is the determinism regression test: two runs
// with the same Config.Seed must produce byte-identical assignments and
// bit-identical centroids (math.Float64bits, not approximate equality).
func TestFitSameSeedBitIdentical(t *testing.T) {
	data := clusterTestData(7, 150, 6)
	cfg := NewConfig(3)
	cfg.Seed = 42

	m1, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Iterations != m2.Iterations {
		t.Fatalf("iterations diverged: %d vs %d", m1.Iterations, m2.Iterations)
	}
	if math.Float64bits(m1.SSE) != math.Float64bits(m2.SSE) {
		t.Fatalf("SSE diverged: %v vs %v", m1.SSE, m2.SSE)
	}
	for c := range m1.Centroids {
		for j := range m1.Centroids[c] {
			a, b := m1.Centroids[c][j], m2.Centroids[c][j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("centroid[%d][%d] diverged: %v vs %v", c, j, a, b)
			}
		}
	}
	for i, x := range data {
		if m1.Predict(x) != m2.Predict(x) {
			t.Fatalf("assignment %d diverged", i)
		}
	}
}

// TestFitInjectedRandMatchesSeed verifies Config.Rand overrides Seed and
// that an injected generator reproduces the Seed-derived stream.
func TestFitInjectedRandMatchesSeed(t *testing.T) {
	data := clusterTestData(9, 120, 4)
	cfg := NewConfig(3)
	cfg.Seed = 5

	bySeed, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rand = rand.New(rand.NewSource(5))
	cfg.Seed = 999 // must be ignored when Rand is set
	byRand, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := range bySeed.Centroids {
		for j := range bySeed.Centroids[c] {
			a, b := bySeed.Centroids[c][j], byRand.Centroids[c][j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("injected Rand diverged from seed stream at centroid[%d][%d]", c, j)
			}
		}
	}
}
