package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/energy"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig16", Fig16) }

// Fig16 reproduces Figure 16: the package energy over time as E2-NVM goes
// through its lifecycle — (1) initial training, (2) five overwrite passes,
// (3) retraining, (4) four more passes — compared against a wear-leveling
// device serving the same writes without E2-NVM. Training shows up as
// compute-energy ramps; write phases run at lower energy than the
// wear-leveling baseline; the note reports the break-even write count
// after which the per-write savings repay the training energy.
func Fig16(cfg RunConfig) (*Result, error) {
	const segSize = 64
	numSegs := cfg.scaleInt(384, 96)
	const k = 8
	epochs := 8

	ds := workload.ImageNetLike(10*numSegs, segSize*8, cfg.Seed)
	seedImgs := toBytesAll(ds.Items[:numSegs], segSize)

	prof := energy.New()
	table := stats.NewTable("phase", "sim_time_ms", "phase_energy_uJ", "avg_flips/write")
	var series stats.Series
	series.Name = "cumulative_energy_uJ_vs_time_ms"

	record := func(label string) {
		s := prof.Sample(label)
		series.Add(s.TimeNs/1e6, s.EnergyPJ/1e6)
	}

	// --- Phase 1: initial training ---
	record("start")
	t0, e0 := prof.TimeNs(), prof.EnergyPJ()
	model, err := core.Train(ds.Items[:numSegs], core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: epochs, JointEpochs: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	trainFLOPs := float64(epochs+2) * float64(numSegs) * 3 * model.FLOPsPerPredict()
	for e := 0; e < epochs; e++ {
		prof.AddCompute(trainFLOPs / float64(epochs))
		record("train")
	}
	table.AddRow("1:train", (prof.TimeNs()-t0)/1e6, (prof.EnergyPJ()-e0)/1e6, 0.0)

	dev, err := seededDevice(nvm.DefaultConfig(segSize, numSegs), seedImgs)
	if err != nil {
		return nil, err
	}
	p, err := newClusterPlacer(model, k, dev, addrRange(numSegs))
	if err != nil {
		return nil, err
	}

	writePhase := func(name string, passes int, from int) (float64, error) {
		t0, e0 := prof.TimeNs(), prof.EnergyPJ()
		before := dev.Stats()
		for pass := 0; pass < passes; pass++ {
			items := toBytesAll(ds.Items[from+pass*numSegs:from+(pass+1)*numSegs], segSize)
			for i, it := range items {
				prof.AddCompute(model.FLOPsPerPredict())
				addr, ok := p.place(it)
				if !ok {
					return 0, fmt.Errorf("fig16: pool exhausted")
				}
				res, err := dev.Write(addr, it)
				if err != nil {
					return 0, err
				}
				prof.AddNVM(res.EnergyPJ, res.LatencyNs)
				img, err := dev.Peek(addr)
				if err != nil {
					return 0, err
				}
				p.recycle(addr, img)
				if i%64 == 0 {
					record(name)
				}
			}
		}
		after := dev.Stats()
		flips := float64(after.BitsFlipped-before.BitsFlipped) / float64(after.Writes-before.Writes)
		table.AddRow(name, (prof.TimeNs()-t0)/1e6, (prof.EnergyPJ()-e0)/1e6, flips)
		return flips, nil
	}

	// --- Phase 2: five overwrite passes ---
	if _, err := writePhase("2:write", 5, numSegs); err != nil {
		return nil, err
	}
	// --- Phase 3: retrain on current contents ---
	t0, e0 = prof.TimeNs(), prof.EnergyPJ()
	images, err := currentImages(dev)
	if err != nil {
		return nil, err
	}
	model2, err := core.Train(images, core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: epochs, JointEpochs: 2, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	for e := 0; e < epochs; e++ {
		prof.AddCompute(trainFLOPs / float64(epochs))
		record("retrain")
	}
	table.AddRow("3:retrain", (prof.TimeNs()-t0)/1e6, (prof.EnergyPJ()-e0)/1e6, 0.0)
	// Rebuild the pool under the new model (every segment is recycled
	// immediately in this loop, so all addresses are free).
	p, err = newClusterPlacer(model2, k, dev, addrRange(numSegs))
	if err != nil {
		return nil, err
	}
	// --- Phase 4: four more passes ---
	e2Flips, err := writePhase("4:write", 4, 6*numSegs)
	if err != nil {
		return nil, err
	}

	// --- Baseline: wear leveling only, same nine passes ---
	wlCfg := nvm.DefaultConfig(segSize, numSegs)
	wlCfg.WearLevelPeriod = 20
	wlDev, err := seededDevice(wlCfg, seedImgs)
	if err != nil {
		return nil, err
	}
	wlPlacer := newFIFOPlacer(addrRange(numSegs))
	wlProf := energy.New()
	for pass := 0; pass < 9; pass++ {
		items := toBytesAll(ds.Items[numSegs+pass*numSegs:numSegs+(pass+1)*numSegs], segSize)
		for _, it := range items {
			addr, _ := wlPlacer.place(it)
			res, err := wlDev.Write(addr, it)
			if err != nil {
				return nil, err
			}
			wlProf.AddNVM(res.EnergyPJ, res.LatencyNs)
			img, err := wlDev.Peek(addr)
			if err != nil {
				return nil, err
			}
			wlPlacer.recycle(addr, img)
		}
	}
	wl := wlDev.Stats()
	wlFlips := float64(wl.BitsFlipped) / float64(wl.Writes)
	table.AddRow("baseline:wear-leveling", wlProf.TimeNs()/1e6, wlProf.EnergyPJ()/1e6, wlFlips)

	// Break-even analysis: per-write energy savings vs training overhead.
	perWriteSaving := (wlFlips - e2Flips) * 50 // pJ
	trainEnergy := 2 * trainFLOPs * energy.ComputePJPerFLOP
	note := "write savings never amortize training at this scale"
	if perWriteSaving > 0 {
		note = fmt.Sprintf("per-write saving %.0f pJ; training cost %.2e pJ → break-even after ≈%.0f writes",
			perWriteSaving, trainEnergy, trainEnergy/perWriteSaving)
	}
	return &Result{
		ID:     "fig16",
		Title:  "Package energy over time: train → write×5 → retrain → write×4 vs wear leveling",
		Table:  table,
		Series: []stats.Series{series},
		Notes: []string{
			fmt.Sprintf("%d segments × %d B, ImageNet-like items, k=%d", numSegs, segSize, k),
			note,
			"expected shape: training phases are compute ramps; E2-NVM write phases run at lower flips/write than the wear-leveling baseline",
		},
	}, nil
}

func currentImages(dev *nvm.Device) ([][]float64, error) {
	out := make([][]float64, dev.NumSegments())
	for a := 0; a < dev.NumSegments(); a++ {
		img, err := dev.Peek(a)
		if err != nil {
			return nil, err
		}
		out[a] = core.BytesToBits(img)
	}
	return out, nil
}
