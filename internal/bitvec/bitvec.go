// Package bitvec provides byte-slice-backed bit vectors and the Hamming
// arithmetic that the rest of the system is built on: popcounts, distances,
// diff masks, and bit-level mutation. Every write-scheme comparison in the
// paper is ultimately a statement about Hamming distances between an old
// segment image and a new value, so these primitives are kept allocation-free
// on the hot paths.
package bitvec

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Vector is a packed bit vector. Bit i lives in byte i/8 at position i%8
// (LSB-first within a byte). The zero value is an empty vector.
type Vector struct {
	data []byte
	n    int // number of valid bits
}

// New returns a zeroed vector of n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{data: make([]byte, (n+7)/8), n: n}
}

// FromBytes wraps b as a vector of len(b)*8 bits. The vector aliases b;
// mutations are visible to the caller.
func FromBytes(b []byte) *Vector {
	return &Vector{data: b, n: len(b) * 8}
}

// FromBits builds a vector from a slice of 0/1 values. Any nonzero entry is
// treated as a 1 bit.
func FromBits(bits []int) *Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// FromFloats builds a vector by thresholding f at 0.5, the convention used
// when converting model outputs back to bit patterns.
func FromFloats(f []float64) *Vector {
	v := New(len(f))
	for i, x := range f {
		if x >= 0.5 {
			v.Set(i, true)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
//
// lint:inline
func (v *Vector) Len() int { return v.n }

// Bytes returns the backing byte slice. The final byte may contain unused
// high bits, which are kept at zero by all mutating methods.
//
// lint:inline
func (v *Vector) Bytes() []byte { return v.data }

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.data[i>>3]&(1<<(uint(i)&7)) != 0
}

// Set sets bit i to b.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.data[i>>3] |= 1 << (uint(i) & 7)
	} else {
		v.data[i>>3] &^= 1 << (uint(i) & 7)
	}
}

// Flip inverts bit i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.data[i>>3] ^= 1 << (uint(i) & 7)
}

// check guards every per-bit accessor; it must stay inlinable (its cost
// sits just under the budget — the Sprintf call is on the panic branch and
// priced accordingly) or Bit/Set/Flip each grow a real call.
//
// lint:inline
func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{data: make([]byte, len(v.data)), n: v.n}
	copy(c.data, v.data)
	return c
}

// CopyFrom overwrites v with the contents of src. The lengths must match.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic("bitvec: CopyFrom length mismatch")
	}
	copy(v.data, src.data)
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	c := 0
	for _, b := range v.data {
		c += bits.OnesCount8(b)
	}
	return c
}

// Floats expands the vector into a []float64 of 0.0/1.0 values, the input
// representation used by the learning models.
func (v *Vector) Floats() []float64 {
	out := make([]float64, v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			out[i] = 1
		}
	}
	return out
}

// Bits expands the vector into a []int of 0/1 values.
func (v *Vector) Bits() []int {
	out := make([]int, v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			out[i] = 1
		}
	}
	return out
}

// Invert flips every bit of v in place.
func (v *Vector) Invert() {
	for i := range v.data {
		v.data[i] = ^v.data[i]
	}
	v.maskTail()
}

// maskTail zeroes the unused bits of the final byte so popcounts stay exact.
func (v *Vector) maskTail() {
	if r := uint(v.n) & 7; r != 0 && len(v.data) > 0 {
		v.data[len(v.data)-1] &= byte(1<<r) - 1
	}
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for tests
// and debugging of short vectors.
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// Equal reports whether v and o have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.data {
		if v.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Hamming returns the Hamming distance between a and b, which must have
// equal length.
func Hamming(a, b *Vector) int {
	if a.n != b.n {
		panic("bitvec: Hamming length mismatch")
	}
	return HammingBytes(a.data, b.data)
}

// HammingBytes returns the number of differing bits between two equal-length
// byte slices. It is the single hottest function in the simulator.
//
// The loops consume both slices from the front so that every bounds fact the
// compiler needs is a direct consequence of a loop condition: `len(a) >= 8 &&
// len(b) >= 8` proves both Uint64 loads, and the `b = b[:len(a)]` reslice
// between the loops (the only check left, and it runs once per call, outside
// any loop) re-ties the tail lengths so `range a` proves `b[i]`. Indexed
// formulations (`a[i:i+8]` under `i+8 <= n`) all leave residual checks:
// prove does not derive `n-i >= 8` from `i <= n-8` across two variables.
//
// lint:nobce
func HammingBytes(a, b []byte) int {
	if len(a) != len(b) {
		panic("bitvec: HammingBytes length mismatch")
	}
	d := 0
	// 8 bytes at a time without unsafe: binary.LittleEndian.Uint64
	// compiles to a single unaligned load, unlike the manual 8-iteration
	// lane assembly it replaced (see BenchmarkHammingBytesByteLoop).
	for len(a) >= 8 && len(b) >= 8 {
		x := binary.LittleEndian.Uint64(a)
		y := binary.LittleEndian.Uint64(b)
		d += bits.OnesCount64(x ^ y)
		a = a[8:]
		b = b[8:]
	}
	b = b[:len(a)]
	for i := range a {
		d += bits.OnesCount8(a[i] ^ b[i])
	}
	return d
}

// HammingFloats returns the Hamming distance between two float vectors after
// thresholding each element at 0.5.
func HammingFloats(a, b []float64) int {
	if len(a) != len(b) {
		panic("bitvec: HammingFloats length mismatch")
	}
	d := 0
	for i := range a {
		if (a[i] >= 0.5) != (b[i] >= 0.5) {
			d++
		}
	}
	return d
}

// DiffBits returns the indices of bits that differ between a and b.
func DiffBits(a, b *Vector) []int {
	if a.n != b.n {
		panic("bitvec: DiffBits length mismatch")
	}
	var idx []int
	for i, ab := range a.data {
		x := ab ^ b.data[i]
		for x != 0 {
			t := bits.TrailingZeros8(x)
			bit := i*8 + t
			if bit < a.n {
				idx = append(idx, bit)
			}
			x &= x - 1
		}
	}
	return idx
}

// OnesDensity returns the fraction of set bits, or 0 for an empty vector.
func (v *Vector) OnesDensity() float64 {
	if v.n == 0 {
		return 0
	}
	return float64(v.OnesCount()) / float64(v.n)
}

// Slice returns a new vector holding bits [lo, hi) of v.
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: Slice bounds [%d,%d) out of range [0,%d)", lo, hi, v.n))
	}
	out := New(hi - lo)
	for i := lo; i < hi; i++ {
		if v.Bit(i) {
			out.Set(i-lo, true)
		}
	}
	return out
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...*Vector) *Vector {
	total := 0
	for _, v := range vs {
		total += v.n
	}
	out := New(total)
	pos := 0
	for _, v := range vs {
		for i := 0; i < v.n; i++ {
			if v.Bit(i) {
				out.Set(pos+i, true)
			}
		}
		pos += v.n
	}
	return out
}

// ShiftRight returns v rotated right by k bit positions (bits wrap around),
// the transformation used by the MinShift write scheme.
func (v *Vector) ShiftRight(k int) *Vector {
	if v.n == 0 {
		return v.Clone()
	}
	k = ((k % v.n) + v.n) % v.n
	out := New(v.n)
	for i := 0; i < v.n; i++ {
		if v.Bit(i) {
			out.Set((i+k)%v.n, true)
		}
	}
	return out
}
