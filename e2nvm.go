// Package e2nvm is a memory-aware storage layer that improves the energy
// efficiency and write endurance of non-volatile memories (NVMs) by
// steering writes to memory segments whose current content is similar — in
// Hamming distance — to the value being written, so that differential
// writes flip fewer PCM cells.
//
// It is a from-scratch Go reproduction of "E2-NVM: A Memory-Aware Write
// Scheme to Improve Energy Efficiency and Write Endurance of NVMs using
// Variational Autoencoders" (EDBT 2023). The placement decision is made by
// a variational autoencoder jointly trained with K-means clustering over
// the bit images of free memory segments; a cluster-to-memory dynamic
// address pool tracks free segments per cluster; undersized items are
// fitted to the model with configurable padding strategies, including an
// LSTM-based learned padding.
//
// Because real Optane/PCM hardware is not assumed, the library ships a
// cycle- and energy-modeled PCM device simulator that counts bit flips,
// cache-line writes, per-segment and per-bit wear, and models start-gap
// wear leveling. The simulator is also what the benchmark harness uses to
// regenerate the paper's figures (see EXPERIMENTS.md).
//
// # Quick start
//
//	store, err := e2nvm.Open(e2nvm.Config{SegmentSize: 256, NumSegments: 4096})
//	if err != nil { ... }
//	err = store.Put(42, []byte("value"))
//	v, ok, err := store.Get(42)
//	m := store.Metrics() // bit flips, energy, latency, wear
package e2nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/hotcache"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/padding"
	"e2nvm/internal/replica"
	"e2nvm/internal/shard"
)

// Placement selects the write-placement policy.
type Placement int

// Placement policies.
const (
	// PlacementE2NVM steers each write to a free segment with similar
	// content (the paper's scheme). This is the default.
	PlacementE2NVM Placement = iota
	// PlacementArbitrary picks any free segment for new keys and updates
	// in place — the behaviour of conventional stores, kept as a
	// baseline.
	PlacementArbitrary
)

// PadLocation mirrors the paper's padding positions for undersized values.
type PadLocation int

// Padding locations.
const (
	PadEnd PadLocation = iota
	PadBegin
	PadMiddle
	PadEdges
)

// PadType mirrors the paper's padding-content strategies.
type PadType int

// Padding types.
const (
	PadInputBased PadType = iota // Bernoulli with the item's own 1-density (default)
	PadZero
	PadOne
	PadRandom
	PadDatasetBased
	PadMemoryBased
	PadLearned // sliding-window LSTM (§4.1.3)
)

// Config configures Open.
type Config struct {
	// SegmentSize is the NVM segment size in bytes (default 256, one
	// Optane block).
	SegmentSize int
	// NumSegments is the size of the managed memory pool (default 1024),
	// split across Shards.
	NumSegments int

	// Shards hash-partitions the keyspace across this many independent
	// store instances, each owning its own device zone, model, address
	// pool, index, and (in crash-safe mode) redo log, so operations on
	// different shards never contend. Point operations route by key hash;
	// Scan merges the shards' ordered streams; Metrics, Health, Scrub, and
	// Retrain aggregate across shards. Default 1: a single store, the
	// unsharded behaviour.
	Shards int

	// ReplicationFactor replicates each shard across this many devices:
	// one serving leader plus ReplicationFactor-1 followers that apply the
	// leader's redo stream. A Put is acknowledged only once durable on the
	// leader and applied-or-queued on every live follower; when a leader's
	// device wears out, the shard fails over to a follower, and when a
	// shard's last replica dies its keyspace live-migrates into the
	// surviving shards (see Replication and Health). Follower devices are
	// seeded with the same content as their leader but draw independent
	// fault sequences. Replication needs the redo log, so CrashSafe is
	// forced on when ReplicationFactor > 1. Default 1: no replication, the
	// exact unreplicated write path.
	ReplicationFactor int

	// CacheEnabled puts a lock-free hot-key read cache (internal/hotcache,
	// HotRing-style) in front of the serving layers: hot Gets are served
	// from DRAM with zero device reads, Puts and Deletes invalidate
	// write-through before they are acknowledged, and the cache's hotness
	// statistics drive the hot/cold wear-steering placement policy (hot
	// keys to low-wear segment clusters, cold keys to worn ones). Default
	// false: the exact uncached read and placement path.
	CacheEnabled bool
	// EmulateDeviceLatency makes the simulated devices impose their
	// modeled read/write latencies on the host clock (a busy-spin to the
	// modeled nanoseconds), so wall-clock benchmarks measure device time
	// rather than just the simulator's host-side softcosts. Accounting
	// (Stats latency totals) is identical either way. Off by default;
	// tests and experiments keep the fast accounting-only model.
	EmulateDeviceLatency bool

	// CacheBytes bounds the cache's DRAM footprint when CacheEnabled
	// (default 4 MiB).
	CacheBytes int

	// Clusters is the number of content clusters K; 0 selects K with the
	// elbow method.
	Clusters int
	// TrainEpochs is the VAE pretraining epoch count (default 15).
	TrainEpochs int
	// LatentDim is the VAE latent width (default 10, as in the paper).
	LatentDim int
	// HiddenDim is the VAE hidden-layer width (default SegmentSize*2,
	// i.e. a quarter of the input bits, minimum 32). Large segments make
	// the default encoder quadratic-feeling to train; capping the hidden
	// width keeps big-segment stores openable where clustering quality
	// matters less than geometry.
	HiddenDim int

	// Placement selects the placement policy.
	Placement Placement
	// PadLocation and PadType select the padding strategy for values
	// narrower than a segment.
	PadLocation PadLocation
	PadType     PadType

	// WearLevelPeriod is the simulated controller's start-gap swap period
	// ψ (0 disables wear leveling).
	WearLevelPeriod int
	// TrackBitWear enables per-bit wear counters (costly; used for wear
	// CDFs).
	TrackBitWear bool
	// AutoRetrain retrains the model in the background when a cluster's
	// free list runs low.
	AutoRetrain bool
	// CrashSafe routes every write through a redo-log transaction (the
	// role PMDK transactions play in the paper), making writes atomic
	// across torn cache lines at the cost of logging write amplification.
	CrashSafe bool

	// EnduranceWrites overrides the simulated per-cell write endurance
	// budget (default 1e8). Lifetime experiments set it low so wear-out
	// is reachable in minutes.
	EnduranceWrites float64
	// Fault configures the device's seeded cell wear-out process; the
	// zero value disables probabilistic faults.
	Fault FaultConfig
	// VerifyWrites models a controller that reads back after
	// programming, so writes landing on stuck cells fail loudly with
	// ErrWornOut instead of silently storing faulty bits.
	VerifyWrites bool
	// PutRetries bounds how many alternative segments a Put tries when
	// verify-after-write finds the target worn (default 8).
	PutRetries int
	// DisableRetirement keeps worn segments in circulation: writes
	// surface ErrWornOut but nothing is fenced off (baseline mode for
	// lifetime experiments).
	DisableRetirement bool
	// DegradeThreshold is the fraction of data segments that may be
	// retired before allocation failures escalate from ErrNoSpace to
	// ErrDegraded (default 0.1).
	DegradeThreshold float64

	// Seed makes training and simulation deterministic.
	Seed int64

	// SeedContent, when non-nil, initializes every segment's content from
	// the reader-like generator before training; by default segments are
	// filled with uniformly random bytes under Seed.
	SeedContent func(addr int, segment []byte)
}

func (c Config) withDefaults() Config {
	if c.SegmentSize <= 0 {
		c.SegmentSize = 256
	}
	if c.NumSegments <= 0 {
		c.NumSegments = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 1
	}
	if c.ReplicationFactor > 1 {
		c.CrashSafe = true // replication ships the redo log; there must be one
	}
	if c.CacheEnabled && c.CacheBytes <= 0 {
		c.CacheBytes = 4 << 20
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 15
	}
	if c.LatentDim <= 0 {
		c.LatentDim = 10
	}
	return c
}

// shardStarts returns the global segment address where each shard's zone
// begins, plus a final sentinel: shard i owns [starts[i], starts[i+1]).
// The remainder segments go to the first NumSegments%Shards shards.
func (c Config) shardStarts() []int {
	per, rem := c.NumSegments/c.Shards, c.NumSegments%c.Shards
	starts := make([]int, c.Shards+1)
	for i := 0; i < c.Shards; i++ {
		size := per
		if i < rem {
			size++
		}
		starts[i+1] = starts[i] + size
	}
	return starts
}

func (c Config) padLocation() padding.Location {
	switch c.PadLocation {
	case PadBegin:
		return padding.Begin
	case PadMiddle:
		return padding.Middle
	case PadEdges:
		return padding.Edges
	default:
		return padding.End
	}
}

func (c Config) padType() padding.Type {
	switch c.PadType {
	case PadZero:
		return padding.Zero
	case PadOne:
		return padding.One
	case PadRandom:
		return padding.Random
	case PadDatasetBased:
		return padding.DatasetBased
	case PadMemoryBased:
		return padding.MemoryBased
	case PadLearned:
		return padding.Learned
	default:
		return padding.InputBased
	}
}

// deviceConfig builds a device configuration over numSegs segments. The
// fault process seed is offset per device so every device draws an
// independent wear-out sequence; offset 0 (shard 0's leader) keeps the
// configured seed, so a single-shard store is bit-identical to the
// pre-sharding behaviour.
func (c Config) deviceConfig(faultOffset, numSegs int) nvm.Config {
	devCfg := nvm.DefaultConfig(c.SegmentSize, numSegs)
	devCfg.WearLevelPeriod = c.WearLevelPeriod
	devCfg.TrackBitWear = c.TrackBitWear
	if c.EnduranceWrites > 0 {
		devCfg.EnduranceWrites = c.EnduranceWrites
	}
	devCfg.Fault = c.Fault.toInternal()
	devCfg.Fault.Seed += int64(faultOffset)
	devCfg.VerifyWrites = c.VerifyWrites
	devCfg.EmulateLatency = c.EmulateDeviceLatency
	return devCfg
}

// fillShardContent seeds dev with shard shardIdx's initial content.
// SeedContent callbacks receive global addresses, so a seeded workload is
// independent of the shard layout; the fill depends only on shardIdx, so
// a follower filled for the same shard starts byte-identical to its
// leader.
func (c Config) fillShardContent(dev *nvm.Device, shardIdx, start, numSegs int) error {
	if c.SeedContent != nil {
		buf := make([]byte, c.SegmentSize)
		for a := 0; a < numSegs; a++ {
			for i := range buf {
				buf[i] = 0
			}
			c.SeedContent(start+a, buf)
			if err := dev.FillSegment(a, buf); err != nil {
				return err
			}
		}
	} else {
		dev.Fill(rand.New(rand.NewSource(c.Seed + int64(shardIdx))))
	}
	return nil
}

// newShardDevice creates and seeds shard shardIdx's leader device, which
// owns global segments [start, start+numSegs).
func (c Config) newShardDevice(shardIdx, start, numSegs int) (*nvm.Device, error) {
	dev, err := nvm.NewDevice(c.deviceConfig(shardIdx, numSegs))
	if err != nil {
		return nil, err
	}
	if err := c.fillShardContent(dev, shardIdx, start, numSegs); err != nil {
		return nil, err
	}
	return dev, nil
}

// newFollowerDevice creates follower number f (0-based) of shard
// shardIdx: the leader's content seed, so the replica starts
// byte-identical, but a fault seed offset past every leader's, so each
// replica wears out independently.
func (c Config) newFollowerDevice(shardIdx, f, start, numSegs int) (*nvm.Device, error) {
	off := c.Shards + shardIdx*(c.ReplicationFactor-1) + f
	dev, err := nvm.NewDevice(c.deviceConfig(off, numSegs))
	if err != nil {
		return nil, err
	}
	if err := c.fillShardContent(dev, shardIdx, start, numSegs); err != nil {
		return nil, err
	}
	return dev, nil
}

func (c Config) storeOptions(placement kvstore.Placement, keyTemp func(uint64) dap.Temp) kvstore.Options {
	return kvstore.Options{
		Placement:         placement,
		AutoRetrain:       c.AutoRetrain,
		CrashSafe:         c.CrashSafe,
		PutRetries:        c.PutRetries,
		DisableRetirement: c.DisableRetirement,
		DegradeThreshold:  c.DegradeThreshold,
		KeyTemp:           keyTemp,
	}
}

// Store is an E2-NVM-managed persistent key/value store over one or more
// simulated PCM devices. With Config.Shards > 1 the keyspace is
// hash-partitioned across independent shards, each with its own device
// zone, model, pool, index, and redo log. With Config.ReplicationFactor >
// 1 each shard is additionally a replica set with leader failover and
// live keyspace migration (see Replication). All methods are safe for
// concurrent use.
type Store struct {
	router  *shard.Router
	cluster *replica.Cluster // non-nil iff ReplicationFactor > 1; replaces router
	cache   *hotcache.Cache  // non-nil iff Config.CacheEnabled; fronts all reads
	shards  []*kvstore.Store // the original leaders, for per-shard inspection
	devs    []*nvm.Device    // devs[i] is shard i's original leader device
	starts  []int            // global segment ranges: shard i owns [starts[i], starts[i+1])
}

// Open creates the simulated PCM device(s), seeds their contents, trains
// one E2-NVM model per shard, and returns a ready store. Shards open
// concurrently; each shard's training set is its own device zone.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	return openShards(cfg, func(i int, dev *nvm.Device, keyTemp func(uint64) dap.Temp) (*kvstore.Store, error) {
		modelCfg := core.Config{
			K:           cfg.Clusters,
			LatentDim:   cfg.LatentDim,
			HiddenDim:   cfg.HiddenDim,
			Epochs:      cfg.TrainEpochs,
			Seed:        cfg.Seed + int64(i),
			PadExplicit: true,
			PadLocation: cfg.padLocation(),
			PadType:     cfg.padType(),
		}
		return kvstore.Open(dev, modelCfg, cfg.storeOptions(cfg.placement(), keyTemp))
	})
}

func (c Config) placement() kvstore.Placement {
	if c.Placement == PlacementArbitrary {
		return kvstore.PlaceArbitrary
	}
	return kvstore.PlaceE2NVM
}

// openShards builds every shard's device and store (concurrently when
// sharded — model training dominates open time) and assembles the router.
// cfg must already have defaults applied.
func openShards(cfg Config, open func(i int, dev *nvm.Device, keyTemp func(uint64) dap.Temp) (*kvstore.Store, error)) (*Store, error) {
	if cfg.Shards > cfg.NumSegments {
		return nil, fmt.Errorf("%w: %d shards over %d segments: at least one segment per shard required", ErrConfig, cfg.Shards, cfg.NumSegments)
	}
	// The cache is built before the shards so its hotness statistics can be
	// threaded into every store's placement policy at open, avoiding any
	// post-open mutation of shared options.
	var cache *hotcache.Cache
	var keyTemp func(uint64) dap.Temp
	if cfg.CacheEnabled {
		var err error
		cache, err = hotcache.New(hotcache.Config{MaxBytes: cfg.CacheBytes})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
		keyTemp = cacheKeyTemp(cache)
	}
	starts := cfg.shardStarts()
	devs := make([]*nvm.Device, cfg.Shards)
	stores := make([]*kvstore.Store, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dev, err := cfg.newShardDevice(i, starts[i], starts[i+1]-starts[i])
			if err != nil {
				errs[i] = err
				return
			}
			st, err := open(i, dev, keyTemp)
			if err != nil {
				errs[i] = err
				return
			}
			devs[i], stores[i] = dev, st
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if cfg.ReplicationFactor > 1 {
		cluster, err := cfg.newCluster(stores, starts, keyTemp)
		if err != nil {
			return nil, err
		}
		return &Store{cluster: cluster, cache: cache, shards: stores, devs: devs, starts: starts}, nil
	}
	router, err := shard.New(stores)
	if err != nil {
		return nil, err
	}
	return &Store{router: router, cache: cache, shards: stores, devs: devs, starts: starts}, nil
}

// Put stores value under key (the paper's PUT/UPDATE write path), routed
// to the key's shard. On a replicated store a nil return additionally
// means the write is durable on the shard's leader and applied or queued
// on every live follower. With the cache enabled, the key's cached value
// is invalidated after the store write and before Put returns, so a
// return from Put is the acknowledgement after which no read can serve
// the overwritten value.
func (s *Store) Put(key uint64, value []byte) error {
	var err error
	if s.cluster != nil {
		err = s.cluster.Put(key, value)
	} else {
		err = s.router.Put(key, value)
	}
	if s.cache != nil {
		s.cache.Invalidate(key)
	}
	return err
}

// PutBatch stores len(keys) key/value pairs in one call: keys group per
// shard (SplitMix64, no extra allocations), each shard's lock is taken
// once for its whole sub-batch, and model inference runs on the kernel's
// blocked multi-sample path (DESIGN.md §11). values must be index-aligned
// with keys. Pairs apply in index order — a later duplicate key wins,
// exactly as sequential Puts would — and one pair's failure does not
// abort the rest; the returned error is the first failure by index. Pass
// errs (same length) to receive per-item outcomes, or nil to skip them.
func (s *Store) PutBatch(keys []uint64, values [][]byte, errs []error) error {
	var err error
	if s.cluster != nil {
		err = s.clusterPutBatch(keys, values, errs)
	} else {
		err = s.router.PutBatch(keys, values, errs)
	}
	if s.cache != nil {
		// Invalidate every written key before the batch is acknowledged.
		for _, k := range keys {
			s.cache.Invalidate(k)
		}
	}
	return err
}

// GetBatch reads len(keys) values in one call, grouping keys per shard so
// each shard's lock is taken once. Value i lands in dsts[i]'s backing
// array (grown only when too small, like GetInto) with its liveness in
// oks[i] — a missing key is oks[i] = false, not an error. dsts and oks
// must be index-aligned with keys; errs, when non-nil, receives per-item
// read errors, and the returned error is the first failure by index.
func (s *Store) GetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if s.cache != nil {
		return s.cachedGetBatch(keys, dsts, oks, errs)
	}
	return s.uncachedGetBatch(keys, dsts, oks, errs)
}

// Get returns the value stored under key as a fresh caller-owned copy.
func (s *Store) Get(key uint64) ([]byte, bool, error) {
	if s.cache != nil {
		return s.cachedGetInto(key, nil)
	}
	return s.uncachedGetInto(key, nil)
}

// GetInto is Get writing the value into dst's backing array (grown only
// when too small), for callers that reuse one buffer across reads. It
// returns the resulting slice, which may share storage with dst. With the
// cache enabled, a hot key is served straight from DRAM.
func (s *Store) GetInto(key uint64, dst []byte) ([]byte, bool, error) {
	if s.cache != nil {
		return s.cachedGetInto(key, dst)
	}
	return s.uncachedGetInto(key, dst)
}

// Delete removes key, recycling its segment into its shard's address pool.
// Like Put, the cached value (if any) is invalidated before Delete returns.
func (s *Store) Delete(key uint64) (bool, error) {
	var ok bool
	var err error
	if s.cluster != nil {
		ok, err = s.cluster.Delete(key)
	} else {
		ok, err = s.router.Delete(key)
	}
	if s.cache != nil {
		s.cache.Invalidate(key)
	}
	return ok, err
}

// Scan visits keys in [lo, hi] in ascending order until fn returns false,
// merging shards' ordered streams when sharded. The callback runs with no
// store lock held, so it may call back into the store; the value slice is
// only valid during the callback — copy it to retain it.
func (s *Store) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if s.cluster != nil {
		return s.cluster.Scan(lo, hi, fn)
	}
	return s.router.Scan(lo, hi, fn)
}

// Len returns the number of live keys across all shards.
func (s *Store) Len() int {
	if s.cluster != nil {
		return s.cluster.Len()
	}
	return s.router.Len()
}

// MaxValue returns the largest storable value in bytes.
func (s *Store) MaxValue() int { return s.shards[0].MaxValue() }

// Shards returns the number of independent shards serving the keyspace.
func (s *Store) Shards() int {
	if s.cluster != nil {
		return s.cluster.N()
	}
	return s.router.N()
}

// Clusters returns the number of content clusters the model learned (the
// first shard's; with elbow-selected K, shards may differ).
func (s *Store) Clusters() int { return s.shards[0].Model().K() }

// NeedsRetrain reports whether any shard's cluster free list is running
// low.
func (s *Store) NeedsRetrain() bool {
	if s.cluster != nil {
		return s.cluster.NeedsRetrain()
	}
	return s.router.NeedsRetrain()
}

// Retrain synchronously retrains every shard's model on its device zone's
// current contents (concurrently across shards) and rebuilds the address
// pools. Serving continues while a shard retrains; see the kvstore layer
// for the exact snapshot contract.
func (s *Store) Retrain() error {
	if s.cluster != nil {
		return s.cluster.Retrain()
	}
	return s.router.Retrain()
}

// Quiesce blocks until in-flight background work — every shard's async
// retrain, and on a replicated store any live keyspace migration — has
// finished. Call it before tearing the store down, or in tests that
// assert on post-retrain or post-migration state.
func (s *Store) Quiesce() {
	if s.cluster != nil {
		s.cluster.Quiesce()
		return
	}
	s.router.Quiesce()
}

// Metrics is a snapshot of device- and store-level activity.
type Metrics struct {
	// Writes and Reads are device operation counts.
	Writes, Reads uint64
	// BitsFlipped is the number of PCM cells actually programmed; the
	// paper's headline metric. BitsWritten is the payload presented.
	BitsFlipped, BitsWritten uint64
	// EnergyPJ is the modeled device energy in picojoules.
	EnergyPJ float64
	// AvgWriteLatencyNs is the mean modeled write latency.
	AvgWriteLatencyNs float64
	// LinesWritten/LinesSkipped count 64 B cache lines the controller
	// wrote vs skipped as unchanged.
	LinesWritten, LinesSkipped uint64
	// MaxSegmentWrites is the hottest segment's write count.
	MaxSegmentWrites uint64
	// WearLevelMoves counts start-gap segment moves.
	WearLevelMoves uint64
	// Fallbacks counts placements served by a non-predicted cluster.
	Fallbacks uint64
	// Retrains counts completed model retrains.
	Retrains int
	// WornWrites counts writes that hit worn-out cells and were retried
	// or refused; RetiredSegments counts segments taken out of
	// circulation; Relocations counts live records Scrub moved to
	// healthy segments.
	WornWrites, RetiredSegments, Relocations uint64
	// StuckBits is the number of cells currently stuck device-wide;
	// FailedSegments counts segments fenced entirely.
	StuckBits, FailedSegments uint64
	// FlipsPerDataBit is BitsFlipped / BitsWritten (0 when nothing was
	// written) — Figure 12's metric.
	FlipsPerDataBit float64
	// Failovers counts leader promotions on a replicated store, and
	// MigratedRecords counts records live-migrated out of shards whose
	// replica sets died entirely. Both stay 0 when ReplicationFactor is 1.
	Failovers       uint64
	MigratedRecords uint64
	// CacheHits/CacheMisses count facade reads served from (resp. falling
	// through) the hot-key cache; CacheEvictions counts live values the
	// byte budget dropped. All stay 0 when CacheEnabled is false, and in
	// ShardMetrics entries (the cache fronts the whole keyspace, not one
	// shard).
	CacheHits, CacheMisses, CacheEvictions uint64
	// SteeredPlacements counts writes the hot/cold wear policy placed on
	// a different cluster than the model predicted (distinct from
	// Fallbacks, which counts empty-free-list detours).
	SteeredPlacements uint64
}

// metricsFrom derives one Metrics snapshot from raw device and store
// counters.
func metricsFrom(ds nvm.Stats, ss kvstore.Stats) Metrics {
	m := Metrics{
		Writes:            ds.Writes,
		Reads:             ds.Reads,
		BitsFlipped:       ds.BitsFlipped,
		BitsWritten:       ds.BitsWritten,
		EnergyPJ:          ds.EnergyPJ,
		LinesWritten:      ds.LinesWritten,
		LinesSkipped:      ds.LinesSkipped,
		MaxSegmentWrites:  ds.MaxSegmentWrites,
		WearLevelMoves:    ds.WearLevelMoves,
		Fallbacks:         ss.Fallbacks,
		SteeredPlacements: ss.Steered,
		Retrains:          ss.Retrains,
		WornWrites:        ss.WornWrites,
		RetiredSegments:   ss.Retired,
		Relocations:       ss.Relocations,
		StuckBits:         ds.StuckBits,
		FailedSegments:    ds.FailedSegments,
	}
	if ds.Writes > 0 {
		m.AvgWriteLatencyNs = ds.WriteLatencyNs / float64(ds.Writes)
	}
	if ds.BitsWritten > 0 {
		m.FlipsPerDataBit = float64(ds.BitsFlipped) / float64(ds.BitsWritten)
	}
	return m
}

// Metrics returns a snapshot of cumulative counters, aggregated over all
// shards: sums for the additive counters, the maximum for
// MaxSegmentWrites, a write-count-weighted mean for AvgWriteLatencyNs, and
// total-flips/total-bits for FlipsPerDataBit. Use ShardMetrics for the
// per-shard breakdown.
func (s *Store) Metrics() Metrics {
	if s.cluster != nil {
		return s.clusterMetrics()
	}
	var ds nvm.Stats
	var ss kvstore.Stats
	for i, dev := range s.devs {
		d := dev.Stats()
		ds.Writes += d.Writes
		ds.Reads += d.Reads
		ds.BitsFlipped += d.BitsFlipped
		ds.BitsWritten += d.BitsWritten
		ds.EnergyPJ += d.EnergyPJ
		ds.WriteLatencyNs += d.WriteLatencyNs
		ds.LinesWritten += d.LinesWritten
		ds.LinesSkipped += d.LinesSkipped
		ds.WearLevelMoves += d.WearLevelMoves
		ds.StuckBits += d.StuckBits
		ds.FailedSegments += d.FailedSegments
		if d.MaxSegmentWrites > ds.MaxSegmentWrites {
			ds.MaxSegmentWrites = d.MaxSegmentWrites
		}
		st := s.shards[i].Stats()
		ss.Fallbacks += st.Fallbacks
		ss.Steered += st.Steered
		ss.Retrains += st.Retrains
		ss.WornWrites += st.WornWrites
		ss.Retired += st.Retired
		ss.Relocations += st.Relocations
	}
	m := metricsFrom(ds, ss)
	s.addCacheMetrics(&m)
	return m
}

// addCacheMetrics folds the hot-key cache counters into an aggregate
// snapshot; a no-op when the cache is disabled.
func (s *Store) addCacheMetrics(m *Metrics) {
	if s.cache == nil {
		return
	}
	cs := s.cache.Stats()
	m.CacheHits, m.CacheMisses, m.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
}

// ShardMetrics returns each shard's own counter snapshot, index-aligned
// with the shard layout (shard i serves the keys hashing to it and owns
// global segments [i's zone]).
func (s *Store) ShardMetrics() []Metrics {
	if s.cluster != nil {
		return s.clusterShardMetrics()
	}
	out := make([]Metrics, len(s.devs))
	for i, dev := range s.devs {
		out[i] = metricsFrom(dev.Stats(), s.shards[i].Stats())
	}
	return out
}

// ResetMetrics zeroes the cumulative counters on every shard — the device
// counters, the store-level ones (Fallbacks, Retrains, WornWrites,
// RetiredSegments, Relocations, ...), the cache counters, and on a
// replicated store the cluster's failover and migration counters — so
// benchmarks that reset between phases measure only their own activity.
// Content, wear state, and cache residency are preserved.
func (s *Store) ResetMetrics() {
	if s.cache != nil {
		s.cache.ResetCounters()
	}
	if s.cluster != nil {
		for _, dev := range s.cluster.Devices() {
			dev.ResetStats()
		}
		for _, st := range s.cluster.ServingStores() {
			st.ResetStats()
		}
		s.cluster.ResetCounters()
		return
	}
	for _, dev := range s.devs {
		dev.ResetStats()
	}
	s.router.ResetStats()
}

// BitWear returns a copy of the per-bit flip counters in global segment
// order, or nil when Config.TrackBitWear was false. On a replicated store
// each shard's zone reports its current serving device (the original
// leader once the shard has drained); follower wear is aggregated in
// Metrics.
func (s *Store) BitWear() []uint32 {
	if s.cluster == nil && len(s.devs) == 1 {
		return s.devs[0].BitWear()
	}
	var out []uint32
	for i := range s.devs {
		w := s.servingDevice(i).BitWear()
		if w == nil {
			return nil
		}
		out = append(out, w...)
	}
	return out
}

// SegmentWrites returns per-segment write-operation counts in global
// segment order (per serving device when replicated, like BitWear).
func (s *Store) SegmentWrites() []uint64 {
	if s.cluster == nil && len(s.devs) == 1 {
		return s.devs[0].SegmentWrites()
	}
	var out []uint64
	for i := range s.devs {
		out = append(out, s.servingDevice(i).SegmentWrites()...)
	}
	return out
}

// servingDevice returns the device currently backing shard i: the
// original leader device, or — replicated — whichever replica serves the
// shard now, falling back to the original leader once the shard drained.
func (s *Store) servingDevice(i int) *nvm.Device {
	if s.cluster != nil {
		if dev := s.cluster.LeaderDevice(i); dev != nil {
			return dev
		}
	}
	return s.devs[i]
}

// String summarizes the store configuration.
func (s *Store) String() string {
	if s.cluster != nil {
		return fmt.Sprintf("e2nvm.Store{shards: %d, rf: %d, segments: %d×%dB, k: %d}",
			len(s.devs), s.ReplicationFactor(), s.starts[len(s.starts)-1], s.devs[0].SegmentSize(), s.Clusters())
	}
	if len(s.devs) == 1 {
		return fmt.Sprintf("e2nvm.Store{segments: %d×%dB, k: %d}",
			s.devs[0].NumSegments(), s.devs[0].SegmentSize(), s.Clusters())
	}
	return fmt.Sprintf("e2nvm.Store{shards: %d, segments: %d×%dB, k: %d}",
		len(s.devs), s.starts[len(s.starts)-1], s.devs[0].SegmentSize(), s.Clusters())
}
