package gcdiag

import (
	"regexp"
	"strconv"
	"strings"
)

// posRe splits one diagnostic line into position and message. The message
// group keeps leading whitespace: -m=2 explanation chains are emitted as
// indented continuation lines under the same position prefix.
var posRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

var (
	foundRe     = regexp.MustCompile(`^Found (IsInBounds|IsSliceInBounds)$`)
	canRe       = regexp.MustCompile(`^can inline (\S+)(?: with cost (\d+))?(?: as:.*)?$`)
	cannotRe    = regexp.MustCompile(`^cannot inline (\S+): (.+)$`)
	costRe      = regexp.MustCompile(`cost (\d+) exceeds budget (\d+)`)
	escapeRe    = regexp.MustCompile(`^(.*) escapes to heap:?$`)
	movedRe     = regexp.MustCompile(`^moved to heap: (.+)$`)
	inliningRe  = regexp.MustCompile(`^inlining (?:self-recursive )?call to (\S+)`)
	noEscapeRe  = regexp.MustCompile(` does not escape$`)
	leakParamRe = regexp.MustCompile(`^(?:leaking param|parameter .+ leaks)`)
)

// Parse reads compiler diagnostics (the combined stderr of a go build run
// with GCFlags) into a Report. It is line-oriented and forgiving: lines
// it does not recognize — package headers, "does not escape" notes,
// "leaking param" flow summaries, wording drift between Go releases — are
// skipped, so an unknown or empty stream degrades to an empty Report
// instead of failing.
func Parse(output string) *Report {
	r := &Report{}
	// Dedup: -m=2 prints each escape twice (the detailed chain, then a
	// bare summary), and the BCE pass reports an inlined callee's checks
	// once per inlined copy at the same source position.
	type escKey struct {
		pos  Position
		what string
	}
	escSeen := map[escKey]int{}
	boundSeen := map[Bound]bool{}
	lastEsc := -1 // index into r.Escapes of the open explanation chain

	for _, line := range strings.Split(output, "\n") {
		m := posRe.FindStringSubmatch(line)
		if m == nil {
			lastEsc = -1
			continue
		}
		line0, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		pos := Position{File: m[1], Line: line0, Col: col}
		msg := m[4]

		// Indented continuation: the flow chain of the escape above.
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			if lastEsc >= 0 {
				r.Escapes[lastEsc].Flow = append(r.Escapes[lastEsc].Flow, strings.TrimSpace(msg))
			}
			continue
		}
		lastEsc = -1

		switch {
		case foundRe.MatchString(msg):
			b := Bound{Pos: pos, Kind: foundRe.FindStringSubmatch(msg)[1]}
			if !boundSeen[b] {
				boundSeen[b] = true
				r.Bounds = append(r.Bounds, b)
			}

		case inliningRe.MatchString(msg):
			// Inlined call sites are not findings, but escapes and bounds
			// checks of the inlined body are reported at these positions, so
			// consumers need the position → callee mapping to attribute them.
			r.Inlined = append(r.Inlined, InlinedCall{Pos: pos, Name: inliningRe.FindStringSubmatch(msg)[1]})

		case noEscapeRe.MatchString(msg), leakParamRe.MatchString(msg):
			// Recognized but not enforced: proven non-escapes and
			// parameter-flow summaries.

		case movedRe.MatchString(msg):
			what := movedRe.FindStringSubmatch(msg)[1]
			k := escKey{pos, what}
			if _, dup := escSeen[k]; !dup {
				escSeen[k] = len(r.Escapes)
				r.Escapes = append(r.Escapes, Escape{Pos: pos, What: what, Moved: true})
				lastEsc = len(r.Escapes) - 1
			}

		case escapeRe.MatchString(msg):
			what := escapeRe.FindStringSubmatch(msg)[1]
			k := escKey{pos, what}
			if i, dup := escSeen[k]; dup {
				lastEsc = i // a repeat may still carry the chain
				continue
			}
			escSeen[k] = len(r.Escapes)
			r.Escapes = append(r.Escapes, Escape{Pos: pos, What: what})
			lastEsc = len(r.Escapes) - 1

		case canRe.MatchString(msg):
			g := canRe.FindStringSubmatch(msg)
			cost := -1
			if g[2] != "" {
				cost, _ = strconv.Atoi(g[2])
			}
			r.Inlines = append(r.Inlines, Inline{Pos: pos, Name: g[1], CanInline: true, Cost: cost})

		case cannotRe.MatchString(msg):
			g := cannotRe.FindStringSubmatch(msg)
			d := Inline{Pos: pos, Name: g[1], Cost: -1, Reason: g[2]}
			if cb := costRe.FindStringSubmatch(g[2]); cb != nil {
				d.Cost, _ = strconv.Atoi(cb[1])
				d.Budget, _ = strconv.Atoi(cb[2])
			}
			r.Inlines = append(r.Inlines, d)
		}
	}
	return r
}
