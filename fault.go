package e2nvm

import (
	"errors"

	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/replica"
)

// ErrConfig marks Open/Load failures caused by an invalid or inconsistent
// Config (shard/segment geometry, model width mismatches). Test with
// errors.Is.
var ErrConfig = errors.New("e2nvm: invalid configuration")

// Error sentinels surfaced by Store operations, re-exported so callers can
// use errors.Is without importing internal packages.
var (
	// ErrWornOut marks a write refused (or verified bad) because the
	// target segment's cells are worn out.
	ErrWornOut = kvstore.ErrWornOut
	// ErrDegraded is returned instead of a bare ErrNoSpace once segment
	// retirement has consumed more than Config.DegradeThreshold of the
	// device. It wraps ErrNoSpace.
	ErrDegraded = kvstore.ErrDegraded
	// ErrNoSpace is returned when no free segment remains.
	ErrNoSpace = kvstore.ErrNoSpace
	// ErrCorrupt is returned by reads whose stored record fails its
	// checksum — the medium destroyed the data, but the store never
	// serves wrong bytes.
	ErrCorrupt = kvstore.ErrCorrupt
	// ErrValueTooLarge is returned by Put for values over MaxValue.
	ErrValueTooLarge = kvstore.ErrValueTooLarge
	// ErrBadAddress is returned by InjectStuckAt and FailSegment for a
	// global segment address outside the store.
	ErrBadAddress = nvm.ErrBadAddress
	// ErrShardDown is returned by writes to a replicated shard whose every
	// replica has died with no healthy shards left to migrate into. Reads
	// still serve the dead shard's surviving content.
	ErrShardDown = replica.ErrGroupDown
)

// FaultConfig configures the simulated device's cell wear-out process. The
// zero value disables probabilistic faults; segments can still be failed
// deterministically with Store.InjectStuckAt and Store.FailSegment.
type FaultConfig struct {
	// Seed makes the fault process deterministic (independent of
	// Config.Seed so workloads can be replayed against different fault
	// draws).
	Seed int64
	// ProbPerWrite is the chance that a write to a segment past its
	// wear-out onset sticks additional cells.
	ProbPerWrite float64
	// OnsetFraction is the fraction of EnduranceWrites a segment must
	// consume before faults can occur (default 0.85).
	OnsetFraction float64
	// BitsPerFault is how many cells stick per fault event (default 1).
	BitsPerFault int
}

func (f FaultConfig) toInternal() nvm.FaultConfig {
	return nvm.FaultConfig{
		Seed:          f.Seed,
		ProbPerWrite:  f.ProbPerWrite,
		OnsetFraction: f.OnsetFraction,
		BitsPerFault:  f.BitsPerFault,
	}
}

// Health is a snapshot of the store's capacity state under wear-out.
type Health struct {
	DataSegments int  // segments in the data zone
	Retired      int  // segments permanently out of circulation
	LiveKeys     int  // records reachable through the index
	PoolFree     int  // free segments available for placement
	Degraded     bool // retirement has crossed Config.DegradeThreshold

	// Replication state; zero values when ReplicationFactor is 1. State is
	// the shard's lifecycle ("active", "draining", "drained", "down") in
	// per-shard snapshots and empty in the aggregate; ReplicaLag is the
	// worst follower backlog (entries acknowledged but not yet applied).
	State         string
	ReplicaLag    uint64
	Failovers     uint64 // completed leader promotions
	DrainedShards int    // shards whose keyspace migrated away entirely

	// Hot-key cache residency; zero values when CacheEnabled is false and
	// in per-shard snapshots (the cache fronts the whole keyspace).
	CacheEntries int   // live cached values
	CacheBytes   int64 // budgeted DRAM footprint (values + overhead)
}

func healthFrom(h kvstore.Health) Health {
	return Health{
		DataSegments: h.DataSegments,
		Retired:      h.Retired,
		LiveKeys:     h.LiveKeys,
		PoolFree:     h.PoolFree,
		Degraded:     h.Degraded,
	}
}

// Health reports the store's current capacity state, aggregated over all
// shards. Degraded is true when any shard has crossed its threshold — keys
// hashing to a degraded shard fail allocation even while others have room.
// On a replicated store only the shards still serving contribute, and the
// replication fields summarize failover and migration activity.
func (s *Store) Health() Health {
	var h Health
	if s.cluster != nil {
		h = s.clusterHealth()
	} else {
		h = healthFrom(s.router.Health())
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		h.CacheEntries, h.CacheBytes = cs.Entries, cs.Bytes
	}
	return h
}

// ShardHealth returns each shard's own capacity snapshot. On a replicated
// store each entry carries the shard's lifecycle state and follower lag; a
// drained shard reports only those (its records now live on other shards).
func (s *Store) ShardHealth() []Health {
	if s.cluster != nil {
		return s.clusterShardHealth()
	}
	per := s.router.HealthPerShard()
	out := make([]Health, len(per))
	for i, h := range per {
		out[i] = healthFrom(h)
	}
	return out
}

// ScrubReport summarizes one incremental Scrub pass.
type ScrubReport struct {
	Scanned   int // segments examined
	Relocated int // live records moved off failing segments
	Retired   int // segments newly taken out of circulation
	Lost      int // indexed records whose data is already unrecoverable
}

// Scrub examines up to n segments for latent cell faults, relocating live
// records off failing segments and retiring them. Calling it periodically
// (a media scrubber) turns silent wear into bounded capacity loss before
// the next Put trips over it. When sharded, the budget is split evenly
// across shards and each shard keeps its own sweep cursor. It is a no-op
// when retirement is disabled.
func (s *Store) Scrub(n int) (ScrubReport, error) {
	if s.cluster != nil {
		r, err := s.cluster.Scrub(n)
		return ScrubReport{
			Scanned:   r.Scanned,
			Relocated: r.Relocated,
			Retired:   r.Retired,
			Lost:      r.Lost,
		}, err
	}
	r, err := s.router.Scrub(n)
	return ScrubReport{
		Scanned:   r.Scanned,
		Relocated: r.Relocated,
		Retired:   r.Retired,
		Lost:      r.Lost,
	}, err
}

// shardOfSegment maps a global segment address to the device currently
// backing its shard — on a replicated store, the shard's serving replica,
// so fault injection lands on whichever device failover has put in charge
// — and that device's local address.
func (s *Store) shardOfSegment(addr int) (*nvm.Device, int, error) {
	if addr < 0 || addr >= s.starts[len(s.starts)-1] {
		return nil, 0, nvm.ErrBadAddress
	}
	for i := 1; i < len(s.starts); i++ {
		if addr < s.starts[i] {
			return s.servingDevice(i - 1), addr - s.starts[i-1], nil
		}
	}
	return nil, 0, nvm.ErrBadAddress
}

// InjectStuckAt deterministically sticks one cell of a segment at its
// current value, for fault-injection tests and experiments. addr is a
// global segment address (shards partition the segment range in order).
func (s *Store) InjectStuckAt(addr, bit int) error {
	dev, local, err := s.shardOfSegment(addr)
	if err != nil {
		return err
	}
	return dev.InjectStuckAt(local, bit)
}

// FailSegment fences a whole segment: reads still serve its frozen
// content, but every future write is refused with ErrWornOut. addr is a
// global segment address.
func (s *Store) FailSegment(addr int) error {
	dev, local, err := s.shardOfSegment(addr)
	if err != nil {
		return err
	}
	return dev.FailSegment(local)
}
