package experiments

import (
	"fmt"

	"e2nvm/internal/energy"
	"e2nvm/internal/kmeans"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/vae"
	"e2nvm/internal/workload"
)

func init() { register("fig08", Fig8) }

// Fig8 reproduces Figure 8: the Sum-of-Squared-Errors elbow curve and the
// "energy valley" over the number of clusters K on CIFAR-like data. NVM
// write energy falls with K (tighter clusters → fewer flips) while model
// energy rises with K, so total energy bottoms out at an intermediate K,
// and the SSE elbow lands near the valley.
func Fig8(cfg RunConfig) (*Result, error) {
	const segSize = 32
	n := cfg.scaleInt(500, 120)
	ks := []int{2, 3, 4, 5, 6, 8, 10, 12, 14}

	ds := workload.CIFARLike(2*n, segSize*8, cfg.Seed)
	train := ds.Items[:n]
	test := toBytesAll(ds.Items[n:], segSize)
	seedImgs := toBytesAll(train, segSize)

	// The VAE is K-independent: train it once, then vary the clustering.
	v, err := vae.New(vae.Config{InputDim: segSize * 8, LatentDim: 10, Beta: 0.1, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if _, err := v.Fit(train, vae.FitOptions{Epochs: 12, BatchSize: 32}); err != nil {
		return nil, err
	}
	latents := v.EncodeAll(train)

	table := stats.NewTable("K", "SSE", "nvm_energy_pJ/write", "model_energy_pJ/write", "total_pJ/write")
	var sses []float64
	var totals []float64
	for _, k := range ks {
		kcfg := kmeans.NewConfig(k)
		kcfg.Seed = cfg.Seed
		km, err := kmeans.Fit(latents, kcfg)
		if err != nil {
			return nil, err
		}
		sses = append(sses, km.SSE)

		dev, err := seededDevice(nvm.DefaultConfig(segSize, n), seedImgs)
		if err != nil {
			return nil, err
		}
		model := &vaeKMeansPredictor{v: v, km: km}
		p, err := newClusterPlacer(model, k, dev, addrRange(n))
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		if _, err := runPlacement(dev, p, test, n/2); err != nil {
			return nil, err
		}
		s := dev.Stats()
		nvmPerWrite := s.EnergyPJ / float64(s.Writes)

		// Model energy per write: the K-means training cost amortized
		// over a realistic retraining horizon (a trained model serves
		// many more writes than this experiment issues) plus the
		// K-dependent centroid-scan compute per prediction. The
		// K-independent encoder cost is excluded — it shifts every K's
		// total equally and would only obscure the valley.
		prof := energy.New()
		horizon := 40 * len(test)
		trainFLOPs := float64(km.Iterations) * float64(n) * float64(k) * float64(v.LatentDim()) * 2
		prof.AddCompute(trainFLOPs * float64(len(test)) / float64(horizon))
		prof.AddCompute(2 * float64(k) * float64(v.LatentDim()) * float64(len(test)))
		modelPerWrite := prof.EnergyPJ() / float64(len(test))

		table.AddRow(k, km.SSE, nvmPerWrite, modelPerWrite, nvmPerWrite+modelPerWrite)
		totals = append(totals, nvmPerWrite+modelPerWrite)
	}
	elbow := ks[kmeans.ElbowPoint(sses)]
	valley := ks[argMin(totals)]
	return &Result{
		ID:    "fig08",
		Title: "SSE elbow vs energy valley over K (CIFAR-like)",
		Table: table,
		Notes: []string{
			fmt.Sprintf("elbow K = %d, energy-valley K = %d (paper: elbow is a good estimate of the valley)", elbow, valley),
			fmt.Sprintf("%d training segments of %d B", n, segSize),
		},
	}, nil
}

type vaeKMeansPredictor struct {
	v  *vae.Model
	km *kmeans.Model
}

func (p *vaeKMeansPredictor) PredictBytes(b []byte) (int, error) {
	bits := make([]float64, len(b)*8)
	for i := range bits {
		if b[i>>3]&(1<<(uint(i)&7)) != 0 {
			bits[i] = 1
		}
	}
	return p.km.Predict(p.v.Encode(bits)), nil
}

func argMin(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}
