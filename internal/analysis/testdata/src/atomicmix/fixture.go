// Package atomicmix is a golden fixture for the atomicmix analyzer: an
// atomic/plain mixed field, a guarded/bare mixed field whose guarded side
// is provable only inter-procedurally, the construction exemption, and
// the allow escape.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// Counter.n is updated atomically on the fast path but read plainly in
// Snapshot: the classic torn-stats mix.
type Counter struct {
	n uint64
}

// Inc is the atomic side.
func (c *Counter) Inc() { atomic.AddUint64(&c.n, 1) }

// Snapshot is the plain side.
func (c *Counter) Snapshot() uint64 {
	return c.n // want "field atomicmix\.Counter\.n mixes sync/atomic operations"
}

// Store follows the mu convention. sizeLocked never locks, but every call
// reaches it through Size's critical section, so the engine proves its
// access guarded; Peek's read is the bare half of the mix.
type Store struct {
	mu   sync.Mutex
	size int
}

// Grow locks locally.
func (s *Store) Grow(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.size += n
}

// Size reaches the field through a helper — guarded only via the
// inter-procedural held-set propagation.
func (s *Store) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeLocked()
}

func (s *Store) sizeLocked() int { return s.size }

// Peek reads the guarded field with no lock anywhere in its context.
func (s *Store) Peek() int {
	return s.size // want "mu-guarded field atomicmix\.Store\.size is accessed without atomicmix\.Store\.mu held"
}

// Hint reads bare too, but deliberately: the allow suppresses this site
// without hiding Peek's finding.
func (s *Store) Hint() int {
	return s.size // lint:allow atomicmix — approximate read, a torn value is acceptable here
}

// NewStore mutates the field through a function-local value before any
// other goroutine can see it: construction is exempt.
func NewStore() *Store {
	s := &Store{}
	s.size = 1
	return s
}
