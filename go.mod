module e2nvm

go 1.22
