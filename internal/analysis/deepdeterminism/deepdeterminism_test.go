package deepdeterminism

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestDeepDeterminism(t *testing.T) {
	// No package roots: the fixture marks its entry points with the doc
	// marker instead.
	RootPackages = nil
	analysistest.RunProgram(t, "../testdata", Analyzer, "deepdeterminism")
}
