package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// clusteredData generates n points around k well-separated centers.
func clusteredData(r *rand.Rand, n, k, dim int, spread float64) ([][]float64, []int) {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = float64(c*10) + r.Float64()
		}
	}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		c := r.Intn(k)
		labels[i] = c
		row := make([]float64, dim)
		for j := range row {
			row[j] = centers[c][j] + r.NormFloat64()*spread
		}
		data[i] = row
	}
	return data, labels
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, NewConfig(2)); err == nil {
		t.Fatal("expected error on empty data")
	}
	data := [][]float64{{1, 2}}
	if _, err := Fit(data, NewConfig(2)); err == nil {
		t.Fatal("expected error when K > n")
	}
	if _, err := Fit(data, NewConfig(0)); err == nil {
		t.Fatal("expected error when K = 0")
	}
	bad := [][]float64{{1, 2}, {1}}
	if _, err := Fit(bad, NewConfig(1)); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

func TestRecoverPlantedClusters(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data, labels := clusteredData(r, 300, 3, 4, 0.2)
	cfg := NewConfig(3)
	cfg.Seed = 1
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same planted label must land in the same
	// predicted cluster (clusters are far apart relative to spread).
	rep := map[int]int{}
	for i, x := range data {
		c := m.Predict(x)
		if want, ok := rep[labels[i]]; ok {
			if c != want {
				t.Fatalf("planted cluster %d split between %d and %d", labels[i], want, c)
			}
		} else {
			rep[labels[i]] = c
		}
	}
	if len(rep) != 3 {
		t.Fatalf("expected 3 distinct predicted clusters, got %d", len(rep))
	}
}

func TestSSEDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data, _ := clusteredData(r, 200, 4, 3, 0.5)
	sses, err := SSECurve(data, []int{1, 2, 4, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sses); i++ {
		if sses[i] > sses[i-1]*1.05 {
			t.Fatalf("SSE not (roughly) decreasing: %v", sses)
		}
	}
}

func TestElbowFindsPlantedK(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _ := clusteredData(r, 400, 4, 3, 0.3)
	ks := []int{1, 2, 3, 4, 5, 6, 7}
	sses, err := SSECurve(data, ks, 2)
	if err != nil {
		t.Fatal(err)
	}
	elbow := ks[ElbowPoint(sses)]
	if elbow < 3 || elbow > 5 {
		t.Fatalf("elbow K = %d, want near planted 4 (SSEs %v)", elbow, sses)
	}
}

func TestElbowPointShortInput(t *testing.T) {
	if ElbowPoint([]float64{5}) != 0 {
		t.Fatal("single-entry elbow should be 0")
	}
	if ElbowPoint([]float64{5, 3}) != 1 {
		t.Fatal("two-entry elbow should be last")
	}
}

func TestPredictNearestCentroid(t *testing.T) {
	m := &Model{K: 2, Centroids: [][]float64{{0, 0}, {10, 10}}}
	if m.Predict([]float64{1, 1}) != 0 {
		t.Fatal("predicted wrong centroid")
	}
	if m.Predict([]float64{9, 9}) != 1 {
		t.Fatal("predicted wrong centroid")
	}
	if d := m.Distance([]float64{0, 3}); d != 9 {
		t.Fatalf("Distance = %v, want 9", d)
	}
}

func TestKEqualsNPerfectFit(t *testing.T) {
	data := [][]float64{{0, 0}, {5, 5}, {9, 0}}
	cfg := NewConfig(3)
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SSE > 1e-9 {
		t.Fatalf("K=n SSE = %v, want 0", m.SSE)
	}
}

func TestDegenerateIdenticalPoints(t *testing.T) {
	data := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(data, NewConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.SSE != 0 {
		t.Fatalf("identical-point SSE = %v, want 0", m.SSE)
	}
}

func TestRandomSeedingAlsoWorks(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _ := clusteredData(r, 150, 3, 2, 0.2)
	cfg := NewConfig(3)
	cfg.PlusPlus = false
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 3 || len(m.Centroids) != 3 {
		t.Fatalf("bad model shape")
	}
}

// Property: every point's distance to its predicted centroid is minimal
// over all centroids, and SSE equals the sum of those minimal distances.
func TestPredictIsArgmin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data, _ := clusteredData(r, 50, 3, 3, 1.0)
		cfg := NewConfig(3)
		cfg.Seed = seed
		m, err := Fit(data, cfg)
		if err != nil {
			return false
		}
		total := 0.0
		for _, x := range data {
			pd := m.Distance(x)
			for _, c := range m.Centroids {
				d := 0.0
				for j := range x {
					dd := x[j] - c[j]
					d += dd * dd
				}
				if d < pd-1e-12 {
					return false
				}
			}
			total += pd
		}
		return math.Abs(total-SSE(data, m)) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitK8Dim32(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data, _ := clusteredData(r, 500, 8, 32, 0.5)
	cfg := NewConfig(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
