// Package nn provides the feed-forward building blocks shared by the VAE
// and the learned-padding models: dense layers with activations, manual
// backpropagation, and the Adam optimizer. Layers process one sample at a
// time and accumulate gradients; minibatch training averages by scaling the
// loss gradient.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"e2nvm/internal/mat"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply computes σ(x). Exported so inference kernels outside this package
// (internal/infer) can reproduce Dense.Apply's activation exactly.
func (a Activation) Apply(x float64) float64 { return a.apply(x) }

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns dσ/dx expressed in terms of the activated output
// y (possible for all supported activations).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Dense is a fully connected layer: y = σ(W·x + b).
type Dense struct {
	In, Out int
	Act     Activation

	W *mat.Matrix // Out×In
	B []float64

	GW *mat.Matrix // gradient accumulators
	GB []float64

	// forward caches for the most recent sample
	x []float64
	y []float64
}

// NewDense returns a Glorot-initialized dense layer.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	return &Dense{
		In:  in,
		Out: out,
		Act: act,
		W:   mat.NewRandom(out, in, rng),
		B:   make([]float64, out),
		GW:  mat.NewMatrix(out, in),
		GB:  make([]float64, out),
		x:   make([]float64, in),
		y:   make([]float64, out),
	}
}

// Forward computes the layer output for one sample, caching the
// activations needed by Backward. The returned slice is reused across
// calls; copy it if it must survive the next Forward.
func (d *Dense) Forward(x []float64) []float64 {
	copy(d.x, x)
	d.W.MulVec(x, d.y)
	for i := range d.y {
		d.y[i] = d.Act.apply(d.y[i] + d.B[i])
	}
	return d.y
}

// Apply computes σ(W·x + b) into out without touching the training caches,
// so it is safe for concurrent use on a frozen layer (inference path).
func (d *Dense) Apply(x, out []float64) {
	if len(out) != d.Out {
		panic(fmt.Sprintf("nn: Apply output size %d, want %d", len(out), d.Out))
	}
	d.W.MulVec(x, out)
	for i := range out {
		out[i] = d.Act.apply(out[i] + d.B[i])
	}
}

// Backward consumes ∂L/∂y for the cached sample, accumulates parameter
// gradients into GW/GB, and returns ∂L/∂x. The returned slice is freshly
// allocated.
func (d *Dense) Backward(gradY []float64) []float64 {
	if len(gradY) != d.Out {
		panic(fmt.Sprintf("nn: Backward grad size %d, want %d", len(gradY), d.Out))
	}
	// δ = gradY ⊙ σ'(preact), with σ' recovered from the cached output.
	delta := make([]float64, d.Out)
	for i := range delta {
		delta[i] = gradY[i] * d.Act.derivFromOutput(d.y[i])
	}
	d.GW.AddOuter(1, delta, d.x)
	mat.AddScaled(d.GB, 1, delta)
	gradX := make([]float64, d.In)
	d.W.MulVecT(delta, gradX)
	return gradX
}

// ZeroGrad clears the accumulated gradients.
func (d *Dense) ZeroGrad() {
	d.GW.Zero()
	mat.Fill(d.GB, 0)
}

// Params returns the layer's parameter/gradient pairs for optimizer
// registration.
func (d *Dense) Params() []Param {
	return []Param{{W: d.W.Data, G: d.GW.Data}, {W: d.B, G: d.GB}}
}

// ParamCount returns the number of trainable scalars.
func (d *Dense) ParamCount() int { return len(d.W.Data) + len(d.B) }

// Param pairs a parameter tensor with its gradient accumulator.
type Param struct {
	W []float64
	G []float64
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t      int
	params []Param
	m, v   [][]float64
}

// NewAdam returns an Adam optimizer with the canonical hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Register adds parameter tensors to be updated by Step.
func (a *Adam) Register(params ...Param) {
	for _, p := range params {
		if len(p.W) != len(p.G) {
			panic("nn: Adam parameter/gradient length mismatch")
		}
		a.params = append(a.params, p)
		a.m = append(a.m, make([]float64, len(p.W)))
		a.v = append(a.v, make([]float64, len(p.W)))
	}
}

// Step applies one Adam update using the gradients currently accumulated
// in the registered tensors, then leaves the gradients untouched (callers
// zero them between batches).
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i := range p.W {
			g := p.G[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / c1
			vh := v[i] / c2
			p.W[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
		}
	}
}

// StepCount returns the number of optimizer steps taken.
func (a *Adam) StepCount() int { return a.t }

// FLOPsDense returns an estimate of the multiply-accumulate operations for
// one forward pass through a dense layer, used by the energy profiler to
// charge model-compute energy.
func FLOPsDense(in, out int) float64 { return 2 * float64(in) * float64(out) }
