package hotpathalloc

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.RunProgram(t, "../testdata", Analyzer, "hotpathalloc")
}
