package nopanic

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestNoPanic(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "nopanic")
}
