// Package errflow is a golden fixture for the errflow analyzer: bare error
// constructions that can escape an exported boundary are flagged even when
// they sit in a private helper several calls down, and the syntactic
// checks catch == comparisons and silently discarded error results.
package errflow

import (
	"errors"
	"fmt"
)

// ErrBad is the package's declared sentinel; package-level construction is
// exactly where errors.New belongs.
var ErrBad = errors.New("errflow: bad input")

// Do is an exported boundary. It constructs nothing itself — the findings
// sit in validate, reachable only through Do's call edge.
func Do(n int) error {
	if n != 0 {
		return validate(n)
	}
	return nil
}

func validate(n int) error {
	if n > 10 {
		return errors.New("too big") // want "bare errors\.New escapes the exported boundary of errflow"
	}
	return fmt.Errorf("odd value %d", n) // want "fmt\.Errorf without %w escapes the exported boundary of errflow"
}

// Wrapped chains the declared sentinel with %w: not flagged.
func Wrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("errflow: n %d: %w", n, ErrBad)
	}
	return nil
}

// Classify compares errors by identity, which breaks once Wrapped-style
// chains are involved.
func Classify(err error) bool {
	if err == ErrBad { // want "error compared with ==; use errors\.Is so wrapped sentinels still match"
		return true
	}
	if err != nil { // nil comparisons are how errors are checked: not flagged
		return errors.Is(err, ErrBad)
	}
	return false
}

func fire() error { return nil }

// Spray drops fire's error on the floor; the explicit blank assignment is
// a deliberate discard and stays clean.
func Spray() {
	fire() // want "error result silently discarded; handle it or assign to _ explicitly"
	_ = fire()
}

// orphan is unreachable from every exported error-returning function, so
// its bare construction never crosses a boundary: not flagged.
func orphan() error { return errors.New("orphan") }

// Tagged demonstrates the escape hatch for sanctioned bare errors.
func Tagged() error {
	return errors.New("deliberately bare") // lint:allow errflow — fixture-only demonstration
}
