// Package seededrand forbids the global math/rand source in library code.
//
// The paper's evaluation (and Predict-and-Write before it) reports
// seed-sensitive clustering quality, so every random draw in the training
// and simulation paths must come from an injected *rand.Rand seeded by the
// caller — two runs with the same Config.Seed must be bit-identical.
// Global math/rand top-level functions (rand.Intn, rand.Float64, ...)
// share a process-wide source that other goroutines and packages also
// advance, silently destroying that reproducibility.
package seededrand

import (
	"go/ast"
	"go/types"

	"e2nvm/internal/analysis"
)

// Analyzer flags calls to global math/rand top-level functions.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid the process-global math/rand source in library code; " +
		"inject a *rand.Rand (rand.New(rand.NewSource(seed))) instead",
	Run: run,
}

// globalFuncs are the math/rand package-level functions that draw from (or
// mutate) the shared global source. Constructors (New, NewSource, NewZipf)
// are the sanctioned alternative and stay allowed.
var globalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() != "math/rand" && fn.Pkg().Path() != "math/rand/v2" {
				return true
			}
			// Methods on *rand.Rand have a receiver; only package-level
			// functions touch the global source.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if globalFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global math/rand.%s breaks seed reproducibility; draw from an injected *rand.Rand instead",
					fn.Name())
			}
			return true
		})
	}
	return nil
}
