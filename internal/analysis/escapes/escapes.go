// Package escapes defines a whole-program Analyzer that enforces the
// hot-path allocation contract with the compiler's own escape analysis.
//
// hotpathalloc walks the AST and flags allocating *constructs*; this
// analyzer consumes the ground truth instead: every "escapes to heap" /
// "moved to heap" diagnostic the compiler emits (via gcdiag) that falls
// inside a function reachable from a `lint:hotpath` or `lint:kernelpure`
// root is a finding. The two are complementary — the AST scan catches
// constructs the compiler would stack-allocate today but a refactor could
// regress silently, while the compiler catches escapes no syntactic scan
// can see (spills, variables moved to heap by closures or pointer flow).
//
// The analyzer shares hotpathalloc's cold-exit rule (a block ending in a
// panic or a fresh error return is off the measured path, so its escapes
// — panic message spills, error construction — are ignored) and honors
// `lint:allow hotpathalloc` suppressions in addition to its own
// `lint:allow escapes`, so deliberately amortized allocations annotated
// for the AST scan are not re-flagged.
//
// When no compiler feedback is wired up (Reports == nil, e.g. no go tool
// on PATH), the analyzer degrades to a no-op rather than failing the run.
package escapes

import (
	"go/token"
	"strings"

	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/gcdiag"
	"e2nvm/internal/analysis/hotpathalloc"
	"e2nvm/internal/analysis/kernelpure"
)

// Reports supplies the per-package compiler diagnostics. The lint driver
// wires it to a gcdiag.Source; golden tests substitute canned output; nil
// disables the analyzer.
var Reports func(pkg *analysis.Package) (*gcdiag.Report, error)

// Analyzer flags compiler-verified heap escapes reachable from
// lint:hotpath and lint:kernelpure roots.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "escapes",
	Doc: "no value may escape to the heap (per the compiler's escape analysis) in any " +
		"function reachable from a lint:hotpath or lint:kernelpure root; " +
		"suppress with lint:allow escapes (lint:allow hotpathalloc is honored too)",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	if Reports == nil {
		return nil
	}
	g := pass.Graph
	var roots []*analysis.FuncNode
	for _, n := range g.Nodes() {
		if n.DocContains(hotpathalloc.Marker) || n.DocContains(kernelpure.Marker) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reach(roots, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site) || pass.AllowedAs(c.Site, hotpathalloc.Analyzer.Name)
	})

	// One report per package that contains a reached function.
	needed := map[*analysis.Package]bool{}
	for n := range reach {
		needed[n.Pkg] = true
	}
	resolver := gcdiag.NewResolver(pass.Fset)
	for _, pkg := range pass.Pkgs {
		if !needed[pkg] {
			continue
		}
		rep, err := Reports(pkg)
		if err != nil {
			return err
		}
		if rep.Empty() {
			continue // diagnostics absent: degrade, do not fabricate findings
		}
		checkPackage(pass, g, reach, resolver, rep, pkg)
	}
	return nil
}

func checkPackage(pass *analysis.ProgramPass, g *analysis.CallGraph,
	reach map[*analysis.FuncNode]analysis.ReachStep, resolver *gcdiag.Resolver,
	rep *gcdiag.Report, pkg *analysis.Package) {

	cold := map[*analysis.FuncNode][]hotpathalloc.PosRange{}
	allowedBody := map[*analysis.FuncNode]bool{}
	for _, e := range rep.Escapes {
		pos := resolver.Pos(e.Pos)
		if !pos.IsValid() {
			continue
		}
		// An escape reported at an inlined call site belongs to the callee's
		// body: honor a lint:allow inside the callee (covering its allocation
		// lines), which the caller-side position would otherwise hide.
		callee := rep.InlinedAt(e.Pos)
		if callee != "" {
			if cn := findCallee(g, pkg, callee); cn != nil {
				if ok, cached := allowedBody[cn]; cached && ok {
					continue
				} else if !cached {
					ok = bodyHasAllow(pass, cn)
					allowedBody[cn] = ok
					if ok {
						continue
					}
				}
			}
		}
		n := enclosing(g, pos)
		if n == nil {
			continue // escape in an unanalyzed or unreached corner
		}
		step, reached := reach[n]
		if !reached {
			continue
		}
		if _, ok := cold[n]; !ok {
			cold[n] = hotpathalloc.ColdRanges(n)
		}
		inCold := false
		for _, r := range cold[n] {
			if r.Contains(pos) {
				inCold = true
				break
			}
		}
		if inCold || pass.Allowed(pos) || pass.AllowedAs(pos, hotpathalloc.Analyzer.Name) {
			continue
		}
		report(pass, n, step.Root, reach, pos, e, callee)
	}
}

// findCallee resolves a compiler-printed callee name to its node:
// same-package callees come bare ("growFloats"), cross-package ones
// package-qualified ("infer.(*Kernel).HiddenDim") — exactly how
// FuncNode.Name qualifies everything.
func findCallee(g *analysis.CallGraph, pkg *analysis.Package, name string) *analysis.FuncNode {
	local := pkg.Types.Name() + "." + name
	for _, n := range g.Nodes() {
		if n.Name() == name || (n.Pkg == pkg && n.Name() == local) {
			return n
		}
	}
	return nil
}

// bodyHasAllow reports whether any line of n's body carries a lint:allow
// for escapes or hotpathalloc — the signal that the function's
// allocations are deliberate, so their inlined copies are too.
func bodyHasAllow(pass *analysis.ProgramPass, n *analysis.FuncNode) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	f := pass.Fset.File(body.Pos())
	if f == nil {
		return false
	}
	last := f.Position(body.End()).Line
	for line := f.Position(body.Pos()).Line; line <= last && line <= f.LineCount(); line++ {
		p := f.LineStart(line)
		if pass.Allowed(p) || pass.AllowedAs(p, hotpathalloc.Analyzer.Name) {
			return true
		}
	}
	return false
}

// enclosing returns the narrowest function whose body contains pos, so a
// diagnostic inside a function literal is charged to the literal's node
// (which has its own reachability), not its enclosing declaration.
func enclosing(g *analysis.CallGraph, pos token.Pos) *analysis.FuncNode {
	var best *analysis.FuncNode
	for _, n := range g.Nodes() {
		body := n.Body()
		if body == nil || pos < body.Pos() || pos >= body.End() {
			continue
		}
		if best == nil || body.Pos() > best.Body().Pos() {
			best = n
		}
	}
	return best
}

func report(pass *analysis.ProgramPass, n, root *analysis.FuncNode,
	reach map[*analysis.FuncNode]analysis.ReachStep, pos token.Pos, e gcdiag.Escape, callee string) {

	kind := "hot path"
	if !root.DocContains(hotpathalloc.Marker) {
		kind = "kernel"
	}
	what := e.What
	if len(what) > 60 {
		what = what[:57] + "..."
	}
	verb := "escapes to heap"
	if e.Moved {
		verb = "moved to heap"
	}
	if callee != "" {
		what += " (inlined from " + callee + ")"
	}
	// The last flow step names the sink that forced the escape.
	sink := ""
	for _, f := range e.Flow {
		if strings.HasPrefix(f, "from ") {
			sink = " (" + f + ")"
		}
	}
	if n == root {
		pass.Reportf(pos, "compiler: %s %s on %s %s%s", what, verb, kind, root.Name(), sink)
		return
	}
	pass.Reportf(root.Pos(), "%s %s reaches compiler-verified escape (%s %s) in %s (%s) at %s%s",
		kind, root.Name(), what, verb, n.Name(), analysis.PathTo(reach, n), pass.Fset.Position(pos), sink)
}
