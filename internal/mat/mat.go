// Package mat provides the small dense linear-algebra kernel used by the
// learning models (VAE, LSTM, PCA, K-means). It is deliberately minimal:
// row-major float64 matrices, matrix–vector products in both orientations,
// rank-1 updates, and the vector helpers the gradient code needs. No BLAS,
// stdlib only.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, element (i,j) at Data[i*C+j]
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", r, c))
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// NewRandom returns an r×c matrix with entries drawn from a scaled uniform
// distribution (Glorot/Xavier initialization for a layer with fanIn inputs
// and fanOut outputs).
func NewRandom(r, c int, rng *rand.Rand) *Matrix {
	m := NewMatrix(r, c)
	limit := math.Sqrt(6.0 / float64(r+c))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view of row i (aliasing the matrix storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.R, m.C)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = M·x where x has length C; y has length R.
func (m *Matrix) MulVec(x, y []float64) {
	if len(x) != m.C || len(y) != m.R {
		panic(fmt.Sprintf("mat: MulVec shape mismatch M=%dx%d x=%d y=%d", m.R, m.C, len(x), len(y)))
	}
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulVecT computes y = Mᵀ·x where x has length R; y has length C.
func (m *Matrix) MulVecT(x, y []float64) {
	if len(x) != m.R || len(y) != m.C {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch M=%dx%d x=%d y=%d", m.R, m.C, len(x), len(y)))
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, v := range row {
			y[j] += v * xi
		}
	}
}

// AddOuter accumulates M += scale · a⊗b (rank-1 update), with len(a) == R
// and len(b) == C. This is the gradient accumulation primitive.
func (m *Matrix) AddOuter(scale float64, a, b []float64) {
	if len(a) != m.R || len(b) != m.C {
		panic(fmt.Sprintf("mat: AddOuter shape mismatch M=%dx%d a=%d b=%d", m.R, m.C, len(a), len(b)))
	}
	for i := 0; i < m.R; i++ {
		s := scale * a[i]
		if s == 0 {
			continue
		}
		row := m.Data[i*m.C : (i+1)*m.C]
		for j := range row {
			row[j] += s * b[j]
		}
	}
}

// ------------------------------------------------------- vector helpers --

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddScaled computes dst += scale · src in place.
func AddScaled(dst []float64, scale float64, src []float64) {
	if len(dst) != len(src) {
		panic("mat: AddScaled length mismatch")
	}
	for i := range dst {
		dst[i] += scale * src[i]
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: SqDist length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// ArgMin returns the index of the smallest element (first on ties), or -1
// for empty input.
func ArgMin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// EqualWithin reports whether a and b agree to within tol, absolutely for
// small magnitudes and relatively for large ones. It is the sanctioned way
// to compare computed floats in this codebase — the floateq analyzer
// rejects ==/!= between float expressions (except against a literal 0).
func EqualWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
