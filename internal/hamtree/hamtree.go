// Package hamtree implements a Hamming-distance search tree over free
// memory-segment contents — a reconstruction of the Hamming-Tree approach
// the paper cites as prior memory-aware work (Kargar & Nawab, CIDR'21):
// organizing memory contents on a tree keyed by Hamming distance so an
// incoming write can be routed to a similar free segment without training
// a model.
//
// The structure is a BK-tree (Burkhard–Keller): each node holds a content
// signature and its children are indexed by their distance to it, which
// lets nearest-neighbour queries prune whole subtrees by the triangle
// inequality. Deletions are lazy (tombstones), with an automatic rebuild
// once tombstones dominate.
package hamtree

import (
	"fmt"
	"sort"

	"e2nvm/internal/bitvec"
)

type node struct {
	content  []byte
	addrs    []int // free segments currently holding this exact content
	children map[int]*node
}

// Tree is a Hamming BK-tree mapping contents to free segment addresses.
// It is not safe for concurrent use.
type Tree struct {
	root    *node
	live    int
	dead    int // tombstoned entries awaiting rebuild
	segSize int
}

// New creates a tree for segments of segSize bytes.
func New(segSize int) (*Tree, error) {
	if segSize <= 0 {
		return nil, fmt.Errorf("hamtree: segment size %d must be positive", segSize)
	}
	return &Tree{segSize: segSize}, nil
}

// Len returns the number of free addresses stored.
func (t *Tree) Len() int { return t.live }

// Insert registers a free segment with the given content.
func (t *Tree) Insert(addr int, content []byte) error {
	if len(content) != t.segSize {
		return fmt.Errorf("hamtree: content of %d bytes, want %d", len(content), t.segSize)
	}
	c := append([]byte(nil), content...)
	t.live++
	if t.root == nil {
		t.root = &node{content: c, addrs: []int{addr}}
		return nil
	}
	n := t.root
	for {
		d := bitvec.HammingBytes(n.content, c)
		if d == 0 {
			n.addrs = append(n.addrs, addr)
			return nil
		}
		if n.children == nil {
			n.children = map[int]*node{}
		}
		child, ok := n.children[d]
		if !ok {
			n.children[d] = &node{content: c, addrs: []int{addr}}
			return nil
		}
		n = child
	}
}

// Nearest pops the free address whose content is closest (Hamming) to
// content, returning the address and its distance. ok is false when the
// tree is empty.
func (t *Tree) Nearest(content []byte) (addr, dist int, ok bool) {
	if t.root == nil || t.live == 0 {
		return 0, 0, false
	}
	if len(content) != t.segSize {
		panic(fmt.Sprintf("hamtree: query of %d bytes, want %d", len(content), t.segSize))
	}
	best := (*node)(nil)
	bestD := t.segSize*8 + 1
	var walk func(n *node)
	walk = func(n *node) {
		d := bitvec.HammingBytes(n.content, content)
		if len(n.addrs) > 0 && d < bestD {
			best, bestD = n, d
		}
		// Triangle inequality: a child at edge distance e can contain
		// entries within |e−d| of the query, so prune e outside
		// [d−bestD, d+bestD]. Children are visited in ascending edge
		// distance so that ties for the best node break identically on
		// every run (map order would make them random).
		edges := childEdges(n)
		for _, e := range edges {
			if e >= d-bestD && e <= d+bestD {
				walk(n.children[e])
			}
		}
	}
	walk(t.root)
	if best == nil {
		return 0, 0, false
	}
	addr = best.addrs[len(best.addrs)-1]
	best.addrs = best.addrs[:len(best.addrs)-1]
	t.live--
	if len(best.addrs) == 0 {
		t.dead++
		t.maybeRebuild()
	}
	return addr, bestD, true
}

// maybeRebuild compacts the tree when emptied nodes dominate.
func (t *Tree) maybeRebuild() {
	if t.dead <= 64 || t.dead <= t.live {
		return
	}
	old := t.root
	t.root = nil
	t.dead = 0
	t.live = 0
	var walk func(n *node)
	walk = func(n *node) {
		for _, a := range n.addrs {
			// Insert ignores errors here: contents came from this tree.
			_ = t.Insert(a, n.content)
		}
		// Reinsert in ascending edge distance: the rebuilt tree's shape —
		// and therefore future Nearest answers — must not depend on map
		// iteration order.
		for _, e := range childEdges(n) {
			walk(n.children[e])
		}
	}
	if old != nil {
		walk(old)
	}
}

// childEdges returns n's child edge distances in ascending order.
func childEdges(n *node) []int {
	edges := make([]int, 0, len(n.children))
	for e := range n.children {
		edges = append(edges, e)
	}
	sort.Ints(edges)
	return edges
}

// Depth returns the maximum node depth (diagnostics).
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		max := 0
		for _, c := range n.children {
			if d := walk(c); d > max {
				max = d
			}
		}
		return max + 1
	}
	return walk(t.root)
}
