// Package lockorder is a golden fixture for the lockorder analyzer. The
// headline positive is inter-procedural only: neither LockAB nor LockBA
// acquires two locks in its own body — the A.mu -> B.mu and B.mu -> A.mu
// edges exist only because the engine propagates the held set into
// helperB and helperA.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	x  int
}

type B struct {
	mu sync.Mutex
	y  int
}

// LockAB holds A.mu while (transitively) acquiring B.mu.
func LockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	helperB(b)
}

func helperB(b *B) {
	b.mu.Lock() // want "lock-order cycle lockorder\.A\.mu -> lockorder\.B\.mu -> lockorder\.A\.mu"
	b.y++
	b.mu.Unlock()
}

// LockBA holds B.mu while (transitively) acquiring A.mu: the reverse
// order, closing the cycle.
func LockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	helperA(a)
}

func helperA(a *A) {
	a.mu.Lock()
	a.x++
	a.mu.Unlock()
}

type S struct {
	mu sync.Mutex
	n  int
}

// Outer holds S.mu across a helper that locks it again: a length-1 cycle,
// the self-deadlock sync.Mutex guarantees.
func (s *S) Outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner()
}

func (s *S) inner() {
	s.mu.Lock() // want "lockorder\.S\.mu acquired while already held in lockorder\.\(\*S\)\.inner \(lockorder\.\(\*S\)\.Outer -> lockorder\.\(\*S\)\.inner\)"
	s.n++
	s.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	p  int
}

type D struct {
	mu sync.Mutex
	q  int
}

// Nested and NestedAgain take C.mu then D.mu on every path: a consistent
// order is a plain edge, not a cycle — no findings.
func Nested(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.q++
	d.mu.Unlock()
}

func NestedAgain(c *C, d *D) {
	c.mu.Lock()
	c.p++
	d.mu.Lock()
	d.q++
	d.mu.Unlock()
	c.mu.Unlock()
}

// SpawnReverse takes the locks in reverse order — but in a goroutine,
// which starts with no inherited locks, so no D.mu -> C.mu edge forms.
func SpawnReverse(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	go lockC(c)
}

func lockC(c *C) {
	c.mu.Lock()
	c.p++
	c.mu.Unlock()
}

type T struct {
	mu sync.Mutex
	n  int
}

// MakeCallback returns a closure that locks T.mu. Created under the lock,
// it would be a self-deadlock edge — the allow on the creation line
// declares it runs only after release, pruning the propagation.
func MakeCallback(t *T) func() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	return func() { // lint:allow lockorder — the callback runs after Unlock
		t.mu.Lock()
		t.n++
		t.mu.Unlock()
	}
}
