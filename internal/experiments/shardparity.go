package experiments

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/shard"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("exp-shard", ShardParity) }

// ShardParity checks that hash-sharding the keyspace preserves E2-NVM's
// placement quality: each shard trains its own model on its own device
// zone, so per-shard clustering should place writes as well as one global
// model does, and the aggregate flips-per-data-bit should stay flat as the
// shard count grows. This is the invariant that makes the sharded serving
// layer safe to use for energy experiments.
func ShardParity(cfg RunConfig) (*Result, error) {
	const segSize = 64
	const valSize = 32
	const k = 6
	segsPerShard := cfg.scaleInt(512, 96)
	ops := cfg.scaleInt(4000, 800)

	vg := workload.NewValueGen(valSize, k, 0.03, cfg.Seed)

	// run builds a router over `shards` stores with segsPerShard segments
	// each and drives the identical key/value workload through it; the
	// total capacity scales with the shard count so every configuration
	// sees the same per-shard load.
	run := func(shards int) (float64, error) {
		devs := make([]*nvm.Device, shards)
		stores := make([]*kvstore.Store, shards)
		for i := range stores {
			dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, segsPerShard))
			if err != nil {
				return 0, err
			}
			// Seed each zone with overwritten content from the same value
			// distribution, as the energy experiments do.
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
			img := make([]byte, segSize)
			for a := 0; a < segsPerShard; a++ {
				copy(img[2:], vg.For(uint64(r.Intn(500))))
				if err := dev.FillSegment(a, img); err != nil {
					return 0, err
				}
			}
			st, err := kvstore.Open(dev, core.Config{
				K: k, LatentDim: 8, HiddenDim: 48, Epochs: 6, JointEpochs: 1,
				Seed: cfg.Seed + int64(i),
			}, kvstore.Options{})
			if err != nil {
				return 0, err
			}
			devs[i], stores[i] = dev, st
		}
		router, err := shard.New(stores)
		if err != nil {
			return 0, err
		}
		for _, dev := range devs {
			dev.ResetStats()
		}
		r := rand.New(rand.NewSource(cfg.Seed + 17))
		// Live keys occupy one segment each; cap the key space at half the
		// total capacity so the hash imbalance across shards never exhausts
		// a zone.
		keySpace := segsPerShard / 2 * shards
		for i := 0; i < ops*shards; i++ {
			key := uint64(r.Intn(keySpace))
			if r.Intn(10) == 0 {
				if _, err := router.Delete(key); err != nil {
					return 0, err
				}
				continue
			}
			if err := router.Put(key, vg.For(key)); err != nil {
				return 0, err
			}
		}
		var flips, bits uint64
		for _, dev := range devs {
			s := dev.Stats()
			flips += s.BitsFlipped
			bits += s.BitsWritten
		}
		if bits == 0 {
			return 0, fmt.Errorf("exp-shard: no data written")
		}
		return float64(flips) / float64(bits), nil
	}

	table := stats.NewTable("shards", "flips/databit", "delta_vs_1_%")
	var base float64
	for _, shards := range []int{1, 2, 4} {
		fpb, err := run(shards)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			base = fpb
		}
		table.AddRow(fmt.Sprintf("%d", shards), fpb, (fpb/base-1)*100)
	}
	return &Result{
		ID:    "exp-shard",
		Title: "Placement parity: flips per data bit vs shard count",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d segments × %d B per shard, %d ops per shard, k=%d", segsPerShard, segSize, ops, k),
			"expected shape: flips/databit stays within a few percent of the unsharded store at every shard count",
		},
	}, nil
}
