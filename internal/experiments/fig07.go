package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig07", Fig7) }

// Fig7 reproduces Figure 7: the DRAM footprint of the dynamic address pool
// and the resulting write energy as the number of indexed memory segments
// grows (PubMed dataset). The paper's conclusion: 100K–1M indexed segments
// give near-optimal energy at a few MB of DRAM; beyond that, diminishing
// returns.
func Fig7(cfg RunConfig) (*Result, error) {
	const segSize = 16 // 128-bit segments keep the biggest pool affordable
	const k = 8
	segCounts := []int{
		cfg.scaleInt(1000, 200),
		cfg.scaleInt(5000, 500),
		cfg.scaleInt(20000, 1000),
		cfg.scaleInt(50000, 2000),
		cfg.scaleInt(100000, 4000),
	}
	writes := cfg.scaleInt(2000, 300)

	// One dataset draw for every pool size: the same prototypes seed the
	// pools and drive the writes, so rows differ only in pool size. The
	// write stream is skewed toward a few hot topics (real update traffic
	// is skewed), which is what drains small pools' hot clusters.
	maxSegs := segCounts[len(segCounts)-1]
	content := workload.PubMedLike(maxSegs, segSize*8, cfg.Seed+7)
	writeSrc := workload.PubMedLike(8*writes, segSize*8, cfg.Seed+7) // same prototypes (same seed)
	skewed := skewByLabel(writeSrc, writes)

	// One model trained on a fixed-size sample of the contents serves all
	// pool sizes; the pool size varies only the placement choices.
	sampleN := cfg.scaleInt(400, 150)
	if sampleN > maxSegs {
		sampleN = maxSegs
	}
	model, err := core.Train(content.Items[:sampleN], core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 8,
		Epochs: 10, JointEpochs: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	table := stats.NewTable("segments", "dap_footprint_KB", "avg_flips/write", "avg_energy_pJ/write", "fallbacks")
	for _, n := range segCounts {
		seedImgs := toBytesAll(content.Items[:n], segSize)
		items := toBytesAll(skewed, segSize)

		dev, err := seededDevice(nvm.DefaultConfig(segSize, n), seedImgs)
		if err != nil {
			return nil, err
		}
		pool, err := dap.New(k)
		if err != nil {
			return nil, err
		}
		for a := 0; a < n; a++ {
			img, err := dev.Peek(a)
			if err != nil {
				return nil, err
			}
			pool.Add(mustPredict(model.PredictBytes(img)), a)
		}
		footprintKB := float64(pool.FootprintBytes()) / 1024
		p := &clusterPlacer{model: model, pool: pool}
		dev.ResetStats()
		if _, err := runPlacement(dev, p, items, n*3/4); err != nil {
			return nil, err
		}
		s := dev.Stats()
		table.AddRow(n,
			footprintKB,
			float64(s.BitsFlipped)/float64(s.Writes),
			s.EnergyPJ/float64(s.Writes),
			p.fallbacks,
		)
	}
	return &Result{
		ID:    "fig07",
		Title: "DAP memory footprint and energy vs number of indexed segments (PubMed)",
		Table: table,
		Notes: []string{
			fmt.Sprintf("segment size %d B, %d skewed writes per pool size, k=%d", segSize, writes, k),
			"expected shape: footprint grows linearly with segments; energy per write falls as the pool offers more placement choices, then flattens",
		},
	}, nil
}

// skewByLabel draws n items from ds with class frequency ∝ 1/(rank+1), so
// a few hot classes dominate the write stream.
func skewByLabel(ds *workload.Dataset, n int) [][]float64 {
	byLabel := map[int][][]float64{}
	var labels []int
	for i, it := range ds.Items {
		l := ds.Labels[i]
		if _, ok := byLabel[l]; !ok {
			labels = append(labels, l)
		}
		byLabel[l] = append(byLabel[l], it)
	}
	weights := make([]float64, len(labels))
	total := 0.0
	for i := range labels {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	var out [][]float64
	next := make([]int, len(labels))
	for len(out) < n {
		// Round-robin proportional selection keeps this deterministic.
		for i, l := range labels {
			count := int(weights[i] / total * float64(n))
			if count < 1 {
				count = 1
			}
			for c := 0; c < count && len(out) < n; c++ {
				items := byLabel[l]
				out = append(out, items[next[i]%len(items)])
				next[i]++
			}
		}
	}
	return out
}
