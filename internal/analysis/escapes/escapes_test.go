package escapes

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

// TestEscapes drives the analyzer over canned compiler output: the
// fixture's gcdiag.txt carries a deliberate hot-path heap escape, a
// moved-to-heap in a reached helper, and escapes on cold, allowed, and
// unreached lines that must stay silent.
func TestEscapes(t *testing.T) {
	Reports = analysistest.CannedReports()
	defer func() { Reports = nil }()
	analysistest.RunProgram(t, "../testdata", Analyzer, "escapes")
}

// TestEscapesDegraded: with no compiler feedback wired up the analyzer
// must be a silent no-op, not an error.
func TestEscapesDegraded(t *testing.T) {
	Reports = nil
	analysistest.RunProgramExpectNone(t, "../testdata", Analyzer, "escapes")
}
