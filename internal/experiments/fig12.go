package experiments

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/index"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig12", Fig12) }

// Fig12 reproduces Figure 12: the average number of bit updates per data
// bit written for five persistent store designs — B+-Tree, WiscKey, Path
// Hashing, FP-Tree, NoveLSM — before and after plugging them into E2-NVM.
// Before: the store's native placement (inline sorted leaves for the
// B+-Tree, inline buckets/slots for Path Hashing and FP-Tree, an arbitrary
// free list for the value logs of WiscKey and NoveLSM). After: values are
// placed out-of-line through E2-NVM's content-aware allocator.
func Fig12(cfg RunConfig) (*Result, error) {
	const segSize = 256 // page size; values are 32 B so sorted leaves hold several entries
	const valSize = 32
	numSegs := cfg.scaleInt(768, 256)
	ops := cfg.scaleInt(1200, 300)
	const k = 8

	metaSegs := numSegs / 3
	valueSegs := numSegs - metaSegs

	// Values with planted cluster structure.
	vg := workload.NewValueGen(valSize, k, 0.03, cfg.Seed)
	valFor := func(key uint64) []byte { return vg.For(key) }

	// Train one model on a sample of value images (padded to segments the
	// same way valueZone stores them, so content prediction sees what the
	// device holds).
	sample := make([][]float64, 256)
	for i := range sample {
		img := make([]byte, segSize)
		v := valFor(uint64(i))
		img[0] = byte(len(v))
		copy(img[2:], v)
		sample[i] = core.BytesToBits(img)
	}
	model, err := core.Train(sample, core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	type build func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error)
	type storeCase struct {
		name      string
		baseline  build // native placement (values == nil where inline)
		augmented build // values through the content-aware allocator
	}
	mkBP := func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error) {
		return index.NewBPTree(dev, meta, values)
	}
	mkFP := func(slot int) build {
		return func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error) {
			return index.NewFPTree(dev, meta, values, slot)
		}
	}
	mkPH := func(slot int) build {
		return func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error) {
			return index.NewPathHash(dev, meta, values, metaSegs/2, 3, slot)
		}
	}
	mkWK := func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error) {
		if values == nil {
			values = index.NewFreeList(addrOffset(metaSegs, valueSegs))
		}
		return index.NewWiscKey(dev, meta, values, 32, 4)
	}
	mkNL := func(dev *nvm.Device, meta *index.FreeList, values index.Allocator) (index.Store, error) {
		if values == nil {
			values = index.NewFreeList(addrOffset(metaSegs, valueSegs))
		}
		return index.NewNoveLSM(dev, meta, values, 4)
	}
	cases := []storeCase{
		{"B+-Tree", mkBP, mkBP},
		{"WiscKey", mkWK, mkWK},
		{"Path Hashing", mkPH(valSize), mkPH(8)},
		{"FP-Tree", mkFP(valSize), mkFP(8)},
		{"NoveLSM", mkNL, mkNL},
	}

	table := stats.NewTable("store", "before_flips/databit", "after_flips/databit", "improvement_%")
	run := func(b build, augmented bool) (float64, error) {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			return 0, err
		}
		// Seed the VALUE region with old content from the same
		// distribution (overwritten data, as in the paper's setup).
		r := rand.New(rand.NewSource(cfg.Seed + 3))
		for a := metaSegs; a < numSegs; a++ {
			img := make([]byte, segSize)
			v := valFor(uint64(r.Intn(500)))
			copy(img[2:], v)
			if err := dev.FillSegment(a, img); err != nil {
				return 0, err
			}
		}
		meta := index.NewFreeList(addrRange(metaSegs))
		var values index.Allocator
		if augmented {
			pool, err := dap.New(k)
			if err != nil {
				return 0, err
			}
			for a := metaSegs; a < numSegs; a++ {
				img, err := dev.Peek(a)
				if err != nil {
					return 0, err
				}
				pool.Add(mustPredict(model.PredictBytes(img)), a)
			}
			values = kvstore.NewClusteredAllocator(core.NewManager(model), pool)
		}
		st, err := b(dev, meta, values)
		if err != nil {
			return 0, err
		}
		dev.ResetStats()
		r = rand.New(rand.NewSource(cfg.Seed + 4))
		keySpace := ops / 3
		for i := 0; i < ops; i++ {
			key := uint64(r.Intn(keySpace))
			switch r.Intn(10) {
			case 0: // occasional delete keeps the pools churning
				if _, err := st.Delete(key); err != nil {
					return 0, err
				}
			default:
				if err := st.Put(key, valFor(key)); err != nil {
					return 0, err
				}
			}
		}
		flips := float64(dev.Stats().BitsFlipped)
		dataBits := float64(st.DataBitsWritten())
		if dataBits == 0 {
			return 0, fmt.Errorf("fig12: no data written")
		}
		return flips / dataBits, nil
	}

	for _, c := range cases {
		before, err := run(c.baseline, false)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", c.name, err)
		}
		after, err := run(c.augmented, true)
		if err != nil {
			return nil, fmt.Errorf("%s augmented: %w", c.name, err)
		}
		table.AddRow(c.name, before, after, (1-after/before)*100)
	}
	return &Result{
		ID:    "fig12",
		Title: "Bit updates per data bit: stores before vs after E2-NVM augmentation",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d segments × %d B (%d metadata, %d value), %d ops, k=%d", numSegs, segSize, metaSegs, valueSegs, ops, k),
			"expected shape: every store improves when plugged into E2-NVM; the sorted B+-Tree improves the most (paper: up to 91%)",
		},
	}, nil
}

// addrOffset returns [off, off+n).
func addrOffset(off, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = off + i
	}
	return out
}
