// Package kernelpure is a golden fixture for the kernelpure analyzer:
// purity violations are flagged in the marked kernel itself and — through
// the call graph — in every function it transitively reaches.
package kernelpure

// table is package-level state the kernel must not touch.
var table = map[int]float64{}

// hits is a package-level counter.
var hits int

// Classify is the kernel root. The "reaches" finding on its declaration
// line is the inter-procedural positive: the map iteration hides two call
// hops away, in lookup.
//
// lint:kernelpure
func Classify(xs []float64, k int) int { // want "kernel kernelpure\.Classify reaches map iteration \(randomized order breaks determinism\) in kernelpure\.lookup \(kernelpure\.Classify -> kernelpure\.score -> kernelpure\.lookup\)"
	hits++ // want "package-level state write \(to hits\) on kernel kernelpure\.Classify"
	best := 0
	for i := range xs {
		if xs[i] == 0.5 { // want "float equality comparison \(==\) on kernel kernelpure\.Classify"
			continue
		}
		if score(xs[i]) > score(xs[best]) {
			best = i
		}
	}
	for range table { // want "map iteration \(randomized order breaks determinism\) on kernel kernelpure\.Classify"
		best++
	}
	buf := make([]float64, k) // want "make allocation on kernel kernelpure\.Classify"
	_ = buf
	if k != len(xs) {
		panic("kernelpure: shape mismatch with a float compare " +
			"that is never flagged because the block is a cold panic exit")
	}
	return best % k
}

// score is clean itself but forwards into lookup.
func score(x float64) float64 {
	return lookup(int(x * 16))
}

// lookup iterates a map; the finding lands on the root that reaches it.
func lookup(i int) float64 {
	for k, v := range table {
		if k == i {
			return v
		}
	}
	return 0
}

// Pure is a clean kernel: ordered float comparisons, locals only, fixed
// iteration order. Negative.
//
// lint:kernelpure
func Pure(xs []float64) float64 {
	best := xs[0]
	for i := 1; i < len(xs); i++ {
		if xs[i] > best {
			best = xs[i]
		}
	}
	return best
}

// Tolerated documents the escape: an allowed global write.
//
// lint:kernelpure
func Tolerated() {
	hits = 0 // lint:allow kernelpure — reset is single-threaded setup, not kernel state
}
