// Package stats provides the small statistics toolkit the experiment
// harness reports with: empirical CDFs (Figure 19), summary moments,
// labeled series, and an aligned-text table printer that renders the rows
// each paper figure reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from values (copied and sorted).
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFUint32 builds a CDF from integer counters (e.g. wear counts).
func NewCDFUint32(values []uint32) *CDF {
	s := make([]float64, len(values))
	for i, v := range values {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFUint64 builds a CDF from uint64 counters.
func NewCDFUint64(values []uint64) *CDF {
	s := make([]float64, len(values))
	for i, v := range values {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns P(X ≤ x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the smallest x with P(X ≤ x) ≥ q, for q in [0,1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points samples the CDF at n evenly spaced values over its support,
// returning (x, P(X≤x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, 0, n)
	if hi <= lo { // degenerate range: all samples equal (ordered, not ==)
		return [][2]float64{{lo, 1}}
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, c.P(x)})
	}
	return out
}

// ----------------------------------------------------------------------- -

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Std returns the sample standard deviation (0 for n < 2).
func Std(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)-1))
}

// Max returns the maximum (−Inf for empty input).
func Max(v []float64) float64 {
	out := math.Inf(-1)
	for _, x := range v {
		if x > out {
			out = x
		}
	}
	return out
}

// Min returns the minimum (+Inf for empty input).
func Min(v []float64) float64 {
	out := math.Inf(1)
	for _, x := range v {
		if x < out {
			out = x
		}
	}
	return out
}

// WindowedMean reduces v to ceil(len/window) points, each the mean of one
// window — used to render the paper's noisy per-write traces (Figure 17).
func WindowedMean(v []float64, window int) []float64 {
	if window <= 1 {
		return append([]float64(nil), v...)
	}
	var out []float64
	for lo := 0; lo < len(v); lo += window {
		hi := lo + window
		if hi > len(v) {
			hi = len(v)
		}
		out = append(out, Mean(v[lo:hi]))
	}
	return out
}

// ----------------------------------------------------------------------- -

// Series is a labeled sequence of (X, Y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// ----------------------------------------------------------------------- -

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// AddRow appends a row; cells are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the formatted data rows (machine-readable
// export).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
