package index

import (
	"bytes"
	"math/rand"
	"testing"

	"e2nvm/internal/nvm"
)

// testRig builds a device plus disjoint meta/value address ranges.
type testRig struct {
	dev    *nvm.Device
	meta   *FreeList
	values *FreeList
}

func newRig(t *testing.T, segSize, metaSegs, valueSegs int) *testRig {
	t.Helper()
	dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, metaSegs+valueSegs))
	if err != nil {
		t.Fatal(err)
	}
	metaAddrs := make([]int, metaSegs)
	for i := range metaAddrs {
		metaAddrs[i] = i
	}
	valAddrs := make([]int, valueSegs)
	for i := range valAddrs {
		valAddrs[i] = metaSegs + i
	}
	return &testRig{dev: dev, meta: NewFreeList(metaAddrs), values: NewFreeList(valAddrs)}
}

func value(r *rand.Rand, n int) []byte {
	v := make([]byte, n)
	r.Read(v)
	return v
}

// exerciseStore runs a randomized workload against a store and a reference
// map, checking agreement throughout.
func exerciseStore(t *testing.T, s Store, seed int64, ops, keySpace, valBytes int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ref := map[uint64][]byte{}
	for i := 0; i < ops; i++ {
		k := uint64(r.Intn(keySpace))
		switch r.Intn(4) {
		case 0, 1: // put
			v := value(r, valBytes)
			if err := s.Put(k, v); err != nil {
				t.Fatalf("%s Put(%d): %v", s.Name(), k, err)
			}
			ref[k] = v
		case 2: // get
			got, ok, err := s.Get(k)
			if err != nil {
				t.Fatalf("%s Get(%d): %v", s.Name(), k, err)
			}
			want, wantOK := ref[k]
			if ok != wantOK || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("%s Get(%d) = (%x,%v), want (%x,%v)", s.Name(), k, got, ok, want, wantOK)
			}
		case 3: // delete
			ok, err := s.Delete(k)
			if err != nil {
				t.Fatalf("%s Delete(%d): %v", s.Name(), k, err)
			}
			_, wantOK := ref[k]
			if ok != wantOK {
				t.Fatalf("%s Delete(%d) = %v, want %v", s.Name(), k, ok, wantOK)
			}
			delete(ref, k)
		}
	}
	// Full final verification.
	for k, want := range ref {
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("%s final Get(%d) = (%x,%v,%v), want %x", s.Name(), k, got, ok, err, want)
		}
	}
	if s.DataBitsWritten() == 0 {
		t.Fatalf("%s DataBitsWritten is zero", s.Name())
	}
}

func TestBPTreeInline(t *testing.T) {
	rig := newRig(t, 256, 400, 0)
	s, err := NewBPTree(rig.dev, rig.meta, nil)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 1, 600, 80, 24)
}

func TestBPTreeOutOfLine(t *testing.T) {
	rig := newRig(t, 256, 200, 400)
	s, err := NewBPTree(rig.dev, rig.meta, rig.values)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 2, 600, 80, 64)
}

func TestFPTreeInline(t *testing.T) {
	rig := newRig(t, 256, 400, 0)
	s, err := NewFPTree(rig.dev, rig.meta, nil, 24)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 3, 600, 80, 24)
}

func TestFPTreeOutOfLine(t *testing.T) {
	rig := newRig(t, 256, 200, 400)
	s, err := NewFPTree(rig.dev, rig.meta, rig.values, 8)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 4, 600, 80, 64)
}

func TestPathHashInline(t *testing.T) {
	rig := newRig(t, 256, 400, 0)
	s, err := NewPathHash(rig.dev, rig.meta, nil, 64, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 5, 600, 80, 24)
}

func TestPathHashOutOfLine(t *testing.T) {
	rig := newRig(t, 256, 400, 400)
	s, err := NewPathHash(rig.dev, rig.meta, rig.values, 64, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 6, 600, 80, 64)
}

func TestPathHashFullError(t *testing.T) {
	rig := newRig(t, 64, 10, 0)
	s, err := NewPathHash(rig.dev, rig.meta, nil, 2, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	var sawFull bool
	for i := uint64(0); i < 100; i++ {
		if err := s.Put(i, value(r, 4)); err != nil {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("tiny path hash never reported full")
	}
}

func TestWiscKey(t *testing.T) {
	rig := newRig(t, 256, 400, 600)
	s, err := NewWiscKey(rig.dev, rig.meta, rig.values, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 8, 800, 80, 64)
}

func TestWiscKeyRequiresAllocator(t *testing.T) {
	rig := newRig(t, 256, 10, 0)
	if _, err := NewWiscKey(rig.dev, rig.meta, nil, 4, 2); err == nil {
		t.Fatal("expected error without value allocator")
	}
}

func TestNoveLSM(t *testing.T) {
	rig := newRig(t, 256, 400, 600)
	s, err := NewNoveLSM(rig.dev, rig.meta, rig.values, 3)
	if err != nil {
		t.Fatal(err)
	}
	exerciseStore(t, s, 9, 800, 80, 64)
}

func TestNoveLSMRequiresAllocator(t *testing.T) {
	rig := newRig(t, 256, 10, 0)
	if _, err := NewNoveLSM(rig.dev, rig.meta, nil, 2); err == nil {
		t.Fatal("expected error without value allocator")
	}
}

// TestBPTreeSortedShiftCostsMoreThanFPTree verifies the structural claim
// behind Figure 12: on an identical insert workload, the sorted B+-Tree
// leaves flip more bits than FP-Tree's slot-grained leaves.
func TestBPTreeSortedShiftCostsMoreThanFPTree(t *testing.T) {
	run := func(mk func(rig *testRig) Store) uint64 {
		rig := newRig(t, 256, 600, 0)
		s := mk(rig)
		r := rand.New(rand.NewSource(10))
		for i := 0; i < 500; i++ {
			if err := s.Put(uint64(r.Intn(1<<30)), value(r, 16)); err != nil {
				t.Fatal(err)
			}
		}
		return rig.dev.Stats().BitsFlipped
	}
	bp := run(func(rig *testRig) Store {
		s, err := NewBPTree(rig.dev, rig.meta, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	fp := run(func(rig *testRig) Store {
		s, err := NewFPTree(rig.dev, rig.meta, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	if fp >= bp {
		t.Fatalf("FP-Tree flips %d not below B+-Tree flips %d", fp, bp)
	}
}

// TestValueZoneRoundTrip checks the value segment layout directly.
func TestValueZoneRoundTrip(t *testing.T) {
	rig := newRig(t, 128, 0, 4)
	z := &valueZone{dev: rig.dev, alloc: rig.values}
	v := []byte("hello, pcm")
	addr, err := z.writeValue(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := z.readValue(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v) {
		t.Fatalf("round trip = %q", got)
	}
	if _, err := z.writeValue(make([]byte, 127)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if rig.values.FreeCount() != 3 {
		t.Fatalf("FreeCount = %d after write, want 3", rig.values.FreeCount())
	}
	if err := z.freeValue(addr); err != nil {
		t.Fatal(err)
	}
	if rig.values.FreeCount() != 4 {
		t.Fatalf("FreeCount = %d after free, want 4", rig.values.FreeCount())
	}
}

func TestStoreNames(t *testing.T) {
	rig := newRig(t, 256, 200, 200)
	bp, _ := NewBPTree(rig.dev, rig.meta, nil)
	fp, _ := NewFPTree(rig.dev, rig.meta, nil, 16)
	ph, _ := NewPathHash(rig.dev, rig.meta, nil, 8, 2, 16)
	wk, _ := NewWiscKey(rig.dev, rig.meta, rig.values, 8, 2)
	nl, _ := NewNoveLSM(rig.dev, rig.meta, rig.values, 2)
	want := []string{"B+-Tree", "FP-Tree", "Path Hashing", "WiscKey", "NoveLSM"}
	for i, s := range []Store{bp, fp, ph, wk, nl} {
		if s.Name() != want[i] {
			t.Fatalf("store %d Name = %q, want %q", i, s.Name(), want[i])
		}
	}
}
