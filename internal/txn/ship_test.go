package txn

import (
	"bytes"
	"errors"
	"testing"

	"e2nvm/internal/nvm"
)

// shipRec records one shipper invocation with copied slices.
type shipRec struct {
	id     uint64
	addrs  []int
	images [][]byte
}

func recordShipper(dst *[]shipRec) Shipper {
	return func(id uint64, addrs []int, images [][]byte) {
		r := shipRec{id: id, addrs: append([]int(nil), addrs...)}
		for _, img := range images {
			r.images = append(r.images, append([]byte(nil), img...))
		}
		*dst = append(*dst, r)
	}
}

func TestShipperFiresAtCommitPoint(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 4)
	var got []shipRec
	m.SetShipper(recordShipper(&got))

	tx := m.Begin()
	if err := tx.Write(1, seg(64, 0x11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(5, seg(64, 0x22)); err != nil {
		t.Fatal(err)
	}
	id := tx.id
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("shipper fired %d times, want 1", len(got))
	}
	if got[0].id != id {
		t.Fatalf("shipped id %d, want %d", got[0].id, id)
	}
	if len(got[0].addrs) != 2 || got[0].addrs[0] != 1 || got[0].addrs[1] != 5 {
		t.Fatalf("shipped addrs %v, want [1 5]", got[0].addrs)
	}
	if !bytes.Equal(got[0].images[0], seg(64, 0x11)) || !bytes.Equal(got[0].images[1], seg(64, 0x22)) {
		t.Fatal("shipped images do not match staged images")
	}

	// An aborted transaction ships nothing; an empty commit ships nothing.
	tx = m.Begin()
	if err := tx.Write(2, seg(64, 0x33)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := m.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("shipper fired %d times after abort/empty commit, want still 1", len(got))
	}

	// Removing the shipper stops the stream.
	m.SetShipper(nil)
	tx = m.Begin()
	if err := tx.Write(3, seg(64, 0x44)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("shipper fired %d times after removal, want still 1", len(got))
	}
}

func TestShipperNotCalledOnCrashBeforeCommitRecord(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 2)
	var got []shipRec
	m.SetShipper(recordShipper(&got))

	// Crash on the very first staged-image write: the commit record never
	// becomes durable, so nothing may be shipped (it was never acked).
	m.FailAfter(0)
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0x55)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit error = %v, want ErrCrashed", err)
	}
	if len(got) != 0 {
		t.Fatalf("shipper fired %d times before the commit record, want 0", len(got))
	}
}

func TestShipperFiresEvenWhenApplyCrashes(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 1)
	var got []shipRec
	m.SetShipper(recordShipper(&got))

	// Stage (1 image) + staged header + committed header = 3 writes; crash
	// on the 4th (the home apply). The commit record is durable, so the
	// entry must have been shipped even though the local apply crashed.
	m.FailAfter(3)
	tx := m.Begin()
	if err := tx.Write(7, seg(64, 0x66)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit error = %v, want ErrCrashed", err)
	}
	if len(got) != 1 {
		t.Fatalf("shipper fired %d times, want 1 (commit record was durable)", len(got))
	}
	// Local recovery completes the same transaction the shipper saw.
	replayed, _, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d transactions, want 1", replayed)
	}
}

func TestApplyShippedMirrorsLeader(t *testing.T) {
	leader, ldev, _ := newRig(t, 64, 32, 2, 4)
	follower, fdev, _ := newRig(t, 64, 32, 2, 4)

	// Wire leader commits straight into the follower.
	leader.SetShipper(func(id uint64, addrs []int, images [][]byte) {
		if err := follower.ApplyShipped(id, addrs, images); err != nil {
			t.Errorf("ApplyShipped: %v", err)
		}
	})

	for round := 0; round < 5; round++ {
		tx := leader.Begin()
		for e := 0; e < 3; e++ {
			addr := (round*3 + e) % 20
			if err := tx.Write(addr, seg(64, byte(round*16+e+1))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Every data segment the leader wrote reads back identically on the
	// follower device.
	for a := 0; a < 20; a++ {
		lb, err := ldev.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := fdev.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("segment %d differs between leader and follower", a)
		}
	}
}

func TestApplyShippedValidation(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 4)
	if err := m.ApplyShipped(1, []int{0, 1}, [][]byte{seg(64, 1)}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mismatched lengths error = %v, want ErrBadConfig", err)
	}
	if err := m.ApplyShipped(2, []int{-1}, [][]byte{seg(64, 1)}); !errors.Is(err, nvm.ErrBadAddress) {
		t.Fatalf("bad address error = %v, want ErrBadAddress", err)
	}
	if err := m.ApplyShipped(3, []int{0}, [][]byte{seg(32, 1)}); !errors.Is(err, nvm.ErrSegmentSize) {
		t.Fatalf("bad image size error = %v, want ErrSegmentSize", err)
	}
	// A valid empty entry is a no-op.
	if err := m.ApplyShipped(4, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterateCommittedYieldsRecoverableTail(t *testing.T) {
	m, _, _ := newRig(t, 64, 64, 3, 2)

	// Commit one transaction fully (slot invalidated: not visible), then
	// crash a second after its commit record but before the home apply
	// (committed slot left behind: visible).
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0x01)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	m.FailAfter(3) // 1 image + staged hdr + committed hdr, crash on apply
	tx = m.Begin()
	if err := tx.Write(9, seg(64, 0x77)); err != nil {
		t.Fatal(err)
	}
	wantID := tx.id
	if err := tx.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("commit error = %v, want ErrCrashed", err)
	}
	m.FailAfter(-1)

	var ids []uint64
	var addrs []int
	err := m.IterateCommitted(func(id uint64, as []int, images [][]byte) bool {
		ids = append(ids, id)
		addrs = append(addrs, as...)
		if !bytes.Equal(images[0], seg(64, 0x77)) {
			t.Fatal("iterated image does not match staged image")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != wantID {
		t.Fatalf("iterated ids %v, want [%d]", ids, wantID)
	}
	if len(addrs) != 1 || addrs[0] != 9 {
		t.Fatalf("iterated addrs %v, want [9]", addrs)
	}

	// Re-ship the tail to a follower, then finish local recovery: both
	// devices converge on the committed value.
	follower, fdev, _ := newRig(t, 64, 64, 3, 2)
	if err := m.IterateCommitted(func(id uint64, as []int, images [][]byte) bool {
		if err := follower.ApplyShipped(id, as, images); err != nil {
			t.Errorf("ApplyShipped: %v", err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if replayed, _, err := m.Recover(); err != nil || replayed != 1 {
		t.Fatalf("Recover = (%d, _, %v), want 1 replayed", replayed, err)
	}
	fb, err := fdev.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, seg(64, 0x77)) {
		t.Fatal("follower did not converge on the re-shipped value")
	}
}
