// Package deepdeterminism is a golden fixture for the deepdeterminism
// analyzer: wall-clock reads, the global math/rand source, and map-ordered
// output are flagged in entry points and — through the call graph — in
// everything they reach.
package deepdeterminism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Run is an experiment entry point. The seeded generator is fine; the
// wall-clock read is not, and describe's finding exists only because Run's
// call edge makes it reachable.
//
// lint:entrypoint
func Run(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	start := time.Now() // want "wall-clock time\.Now in experiment entry point deepdeterminism\.Run"
	_ = start
	return describe(rng.Intn(4))
}

// describe draws from the process-global source; it carries no marker of
// its own, so the finding below is purely inter-procedural.
func describe(n int) string {
	n += rand.Intn(8) // want "global math/rand\.Intn reachable from experiment entry point deepdeterminism\.Run \(deepdeterminism\.Run -> deepdeterminism\.describe\)"
	return fmt.Sprint(n)
}

// Tally feeds map iteration order straight into its result.
//
// lint:entrypoint
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order feeds output \(no sort call after the range\) in experiment entry point deepdeterminism\.Tally"
		total += v
	}
	return total
}

// Keys ranges over a map but sorts before returning — the idiomatic fix,
// not flagged.
//
// lint:entrypoint
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stamp demonstrates the escape hatch for sanctioned wall-clock reads.
//
// lint:entrypoint
func Stamp() int64 {
	return time.Now().UnixNano() // lint:allow deepdeterminism — fixture-only demonstration
}

// hidden is unreachable from every entry point: not flagged.
func hidden() int64 {
	return time.Now().UnixNano()
}
