package index

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRBTreeEmpty(t *testing.T) {
	var tr RBTree
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if _, ok := tr.Delete(5); ok {
		t.Fatal("Delete on empty tree succeeded")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreePutGet(t *testing.T) {
	var tr RBTree
	for i := uint64(0); i < 100; i++ {
		if _, existed := tr.Put(i, int64(i*10)); existed {
			t.Fatalf("key %d reported as existing", i)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := tr.Get(i)
		if !ok || v != int64(i*10) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeUpdate(t *testing.T) {
	var tr RBTree
	tr.Put(7, 1)
	old, existed := tr.Put(7, 2)
	if !existed || old != 1 {
		t.Fatalf("update returned (%d,%v)", old, existed)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after update", tr.Len())
	}
	if v, _ := tr.Get(7); v != 2 {
		t.Fatalf("Get = %d, want 2", v)
	}
}

func TestRBTreeDelete(t *testing.T) {
	var tr RBTree
	for i := uint64(0); i < 50; i++ {
		tr.Put(i, int64(i))
	}
	for i := uint64(0); i < 50; i += 2 {
		v, ok := tr.Delete(i)
		if !ok || v != int64(i) {
			t.Fatalf("Delete(%d) = (%d,%v)", i, v, ok)
		}
	}
	if tr.Len() != 25 {
		t.Fatalf("Len = %d, want 25", tr.Len())
	}
	for i := uint64(0); i < 50; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeRange(t *testing.T) {
	var tr RBTree
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		tr.Put(k, int64(k))
	}
	var got []uint64
	tr.Range(3, 7, func(k uint64, v int64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 100, func(uint64, int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

// Property: after any interleaving of puts and deletes, the tree matches a
// reference map and satisfies the red-black invariants.
func TestRBTreeMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, opCount uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var tr RBTree
		ref := map[uint64]int64{}
		n := int(opCount) + 50
		for i := 0; i < n; i++ {
			k := uint64(r.Intn(40)) // small key space forces collisions
			switch r.Intn(3) {
			case 0, 1:
				v := int64(r.Intn(1000))
				tr.Put(k, v)
				ref[k] = v
			case 2:
				_, okT := tr.Delete(k)
				_, okR := ref[k]
				if okT != okR {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range enumerates keys in strictly ascending order over the
// full key space.
func TestRBTreeRangeOrdered(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var tr RBTree
		for i := 0; i < 100; i++ {
			tr.Put(uint64(r.Intn(1000)), 0)
		}
		prev := int64(-1)
		ok := true
		tr.Range(0, ^uint64(0), func(k uint64, _ int64) bool {
			if int64(k) <= prev {
				ok = false
				return false
			}
			prev = int64(k)
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeListFIFO(t *testing.T) {
	f := NewFreeList([]int{1, 2, 3})
	if f.FreeCount() != 3 {
		t.Fatalf("FreeCount = %d", f.FreeCount())
	}
	a, err := f.Place(nil)
	if err != nil || a != 1 {
		t.Fatalf("Place = (%d,%v)", a, err)
	}
	f.Release(9, nil)
	for _, want := range []int{2, 3, 9} {
		a, err = f.Place(nil)
		if err != nil || a != want {
			t.Fatalf("Place = (%d,%v), want %d", a, err, want)
		}
	}
	if _, err := f.Place(nil); err != ErrNoSpace {
		t.Fatalf("empty Place err = %v, want ErrNoSpace", err)
	}
}

func BenchmarkRBTreePut(b *testing.B) {
	var tr RBTree
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i*2654435761), int64(i))
	}
}
