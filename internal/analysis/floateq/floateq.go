// Package floateq flags ==/!= between floating-point operands.
//
// The K-means/VAE math converges by driving residuals toward zero;
// comparing those residuals with exact equality is a classic source of
// non-terminating training loops (SMART-WRITE, arXiv:2511.04713, calls
// this out for NVM write-optimization models specifically). The one
// sanctioned exception is comparison against a literal 0, which the
// numeric kernels use as a "skip the no-op work" sentinel (e.g. the
// sparse-input fast paths in internal/mat): a value that was assigned
// exactly 0.0 compares reliably. Everything else must go through
// mat.EqualWithin, the epsilon comparison helper.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"e2nvm/internal/analysis"
)

// Analyzer flags floating-point equality comparisons.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands unless one side is a " +
		"literal 0 sentinel; use mat.EqualWithin for tolerance comparison",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use mat.EqualWithin (or an explicit ordered comparison) — exact equality on computed floats is unreliable",
				be.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether e has floating-point type (including untyped
// float constants).
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to 0.
func isZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
