// Package batch implements the small-write batching the paper describes in
// §4.1.4: grouping small key/value pairs into segment-sized batch records
// so E2-NVM maps free memory at batch granularity, shrinking the dynamic
// address pool's footprint and the padded fraction of each model input.
//
// The batcher sits on top of any KV store. Incoming puts accumulate in an
// open batch buffer; once the buffer reaches the batch payload size it is
// written as a single value under a synthetic batch key. A directory maps
// user keys to (batch, offset, length). Deletes punch holes; a batch whose
// live fraction drops below a threshold is compacted by rewriting its
// surviving entries into the open buffer.
package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KV is the store interface the batcher wraps (satisfied by
// kvstore.Store and e2nvm.Store).
type KV interface {
	Put(key uint64, value []byte) error
	Get(key uint64) ([]byte, bool, error)
	Delete(key uint64) (bool, error)
}

// batchKeyBase places synthetic batch keys far above user keys.
const batchKeyBase = uint64(1) << 63

// ErrKeyTooLarge is returned for user keys that collide with the batch key
// space.
var ErrKeyTooLarge = errors.New("batch: user key exceeds 2^63-1")

// ErrValueTooLarge is returned when a value exceeds the batch payload.
var ErrValueTooLarge = errors.New("batch: value exceeds batch payload")

type entryLoc struct {
	batch  uint64 // synthetic batch key, or 0 when still in the open buffer
	offset int
	length int
}

// Batcher coalesces small writes. Not safe for concurrent use; callers
// serialize (the underlying store may still be shared).
type Batcher struct {
	kv      KV
	payload int // batch record size

	dir map[uint64]entryLoc

	open    []byte            // accumulating batch buffer
	openDir map[uint64][2]int // key → (offset, length) within open buffer

	nextBatch uint64
	liveBytes map[uint64]int // per sealed batch: live payload bytes
	gcFrac    float64
}

// New creates a batcher writing payload-byte batch records through kv.
// gcFrac is the live fraction below which a sealed batch is compacted
// (default 0.5 when ≤ 0 or ≥ 1).
func New(kv KV, payload int, gcFrac float64) (*Batcher, error) {
	if payload < 16 {
		return nil, fmt.Errorf("batch: payload %d too small", payload)
	}
	if gcFrac <= 0 || gcFrac >= 1 {
		gcFrac = 0.5
	}
	return &Batcher{
		kv:        kv,
		payload:   payload,
		dir:       map[uint64]entryLoc{},
		openDir:   map[uint64][2]int{},
		nextBatch: batchKeyBase,
		liveBytes: map[uint64]int{},
		gcFrac:    gcFrac,
	}, nil
}

// entry layout inside a batch record: key(8) len(2) value(len). Deleted
// entries stay in place; the directory is authoritative.
func entrySize(v []byte) int { return 10 + len(v) }

// Put stores value under key, buffering until a batch fills.
func (b *Batcher) Put(key uint64, value []byte) error {
	if key >= batchKeyBase {
		return ErrKeyTooLarge
	}
	if entrySize(value) > b.payload {
		return fmt.Errorf("%w: %d > %d", ErrValueTooLarge, entrySize(value), b.payload)
	}
	if err := b.dropOld(key); err != nil {
		return err
	}
	if len(b.open)+entrySize(value) > b.payload {
		if err := b.Flush(); err != nil {
			return err
		}
	}
	off := len(b.open)
	var hdr [10]byte
	binary.LittleEndian.PutUint64(hdr[:8], key)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(len(value)))
	b.open = append(b.open, hdr[:]...)
	b.open = append(b.open, value...)
	b.openDir[key] = [2]int{off, len(value)}
	b.dir[key] = entryLoc{batch: 0, offset: off, length: len(value)}
	return nil
}

// dropOld removes key's previous version (open-buffer or sealed batch).
func (b *Batcher) dropOld(key uint64) error {
	loc, ok := b.dir[key]
	if !ok {
		return nil
	}
	if loc.batch == 0 {
		delete(b.openDir, key)
		// Dead bytes in the open buffer are reclaimed on flush-compact.
		delete(b.dir, key)
		return nil
	}
	b.liveBytes[loc.batch] -= entrySize(make([]byte, loc.length))
	delete(b.dir, key)
	return b.maybeGC(loc.batch)
}

// Flush seals the open buffer as a batch record.
func (b *Batcher) Flush() error {
	if len(b.openDir) == 0 {
		b.open = b.open[:0]
		return nil
	}
	// Compact live open entries (dead versions are skipped).
	compacted := make([]byte, 0, len(b.open))
	newOff := map[uint64]int{}
	for key, ol := range b.openDir {
		off, ln := ol[0], ol[1]
		newOff[key] = len(compacted)
		compacted = append(compacted, b.open[off:off+10+ln]...)
	}
	batchKey := b.nextBatch
	b.nextBatch++
	if err := b.kv.Put(batchKey, compacted); err != nil {
		return err
	}
	live := 0
	for key, ol := range b.openDir {
		b.dir[key] = entryLoc{batch: batchKey, offset: newOff[key], length: ol[1]}
		live += 10 + ol[1]
	}
	b.liveBytes[batchKey] = live
	b.open = b.open[:0]
	b.openDir = map[uint64][2]int{}
	return nil
}

// Get returns the value stored under key.
func (b *Batcher) Get(key uint64) ([]byte, bool, error) {
	loc, ok := b.dir[key]
	if !ok {
		return nil, false, nil
	}
	if loc.batch == 0 {
		out := make([]byte, loc.length)
		copy(out, b.open[loc.offset+10:loc.offset+10+loc.length])
		return out, true, nil
	}
	rec, ok, err := b.kv.Get(loc.batch)
	if err != nil || !ok {
		return nil, false, fmt.Errorf("batch: record %d missing: %v", loc.batch, err)
	}
	if loc.offset+10+loc.length > len(rec) {
		return nil, false, fmt.Errorf("batch: corrupt location for key %d", key)
	}
	out := make([]byte, loc.length)
	copy(out, rec[loc.offset+10:loc.offset+10+loc.length])
	return out, true, nil
}

// Delete removes key.
func (b *Batcher) Delete(key uint64) (bool, error) {
	if _, ok := b.dir[key]; !ok {
		return false, nil
	}
	if err := b.dropOld(key); err != nil {
		return false, err
	}
	return true, nil
}

// maybeGC compacts a sealed batch whose live fraction fell below gcFrac by
// re-inserting its survivors into the open buffer and deleting the record.
func (b *Batcher) maybeGC(batchKey uint64) error {
	live := b.liveBytes[batchKey]
	if live < 0 {
		live = 0
	}
	if float64(live) >= b.gcFrac*float64(b.payload) {
		return nil
	}
	rec, ok, err := b.kv.Get(batchKey)
	if err != nil {
		return err
	}
	if !ok {
		delete(b.liveBytes, batchKey)
		return nil
	}
	// Collect survivors before mutating state.
	type kvp struct {
		key uint64
		val []byte
	}
	var survivors []kvp
	for key, loc := range b.dir {
		if loc.batch != batchKey {
			continue
		}
		v := make([]byte, loc.length)
		copy(v, rec[loc.offset+10:loc.offset+10+loc.length])
		survivors = append(survivors, kvp{key, v})
	}
	delete(b.liveBytes, batchKey)
	if _, err := b.kv.Delete(batchKey); err != nil {
		return err
	}
	for _, s := range survivors {
		delete(b.dir, s.key) // avoid dropOld recursion on the dead batch
		if err := b.Put(s.key, s.val); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live user keys.
func (b *Batcher) Len() int { return len(b.dir) }

// Batches returns the number of sealed batch records currently alive.
func (b *Batcher) Batches() int { return len(b.liveBytes) }
