package nobce

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

// TestNoBCE drives the analyzer over canned check_bce output: one
// surviving in-loop check is flagged while prologue reslices, hint
// lines, cold exits, lint:allow sites, and unannotated functions stay
// silent.
func TestNoBCE(t *testing.T) {
	Reports = analysistest.CannedReports()
	defer func() { Reports = nil }()
	analysistest.RunProgram(t, "../testdata", Analyzer, "nobce")
}

// TestNoBCEDegraded: with no compiler feedback wired up the analyzer
// must be a silent no-op, not an error.
func TestNoBCEDegraded(t *testing.T) {
	Reports = nil
	analysistest.RunProgramExpectNone(t, "../testdata", Analyzer, "nobce")
}
