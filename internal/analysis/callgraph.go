package analysis

// This file implements the inter-procedural half of the framework: a call
// graph over the type-checked packages of one program, with enough edge
// metadata for whole-program ("Program") analyzers to compute reachability
// from annotated roots and to attribute a diagnostic found deep in a callee
// back to the entry point that reaches it.
//
// Resolution is static and conservative:
//
//   - direct calls to declared functions and concrete methods become
//     static edges (go/types resolves the callee object);
//   - calls through an interface method become dynamic edges fanning out
//     to every in-program concrete method whose receiver type implements
//     the interface (method sets via go/types); zero-candidate dynamic
//     calls dispatch only to out-of-program code and carry no edges;
//   - calls through a function value (a parameter, struct field, or
//     variable of function type) cannot be resolved and are recorded as
//     unresolved value calls, which strict analyzers may flag;
//   - creating a function literal adds a reference edge from the enclosing
//     function: a closure built on some path is conservatively assumed to
//     run on that path.
//
// Analyzers prune an edge by honoring a `lint:allow <name>` comment on the
// call site's line — the sanctioned way to declare a call a cold branch.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallKind classifies how a call site dispatches.
type CallKind int

// Call kinds.
const (
	// CallStatic targets one known function or concrete method.
	CallStatic CallKind = iota
	// CallDynamic dispatches through an interface; Targets holds every
	// in-program candidate implementation.
	CallDynamic
	// CallValue invokes a function value (parameter, field, variable);
	// the target cannot be resolved statically.
	CallValue
	// CallRef is not a call: the enclosing function creates a function
	// literal here. Reachability treats it as a potential call.
	CallRef
)

// Call is one call site (or function-literal reference) inside a FuncNode.
type Call struct {
	Site    token.Pos
	Kind    CallKind
	Callee  *FuncNode   // static/ref target inside the program, else nil
	Targets []*FuncNode // dynamic-dispatch candidates inside the program
	// External names the out-of-program callee (stdlib) of a static call
	// when Callee is nil.
	External *types.Func
}

// FuncNode is one function of the analyzed program: a declared function or
// method, or a function literal.
type FuncNode struct {
	Obj   *types.Func   // nil for function literals
	Decl  *ast.FuncDecl // nil for function literals
	Lit   *ast.FuncLit  // nil for declared functions
	Pkg   *Package
	Calls []Call

	name string
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the function body (never nil for nodes in the graph).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Name returns a short human-readable identifier: "pkg.Func",
// "pkg.(*T).Method", or "pkg.func@line" for literals.
func (n *FuncNode) Name() string { return n.name }

// DocContains reports whether the declaration's doc comment (or a trailing
// comment on the declaration line) carries the given lint marker, e.g.
// "lint:hotpath". Function literals have no doc and always report false.
func (n *FuncNode) DocContains(marker string) bool {
	if n.Decl == nil {
		return false
	}
	if n.Decl.Doc != nil {
		for _, c := range n.Decl.Doc.List {
			if strings.Contains(c.Text, marker) {
				return true
			}
		}
	}
	// A trailing comment on the func line also counts; scan the file's
	// comments for one on the declaration's line.
	declLine := n.Pkg.Fset.Position(n.Decl.Pos()).Line
	for _, f := range n.Pkg.Files {
		if f.Pos() <= n.Decl.Pos() && n.Decl.Pos() < f.End() {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if n.Pkg.Fset.Position(c.Pos()).Line == declLine && strings.Contains(c.Text, marker) {
						return true
					}
				}
			}
		}
	}
	return false
}

// InspectOwn walks the node's own body, not descending into nested
// function literals (each literal is its own FuncNode). When visiting the
// node of a literal, directly nested literals are likewise skipped.
func (n *FuncNode) InspectOwn(visit func(ast.Node) bool) {
	body := n.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			visit(x) // let the visitor see the creation site itself
			return false
		}
		return visit(x)
	})
}

// CallGraph is the static call graph of one program.
type CallGraph struct {
	pkgs  []*Package
	nodes map[*types.Func]*FuncNode
	lits  map[*ast.FuncLit]*FuncNode
	all   []*FuncNode
}

// Nodes returns every function of the program in source order.
func (g *CallGraph) Nodes() []*FuncNode { return g.all }

// NodeOf returns the graph node for a declared function object, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.nodes[fn] }

// LitNode returns the graph node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.lits[lit] }

// BuildCallGraph constructs the call graph over the given packages (one
// loader's worth of type-checked packages sharing a FileSet).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		pkgs:  pkgs,
		nodes: map[*types.Func]*FuncNode{},
		lits:  map[*ast.FuncLit]*FuncNode{},
	}
	// Pass 1: a node per declared function and per function literal.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, name: declName(pkg, fd, obj)}
				g.nodes[obj] = n
				g.all = append(g.all, n)
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					if lit, ok := x.(*ast.FuncLit); ok {
						ln := &FuncNode{Lit: lit, Pkg: pkg,
							name: fmt.Sprintf("%s.func@%d", pkg.Types.Name(), pkg.Fset.Position(lit.Pos()).Line)}
						g.lits[lit] = ln
						g.all = append(g.all, ln)
					}
					return true
				})
			}
		}
	}
	// Pass 2: resolve each node's own call sites.
	for _, n := range g.all {
		g.resolveCalls(n)
	}
	return g
}

func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Types.Name() + "." + fd.Name.Name
	}
	recv := types.TypeString(obj.Type().(*types.Signature).Recv().Type(), func(p *types.Package) string { return "" })
	return fmt.Sprintf("%s.(%s).%s", pkg.Types.Name(), recv, fd.Name.Name)
}

// resolveCalls populates n.Calls from its own body.
func (g *CallGraph) resolveCalls(n *FuncNode) {
	info := n.Pkg.TypesInfo
	n.InspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				n.Calls = append(n.Calls, Call{Site: x.Pos(), Kind: CallRef, Callee: g.lits[x]})
			}
		case *ast.CallExpr:
			if c, ok := g.resolveCall(info, x); ok {
				n.Calls = append(n.Calls, c)
			}
		}
		return true
	})
}

// resolveCall classifies one call expression. Conversions and builtin
// calls produce no edge (ok=false).
func (g *CallGraph) resolveCall(info *types.Info, call *ast.CallExpr) (Call, bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return Call{}, false // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			return g.staticEdge(call.Pos(), obj), true
		case *types.Builtin, nil:
			return Call{}, false
		default:
			// Variable of function type.
			return Call{Site: call.Pos(), Kind: CallValue}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				if iface := dispatchInterface(sel); iface != nil {
					return Call{Site: call.Pos(), Kind: CallDynamic,
						Targets: g.implementations(iface, obj.Name())}, true
				}
				return g.staticEdge(call.Pos(), obj), true
			default:
				// Struct field of function type.
				return Call{Site: call.Pos(), Kind: CallValue}, true
			}
		}
		// Package-qualified call: pkg.Fn(...).
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			return g.staticEdge(call.Pos(), obj), true
		case *types.Builtin, nil:
			return Call{}, false
		default:
			return Call{Site: call.Pos(), Kind: CallValue}, true
		}
	case *ast.FuncLit:
		return Call{Site: call.Pos(), Kind: CallStatic, Callee: g.lits[f]}, true
	default:
		// Calling the result of another call, an index expression, etc.
		return Call{Site: call.Pos(), Kind: CallValue}, true
	}
}

func (g *CallGraph) staticEdge(site token.Pos, obj *types.Func) Call {
	if n := g.nodes[obj]; n != nil {
		return Call{Site: site, Kind: CallStatic, Callee: n}
	}
	return Call{Site: site, Kind: CallStatic, External: obj}
}

// dispatchInterface returns the interface a method selection dispatches
// through, or nil for a concrete method call.
func dispatchInterface(sel *types.Selection) *types.Interface {
	recv := sel.Recv()
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		return iface
	}
	return nil
}

// implementations returns the in-program concrete methods named name on
// types implementing iface, in deterministic order.
func (g *CallGraph) implementations(iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, pkg := range g.pkgs {
		scope := pkg.Types.Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			for i := 0; i < ms.Len(); i++ {
				m, ok := ms.At(i).Obj().(*types.Func)
				if !ok || m.Name() != name {
					continue
				}
				if n := g.nodes[m]; n != nil && !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ReachStep records how a function was first reached during Reach: the
// calling node, the call site, and the root whose traversal found it.
// Roots map to a ReachStep with From == nil and Root == themselves.
type ReachStep struct {
	From *FuncNode
	Site token.Pos
	Root *FuncNode
}

// Reach computes breadth-first reachability from roots. skip, when
// non-nil, is consulted per edge and returning true prunes it (the hook
// analyzers use to honor lint:allow comments on call sites). The returned
// map contains every reached node, including the roots.
func (g *CallGraph) Reach(roots []*FuncNode, skip func(from *FuncNode, c Call) bool) map[*FuncNode]ReachStep {
	reach := map[*FuncNode]ReachStep{}
	queue := make([]*FuncNode, 0, len(roots))
	sorted := append([]*FuncNode(nil), roots...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos() < sorted[j].Pos() })
	for _, r := range sorted {
		if _, ok := reach[r]; ok {
			continue
		}
		reach[r] = ReachStep{Root: r}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		root := reach[n].Root
		for _, c := range n.Calls {
			if skip != nil && skip(n, c) {
				continue
			}
			targets := c.Targets
			if c.Callee != nil {
				targets = []*FuncNode{c.Callee}
			}
			for _, t := range targets {
				if t == nil {
					continue
				}
				if _, ok := reach[t]; ok {
					continue
				}
				reach[t] = ReachStep{From: n, Site: c.Site, Root: root}
				queue = append(queue, t)
			}
		}
	}
	return reach
}

// PathTo reconstructs the discovery chain root → ... → n as a " -> "
// joined string of node names.
func PathTo(reach map[*FuncNode]ReachStep, n *FuncNode) string {
	var names []string
	for cur := n; cur != nil; {
		names = append(names, cur.Name())
		step, ok := reach[cur]
		if !ok || step.From == nil {
			break
		}
		cur = step.From
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
