package lockdiscipline

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "lockdiscipline")
}
