package energy

import (
	"math"
	"sync"
	"testing"
)

func TestAccounting(t *testing.T) {
	p := New()
	p.AddNVM(1000, 500)
	p.AddDRAM(64)
	p.AddCompute(10)
	wantE := 1000 + 64*DRAMPJPerBit + 10*ComputePJPerFLOP
	if got := p.EnergyPJ(); math.Abs(got-wantE) > 1e-9 {
		t.Fatalf("EnergyPJ = %v, want %v", got, wantE)
	}
	wantT := 500 + 10*ComputeNsPerFLOP
	if got := p.TimeNs(); math.Abs(got-wantT) > 1e-9 {
		t.Fatalf("TimeNs = %v, want %v", got, wantT)
	}
	p.AdvanceTime(100)
	if got := p.TimeNs(); math.Abs(got-wantT-100) > 1e-9 {
		t.Fatalf("AdvanceTime: %v", got)
	}
}

func TestSampleSeries(t *testing.T) {
	p := New()
	a := p.Sample("start")
	p.AddNVM(2000, 1000)
	b := p.Sample("after")
	if b.EnergyPJ-a.EnergyPJ != 2000 {
		t.Fatalf("delta energy = %v", b.EnergyPJ-a.EnergyPJ)
	}
	s := p.Series()
	if len(s) != 2 || s[0].Label != "start" || s[1].Label != "after" {
		t.Fatalf("series = %+v", s)
	}
	// 2000 pJ over 1000 ns = 2 pJ/ns = 2 mW.
	if w := PowerW(a, b); math.Abs(w-2e-3) > 1e-12 {
		t.Fatalf("PowerW = %v, want 0.002", w)
	}
	if PowerW(b, a) != 0 {
		t.Fatal("non-positive interval power should be 0")
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.AddCompute(5)
	p.Sample("x")
	p.Reset()
	if p.EnergyPJ() != 0 || p.TimeNs() != 0 || len(p.Series()) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.AddNVM(1, 1)
				p.AddDRAM(1)
				p.AddCompute(1)
			}
		}()
	}
	wg.Wait()
	want := 8000 * (1.0 + DRAMPJPerBit + ComputePJPerFLOP)
	if got := p.EnergyPJ(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("EnergyPJ = %v, want %v", got, want)
	}
}
