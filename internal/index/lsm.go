package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"e2nvm/internal/nvm"
)

// --------------------------------------------------------------- wisckey --

// WiscKey follows Lu et al.'s key/value separation: values go to a value
// log (here: segments obtained from the Allocator, so E2-NVM can steer
// them), while only small (key, address) records flow through the LSM.
// The in-DRAM table serves lookups; key runs are persisted as sorted
// batches and periodically compacted, reproducing WiscKey's key-metadata
// write traffic without its value-movement amplification.
type WiscKey struct {
	baseStats
	dev   *nvm.Device
	meta  *FreeList
	pages pageWriter
	vals  valueZone

	mem        map[uint64]int64 // unflushed (key → value addr, -1 = tombstone)
	memLimit   int
	runs       []*keyRun // persisted sorted runs, newest first
	maxRuns    int
	table      map[uint64]int // live key → value addr (DRAM lookup view)
	runEntries int            // entries per run segment
}

type keyRun struct {
	addrs   []int // meta segments holding this run
	entries int
}

// NewWiscKey creates a WiscKey-style store. memLimit is the number of
// entries buffered before a flush (default 64); maxRuns triggers
// compaction (default 4).
func NewWiscKey(dev *nvm.Device, meta *FreeList, values Allocator, memLimit, maxRuns int) (*WiscKey, error) {
	if values == nil {
		return nil, fmt.Errorf("wisckey: value allocator required (WiscKey always separates values)")
	}
	if memLimit <= 0 {
		memLimit = 64
	}
	if maxRuns <= 0 {
		maxRuns = 4
	}
	return &WiscKey{
		dev:        dev,
		meta:       meta,
		pages:      pageWriter{dev},
		vals:       valueZone{dev: dev, alloc: values},
		mem:        map[uint64]int64{},
		memLimit:   memLimit,
		maxRuns:    maxRuns,
		table:      map[uint64]int{},
		runEntries: dev.SegmentSize() / 16, // key(8) + addr(8) per entry
	}, nil
}

// Name implements Store.
func (w *WiscKey) Name() string { return "WiscKey" }

// Put implements Store.
func (w *WiscKey) Put(key uint64, value []byte) error {
	w.countValue(value)
	if old, ok := w.table[key]; ok {
		if err := w.vals.freeValue(old); err != nil {
			return err
		}
	}
	addr, err := w.vals.writeValue(value)
	if err != nil {
		return err
	}
	w.table[key] = addr
	w.mem[key] = int64(addr)
	if len(w.mem) >= w.memLimit {
		return w.flush()
	}
	return nil
}

// flush persists the memtable as a sorted run of (key, addr) records.
func (w *WiscKey) flush() error {
	keys := make([]uint64, 0, len(w.mem))
	for k := range w.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	run := &keyRun{entries: len(keys)}
	for lo := 0; lo < len(keys); lo += w.runEntries {
		hi := lo + w.runEntries
		if hi > len(keys) {
			hi = len(keys)
		}
		img := make([]byte, 0, (hi-lo)*16)
		var tmp [16]byte
		for _, k := range keys[lo:hi] {
			binary.LittleEndian.PutUint64(tmp[:8], k)
			binary.LittleEndian.PutUint64(tmp[8:], uint64(w.mem[k]))
			img = append(img, tmp[:]...)
		}
		addr, err := w.meta.Place(nil)
		if err != nil {
			return fmt.Errorf("wisckey: run allocation: %w", err)
		}
		if err := w.pages.writePage(addr, img); err != nil {
			return err
		}
		run.addrs = append(run.addrs, addr)
	}
	w.runs = append([]*keyRun{run}, w.runs...)
	w.mem = map[uint64]int64{}
	if len(w.runs) > w.maxRuns {
		return w.compact()
	}
	return nil
}

// compact merges all runs into one sorted run built from the live table
// and releases the old run segments.
func (w *WiscKey) compact() error {
	keys := make([]uint64, 0, len(w.table))
	for k := range w.table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	merged := &keyRun{entries: len(keys)}
	for lo := 0; lo < len(keys); lo += w.runEntries {
		hi := lo + w.runEntries
		if hi > len(keys) {
			hi = len(keys)
		}
		img := make([]byte, 0, (hi-lo)*16)
		var tmp [16]byte
		for _, k := range keys[lo:hi] {
			binary.LittleEndian.PutUint64(tmp[:8], k)
			binary.LittleEndian.PutUint64(tmp[8:], uint64(w.table[k]))
			img = append(img, tmp[:]...)
		}
		addr, err := w.meta.Place(nil)
		if err != nil {
			return fmt.Errorf("wisckey: compaction allocation: %w", err)
		}
		if err := w.pages.writePage(addr, img); err != nil {
			return err
		}
		merged.addrs = append(merged.addrs, addr)
	}
	for _, r := range w.runs {
		for _, a := range r.addrs {
			w.meta.Release(a, nil)
		}
	}
	w.runs = []*keyRun{merged}
	return nil
}

// Get implements Store.
func (w *WiscKey) Get(key uint64) ([]byte, bool, error) {
	addr, ok := w.table[key]
	if !ok {
		return nil, false, nil
	}
	v, err := w.vals.readValue(addr)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements Store.
func (w *WiscKey) Delete(key uint64) (bool, error) {
	addr, ok := w.table[key]
	if !ok {
		return false, nil
	}
	if err := w.vals.freeValue(addr); err != nil {
		return false, err
	}
	delete(w.table, key)
	w.mem[key] = -1 // tombstone
	if len(w.mem) >= w.memLimit {
		return true, w.flush()
	}
	return true, nil
}

// Len returns the number of live keys (test helper).
func (w *WiscKey) Len() int { return len(w.table) }

// --------------------------------------------------------------- novelsm --

// NoveLSM follows Kannan et al.: the mutable memtable itself lives in NVM,
// so puts append (key, addr) records in place into memtable segments with
// byte-addressable writes instead of a WAL + DRAM memtable. When the NVM
// memtable arena fills, entries are compacted into sorted immutable
// segments. Values are placed through the Allocator like the other stores.
type NoveLSM struct {
	baseStats
	dev   *nvm.Device
	meta  *FreeList
	pages pageWriter
	vals  valueZone

	arenaSegs  int   // memtable arena size in segments
	arena      []int // allocated arena segment addresses
	arenaUsed  int   // entries currently in the arena
	perSeg     int   // entries per segment
	memEntries []memEntry

	sstables []*keyRun
	table    map[uint64]int // live key → value addr
}

type memEntry struct {
	key  uint64
	addr int64
}

// NewNoveLSM creates a NoveLSM-style store with an NVM memtable arena of
// arenaSegs segments (default 4).
func NewNoveLSM(dev *nvm.Device, meta *FreeList, values Allocator, arenaSegs int) (*NoveLSM, error) {
	if values == nil {
		return nil, fmt.Errorf("novelsm: value allocator required")
	}
	if arenaSegs <= 0 {
		arenaSegs = 4
	}
	n := &NoveLSM{
		dev:       dev,
		meta:      meta,
		pages:     pageWriter{dev},
		vals:      valueZone{dev: dev, alloc: values},
		arenaSegs: arenaSegs,
		perSeg:    dev.SegmentSize() / 16,
		table:     map[uint64]int{},
	}
	for i := 0; i < arenaSegs; i++ {
		addr, err := meta.Place(nil)
		if err != nil {
			return nil, fmt.Errorf("novelsm: arena allocation: %w", err)
		}
		n.arena = append(n.arena, addr)
	}
	return n, nil
}

// Name implements Store.
func (n *NoveLSM) Name() string { return "NoveLSM" }

// appendEntry writes one (key, addr) record into the arena in place,
// rewriting only the segment that holds the new record (differential
// write keeps the flip cost to the record bytes).
func (n *NoveLSM) appendEntry(e memEntry) error {
	n.memEntries = append(n.memEntries, e)
	seg := n.arenaUsed / n.perSeg
	n.arenaUsed++
	// Serialize the whole segment image (existing entries + the new one);
	// the device's differential write only flips the new record's bits.
	lo := seg * n.perSeg
	hi := lo + n.perSeg
	if hi > len(n.memEntries) {
		hi = len(n.memEntries)
	}
	img := make([]byte, 0, (hi-lo)*16)
	var tmp [16]byte
	for _, me := range n.memEntries[lo:hi] {
		binary.LittleEndian.PutUint64(tmp[:8], me.key)
		binary.LittleEndian.PutUint64(tmp[8:], uint64(me.addr))
		img = append(img, tmp[:]...)
	}
	if err := n.pages.writePage(n.arena[seg], img); err != nil {
		return err
	}
	if n.arenaUsed >= n.arenaSegs*n.perSeg {
		return n.compactArena()
	}
	return nil
}

// compactArena freezes the memtable into a sorted sstable and resets the
// arena (zero-writing the arena segments, as NoveLSM recycles its NVM
// memtable space).
func (n *NoveLSM) compactArena() error {
	keys := make([]uint64, 0, len(n.table))
	for k := range n.table {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sst := &keyRun{entries: len(keys)}
	for lo := 0; lo < len(keys); lo += n.perSeg {
		hi := lo + n.perSeg
		if hi > len(keys) {
			hi = len(keys)
		}
		img := make([]byte, 0, (hi-lo)*16)
		var tmp [16]byte
		for _, k := range keys[lo:hi] {
			binary.LittleEndian.PutUint64(tmp[:8], k)
			binary.LittleEndian.PutUint64(tmp[8:], uint64(n.table[k]))
			img = append(img, tmp[:]...)
		}
		addr, err := n.meta.Place(nil)
		if err != nil {
			return fmt.Errorf("novelsm: sstable allocation: %w", err)
		}
		if err := n.pages.writePage(addr, img); err != nil {
			return err
		}
		sst.addrs = append(sst.addrs, addr)
	}
	// Release superseded sstables.
	for _, old := range n.sstables {
		for _, a := range old.addrs {
			n.meta.Release(a, nil)
		}
	}
	n.sstables = []*keyRun{sst}
	// Reset the arena in place.
	for _, a := range n.arena {
		if err := n.pages.writePage(a, nil); err != nil {
			return err
		}
	}
	n.memEntries = n.memEntries[:0]
	n.arenaUsed = 0
	return nil
}

// Put implements Store.
func (n *NoveLSM) Put(key uint64, value []byte) error {
	n.countValue(value)
	if old, ok := n.table[key]; ok {
		if err := n.vals.freeValue(old); err != nil {
			return err
		}
	}
	addr, err := n.vals.writeValue(value)
	if err != nil {
		return err
	}
	n.table[key] = addr
	return n.appendEntry(memEntry{key: key, addr: int64(addr)})
}

// Get implements Store.
func (n *NoveLSM) Get(key uint64) ([]byte, bool, error) {
	addr, ok := n.table[key]
	if !ok {
		return nil, false, nil
	}
	v, err := n.vals.readValue(addr)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements Store.
func (n *NoveLSM) Delete(key uint64) (bool, error) {
	addr, ok := n.table[key]
	if !ok {
		return false, nil
	}
	if err := n.vals.freeValue(addr); err != nil {
		return false, err
	}
	delete(n.table, key)
	return true, n.appendEntry(memEntry{key: key, addr: -1})
}

// Len returns the number of live keys (test helper).
func (n *NoveLSM) Len() int { return len(n.table) }
