// Package experiments contains one runner per figure of the paper's
// evaluation. Each runner regenerates the figure's rows/series on the
// simulated PCM device, scaled down by a configurable factor so the whole
// suite completes on a laptop. The cmd/e2nvm-bench CLI and the repository's
// bench_test.go expose every runner.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"e2nvm/internal/dap"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
)

// RunConfig controls an experiment run.
type RunConfig struct {
	// Scale multiplies the experiment's default workload sizes. 1.0
	// reproduces the repo's reference configuration; tests use smaller
	// values. Values ≤ 0 are treated as 1.
	Scale float64
	// Seed drives all randomness.
	Seed int64
}

func (c RunConfig) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaleInt returns max(lo, round(base*scale)).
func (c RunConfig) scaleInt(base, lo int) int {
	n := int(float64(base) * c.scale())
	if n < lo {
		n = lo
	}
	return n
}

// Result is an experiment's output: the table the paper's figure plots,
// optional labeled series, and free-form notes.
type Result struct {
	ID     string
	Title  string
	Table  *stats.Table
	Series []stats.Series
	Notes  []string
}

// JSON renders the result as a machine-readable document.
func (r *Result) JSON() ([]byte, error) {
	type series struct {
		Name string    `json:"name"`
		X    []float64 `json:"x"`
		Y    []float64 `json:"y"`
	}
	doc := struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Headers []string   `json:"headers,omitempty"`
		Rows    [][]string `json:"rows,omitempty"`
		Series  []series   `json:"series,omitempty"`
		Notes   []string   `json:"notes,omitempty"`
	}{ID: r.ID, Title: r.Title, Notes: r.Notes}
	if r.Table != nil {
		doc.Headers = r.Table.Headers
		doc.Rows = r.Table.Rows()
	}
	for _, s := range r.Series {
		doc.Series = append(doc.Series, series{Name: s.Name, X: s.X, Y: s.Y})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Print renders the result to w.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		r.Table.Write(w)
	}
	for _, s := range r.Series {
		fmt.Fprintf(w, "series %s (%d points)\n", s.Name, s.Len())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Runner computes one figure.
type Runner func(RunConfig) (*Result, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	registry[id] = r
}

// Get returns the runner for an experiment id (e.g. "fig10").
func Get(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------- common --

// predictor maps a segment image to a cluster id. Geometry errors are
// programming bugs in the drivers (they construct their own inputs), so
// call sites go through mustPredict.
type predictor interface {
	PredictBytes(b []byte) (int, error)
}

// mustPredict unwraps a predict result; experiment inputs are self-made,
// so a geometry error is a bug in the experiment, not a runtime condition.
func mustPredict(c int, err error) int {
	if err != nil {
		panic(err)
	}
	return c
}

// placer chooses destinations for incoming writes.
type placer interface {
	place(content []byte) (int, bool)
	recycle(addr int, content []byte)
}

// clusterPlacer places through a predictor and a dynamic address pool.
type clusterPlacer struct {
	model predictor
	pool  *dap.Pool
	// fallbacks counts placements served from a different cluster than
	// predicted (the predicted cluster was empty).
	fallbacks int
}

func newClusterPlacer(model predictor, k int, dev *nvm.Device, freeAddrs []int) (*clusterPlacer, error) {
	pool, err := dap.New(k)
	if err != nil {
		return nil, err
	}
	// Bulk-predict when the model supports it (core.Model does, in
	// parallel); fall back to sequential prediction otherwise.
	imgs := make([][]byte, len(freeAddrs))
	for i, a := range freeAddrs {
		img, err := dev.Peek(a)
		if err != nil {
			return nil, err
		}
		imgs[i] = img
	}
	if bp, ok := model.(interface {
		PredictBytesBatch([][]byte) ([]int, error)
	}); ok {
		clusters, err := bp.PredictBytesBatch(imgs)
		if err != nil {
			return nil, err
		}
		for i, c := range clusters {
			pool.Add(c, freeAddrs[i])
		}
	} else {
		for i, img := range imgs {
			pool.Add(mustPredict(model.PredictBytes(img)), freeAddrs[i])
		}
	}
	return &clusterPlacer{model: model, pool: pool}, nil
}

func (p *clusterPlacer) place(content []byte) (int, bool) {
	cluster := mustPredict(p.model.PredictBytes(content))
	addr, servedBy, ok := p.pool.Get(cluster)
	if ok && servedBy != cluster {
		p.fallbacks++
	}
	return addr, ok
}

func (p *clusterPlacer) recycle(addr int, content []byte) {
	p.pool.Add(mustPredict(p.model.PredictBytes(content)), addr)
}

// fifoPlacer is the arbitrary-placement baseline.
type fifoPlacer struct {
	free []int
}

func newFIFOPlacer(freeAddrs []int) *fifoPlacer {
	return &fifoPlacer{free: append([]int(nil), freeAddrs...)}
}

func (p *fifoPlacer) place(content []byte) (int, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	a := p.free[0]
	p.free = p.free[1:]
	return a, true
}

func (p *fifoPlacer) recycle(addr int, content []byte) {
	p.free = append(p.free, addr)
}

// runPlacement streams items through a placer onto dev, keeping at most
// liveCap segments occupied (older segments are deleted and recycled, the
// steady-state churn of the paper's experiments). It returns per-item bit
// flips.
func runPlacement(dev *nvm.Device, p placer, items [][]byte, liveCap int) ([]float64, error) {
	flips := make([]float64, 0, len(items))
	var live []int
	for _, item := range items {
		addr, ok := p.place(item)
		if !ok {
			return nil, fmt.Errorf("experiments: placement pool exhausted")
		}
		res, err := dev.Write(addr, item)
		if err != nil {
			return nil, err
		}
		flips = append(flips, float64(res.BitsFlipped))
		live = append(live, addr)
		if len(live) > liveCap {
			victim := live[0]
			live = live[1:]
			img, err := dev.Peek(victim)
			if err != nil {
				return nil, err
			}
			p.recycle(victim, img)
		}
	}
	// Drain the remaining live segments so the pool is conserved across
	// consecutive phases (their content stays on the device either way).
	for _, victim := range live {
		img, err := dev.Peek(victim)
		if err != nil {
			return nil, err
		}
		p.recycle(victim, img)
	}
	return flips, nil
}

// seededDevice builds a device whose segments are pre-filled with the
// given images (cycled if fewer than numSegs).
func seededDevice(cfg nvm.Config, images [][]byte) (*nvm.Device, error) {
	dev, err := nvm.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	if len(images) == 0 {
		return dev, nil
	}
	for a := 0; a < cfg.NumSegments; a++ {
		if err := dev.FillSegment(a, images[a%len(images)]); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// toBytes converts a float bit vector dataset row into a segment image of
// segSize bytes (truncating or zero-padding).
func toBytes(item []float64, segSize int) []byte {
	out := make([]byte, segSize)
	n := len(item)
	if max := segSize * 8; n > max {
		n = max
	}
	for j := 0; j < n; j++ {
		if item[j] >= 0.5 {
			out[j>>3] |= 1 << (uint(j) & 7)
		}
	}
	return out
}

// toBytesAll converts a whole dataset.
func toBytesAll(items [][]float64, segSize int) [][]byte {
	out := make([][]byte, len(items))
	for i, it := range items {
		out[i] = toBytes(it, segSize)
	}
	return out
}

// addrRange returns [0, n).
func addrRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
