// Package hotpathalloc defines an inter-procedural Analyzer that keeps the
// store's hot paths allocation-free.
//
// A function marked with a `// lint:hotpath` doc comment is a root; the
// analyzer walks the call graph from every root and flags heap-allocating
// constructs in any transitively reached function:
//
//   - make and new
//   - append whose destination is not an explicit reslice (the
//     append(buf[:0], ...) reuse idiom is allowed: it only grows the first
//     few times, then reuses the backing array)
//   - any call into package fmt (formatting always allocates)
//   - string <-> []byte conversions
//   - slice/map composite literals and &T{} literals
//   - function-literal creation (closure environments live on the heap)
//   - passing a concrete value to a non-error interface parameter
//     (interface boxing)
//   - calls through unresolvable function values, which the analyzer
//     cannot prove allocation-free
//
// Escapes: a `lint:allow hotpathalloc` comment on a call site prunes that
// edge from the traversal (declaring the callee a cold branch), and the
// same comment on an allocation site suppresses that one finding. A block
// whose final statement returns a freshly constructed error (or panics) is
// treated as a cold error exit and skipped wholesale.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"e2nvm/internal/analysis"
)

// Marker is the doc-comment marker that makes a function a hot-path root.
const Marker = "lint:hotpath"

// Analyzer flags heap allocations reachable from lint:hotpath roots.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "hotpathalloc",
	Doc: "functions marked lint:hotpath, and everything they transitively call, " +
		"must not heap-allocate; suppress cold branches with lint:allow hotpathalloc",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Graph
	var roots []*analysis.FuncNode
	for _, n := range g.Nodes() {
		if n.DocContains(Marker) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reach(roots, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site)
	})
	for _, n := range g.Nodes() {
		step, ok := reach[n]
		if !ok {
			continue
		}
		CheckFunc(pass, n, step.Root, reach, "hot path")
	}
	return nil
}

// CheckFunc scans one reached function's own body for allocating
// constructs and reports them against the root that reaches it, labelled
// with kind ("hot path" here; the kernelpure analyzer reuses the scan
// with its own label and root set).
func CheckFunc(pass *analysis.ProgramPass, n, root *analysis.FuncNode, reach map[*analysis.FuncNode]analysis.ReachStep, kind string) {
	cold := ColdRanges(n)
	flag := func(site token.Pos, what string) {
		for _, r := range cold {
			if r.Contains(site) {
				return
			}
		}
		if pass.Allowed(site) {
			return
		}
		if n == root {
			pass.Reportf(site, "%s on %s %s", what, kind, root.Name())
			return
		}
		pass.Reportf(root.Pos(), "%s %s reaches %s in %s (%s) at %s",
			kind, root.Name(), what, n.Name(), analysis.PathTo(reach, n), pass.Fset.Position(site))
	}

	info := n.Pkg.TypesInfo
	n.InspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				flag(x.Pos(), "function-literal allocation (closure)")
			}
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				flag(x.Pos(), "composite-literal allocation")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					flag(x.Pos(), "&T{} heap allocation")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, info, x, flag)
		}
		return true
	})

	// Edges the graph could not resolve cannot be proven allocation-free.
	for _, c := range n.Calls {
		if c.Kind == analysis.CallValue {
			flag(c.Site, "call through function value (cannot verify allocation-free)")
		}
	}
}

// checkCall classifies one call expression: builtin allocators, fmt calls,
// allocating conversions, and interface boxing of arguments.
func checkCall(pass *analysis.ProgramPass, info *types.Info, call *ast.CallExpr, flag func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversion: only string <-> []byte (and string <-> []rune) allocate.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.Types[call.Args[0]].Type
		if src != nil && allocatingConversion(src.Underlying(), dst) {
			flag(call.Pos(), "string/[]byte conversion allocation")
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				flag(call.Pos(), id.Name+" allocation")
			case "append":
				// append(dst[:0], ...) reuses dst's backing array; any
				// other destination may grow on every call.
				if len(call.Args) > 0 {
					if _, reuse := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reuse {
						flag(call.Pos(), "append growth allocation")
					}
				}
			}
			return
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			flag(call.Pos(), "fmt."+obj.Name()+" call (formatting allocates)")
			return
		}
	}

	// Interface boxing: a concrete argument passed to a non-error
	// interface parameter is heap-boxed.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		default:
			continue
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface || isErrorType(pt) {
			continue
		}
		_ = iface
		at := info.Types[arg].Type
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if isPointerLike(at) {
			// Pointers, channels, maps, funcs box without copying the
			// pointee; still an interface allocation in the general case,
			// but pointer-shaped values share the original allocation and
			// small-int/pointer boxing is the idiomatic escape valve we
			// tolerate. Flag value types only.
			continue
		}
		flag(arg.Pos(), "interface boxing of "+at.String())
	}
}

func allocatingConversion(src, dst types.Type) bool {
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isErrorType(t types.Type) bool {
	return t.String() == "error" || strings.HasSuffix(t.String(), ".error")
}

func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// PosRange is a half-open source range.
type PosRange struct{ lo, hi token.Pos }

// Contains reports whether p falls within the range.
func (r PosRange) Contains(p token.Pos) bool { return r.lo <= p && p < r.hi }

// ColdRanges collects blocks that end by returning a freshly constructed
// error or panicking — cold error exits whose allocations (the error
// itself, its formatting) are off the measured path.
func ColdRanges(n *analysis.FuncNode) []PosRange {
	var out []PosRange
	info := n.Pkg.TypesInfo
	n.InspectOwn(func(x ast.Node) bool {
		var list []ast.Stmt
		switch x := x.(type) {
		case *ast.BlockStmt:
			if x == n.Body() {
				return true // the function body itself is never cold
			}
			list = x.List
		case *ast.CaseClause:
			list = x.Body
		case *ast.CommClause:
			list = x.Body
		default:
			return true
		}
		if len(list) == 0 {
			return true
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			if len(last.Results) > 0 && isErrorConstruction(info, last.Results[len(last.Results)-1]) {
				out = append(out, PosRange{list[0].Pos(), last.End()})
			}
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					out = append(out, PosRange{list[0].Pos(), last.End()})
				}
			}
		}
		return true
	})
	return out
}

// isErrorConstruction reports whether e definitely produces an error:
// a fmt.Errorf/errors.New call, a reference to a package-level error
// variable, or any call returning exactly one error.
func isErrorConstruction(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		t := info.Types[e].Type
		return t != nil && isErrorType(t)
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			return v.Parent() == v.Pkg().Scope() && isErrorType(v.Type())
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Parent() == v.Pkg().Scope() && isErrorType(v.Type())
		}
	}
	return false
}
