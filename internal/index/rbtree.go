// Package index provides the data-index structures of the paper: the
// red-black tree that maps keys to NVM segment addresses in the E2-NVM
// key/value store (Figure 3, Algorithm 1 step 7), and the five persistent
// store designs — B+-Tree, FP-Tree, Path Hashing, WiscKey, NoveLSM — whose
// bit-flip behaviour before/after E2-NVM augmentation is compared in
// Figure 12.
package index

import "fmt"

type color bool

const (
	red   color = false
	black color = true
)

type rbNode struct {
	key                 uint64
	val                 int64
	c                   color
	left, right, parent *rbNode
}

// RBTree is a red-black tree mapping uint64 keys to int64 values (NVM
// segment addresses in the KV store). The zero value is ready to use. It is
// not safe for concurrent mutation; the KV store serializes access.
//
// Deleted nodes are kept on an internal free list and reused by Put, so a
// steady-state update/delete workload stops allocating once the tree has
// reached its working-set size.
type RBTree struct {
	root *rbNode
	size int
	free *rbNode // chained through .right
}

// takeNode returns a recycled node (or a fresh one) initialized for
// insertion.
func (t *RBTree) takeNode(key uint64, val int64, parent *rbNode) *rbNode {
	if n := t.free; n != nil {
		t.free = n.right
		*n = rbNode{key: key, val: val, c: red, parent: parent}
		return n
	}
	return &rbNode{key: key, val: val, c: red, parent: parent} // lint:allow hotpathalloc — cold until the working set peaks, then fully recycled
}

// releaseNode pushes a detached node onto the free list.
func (t *RBTree) releaseNode(n *rbNode) {
	*n = rbNode{right: t.free}
	t.free = n
}

// Len returns the number of keys.
func (t *RBTree) Len() int { return t.size }

// Get returns the value for key.
func (t *RBTree) Get(key uint64) (int64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Put inserts or updates key. It returns the previous value, if any.
func (t *RBTree) Put(key uint64, val int64) (int64, bool) {
	var parent *rbNode
	n := t.root
	for n != nil {
		parent = n
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			old := n.val
			n.val = val
			return old, true
		}
	}
	node := t.takeNode(key, val, parent)
	switch {
	case parent == nil:
		t.root = node
	case key < parent.key:
		parent.left = node
	default:
		parent.right = node
	}
	t.size++
	t.insertFixup(node)
	return 0, false
}

func (t *RBTree) insertFixup(z *rbNode) {
	for z.parent != nil && z.parent.c == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.c == red {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.c = black
				gp.c = red
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if u != nil && u.c == red {
				z.parent.c = black
				u.c = black
				gp.c = red
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.c = black
				gp.c = red
				t.rotateLeft(gp)
			}
		}
	}
	t.root.c = black
}

func (t *RBTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *RBTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Delete removes key, returning its value if present.
func (t *RBTree) Delete(key uint64) (int64, bool) {
	z := t.root
	for z != nil && z.key != key {
		if key < z.key {
			z = z.left
		} else {
			z = z.right
		}
	}
	if z == nil {
		return 0, false
	}
	val := z.val
	t.deleteNode(z)
	t.size--
	t.releaseNode(z)
	return val, true
}

func (t *RBTree) deleteNode(z *rbNode) {
	y := z
	yOrig := y.c
	var x *rbNode
	var xParent *rbNode
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minNode(z.right)
		yOrig = y.c
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.c = z.c
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
}

func (t *RBTree) transplant(u, v *rbNode) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *RBTree) deleteFixup(x *rbNode, parent *rbNode) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if !isBlack(w) {
				w.c = black
				parent.c = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.right) {
					if w.left != nil {
						w.left.c = black
					}
					w.c = red
					t.rotateRight(w)
					w = parent.right
				}
				w.c = parent.c
				parent.c = black
				if w.right != nil {
					w.right.c = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if !isBlack(w) {
				w.c = black
				parent.c = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.c = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.left) {
					if w.right != nil {
						w.right.c = black
					}
					w.c = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.c = parent.c
				parent.c = black
				if w.left != nil {
					w.left.c = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.c = black
	}
}

func isBlack(n *rbNode) bool { return n == nil || n.c == black }

func minNode(n *rbNode) *rbNode {
	for n.left != nil {
		n = n.left
	}
	return n
}

// Range calls fn for every key in [lo, hi] in ascending order, stopping if
// fn returns false. It backs the KV store's SCAN operation.
func (t *RBTree) Range(lo, hi uint64, fn func(key uint64, val int64) bool) {
	rangeNode(t.root, lo, hi, fn)
}

func rangeNode(n *rbNode, lo, hi uint64, fn func(uint64, int64) bool) bool {
	if n == nil {
		return true
	}
	if n.key > lo {
		if !rangeNode(n.left, lo, hi, fn) {
			return false
		}
	}
	if n.key >= lo && n.key <= hi {
		if !fn(n.key, n.val) {
			return false
		}
	}
	if n.key < hi {
		return rangeNode(n.right, lo, hi, fn)
	}
	return true
}

// Validate checks the red-black invariants (root black, no red-red edge,
// equal black height) and the BST ordering; it returns an error describing
// the first violation. Intended for tests.
func (t *RBTree) Validate() error {
	if t.root != nil && t.root.c != black {
		return fmt.Errorf("rbtree: root is red")
	}
	_, err := validateNode(t.root, nil, nil)
	return err
}

// validateNode checks subtree n against open bounds (nil = unbounded) and
// returns its black height.
func validateNode(n *rbNode, lo, hi *uint64) (int, error) {
	if n == nil {
		return 1, nil
	}
	if lo != nil && n.key <= *lo {
		return 0, fmt.Errorf("rbtree: key %d violates lower bound %d", n.key, *lo)
	}
	if hi != nil && n.key >= *hi {
		return 0, fmt.Errorf("rbtree: key %d violates upper bound %d", n.key, *hi)
	}
	if n.c == red && (!isBlack(n.left) || !isBlack(n.right)) {
		return 0, fmt.Errorf("rbtree: red node %d has red child", n.key)
	}
	lh, err := validateNode(n.left, lo, &n.key)
	if err != nil {
		return 0, err
	}
	rh, err := validateNode(n.right, &n.key, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at key %d (%d vs %d)", n.key, lh, rh)
	}
	h := lh
	if n.c == black {
		h++
	}
	return h, nil
}
