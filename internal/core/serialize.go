package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"e2nvm/internal/kmeans"
	"e2nvm/internal/lstm"
	"e2nvm/internal/padding"
	"e2nvm/internal/vae"
)

// snapshot is the gob-encoded on-disk form of a trained E2-NVM model. A
// version field guards against format drift.
type snapshot struct {
	Version   int
	Cfg       Config
	VAE       *vae.Snapshot
	Centroids [][]float64
	SSE       float64
	TrainedOn int
	SSECurve  []float64

	PadOnes, PadBits uint64
	LSTM             *lstm.Snapshot // nil unless PadType == Learned
	LSTMWindow       int
	LSTMPredict      int
}

const snapshotVersion = 1

// Save serializes the trained model (encoder weights, centroids, padding
// state) so a store can reopen without retraining.
func (m *Model) Save(w io.Writer) error {
	s := snapshot{
		Version:   snapshotVersion,
		Cfg:       m.cfg,
		VAE:       m.vae.Snapshot(),
		Centroids: m.km.Centroids,
		SSE:       m.km.SSE,
		TrainedOn: m.trainedOn,
		SSECurve:  m.sseCurve,
	}
	m.mu.Lock()
	s.PadOnes, s.PadBits = m.padder.DatasetStats()
	if net, win, pred := m.padder.Model(); net != nil {
		s.LSTM = net.Snapshot()
		s.LSTMWindow = win
		s.LSTMPredict = pred
	}
	m.mu.Unlock()
	return gob.NewEncoder(w).Encode(&s)
}

// Load reconstructs a model previously written by Save. The restored model
// predicts identically to the saved one.
func Load(r io.Reader) (*Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d: %w", s.Version, snapshotVersion, ErrBadSnapshot)
	}
	v, err := vae.FromSnapshot(s.VAE)
	if err != nil {
		return nil, err
	}
	if len(s.Centroids) == 0 {
		return nil, fmt.Errorf("core: snapshot has no centroids: %w", ErrBadSnapshot)
	}
	m := &Model{
		cfg:       s.Cfg,
		vae:       v,
		km:        &kmeans.Model{K: len(s.Centroids), Centroids: s.Centroids, SSE: s.SSE},
		trainedOn: s.TrainedOn,
		sseCurve:  s.SSECurve,
	}
	p := padding.New(s.Cfg.PadLocation, s.Cfg.PadType, s.Cfg.Seed+1)
	p.SetDatasetStats(s.PadOnes, s.PadBits)
	if s.LSTM != nil {
		net, err := lstm.FromSnapshot(s.LSTM)
		if err != nil {
			return nil, err
		}
		p.SetModel(net, s.LSTMWindow, s.LSTMPredict)
	}
	m.padder = p
	// Rebuild the inference kernel from the restored weights: the table is
	// derived state, so it is never serialized, and the restored kernel
	// gets a fresh version of its own.
	m.kern = buildKernel(m.vae, m.km)
	return m, nil
}
