package e2nvm

import (
	"bytes"
	"fmt"
	"testing"
)

func cachedConfig() Config {
	cfg := smallConfig()
	cfg.CacheEnabled = true
	return cfg
}

func TestCacheHitMissMetrics(t *testing.T) {
	s, err := Open(cachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// First read misses and fills; the rest are DRAM hits with no device
	// reads.
	for i := 0; i < 5; i++ {
		v, ok, err := s.Get(1)
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
		}
	}
	devReadsAfterFill := s.Metrics().Reads
	for i := 0; i < 100; i++ {
		if _, _, err := s.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Reads != devReadsAfterFill {
		t.Fatalf("hot Gets touched the device: reads %d -> %d", devReadsAfterFill, m.Reads)
	}
	if m.CacheHits < 100 || m.CacheMisses == 0 {
		t.Fatalf("cache counters: %+v", m)
	}
	h := s.Health()
	if h.CacheEntries != 1 || h.CacheBytes <= 0 {
		t.Fatalf("health cache fields: %+v", h)
	}
	// ResetMetrics zeroes counters but keeps residency.
	s.ResetMetrics()
	m = s.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("cache counters survived reset: %+v", m)
	}
	if h := s.Health(); h.CacheEntries != 1 {
		t.Fatalf("reset dropped cache residency: %+v", h)
	}
}

// TestCacheCoherence pins invalidate-before-ack at the facade: after any
// write path returns — Put, Delete, PutBatch — a read must never serve the
// overwritten value, even when the old value was cached hot.
func TestCacheCoherence(t *testing.T) {
	s, err := Open(cachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(7)
	if err := s.Put(key, []byte("old")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ { // make it hot and cached
		s.Get(key)
	}
	if err := s.Put(key, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Get(key); string(v) != "new" {
		t.Fatalf("Get after Put = %q, want new", v)
	}

	// PutBatch invalidates every key it wrote.
	keys := []uint64{7, 8, 9}
	vals := [][]byte{[]byte("b7"), []byte("b8"), []byte("b9")}
	for _, k := range keys {
		s.Get(k)
	}
	if err := s.PutBatch(keys, vals, nil); err != nil {
		t.Fatal(err)
	}
	dsts := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	if err := s.GetBatch(keys, dsts, oks, nil); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !oks[i] || !bytes.Equal(dsts[i], vals[i]) {
			t.Fatalf("GetBatch(%d) = (%q,%v), want %q", k, dsts[i], oks[i], vals[i])
		}
	}
	// A second GetBatch is served from cache; values must still match.
	if err := s.GetBatch(keys, dsts, oks, nil); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !oks[i] || !bytes.Equal(dsts[i], vals[i]) {
			t.Fatalf("cached GetBatch(%d) = (%q,%v), want %q", k, dsts[i], oks[i], vals[i])
		}
	}

	// Delete invalidates before acknowledging.
	if ok, err := s.Delete(key); err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("Get served a deleted key from cache")
	}
}

// TestCacheDisabledServesIdentically drives the same operation sequence
// through a cached and an uncached store built from the same seed and
// asserts every read returns the same bytes — the cache is transparent —
// while the uncached store reports zero cache and steering activity (the
// CacheEnabled=false path is the pre-cache code exactly).
func TestCacheDisabledServesIdentically(t *testing.T) {
	plain, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Open(cachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	val := func(k uint64, r int) []byte { return []byte(fmt.Sprintf("k%d-r%d", k, r)) }
	for r := 0; r < 3; r++ {
		for k := uint64(0); k < 16; k++ {
			if err := plain.Put(k, val(k, r)); err != nil {
				t.Fatal(err)
			}
			if err := cached.Put(k, val(k, r)); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 16; k++ {
			pv, pok, perr := plain.Get(k)
			cv, cok, cerr := cached.Get(k)
			if perr != nil || cerr != nil || pok != cok || !bytes.Equal(pv, cv) {
				t.Fatalf("round %d key %d: plain (%q,%v,%v) vs cached (%q,%v,%v)",
					r, k, pv, pok, perr, cv, cok, cerr)
			}
		}
	}
	m := plain.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 0 || m.CacheEvictions != 0 || m.SteeredPlacements != 0 {
		t.Fatalf("uncached store reports cache activity: %+v", m)
	}
	if h := plain.Health(); h.CacheEntries != 0 || h.CacheBytes != 0 {
		t.Fatalf("uncached store reports cache residency: %+v", h)
	}
}

// TestResetMetricsClearsReplicationCounters is the regression test for the
// ResetMetrics bug: on a replicated store, Failovers, MigratedRecords, and
// the per-shard replication counters survived a reset because the
// cluster's atomics were never rebased.
func TestResetMetricsClearsReplicationCounters(t *testing.T) {
	s, err := Open(replConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k0 := keysOfShard(2, 0, 8)
	for _, k := range k0 {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Fence shard 0's leader twice: first a failover, then — replicas
	// exhausted — a live migration into shard 1.
	fenceShard(t, s, 0)
	for _, k := range k0 {
		if err := s.Put(k, []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	fenceShard(t, s, 0)
	for _, k := range k0[:len(k0)/2] {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Quiesce()
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()

	m := s.Metrics()
	if m.Failovers == 0 || m.MigratedRecords == 0 {
		t.Fatalf("test premise: expected failover and migration activity, got %+v", m)
	}

	s.ResetMetrics()

	if m := s.Metrics(); m.Failovers != 0 || m.MigratedRecords != 0 {
		t.Fatalf("Metrics after reset: Failovers=%d MigratedRecords=%d, want 0/0", m.Failovers, m.MigratedRecords)
	}
	for i, sm := range s.ShardMetrics() {
		if sm.Failovers != 0 || sm.MigratedRecords != 0 {
			t.Fatalf("ShardMetrics[%d] after reset: %+v", i, sm)
		}
	}
	if h := s.Health(); h.Failovers != 0 {
		t.Fatalf("Health after reset: Failovers=%d, want 0", h.Failovers)
	}
	for i, sh := range s.ShardHealth() {
		if sh.Failovers != 0 {
			t.Fatalf("ShardHealth[%d] after reset: Failovers=%d", i, sh.Failovers)
		}
	}
	for _, r := range s.Replication() {
		if r.Failovers != 0 || r.Migrated != 0 {
			t.Fatalf("Replication after reset: %+v", r)
		}
	}
	// The store still works and new activity counts from zero.
	for _, k := range k0 {
		if err := s.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Failovers != 0 {
		t.Fatalf("Failovers after quiet writes: %d", m.Failovers)
	}
}

// TestChaosCacheFailoverNoStaleReads extends the chaos suite to the cache:
// on a replicated store with the cache enabled, keys are read hot into
// DRAM, their shard's leader is fenced (failover), and every key is
// overwritten; reads after the acked overwrites must never serve the
// cached pre-failover values. A second fence drains the shard through
// live migration; reads must still match the last acked write.
func TestChaosCacheFailoverNoStaleReads(t *testing.T) {
	cfg := replConfig(2, 2)
	cfg.CacheEnabled = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k0 := keysOfShard(2, 0, 8)
	val := func(k uint64, r int) []byte { return []byte(fmt.Sprintf("k%d-r%d", k, r)) }
	for _, k := range k0 {
		if err := s.Put(k, val(k, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Heat the keys so the pre-failover values are cached.
	for i := 0; i < 20; i++ {
		for _, k := range k0 {
			if v, ok, err := s.Get(k); err != nil || !ok || !bytes.Equal(v, val(k, 0)) {
				t.Fatalf("warm Get(%d) = (%q,%v,%v)", k, v, ok, err)
			}
		}
	}
	if m := s.Metrics(); m.CacheHits == 0 {
		t.Fatalf("test premise: keys not cached, %+v", m)
	}

	// Round 1: failover. Acked overwrites must defeat the cached values.
	fenceShard(t, s, 0)
	for _, k := range k0 {
		if err := s.Put(k, val(k, 1)); err != nil {
			t.Fatalf("Put(%d) during failover: %v", k, err)
		}
		if v, ok, err := s.Get(k); err != nil || !ok || !bytes.Equal(v, val(k, 1)) {
			t.Fatalf("stale read after failover: Get(%d) = (%q,%v,%v), want %q", k, v, ok, err, val(k, 1))
		}
	}

	// Round 2: drain. The keyspace migrates into shard 1; cached entries
	// for migrated keys must still reflect the last acked writes.
	fenceShard(t, s, 0)
	for _, k := range k0[:len(k0)/2] {
		if err := s.Put(k, val(k, 2)); err != nil {
			t.Fatalf("Put(%d) during drain: %v", k, err)
		}
	}
	s.Quiesce()
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	for i, k := range k0 {
		want := val(k, 1)
		if i < len(k0)/2 {
			want = val(k, 2)
		}
		for pass := 0; pass < 3; pass++ { // miss+fill, then cached passes
			v, ok, err := s.Get(k)
			if err != nil || !ok || !bytes.Equal(v, want) {
				t.Fatalf("post-drain Get(%d) pass %d = (%q,%v,%v), want %q", k, pass, v, ok, err, want)
			}
		}
	}
	// Cached reads must agree with the store byte for byte.
	for _, k := range k0 {
		cv, cok, cerr := s.Get(k)
		uv, uok, uerr := s.uncachedGetInto(k, nil)
		if cerr != nil || uerr != nil || cok != uok || !bytes.Equal(cv, uv) {
			t.Fatalf("cache/store divergence on %d: (%q,%v,%v) vs (%q,%v,%v)", k, cv, cok, cerr, uv, uok, uerr)
		}
	}
}
