package experiments

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("abl-txn", AblationTxnOverhead) }

// AblationTxnOverhead quantifies the cost of PMDK-style transactional
// persistence (the paper persists writes with PMDK transactions): every
// put is routed through a redo log — staged image, commit record, apply,
// invalidate — which multiplies the device writes and flips of the same
// logical workload.
func AblationTxnOverhead(cfg RunConfig) (*Result, error) {
	const segSize = 64
	numSegs := cfg.scaleInt(384, 96)
	puts := cfg.scaleInt(600, 120)
	const k = 6

	vg := workload.NewValueGen(segSize-kvstore.RecordOverhead, k, 0.03, cfg.Seed)
	seed := func(dev *nvm.Device) error {
		for a := 0; a < numSegs; a++ {
			img := make([]byte, segSize)
			img[0] = 1
			copy(img[11:], vg.For(uint64(a)))
			if err := dev.FillSegment(a, img); err != nil {
				return err
			}
		}
		return nil
	}

	// One model shared by both modes (identical placement decisions).
	sampleDev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
	if err != nil {
		return nil, err
	}
	if err := seed(sampleDev); err != nil {
		return nil, err
	}
	imgs := make([][]float64, numSegs)
	for a := 0; a < numSegs; a++ {
		b, err := sampleDev.Peek(a)
		if err != nil {
			return nil, err
		}
		imgs[a] = core.BytesToBits(b)
	}
	model, err := core.Train(imgs, core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	table := stats.NewTable("mode", "device_writes", "flips/put", "energy_pJ/put")
	for _, crashSafe := range []bool{false, true} {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			return nil, err
		}
		if err := seed(dev); err != nil {
			return nil, err
		}
		st, err := kvstore.OpenWith(dev, model, kvstore.Options{CrashSafe: crashSafe})
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		r := rand.New(rand.NewSource(cfg.Seed + 1))
		for i := 0; i < puts; i++ {
			key := uint64(r.Intn(numSegs / 4))
			if err := st.Put(key, vg.ForVersion(key, i)); err != nil {
				return nil, err
			}
		}
		s := dev.Stats()
		name := "raw writes"
		if crashSafe {
			name = "redo-log transactions"
		}
		table.AddRow(name, s.Writes, float64(s.BitsFlipped)/float64(puts), s.EnergyPJ/float64(puts))
	}
	return &Result{
		ID:    "abl-txn",
		Title: "Ablation: PMDK-style transactional persistence overhead",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d puts over %d segments × %d B, k=%d", puts, numSegs, segSize, k),
			"redo logging multiplies writes (stage + commit + apply + invalidate) — the paper's real-Optane numbers include this PMDK cost",
		},
	}, nil
}
