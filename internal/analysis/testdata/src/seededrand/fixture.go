// Package seededrand is a golden fixture for the seededrand analyzer.
package seededrand

import "math/rand"

// Bad draws from the process-global source.
func Bad() int {
	return rand.Intn(10) // want "global math/rand.Intn breaks seed reproducibility"
}

// BadShuffle mutates the global source through Shuffle and Seed.
func BadShuffle(xs []int) {
	rand.Seed(42) // want "global math/rand.Seed"
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

// Good draws from an injected source; constructors are allowed.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodInjected uses method calls on the injected generator.
func GoodInjected(rng *rand.Rand) float64 {
	return rng.Float64()
}

// Allowed demonstrates the escape hatch for sanctioned uses.
func Allowed() int {
	return rand.Int() // lint:allow seededrand — fixture-only demonstration
}
