package main

import (
	"os"
	"strings"
	"testing"

	"e2nvm"
)

func testStore(t *testing.T) *e2nvm.Store {
	t.Helper()
	s, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 64, NumSegments: 64, Clusters: 3, TrainEpochs: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n])
}

func TestExecutePutGetDelete(t *testing.T) {
	s := testStore(t)
	out := capture(t, func() { execute(s, []string{"put", "5", "hello", "world"}) })
	if !strings.Contains(out, "bit flips") {
		t.Fatalf("put output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"get", "5"}) })
	if !strings.Contains(out, "hello world") {
		t.Fatalf("get output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"del", "5"}) })
	if !strings.Contains(out, "bit flips") {
		t.Fatalf("del output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"get", "5"}) })
	if !strings.Contains(out, "not found") {
		t.Fatalf("get after del: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"del", "5"}) })
	if !strings.Contains(out, "not found") {
		t.Fatalf("double del: %q", out)
	}
}

func TestExecuteScanAndStats(t *testing.T) {
	s := testStore(t)
	for _, k := range []string{"1", "2", "3"} {
		capture(t, func() { execute(s, []string{"put", k, "v" + k}) })
	}
	out := capture(t, func() { execute(s, []string{"scan", "1", "2"}) })
	if !strings.Contains(out, "(2 keys)") {
		t.Fatalf("scan output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"stats"}) })
	if !strings.Contains(out, "writes=") || !strings.Contains(out, "flips=") {
		t.Fatalf("stats output: %q", out)
	}
}

func TestExecuteErrorsAndHelp(t *testing.T) {
	s := testStore(t)
	out := capture(t, func() { execute(s, []string{"put", "notanumber", "v"}) })
	if !strings.Contains(out, "bad key") {
		t.Fatalf("bad key output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"put", "1"}) })
	if !strings.Contains(out, "usage") {
		t.Fatalf("short put output: %q", out)
	}
	out = capture(t, func() { execute(s, []string{"frobnicate"}) })
	if !strings.Contains(out, "commands:") {
		t.Fatalf("help output: %q", out)
	}
	if done := execute(s, nil); done {
		t.Fatal("empty command should not quit")
	}
	if done := execute(s, []string{"quit"}); !done {
		t.Fatal("quit should end the loop")
	}
}

func TestExecuteRetrain(t *testing.T) {
	s := testStore(t)
	out := capture(t, func() { execute(s, []string{"retrain"}) })
	if !strings.Contains(out, "done") {
		t.Fatalf("retrain output: %q", out)
	}
}
