// Videostore: persist CCTV-style video frames through E2-NVM. Full frames
// exercise the fixed-width fast path; cropped frames (a partially received
// or downscaled frame) exercise the learned-padding path of §4 — the
// padded bits steer the placement decision but are never written to NVM.
//
//	go run ./examples/videostore
package main

import (
	"fmt"
	"log"

	"e2nvm"
	"e2nvm/internal/workload"
)

const (
	segSize = 128 // one frame per segment
	numSegs = 512
	frames  = 1200
)

func main() {
	video := workload.SherbrookeLike(frames+numSegs, segSize*8, 3)

	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: segSize,
		NumSegments: numSegs,
		Clusters:    6,
		TrainEpochs: 8,
		PadType:     e2nvm.PadLearned, // LSTM-generated padding for short frames
		PadLocation: e2nvm.PadEnd,
		Seed:        1,
		// The device starts out holding the first 30 seconds of footage
		// (the paper's setup); the rest of the video overwrites it.
		SeedContent: func(addr int, seg []byte) {
			copy(seg, frameBytes(video, addr))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	store.ResetMetrics()

	// Phase 1: store full frames — every frame replaces the oldest one.
	const window = 256 // frames kept live
	for f := 0; f < frames/2; f++ {
		key := uint64(f % window)
		if err := store.Put(key, frameBytes(video, numSegs+f)[:store.MaxValue()]); err != nil {
			log.Fatal(err)
		}
	}
	full := store.Metrics()
	fmt.Printf("full frames:    %5d writes, %.4f flips/data-bit, %.2f uJ\n",
		full.Writes, full.FlipsPerDataBit, full.EnergyPJ/1e6)

	// Phase 2: cropped frames (e.g. a reduced-rate stream) — 25% of each
	// frame is missing; the learned padding reconstructs plausible bits
	// for the prediction only.
	store.ResetMetrics()
	for f := frames / 2; f < frames; f++ {
		key := uint64(f % window)
		frame := frameBytes(video, numSegs+f)
		cropped := frame[:len(frame)*3/4]
		if err := store.Put(key, cropped[:min(len(cropped), store.MaxValue())]); err != nil {
			log.Fatal(err)
		}
	}
	crop := store.Metrics()
	fmt.Printf("cropped frames: %5d writes, %.4f flips/data-bit, %.2f uJ\n",
		crop.Writes, crop.FlipsPerDataBit, crop.EnergyPJ/1e6)
	fmt.Printf("max writes to any segment: %d (wear spread across %d segments)\n",
		crop.MaxSegmentWrites, numSegs)
}

func frameBytes(v *workload.Dataset, i int) []byte {
	return v.Bytes(i % len(v.Items))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
