package kvstore

import "testing"

// putKeys inserts keys with single-byte values equal to the key's low byte.
func putKeys(t *testing.T, s *Store, keys ...uint64) {
	t.Helper()
	for _, k := range keys {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
}

func collectScan(t *testing.T, s *Store, lo, hi uint64) []uint64 {
	t.Helper()
	var keys []uint64
	if err := s.Scan(lo, hi, func(k uint64, v []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestScanEmptyStore(t *testing.T) {
	s := openStore(t, 32, 16, Options{})
	if keys := collectScan(t, s, 0, ^uint64(0)); len(keys) != 0 {
		t.Fatalf("scan of empty store visited %v", keys)
	}
}

func TestScanEmptyRange(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	putKeys(t, s, 1, 2, 3, 4, 5)
	if keys := collectScan(t, s, 100, 200); len(keys) != 0 {
		t.Fatalf("scan past all keys visited %v", keys)
	}
	// A gap strictly between existing keys is also empty.
	putKeys(t, s, 50)
	if keys := collectScan(t, s, 6, 49); len(keys) != 0 {
		t.Fatalf("scan of key gap visited %v", keys)
	}
}

func TestScanInvertedRange(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	putKeys(t, s, 1, 2, 3, 4, 5)
	if keys := collectScan(t, s, 5, 1); len(keys) != 0 {
		t.Fatalf("inverted range visited %v, want nothing", keys)
	}
}

func TestScanInclusiveBounds(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	putKeys(t, s, 10, 20, 30, 40)
	// lo and hi land exactly on existing keys: both endpoints included.
	keys := collectScan(t, s, 20, 30)
	if len(keys) != 2 || keys[0] != 20 || keys[1] != 30 {
		t.Fatalf("scan [20,30] = %v, want [20 30]", keys)
	}
	// Degenerate range on one existing key.
	keys = collectScan(t, s, 20, 20)
	if len(keys) != 1 || keys[0] != 20 {
		t.Fatalf("scan [20,20] = %v, want [20]", keys)
	}
	// Degenerate range on a missing key.
	if keys = collectScan(t, s, 21, 21); len(keys) != 0 {
		t.Fatalf("scan [21,21] = %v, want nothing", keys)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	putKeys(t, s, 1, 2, 3, 4, 5, 6, 7, 8)
	var keys []uint64
	if err := s.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		keys = append(keys, k)
		return len(keys) < 3
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("early-stopped scan visited %v, want first 3 keys", keys)
	}
}

func TestGetInto(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// nil dst grows to fit.
	v, ok, err := s.GetInto(1, nil)
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("GetInto(1, nil) = (%q, %v, %v)", v, ok, err)
	}
	// A large enough buffer is reused in place.
	buf := make([]byte, 0, 16)
	v, ok, err = s.GetInto(1, buf)
	if err != nil || !ok || string(v) != "hello" {
		t.Fatalf("GetInto(1, buf) = (%q, %v, %v)", v, ok, err)
	}
	if &v[0] != &buf[:1][0] {
		t.Fatal("GetInto allocated despite sufficient capacity")
	}
	// Miss returns the (empty) buffer and ok=false.
	v, ok, err = s.GetInto(2, buf)
	if err != nil || ok || len(v) != 0 {
		t.Fatalf("GetInto miss = (%q, %v, %v)", v, ok, err)
	}
	// Steady-state reads through a reused buffer do not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, _, err = s.GetInto(1, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("GetInto allocates %v per op with a warm buffer, want 0", allocs)
	}
}

func TestIndexMoreClampsToDevice(t *testing.T) {
	s := openStore(t, 32, 64, Options{IndexFraction: 0.5})
	if got := s.Indexed(); got != 32 {
		t.Fatalf("Indexed = %d after half-indexed open, want 32", got)
	}
	// Asking for far more than remains clamps at the device size.
	added, err := s.IndexMore(1000)
	if err != nil {
		t.Fatal(err)
	}
	if added != 32 {
		t.Fatalf("IndexMore added %d, want the remaining 32", added)
	}
	if got := s.Indexed(); got != 64 {
		t.Fatalf("Indexed = %d after clamped IndexMore, want 64", got)
	}
	// Fully indexed: further requests are no-ops.
	added, err = s.IndexMore(5)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("IndexMore on fully indexed store added %d, want 0", added)
	}
	// Zero and negative requests are no-ops too.
	if added, err = s.IndexMore(0); err != nil || added != 0 {
		t.Fatalf("IndexMore(0) = (%d, %v), want (0, nil)", added, err)
	}
	if added, err = s.IndexMore(-3); err != nil || added != 0 {
		t.Fatalf("IndexMore(-3) = (%d, %v), want (0, nil)", added, err)
	}
}
