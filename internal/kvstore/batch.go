package kvstore

import (
	"fmt"
)

// putBatchBlock bounds how many records one PutBatch stages for blocked
// prediction before placing them, capping the staging scratch at
// putBatchBlock segment images.
const putBatchBlock = 16

// PutBatch stores len(keys) key/value pairs under a single lock
// acquisition, staging records in blocks of putBatchBlock and amortizing
// model inference through the kernel's blocked multi-sample path
// (core.Model.PredictBytesBlock). values must be index-aligned with keys;
// errs, when non-nil, must have the same length and receives each item's
// outcome (nil on success).
//
// Items apply in index order — a later duplicate key supersedes an
// earlier one exactly as sequential Puts would — and one item's failure
// does not abort the rest; the returned error is the first failure. Like
// Put, the steady-state path does not allocate.
//
// lint:hotpath
func (s *Store) PutBatch(keys []uint64, values [][]byte, errs []error) error {
	if len(values) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return fmt.Errorf("kvstore: PutBatch of %d keys, %d values, %d errs: %w",
			len(keys), len(values), len(errs), ErrBadOptions)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for lo := 0; lo < len(keys); lo += putBatchBlock {
		hi := lo + putBatchBlock
		if hi > len(keys) {
			hi = len(keys)
		}
		var blockErrs []error
		if errs != nil {
			blockErrs = errs[lo:hi]
		}
		if err := s.putBlockLocked(keys[lo:hi], values[lo:hi], blockErrs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.mbPadding && s.putsSinceDensity >= densityRefreshEvery {
		s.putsSinceDensity = 0
		s.refreshDensityLocked()
	}
	if s.opts.AutoRetrain && s.pool.NeedsRetrain() {
		s.retrainAsyncLocked() // lint:allow hotpathalloc — retraining is the deliberate slow path (§4.1.4)
	}
	return firstErr
}

// putBlockLocked stages one block of records into the batch scratch,
// predicts their clusters in one kernel pass, then places them in index
// order. Per-item failures land in errs (when non-nil) as pre-constructed
// sentinels or placement errors; the first failure is returned. Callers
// hold s.mu.
//
// lint:hotpath
func (s *Store) putBlockLocked(keys []uint64, values [][]byte, errs []error) error {
	segSize := s.dev.SegmentSize()
	if cap(s.batchBuf) < putBatchBlock*segSize {
		s.batchBuf = make([]byte, putBatchBlock*segSize) // lint:allow hotpathalloc — staging sized once to a block of segments
		s.batchImgs = make([][]byte, putBatchBlock)      // lint:allow hotpathalloc — sized once with the staging buffer
		s.batchIdx = make([]int, putBatchBlock)          // lint:allow hotpathalloc — sized once with the staging buffer
		s.batchClusters = make([]int, putBatchBlock)     // lint:allow hotpathalloc — sized once with the staging buffer
	}
	// Stage every valid record first: each gets its sequence number in
	// index order, and each occupies its own stride of the staging buffer
	// so the blocked prediction sees all images at once.
	imgs := s.batchImgs[:putBatchBlock]
	idxs := s.batchIdx[:putBatchBlock]
	staged := 0
	var firstErr error
	maxValue := s.MaxValue()
	for i, key := range keys {
		if errs != nil {
			errs[i] = nil
		}
		if len(values[i]) > maxValue {
			// Sentinel, not fmt.Errorf: the hot path must not allocate
			// per item. The single-op Put keeps the size-detailed wrap.
			if errs != nil {
				errs[i] = ErrValueTooLarge
			}
			if firstErr == nil {
				firstErr = ErrValueTooLarge
			}
			continue
		}
		rec := s.batchBuf[i*segSize : i*segSize+valueHeader+len(values[i])]
		encodeRecord(rec, key, s.seq, values[i])
		s.seq++
		imgs[staged] = rec
		idxs[staged] = i
		staged++
	}
	imgs = imgs[:staged]
	idxs = idxs[:staged]

	predict := s.opts.Placement != PlaceArbitrary
	var clusters []int
	if predict && staged > 0 {
		clusters = s.batchClusters[:staged]
		// Staged records are full segment prefixes, so prediction cannot
		// see a geometry error here; failed slots (-1) are still handled
		// below for defense in depth.
		if err := s.mgr.Current().PredictBytesBlock(imgs, clusters); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	for j, i := range idxs {
		rec := imgs[j]
		oldAddr := -1
		if old, ok := s.tree.Get(keys[i]); ok {
			oldAddr = int(old)
		}
		var err error
		if predict {
			if c := clusters[j]; c < 0 {
				err = ErrBadSegment
			} else {
				err = s.placeLocked(keys[i], rec, s.clampClusterLocked(c), oldAddr)
			}
		} else {
			err = s.putArbitraryLocked(keys[i], rec, oldAddr)
		}
		if err != nil {
			if errs != nil {
				errs[i] = err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.stats.Puts++
		if s.mbPadding {
			s.putsSinceDensity++
		}
	}
	return firstErr
}

// GetBatch reads len(keys) values under a single lock acquisition,
// writing value i into dsts[i]'s backing array (grown only when too
// small, like GetInto) and reporting its liveness in oks[i]. dsts and oks
// must be index-aligned with keys; errs, when non-nil, receives per-item
// read errors — a missing key is oks[i] = false with a nil error. One
// item's failure does not abort the rest; the returned error is the first
// failure. Like GetInto, the steady-state path does not allocate.
//
// lint:hotpath
func (s *Store) GetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if len(dsts) != len(keys) || len(oks) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return fmt.Errorf("kvstore: GetBatch of %d keys, %d dsts, %d oks, %d errs: %w",
			len(keys), len(dsts), len(oks), len(errs), ErrBadOptions)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for i, key := range keys {
		oks[i] = false
		if errs != nil {
			errs[i] = nil
		}
		if dsts[i] != nil {
			dsts[i] = dsts[i][:0]
		}
		addrV, ok := s.tree.Get(key)
		if !ok {
			continue
		}
		v, err := s.readValueLocked(int(addrV))
		if err != nil {
			if errs != nil {
				errs[i] = err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if cap(dsts[i]) < len(v) {
			dsts[i] = make([]byte, len(v)) // lint:allow hotpathalloc — grows once to the value size
		}
		dsts[i] = dsts[i][:len(v)]
		copy(dsts[i], v)
		oks[i] = true
		s.stats.Gets++
	}
	return firstErr
}
