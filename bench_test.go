package e2nvm

// This file is the benchmark harness mandated by DESIGN.md §4: one
// testing.B benchmark per paper table/figure (plus the ablation benches of
// DESIGN.md §5). Each benchmark runs the corresponding experiment at a
// moderate scale and reports the figure's headline metric as a custom
// benchmark unit, so `go test -bench .` regenerates the whole evaluation.
//
// Absolute numbers differ from the paper's Optane testbed (see
// EXPERIMENTS.md); the shapes are asserted by the experiment tests.

import (
	"testing"

	"e2nvm/internal/experiments"
)

// benchScale keeps the full bench suite in the minutes range. Run
// cmd/e2nvm-bench -scale 1.0 for reference-size runs.
const benchScale = 0.25

func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	r, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r(experiments.RunConfig{Scale: benchScale, Seed: 42})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return res
}

func BenchmarkFig01_HammingSweep(b *testing.B)      { runExperiment(b, "fig01") }
func BenchmarkFig02_WearLevelingSweep(b *testing.B) { runExperiment(b, "fig02") }
func BenchmarkFig04_FeatureScaling(b *testing.B)    { runExperiment(b, "fig04") }
func BenchmarkFig07_IndexFootprint(b *testing.B)    { runExperiment(b, "fig07") }
func BenchmarkFig08_ElbowK(b *testing.B)            { runExperiment(b, "fig08") }
func BenchmarkFig09_LossCurves(b *testing.B)        { runExperiment(b, "fig09") }
func BenchmarkFig10_SchemeComparison(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11_YCSBSegmentSize(b *testing.B)   { runExperiment(b, "fig11") }
func BenchmarkFig12_AugmentStores(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13_PoolSegmentGrid(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14_PaddingStrategies(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15_PaddedFraction(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkFig16_EnergyTimeline(b *testing.B)    { runExperiment(b, "fig16") }
func BenchmarkFig17_DynamicAdaptation(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18_RetrainCost(b *testing.B)       { runExperiment(b, "fig18") }
func BenchmarkFig19_WearCDF(b *testing.B)           { runExperiment(b, "fig19") }

func BenchmarkExtendedBaselines(b *testing.B)          { runExperiment(b, "exp-extended") }
func BenchmarkShardParity(b *testing.B)                { runExperiment(b, "exp-shard") }
func BenchmarkTable01_PaddingWalkthrough(b *testing.B) { runExperiment(b, "tbl01") }

func BenchmarkAblation_IntraClusterSearch(b *testing.B) { runExperiment(b, "abl-search") }
func BenchmarkAblation_JointTraining(b *testing.B)      { runExperiment(b, "abl-joint") }
func BenchmarkAblation_LatentDim(b *testing.B)          { runExperiment(b, "abl-latent") }
func BenchmarkAblation_DifferentialWrite(b *testing.B)  { runExperiment(b, "abl-diff") }
func BenchmarkAblation_TxnOverhead(b *testing.B)        { runExperiment(b, "abl-txn") }

// BenchmarkStorePut measures the public API's end-to-end PUT path
// (prediction + pool + differential device write).
func BenchmarkStorePut(b *testing.B) {
	store, err := Open(Config{SegmentSize: 64, NumSegments: 1024, Clusters: 8, TrainEpochs: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val[0] = byte(i)
		if err := store.Put(uint64(i%512), val); err != nil {
			b.Fatal(err)
		}
	}
	m := store.Metrics()
	b.ReportMetric(m.FlipsPerDataBit, "flips/databit")
}

// BenchmarkStoreGet measures the read path.
func BenchmarkStoreGet(b *testing.B) {
	store, err := Open(Config{SegmentSize: 64, NumSegments: 512, Clusters: 4, TrainEpochs: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < 256; k++ {
		if err := store.Put(k, []byte{byte(k)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.Get(uint64(i % 256)); err != nil {
			b.Fatal(err)
		}
	}
}
