package errflow

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestErrFlow(t *testing.T) {
	// Empty scope puts every loaded package in scope — the fixture package
	// plays the role of a storage package.
	ScopePackages = nil
	analysistest.RunProgram(t, "../testdata", Analyzer, "errflow")
}
