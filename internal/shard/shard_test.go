package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
)

func quickModelCfg(seed int64) core.Config {
	return core.Config{K: 3, HiddenDim: 32, LatentDim: 4, Epochs: 3, JointEpochs: 1, BatchSize: 16, Seed: seed}
}

// newRouter builds n independent stores of numSegs segments each.
func newRouter(t *testing.T, n, segSize, numSegs int, opts kvstore.Options) *Router {
	t.Helper()
	stores := make([]*kvstore.Store, n)
	for i := range stores {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(int64(42 + i))))
		s, err := kvstore.Open(dev, quickModelCfg(int64(1+i)), opts)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	r, err := New(stores)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error for empty store list")
	}
}

func TestOfIsStableAndInRange(t *testing.T) {
	r := newRouter(t, 4, 32, 32, kvstore.Options{})
	counts := make([]int, r.N())
	for k := uint64(0); k < 4096; k++ {
		i := r.Of(k)
		if i < 0 || i >= r.N() {
			t.Fatalf("Of(%d) = %d out of range", k, i)
		}
		if j := r.Of(k); j != i {
			t.Fatalf("Of(%d) unstable: %d then %d", k, i, j)
		}
		counts[i]++
	}
	// SplitMix64 must spread dense sequential keys roughly evenly: each
	// shard should hold 1024±25% of the 4096 keys.
	for i, c := range counts {
		if c < 768 || c > 1280 {
			t.Fatalf("shard %d received %d of 4096 sequential keys: %v", i, c, counts)
		}
	}
}

func TestRoutedOpsAndLen(t *testing.T) {
	r := newRouter(t, 3, 32, 64, kvstore.Options{})
	const keys = 48
	for k := uint64(0); k < keys; k++ {
		v := []byte(fmt.Sprintf("v-%d", k))
		if err := r.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != keys {
		t.Fatalf("Len = %d, want %d", r.Len(), keys)
	}
	// Each key must live in exactly the shard Of says, and only there.
	for k := uint64(0); k < keys; k++ {
		want := []byte(fmt.Sprintf("v-%d", k))
		v, ok, err := r.Get(k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%d) = (%q,%v,%v)", k, v, ok, err)
		}
		for i := 0; i < r.N(); i++ {
			_, ok, err := r.Store(i).Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (i == r.Of(k)) {
				t.Fatalf("key %d found=%v in shard %d, routed to %d", k, ok, i, r.Of(k))
			}
		}
	}
	buf := make([]byte, 0, 16)
	for k := uint64(0); k < keys; k++ {
		v, ok, err := r.GetInto(k, buf)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v-%d", k))) {
			t.Fatalf("GetInto(%d) = (%q,%v,%v)", k, v, ok, err)
		}
		buf = v[:0]
	}
	for k := uint64(0); k < keys; k += 2 {
		ok, err := r.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v,%v)", k, ok, err)
		}
	}
	if r.Len() != keys/2 {
		t.Fatalf("Len after deletes = %d, want %d", r.Len(), keys/2)
	}
	st := r.Stats()
	if st.Puts != keys || st.Deletes != keys/2 {
		t.Fatalf("aggregated Stats = %+v", st)
	}
	per := r.StatsPerShard()
	var sum uint64
	for _, s := range per {
		sum += s.Puts
	}
	if sum != keys {
		t.Fatalf("per-shard Puts sum to %d, want %d", sum, keys)
	}
}

func TestScanMergesInKeyOrder(t *testing.T) {
	r := newRouter(t, 4, 32, 64, kvstore.Options{})
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], k)
		if err := r.Put(k, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	var visited []uint64
	err := r.Scan(10, 49, func(k uint64, v []byte) bool {
		if got := binary.LittleEndian.Uint64(v); got != k {
			t.Fatalf("key %d carries value %d", k, got)
		}
		visited = append(visited, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 40 {
		t.Fatalf("scan visited %d keys, want 40", len(visited))
	}
	for i, k := range visited {
		if k != uint64(10+i) {
			t.Fatalf("merge out of order at %d: got %d, want %d", i, k, 10+i)
		}
	}
	// Early termination.
	n := 0
	if err := r.Scan(0, ^uint64(0), func(uint64, []byte) bool { n++; return n < 7 }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
	// Re-entrancy: the merged scan holds no locks during the callback.
	if err := r.Scan(0, 5, func(k uint64, _ []byte) bool {
		if _, ok, err := r.Get(k); err != nil || !ok {
			t.Fatalf("re-entrant Get(%d) = (%v,%v)", k, ok, err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHealthAndScrubAggregate(t *testing.T) {
	r := newRouter(t, 2, 32, 64, kvstore.Options{DegradeThreshold: 0.05})
	h := r.Health()
	if h.DataSegments != 128 || h.PoolFree != 128 || h.Degraded {
		t.Fatalf("fresh Health = %+v", h)
	}
	// Fence enough of shard 0's zone to degrade it; shard 1 stays clean.
	for a := 0; a < 8; a++ {
		if err := r.Store(0).Device().FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Scrub(128); err != nil {
		t.Fatal(err)
	}
	h = r.Health()
	if h.Retired < 4 {
		t.Fatalf("Health.Retired = %d, want >= 4 after scrubbing fenced segments", h.Retired)
	}
	if !h.Degraded {
		t.Fatalf("aggregate Health must surface the degraded shard: %+v", h)
	}
	per := r.HealthPerShard()
	if !per[0].Degraded || per[1].Degraded {
		t.Fatalf("per-shard degradation = %v/%v, want shard 0 only", per[0].Degraded, per[1].Degraded)
	}
	rep, err := r.Scrub(128)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 128 {
		t.Fatalf("Scrub scanned %d, want the full 128 budget", rep.Scanned)
	}
}

func TestScrubSmallBudgetRotatesAcrossShards(t *testing.T) {
	const n = 4
	r := newRouter(t, n, 32, 16, kvstore.Options{})
	// Fence segment 0 of every shard's zone. Each shard's first scrubbed
	// segment is its own address 0, so a shard retires a segment exactly
	// when a Scrub budget unit actually reaches it.
	for i := 0; i < n; i++ {
		if err := r.Store(i).Device().FailSegment(0); err != nil {
			t.Fatal(err)
		}
	}
	// A budget of 1 over 4 shards rounds every even share to zero; the
	// remainder must rotate, so 4 calls reach all 4 shards. (The old fixed
	// split handed the single unit to shard 0 every time.)
	for call := 0; call < n; call++ {
		rep, err := r.Scrub(1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scanned != 1 {
			t.Fatalf("call %d scanned %d segments, want exactly the budget of 1", call, rep.Scanned)
		}
	}
	for i := 0; i < n; i++ {
		if got := r.Store(i).Health().Retired; got != 1 {
			t.Fatalf("shard %d retired %d segments after 4 unit budgets, want 1 (remainder not rotated)", i, got)
		}
	}
	// Remainders also rotate when the even share is nonzero: budget n+1
	// hands the extra unit to the shard after where the rotation stopped.
	rep, err := r.Scrub(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != n+1 {
		t.Fatalf("Scrub scanned %d, want the full %d budget", rep.Scanned, n+1)
	}
}

func TestRetrainFansOut(t *testing.T) {
	r := newRouter(t, 2, 32, 48, kvstore.Options{})
	if err := r.Retrain(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Retrains != 2 {
		t.Fatalf("aggregated Retrains = %d, want one per shard", st.Retrains)
	}
	r.ResetStats()
	if got := r.Stats(); got != (kvstore.Stats{}) {
		t.Fatalf("Stats after ResetStats = %+v, want zero", got)
	}
}
