package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestActivationString(t *testing.T) {
	cases := map[Activation]string{Identity: "identity", ReLU: "relu", Sigmoid: "sigmoid", Tanh: "tanh"}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestActivationApply(t *testing.T) {
	if ReLU.apply(-1) != 0 || ReLU.apply(2) != 2 {
		t.Fatal("relu wrong")
	}
	if s := Sigmoid.apply(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if Tanh.apply(0) != 0 {
		t.Fatal("tanh(0) != 0")
	}
	if Identity.apply(3.5) != 3.5 {
		t.Fatal("identity wrong")
	}
}

func TestDenseForwardShape(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(4, 3, Identity, r)
	y := d.Forward([]float64{1, 2, 3, 4})
	if len(y) != 3 {
		t.Fatalf("output len = %d, want 3", len(y))
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, Identity, r)
	copy(d.W.Data, []float64{2, -1})
	d.B[0] = 0.5
	y := d.Forward([]float64{3, 4})
	if math.Abs(y[0]-2.5) > 1e-12 {
		t.Fatalf("y = %v, want 2.5", y[0])
	}
}

// numericalGrad computes dL/dtheta by central differences, where the loss
// is 0.5*||f(x)||^2.
func numericalGrad(d *Dense, x []float64, theta []float64, i int) float64 {
	const h = 1e-6
	loss := func() float64 {
		y := d.Forward(x)
		s := 0.0
		for _, v := range y {
			s += 0.5 * v * v
		}
		return s
	}
	orig := theta[i]
	theta[i] = orig + h
	lp := loss()
	theta[i] = orig - h
	lm := loss()
	theta[i] = orig
	return (lp - lm) / (2 * h)
}

// TestDenseGradientCheck verifies backprop against numerical gradients for
// every activation.
func TestDenseGradientCheck(t *testing.T) {
	for _, act := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		act := act
		t.Run(act.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			d := NewDense(5, 4, act, r)
			x := make([]float64, 5)
			for i := range x {
				x[i] = r.NormFloat64()
			}
			// Analytic gradients of L = 0.5*||y||^2 → gradY = y.
			y := d.Forward(x)
			gradY := append([]float64(nil), y...)
			d.ZeroGrad()
			gradX := d.Backward(gradY)

			for i := 0; i < len(d.W.Data); i += 3 {
				num := numericalGrad(d, x, d.W.Data, i)
				if math.Abs(num-d.GW.Data[i]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("W[%d]: analytic %v vs numeric %v", i, d.GW.Data[i], num)
				}
			}
			for i := range d.B {
				num := numericalGrad(d, x, d.B, i)
				if math.Abs(num-d.GB[i]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("B[%d]: analytic %v vs numeric %v", i, d.GB[i], num)
				}
			}
			// Input gradient via perturbing x.
			d.ZeroGrad()
			for i := range x {
				num := numericalGrad(d, x, x, i)
				if math.Abs(num-gradX[i]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("x[%d]: analytic %v vs numeric %v", i, gradX[i], num)
				}
			}
		})
	}
}

func TestZeroGrad(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, Sigmoid, r)
	d.Forward([]float64{1, 1, 1})
	d.Backward([]float64{1, 1})
	d.ZeroGrad()
	for _, g := range d.GW.Data {
		if g != 0 {
			t.Fatal("GW not zeroed")
		}
	}
	for _, g := range d.GB {
		if g != 0 {
			t.Fatal("GB not zeroed")
		}
	}
}

func TestParamCount(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(10, 7, ReLU, r)
	if d.ParamCount() != 10*7+7 {
		t.Fatalf("ParamCount = %d", d.ParamCount())
	}
}

func TestAdamRegisterMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.01).Register(Param{W: make([]float64, 2), G: make([]float64, 3)})
}

// TestAdamMinimizesQuadratic checks the optimizer converges on a convex
// problem: minimize (w-3)^2.
func TestAdamMinimizesQuadratic(t *testing.T) {
	w := []float64{0}
	g := []float64{0}
	opt := NewAdam(0.1)
	opt.Register(Param{W: w, G: g})
	for i := 0; i < 500; i++ {
		g[0] = 2 * (w[0] - 3)
		opt.Step()
	}
	if math.Abs(w[0]-3) > 1e-2 {
		t.Fatalf("Adam converged to %v, want 3", w[0])
	}
	if opt.StepCount() != 500 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

// TestDenseLearnsXOR trains a 2-layer net on XOR — an end-to-end check that
// forward, backward, and Adam compose into something that actually learns.
func TestDenseLearnsXOR(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	h := NewDense(2, 8, Tanh, r)
	o := NewDense(8, 1, Sigmoid, r)
	opt := NewAdam(0.05)
	opt.Register(h.Params()...)
	opt.Register(o.Params()...)

	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 800; epoch++ {
		h.ZeroGrad()
		o.ZeroGrad()
		for i, x := range inputs {
			y := o.Forward(h.Forward(x))
			// BCE gradient w.r.t. sigmoid pre-activation is (ŷ - t);
			// feed through derivFromOutput by dividing out σ'.
			gy := []float64{(y[0] - targets[i]) / math.Max(y[0]*(1-y[0]), 1e-6)}
			h.Backward(o.Backward(gy))
		}
		opt.Step()
	}
	for i, x := range inputs {
		y := o.Forward(h.Forward(x))[0]
		if math.Abs(y-targets[i]) > 0.25 {
			t.Fatalf("XOR(%v) = %v, want %v", x, y, targets[i])
		}
	}
}

func TestFLOPsDense(t *testing.T) {
	if FLOPsDense(10, 20) != 400 {
		t.Fatalf("FLOPsDense = %v", FLOPsDense(10, 20))
	}
}

func BenchmarkDenseForward256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	d := NewDense(256, 64, ReLU, r)
	x := make([]float64, 256)
	for i := range x {
		x[i] = r.Float64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}
