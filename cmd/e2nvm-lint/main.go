// Command e2nvm-lint runs the repo's custom static-analysis suite over the
// module, plus (with -vet) a selected set of go vet passes.
//
// Usage:
//
//	go run ./cmd/e2nvm-lint [-vet] [-github] [packages]
//
// Patterns default to ./... . Exit status is 1 if any diagnostic is
// reported. -github additionally emits GitHub Actions ::error annotations
// so CI failures link to file:line. Each per-package analyzer runs over a
// scope matching its invariant:
//
//	lockdiscipline  all library and command packages
//	floateq         all library and command packages
//	seededrand      library packages only (package name != main; the
//	                experiment drivers may use ad-hoc randomness)
//	nopanic         internal/core, internal/kvstore, internal/txn — the
//	                storage packages behind the public Store API
//
// Ten whole-program analyzers then run once over every loaded package,
// following the call graph across package boundaries:
//
//	hotpathalloc     lint:hotpath roots must not reach heap allocations
//	errflow          exported errors of the storage packages wrap sentinels
//	deepdeterminism  internal/experiments must stay bit-reproducible
//	lockorder        the program-wide lock-acquisition graph must be acyclic
//	atomicmix        each struct field sticks to one access discipline
//	goroutinelife    every go statement has a provable join or shutdown edge
//	kernelpure       lint:kernelpure roots reach no map iteration, global
//	                 writes, float ==, or allocation
//	escapes          no compiler-verified heap escape is reachable from a
//	                 lint:hotpath or lint:kernelpure root
//	nobce            lint:nobce functions compile with zero bounds checks
//	                 inside their loops
//	inlinebudget     lint:inline leaf helpers stay inlinable
//
// The last three consume the compiler's own -m=2 / -d=ssa/check_bce
// diagnostics via internal/analysis/gcdiag, which shells out to go build
// per package and caches the raw output keyed on go version + source
// hash (-gcdiag-cache; default under os.UserCacheDir). -gcdiag=false
// skips them (e.g. when no go tool is available); -gcdiag-only runs only
// them, for the fast `make lint-perf` loop.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/atomicmix"
	"e2nvm/internal/analysis/deepdeterminism"
	"e2nvm/internal/analysis/errflow"
	"e2nvm/internal/analysis/escapes"
	"e2nvm/internal/analysis/floateq"
	"e2nvm/internal/analysis/gcdiag"
	"e2nvm/internal/analysis/goroutinelife"
	"e2nvm/internal/analysis/hotpathalloc"
	"e2nvm/internal/analysis/inlinebudget"
	"e2nvm/internal/analysis/kernelpure"
	"e2nvm/internal/analysis/lockdiscipline"
	"e2nvm/internal/analysis/lockorder"
	"e2nvm/internal/analysis/nobce"
	"e2nvm/internal/analysis/nopanic"
	"e2nvm/internal/analysis/seededrand"
)

// nopanicScope lists the storage packages (relative to the module root)
// whose exported APIs must not panic.
var nopanicScope = map[string]bool{
	"internal/core":    true,
	"internal/kvstore": true,
	"internal/txn":     true,
}

// vetPasses are the go vet analyzers run under -vet; a curated set that is
// reliable on this codebase (the full default set is run by CI separately).
var vetPasses = []string{"-copylocks", "-lostcancel", "-printf", "-unreachable"}

// errflowScope lists the packages (relative to the module root; "" is the
// root facade package itself) whose exported error contract errflow
// enforces.
var errflowScope = []string{
	"",
	"internal/core",
	"internal/hotcache",
	"internal/kvstore",
	"internal/txn",
	"internal/nvm",
	"internal/shard",
	"internal/replica",
}

func main() {
	vet := flag.Bool("vet", false, "also run selected go vet passes on the same patterns")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations for diagnostics")
	useGcdiag := flag.Bool("gcdiag", true, "run the compiler-feedback analyzers (escapes, nobce, inlinebudget)")
	gcdiagOnly := flag.Bool("gcdiag-only", false, "run only the compiler-feedback analyzers")
	gcdiagCache := flag.String("gcdiag-cache", gcdiag.DefaultCacheDir(),
		"directory caching raw compiler diagnostics keyed on go version + package hash (empty disables)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	if !*gcdiagOnly {
		for _, pkg := range pkgs {
			for _, a := range analyzersFor(loader, pkg) {
				pass := analysis.NewPass(a, pkg, &diags)
				if err := a.Run(pass); err != nil {
					fmt.Fprintf(os.Stderr, "%s: %s: %v\n", a.Name, pkg.PkgPath, err)
					os.Exit(2)
				}
			}
		}
	}

	// Whole-program analyzers see every loaded package at once.
	errflow.ScopePackages = nil
	for _, rel := range errflowScope {
		if rel == "" {
			errflow.ScopePackages = append(errflow.ScopePackages, loader.ModPath)
			continue
		}
		errflow.ScopePackages = append(errflow.ScopePackages, loader.ModPath+"/"+rel)
	}
	deepdeterminism.RootPackages = []string{loader.ModPath + "/internal/experiments"}

	var program []*analysis.ProgramAnalyzer
	if !*gcdiagOnly {
		program = append(program,
			hotpathalloc.Analyzer, errflow.Analyzer, deepdeterminism.Analyzer,
			lockorder.Analyzer, atomicmix.Analyzer, goroutinelife.Analyzer, kernelpure.Analyzer)
	}
	if *useGcdiag || *gcdiagOnly {
		src, err := gcdiag.NewSource(loader.ModRoot, *gcdiagCache)
		if err != nil {
			// No go tool: compiler feedback is unavailable, so the gcdiag
			// analyzers degrade to no-ops instead of failing the run.
			fmt.Fprintf(os.Stderr, "warning: skipping escapes/nobce/inlinebudget: %v\n", err)
		} else {
			reports := func(pkg *analysis.Package) (*gcdiag.Report, error) { return src.For(pkg.Dir) }
			escapes.Reports = reports
			nobce.Reports = reports
			inlinebudget.Reports = reports
			program = append(program, escapes.Analyzer, nobce.Analyzer, inlinebudget.Analyzer)
		}
	}
	for _, a := range program {
		pass, err := analysis.NewProgramPass(a, pkgs, &diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
			os.Exit(2)
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", a.Name, err)
			os.Exit(2)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for _, d := range diags {
		fmt.Println(d)
		if *github {
			fmt.Printf("::error file=%s,line=%d::[%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}

	failed := len(diags) > 0
	if *vet {
		args := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// analyzersFor selects the analyzers whose scope covers pkg.
func analyzersFor(loader *analysis.Loader, pkg *analysis.Package) []*analysis.Analyzer {
	rel := pkg.PkgPath
	if pkg.PkgPath != loader.ModPath {
		rel = pkg.PkgPath[len(loader.ModPath)+1:]
	}
	out := []*analysis.Analyzer{lockdiscipline.Analyzer, floateq.Analyzer}
	if pkg.Types.Name() != "main" {
		out = append(out, seededrand.Analyzer)
	}
	if nopanicScope[rel] {
		out = append(out, nopanic.Analyzer)
	}
	return out
}
