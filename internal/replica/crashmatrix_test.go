package replica

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/txn"
)

// These tests extend the kvstore crash matrix to the two log-write paths
// replication added: the follower-side ApplyShipped cycle and the
// migration copy path (PutIfAbsent through the target's redo log). The
// guarantee is the same zero-wrong-reads contract: an injected crash at
// ANY device write leaves every segment all-or-nothing and every key
// readable as a pre- or post-state value, and redelivery after recovery
// converges on the leader's exact state.

type capturedEntry struct {
	id     uint64
	addrs  []int
	images [][]byte
}

// TestCrashMatrixFollowerApply runs a leader workload once, capturing the
// shipped redo stream, then sweeps an injected crash across every device
// write of a follower applying that stream. After each crash the follower
// recovers with its own log, the stream is redelivered from the
// interrupted entry (at-least-once, as a restarted leader would re-ship),
// and the follower must converge byte-for-byte on the leader.
func TestCrashMatrixFollowerApply(t *testing.T) {
	const segSize, numSegs = 32, 64
	mkdev := func() *nvm.Device {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(77)))
		return dev
	}
	opts := kvstore.Options{CrashSafe: true}
	ldev := mkdev()
	leader, err := kvstore.Open(ldev, quickModelCfg(77), opts)
	if err != nil {
		t.Fatal(err)
	}
	var stream []capturedEntry
	leader.TxnManager().SetShipper(func(id uint64, addrs []int, images [][]byte) {
		e := capturedEntry{id: id, addrs: append([]int(nil), addrs...)}
		for _, img := range images {
			e.images = append(e.images, append([]byte(nil), img...))
		}
		stream = append(stream, e)
	})
	// Mixed workload: inserts, updates, deletes, re-inserts.
	for i := 0; i < 8; i++ {
		if err := leader.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := leader.Put(uint64(i), val(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 6; i++ {
		if ok, err := leader.Delete(uint64(i)); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v,%v)", i, ok, err)
		}
	}
	if err := leader.Put(4, val(555)); err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("workload shipped nothing")
	}
	// Legal content per address: the initial image or any shipped image
	// targeting it — a crashed apply may leave nothing else.
	legal := map[int][][]byte{}
	initial := mkdev()
	for _, e := range stream {
		for i, a := range e.addrs {
			if legal[a] == nil {
				img, err := initial.Read(a)
				if err != nil {
					t.Fatal(err)
				}
				legal[a] = [][]byte{img}
			}
			legal[a] = append(legal[a], e.images[i])
		}
	}

	completed := false
	for failAt := 0; !completed; failAt++ {
		fdev := mkdev()
		mgr, _, err := txn.NewManager(fdev, kvstore.LogSlots, kvstore.LogMaxEntries)
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Format(); err != nil {
			t.Fatal(err)
		}
		mgr.FailAfter(failAt)
		crashedAt := -1
		for i, e := range stream {
			if err := mgr.ApplyShipped(e.id, e.addrs, e.images); err != nil {
				if !errors.Is(err, txn.ErrCrashed) {
					t.Fatalf("failAt=%d: apply entry %d: %v", failAt, i, err)
				}
				crashedAt = i
				break
			}
		}
		if crashedAt < 0 {
			completed = true
		} else {
			// Zero wrong reads at the crash point: recovery replays or
			// discards, and every touched segment is all-or-nothing.
			if _, _, err := mgr.Recover(); err != nil {
				t.Fatalf("failAt=%d: recover: %v", failAt, err)
			}
			for a, imgs := range legal {
				got, err := fdev.Read(a)
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, want := range imgs {
					if bytes.Equal(got, want) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("failAt=%d: segment %d holds a torn image after crash+recover", failAt, a)
				}
			}
			// Redeliver from the interrupted entry: applying an entry the
			// recovery already replayed must be idempotent.
			for _, e := range stream[crashedAt:] {
				if err := mgr.ApplyShipped(e.id, e.addrs, e.images); err != nil {
					t.Fatalf("failAt=%d: redeliver: %v", failAt, err)
				}
			}
		}
		// The follower converges on the leader's exact data zone.
		for a := 0; a < numSegs-logSegs; a++ {
			lb, err := ldev.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := fdev.Read(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lb, fb) {
				t.Fatalf("failAt=%d: segment %d differs after redelivery", failAt, a)
			}
		}
		// And a store recovered over it serves the leader's keys.
		st, err := kvstore.RecoverWith(fdev, leader.Model(), opts)
		if err != nil {
			t.Fatalf("failAt=%d: RecoverWith: %v", failAt, err)
		}
		if st.Len() != leader.Len() {
			t.Fatalf("failAt=%d: follower Len = %d, leader %d", failAt, st.Len(), leader.Len())
		}
		if failAt > 400 {
			t.Fatal("matrix never completed; crash injection is not advancing")
		}
	}
}

// TestCrashMatrixMigrationCopy sweeps an injected crash across every
// redo-log write of a migration target while records drain into it via
// PutIfAbsent. After each crash the target recovers from its device
// alone; no key may read a torn or foreign value, and resuming the
// migration (PutIfAbsent dedups what already landed) completes the drain.
func TestCrashMatrixMigrationCopy(t *testing.T) {
	const segSize, numSegs = 32, 64
	mkdev := func(seed int64) *nvm.Device {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(seed)))
		return dev
	}
	// The draining source: a healthy store with a known keyspace.
	src, err := kvstore.Open(mkdev(11), quickModelCfg(11), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	for i := 0; i < keys; i++ {
		if err := src.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// One model serves every target iteration (identical device seeds).
	tmpl, err := kvstore.Open(mkdev(12), quickModelCfg(12), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := kvstore.Options{CrashSafe: true}

	completed := false
	for failAt := 0; !completed; failAt++ {
		tdev := mkdev(12)
		target, err := kvstore.OpenWith(tdev, tmpl.Model(), opts)
		if err != nil {
			t.Fatal(err)
		}
		target.TxnManager().FailAfter(failAt)
		crashed := false
		migrated := 0
		for i := 0; i < keys; i++ {
			if _, err := target.PutIfAbsent(uint64(i), val(i)); err != nil {
				if !errors.Is(err, txn.ErrCrashed) {
					t.Fatalf("failAt=%d: migrate key %d: %v", failAt, i, err)
				}
				crashed = true
				break
			}
			migrated++
		}
		if !crashed {
			completed = true
			continue
		}
		// Recover the target from its device alone: zero wrong reads.
		rec, err := kvstore.RecoverWith(tdev, tmpl.Model(), opts)
		if err != nil {
			t.Fatalf("failAt=%d: recover: %v", failAt, err)
		}
		for i := 0; i < keys; i++ {
			got, ok, err := rec.Get(uint64(i))
			if err != nil {
				t.Fatalf("failAt=%d: Get(%d): %v", failAt, i, err)
			}
			if ok && !bytes.Equal(got, val(i)) {
				t.Fatalf("failAt=%d: key %d = %q, want %q or absent", failAt, i, got, val(i))
			}
			if i < migrated && !ok {
				t.Fatalf("failAt=%d: fully migrated key %d vanished", failAt, i)
			}
		}
		// Resume the drain: PutIfAbsent skips what already landed, the
		// rest completes, and the full keyspace is served.
		for i := 0; i < keys; i++ {
			if _, err := rec.PutIfAbsent(uint64(i), val(i)); err != nil {
				t.Fatalf("failAt=%d: resume key %d: %v", failAt, i, err)
			}
		}
		for i := 0; i < keys; i++ {
			got, ok, err := rec.Get(uint64(i))
			if err != nil || !ok || !bytes.Equal(got, val(i)) {
				t.Fatalf("failAt=%d: key %d after resume = (%q,%v,%v)", failAt, i, got, ok, err)
			}
		}
		if failAt > 400 {
			t.Fatal("matrix never completed; crash injection is not advancing")
		}
	}
}
