// Package nopanic forbids panic in exported API paths of library code.
//
// The storage packages (internal/core, internal/kvstore, internal/txn)
// sit under a public Store API that heavy concurrent traffic will drive
// with arbitrary inputs; a panic there takes down the whole process
// instead of failing one request. Exported functions and methods in those
// packages must return (wrapped sentinel) errors.
//
// Deliberate invariant panics — unreachable-by-construction states, or
// Must* convenience wrappers for driver code — are annotated with
//
//	// lint:allow nopanic — <why this cannot fire / why a panic is right>
//
// which the analyzer honors.
package nopanic

import (
	"go/ast"
	"go/types"

	"e2nvm/internal/analysis"
)

// Analyzer flags panic calls lexically inside exported functions/methods.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "forbid panic() in exported API paths of the storage packages; " +
		"return wrapped sentinel errors instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in exported API %s; return a wrapped sentinel error instead (library code must not crash the caller)",
					fd.Name.Name)
				return true
			})
		}
	}
	return nil
}
