// Record layout and integrity.
//
// A stored record is self-describing and CRC-protected:
//
//	[0]     flags    bit 0 = valid
//	[1:3]   length   value length in bytes (little endian)
//	[3:11]  key      uint64
//	[11:15] seq      uint32 store-wide write sequence number
//	[15:19] crc      CRC-32C over bytes [1:15] and the value
//	[19:]   value
//
// The CRC covers everything except the flags byte and the CRC field itself:
// excluding flags keeps the one-bit invalidation write from touching the
// checksum, and the sequence number lets recovery resolve two valid records
// for one key (Put writes the new record before invalidating the old one,
// and a worn-out segment can refuse the invalidation outright) — the higher
// sequence wins.
package kvstore

import (
	"encoding/binary"
	"hash/crc32"
)

const (
	recLenOff = 1
	recKeyOff = 3
	recSeqOff = 11
	recCRCOff = 15
	// valueHeader is the record header size; the value starts here.
	valueHeader = 19
)

// RecordOverhead is the per-record header size in bytes: the largest
// storable value is SegmentSize - RecordOverhead. Exported for workload
// generators that size values before a store exists.
const RecordOverhead = valueHeader

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64), shared by every record checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the checksum of a trimmed record (exactly
// valueHeader+len(value) bytes): the header fields after flags, then the
// value.
//
// lint:nobce
func recordCRC(rec []byte) uint32 {
	_ = rec[valueHeader-1] // one bounds check for the whole header
	crc := crc32.Checksum(rec[recLenOff:recCRCOff], crcTable)
	return crc32.Update(crc, crcTable, rec[valueHeader:])
}

// encodeRecord serializes a record into buf, which must be exactly
// valueHeader+len(value) bytes.
//
// lint:nobce
func encodeRecord(buf []byte, key uint64, seq uint32, value []byte) {
	_ = buf[valueHeader-1] // one bounds check for the whole header
	buf[0] = 1             // valid
	binary.LittleEndian.PutUint16(buf[recLenOff:], uint16(len(value)))
	binary.LittleEndian.PutUint64(buf[recKeyOff:], key)
	binary.LittleEndian.PutUint32(buf[recSeqOff:], seq)
	copy(buf[valueHeader:], value)
	binary.LittleEndian.PutUint32(buf[recCRCOff:], recordCRC(buf))
}

// parseRecord validates a segment image and returns its record fields. ok
// is false when the image holds no trustworthy record: unset valid flag,
// out-of-range length, or CRC mismatch. value aliases img.
//
// lint:nobce
func parseRecord(img []byte) (key uint64, seq uint32, value []byte, ok bool) {
	if len(img) < valueHeader || img[0]&1 == 0 {
		return 0, 0, nil, false
	}
	n := int(binary.LittleEndian.Uint16(img[recLenOff:]))
	if n > len(img)-valueHeader {
		return 0, 0, nil, false
	}
	rec := img[:valueHeader+n]
	if binary.LittleEndian.Uint32(rec[recCRCOff:]) != recordCRC(rec) {
		return 0, 0, nil, false
	}
	return binary.LittleEndian.Uint64(rec[recKeyOff:]),
		binary.LittleEndian.Uint32(rec[recSeqOff:]),
		rec[valueHeader:], true
}

// seqAfter reports whether sequence a is newer than b under serial-number
// (wraparound-safe) arithmetic. Called per record during recovery scans.
//
// lint:inline
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }
