GO ?= go

.PHONY: all build test race lint vet bench

all: build lint test

build:
	$(GO) build ./...

# Repo-specific static analysis: per-function analyzers (lockdiscipline,
# seededrand, floateq, nopanic) plus the inter-procedural ones
# (hotpathalloc, errflow, deepdeterminism) — see DESIGN.md §8.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/e2nvm-lint ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the committed micro-benchmark baseline (Put/Get/GetInto/Delete
# ns/op, B/op, allocs/op plus bit-flip counters).
bench:
	$(GO) run ./cmd/e2nvm-bench -kvbench -out BENCH_PR2.json
