package txn

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"e2nvm/internal/nvm"
)

func newRig(t *testing.T, segSize, numSegs, slots, maxEnt int) (*Manager, *nvm.Device, int) {
	t.Helper()
	dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
	if err != nil {
		t.Fatal(err)
	}
	m, dataSegs, err := NewManager(dev, slots, maxEnt)
	if err != nil {
		t.Fatal(err)
	}
	return m, dev, dataSegs
}

func seg(segSize int, fill byte) []byte {
	b := make([]byte, segSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewManagerValidation(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewManager(dev, 0, 2); err == nil {
		t.Fatal("expected error for zero slots")
	}
	if _, _, err := NewManager(dev, 1, 100); err == nil {
		t.Fatal("expected error for oversized header")
	}
	if _, _, err := NewManager(dev, 10, 4); err == nil {
		t.Fatal("expected error when log exceeds device")
	}
}

func TestCommitAppliesWrites(t *testing.T) {
	m, dev, dataSegs := newRig(t, 64, 32, 2, 4)
	if dataSegs >= 32 {
		t.Fatal("log reserved nothing")
	}
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0xaa)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(3, seg(64, 0xbb)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := dev.Peek(0)
	if got[0] != 0xaa {
		t.Fatal("write to 0 not applied")
	}
	got, _ = dev.Peek(3)
	if got[0] != 0xbb {
		t.Fatal("write to 3 not applied")
	}
}

func TestTxReadSeesStagedWrites(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 4)
	tx := m.Begin()
	if err := tx.Write(1, seg(64, 0x11)); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0x11 {
		t.Fatal("Read did not see staged write")
	}
	// Unstaged address reads device content.
	v, err = tx.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0 {
		t.Fatal("Read of unstaged address wrong")
	}
}

func TestWriteValidation(t *testing.T) {
	m, _, dataSegs := newRig(t, 64, 32, 2, 2)
	tx := m.Begin()
	if err := tx.Write(dataSegs, seg(64, 1)); err == nil {
		t.Fatal("write into log region accepted")
	}
	if err := tx.Write(0, make([]byte, 63)); err == nil {
		t.Fatal("short image accepted")
	}
	if err := tx.Write(0, seg(64, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(1, seg(64, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(2, seg(64, 1)); err != ErrTxTooLarge {
		t.Fatalf("overflow err = %v, want ErrTxTooLarge", err)
	}
	// Restaging an existing address is free.
	if err := tx.Write(0, seg(64, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestAbort(t *testing.T) {
	m, dev, _ := newRig(t, 64, 32, 2, 4)
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0xff)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after abort succeeded")
	}
	got, _ := dev.Peek(0)
	if got[0] != 0 {
		t.Fatal("aborted transaction mutated device")
	}
}

func TestEmptyCommit(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 4)
	if err := m.Begin().Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashBeforeCommitPointDiscards injects a crash while staging; after
// recovery the data segments must be untouched.
func TestCrashBeforeCommitPointDiscards(t *testing.T) {
	for failAt := 0; failAt < 3; failAt++ {
		m, dev, _ := newRig(t, 64, 32, 2, 2)
		if err := dev.FillSegment(0, seg(64, 0x77)); err != nil {
			t.Fatal(err)
		}
		tx := m.Begin()
		if err := tx.Write(0, seg(64, 0x99)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(1, seg(64, 0x88)); err != nil {
			t.Fatal(err)
		}
		m.FailAfter(failAt) // crash during staging or header write
		if err := tx.Commit(); err != ErrCrashed {
			t.Fatalf("failAt=%d: err = %v, want ErrCrashed", failAt, err)
		}
		replayed, _, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if replayed != 0 {
			t.Fatalf("failAt=%d: replayed %d, want 0", failAt, replayed)
		}
		got, _ := dev.Peek(0)
		if got[0] != 0x77 {
			t.Fatalf("failAt=%d: old value lost", failAt)
		}
		got, _ = dev.Peek(1)
		if got[0] != 0 {
			t.Fatalf("failAt=%d: partial write leaked", failAt)
		}
	}
}

// TestCrashAfterCommitPointReplays injects crashes after the commit record
// is durable; recovery must complete the transaction.
func TestCrashAfterCommitPointReplays(t *testing.T) {
	// Writes: 2 staged images, staged header, committed header = 4; the
	// apply writes come after. Crashing at write 4, 5, or 6 leaves a
	// committed record with 0, 1 or 2 of the applies done.
	for failAt := 4; failAt <= 6; failAt++ {
		m, dev, _ := newRig(t, 64, 32, 2, 2)
		tx := m.Begin()
		if err := tx.Write(0, seg(64, 0x99)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(1, seg(64, 0x88)); err != nil {
			t.Fatal(err)
		}
		m.FailAfter(failAt)
		if err := tx.Commit(); err != ErrCrashed {
			t.Fatalf("failAt=%d: err = %v, want ErrCrashed", failAt, err)
		}
		replayed, discarded, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if replayed != 1 || discarded != 0 {
			t.Fatalf("failAt=%d: replayed/discarded = %d/%d, want 1/0", failAt, replayed, discarded)
		}
		got, _ := dev.Peek(0)
		if got[0] != 0x99 {
			t.Fatalf("failAt=%d: segment 0 not recovered", failAt)
		}
		got, _ = dev.Peek(1)
		if got[0] != 0x88 {
			t.Fatalf("failAt=%d: segment 1 not recovered", failAt)
		}
	}
}

// TestCrashRecoverRandomized runs random transactions with crashes at
// random points, recovering each time, and checks atomicity against a
// reference model: after recovery every segment matches either the
// pre-transaction or the post-transaction state, never a mix.
func TestCrashRecoverRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const segSize = 64
	m, dev, dataSegs := newRig(t, segSize, 64, 2, 4)
	shadow := make([][]byte, dataSegs)
	for i := range shadow {
		shadow[i] = make([]byte, segSize)
	}
	for iter := 0; iter < 200; iter++ {
		tx := m.Begin()
		n := 1 + r.Intn(4)
		staged := map[int][]byte{}
		for i := 0; i < n; i++ {
			addr := r.Intn(dataSegs)
			img := make([]byte, segSize)
			r.Read(img)
			if err := tx.Write(addr, img); err != nil {
				t.Fatal(err)
			}
			staged[addr] = img
		}
		crash := r.Intn(3) == 0
		if crash {
			m.FailAfter(r.Intn(2*n + 4))
		}
		err := tx.Commit()
		switch {
		case err == nil:
			for a, img := range staged {
				copy(shadow[a], img)
			}
		case err == ErrCrashed:
			replayed, _, rerr := m.Recover()
			if rerr != nil {
				t.Fatal(rerr)
			}
			if replayed > 0 {
				// Transaction completed during recovery.
				for a, img := range staged {
					copy(shadow[a], img)
				}
			}
		default:
			t.Fatal(err)
		}
		m.FailAfter(-1)
		// Atomicity check: every data segment matches the shadow.
		for a := 0; a < dataSegs; a++ {
			got, err := dev.Peek(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow[a]) {
				t.Fatalf("iter %d: segment %d diverged from reference", iter, a)
			}
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	m, _, _ := newRig(t, 64, 32, 2, 2)
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		replayed, discarded, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if replayed != 0 || discarded != 0 {
			t.Fatalf("recover %d: %d/%d, want 0/0", i, replayed, discarded)
		}
	}
}

func TestSlotExhaustion(t *testing.T) {
	// One slot: a committed-but-crashed-before-invalidate transaction
	// occupies it; the next commit must fail until recovery frees it.
	m, _, _ := newRig(t, 64, 32, 1, 1)
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 1)); err != nil {
		t.Fatal(err)
	}
	m.FailAfter(3) // crash right before the apply+invalidate
	if err := tx.Commit(); err != ErrCrashed {
		t.Fatalf("err = %v", err)
	}
	m.FailAfter(-1)
	tx2 := m.Begin()
	if err := tx2.Write(1, seg(64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err == nil {
		t.Fatal("commit succeeded with no free slot")
	}
	if _, _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

// TestWornLogSlotRetiredAndCommitRetries kills a log slot's header segment;
// Commit must retire the slot, move to the next one, and eventually fail
// with ErrLogFull when every slot is dead.
func TestWornLogSlotRetiredAndCommitRetries(t *testing.T) {
	m, dev, dataSegs := newRig(t, 64, 32, 2, 1)
	// Slot layout: header segments at dataSegs and dataSegs+2.
	if err := dev.FailSegment(dataSegs); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0xaa)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit with one worn slot: %v", err)
	}
	if got, _ := dev.Peek(0); got[0] != 0xaa {
		t.Fatal("commit via fallback slot not applied")
	}
	if m.RetiredSlots() != 1 {
		t.Fatalf("RetiredSlots = %d, want 1", m.RetiredSlots())
	}
	// Kill the remaining slot: the next commit has nowhere to log.
	if err := dev.FailSegment(dataSegs + 2); err != nil {
		t.Fatal(err)
	}
	tx = m.Begin()
	if err := tx.Write(1, seg(64, 0xbb)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrLogFull) {
		t.Fatalf("commit with all slots worn: %v, want ErrLogFull", err)
	}
	if m.RetiredSlots() != 2 {
		t.Fatalf("RetiredSlots = %d, want 2", m.RetiredSlots())
	}
}

// TestWornHomeSegmentSurfacesAndInvalidatesSlot wears out a data segment:
// Commit must return an ErrWornOut-wrapped error AND invalidate its log
// slot so recovery does not replay into the dead cells.
func TestWornHomeSegmentSurfacesAndInvalidatesSlot(t *testing.T) {
	m, dev, _ := newRig(t, 64, 32, 2, 1)
	if err := dev.FailSegment(5); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Write(5, seg(64, 0xcc)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, nvm.ErrWornOut) {
		t.Fatalf("commit into worn segment: %v, want ErrWornOut", err)
	}
	replayed, discarded, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 || discarded != 0 {
		t.Fatalf("recover after invalidated slot: %d/%d, want 0/0", replayed, discarded)
	}
	if m.RetiredSlots() != 0 {
		t.Fatalf("healthy log slot was retired: %d", m.RetiredSlots())
	}
	// The slot is free again for healthy traffic.
	tx = m.Begin()
	if err := tx.Write(6, seg(64, 0xdd)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSkipsCorruptImage corrupts a committed-but-unapplied staged
// image; Recover must skip the entry instead of replaying garbage.
func TestRecoverSkipsCorruptImage(t *testing.T) {
	m, dev, dataSegs := newRig(t, 64, 32, 2, 1)
	if err := dev.FillSegment(0, seg(64, 0x77)); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0x99)); err != nil {
		t.Fatal(err)
	}
	m.FailAfter(3) // crash after the commit record, before the apply
	if err := tx.Commit(); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// Rot the staged image behind the manager's back.
	if err := dev.FillSegment(dataSegs+1, seg(64, 0x13)); err != nil {
		t.Fatal(err)
	}
	replayed, discarded, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 || discarded != 1 {
		t.Fatalf("recover = %d/%d, want 0 replayed / 1 discarded", replayed, discarded)
	}
	if got, _ := dev.Peek(0); got[0] != 0x77 {
		t.Fatalf("corrupt image was replayed: segment 0 = %#x", got[0])
	}
}

// TestRecoverDiscardsCorruptHeader flips bits in a committed header;
// Recover must refuse to trust the entry table and discard the slot.
func TestRecoverDiscardsCorruptHeader(t *testing.T) {
	m, dev, dataSegs := newRig(t, 64, 32, 2, 1)
	if err := dev.FillSegment(0, seg(64, 0x77)); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.Write(0, seg(64, 0x99)); err != nil {
		t.Fatal(err)
	}
	m.FailAfter(3)
	if err := tx.Commit(); err != ErrCrashed {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	hdr, err := dev.Peek(dataSegs)
	if err != nil {
		t.Fatal(err)
	}
	hdr[19] ^= 0xff // corrupt the entry table's target address
	if err := dev.FillSegment(dataSegs, hdr); err != nil {
		t.Fatal(err)
	}
	replayed, discarded, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 || discarded != 1 {
		t.Fatalf("recover = %d/%d, want 0 replayed / 1 discarded", replayed, discarded)
	}
	if got, _ := dev.Peek(0); got[0] != 0x77 {
		t.Fatalf("corrupt header was replayed: segment 0 = %#x", got[0])
	}
}
