package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"e2nvm/internal/padding"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data, _ := segmentSet(r, 120, 3, 32, 0.05)
	m, err := Train(data, quickCfg(32, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.K() != m.K() || m2.InputBits() != m.InputBits() || m2.TrainedOn() != m.TrainedOn() {
		t.Fatal("metadata lost across round trip")
	}
	// Predictions must be identical for full-width items.
	for _, x := range data {
		if mustP(m.Predict(x)) != mustP(m2.Predict(x)) {
			t.Fatal("prediction diverged after load")
		}
	}
	// Padded predictions with deterministic padding must match too.
	zp := padding.New(padding.End, padding.Zero, 1)
	m.SetPadder(zp)
	m2.SetPadder(padding.New(padding.End, padding.Zero, 1))
	for _, x := range data[:20] {
		if mustP(m.PredictPadded(x[:20])) != mustP(m2.PredictPadded(x[:20])) {
			t.Fatal("padded prediction diverged after load")
		}
	}
}

func TestSaveLoadLearnedPadding(t *testing.T) {
	data := make([][]float64, 50)
	for i := range data {
		row := make([]float64, 64)
		for j := range row {
			row[j] = float64(j % 2)
		}
		data[i] = row
	}
	cfg := quickCfg(64, 2)
	cfg.PadExplicit = true
	cfg.PadType = padding.Learned
	cfg.PadLocation = padding.End
	cfg.LearnedPadWindow = 16
	cfg.LearnedPadPredict = 4
	cfg.LearnedPadEpochs = 5
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Learned padding is deterministic given the model, so padded
	// predictions must agree.
	item := make([]float64, 40)
	for j := range item {
		item[j] = float64(j % 2)
	}
	if mustP(m.PredictPadded(item)) != mustP(m2.PredictPadded(item)) {
		t.Fatal("learned-padded prediction diverged after load")
	}
	if net, _, _ := m2.Padder().Model(); net == nil {
		t.Fatal("learned padding model not restored")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadEmptyCentroids(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data, _ := segmentSet(r, 60, 2, 16, 0.05)
	m, err := Train(data, quickCfg(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupting the stream should produce an error, not a panic.
	b := buf.Bytes()
	b[len(b)/2] ^= 0xff
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Log("corruption went undetected by gob; acceptable but unusual")
	}
}
