// Package atomicmix defines a whole-program Analyzer that checks every
// struct field for one consistent synchronization discipline. For each
// field it classifies every access in the program as
//
//   - atomic: the field's address is passed to a sync/atomic function
//     (fields whose type itself comes from sync or sync/atomic are safe
//     by construction and skipped entirely);
//   - guarded: the access happens while the field's guarding mutex — the
//     struct's "mu" sibling under the lockdiscipline convention — is
//     held, either locally or in any calling context the inter-procedural
//     lock propagation can construct (so a bare-looking access inside an
//     unexported helper that is only ever called under the lock counts
//     as guarded);
//   - bare: anything else.
//
// Two mixes are reported, both the bug class behind the clampClusterLocked
// fix and the kvstore atomic density cache:
//
//  1. a field with both atomic operations and plain accesses — the plain
//     side tears or races the atomic side;
//  2. a mu-guarded field (declared after its struct's mu) with both
//     guarded and bare accesses — one discipline per field, or the lock
//     proves nothing.
//
// Accesses through a function-local variable that is neither a parameter
// nor a receiver are construction before publication and exempt. Suppress
// a deliberate site with `lint:allow atomicmix`.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"e2nvm/internal/analysis"
)

// Analyzer reports struct fields accessed under mixed synchronization
// disciplines.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "atomicmix",
	Doc: "every struct field gets one synchronization discipline: atomic, " +
		"mutex-guarded, or plain — mixing atomic with plain access, or guarded " +
		"with bare access, is a data race waiting for a schedule",
	Run: run,
}

// accessKind classifies one field access.
type accessKind int

const (
	accessAtomic accessKind = iota
	accessGuarded
	accessBare
)

type access struct {
	pos  token.Pos
	kind accessKind
	fn   *analysis.FuncNode
}

func run(pass *analysis.ProgramPass) error {
	li := analysis.CollectLockInfo(pass.Pkgs)
	lg := li.BuildLockGraph(pass.Graph, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site)
	})

	byField := map[*types.Var][]access{}
	fieldOrder := []*types.Var{}

	for _, n := range pass.Graph.Nodes() {
		body := n.Body()
		if body == nil {
			continue
		}
		info := n.Pkg.TypesInfo
		entry := lg.EntryHeld[n]
		// Selector expressions whose address feeds a sync/atomic call.
		atomicSels := map[*ast.SelectorExpr]bool{}
		li.WalkHeld(n, entry, analysis.HeldVisitor{
			Node: func(x ast.Node, held analysis.LockSet) {
				switch x := x.(type) {
				case *ast.CallExpr:
					if !isAtomicCall(info, x) {
						return
					}
					for _, a := range x.Args {
						if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
							if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
								atomicSels[sel] = true
							}
						}
					}
				case *ast.SelectorExpr:
					f := fieldOf(info, x)
					if f == nil || syncShielded(f.Type()) {
						return
					}
					if localBase(info, x, body) {
						return // construction before publication
					}
					kind := accessBare
					switch {
					case atomicSels[x]:
						kind = accessAtomic
					case li.GuardOf(f) != "" && held[li.GuardOf(f)]:
						kind = accessGuarded
					}
					if _, seen := byField[f]; !seen {
						fieldOrder = append(fieldOrder, f)
					}
					byField[f] = append(byField[f], access{pos: x.Pos(), kind: kind, fn: n})
				}
			},
		})
	}

	sort.Slice(fieldOrder, func(i, j int) bool { return fieldOrder[i].Pos() < fieldOrder[j].Pos() })
	for _, f := range fieldOrder {
		accs := byField[f]
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		reportField(pass, li, f, accs)
	}
	return nil
}

// reportField checks one field's classified accesses for a mix.
func reportField(pass *analysis.ProgramPass, li *analysis.LockInfo, f *types.Var, accs []access) {
	var firstAtomic, firstPlain, firstGuarded, firstBare *access
	for i := range accs {
		a := &accs[i]
		switch a.kind {
		case accessAtomic:
			if firstAtomic == nil {
				firstAtomic = a
			}
		case accessGuarded:
			if firstGuarded == nil {
				firstGuarded = a
			}
			if firstPlain == nil {
				firstPlain = a
			}
		case accessBare:
			if firstBare == nil {
				firstBare = a
			}
			if firstPlain == nil {
				firstPlain = a
			}
		}
	}
	name := fieldName(f)
	if firstAtomic != nil && firstPlain != nil {
		// Every plain access is its own finding, so an allow on one site
		// does not hide the others.
		for i := range accs {
			a := &accs[i]
			if a.kind == accessAtomic {
				continue
			}
			pass.Reportf(a.pos,
				"field %s mixes sync/atomic operations (e.g. %s) with plain access in %s; pick one discipline",
				name, pass.Fset.Position(firstAtomic.pos), a.fn.Name())
		}
		return
	}
	if guard := li.GuardOf(f); guard != "" && firstGuarded != nil && firstBare != nil {
		for i := range accs {
			a := &accs[i]
			if a.kind != accessBare {
				continue
			}
			pass.Reportf(a.pos,
				"mu-guarded field %s is accessed without %s held in %s (guarded elsewhere, e.g. %s); lock it, move the field above mu, or lint:allow atomicmix with the reason",
				name, guard, a.fn.Name(), pass.Fset.Position(firstGuarded.pos))
		}
	}
}

// fieldOf returns the struct field a selector expression reads or
// writes, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// syncShielded reports whether the field's own type carries its
// synchronization (anything defined in sync or sync/atomic).
func syncShielded(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// localBase reports whether the selector's base is a variable declared
// inside body — a value under construction that no other goroutine can
// see yet. Parameters and receivers are declared in the signature, before
// the body, so they do not qualify.
func localBase(info *types.Info, sel *ast.SelectorExpr, body *ast.BlockStmt) bool {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return body.Pos() <= v.Pos() && v.Pos() < body.End()
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldName renders a field as pkg.Type.field when its owner is known.
func fieldName(f *types.Var) string {
	name := f.Name()
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + ownerName(f) + name
	}
	return name
}

// ownerName best-effort recovers the defining struct's type name.
func ownerName(f *types.Var) string {
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	scope := pkg.Scope()
	for _, tn := range scope.Names() {
		obj, ok := scope.Lookup(tn).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == f {
				return obj.Name() + "."
			}
		}
	}
	return ""
}
