package e2nvm_test

import (
	"bytes"
	"fmt"
	"log"

	"e2nvm"
)

// Example shows the minimal lifecycle: open, put, get, delete, metrics.
func Example() {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 64,
		NumSegments: 128,
		Clusters:    4,
		TrainEpochs: 4,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Put(7, []byte("hello")); err != nil {
		log.Fatal(err)
	}
	v, ok, _ := store.Get(7)
	fmt.Println(string(v), ok)
	ok, _ = store.Delete(7)
	fmt.Println("deleted:", ok)
	// Output:
	// hello true
	// deleted: true
}

// ExampleStore_Scan shows ordered range scans over the RB-tree index.
func ExampleStore_Scan() {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 64, NumSegments: 128, Clusters: 4, TrainEpochs: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []uint64{30, 10, 20, 40} {
		if err := store.Put(k, []byte{byte(k)}); err != nil {
			log.Fatal(err)
		}
	}
	_ = store.Scan(10, 30, func(k uint64, _ []byte) bool {
		fmt.Println(k)
		return true
	})
	// Output:
	// 10
	// 20
	// 30
}

// ExampleStore_SaveModel shows persisting a trained model and reopening a
// store without retraining.
func ExampleStore_SaveModel() {
	cfg := e2nvm.Config{SegmentSize: 64, NumSegments: 128, Clusters: 4, TrainEpochs: 4, Seed: 1}
	s1, err := e2nvm.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveModel(&buf); err != nil {
		log.Fatal(err)
	}
	s2, err := e2nvm.OpenWithModel(cfg, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clusters:", s2.Clusters())
	// Output:
	// clusters: 4
}

// ExampleStore_NewBatcher shows coalescing small writes into batch records.
func ExampleStore_NewBatcher() {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 128, NumSegments: 128, Clusters: 4, TrainEpochs: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := store.NewBatcher(0)
	if err != nil {
		log.Fatal(err)
	}
	store.ResetMetrics()
	for k := uint64(0); k < 30; k++ {
		if err := b.Put(k, []byte{byte(k)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		log.Fatal(err)
	}
	v, _, _ := b.Get(5)
	fmt.Println("value:", v[0])
	fmt.Println("device writes under 30:", store.Metrics().Writes < 30)
	// Output:
	// value: 5
	// device writes under 30: true
}

// ExampleStore_PutBatch shows the amortized batch write/read path: keys
// group per shard so each shard's lock is taken once per call, and
// inference runs on the kernel's blocked multi-sample path. The optional
// errs/oks slices carry per-item outcomes without extra allocation.
func ExampleStore_PutBatch() {
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 64, NumSegments: 128, Clusters: 4, TrainEpochs: 4, Seed: 1,
		Shards: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	keys := []uint64{1, 2, 3}
	values := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	errs := make([]error, len(keys)) // per-item outcomes; nil to skip
	if err := store.PutBatch(keys, values, errs); err != nil {
		log.Fatal(err)
	}

	// GetBatch reuses dsts' backing arrays, like GetInto; a missing key
	// is oks[i] = false, not an error.
	lookup := []uint64{2, 3, 99}
	dsts := make([][]byte, len(lookup))
	oks := make([]bool, len(lookup))
	if err := store.GetBatch(lookup, dsts, oks, nil); err != nil {
		log.Fatal(err)
	}
	for i, k := range lookup {
		if oks[i] {
			fmt.Printf("%d=%s\n", k, dsts[i])
		} else {
			fmt.Printf("%d missing\n", k)
		}
	}
	// Output:
	// 2=bb
	// 3=ccc
	// 99 missing
}
