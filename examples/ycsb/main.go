// YCSB: run the six YCSB core workloads against the E2-NVM store and the
// arbitrary-placement baseline on identically seeded devices, and compare
// bit flips and energy — the workload the paper's Figure 11 is built on.
//
//	go run ./examples/ycsb
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"e2nvm"
	"e2nvm/internal/workload"
)

const (
	segSize  = 64
	numSegs  = 768
	records  = 256
	opsPerWL = 2000
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tpolicy\tflips/databit\tenergy uJ\tavg write ns")
	for _, wl := range workload.AllYCSB() {
		for _, placement := range []e2nvm.Placement{e2nvm.PlacementE2NVM, e2nvm.PlacementArbitrary} {
			m, err := run(wl, placement)
			if err != nil {
				log.Fatal(err)
			}
			name := "e2nvm"
			if placement == e2nvm.PlacementArbitrary {
				name = "arbitrary"
			}
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.2f\t%.0f\n",
				wl, name, m.FlipsPerDataBit, m.EnergyPJ/1e6, m.AvgWriteLatencyNs)
		}
	}
	w.Flush()
}

func run(wl workload.YCSBWorkload, placement e2nvm.Placement) (e2nvm.Metrics, error) {
	// Seed every device identically: values near class prototypes, so the
	// data has the Hamming structure real payloads have.
	vg := workload.NewValueGen(segSize, 10, 0.03, 7)
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: segSize,
		NumSegments: numSegs,
		Clusters:    8,
		TrainEpochs: 6,
		Placement:   placement,
		Seed:        1,
		// Seed segments shaped like the store's records ([flag][len][value])
		// so the model's training distribution matches live content.
		SeedContent: func(addr int, seg []byte) {
			seg[0] = 1
			copy(seg[11:], vg.For(uint64(addr)))
		},
	})
	if err != nil {
		return e2nvm.Metrics{}, err
	}
	// Each rewrite of a key carries drifting content (version bump):
	// the regime where content-aware placement beats in-place updates.
	versions := map[uint64]int{}
	val := func(key uint64) []byte {
		return vg.ForVersion(key, versions[key])[:store.MaxValue()]
	}
	bump := func(key uint64) { versions[key]++ }

	// Load phase.
	for k := uint64(0); k < records; k++ {
		if err := store.Put(k, val(k)); err != nil {
			return e2nvm.Metrics{}, err
		}
	}
	store.ResetMetrics()

	gen, err := workload.NewYCSB(wl, records, 42)
	if err != nil {
		return e2nvm.Metrics{}, err
	}
	for i := 0; i < opsPerWL; i++ {
		op := gen.Next()
		switch op.Type {
		case workload.OpRead:
			if _, _, err := store.Get(op.Key); err != nil {
				return e2nvm.Metrics{}, err
			}
		case workload.OpUpdate, workload.OpInsert:
			bump(op.Key)
			if err := store.Put(op.Key, val(op.Key)); err != nil {
				return e2nvm.Metrics{}, err
			}
		case workload.OpScan:
			if err := store.Scan(op.Key, op.Key+uint64(op.ScanLen), func(uint64, []byte) bool { return true }); err != nil {
				return e2nvm.Metrics{}, err
			}
		case workload.OpReadModifyWrite:
			if _, _, err := store.Get(op.Key); err != nil {
				return e2nvm.Metrics{}, err
			}
			bump(op.Key)
			if err := store.Put(op.Key, val(op.Key)); err != nil {
				return e2nvm.Metrics{}, err
			}
		}
	}
	return store.Metrics(), nil
}
