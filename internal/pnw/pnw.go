// Package pnw reimplements the Predict-and-Write baseline (Kargar, Litz &
// Nawab, ICDE 2021) that E2-NVM is evaluated against in Figures 2, 4 and
// 10: a clustering-based memory-aware write scheme that uses plain K-means
// over raw segment bits, optionally preceded by PCA dimensionality
// reduction when the bit width makes raw K-means intractable.
package pnw

import (
	"fmt"
	"time"

	"e2nvm/internal/kmeans"
	"e2nvm/internal/pca"
)

// Mode selects the PNW configuration.
type Mode int

// PNW modes as plotted in the paper.
const (
	// KMeansOnly clusters raw bit vectors directly.
	KMeansOnly Mode = iota
	// PCAKMeans reduces dimensionality with PCA first — the only viable
	// PNW mode for large items per the paper's Figure 4.
	PCAKMeans
)

// String returns the mode's display name.
func (m Mode) String() string {
	switch m {
	case KMeansOnly:
		return "K-means"
	case PCAKMeans:
		return "PCA+K-means"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config controls PNW training.
type Config struct {
	K       int
	Mode    Mode
	PCADims int // latent width for PCAKMeans (default 10)
	Seed    int64
}

// Model is a trained PNW predictor.
type Model struct {
	cfg Config
	pca *pca.Model
	km  *kmeans.Model

	// TrainTime is the wall-clock cost of Train, the preprocessing
	// latency compared in Figure 4.
	TrainTime time.Duration
}

// Train fits PNW on segment bit images (rows of {0,1} values).
func Train(data [][]float64, cfg Config) (*Model, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("pnw: K %d must be positive", cfg.K)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("pnw: empty training set")
	}
	if cfg.PCADims <= 0 {
		cfg.PCADims = 10
	}
	start := time.Now() // lint:allow deepdeterminism — TrainTime is a reported wall-clock measurement
	m := &Model{cfg: cfg}
	feats := data
	if cfg.Mode == PCAKMeans {
		dims := cfg.PCADims
		if dims > len(data[0]) {
			dims = len(data[0])
		}
		p, err := pca.Fit(data, dims)
		if err != nil {
			return nil, err
		}
		m.pca = p
		feats = p.TransformAll(data)
	}
	kcfg := kmeans.NewConfig(cfg.K)
	kcfg.Seed = cfg.Seed
	km, err := kmeans.Fit(feats, kcfg)
	if err != nil {
		return nil, err
	}
	m.km = km
	m.TrainTime = time.Since(start) // lint:allow deepdeterminism — TrainTime is a reported wall-clock measurement
	return m, nil
}

// K returns the cluster count.
func (m *Model) K() int { return m.km.K }

// Mode returns the trained configuration's mode.
func (m *Model) Mode() Mode { return m.cfg.Mode }

// Predict maps an item (same width as training rows) to its cluster.
func (m *Model) Predict(item []float64) int {
	if m.pca != nil {
		return m.km.Predict(m.pca.Transform(item))
	}
	return m.km.Predict(item)
}

// FLOPsPerPredict estimates per-prediction compute: the PCA projection (if
// any) plus the centroid scan, for the energy profiler.
func (m *Model) FLOPsPerPredict() float64 {
	var f float64
	dim := 0
	if m.pca != nil {
		in := len(m.pca.Mean)
		out := len(m.pca.Components)
		f += 2 * float64(in) * float64(out)
		dim = out
	} else if len(m.km.Centroids) > 0 {
		dim = len(m.km.Centroids[0])
	}
	f += 2 * float64(m.km.K) * float64(dim)
	return f
}
