package index

import (
	"encoding/binary"
	"fmt"

	"e2nvm/internal/nvm"
)

// PathHash implements Path Hashing (Zuo & Hua, MSST'17): a hash table whose
// collision handling walks a position-sharing inverted binary tree of
// levels instead of chaining or cuckoo displacement, so a PUT never moves
// existing entries — the write-friendly property the paper groups it with.
//
// Level 0 has nbuckets buckets; each level above halves the bucket count.
// A key hashing to bucket b at level 0 may fall back to bucket b/2 at
// level 1, b/4 at level 2, and so on through the reserved path levels.
// Each bucket is one NVM segment of fixed slots.
type PathHash struct {
	baseStats
	dev   *nvm.Device
	pages pageWriter
	vals  *valueZone // nil in inline mode

	slotPayload  int
	slotsPerBkt  int
	levels       [][]*phBucket
	totalBuckets int
}

type phBucket struct {
	addr    int
	used    []bool
	keys    []uint64
	payload [][]byte
}

// NewPathHash builds a table with nbuckets level-0 buckets and pathLevels
// fallback levels, taking bucket segments from meta. values selects
// out-of-line placement (nil = inline).
func NewPathHash(dev *nvm.Device, meta *FreeList, values Allocator, nbuckets, pathLevels, slotPayload int) (*PathHash, error) {
	if nbuckets <= 0 {
		return nil, fmt.Errorf("pathhash: nbuckets %d must be positive", nbuckets)
	}
	if values != nil && slotPayload < 8 {
		slotPayload = 8
	}
	if slotPayload <= 0 {
		return nil, fmt.Errorf("pathhash: slotPayload %d must be positive", slotPayload)
	}
	t := &PathHash{dev: dev, pages: pageWriter{dev}, slotPayload: slotPayload}
	if values != nil {
		t.vals = &valueZone{dev: dev, alloc: values}
	}
	slotBytes := 8 + 2 + slotPayload
	s := (dev.SegmentSize() - 1) / slotBytes
	for s > 0 && (s+7)/8+s*slotBytes > dev.SegmentSize() {
		s--
	}
	if s == 0 {
		return nil, fmt.Errorf("pathhash: slot payload %d too large for %d-byte segments", slotPayload, dev.SegmentSize())
	}
	t.slotsPerBkt = s
	n := nbuckets
	for lvl := 0; lvl <= pathLevels && n > 0; lvl++ {
		level := make([]*phBucket, n)
		for b := range level {
			addr, err := meta.Place(nil)
			if err != nil {
				return nil, fmt.Errorf("pathhash: bucket allocation: %w", err)
			}
			level[b] = &phBucket{
				addr:    addr,
				used:    make([]bool, s),
				keys:    make([]uint64, s),
				payload: make([][]byte, s),
			}
			t.totalBuckets++
		}
		t.levels = append(t.levels, level)
		n /= 2
	}
	return t, nil
}

// Name implements Store.
func (t *PathHash) Name() string { return "Path Hashing" }

func phHash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

// bucketAt returns the bucket on the key's path at the given level: the
// level-0 position, halved once per level (the inverted-binary-tree
// position sharing of path hashing).
func (t *PathHash) bucketAt(key uint64, lvl int) *phBucket {
	level := t.levels[lvl]
	b0 := phHash(key) % uint64(len(t.levels[0]))
	return level[(b0>>uint(lvl))%uint64(len(level))]
}

func (t *PathHash) serializeBucket(b *phBucket) []byte {
	bm := (t.slotsPerBkt + 7) / 8
	slotBytes := 8 + 2 + t.slotPayload
	out := make([]byte, bm+t.slotsPerBkt*slotBytes)
	for i := 0; i < t.slotsPerBkt; i++ {
		if !b.used[i] {
			continue
		}
		out[i>>3] |= 1 << (uint(i) & 7)
		off := bm + i*slotBytes
		binary.LittleEndian.PutUint64(out[off:], b.keys[i])
		binary.LittleEndian.PutUint16(out[off+8:], uint16(len(b.payload[i])))
		copy(out[off+10:off+10+t.slotPayload], b.payload[i])
	}
	return out
}

// locate finds the bucket and slot holding key, or (nil, -1).
func (t *PathHash) locate(key uint64) (*phBucket, int) {
	for lvl := range t.levels {
		b := t.bucketAt(key, lvl)
		for i, u := range b.used {
			if u && b.keys[i] == key {
				return b, i
			}
		}
	}
	return nil, -1
}

// Put implements Store.
func (t *PathHash) Put(key uint64, value []byte) error {
	t.countValue(value)
	payload := value
	if t.vals != nil {
		addr, err := t.vals.writeValue(value)
		if err != nil {
			return err
		}
		payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(addr))
	}
	if len(payload) > t.slotPayload {
		return fmt.Errorf("pathhash: payload %d exceeds slot payload %d", len(payload), t.slotPayload)
	}
	if b, s := t.locate(key); s >= 0 {
		if t.vals != nil {
			old := int(binary.LittleEndian.Uint64(b.payload[s]))
			if err := t.vals.freeValue(old); err != nil {
				return err
			}
		}
		b.payload[s] = payload
		return t.pages.writePage(b.addr, t.serializeBucket(b))
	}
	for lvl := range t.levels {
		b := t.bucketAt(key, lvl)
		for i, u := range b.used {
			if !u {
				b.used[i] = true
				b.keys[i] = key
				b.payload[i] = payload
				return t.pages.writePage(b.addr, t.serializeBucket(b))
			}
		}
	}
	return fmt.Errorf("pathhash: all path positions full for key %d", key)
}

// Get implements Store.
func (t *PathHash) Get(key uint64) ([]byte, bool, error) {
	b, s := t.locate(key)
	if s < 0 {
		return nil, false, nil
	}
	if t.vals == nil {
		return append([]byte(nil), b.payload[s]...), true, nil
	}
	v, err := t.vals.readValue(int(binary.LittleEndian.Uint64(b.payload[s])))
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements Store.
func (t *PathHash) Delete(key uint64) (bool, error) {
	b, s := t.locate(key)
	if s < 0 {
		return false, nil
	}
	if t.vals != nil {
		addr := int(binary.LittleEndian.Uint64(b.payload[s]))
		if err := t.vals.freeValue(addr); err != nil {
			return false, err
		}
	}
	b.used[s] = false
	b.payload[s] = nil
	return true, t.pages.writePage(b.addr, t.serializeBucket(b))
}

// Len returns the number of live keys (test helper).
func (t *PathHash) Len() int {
	n := 0
	for _, level := range t.levels {
		for _, b := range level {
			for _, u := range b.used {
				if u {
					n++
				}
			}
		}
	}
	return n
}
