package experiments

import (
	"fmt"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/core"
	"e2nvm/internal/hamtree"
	"e2nvm/internal/nvm"
	"e2nvm/internal/pnw"
	"e2nvm/internal/rbw"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("exp-extended", Extended) }

// Extended goes beyond the paper's plotted baselines: it adds the
// Hamming-Tree placement the paper cites as related work, a DATACON-style
// all-zeros/all-ones redirection scheme, and the E2-NVM+FNW combination
// the paper claims is possible ("E2-NVM can also be combined with prior
// hardware-based solutions to further improve efficiency"), all on one
// workload.
func Extended(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	n := cfg.scaleInt(400, 120)
	writes := cfg.scaleInt(800, 150)
	const k = 8

	ds := workload.MNISTLike(n+writes, bits, cfg.Seed)
	seedImgs := toBytesAll(ds.Items[:n], segSize)
	items := toBytesAll(ds.Items[n:], segSize)
	devCfg := nvm.DefaultConfig(segSize, n)

	e2, err := core.Train(ds.Items[:n], core.Config{
		InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 10, JointEpochs: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pm, err := pnw.Train(ds.Items[:n], pnw.Config{K: k, Mode: pnw.PCAKMeans, PCADims: 10, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	table := stats.NewTable("scheme", "flips/write", "energy_pJ/write")

	measure := func(name string, p placer) error {
		dev, err := seededDevice(devCfg, seedImgs)
		if err != nil {
			return err
		}
		if init, ok := p.(interface{ init(dev *nvm.Device) error }); ok {
			if err := init.init(dev); err != nil {
				return err
			}
		}
		dev.ResetStats()
		if _, err := runPlacement(dev, p, items, n/2); err != nil {
			return err
		}
		s := dev.Stats()
		table.AddRow(name, float64(s.BitsFlipped)/float64(s.Writes), s.EnergyPJ/float64(s.Writes))
		return nil
	}

	// FIFO / arbitrary.
	if err := measure("arbitrary", newFIFOPlacer(addrRange(n))); err != nil {
		return nil, err
	}
	// DATACON-style.
	if err := measure("DATACON", &dataconPlacer{}); err != nil {
		return nil, err
	}
	// Hamming-Tree.
	if err := measure("Hamming-Tree", &hamtreePlacer{segSize: segSize}); err != nil {
		return nil, err
	}
	// PNW and E2-NVM (cluster placement needs the seeded device, so use
	// the init hook too).
	if err := measure("PNW", &lazyClusterPlacer{model: pnwAdapter{pm}, k: k, n: n}); err != nil {
		return nil, err
	}
	if err := measure("E2-NVM", &lazyClusterPlacer{model: e2, k: k, n: n}); err != nil {
		return nil, err
	}

	// E2-NVM + FNW: content-aware placement, then Flip-N-Write encoding
	// of the chosen segment. Tags are tracked per segment.
	{
		dev, err := seededDevice(devCfg, seedImgs)
		if err != nil {
			return nil, err
		}
		cp, err := newClusterPlacer(e2, k, dev, addrRange(n))
		if err != nil {
			return nil, err
		}
		fnw := rbw.FNW{}
		tags := make([][]byte, n)
		dev.ResetStats()
		tagFlips := 0
		var live []int
		for _, item := range items {
			addr, ok := cp.place(item)
			if !ok {
				return nil, fmt.Errorf("exp-extended: pool exhausted")
			}
			old, err := dev.Peek(addr)
			if err != nil {
				return nil, err
			}
			res := fnw.Encode(old, tags[addr], item)
			tags[addr] = res.Tags
			tagFlips += res.TagFlips
			if _, err := dev.Write(addr, res.Stored); err != nil {
				return nil, err
			}
			live = append(live, addr)
			if len(live) > n/2 {
				v := live[0]
				live = live[1:]
				img, _ := dev.Peek(v)
				// Recycling predicts on the *decoded* content so the
				// cluster reflects logical data, not FNW encoding.
				cp.recycle(v, toBytesDecode(fnw, img, tags[v]))
			}
		}
		s := dev.Stats()
		flips := (float64(s.BitsFlipped) + float64(tagFlips)) / float64(s.Writes)
		energyPJ := (s.EnergyPJ + float64(tagFlips)*devCfg.WriteEnergyPerBitPJ) / float64(s.Writes)
		table.AddRow("E2-NVM+FNW", flips, energyPJ)
	}

	return &Result{
		ID:    "exp-extended",
		Title: "Extended baseline comparison: arbitrary, DATACON, Hamming-Tree, PNW, E2-NVM, E2-NVM+FNW",
		Table: table,
		Notes: []string{
			fmt.Sprintf("MNIST-like, %d seed segments × %d B, %d writes, k=%d", n, segSize, writes, k),
			"expected ordering: arbitrary worst; DATACON helps only density-skewed data; Hamming-Tree and the learned schemes exploit full content; FNW on top of E2-NVM shaves the residual flips",
		},
	}, nil
}

func toBytesDecode(f rbw.FNW, stored, tags []byte) []byte {
	return f.Decode(stored, tags)
}

// dataconPlacer models DATACON: free segments are classified by 1-density
// into mostly-zeros / mostly-ones / other, and each write is redirected to
// the class matching its content.
type dataconPlacer struct {
	dev                *nvm.Device
	zeros, ones, other []int
}

func (p *dataconPlacer) init(dev *nvm.Device) error {
	p.dev = dev
	for a := 0; a < dev.NumSegments(); a++ {
		img, err := dev.Peek(a)
		if err != nil {
			return err
		}
		p.add(a, img)
	}
	return nil
}

func (p *dataconPlacer) add(addr int, content []byte) {
	switch d := density(content); {
	case d < 0.35:
		p.zeros = append(p.zeros, addr)
	case d > 0.65:
		p.ones = append(p.ones, addr)
	default:
		p.other = append(p.other, addr)
	}
}

func density(b []byte) float64 {
	if len(b) == 0 {
		return 0.5
	}
	return float64(bitvec.FromBytes(b).OnesCount()) / float64(len(b)*8)
}

func (p *dataconPlacer) place(content []byte) (int, bool) {
	prefs := [][]*[]int{{&p.zeros, &p.other, &p.ones}, {&p.ones, &p.other, &p.zeros}}
	idx := 0
	if density(content) >= 0.5 {
		idx = 1
	}
	for _, list := range prefs[idx] {
		if len(*list) > 0 {
			a := (*list)[0]
			*list = (*list)[1:]
			return a, true
		}
	}
	return 0, false
}

func (p *dataconPlacer) recycle(addr int, content []byte) { p.add(addr, content) }

// hamtreePlacer routes writes through a Hamming BK-tree over free-segment
// contents.
type hamtreePlacer struct {
	segSize int
	tree    *hamtree.Tree
}

func (p *hamtreePlacer) init(dev *nvm.Device) error {
	t, err := hamtree.New(p.segSize)
	if err != nil {
		return err
	}
	p.tree = t
	for a := 0; a < dev.NumSegments(); a++ {
		img, err := dev.Peek(a)
		if err != nil {
			return err
		}
		if err := t.Insert(a, img); err != nil {
			return err
		}
	}
	return nil
}

func (p *hamtreePlacer) place(content []byte) (int, bool) {
	addr, _, ok := p.tree.Nearest(content)
	return addr, ok
}

func (p *hamtreePlacer) recycle(addr int, content []byte) {
	_ = p.tree.Insert(addr, content)
}

// lazyClusterPlacer defers pool construction until the seeded device is
// available (via the init hook).
type lazyClusterPlacer struct {
	model predictor
	k, n  int
	inner *clusterPlacer
}

func (p *lazyClusterPlacer) init(dev *nvm.Device) error {
	cp, err := newClusterPlacer(p.model, p.k, dev, addrRange(p.n))
	if err != nil {
		return err
	}
	p.inner = cp
	return nil
}

func (p *lazyClusterPlacer) place(content []byte) (int, bool) { return p.inner.place(content) }
func (p *lazyClusterPlacer) recycle(addr int, content []byte) { p.inner.recycle(addr, content) }
