package lstm

import "fmt"

// Snapshot is a serializable copy of a trained network's parameters.
type Snapshot struct {
	InSize, Hidden, OutSize int
	Wx, Wh                  [][]float64 // one slice per gate
	B                       [][]float64
	HeadW                   []float64
	HeadB                   []float64
}

// Snapshot exports the network parameters.
func (n *Network) Snapshot() *Snapshot {
	s := &Snapshot{InSize: n.InSize, Hidden: n.Hidden, OutSize: n.OutSize}
	for g := 0; g < ngates; g++ {
		s.Wx = append(s.Wx, append([]float64(nil), n.wx[g].Data...))
		s.Wh = append(s.Wh, append([]float64(nil), n.wh[g].Data...))
		s.B = append(s.B, append([]float64(nil), n.b[g]...))
	}
	s.HeadW = append([]float64(nil), n.head.W.Data...)
	s.HeadB = append([]float64(nil), n.head.B...)
	return s
}

// FromSnapshot reconstructs a network from exported parameters.
func FromSnapshot(s *Snapshot) (*Network, error) {
	n, err := New(s.InSize, s.Hidden, s.OutSize, 0)
	if err != nil {
		return nil, err
	}
	if len(s.Wx) != ngates || len(s.Wh) != ngates || len(s.B) != ngates {
		return nil, fmt.Errorf("lstm: snapshot has %d/%d/%d gates, want %d", len(s.Wx), len(s.Wh), len(s.B), ngates)
	}
	for g := 0; g < ngates; g++ {
		if len(s.Wx[g]) != len(n.wx[g].Data) || len(s.Wh[g]) != len(n.wh[g].Data) || len(s.B[g]) != len(n.b[g]) {
			return nil, fmt.Errorf("lstm: snapshot gate %d parameter sizes mismatch", g)
		}
		copy(n.wx[g].Data, s.Wx[g])
		copy(n.wh[g].Data, s.Wh[g])
		copy(n.b[g], s.B[g])
	}
	if len(s.HeadW) != len(n.head.W.Data) || len(s.HeadB) != len(n.head.B) {
		return nil, fmt.Errorf("lstm: snapshot head parameter sizes mismatch")
	}
	copy(n.head.W.Data, s.HeadW)
	copy(n.head.B, s.HeadB)
	return n, nil
}
