GO ?= go

.PHONY: all build test race lint vet

all: build lint test

build:
	$(GO) build ./...

# Repo-specific static analysis: lockdiscipline, seededrand, floateq,
# nopanic (see DESIGN.md "Static analysis & invariants").
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/e2nvm-lint ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
