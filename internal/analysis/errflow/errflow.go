// Package errflow defines an inter-procedural Analyzer enforcing the
// repo's error contract: every error crossing an exported boundary of the
// storage packages chains (via %w) to a declared sentinel, so callers can
// errors.Is against the package's documented error vars — even when the
// error is constructed inside a private helper several calls down.
//
// Three checks:
//
//  1. A bare error origin — errors.New, or fmt.Errorf whose format has no
//     %w verb — inside any function reachable from an exported function of
//     a scoped package is flagged at the construction site. Returning nil,
//     a sentinel (a package-level error var), or a %w-wrap is fine;
//     errors from out-of-scope callees (stdlib, other packages) are
//     trusted to be properly formed.
//  2. err == X / err != X comparisons between two non-nil error values:
//     use errors.Is, which survives wrapping.
//  3. A call whose error result is silently discarded as a bare
//     statement. An explicit `_ = f()` is deliberate and not flagged.
//
// Suppress a finding with `lint:allow errflow` on the offending line.
package errflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"e2nvm/internal/analysis"
)

// ScopePackages restricts the boundary check to these import paths; the
// lint driver sets it to the storage packages (core, kvstore, txn, nvm).
// Empty means every loaded package is in scope (used by test fixtures).
var ScopePackages []string

// Analyzer enforces sentinel-wrapped errors across exported boundaries.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "errflow",
	Doc: "errors returned across exported boundaries must wrap a declared sentinel " +
		"via %w; compare errors with errors.Is; do not silently discard error returns",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	inScope := func(p *analysis.Package) bool {
		if len(ScopePackages) == 0 {
			return true
		}
		for _, s := range ScopePackages {
			if p.PkgPath == s {
				return true
			}
		}
		return false
	}

	// Roots: exported functions and methods of the in-scope packages.
	// Anything they (transitively, within scope) call can construct an
	// error that crosses the exported boundary.
	g := pass.Graph
	var roots []*analysis.FuncNode
	for _, n := range g.Nodes() {
		if n.Obj == nil || !inScope(n.Pkg) {
			continue
		}
		if n.Obj.Exported() && returnsError(n.Obj) {
			roots = append(roots, n)
		}
	}
	reach := g.Reach(roots, func(from *analysis.FuncNode, c analysis.Call) bool {
		if pass.Allowed(c.Site) {
			return true
		}
		// Stay within the scoped packages: an out-of-scope callee's
		// errors are its own contract.
		if c.Callee != nil && !inScope(c.Callee.Pkg) {
			return true
		}
		return false
	})

	for _, n := range g.Nodes() {
		if _, ok := reach[n]; ok {
			checkOrigins(pass, n)
		}
	}

	// Checks 2 and 3 are syntactic and package-scoped.
	for _, pkg := range pass.Pkgs {
		if !inScope(pkg) {
			continue
		}
		checkComparisonsAndDiscards(pass, pkg)
	}
	return nil
}

// returnsError reports whether fn's signature includes an error result.
func returnsError(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isError(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isError(t types.Type) bool {
	return t.String() == "error"
}

// checkOrigins flags bare error constructions in one reached function.
func checkOrigins(pass *analysis.ProgramPass, n *analysis.FuncNode) {
	info := n.Pkg.TypesInfo
	n.InspectOwn(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() + "." + obj.Name() {
		case "errors.New":
			pass.Reportf(call.Pos(),
				"bare errors.New escapes the exported boundary of %s; wrap a declared sentinel with fmt.Errorf(\"...: %%w\", ErrX)",
				n.Pkg.Types.Name())
		case "fmt.Errorf":
			if len(call.Args) == 0 {
				return true
			}
			if format, ok := stringConstant(info, call.Args[0]); ok && !strings.Contains(format, "%w") {
				pass.Reportf(call.Pos(),
					"fmt.Errorf without %%w escapes the exported boundary of %s; chain a declared sentinel",
					n.Pkg.Types.Name())
			}
		}
		return true
	})
}

// stringConstant evaluates e as a constant string.
func stringConstant(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkComparisonsAndDiscards flags err==X comparisons and discarded
// error-returning calls throughout one package.
func checkComparisonsAndDiscards(pass *analysis.ProgramPass, pkg *analysis.Package) {
	info := pkg.TypesInfo
	for _, f := range pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isErrorExpr(info, x.X) && isErrorExpr(info, x.Y) {
					pass.Reportf(x.Pos(), "error compared with %s; use errors.Is so wrapped sentinels still match", x.Op)
				}
			case *ast.ExprStmt:
				call, ok := x.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callReturnsError(info, call) {
					pass.Reportf(x.Pos(), "error result silently discarded; handle it or assign to _ explicitly")
				}
			}
			return true
		})
	}
}

// isErrorExpr reports whether e has error type and is not a nil literal.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	return isError(tv.Type)
}

// callReturnsError reports whether the call produces at least one error
// result (single error, or error in a tuple).
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isError(t)
	}
	return false
}
