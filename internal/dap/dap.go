// Package dap implements E2-NVM's cluster-to-memory Dynamic Address Pool
// (§3.3.1): a thread-safe map from cluster id to the list of free memory
// segment addresses whose current content belongs to that cluster.
//
// A PUT pops the first available address of the predicted cluster ("we just
// take the first available address in the cluster knowing that it will have
// a very similar content"); a DELETE recycles the freed address back into
// the cluster its content now belongs to. When a cluster runs dry the pool
// falls back to the nearest non-empty cluster so the system can always
// serve writes, and reports the cluster as low so the owner can trigger
// background retraining.
//
// Each per-cluster FIFO is a ring buffer: pop/push are O(1) with no
// allocation or retention in steady state (the earlier slice-FIFO kept
// popped entries alive in the backing array and re-allocated on append
// churn, which sat directly on the PUT path).
package dap

import (
	"fmt"
	"sync"
)

// Temp classifies a key's access temperature for wear-aware cluster
// selection (GetFor). TempNone requests the pure content-similarity
// placement; TempHot steers to the least-worn cluster and TempCold to
// the most-worn one, turning the paper's endurance story into an
// explicit hot/cold wear-leveling policy.
type Temp uint8

// Temperatures.
const (
	TempNone Temp = iota
	TempHot
	TempCold
)

// slot is one pooled free address plus the wear (cumulative segment
// write count) it carried when it was recycled, the statistic the
// hot/cold steering policy averages per cluster.
type slot struct {
	addr int
	wear uint32
}

// ring is a FIFO of address slots over a power-of-two circular buffer.
type ring struct {
	buf  []slot
	head int // index of the oldest element
	n    int // number of live elements
}

// push appends a slot, growing the buffer when full.
func (r *ring) push(s slot) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = s
	r.n++
}

// pop removes and returns the oldest slot. Callers check r.n > 0.
func (r *ring) pop() slot {
	s := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return s
}

// remove deletes the first occurrence of addr from the FIFO, preserving
// order. Returns the removed slot's wear and whether addr was present.
// O(n), but only runs on the cold retirement path.
func (r *ring) remove(addr int) (uint32, bool) {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)&mask].addr != addr {
			continue
		}
		wear := r.buf[(r.head+i)&mask].wear
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.n--
		return wear, true
	}
	return 0, false
}

// grow doubles the buffer, linearizing the live window. Amortized O(1):
// steady-state traffic never grows once the ring reaches the working-set
// size.
func (r *ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]slot, size) // lint:allow hotpathalloc — amortized ring growth, absent in steady state
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Pool is a cluster-to-memory dynamic address pool.
type Pool struct {
	mu       sync.Mutex
	clusters []ring   // cluster id → FIFO of free addresses
	wearSum  []uint64 // cluster id → sum of pooled slots' wear
	free     int      // total free addresses
	maxSize  int      // optional cap on total entries (0 = unlimited)

	// lowWater is the per-cluster threshold below which the cluster is
	// reported by LowClusters, the paper's retraining trigger.
	lowWater int

	// retired holds addresses of worn-out segments. They are refused by Add
	// and survive Reset, so a dead segment can never be handed out again.
	// Lazily allocated: fault-free stores never pay for it.
	retired map[int]struct{}

	popped  uint64 // Get operations served
	pushed  uint64 // Add operations accepted
	steered uint64 // GetFor placements moved off the predicted cluster by temperature
}

// Option configures a Pool.
type Option func(*Pool)

// WithMaxEntries caps the total number of addresses the pool will hold —
// the paper's option (1) for bounding the DRAM footprint of the table.
func WithMaxEntries(n int) Option {
	// lint:allow atomicmix — options run inside New before the pool is shared
	return func(p *Pool) { p.maxSize = n }
}

// WithLowWater sets the per-cluster free-list threshold that marks a
// cluster as needing retraining (default 0: never low).
func WithLowWater(n int) Option {
	// lint:allow atomicmix — options run inside New before the pool is shared
	return func(p *Pool) { p.lowWater = n }
}

// New creates a pool with k clusters.
func New(k int, opts ...Option) (*Pool, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dap: cluster count %d must be positive", k)
	}
	p := &Pool{clusters: make([]ring, k), wearSum: make([]uint64, k)}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// K returns the number of clusters.
func (p *Pool) K() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clusters)
}

// Add recycles a free address into cluster c. It returns false when the
// pool is at its configured capacity (the address is then simply dropped
// from tracking, matching the paper's bounded-table option) or when the
// address has been retired.
//
// lint:hotpath
func (p *Pool) Add(c, addr int) bool {
	return p.AddWear(c, addr, 0)
}

// AddWear is Add carrying the segment's cumulative write count, so the
// pool can maintain per-cluster average wear for the hot/cold steering
// policy (GetFor). Plain Add records zero wear, which leaves steering
// decisions to the clusters whose owners do report wear.
//
// lint:hotpath
func (p *Pool) AddWear(c, addr int, wear uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkCluster(c)
	if p.retired != nil {
		if _, dead := p.retired[addr]; dead {
			return false
		}
	}
	if p.maxSize > 0 && p.free >= p.maxSize {
		return false
	}
	w := uint32(wear)
	if wear > uint64(^uint32(0)) {
		w = ^uint32(0)
	}
	p.clusters[c].push(slot{addr: addr, wear: w})
	p.wearSum[c] += uint64(w)
	p.free++
	p.pushed++
	return true
}

// Get pops the first available address of cluster c. If c is empty, the
// nearest non-empty cluster (by cluster-id distance, a cheap proxy for
// latent-space adjacency) is used instead; fallback reports which cluster
// actually served the request. ok is false only when the whole pool is
// empty.
//
// lint:hotpath
func (p *Pool) Get(c int) (addr, servedBy int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkCluster(c)
	return p.getLocked(c)
}

// GetFor is Get with a temperature hint: TempNone is exactly Get, while
// TempHot (TempCold) first tries to steer the placement to the non-empty
// cluster with the lowest (highest) average pooled wear — hot keys burn
// low-wear segments, cold keys soak up worn ones. steered reports that
// the temperature, not an empty free list, moved the placement off the
// predicted cluster; the nearest-cluster fallback behaviour and its
// accounting are unchanged.
//
// lint:hotpath
func (p *Pool) GetFor(c int, t Temp) (addr, servedBy int, steered, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkCluster(c)
	if t != TempNone && len(p.clusters) > 1 {
		if sc, found := p.steerTargetLocked(c, t); found && sc != c {
			a, sb, k := p.getLocked(sc)
			p.steered++
			return a, sb, true, k
		}
	}
	a, sb, k := p.getLocked(c)
	return a, sb, false, k
}

// steerTargetLocked picks the steering destination for temperature t:
// among the non-empty clusters, the one with the minimum (TempHot) or
// maximum (TempCold) average slot wear, preferring the predicted cluster
// c and then cluster-id proximity to it on ties. Callers hold p.mu.
func (p *Pool) steerTargetLocked(c int, t Temp) (int, bool) {
	best, found := 0, false
	var bestAvg float64
	for i := range p.clusters {
		if p.clusters[i].n == 0 {
			continue
		}
		avg := float64(p.wearSum[i]) / float64(p.clusters[i].n)
		switch {
		case !found:
			best, bestAvg, found = i, avg, true
		case t == TempHot && avg < bestAvg, t == TempCold && bestAvg < avg:
			best, bestAvg = i, avg
		case !(avg < bestAvg) && !(bestAvg < avg):
			// Exact tie (both ratios compare equal): prefer cluster-id
			// proximity to the prediction, then the lower id.
			di, db := i-c, best-c
			if di < 0 {
				di = -di
			}
			if db < 0 {
				db = -db
			}
			if di < db || (di == db && i < best) {
				best = i
			}
		}
	}
	return best, found
}

// getLocked is the shared pop-with-nearest-fallback. Callers hold p.mu.
func (p *Pool) getLocked(c int) (addr, servedBy int, ok bool) {
	if p.clusters[c].n > 0 {
		return p.pop(c), c, true
	}
	if p.free == 0 {
		return 0, 0, false
	}
	for d := 1; d < len(p.clusters); d++ {
		if cc := c - d; cc >= 0 && p.clusters[cc].n > 0 {
			return p.pop(cc), cc, true
		}
		if cc := c + d; cc < len(p.clusters) && p.clusters[cc].n > 0 {
			return p.pop(cc), cc, true
		}
	}
	// Unreachable: free > 0 implies some cluster is non-empty.
	return 0, 0, false
}

func (p *Pool) pop(c int) int {
	s := p.clusters[c].pop()
	p.wearSum[c] -= uint64(s.wear)
	p.free--
	p.popped++
	return s.addr
}

func (p *Pool) checkCluster(c int) {
	if c < 0 || c >= len(p.clusters) {
		// lint:allow escapes — panic-message formatting on the guard branch;
		// the escapes only materialize when the process is already dying
		panic(fmt.Sprintf("dap: cluster %d out of range [0,%d)", c, len(p.clusters)))
	}
}

// Free returns the total number of free addresses tracked.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// ClusterSizes returns the current free-list length of every cluster.
func (p *Pool) ClusterSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.clusters))
	for i := range p.clusters {
		out[i] = p.clusters[i].n
	}
	return out
}

// LowClusters returns the ids of clusters at or below the low-water mark —
// the signal E2-NVM uses to kick off background retraining (§4.1.4).
func (p *Pool) LowClusters() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lowWater <= 0 {
		return nil
	}
	var low []int
	for i := range p.clusters {
		if p.clusters[i].n <= p.lowWater {
			low = append(low, i)
		}
	}
	return low
}

// NeedsRetrain reports whether any cluster is at or below the low-water
// mark, without allocating (the hot-path variant of LowClusters).
func (p *Pool) NeedsRetrain() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lowWater <= 0 {
		return false
	}
	for i := range p.clusters {
		if p.clusters[i].n <= p.lowWater {
			return true
		}
	}
	return false
}

// Retire permanently removes addr from the pool: it is dropped from
// whichever free list holds it, and future Add calls for it are refused.
// Retirement survives Reset, so a model retrain cannot resurrect a dead
// segment. Returns true the first time addr is retired.
func (p *Pool) Retire(addr int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.retired == nil {
		p.retired = make(map[int]struct{})
	}
	if _, dead := p.retired[addr]; dead {
		return false
	}
	p.retired[addr] = struct{}{}
	for c := range p.clusters {
		if wear, ok := p.clusters[c].remove(addr); ok {
			p.wearSum[c] -= uint64(wear)
			p.free--
			break
		}
	}
	return true
}

// IsRetired reports whether addr has been retired.
func (p *Pool) IsRetired(addr int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, dead := p.retired[addr]
	return dead
}

// RetiredCount returns how many addresses have been retired.
func (p *Pool) RetiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.retired)
}

// Reset discards all entries and re-shapes the pool to k clusters —
// performed after a model retrain, when every free address is re-predicted
// under the new model. Retired addresses stay retired.
func (p *Pool) Reset(k int) error {
	if k <= 0 {
		return fmt.Errorf("dap: cluster count %d must be positive", k)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clusters = make([]ring, k)
	p.wearSum = make([]uint64, k)
	p.free = 0
	return nil
}

// Stats reports cumulative pool activity.
type Stats struct {
	Free    int
	Retired int
	Popped  uint64
	Pushed  uint64
	// Steered counts GetFor placements the temperature hint moved off
	// the predicted cluster (distinct from empty-cluster fallbacks).
	Steered uint64
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Free: p.free, Retired: len(p.retired), Popped: p.popped, Pushed: p.pushed, Steered: p.steered}
}

// ClusterWear returns each cluster's average pooled slot wear — the
// statistic GetFor steers by — index-aligned with ClusterSizes. Clusters
// with an empty free list report 0.
func (p *Pool) ClusterWear() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, len(p.clusters))
	for i := range p.clusters {
		if p.clusters[i].n > 0 {
			out[i] = float64(p.wearSum[i]) / float64(p.clusters[i].n)
		}
	}
	return out
}

// FootprintBytes estimates the pool's DRAM footprint: 16 bytes per ring
// slot (address plus wear, occupied or not) plus the ring headers (the
// quantity plotted in the paper's Figure 7).
func (p *Pool) FootprintBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	bytes := 0
	for i := range p.clusters {
		bytes += len(p.clusters[i].buf) * 16
	}
	return bytes + len(p.clusters)*40
}
