// Package hotpathalloc is a golden fixture for the hotpathalloc analyzer:
// allocation sites are flagged in the marked root itself and — through the
// call graph — in every function the root transitively reaches.
package hotpathalloc

import "fmt"

type point struct{ x, y int }

func sink(v any) { _ = v }

// Serve is the hot-path root. The two "reaches" findings on its
// declaration line exist only because the engine follows the call edges
// Serve -> helper -> deep: neither callee carries a marker of its own.
//
// lint:hotpath
func Serve(dst []byte, n int, f func() int) (int, error) { // want "hot path hotpathalloc\.Serve reaches make allocation in hotpathalloc\.helper \(hotpathalloc\.Serve -> hotpathalloc\.helper\)" "hot path hotpathalloc\.Serve reaches new allocation in hotpathalloc\.deep \(hotpathalloc\.Serve -> hotpathalloc\.helper -> hotpathalloc\.deep\)"
	if n < 0 {
		// Cold error exit: the whole block is skipped, fmt and all.
		return 0, fmt.Errorf("hotpathalloc: negative length %d", n)
	}
	buf := make([]byte, n) // want "make allocation on hot path hotpathalloc\.Serve"
	dst = append(dst, buf...) // want "append growth allocation on hot path hotpathalloc\.Serve"
	dst = append(dst[:0], buf...) // reuse idiom: reslice destination is allowed
	s := string(buf) // want "string/\[\]byte conversion allocation on hot path hotpathalloc\.Serve"
	_ = s
	xs := []int{1, 2, 3} // want "composite-literal allocation on hot path hotpathalloc\.Serve"
	_ = xs
	p := &point{} // want "&T\{\} heap allocation on hot path hotpathalloc\.Serve"
	_ = p
	sink(n)  // want "interface boxing of int on hot path hotpathalloc\.Serve"
	_ = f()  // want "call through function value \(cannot verify allocation-free\) on hot path hotpathalloc\.Serve"
	scratch := make([]byte, 8) // lint:allow hotpathalloc — demonstration of the site escape
	_ = scratch
	return helper(n) + len(dst), nil
}

// helper allocates, but is never flagged at its own position: the finding
// is attributed to the root that reaches it.
func helper(n int) int {
	buf := make([]int, n)
	return len(buf) + deep()
}

func deep() int {
	q := new(int)
	return *q
}

// Trim prunes its only call edge, declaring Cold a cold branch.
//
// lint:hotpath
func Trim() int {
	return len(Cold()) // lint:allow hotpathalloc — cold branch, pruned edge
}

// Cold allocates freely: its only caller pruned the edge, so it is
// unreachable from every root.
func Cold() []int {
	return make([]int, 4)
}

// Unreached allocates freely: no root reaches it at all.
func Unreached() []int {
	return make([]int, 64)
}
