package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType is a YCSB operation kind.
type OpType int

// YCSB operation kinds.
const (
	OpRead OpType = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String returns the operation's name.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     uint64
	ScanLen int
}

// YCSBWorkload identifies one of the six core workloads.
type YCSBWorkload byte

// The six YCSB core workloads.
const (
	YCSBA YCSBWorkload = 'A' // 50% read / 50% update, zipfian
	YCSBB YCSBWorkload = 'B' // 95% read / 5% update, zipfian
	YCSBC YCSBWorkload = 'C' // 100% read, zipfian
	YCSBD YCSBWorkload = 'D' // 95% read / 5% insert, latest
	YCSBE YCSBWorkload = 'E' // 95% scan / 5% insert, zipfian
	YCSBF YCSBWorkload = 'F' // 50% read / 50% read-modify-write, zipfian
)

// AllYCSB lists the six core workloads in order.
func AllYCSB() []YCSBWorkload {
	return []YCSBWorkload{YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF}
}

// String returns "YCSB-A" etc.
func (w YCSBWorkload) String() string { return "YCSB-" + string(w) }

// YCSBGenerator produces the operation stream of one core workload over a
// growing key space (inserts extend it), using the standard zipfian /
// latest / uniform request distributions.
type YCSBGenerator struct {
	Workload YCSBWorkload
	r        *rand.Rand
	zipf     *zipfGen
	keys     uint64 // current key-space size
	maxScan  int
}

// NewYCSB creates a generator over an initial key space of recordCount
// keys (the load phase inserts keys 0..recordCount-1).
func NewYCSB(w YCSBWorkload, recordCount int, seed int64) (*YCSBGenerator, error) {
	switch w {
	case YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF:
	default:
		return nil, fmt.Errorf("workload: unknown YCSB workload %q", string(w))
	}
	if recordCount <= 0 {
		return nil, fmt.Errorf("workload: recordCount %d must be positive", recordCount)
	}
	r := rand.New(rand.NewSource(seed))
	return &YCSBGenerator{
		Workload: w,
		r:        r,
		zipf:     newZipf(r, uint64(recordCount), 0.99),
		keys:     uint64(recordCount),
		maxScan:  100,
	}, nil
}

// KeyCount returns the current key-space size (grows with inserts).
func (g *YCSBGenerator) KeyCount() uint64 { return g.keys }

// Next returns the next operation.
func (g *YCSBGenerator) Next() Op {
	p := g.r.Float64()
	switch g.Workload {
	case YCSBA:
		if p < 0.5 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpUpdate, Key: g.zipfKey()}
	case YCSBB:
		if p < 0.95 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpUpdate, Key: g.zipfKey()}
	case YCSBC:
		return Op{Type: OpRead, Key: g.zipfKey()}
	case YCSBD:
		if p < 0.95 {
			return Op{Type: OpRead, Key: g.latestKey()}
		}
		return g.insert()
	case YCSBE:
		if p < 0.95 {
			return Op{Type: OpScan, Key: g.zipfKey(), ScanLen: 1 + g.r.Intn(g.maxScan)}
		}
		return g.insert()
	default: // YCSBF
		if p < 0.5 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpReadModifyWrite, Key: g.zipfKey()}
	}
}

func (g *YCSBGenerator) insert() Op {
	k := g.keys
	g.keys++
	g.zipf.grow(g.keys)
	return Op{Type: OpInsert, Key: k}
}

// zipfKey draws a key under the scrambled-zipfian request distribution.
func (g *YCSBGenerator) zipfKey() uint64 {
	return scramble(g.zipf.next()) % g.keys
}

// latestKey draws a key skewed toward recently inserted keys (YCSB's
// "latest" distribution: zipfian over recency).
func (g *YCSBGenerator) latestKey() uint64 {
	off := g.zipf.next()
	if off >= g.keys {
		off = g.keys - 1
	}
	return g.keys - 1 - off
}

// scramble is YCSB's FNV-based key scrambler, spreading hot zipfian ranks
// across the key space.
func scramble(k uint64) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (k >> (8 * uint(i))) & 0xff
		h *= prime
	}
	return h
}

// Zipf is a standalone zipfian rank sampler for request streams outside
// the YCSB generator (benchmarks, experiments). Unlike math/rand's Zipf it
// supports the YCSB regime theta < 1 (the canonical 0.99 request skew).
type Zipf struct{ g *zipfGen }

// NewZipfSampler samples ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta.
func NewZipfSampler(n uint64, theta float64, seed int64) (*Zipf, error) {
	if n == 0 || theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("workload: zipf wants n > 0 and 0 < theta < 1, got n=%d theta=%g", n, theta)
	}
	return &Zipf{g: newZipf(rand.New(rand.NewSource(seed)), n, theta)}, nil
}

// Next draws the next rank (0 is the hottest).
func (z *Zipf) Next() uint64 { return z.g.next() }

// zipfGen samples ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta, using the
// Gray et al. rejection-free method YCSB uses, supporting item-count
// growth.
type zipfGen struct {
	r     *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

func newZipf(r *rand.Rand, n uint64, theta float64) *zipfGen {
	z := &zipfGen{r: r, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = z.etaVal()
	return z
}

func (z *zipfGen) etaVal() float64 {
	return (1 - math.Pow(2/float64(z.n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// zetaHead is the exact-summation cutoff for zetaStatic: sums up to this
// length are computed term by term, longer tails analytically.
const zetaHead = 10000

func zetaStatic(n uint64, theta float64) float64 {
	// Exact for small n; for large n the tail past the exact head uses the
	// Euler–Maclaurin expansion of Σ i^-θ, keeping construction O(1)-ish.
	//
	// The earlier plain integral approximation ∫ x^-θ dx systematically
	// underestimated the tail (each term 1/i^θ exceeds ∫_i^{i+1} x^-θ dx),
	// biasing ζ(n) low by ~½·N^-θ ≈ 5e-4 absolute at θ=0.99 — enough to
	// shift the generator's hot-head/tail split where cache benchmarks
	// measure hit rates. Euler–Maclaurin's ½(f(N)+f(n)) boundary and first
	// Bernoulli correction bring the error below 1e-10 (pinned by
	// TestZetaStaticMatchesExact).
	if n <= zetaHead {
		s := 0.0
		for i := uint64(1); i <= n; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	head := zetaStatic(zetaHead, theta)
	N, fn := float64(zetaHead), float64(n)
	tail := (math.Pow(fn, 1-theta)-math.Pow(N, 1-theta))/(1-theta) +
		(math.Pow(fn, -theta)-math.Pow(N, -theta))/2 +
		theta*(math.Pow(N, -theta-1)-math.Pow(fn, -theta-1))/12
	return head + tail
}

func (z *zipfGen) grow(n uint64) {
	if n <= z.n {
		return
	}
	// Incremental zeta update.
	for i := z.n + 1; i <= n && i <= z.n+64; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	if n > z.n+64 {
		z.zetan = zetaStatic(n, z.theta)
	}
	z.n = n
	z.eta = z.etaVal()
}

func (z *zipfGen) next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// ValueGen deterministically produces values whose content correlates with
// the key's cluster, so YCSB traffic also has Hamming structure for the
// model to exploit (real YCSB payloads are field-structured, not uniform
// noise).
type ValueGen struct {
	protos [][]byte
	noise  float64
	r      *rand.Rand
	size   int
}

// NewValueGen creates a generator of size-byte values drawn near classes
// prototype patterns with the given bit-noise.
func NewValueGen(size, classes int, noise float64, seed int64) *ValueGen {
	r := rand.New(rand.NewSource(seed))
	protos := make([][]byte, classes)
	for c := range protos {
		p := make([]byte, size)
		r.Read(p)
		protos[c] = p
	}
	return &ValueGen{protos: protos, noise: noise, r: r, size: size}
}

// For returns a value for key; repeated calls vary slightly but stay near
// the key's class prototype.
func (v *ValueGen) For(key uint64) []byte {
	return v.near(v.protos[key%uint64(len(v.protos))])
}

// ForVersion returns a value whose class depends on both the key and its
// version, modeling update traffic whose content drifts over time (each
// rewrite of a key carries materially different content — the regime in
// which placement beats in-place overwrites).
func (v *ValueGen) ForVersion(key uint64, version int) []byte {
	return v.near(v.protos[(key+uint64(version))%uint64(len(v.protos))])
}

func (v *ValueGen) near(proto []byte) []byte {
	out := append([]byte(nil), proto...)
	flips := int(v.noise * float64(v.size*8))
	for i := 0; i < flips; i++ {
		b := v.r.Intn(v.size * 8)
		out[b>>3] ^= 1 << (uint(b) & 7)
	}
	return out
}
