// Command e2nvm-bench regenerates the paper's tables and figures on the
// simulated PCM device.
//
// Usage:
//
//	e2nvm-bench -list
//	e2nvm-bench -exp fig10 [-scale 1.0] [-seed 42]
//	e2nvm-bench -all [-scale 0.25]
//
// Each experiment prints the rows/series the corresponding paper figure
// plots, plus notes stating the expected shape. See EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"e2nvm/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		exp     = flag.String("exp", "", "experiment id to run (e.g. fig10)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = reference size)")
		seed    = flag.Int64("seed", 42, "random seed")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		kvbench = flag.Bool("kvbench", false, "run the Put/Get/Delete micro-benchmarks and emit a JSON baseline")
		out     = flag.String("out", "-", "output file for -kvbench (default stdout)")
	)
	flag.Parse()

	if *kvbench {
		if err := runKVBench(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.RunConfig{Scale: *scale, Seed: *seed}
	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "usage: e2nvm-bench -list | -exp <id> | -all  (see -h)")
		os.Exit(2)
	}
	for _, id := range ids {
		r, ok := experiments.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
			os.Exit(1)
		}
		start := time.Now()
		res, err := r(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			doc, err := res.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: encoding: %v\n", id, err)
				os.Exit(1)
			}
			os.Stdout.Write(doc)
			fmt.Println()
			continue
		}
		res.Print(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
