package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/pnw"
	"e2nvm/internal/rbw"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig02", Fig2) }

// Fig2 reproduces Figure 2: the average number of bit updates per write as
// the wear-leveling swap period ψ varies, comparing E2-NVM against FNW,
// Captopril, PNW, DCW and MinShift on Amazon-Access-like records. At ψ=1
// every write triggers a segment swap, destroying E2-NVM's placement (and
// hurting everyone); at realistic ψ (tens of writes) the software-level
// approach pulls ahead.
func Fig2(cfg RunConfig) (*Result, error) {
	const segSize = 32
	numSegs := cfg.scaleInt(384, 64)
	nItems := cfg.scaleInt(1500, 200)
	k := 10

	ds := workload.AmazonAccessLike(numSegs+nItems, segSize*8, cfg.Seed)
	seedImgs := toBytesAll(ds.Items[:numSegs], segSize)
	items := toBytesAll(ds.Items[numSegs:], segSize)

	// Train the clustering models once on the seed contents.
	e2Model, err := core.Train(ds.Items[:numSegs], core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 8,
		Epochs: 15, JointEpochs: 3, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pnwModel, err := pnw.Train(ds.Items[:numSegs], pnw.Config{K: k, Mode: pnw.PCAKMeans, PCADims: 8, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	psis := []int{1, 2, 5, 10, 20, 50, 100}
	table := stats.NewTable(append([]string{"psi"},
		"E2-NVM", "PNW", "DCW", "FNW", "MinShift", "Captopril")...)

	for _, psi := range psis {
		devCfg := nvm.DefaultConfig(segSize, numSegs)
		devCfg.WearLevelPeriod = psi

		runClustered := func(model predictor) (float64, error) {
			dev, err := seededDevice(devCfg, seedImgs)
			if err != nil {
				return 0, err
			}
			p, err := newClusterPlacer(model, k, dev, addrRange(numSegs))
			if err != nil {
				return 0, err
			}
			dev.ResetStats()
			if _, err := runPlacement(dev, p, items, numSegs/2); err != nil {
				return 0, err
			}
			s := dev.Stats()
			return float64(s.BitsFlipped) / float64(s.Writes), nil
		}

		e2, err := runClustered(e2Model)
		if err != nil {
			return nil, err
		}
		pn, err := runClustered(pnwAdapter{pnwModel})
		if err != nil {
			return nil, err
		}

		schemes := []rbw.Scheme{rbw.DCW{}, rbw.FNW{}, rbw.MinShift{}, rbw.Captopril{}}
		perScheme := map[string]float64{}
		for _, sch := range schemes {
			dev, err := seededDevice(devCfg, seedImgs)
			if err != nil {
				return nil, err
			}
			avg, err := runInPlaceScheme(dev, sch, items, numSegs)
			if err != nil {
				return nil, err
			}
			perScheme[sch.Name()] = avg
		}
		table.AddRow(psi, e2, pn, perScheme["DCW"], perScheme["FNW"], perScheme["MinShift"], perScheme["Captopril"])
	}
	return &Result{
		ID:    "fig02",
		Title: "Average bit updates per write vs wear-leveling swap period ψ",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d segments × %d B, %d writes, Amazon-Access-like records, k=%d", numSegs, segSize, nItems, k),
			"bit updates include wear-leveling copy flips and RBW tag-bit flips",
		},
	}, nil
}

// pnwAdapter lets a PNW model serve the predictor interface.
type pnwAdapter struct{ m *pnw.Model }

func (a pnwAdapter) PredictBytes(b []byte) (int, error) {
	return a.m.Predict(core.BytesToBits(b)), nil
}

// runInPlaceScheme writes items round-robin over all segments, encoding
// each write against the old stored content with the given RBW scheme and
// threading tag state forward. Returns average (data+tag) flips per write,
// including wear-leveling copies charged by the device.
func runInPlaceScheme(dev *nvm.Device, sch rbw.Scheme, items [][]byte, workingSet int) (float64, error) {
	if workingSet > dev.NumSegments() {
		workingSet = dev.NumSegments()
	}
	tags := make([][]byte, workingSet)
	tagFlips := 0
	dev.ResetStats()
	for i, item := range items {
		addr := i % workingSet
		old, err := dev.Peek(addr)
		if err != nil {
			return 0, err
		}
		res := sch.Encode(old, tags[addr], item)
		tags[addr] = res.Tags
		tagFlips += res.TagFlips
		if _, err := dev.Write(addr, res.Stored); err != nil {
			return 0, err
		}
	}
	s := dev.Stats()
	return (float64(s.BitsFlipped) + float64(tagFlips)) / float64(s.Writes), nil
}
