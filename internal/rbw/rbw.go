// Package rbw implements the hardware Read-Before-Write bit-flip reduction
// schemes that the paper compares against (§5.2, Figures 2 and 10):
//
//   - DCW (data-comparison write, Yang et al.): read the old content and
//     write only the differing cells.
//   - FNW (Flip-N-Write, Cho & Lee): per W-bit word, write the data or its
//     complement — whichever flips fewer cells — and record the choice in a
//     flag bit.
//   - MinShift (Luo et al., "bit shifting and flipping"): per word, also try
//     small rotations of the data and keep the rotation that minimizes
//     flips, recording the shift amount in tag bits.
//   - Captopril (Jalili & Sarbazi-Azad): reduce flips on hot bit positions
//     by selectively inverting sub-word chunks. We model it as Flip-N-Write
//     at byte-chunk granularity (one flag per chunk), which reproduces its
//     finer-grained flip reduction at the cost of more tag bits. This
//     simplification is recorded in DESIGN.md.
//
// A Scheme transforms a logical value into the representation stored on the
// device plus auxiliary tag bits. Data-cell flips are counted against the
// previously stored representation, exactly as the in-controller hardware
// would; tag-cell flips are reported separately so experiments can charge
// them too.
package rbw

import (
	"fmt"

	"e2nvm/internal/bitvec"
)

// Result reports the outcome of encoding one write.
type Result struct {
	Stored    []byte // representation to be written to the data cells
	Tags      []byte // new tag-bit state (flags / shift amounts), packed
	DataFlips int    // cell flips among data bits vs the old stored bytes
	TagFlips  int    // cell flips among tag bits vs the old tag state
}

// Scheme encodes logical data into a stored representation that minimizes
// bit flips relative to the old stored state.
type Scheme interface {
	// Name returns the scheme's display name as used in the paper's plots.
	Name() string
	// TagBits returns the number of auxiliary tag bits required per
	// segment of n data bytes.
	TagBits(n int) int
	// Encode computes the new stored representation. oldStored and
	// oldTags describe the current device state for the target segment
	// (oldTags may be nil meaning all-zero). data is the logical value.
	Encode(oldStored, oldTags, data []byte) Result
	// Decode recovers the logical value from a stored representation.
	Decode(stored, tags []byte) []byte
}

// ---------------------------------------------------------------- naive --

// Naive rewrites every cell (no read-before-write); it is the unoptimized
// baseline with flips equal to the number of data bits.
type Naive struct{}

// Name implements Scheme.
func (Naive) Name() string { return "Naive" }

// TagBits implements Scheme.
func (Naive) TagBits(n int) int { return 0 }

// Encode implements Scheme.
func (Naive) Encode(oldStored, oldTags, data []byte) Result {
	out := make([]byte, len(data))
	copy(out, data)
	return Result{Stored: out, DataFlips: len(data) * 8}
}

// Decode implements Scheme.
func (Naive) Decode(stored, tags []byte) []byte {
	out := make([]byte, len(stored))
	copy(out, stored)
	return out
}

// ------------------------------------------------------------------ dcw --

// DCW is the data-comparison write scheme: store data verbatim, flip only
// differing cells.
type DCW struct{}

// Name implements Scheme.
func (DCW) Name() string { return "DCW" }

// TagBits implements Scheme.
func (DCW) TagBits(n int) int { return 0 }

// Encode implements Scheme.
func (DCW) Encode(oldStored, oldTags, data []byte) Result {
	checkLens(oldStored, data)
	out := make([]byte, len(data))
	copy(out, data)
	return Result{Stored: out, DataFlips: bitvec.HammingBytes(oldStored, data)}
}

// Decode implements Scheme.
func (DCW) Decode(stored, tags []byte) []byte {
	out := make([]byte, len(stored))
	copy(out, stored)
	return out
}

// ------------------------------------------------------------------ fnw --

// FNW is Flip-N-Write with a configurable word size.
type FNW struct {
	// WordBytes is the inversion granularity in bytes (default 4 = the
	// 32-bit words used in the original paper).
	WordBytes int
}

// Name implements Scheme.
func (FNW) Name() string { return "FNW" }

func (f FNW) wordBytes() int {
	if f.WordBytes <= 0 {
		return 4
	}
	return f.WordBytes
}

// TagBits implements Scheme.
func (f FNW) TagBits(n int) int {
	w := f.wordBytes()
	return (n + w - 1) / w
}

// Encode implements Scheme.
func (f FNW) Encode(oldStored, oldTags, data []byte) Result {
	checkLens(oldStored, data)
	w := f.wordBytes()
	nwords := f.TagBits(len(data))
	out := make([]byte, len(data))
	tags := make([]byte, (nwords+7)/8)
	res := Result{Stored: out, Tags: tags}
	for wi := 0; wi < nwords; wi++ {
		lo := wi * w
		hi := lo + w
		if hi > len(data) {
			hi = len(data)
		}
		oldFlag := tagBit(oldTags, wi)
		plain := bitvec.HammingBytes(oldStored[lo:hi], data[lo:hi])
		invWord := invert(data[lo:hi])
		inverted := bitvec.HammingBytes(oldStored[lo:hi], invWord)
		costPlain := plain + boolFlip(oldFlag, false)
		costInv := inverted + boolFlip(oldFlag, true)
		if costInv < costPlain {
			copy(out[lo:hi], invWord)
			setTagBit(tags, wi, true)
			res.DataFlips += inverted
			res.TagFlips += boolFlip(oldFlag, true)
		} else {
			copy(out[lo:hi], data[lo:hi])
			res.DataFlips += plain
			res.TagFlips += boolFlip(oldFlag, false)
		}
	}
	return res
}

// Decode implements Scheme.
func (f FNW) Decode(stored, tags []byte) []byte {
	w := f.wordBytes()
	out := make([]byte, len(stored))
	copy(out, stored)
	nwords := f.TagBits(len(stored))
	for wi := 0; wi < nwords; wi++ {
		if tagBit(tags, wi) {
			lo := wi * w
			hi := lo + w
			if hi > len(out) {
				hi = len(out)
			}
			for i := lo; i < hi; i++ {
				out[i] = ^out[i]
			}
		}
	}
	return out
}

// ------------------------------------------------------------- minshift --

// MinShift tries byte-rotations of each word (0..MaxShift-1 byte positions)
// in addition to plain storage, picking whichever encoding minimizes flips.
// The shift amount is stored in tag bits.
type MinShift struct {
	// WordBytes is the rotation granularity (default 8).
	WordBytes int
	// MaxShift is the number of candidate rotations (default 4,
	// requiring 2 tag bits per word).
	MaxShift int
}

// Name implements Scheme.
func (MinShift) Name() string { return "MinShift" }

func (m MinShift) wordBytes() int {
	if m.WordBytes <= 0 {
		return 8
	}
	return m.WordBytes
}

func (m MinShift) maxShift() int {
	if m.MaxShift <= 0 {
		return 4
	}
	return m.MaxShift
}

func (m MinShift) tagBitsPerWord() int {
	b := 0
	for 1<<uint(b) < m.maxShift() {
		b++
	}
	return b
}

// TagBits implements Scheme.
func (m MinShift) TagBits(n int) int {
	w := m.wordBytes()
	return ((n + w - 1) / w) * m.tagBitsPerWord()
}

// Encode implements Scheme.
func (m MinShift) Encode(oldStored, oldTags, data []byte) Result {
	checkLens(oldStored, data)
	w := m.wordBytes()
	bpw := m.tagBitsPerWord()
	nwords := (len(data) + w - 1) / w
	out := make([]byte, len(data))
	tags := make([]byte, (nwords*bpw+7)/8)
	res := Result{Stored: out, Tags: tags}
	for wi := 0; wi < nwords; wi++ {
		lo := wi * w
		hi := lo + w
		if hi > len(data) {
			hi = len(data)
		}
		oldShift := readTagField(oldTags, wi*bpw, bpw)
		bestShift, bestCost, bestFlips, bestTagFlips := 0, int(^uint(0)>>1), 0, 0
		var bestEnc []byte
		for s := 0; s < m.maxShift(); s++ {
			enc := rotateBytes(data[lo:hi], s)
			flips := bitvec.HammingBytes(oldStored[lo:hi], enc)
			tf := fieldFlips(oldShift, s, bpw)
			cost := flips + tf
			if cost < bestCost {
				bestShift, bestCost, bestFlips, bestTagFlips, bestEnc = s, cost, flips, tf, enc
			}
		}
		copy(out[lo:hi], bestEnc)
		writeTagField(tags, wi*bpw, bpw, bestShift)
		res.DataFlips += bestFlips
		res.TagFlips += bestTagFlips
	}
	return res
}

// Decode implements Scheme.
func (m MinShift) Decode(stored, tags []byte) []byte {
	w := m.wordBytes()
	bpw := m.tagBitsPerWord()
	nwords := (len(stored) + w - 1) / w
	out := make([]byte, len(stored))
	for wi := 0; wi < nwords; wi++ {
		lo := wi * w
		hi := lo + w
		if hi > len(stored) {
			hi = len(stored)
		}
		s := readTagField(tags, wi*bpw, bpw)
		copy(out[lo:hi], rotateBytes(stored[lo:hi], -s))
	}
	return out
}

// ------------------------------------------------------------ captopril --

// Captopril reduces bit-flip pressure on hot locations by selectively
// inverting fine-grained chunks. Modeled as per-chunk Flip-N-Write with
// 1-byte chunks.
type Captopril struct {
	// ChunkBytes is the inversion granularity (default 1).
	ChunkBytes int
}

// Name implements Scheme.
func (Captopril) Name() string { return "Captopril" }

func (c Captopril) chunkBytes() int {
	if c.ChunkBytes <= 0 {
		return 1
	}
	return c.ChunkBytes
}

// TagBits implements Scheme.
func (c Captopril) TagBits(n int) int {
	w := c.chunkBytes()
	return (n + w - 1) / w
}

// Encode implements Scheme.
func (c Captopril) Encode(oldStored, oldTags, data []byte) Result {
	return FNW{WordBytes: c.chunkBytes()}.Encode(oldStored, oldTags, data)
}

// Decode implements Scheme.
func (c Captopril) Decode(stored, tags []byte) []byte {
	return FNW{WordBytes: c.chunkBytes()}.Decode(stored, tags)
}

// -------------------------------------------------------------- helpers --

func checkLens(old, data []byte) {
	if len(old) != len(data) {
		panic(fmt.Sprintf("rbw: old/new length mismatch %d vs %d", len(old), len(data)))
	}
}

func invert(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[i] = ^b[i]
	}
	return out
}

// rotateBytes rotates b right by s byte positions (negative s rotates left).
func rotateBytes(b []byte, s int) []byte {
	n := len(b)
	out := make([]byte, n)
	if n == 0 {
		return out
	}
	s = ((s % n) + n) % n
	for i := 0; i < n; i++ {
		out[(i+s)%n] = b[i]
	}
	return out
}

func tagBit(tags []byte, i int) bool {
	if tags == nil {
		return false
	}
	return tags[i>>3]&(1<<(uint(i)&7)) != 0
}

func setTagBit(tags []byte, i int, v bool) {
	if v {
		tags[i>>3] |= 1 << (uint(i) & 7)
	} else {
		tags[i>>3] &^= 1 << (uint(i) & 7)
	}
}

func boolFlip(old, new bool) int {
	if old != new {
		return 1
	}
	return 0
}

func readTagField(tags []byte, off, width int) int {
	v := 0
	for b := 0; b < width; b++ {
		if tagBit(tags, off+b) {
			v |= 1 << uint(b)
		}
	}
	return v
}

func writeTagField(tags []byte, off, width, v int) {
	for b := 0; b < width; b++ {
		setTagBit(tags, off+b, v&(1<<uint(b)) != 0)
	}
}

func fieldFlips(old, new, width int) int {
	f := 0
	x := old ^ new
	for b := 0; b < width; b++ {
		if x&(1<<uint(b)) != 0 {
			f++
		}
	}
	return f
}

// All returns one instance of every scheme in the order the paper plots
// them.
func All() []Scheme {
	return []Scheme{DCW{}, MinShift{}, FNW{}, Captopril{}}
}
