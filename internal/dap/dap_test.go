package dap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := New(-2); err == nil {
		t.Fatal("expected error for negative k")
	}
}

func TestAddGetFIFO(t *testing.T) {
	p, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	p.Add(1, 10)
	p.Add(1, 11)
	addr, served, ok := p.Get(1)
	if !ok || addr != 10 || served != 1 {
		t.Fatalf("Get = (%d,%d,%v), want (10,1,true)", addr, served, ok)
	}
	addr, _, _ = p.Get(1)
	if addr != 11 {
		t.Fatalf("second Get = %d, want 11", addr)
	}
}

func TestGetEmptyPool(t *testing.T) {
	p, _ := New(2)
	if _, _, ok := p.Get(0); ok {
		t.Fatal("Get on empty pool should fail")
	}
}

func TestGetFallsBackToNearestCluster(t *testing.T) {
	p, _ := New(5)
	p.Add(4, 99)
	addr, served, ok := p.Get(0)
	if !ok || addr != 99 || served != 4 {
		t.Fatalf("fallback Get = (%d,%d,%v), want (99,4,true)", addr, served, ok)
	}
	// Nearest non-empty wins over farther ones.
	p.Add(0, 1)
	p.Add(4, 2)
	_, served, _ = p.Get(1)
	if served != 0 {
		t.Fatalf("fallback served by %d, want nearest cluster 0", served)
	}
}

func TestClusterOutOfRangePanics(t *testing.T) {
	p, _ := New(2)
	for _, c := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cluster %d did not panic", c)
				}
			}()
			p.Add(c, 0)
		}()
	}
}

func TestMaxEntriesCap(t *testing.T) {
	p, _ := New(2, WithMaxEntries(2))
	if !p.Add(0, 1) || !p.Add(0, 2) {
		t.Fatal("first two adds should succeed")
	}
	if p.Add(1, 3) {
		t.Fatal("third add should be rejected at cap")
	}
	if p.Free() != 2 {
		t.Fatalf("Free = %d, want 2", p.Free())
	}
}

func TestLowClusters(t *testing.T) {
	p, _ := New(3, WithLowWater(1))
	p.Add(0, 1)
	p.Add(0, 2)
	p.Add(1, 3)
	low := p.LowClusters()
	// Cluster 1 has exactly lowWater entries, cluster 2 has none.
	if len(low) != 2 || low[0] != 1 || low[1] != 2 {
		t.Fatalf("LowClusters = %v, want [1 2]", low)
	}
	// Without a low-water mark, nothing is reported.
	q, _ := New(3)
	if q.LowClusters() != nil {
		t.Fatal("LowClusters should be nil without WithLowWater")
	}
}

func TestClusterSizesAndStats(t *testing.T) {
	p, _ := New(2)
	p.Add(0, 1)
	p.Add(1, 2)
	p.Add(1, 3)
	sizes := p.ClusterSizes()
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("ClusterSizes = %v", sizes)
	}
	p.Get(0)
	s := p.Stats()
	if s.Free != 2 || s.Popped != 1 || s.Pushed != 3 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestReset(t *testing.T) {
	p, _ := New(2)
	p.Add(0, 1)
	if err := p.Reset(4); err != nil {
		t.Fatal(err)
	}
	if p.K() != 4 || p.Free() != 0 {
		t.Fatalf("after Reset: K=%d Free=%d", p.K(), p.Free())
	}
	if err := p.Reset(0); err == nil {
		t.Fatal("Reset(0) should error")
	}
}

func TestFootprintBytes(t *testing.T) {
	p, _ := New(2)
	base := p.FootprintBytes()
	// The first Add materializes cluster 0's ring (8 slots × 16 bytes:
	// address plus wear).
	p.Add(0, 1)
	if p.FootprintBytes() != base+128 {
		t.Fatalf("footprint did not grow by one ring: %d -> %d", base, p.FootprintBytes())
	}
	// Further adds within capacity cost nothing; the footprint is bounded
	// by ring capacity, not by total traffic (the old slice FIFO retained
	// popped entries in its backing array).
	for i := 0; i < 7; i++ {
		p.Add(0, 2+i)
	}
	if p.FootprintBytes() != base+128 {
		t.Fatalf("footprint grew within ring capacity: %d -> %d", base, p.FootprintBytes())
	}
	// Steady-state pop/push traffic reuses the ring in place.
	for i := 0; i < 1000; i++ {
		addr, _, ok := p.Get(0)
		if !ok {
			t.Fatal("pool unexpectedly empty")
		}
		p.Add(0, addr)
	}
	if p.FootprintBytes() != base+128 {
		t.Fatalf("steady-state traffic changed footprint: %d -> %d", base, p.FootprintBytes())
	}
}

// Property: the pool conserves addresses — everything added and not yet
// popped is retrievable exactly once, with no duplicates or inventions.
func TestConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		p, err := New(4)
		if err != nil {
			return false
		}
		next := 0
		outstanding := map[int]bool{}
		for _, op := range ops {
			if op%2 == 0 {
				p.Add(int(op/2)%4, next)
				outstanding[next] = true
				next++
			} else {
				addr, _, ok := p.Get(int(op/2) % 4)
				if !ok {
					if len(outstanding) != 0 {
						return false // pool claimed empty while addresses remain
					}
					continue
				}
				if !outstanding[addr] {
					return false // duplicate or invented address
				}
				delete(outstanding, addr)
			}
		}
		return p.Free() == len(outstanding)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	p, _ := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p.Add(g, g*1000+i)
				if i%2 == 1 {
					p.Get(g)
				}
			}
		}(g)
	}
	wg.Wait()
	if p.Free() != 8*250 {
		t.Fatalf("Free = %d, want %d", p.Free(), 8*250)
	}
}

func TestRetireRemovesAndRefuses(t *testing.T) {
	p, _ := New(4)
	for a := 0; a < 10; a++ {
		p.Add(a%4, a)
	}
	if !p.Retire(6) {
		t.Fatal("first Retire(6) returned false")
	}
	if p.Retire(6) {
		t.Fatal("second Retire(6) returned true")
	}
	if p.Free() != 9 {
		t.Fatalf("Free = %d after retiring a pooled address, want 9", p.Free())
	}
	if !p.IsRetired(6) || p.IsRetired(7) {
		t.Fatal("IsRetired wrong")
	}
	// The retired address can never come back.
	if p.Add(2, 6) {
		t.Fatal("Add accepted a retired address")
	}
	for i := 0; i < 9; i++ {
		addr, _, ok := p.Get(i % 4)
		if !ok {
			t.Fatalf("pool dried up after %d gets", i)
		}
		if addr == 6 {
			t.Fatal("retired address handed out by Get")
		}
	}
	if _, _, ok := p.Get(0); ok {
		t.Fatal("pool served more addresses than it holds")
	}
	if got := p.RetiredCount(); got != 1 {
		t.Fatalf("RetiredCount = %d, want 1", got)
	}
	if s := p.Stats(); s.Retired != 1 {
		t.Fatalf("Stats().Retired = %d, want 1", s.Retired)
	}
}

func TestRetireSurvivesReset(t *testing.T) {
	p, _ := New(2)
	p.Add(0, 3)
	p.Retire(3)
	if err := p.Reset(5); err != nil {
		t.Fatal(err)
	}
	if p.Add(1, 3) {
		t.Fatal("Reset resurrected a retired address")
	}
	if !p.IsRetired(3) {
		t.Fatal("retirement lost across Reset")
	}
	// Retiring an address that is not in any free list still works (it may
	// be a live segment being retired on a failed overwrite).
	if !p.Retire(99) {
		t.Fatal("Retire of untracked address returned false")
	}
	if p.Add(0, 99) {
		t.Fatal("Add accepted an address retired while live")
	}
}

func TestGetForTempNoneMatchesGet(t *testing.T) {
	p, _ := New(3)
	q, _ := New(3)
	for a := 0; a < 9; a++ {
		p.AddWear(a%3, a, uint64(a*10))
		q.AddWear(a%3, a, uint64(a*10))
	}
	for i := 0; i < 9; i++ {
		wa, ws, wok := p.Get(i % 3)
		ga, gs, st, gok := q.GetFor(i%3, TempNone)
		if st {
			t.Fatal("TempNone steered")
		}
		if wa != ga || ws != gs || wok != gok {
			t.Fatalf("GetFor(TempNone) diverged from Get: (%d,%d,%v) vs (%d,%d,%v)",
				ga, gs, gok, wa, ws, wok)
		}
	}
	if s := q.Stats(); s.Steered != 0 {
		t.Fatalf("Steered = %d, want 0", s.Steered)
	}
}

func TestGetForSteersByWear(t *testing.T) {
	p, _ := New(3)
	// Cluster 0: avg wear 100; cluster 1: avg wear 10; cluster 2: avg 1000.
	p.AddWear(0, 1, 100)
	p.AddWear(1, 2, 10)
	p.AddWear(2, 3, 1000)

	// Hot keys go to the least-worn cluster regardless of prediction.
	addr, served, steered, ok := p.GetFor(0, TempHot)
	if !ok || addr != 2 || served != 1 || !steered {
		t.Fatalf("TempHot GetFor = (%d,%d,%v,%v), want (2,1,true,true)", addr, served, steered, ok)
	}
	// Cold keys soak up the most-worn cluster.
	addr, served, steered, ok = p.GetFor(0, TempCold)
	if !ok || addr != 3 || served != 2 || !steered {
		t.Fatalf("TempCold GetFor = (%d,%d,%v,%v), want (3,2,true,true)", addr, served, steered, ok)
	}
	if s := p.Stats(); s.Steered != 2 {
		t.Fatalf("Steered = %d, want 2", s.Steered)
	}
	// Only the predicted cluster remains; steering to it is not "steered".
	addr, served, steered, ok = p.GetFor(0, TempHot)
	if !ok || addr != 1 || served != 0 || steered {
		t.Fatalf("self-steer GetFor = (%d,%d,%v,%v), want (1,0,false,true)", addr, served, steered, ok)
	}
}

func TestGetForTieBreaksByProximity(t *testing.T) {
	p, _ := New(5)
	// All clusters equally worn: the predicted cluster itself wins, so no
	// steer; empty predicted cluster falls to the nearest by id.
	p.AddWear(0, 10, 5)
	p.AddWear(3, 13, 5)
	p.AddWear(4, 14, 5)
	addr, served, steered, ok := p.GetFor(4, TempHot)
	if !ok || addr != 14 || served != 4 || steered {
		t.Fatalf("GetFor = (%d,%d,%v,%v), want own cluster (14,4,false,true)", addr, served, steered, ok)
	}
	// Predicted cluster 2 is empty; ties on wear resolve to the closest id.
	addr, served, steered, ok = p.GetFor(2, TempHot)
	if !ok || addr != 13 || served != 3 || !steered {
		t.Fatalf("GetFor = (%d,%d,%v,%v), want nearest tie (13,3,true,true)", addr, served, steered, ok)
	}
}

func TestWearAccounting(t *testing.T) {
	p, _ := New(2)
	p.AddWear(0, 1, 100)
	p.AddWear(0, 2, 200)
	p.AddWear(1, 3, 30)
	wear := p.ClusterWear()
	if wear[0] != 150 || wear[1] != 30 {
		t.Fatalf("ClusterWear = %v, want [150 30]", wear)
	}
	// Popping removes the slot's wear from the average.
	p.Get(0) // pops addr 1 (wear 100)
	if w := p.ClusterWear(); w[0] != 200 {
		t.Fatalf("ClusterWear after pop = %v, want [200 30]", w)
	}
	// Retiring a pooled address removes its wear too.
	p.Retire(2)
	if w := p.ClusterWear(); w[0] != 0 {
		t.Fatalf("ClusterWear after retire = %v, want [0 30]", w)
	}
	// Wear saturates at uint32 instead of wrapping.
	p.AddWear(0, 9, 1<<40)
	if w := p.ClusterWear(); w[0] != float64(^uint32(0)) {
		t.Fatalf("saturated wear = %v, want %v", w[0], float64(^uint32(0)))
	}
}

func TestRingRemoveKeepsFIFOOrder(t *testing.T) {
	p, _ := New(1)
	for a := 0; a < 5; a++ {
		p.Add(0, a)
	}
	p.Retire(2)
	want := []int{0, 1, 3, 4}
	for _, w := range want {
		addr, _, ok := p.Get(0)
		if !ok || addr != w {
			t.Fatalf("Get = (%d, %v), want %d", addr, ok, w)
		}
	}
}
