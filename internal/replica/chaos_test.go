package replica

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestChaosKillShardMidWorkload is the acceptance test for the
// replication layer: concurrent writers run while the fault model fences
// the victim group's serving device — twice, so the group first fails
// over to its follower and then, with no replicas left, live-migrates its
// keyspace into the survivors. The invariant is zero lost acknowledged
// writes: after the dust settles, every key reads back a version at least
// as new as the last Put that returned success (an unacknowledged Put may
// or may not have landed; anything older than an ack is a lost write).
//
// The seed matrix is fixed so `make chaos` runs the same workloads every
// time; the interleaving under -race still varies, which is the point.
func TestChaosKillShardMidWorkload(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	const (
		groups        = 3
		rf            = 2
		writers       = 4
		keysPerWriter = 8
		opsPerPhase   = 40
	)
	c := newCluster(t, groups, rf, 64, 128)
	defer c.Close()

	// Each writer owns a disjoint key range; within a key, versions are
	// monotone, so "lost acknowledged write" is simply "read back an older
	// version than the last acked one".
	type keyState struct {
		acked     int // highest version whose Put returned nil; -1 = never acked
		attempted int // highest version ever attempted
	}
	states := make([]map[uint64]*keyState, writers)
	for w := range states {
		states[w] = make(map[uint64]*keyState)
		for i := 0; i < keysPerWriter; i++ {
			states[w][uint64(w*keysPerWriter+i)] = &keyState{acked: -1}
		}
	}
	version := func(w int, k uint64, v int) []byte {
		return []byte(fmt.Sprintf("w%d-k%d-v%06d", w, k, v))
	}

	// phase runs every writer for opsPerPhase random-key writes, then
	// joins them — a deterministic barrier between chaos injections.
	nextVer := make([]int, writers)
	phase := func() {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				for op := 0; op < opsPerPhase; op++ {
					k := uint64(w*keysPerWriter + rng.Intn(keysPerWriter))
					st := states[w][k]
					nextVer[w]++
					v := nextVer[w]
					st.attempted = v
					if err := c.Put(k, version(w, k, v)); err != nil {
						t.Errorf("writer %d Put(%d): %v", w, k, err)
						return
					}
					st.acked = v
				}
			}(w)
		}
		wg.Wait()
	}

	victim := int(seed) % groups
	phase()
	// Kill the victim's leader: the group must fail over to its follower
	// under live traffic.
	fence(t, c.LeaderDevice(victim))
	phase()
	if got := c.Status()[victim]; got.State != StateActive || got.Failovers != 1 {
		t.Fatalf("victim after first kill = %+v, want active with 1 failover", got)
	}
	// Kill the promoted leader too: no replicas remain, so the keyspace
	// must live-migrate into the surviving groups under live traffic.
	fence(t, c.LeaderDevice(victim))
	phase()
	c.Quiesce()
	if err := c.CheckHealth(); err != nil { // relaunch the migrator if a target hiccuped
		t.Fatal(err)
	}
	c.Quiesce()

	if got := c.Status()[victim].State; got != StateDrained {
		t.Fatalf("victim state = %s, want drained", got)
	}
	// Zero lost acknowledged writes: every acked key must be present with
	// a version ≥ its last ack (a crash-straddling Put may have landed a
	// newer, unacked version — at-least-once is allowed, rollback is not).
	lost := 0
	for w := 0; w < writers; w++ {
		for k, st := range states[w] {
			v, ok, err := c.Get(k)
			if err != nil {
				t.Fatalf("Get(%d): %v", k, err)
			}
			if st.acked < 0 {
				continue // never acknowledged: any outcome is legal
			}
			if !ok {
				t.Errorf("key %d: last acked version %d missing entirely", k, st.acked)
				lost++
				continue
			}
			var gw int
			var gk uint64
			var gv int
			if _, err := fmt.Sscanf(string(v), "w%d-k%d-v%06d", &gw, &gk, &gv); err != nil {
				t.Fatalf("key %d: unparsable value %q", k, v)
			}
			if gw != w || gk != k {
				t.Fatalf("key %d: value %q belongs to another key", k, v)
			}
			if gv < st.acked {
				t.Errorf("key %d: read version %d older than last acked %d", k, gv, st.acked)
				lost++
			}
			if gv > st.attempted {
				t.Fatalf("key %d: read version %d was never written (max attempted %d)", k, gv, st.attempted)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d acknowledged writes lost", lost)
	}
	// The keyspace is fully served by the survivors: a full scan visits
	// every live key exactly once, in order.
	seen := make(map[uint64]bool)
	last := int64(-1)
	if err := c.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		if int64(k) <= last {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		last = int64(k)
		seen[k] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for k, st := range states[w] {
			if st.acked >= 0 && !seen[k] {
				t.Errorf("scan missed acked key %d", k)
			}
		}
	}
	// Writes keep flowing to every key after the migration.
	for w := 0; w < writers; w++ {
		for k := range states[w] {
			if err := c.Put(k, version(w, k, 999999)); err != nil {
				t.Fatalf("post-chaos Put(%d): %v", k, err)
			}
			v, ok, err := c.Get(k)
			if err != nil || !ok || !bytes.Equal(v, version(w, k, 999999)) {
				t.Fatalf("post-chaos Get(%d) = (%q,%v,%v)", k, v, ok, err)
			}
		}
	}
}
