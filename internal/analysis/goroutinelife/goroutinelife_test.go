package goroutinelife

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.RunProgram(t, "../testdata", Analyzer, "goroutinelife")
}
