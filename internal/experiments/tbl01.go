package experiments

import (
	"fmt"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/core"
	"e2nvm/internal/padding"
	"e2nvm/internal/stats"
)

func init() { register("tbl01", Table1) }

// paperSegments is the 12-segment, 3-cluster PCM of the paper's Table 1.
var paperSegments = [][]int{
	{0, 0, 1, 1, 1, 1, 0, 1}, // cluster 0
	{0, 0, 1, 0, 1, 1, 0, 0},
	{0, 0, 1, 1, 1, 1, 0, 0},
	{0, 0, 1, 1, 1, 0, 0, 0},
	{1, 0, 0, 0, 1, 0, 1, 1}, // cluster 1
	{0, 0, 0, 0, 1, 0, 1, 1},
	{0, 0, 0, 0, 1, 1, 1, 1},
	{0, 0, 0, 0, 1, 0, 1, 0},
	{1, 0, 1, 1, 0, 0, 0, 0}, // cluster 2
	{0, 1, 1, 1, 0, 0, 1, 0},
	{1, 1, 1, 1, 0, 0, 0, 0},
	{1, 1, 0, 1, 0, 0, 0, 0},
}

// Table1 reproduces the paper's Table 1 / Figure 5 walk-through: a PCM
// with 12 eight-bit memory segments grouped into 3 clusters, and the input
// d1 = [0,0,0,1] padded by every strategy at every position, with the
// cluster each padded form is predicted into. Predicted cluster ids are
// the model's own (the paper's are illustrative); the table also reports
// the Hamming distance from d1's padded form to the nearest segment of the
// predicted cluster, the quantity the padding is trying to minimize.
func Table1(cfg RunConfig) (*Result, error) {
	data := make([][]float64, len(paperSegments))
	for i, seg := range paperSegments {
		row := make([]float64, 8)
		for j, b := range seg {
			row[j] = float64(b)
		}
		data[i] = row
	}
	model, err := core.Train(data, core.Config{
		InputBits: 8, K: 3, LatentDim: 3, HiddenDim: 24,
		Epochs: 200, JointEpochs: 8, BatchSize: 4, Beta: 0.02, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Sanity: the model should reproduce the paper's grouping (segments
	// 0–3, 4–7, 8–11 in three clusters).
	groupsOK := true
	for g := 0; g < 3; g++ {
		c0 := mustPredict(model.Predict(data[4*g]))
		for i := 1; i < 4; i++ {
			if mustPredict(model.Predict(data[4*g+i])) != c0 {
				groupsOK = false
			}
		}
	}

	d1 := []float64{0, 0, 0, 1}
	table := stats.NewTable("position", "type", "padded", "cluster", "min_hamming_in_cluster")
	for _, loc := range []padding.Location{padding.Begin, padding.Middle, padding.End} {
		for _, kind := range padding.Types() {
			if kind == padding.Learned {
				continue // the paper's LSTM example needs 64-bit windows
			}
			p := padding.New(loc, kind, cfg.Seed)
			for _, row := range data {
				p.Observe(row)
			}
			p.SetMemoryDensity(func() float64 { return densityOf(data) })
			model.SetPadder(p)
			padded := p.Pad(d1, 8)
			cl := mustPredict(model.Predict(padded))
			best := 9
			for i, row := range data {
				if mustPredict(model.Predict(data[i])) != cl {
					continue
				}
				if h := bitvec.HammingFloats(padded, row); h < best {
					best = h
				}
			}
			table.AddRow(loc.String(), kind.String(), bitString(padded), cl, best)
		}
	}
	notes := []string{"input d1 = [0,0,0,1] over the paper's 12-segment, 3-cluster PCM (Table 1)"}
	if groupsOK {
		notes = append(notes, "model recovers the paper's three segment groups exactly")
	} else {
		notes = append(notes, "model groups differ from the paper's illustration (tiny 12-sample training set)")
	}
	return &Result{
		ID:    "tbl01",
		Title: "Table 1 / Figure 5 walk-through: padding d1 over the paper's example PCM",
		Table: table,
		Notes: notes,
	}, nil
}

func bitString(bits []float64) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b >= 0.5 {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return fmt.Sprintf("[%s]", out)
}
