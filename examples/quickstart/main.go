// Quickstart: open an E2-NVM store over a simulated PCM device, write,
// read, update, delete, and inspect the energy/endurance metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"e2nvm"
)

func main() {
	// Open trains the VAE+K-means model on the device's initial contents
	// and builds the cluster-to-memory dynamic address pool.
	store, err := e2nvm.Open(e2nvm.Config{
		SegmentSize: 128,
		NumSegments: 512,
		Clusters:    6,
		TrainEpochs: 8,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("opened:", store)
	store.ResetMetrics() // exclude setup costs from the numbers below

	// PUT: the value's content decides where it lands — E2-NVM steers it
	// to a free segment already holding similar bits.
	if err := store.Put(1, []byte("the quick brown fox")); err != nil {
		log.Fatal(err)
	}
	// GET goes through the RB-tree index to the segment.
	v, ok, err := store.Get(1)
	if err != nil || !ok {
		log.Fatalf("get: %v ok=%v", err, ok)
	}
	fmt.Printf("get(1) = %q\n", v)

	// UPDATE places the new value content-aware and recycles the old
	// segment into the pool.
	if err := store.Put(1, []byte("the quick brown fox jumps")); err != nil {
		log.Fatal(err)
	}
	// DELETE resets the segment's valid flag (a single bit flip) and
	// recycles the address.
	if _, err := store.Delete(1); err != nil {
		log.Fatal(err)
	}

	// Bulk-load a range and scan it.
	for k := uint64(100); k < 110; k++ {
		if err := store.Put(k, []byte{byte(k), byte(k >> 1)}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print("scan(100,104): ")
	_ = store.Scan(100, 104, func(k uint64, v []byte) bool {
		fmt.Printf("%d ", k)
		return true
	})
	fmt.Println()

	m := store.Metrics()
	fmt.Printf("writes=%d  bit flips=%d  flips/data-bit=%.4f\n", m.Writes, m.BitsFlipped, m.FlipsPerDataBit)
	fmt.Printf("energy=%.2f nJ  avg write latency=%.0f ns  cache lines skipped=%d\n",
		m.EnergyPJ/1e3, m.AvgWriteLatencyNs, m.LinesSkipped)
}
