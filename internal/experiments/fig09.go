package experiments

import (
	"fmt"

	"e2nvm/internal/stats"
	"e2nvm/internal/vae"
	"e2nvm/internal/workload"
)

func init() { register("fig09", Fig9) }

// Fig9 reproduces Figure 9: training- and validation-loss curves of the
// feature-extraction model on different datasets, showing fast convergence
// and generalization (validation tracking training).
func Fig9(cfg RunConfig) (*Result, error) {
	const segSize = 32
	n := cfg.scaleInt(500, 120)
	epochs := cfg.scaleInt(20, 8)

	sets := []*workload.Dataset{
		workload.MNISTLike(n, segSize*8, cfg.Seed),
		workload.CIFARLike(n, segSize*8, cfg.Seed+1),
		workload.PubMedLike(n, segSize*8, cfg.Seed+2),
	}
	table := stats.NewTable("dataset", "epoch", "train_loss", "val_loss")
	var series []stats.Series
	notes := []string{fmt.Sprintf("%d items per dataset, %d B segments, %d epochs, 80/20 split", n, segSize, epochs)}

	for _, ds := range sets {
		split := len(ds.Items) * 8 / 10
		train, val := ds.Split(split)
		m, err := vae.New(vae.Config{InputDim: segSize * 8, LatentDim: 10, Beta: 0.1, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		hist, err := m.Fit(train, vae.FitOptions{Epochs: epochs, BatchSize: 32, Validation: val})
		if err != nil {
			return nil, err
		}
		trainS := stats.Series{Name: ds.Name + "/train"}
		valS := stats.Series{Name: ds.Name + "/val"}
		for _, h := range hist {
			tl := h.Train.Total(0.1, 0)
			vl := h.Validation.Total(0.1, 0)
			trainS.Add(float64(h.Epoch), tl)
			valS.Add(float64(h.Epoch), vl)
			if h.Epoch%4 == 0 || h.Epoch == epochs-1 {
				table.AddRow(ds.Name, h.Epoch, tl, vl)
			}
		}
		series = append(series, trainS, valS)
		first := hist[0].Train.Total(0.1, 0)
		last := hist[len(hist)-1].Train.Total(0.1, 0)
		notes = append(notes, fmt.Sprintf("%s: train loss %.3f → %.3f", ds.Name, first, last))
	}
	return &Result{
		ID:     "fig09",
		Title:  "Training and validation loss during feature extraction",
		Table:  table,
		Series: series,
		Notes:  notes,
	}, nil
}
