package e2nvm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func shardedConfig(shards int) Config {
	cfg := smallConfig()
	cfg.NumSegments = 64 * shards
	cfg.Shards = shards
	return cfg
}

func TestShardedRoundTrip(t *testing.T) {
	s, err := Open(shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	buf := make([]byte, 0, 16)
	for k := uint64(0); k < keys; k++ {
		want := fmt.Sprintf("v-%d", k)
		v, ok, err := s.GetInto(k, buf)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("GetInto(%d) = (%q,%v,%v)", k, v, ok, err)
		}
		buf = v[:0]
	}
	// Scan must merge the four shards back into ascending key order.
	var seen []uint64
	if err := s.Scan(8, 39, func(k uint64, v []byte) bool {
		if string(v) != fmt.Sprintf("v-%d", k) {
			t.Fatalf("key %d carries %q", k, v)
		}
		seen = append(seen, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Fatalf("scan visited %d keys, want 32", len(seen))
	}
	for i, k := range seen {
		if k != uint64(8+i) {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	for k := uint64(0); k < keys; k += 2 {
		ok, err := s.Delete(k)
		if err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v,%v)", k, ok, err)
		}
	}
	if s.Len() != keys/2 {
		t.Fatalf("Len after deletes = %d", s.Len())
	}
}

func TestShardsValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Shards = cfg.NumSegments + 1
	if _, err := Open(cfg); err == nil {
		t.Fatal("expected error for more shards than segments")
	}
}

// TestShardedMetricsAggregate checks that the facade's Metrics sums the
// shards' counters and that ShardMetrics is index-aligned with them.
func TestShardedMetricsAggregate(t *testing.T) {
	s, err := Open(shardedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 30; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.Writes == 0 || m.BitsWritten == 0 {
		t.Fatalf("aggregate Metrics did not count writes: %+v", m)
	}
	per := s.ShardMetrics()
	if len(per) != 3 {
		t.Fatalf("ShardMetrics len = %d", len(per))
	}
	var writes uint64
	for _, pm := range per {
		writes += pm.Writes
		if pm.Writes == 0 {
			t.Fatalf("a shard saw no writes; per-shard = %+v", per)
		}
	}
	if writes != m.Writes {
		t.Fatalf("per-shard writes sum %d != aggregate %d", writes, m.Writes)
	}
}

// TestResetMetricsZeroesEverything is the regression test for the old
// ResetMetrics, which reset only the device counters and left the
// store-level ones (Fallbacks, Retrains, WornWrites, ...) running.
func TestResetMetricsZeroesEverything(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := shardedConfig(shards)
			cfg.VerifyWrites = true
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 16; k++ {
				if err := s.Put(k, []byte{byte(k)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, _, err := s.Get(1); err != nil {
				t.Fatal(err)
			}
			if err := s.Retrain(); err != nil {
				t.Fatal(err)
			}
			// Fence a segment and write through it so WornWrites, Retired,
			// and Relocations move too.
			if err := s.FailSegment(0); err != nil {
				t.Fatal(err)
			}
			for k := uint64(100); k < 140; k++ {
				if err := s.Put(k, []byte{byte(k)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Scrub(cfg.NumSegments); err != nil {
				t.Fatal(err)
			}
			before := s.Metrics()
			if before.Writes == 0 || before.Retrains == 0 {
				t.Fatalf("setup did not move the counters: %+v", before)
			}

			s.ResetMetrics()
			got := s.Metrics()
			// StuckBits and FailedSegments describe current device state,
			// not cumulative activity, and survive a reset by design (the
			// cells are still stuck). Everything else must be zero.
			got.StuckBits, got.FailedSegments = 0, 0
			if got != (Metrics{}) {
				t.Fatalf("Metrics after ResetMetrics = %+v, want all counters zero", got)
			}

			// Counters keep working after the reset.
			if err := s.Put(1, []byte{1}); err != nil {
				t.Fatal(err)
			}
			if err := s.Retrain(); err != nil {
				t.Fatal(err)
			}
			after := s.Metrics()
			if after.Writes == 0 || after.Retrains != shards {
				t.Fatalf("post-reset Metrics = %+v, want fresh writes and %d retrains", after, shards)
			}
		})
	}
}

// TestShardedFaultMapping drives the global-address fault API on a sharded
// store: fencing an address in shard 1's zone must degrade shard 1 only.
func TestShardedFaultMapping(t *testing.T) {
	cfg := shardedConfig(2)
	cfg.VerifyWrites = true
	cfg.DegradeThreshold = 0.05
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailSegment(cfg.NumSegments); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("FailSegment(out of range) = %v, want ErrBadAddress", err)
	}
	if err := s.InjectStuckAt(-1, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("InjectStuckAt(-1) = %v, want ErrBadAddress", err)
	}
	// Shard 1 owns global segments [64, 128).
	for a := 64; a < 72; a++ {
		if err := s.FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scrub(cfg.NumSegments); err != nil {
		t.Fatal(err)
	}
	per := s.ShardHealth()
	if per[0].Degraded || !per[1].Degraded {
		t.Fatalf("per-shard Degraded = %v/%v, want shard 1 only", per[0].Degraded, per[1].Degraded)
	}
	if h := s.Health(); !h.Degraded {
		t.Fatalf("aggregate Health must surface the degraded shard: %+v", h)
	}
	if h := s.Health(); h.DataSegments != per[0].DataSegments+per[1].DataSegments {
		t.Fatalf("aggregate DataSegments %d != per-shard sum", h.DataSegments)
	}
}

// TestOpenWithModelSharded saves an unsharded store's model and restores
// it into a sharded store, round-tripping data through every shard.
func TestOpenWithModelSharded(t *testing.T) {
	src, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := shardedConfig(2)
	s, err := OpenWithModel(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 2 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	if s.Clusters() != src.Clusters() {
		t.Fatalf("Clusters = %d, want %d", s.Clusters(), src.Clusters())
	}
	for k := uint64(0); k < 32; k++ {
		if err := s.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 32; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(v, []byte{byte(k)}) {
			t.Fatalf("Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
}

// TestShardOneMatchesUnsharded locks in that Shards=1 is byte-identical to
// the pre-sharding store: same seeds, same placement, same flip counts.
func TestShardOneMatchesUnsharded(t *testing.T) {
	run := func(cfg Config) Metrics {
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 40; k++ {
			if err := s.Put(k, []byte(fmt.Sprintf("value-%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		return s.Metrics()
	}
	base := run(smallConfig())
	cfg := smallConfig()
	cfg.Shards = 1
	if got := run(cfg); got != base {
		t.Fatalf("Shards=1 diverged from unsharded:\n got %+v\nwant %+v", got, base)
	}
}
