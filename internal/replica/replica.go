// Package replica turns the sharded E2-NVM stores into a replicated
// cluster: each keyspace group is a replica set whose leader ships its
// redo stream (the checksummed log from internal/txn) to follower
// devices, so the wear-out events the fault model produces become
// failover and rebalancing events instead of data loss.
//
// The write path is acknowledged-write: a Put returns only after its
// transaction's commit record is durable on the leader AND the entry is
// applied-or-queued on every live follower — the txn.Shipper hook fires
// at the commit point, under locks that failover must wait for, so a
// promotion always drains every acknowledged entry onto the new leader's
// device before it serves. When a leader's device dies (wear-out past the
// store's retry budget, capacity degraded, or a fenced redo log), the
// group promotes a follower by replaying and recovering its device with
// the standard crash-recovery scan. When the last replica dies, the
// group live-migrates its records into the surviving groups while writes
// continue (see migrate.go).
//
// Routing layers on the shard router's hash (shard.Mix64): a key's home
// group is the same modulus the router uses, and drained groups carry a
// stable redirect set, so re-routing after migration is a pure function
// of the key — no routing table, no extra locks on the serving path.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/shard"
	"e2nvm/internal/txn"
)

// Sentinel errors. All construction and serving errors wrap one of these
// (or a kvstore/txn/nvm sentinel), so callers classify with errors.Is.
var (
	// ErrNoGroups reports a cluster constructed over an empty group list.
	ErrNoGroups = errors.New("replica: need at least one group")
	// ErrNotCrashSafe reports a leader store opened without CrashSafe:
	// without a redo log there is no commit point to ship.
	ErrNotCrashSafe = errors.New("replica: leader store is not crash-safe")
	// ErrGeometry reports a follower device whose segment geometry differs
	// from its leader's — shipped home addresses would be meaningless.
	ErrGeometry = errors.New("replica: follower device geometry mismatch")
	// ErrGroupDown reports an operation on a group whose every replica has
	// died with no healthy groups left to migrate into. Reads still serve
	// from the dead leader's surviving content; writes fail.
	ErrGroupDown = errors.New("replica: group is down")
)

// errMoved is the internal re-route signal: the group a key was addressed
// to has finished draining, and the operation must re-resolve through the
// redirect chain. It never escapes the package.
var errMoved = errors.New("replica: group drained; re-route")

// mix64 aliases the shard router's key permutation: the low bits pick the
// home group exactly as shard.Router.Of would, and targetFor consumes the
// independent high bits.
func mix64(x uint64) uint64 { return shard.Mix64(x) }

// GroupSpec describes one replica set: a crash-safe serving store plus
// zero or more follower devices with identical geometry (same segment
// size and count, and — for a follower's recovered store to converge
// byte-identically — the same initial content as the leader's device).
type GroupSpec struct {
	Leader    *kvstore.Store
	Followers []*nvm.Device
	// Opts configures stores recovered over follower devices at
	// promotion. CrashSafe is forced on (the promoted leader must ship).
	Opts kvstore.Options
}

// Config tunes the cluster.
type Config struct {
	// QueueDepth bounds each follower's in-flight ship queue (default 64).
	// A full queue applies backpressure to the leader's commit path rather
	// than dropping entries: "queued" is part of the ack contract.
	QueueDepth int
}

// Cluster is a set of replicated keyspace groups behind one key-value
// interface. Methods are safe for concurrent use; Close is not (callers
// stop traffic first, as with closing any store).
type Cluster struct {
	groups []*Group
	cfg    Config
	migWG  sync.WaitGroup
	closed atomic.Bool

	// scrubCalls accumulates Scrub remainder units handed out, rotating
	// the remainder start across calls (see Scrub).
	scrubCalls atomic.Uint64
}

// New wires the groups into a cluster: follower apply loops start, and
// every leader's txn manager gets its ship hook installed. The spec
// slices are not retained.
func New(specs []GroupSpec, cfg Config) (*Cluster, error) {
	if len(specs) == 0 {
		return nil, ErrNoGroups
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	c := &Cluster{cfg: cfg}
	for gi, spec := range specs {
		if spec.Leader == nil || spec.Leader.TxnManager() == nil {
			c.Close()
			return nil, fmt.Errorf("replica: group %d: %w", gi, ErrNotCrashSafe)
		}
		opts := spec.Opts
		opts.CrashSafe = true
		g := &Group{c: c, id: gi, opts: opts}
		g.drain.downErr = fmt.Errorf("replica: group %d has no replicas and no migration targets: %w", gi, ErrGroupDown)
		ldev := spec.Leader.Device()
		lead := &node{dev: ldev, store: spec.Leader}
		lead.role.Store(roleLeader)
		g.nodes = append(g.nodes, lead)
		for fi, fdev := range spec.Followers {
			if fdev.SegmentSize() != ldev.SegmentSize() || fdev.NumSegments() != ldev.NumSegments() {
				c.Close()
				return nil, fmt.Errorf("replica: group %d follower %d: %w", gi, fi, ErrGeometry)
			}
			mgr, _, err := txn.NewManager(fdev, kvstore.LogSlots, kvstore.LogMaxEntries)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := mgr.Format(); err != nil {
				c.Close()
				return nil, err
			}
			f := &node{dev: fdev, mgr: mgr, queue: make(chan shipEntry, cfg.QueueDepth)}
			f.role.Store(roleFollower)
			f.wg.Add(1)
			go f.applyLoop(fdev.SegmentSize())
			g.nodes = append(g.nodes, f)
		}
		c.groups = append(c.groups, g)
		spec.Leader.TxnManager().SetShipper(g.shipperFor())
	}
	return c, nil
}

// N returns the group count.
func (c *Cluster) N() int { return len(c.groups) }

// of returns key's home group, the same modulus shard.Router.Of uses.
//
// lint:inline
func (c *Cluster) of(key uint64) int {
	if len(c.groups) == 1 {
		return 0
	}
	return int(mix64(key) % uint64(len(c.groups)))
}

// route resolves the group currently serving key, following redirects of
// drained groups. The chain is acyclic (see migrate.go) and lock-free.
//
// lint:hotpath
func (c *Cluster) route(key uint64) *Group {
	g := c.groups[c.of(key)]
	for g.state.Load() == stateDrained {
		g = c.groups[g.targetFor(key)]
	}
	return g
}

// Put writes key with acknowledged-write semantics: on return the record
// is durable on its group's leader and applied or queued on every live
// follower.
//
// lint:hotpath
func (c *Cluster) Put(key uint64, value []byte) error {
	for {
		err := c.route(key).put(key, value)
		if !errors.Is(err, errMoved) {
			return err
		}
	}
}

// Get reads key, allocating the returned value.
//
// lint:hotpath
func (c *Cluster) Get(key uint64) ([]byte, bool, error) {
	return c.GetInto(key, nil)
}

// GetInto reads key into dst (grown as needed).
//
// lint:hotpath
func (c *Cluster) GetInto(key uint64, dst []byte) ([]byte, bool, error) {
	for {
		v, ok, err := c.route(key).getInto(key, dst)
		if !errors.Is(err, errMoved) {
			return v, ok, err
		}
	}
}

// Delete removes key, reporting whether it was present.
//
// lint:hotpath
func (c *Cluster) Delete(key uint64) (bool, error) {
	for {
		ok, err := c.route(key).delete(key)
		if !errors.Is(err, errMoved) {
			return ok, err
		}
	}
}

// Scan calls fn for each key in [lo, hi] in ascending key order, merging
// the groups' ordered streams: active leaders plus the untombstoned
// remainder of draining sources. When a key is mid-migration both copies
// exist; the merge prefers the active group's (it carries every write
// since the drain began). Like the router's Scan this is not an atomic
// snapshot, and a group finishing its drain mid-scan bounds — but does
// not eliminate — duplicate suppression staleness.
func (c *Cluster) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	type cursor struct {
		g      *Group // non-nil for draining-source cursors
		st     *kvstore.Store
		key    uint64
		val    []byte
		ok     bool
		active bool
	}
	var curs []cursor
	for _, g := range c.groups {
		if st := g.leaderStore(); st != nil {
			curs = append(curs, cursor{st: st, active: true})
			continue
		}
		switch g.state.Load() {
		case stateDraining:
			curs = append(curs, cursor{g: g, st: g.drain.source})
		case stateDown:
			curs = append(curs, cursor{st: g.drain.source})
		}
	}
	// advance pulls cursor i's next entry at or after from, skipping
	// tombstoned keys on draining sources (their authoritative copy, if
	// any, is under an active cursor).
	advance := func(i int, from uint64) error {
		cur := &curs[i]
		for {
			k, v, ok, err := cur.st.NextInto(from, hi, cur.val)
			if err != nil {
				return err
			}
			cur.key, cur.val, cur.ok = k, v, ok
			if !ok || cur.g == nil {
				return nil
			}
			if cur.g.state.Load() == stateDrained {
				cur.ok = false // drain completed mid-scan: the target cursors own everything
				return nil
			}
			cur.g.drain.mu.Lock()
			_, tomb := cur.g.drain.tombs[k]
			cur.g.drain.mu.Unlock()
			if !tomb {
				return nil
			}
			if k == ^uint64(0) {
				cur.ok = false
				return nil
			}
			from = k + 1
		}
	}
	for i := range curs {
		if err := advance(i, lo); err != nil {
			return err
		}
	}
	for {
		best := -1
		for i := range curs {
			if !curs[i].ok {
				continue
			}
			if best < 0 || curs[i].key < curs[best].key ||
				(curs[i].key == curs[best].key && curs[i].active && !curs[best].active) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		k := curs[best].key
		if !fn(k, curs[best].val) {
			return nil
		}
		if k >= hi || k == ^uint64(0) {
			return nil
		}
		for i := range curs {
			if curs[i].ok && curs[i].key == k {
				if err := advance(i, k+1); err != nil {
					return err
				}
			}
		}
	}
}

// Len sums live keys over the cluster. During a drain both copies of a
// mid-flight key exist, so the draining group contributes its source
// count net of migrated and superseded records — exact when idle,
// approximate while the migrator races clients.
func (c *Cluster) Len() int {
	n := 0
	for _, g := range c.groups {
		if st := g.leaderStore(); st != nil {
			n += st.Len()
			continue
		}
		switch g.state.Load() {
		case stateDraining:
			g.drain.mu.Lock()
			src := g.drain.source
			dup := int(g.migrated.Load()) + len(g.drain.tombs)
			g.drain.mu.Unlock()
			if rem := src.Len() - dup; rem > 0 {
				n += rem
			}
		case stateDown:
			n += g.drain.source.Len()
		}
	}
	return n
}

// CheckHealth sweeps the cluster for conditions failure-driven handling
// has not observed yet: leaders whose Health reports Degraded fail over
// proactively, and draining groups whose migrator died (its targets were
// failing) get a fresh one. Returns the joined errors of any group that
// could not be made healthy.
func (c *Cluster) CheckHealth() error {
	var errs []error
	for _, g := range c.groups {
		if st := g.leaderStore(); st != nil && st.Health().Degraded {
			if err := g.failoverFrom(st); err != nil {
				errs = append(errs, err)
			}
		}
		if g.state.Load() != stateDraining {
			continue
		}
		g.drain.mu.Lock()
		relaunch := !g.drain.migRunning && g.drain.migErr != nil
		if relaunch {
			g.drain.migRunning = true
			g.drain.migErr = nil
		}
		g.drain.mu.Unlock()
		if relaunch {
			c.migWG.Add(1)
			go g.migrate()
		}
	}
	return errors.Join(errs...)
}

// Quiesce blocks until in-flight background work — migrations and every
// serving store's async retrain — has completed.
func (c *Cluster) Quiesce() {
	c.migWG.Wait()
	for _, g := range c.groups {
		if st := g.servingStore(); st != nil {
			st.Quiesce()
		}
	}
}

// Close stops replication: waits out migrations, closes every follower
// queue and joins the apply goroutines, and detaches the ship hooks.
// Serving traffic must have stopped; Close is idempotent.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.migWG.Wait()
	for _, g := range c.groups {
		g.mu.Lock()
		if g.state.Load() == stateActive {
			if st := g.nodes[g.leader].store; st != nil && st.TxnManager() != nil {
				st.TxnManager().SetShipper(nil)
			}
		}
		for _, n := range g.nodes {
			if n.queue != nil && !n.closed {
				n.closed = true
				close(n.queue)
			}
			n.wg.Wait()
		}
		g.mu.Unlock()
	}
}

// Role names for Status.
const (
	RoleLeader   = "leader"
	RoleFollower = "follower"
	RoleDead     = "dead"
)

// Group state names for Status.
const (
	StateActive   = "active"
	StateDraining = "draining"
	StateDrained  = "drained"
	StateDown     = "down"
)

// ReplicaStatus describes one node of a group.
type ReplicaStatus struct {
	Role    string
	Shipped uint64 // entries enqueued to this follower
	Applied uint64 // entries durably applied
	Lag     uint64 // Shipped - Applied: queued but not yet applied
}

// GroupStatus describes one group's replication state.
type GroupStatus struct {
	Group     int
	State     string
	Failovers uint64
	// Migrated and Lost count records the migrator moved out of (resp.
	// could not read from) a draining source.
	Migrated uint64
	Lost     uint64
	Replicas []ReplicaStatus
}

// Status snapshots every group's role, lag, and migration counters.
func (c *Cluster) Status() []GroupStatus {
	out := make([]GroupStatus, len(c.groups))
	for i, g := range c.groups {
		// Bases are loaded before the raw counters: the raw atomics are
		// monotonic and each base is a past raw value, so this order can
		// never observe base > raw even racing with ResetCounters.
		fb, mb, lb := g.failoverBase.Load(), g.migratedBase.Load(), g.migLostBase.Load()
		gs := GroupStatus{
			Group:     i,
			Failovers: g.failovers.Load() - fb,
			Migrated:  g.migrated.Load() - mb,
			Lost:      g.migLost.Load() - lb,
		}
		switch g.state.Load() {
		case stateActive:
			gs.State = StateActive
		case stateDraining:
			gs.State = StateDraining
		case stateDrained:
			gs.State = StateDrained
		default:
			gs.State = StateDown
		}
		g.mu.RLock()
		for _, n := range g.nodes {
			rs := ReplicaStatus{Shipped: n.shipped.Load(), Applied: n.applied.Load()}
			rs.Lag = rs.Shipped - rs.Applied
			switch n.role.Load() {
			case roleLeader:
				rs.Role = RoleLeader
			case roleFollower:
				rs.Role = RoleFollower
			default:
				rs.Role = RoleDead
			}
			gs.Replicas = append(gs.Replicas, rs)
		}
		g.mu.RUnlock()
		out[i] = gs
	}
	return out
}

// Failovers sums completed leader promotions over all groups since the
// last ResetCounters.
func (c *Cluster) Failovers() uint64 {
	var n uint64
	for _, g := range c.groups {
		base := g.failoverBase.Load() // before the raw load; see Status
		n += g.failovers.Load() - base
	}
	return n
}

// ResetCounters rebases the failover and migration counters that Status
// and Failovers report, so a metrics reset on the owning store starts the
// cluster's counters from zero too. The raw atomics are left untouched:
// drain bookkeeping derives live record counts from the raw migrated
// counter, which must keep its absolute value.
func (c *Cluster) ResetCounters() {
	for _, g := range c.groups {
		g.failoverBase.Store(g.failovers.Load())
		g.migratedBase.Store(g.migrated.Load())
		g.migLostBase.Store(g.migLost.Load())
	}
}

// DrainedGroups counts groups whose keyspace has fully migrated away.
func (c *Cluster) DrainedGroups() int {
	n := 0
	for _, g := range c.groups {
		if g.state.Load() == stateDrained {
			n++
		}
	}
	return n
}

// activeGroupIDs snapshots the ids of groups currently active, excluding
// self — the healthy migration targets at a drain's start.
func (c *Cluster) activeGroupIDs(self int) []int {
	var ids []int
	for i, g := range c.groups {
		if i != self && g.state.Load() == stateActive {
			ids = append(ids, i)
		}
	}
	return ids
}

// LeaderStore returns group g's serving leader store, or nil when the
// group has none (draining, drained, or down).
func (c *Cluster) LeaderStore(g int) *kvstore.Store { return c.groups[g].leaderStore() }

// ServingStore returns whichever store still answers reads for group g's
// remaining records (leader, or draining/down source); nil once drained.
func (c *Cluster) ServingStore(g int) *kvstore.Store { return c.groups[g].servingStore() }

// LeaderDevice returns the device behind group g's serving store — the
// target fault injection should aim at to exercise the group's current
// leader. Nil once the group has drained.
func (c *Cluster) LeaderDevice(g int) *nvm.Device {
	if st := c.groups[g].servingStore(); st != nil {
		return st.Device()
	}
	return nil
}

// GroupDevices returns group g's devices — leader first, then followers
// in spec order — for per-group wear and energy accounting.
func (c *Cluster) GroupDevices(g int) []*nvm.Device {
	gr := c.groups[g]
	gr.mu.RLock()
	defer gr.mu.RUnlock()
	out := make([]*nvm.Device, len(gr.nodes))
	for i, n := range gr.nodes {
		out[i] = n.dev
	}
	return out
}

// Devices returns every device in the cluster — leaders, followers, and
// dead nodes — for wear and energy accounting.
func (c *Cluster) Devices() []*nvm.Device {
	var out []*nvm.Device
	for _, g := range c.groups {
		g.mu.RLock()
		for _, n := range g.nodes {
			out = append(out, n.dev)
		}
		g.mu.RUnlock()
	}
	return out
}

// ServingStores returns every store still serving some slice of the
// keyspace: active leaders plus draining/down sources.
func (c *Cluster) ServingStores() []*kvstore.Store {
	var out []*kvstore.Store
	for _, g := range c.groups {
		if st := g.servingStore(); st != nil {
			out = append(out, st)
		}
	}
	return out
}

// Scrub spreads a segment-examination budget over the serving stores,
// remainder round-robin like shard.Router.Scrub (scrubCursor rotates via
// the per-store cursors; the cross-store remainder start is derived from
// the call count).
func (c *Cluster) Scrub(n int) (kvstore.ScrubReport, error) {
	var agg kvstore.ScrubReport
	stores := c.ServingStores()
	if len(stores) == 0 || n <= 0 {
		return agg, nil
	}
	per, rem := n/len(stores), n%len(stores)
	start := int(c.scrubCalls.Add(uint64(rem))-uint64(rem)) % len(stores)
	for i, st := range stores {
		quota := per
		if (i-start+len(stores))%len(stores) < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		rep, err := st.Scrub(quota)
		agg.Scanned += rep.Scanned
		agg.Relocated += rep.Relocated
		agg.Retired += rep.Retired
		agg.Lost += rep.Lost
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// NeedsRetrain reports whether any serving store's pool is running low.
func (c *Cluster) NeedsRetrain() bool {
	for _, st := range c.ServingStores() {
		if st.NeedsRetrain() {
			return true
		}
	}
	return false
}

// Retrain retrains every serving store's model concurrently.
func (c *Cluster) Retrain() error {
	stores := c.ServingStores()
	errs := make([]error, len(stores))
	var wg sync.WaitGroup
	for i, st := range stores {
		wg.Add(1)
		go func(i int, st *kvstore.Store) {
			defer wg.Done()
			errs[i] = st.Retrain()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}
