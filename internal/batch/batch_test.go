package batch

import (
	"bytes"
	"math/rand"
	"testing"
)

// mapKV is an in-memory KV for unit tests; integration with the real store
// is covered in the kvstore tests and examples.
type mapKV struct {
	m    map[uint64][]byte
	puts int
}

func newMapKV() *mapKV { return &mapKV{m: map[uint64][]byte{}} }

func (s *mapKV) Put(key uint64, value []byte) error {
	s.m[key] = append([]byte(nil), value...)
	s.puts++
	return nil
}

func (s *mapKV) Get(key uint64) ([]byte, bool, error) {
	v, ok := s.m[key]
	return v, ok, nil
}

func (s *mapKV) Delete(key uint64) (bool, error) {
	_, ok := s.m[key]
	delete(s.m, key)
	return ok, nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(newMapKV(), 8, 0.5); err == nil {
		t.Fatal("tiny payload accepted")
	}
}

func TestPutGetThroughOpenBuffer(t *testing.T) {
	b, err := New(newMapKV(), 128, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := b.Get(1)
	if err != nil || !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get = (%q,%v,%v)", v, ok, err)
	}
	if b.Batches() != 0 {
		t.Fatal("no batch should be sealed yet")
	}
}

func TestFlushSealsBatch(t *testing.T) {
	kv := newMapKV()
	b, err := New(kv, 128, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 5; k++ {
		if err := b.Put(k, []byte{byte(k), byte(k + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if b.Batches() != 1 || kv.puts != 1 {
		t.Fatalf("Batches=%d puts=%d, want 1/1", b.Batches(), kv.puts)
	}
	for k := uint64(0); k < 5; k++ {
		v, ok, err := b.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) after flush = (%v,%v,%v)", k, v, ok, err)
		}
	}
}

func TestAutoFlushWhenFull(t *testing.T) {
	kv := newMapKV()
	b, err := New(kv, 64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Each entry costs 10+6=16 bytes → 4 per batch.
	for k := uint64(0); k < 9; k++ {
		if err := b.Put(k, []byte{1, 2, 3, 4, 5, 6}); err != nil {
			t.Fatal(err)
		}
	}
	if b.Batches() != 2 {
		t.Fatalf("Batches = %d, want 2 after 9 entries of 4/batch", b.Batches())
	}
}

func TestBatchingReducesStorePuts(t *testing.T) {
	kv := newMapKV()
	b, _ := New(kv, 256, 0.5)
	for k := uint64(0); k < 100; k++ {
		if err := b.Put(k, []byte("xxxxxxxx")); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if kv.puts >= 20 {
		t.Fatalf("100 small puts caused %d store puts; batching broken", kv.puts)
	}
}

func TestUpdateSupersedesOldVersion(t *testing.T) {
	b, _ := New(newMapKV(), 64, 0.5)
	if err := b.Put(1, []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Put(1, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := b.Get(1)
	if !ok || !bytes.Equal(v, []byte("bbbb")) {
		t.Fatalf("Get = %q", v)
	}
}

func TestDelete(t *testing.T) {
	b, _ := New(newMapKV(), 64, 0.5)
	if err := b.Put(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ok, err := b.Delete(1)
	if err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := b.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if ok, _ := b.Delete(1); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestGCReclaimsSparseBatches(t *testing.T) {
	kv := newMapKV()
	b, _ := New(kv, 64, 0.6)
	for k := uint64(0); k < 4; k++ {
		if err := b.Put(k, []byte{1, 2, 3, 4, 5, 6}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// Delete 3 of 4 entries → live fraction 16/64 < 0.6 → batch GC'd,
	// survivor moved to the open buffer.
	for k := uint64(0); k < 3; k++ {
		if _, err := b.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if b.Batches() != 0 {
		t.Fatalf("sparse batch not GC'd: %d batches", b.Batches())
	}
	v, ok, err := b.Get(3)
	if err != nil || !ok || v[0] != 1 {
		t.Fatalf("survivor lost: (%v,%v,%v)", v, ok, err)
	}
	if len(kv.m) != 0 {
		t.Fatalf("dead batch record still in store: %d", len(kv.m))
	}
}

func TestKeySpaceGuard(t *testing.T) {
	b, _ := New(newMapKV(), 64, 0.5)
	if err := b.Put(batchKeyBase, []byte("x")); err != ErrKeyTooLarge {
		t.Fatalf("err = %v, want ErrKeyTooLarge", err)
	}
	if err := b.Put(1, make([]byte, 60)); err == nil {
		t.Fatal("oversized value accepted")
	}
}

// TestRandomizedAgainstReference runs mixed operations against a map.
func TestRandomizedAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b, _ := New(newMapKV(), 96, 0.5)
	ref := map[uint64][]byte{}
	for i := 0; i < 3000; i++ {
		k := uint64(r.Intn(50))
		switch r.Intn(4) {
		case 0, 1:
			v := make([]byte, 1+r.Intn(10))
			r.Read(v)
			if err := b.Put(k, v); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 2:
			got, ok, err := b.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := ref[k]
			if ok != wantOK || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("iter %d: Get(%d) = (%x,%v), want (%x,%v)", i, k, got, ok, want, wantOK)
			}
		case 3:
			ok, err := b.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			if _, wantOK := ref[k]; ok != wantOK {
				t.Fatalf("iter %d: Delete(%d) = %v", i, k, ok)
			}
			delete(ref, k)
		}
		if b.Len() != len(ref) {
			t.Fatalf("iter %d: Len = %d, want %d", i, b.Len(), len(ref))
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, want := range ref {
		got, ok, err := b.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("final Get(%d) = (%x,%v,%v), want %x", k, got, ok, err, want)
		}
	}
}
