package experiments

import (
	"fmt"
	"time"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() {
	register("abl-search", AblationIntraClusterSearch)
	register("abl-joint", AblationJointTraining)
	register("abl-latent", AblationLatentDim)
	register("abl-diff", AblationDifferentialWrite)
}

func ablationSetup(cfg RunConfig, k int, trainCfg core.Config) (*core.Model, [][]byte, [][]byte, error) {
	const segSize = 32
	bits := segSize * 8
	n := cfg.scaleInt(400, 120)
	writes := cfg.scaleInt(800, 150)
	ds := workload.MNISTLike(n+writes, bits, cfg.Seed)
	trainCfg.InputBits = bits
	trainCfg.K = k
	if trainCfg.Seed == 0 {
		trainCfg.Seed = cfg.Seed
	}
	model, err := core.Train(ds.Items[:n], trainCfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return model, toBytesAll(ds.Items[:n], segSize), toBytesAll(ds.Items[n:], segSize), nil
}

// AblationIntraClusterSearch validates the paper's §3.3.1 design decision:
// taking the *first* free address in the predicted cluster is nearly as
// good as exhaustively searching the cluster for the best Hamming match,
// at a small fraction of the cost.
func AblationIntraClusterSearch(cfg RunConfig) (*Result, error) {
	const k = 8
	model, seedImgs, items, err := ablationSetup(cfg, k, core.Config{
		LatentDim: 10, HiddenDim: 48, Epochs: 10, JointEpochs: 2,
	})
	if err != nil {
		return nil, err
	}
	segSize := len(seedImgs[0])
	n := len(seedImgs)

	runFirstFree := func() (float64, float64, error) {
		dev, err := seededDevice(nvm.DefaultConfig(segSize, n), seedImgs)
		if err != nil {
			return 0, 0, err
		}
		p, err := newClusterPlacer(model, k, dev, addrRange(n))
		if err != nil {
			return 0, 0, err
		}
		dev.ResetStats()
		t0 := time.Now() // lint:allow deepdeterminism — measured placement latency is this ablation's output
		if _, err := runPlacement(dev, p, items, n/2); err != nil {
			return 0, 0, err
		}
		el := float64(time.Since(t0).Microseconds()) / float64(len(items)) // lint:allow deepdeterminism — measured placement latency is this ablation's output
		s := dev.Stats()
		return float64(s.BitsFlipped) / float64(s.Writes), el, nil
	}
	runBestMatch := func() (float64, float64, error) {
		dev, err := seededDevice(nvm.DefaultConfig(segSize, n), seedImgs)
		if err != nil {
			return 0, 0, err
		}
		// Exhaustive search scans every free segment in the predicted
		// cluster for the minimum Hamming distance.
		free := map[int][]int{}
		for a := 0; a < n; a++ {
			img, _ := dev.Peek(a)
			c := mustPredict(model.PredictBytes(img))
			free[c] = append(free[c], a)
		}
		dev.ResetStats()
		var live []int
		t0 := time.Now() // lint:allow deepdeterminism — measured placement latency is this ablation's output
		for _, item := range items {
			c := mustPredict(model.PredictBytes(item))
			cand := free[c]
			if len(cand) == 0 {
				for cc := 0; cc < k; cc++ {
					if len(free[cc]) > 0 {
						c = cc
						cand = free[cc]
						break
					}
				}
			}
			best, bestD := 0, 1<<30
			for i, a := range cand {
				img, _ := dev.Peek(a)
				if d := bitvec.HammingBytes(img, item); d < bestD {
					best, bestD = i, d
				}
			}
			addr := cand[best]
			free[c] = append(cand[:best], cand[best+1:]...)
			if _, err := dev.Write(addr, item); err != nil {
				return 0, 0, err
			}
			live = append(live, addr)
			if len(live) > n/2 {
				v := live[0]
				live = live[1:]
				img, _ := dev.Peek(v)
				fc := mustPredict(model.PredictBytes(img))
				free[fc] = append(free[fc], v)
			}
		}
		el := float64(time.Since(t0).Microseconds()) / float64(len(items)) // lint:allow deepdeterminism — measured placement latency is this ablation's output
		s := dev.Stats()
		return float64(s.BitsFlipped) / float64(s.Writes), el, nil
	}

	ffFlips, ffUs, err := runFirstFree()
	if err != nil {
		return nil, err
	}
	bmFlips, bmUs, err := runBestMatch()
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("policy", "flips/write", "us/write")
	table.AddRow("first-free (paper)", ffFlips, ffUs)
	table.AddRow("exhaustive best-match", bmFlips, bmUs)
	return &Result{
		ID:    "abl-search",
		Title: "Ablation: first-free-in-cluster vs exhaustive intra-cluster search",
		Table: table,
		Notes: []string{
			fmt.Sprintf("best-match reaches %.0f%% of first-free's flips at %.1fx the placement cost",
				bmFlips/maxF(ffFlips, 1e-9)*100, bmUs/maxF(ffUs, 0.01)),
			"exhaustive search scales linearly with cluster size — the paper's first-free choice trades flips for O(1) placement",
		},
	}, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// AblationJointTraining compares joint VAE+K-means fine-tuning against the
// sequential pipeline (VAE, then K-means on frozen latents).
func AblationJointTraining(cfg RunConfig) (*Result, error) {
	const k = 8
	table := stats.NewTable("training", "flips/write", "latent_SSE")
	for _, joint := range []bool{false, true} {
		tc := core.Config{LatentDim: 10, HiddenDim: 48, Epochs: 10, Seed: cfg.Seed}
		if joint {
			tc.JointEpochs = 4
		} else {
			tc.JointEpochs = -1 // explicit zero joint epochs
		}
		model, seedImgs, items, err := ablationSetup(cfg, k, tc)
		if err != nil {
			return nil, err
		}
		segSize := len(seedImgs[0])
		dev, err := seededDevice(nvm.DefaultConfig(segSize, len(seedImgs)), seedImgs)
		if err != nil {
			return nil, err
		}
		p, err := newClusterPlacer(model, k, dev, addrRange(len(seedImgs)))
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		if _, err := runPlacement(dev, p, items, len(seedImgs)/2); err != nil {
			return nil, err
		}
		s := dev.Stats()
		name := "sequential (VAE then K-means)"
		if joint {
			name = "joint fine-tuning (paper)"
		}
		table.AddRow(name, float64(s.BitsFlipped)/float64(s.Writes), model.LatentSSE())
	}
	return &Result{
		ID:    "abl-joint",
		Title: "Ablation: joint VAE+K-means training vs sequential",
		Table: table,
		Notes: []string{
			"on well-separated synthetic data the cluster assignments (and thus flips) often coincide;",
			"the joint term's effect shows in the latent SSE — tighter clusters that are more robust when data drifts",
		},
	}, nil
}

// AblationLatentDim sweeps the VAE latent width (the paper uses ≈10).
func AblationLatentDim(cfg RunConfig) (*Result, error) {
	const k = 8
	table := stats.NewTable("latent_dim", "flips/write")
	for _, d := range []int{2, 4, 10, 20, 32} {
		model, seedImgs, items, err := ablationSetup(cfg, k, core.Config{
			LatentDim: d, HiddenDim: 48, Epochs: 10, JointEpochs: 2,
		})
		if err != nil {
			return nil, err
		}
		segSize := len(seedImgs[0])
		dev, err := seededDevice(nvm.DefaultConfig(segSize, len(seedImgs)), seedImgs)
		if err != nil {
			return nil, err
		}
		p, err := newClusterPlacer(model, k, dev, addrRange(len(seedImgs)))
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		if _, err := runPlacement(dev, p, items, len(seedImgs)/2); err != nil {
			return nil, err
		}
		s := dev.Stats()
		table.AddRow(d, float64(s.BitsFlipped)/float64(s.Writes))
	}
	return &Result{
		ID:    "abl-latent",
		Title: "Ablation: VAE latent dimensionality",
		Table: table,
		Notes: []string{"the paper's ≈10-dimensional latent is in the flat region; very small latents lose cluster structure"},
	}, nil
}

// AblationDifferentialWrite quantifies the value of differential
// (data-comparison) writes under E2-NVM placement, versus a naive
// controller that reprograms every cell.
func AblationDifferentialWrite(cfg RunConfig) (*Result, error) {
	const k = 8
	model, seedImgs, items, err := ablationSetup(cfg, k, core.Config{
		LatentDim: 10, HiddenDim: 48, Epochs: 10, JointEpochs: 2,
	})
	if err != nil {
		return nil, err
	}
	segSize := len(seedImgs[0])
	n := len(seedImgs)
	run := func(raw bool) (float64, error) {
		dev, err := seededDevice(nvm.DefaultConfig(segSize, n), seedImgs)
		if err != nil {
			return 0, err
		}
		p, err := newClusterPlacer(model, k, dev, addrRange(n))
		if err != nil {
			return 0, err
		}
		dev.ResetStats()
		var live []int
		for _, item := range items {
			addr, ok := p.place(item)
			if !ok {
				return 0, fmt.Errorf("abl-diff: pool exhausted")
			}
			if raw {
				if _, err := dev.WriteRaw(addr, item); err != nil {
					return 0, err
				}
			} else if _, err := dev.Write(addr, item); err != nil {
				return 0, err
			}
			live = append(live, addr)
			if len(live) > n/2 {
				v := live[0]
				live = live[1:]
				img, _ := dev.Peek(v)
				p.recycle(v, img)
			}
		}
		s := dev.Stats()
		return s.EnergyPJ / float64(s.Writes), nil
	}
	diff, err := run(false)
	if err != nil {
		return nil, err
	}
	raw, err := run(true)
	if err != nil {
		return nil, err
	}
	table := stats.NewTable("write_mode", "energy_pJ/write")
	table.AddRow("differential (paper)", diff)
	table.AddRow("naive full reprogram", raw)
	return &Result{
		ID:    "abl-diff",
		Title: "Ablation: differential write vs naive full-segment reprogram",
		Table: table,
		Notes: []string{fmt.Sprintf("differential writes use %.1f%% of the naive energy", diff/raw*100)},
	}, nil
}
