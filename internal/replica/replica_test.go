package replica

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
)

func quickModelCfg(seed int64) core.Config {
	return core.Config{K: 3, HiddenDim: 32, LatentDim: 4, Epochs: 3, JointEpochs: 1, BatchSize: 16, Seed: seed}
}

// logSegs is the device tail reserved by the crash-safe store's redo log;
// [0, numSegs-logSegs) is the data zone replication must converge on.
const logSegs = kvstore.LogSlots * (1 + kvstore.LogMaxEntries)

// newSpec builds one replica set: a crash-safe leader plus rf-1 follower
// devices filled with the same initial content (so the data zones start,
// and therefore stay, byte-identical).
func newSpec(t *testing.T, segSize, numSegs, rf int, contentSeed int64) GroupSpec {
	t.Helper()
	mkdev := func() *nvm.Device {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			t.Fatal(err)
		}
		dev.Fill(rand.New(rand.NewSource(contentSeed)))
		return dev
	}
	opts := kvstore.Options{CrashSafe: true}
	leader, err := kvstore.Open(mkdev(), quickModelCfg(contentSeed), opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := GroupSpec{Leader: leader, Opts: opts}
	for f := 1; f < rf; f++ {
		spec.Followers = append(spec.Followers, mkdev())
	}
	return spec
}

// newCluster builds groups identical replica sets of rf nodes each.
func newCluster(t *testing.T, groups, rf, segSize, numSegs int) *Cluster {
	t.Helper()
	specs := make([]GroupSpec, groups)
	for g := range specs {
		specs[g] = newSpec(t, segSize, numSegs, rf, int64(100+g))
	}
	c, err := New(specs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fence fails every segment of dev, modeling a device whose cells no
// longer program anywhere (reads still serve stored content).
func fence(t *testing.T, dev *nvm.Device) {
	t.Helper()
	for a := 0; a < dev.NumSegments(); a++ {
		if err := dev.FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
}

func val(i int) []byte { return []byte(fmt.Sprintf("value-%04d", i)) }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); !errors.Is(err, ErrNoGroups) {
		t.Fatalf("empty specs error = %v, want ErrNoGroups", err)
	}
	// Non-crash-safe leader has no txn manager to ship from.
	dev, err := nvm.NewDevice(nvm.DefaultConfig(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	dev.Fill(rand.New(rand.NewSource(1)))
	st, err := kvstore.Open(dev, quickModelCfg(1), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New([]GroupSpec{{Leader: st}}, Config{}); !errors.Is(err, ErrNotCrashSafe) {
		t.Fatalf("plain store error = %v, want ErrNotCrashSafe", err)
	}
	// Mismatched follower geometry.
	spec := newSpec(t, 32, 64, 1, 7)
	bad, err := nvm.NewDevice(nvm.DefaultConfig(32, 16))
	if err != nil {
		t.Fatal(err)
	}
	spec.Followers = []*nvm.Device{bad}
	if _, err := New([]GroupSpec{spec}, Config{}); !errors.Is(err, ErrGeometry) {
		t.Fatalf("geometry error = %v, want ErrGeometry", err)
	}
}

func TestFollowerConvergesByteIdentical(t *testing.T) {
	c := newCluster(t, 1, 2, 32, 64)
	for i := 0; i < 40; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ { // overwrites
		if err := c.Put(uint64(i), val(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 20; i < 25; i++ { // deletes
		if ok, err := c.Delete(uint64(i)); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v,%v)", i, ok, err)
		}
	}
	c.Close() // joins the apply loop: every shipped entry is on the device
	g := c.groups[0]
	ldev, fdev := g.nodes[0].dev, g.nodes[1].dev
	for a := 0; a < ldev.NumSegments()-logSegs; a++ {
		lb, err := ldev.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := fdev.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, fb) {
			t.Fatalf("data segment %d differs between leader and follower", a)
		}
	}
	st := c.Status()[0]
	if len(st.Replicas) != 2 || st.Replicas[1].Lag != 0 {
		t.Fatalf("status after close = %+v, want follower lag 0", st)
	}
	if st.Replicas[1].Shipped == 0 || st.Replicas[1].Shipped != st.Replicas[1].Applied {
		t.Fatalf("follower shipped/applied = %d/%d, want equal and nonzero",
			st.Replicas[1].Shipped, st.Replicas[1].Applied)
	}
}

func TestFailoverPromotesFollower(t *testing.T) {
	c := newCluster(t, 1, 2, 32, 64)
	defer c.Close()
	const n = 30
	for i := 0; i < n; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the leader's device: every cell refuses to program.
	fence(t, c.groups[0].nodes[0].dev)
	// The next write dies on the leader, fails over, and succeeds on the
	// promoted follower — the caller never sees the device death.
	if err := c.Put(uint64(n), val(n)); err != nil {
		t.Fatalf("Put across failover: %v", err)
	}
	if got := c.Failovers(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	st := c.Status()[0]
	if st.State != StateActive {
		t.Fatalf("group state = %s, want active", st.State)
	}
	if st.Replicas[0].Role != RoleDead || st.Replicas[1].Role != RoleLeader {
		t.Fatalf("roles after failover = %s/%s, want dead/leader", st.Replicas[0].Role, st.Replicas[1].Role)
	}
	// Every acknowledged write survives on the new leader.
	for i := 0; i <= n; i++ {
		v, ok, err := c.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after failover = (%q,%v,%v), want %q", i, v, ok, err, val(i))
		}
	}
	// The promoted leader keeps serving writes, deletes, scans.
	if err := c.Put(3, val(9999)); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(3); !ok || !bytes.Equal(v, val(9999)) {
		t.Fatalf("overwrite on promoted leader = (%q,%v)", v, ok)
	}
	if ok, err := c.Delete(4); err != nil || !ok {
		t.Fatalf("Delete on promoted leader = (%v,%v)", ok, err)
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
}

func TestMigrationDrainsDeadGroup(t *testing.T) {
	const groups, keys = 3, 96
	c := newCluster(t, groups, 1, 32, 64) // RF=1: no followers, death ⇒ migration
	defer c.Close()
	want := map[uint64][]byte{}
	for i := 0; i < keys; i++ {
		k := uint64(i)
		if err := c.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = val(i)
	}
	// Kill group 0's only replica.
	victim := 0
	fence(t, c.groups[victim].nodes[0].dev)
	// A write homed to the dead group triggers the drain and lands in a
	// surviving group without the caller noticing.
	var probe uint64
	for k := uint64(0); ; k++ {
		if c.of(k) == victim {
			probe = k
			break
		}
	}
	if err := c.Put(probe, val(7777)); err != nil {
		t.Fatalf("Put onto dying group: %v", err)
	}
	want[probe] = val(7777)
	c.Quiesce() // drain completes
	st := c.Status()[victim]
	if st.State != StateDrained {
		t.Fatalf("victim state = %s, want drained", st.State)
	}
	if st.Migrated == 0 {
		t.Fatalf("migrated = 0, want > 0")
	}
	if c.DrainedGroups() != 1 {
		t.Fatalf("DrainedGroups = %d, want 1", c.DrainedGroups())
	}
	// The whole keyspace — including every key homed to the drained group
	// — is served by the survivors.
	for k, wv := range want {
		v, ok, err := c.Get(k)
		if err != nil || !ok || !bytes.Equal(v, wv) {
			t.Fatalf("Get(%d) after migration = (%q,%v,%v), want %q", k, v, ok, err, wv)
		}
	}
	if c.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(want))
	}
	// Redirected writes and deletes keep working after the drain.
	if err := c.Put(probe, val(8888)); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(probe); !ok || !bytes.Equal(v, val(8888)) {
		t.Fatalf("redirected overwrite = (%q,%v)", v, ok)
	}
	if ok, err := c.Delete(probe); err != nil || !ok {
		t.Fatalf("redirected delete = (%v,%v)", ok, err)
	}
	if _, ok, _ := c.Get(probe); ok {
		t.Fatal("deleted key resurfaced after migration")
	}
	// Scan sees exactly the surviving keys, in order, once each.
	delete(want, probe)
	seen := map[uint64]int{}
	last := int64(-1)
	if err := c.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		if int64(k) <= last {
			t.Fatalf("scan out of order: %d after %d", k, last)
		}
		last = int64(k)
		seen[k]++
		if wv := want[k]; !bytes.Equal(v, wv) {
			t.Fatalf("scan value for %d = %q, want %q", k, v, wv)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(want))
	}
}

func TestDeleteDuringDrainDoesNotResurrect(t *testing.T) {
	const groups, keys = 2, 48
	c := newCluster(t, groups, 1, 32, 64)
	defer c.Close()
	for i := 0; i < keys; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := 0
	fence(t, c.groups[victim].nodes[0].dev)
	// Force the drain via a probe write, then immediately delete every key
	// homed to the victim while the migrator races the deletes.
	var victimKeys []uint64
	for i := 0; i < keys; i++ {
		if c.of(uint64(i)) == victim {
			victimKeys = append(victimKeys, uint64(i))
		}
	}
	if err := c.Put(victimKeys[0], val(1)); err != nil {
		t.Fatal(err)
	}
	for _, k := range victimKeys {
		if _, err := c.Delete(k); err != nil {
			t.Fatalf("Delete(%d) during drain: %v", k, err)
		}
	}
	c.Quiesce()
	for _, k := range victimKeys {
		if _, ok, _ := c.Get(k); ok {
			t.Fatalf("key %d deleted during drain resurrected after migration", k)
		}
	}
	// Keys homed to the survivor are untouched.
	for i := 0; i < keys; i++ {
		k := uint64(i)
		if c.of(k) == victim {
			continue
		}
		v, ok, err := c.Get(k)
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("survivor key %d = (%q,%v,%v)", k, v, ok, err)
		}
	}
}

func TestOverwriteDuringDrainWins(t *testing.T) {
	const groups, keys = 2, 48
	c := newCluster(t, groups, 1, 32, 64)
	defer c.Close()
	for i := 0; i < keys; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := 0
	fence(t, c.groups[victim].nodes[0].dev)
	var victimKeys []uint64
	for i := 0; i < keys; i++ {
		if c.of(uint64(i)) == victim {
			victimKeys = append(victimKeys, uint64(i))
		}
	}
	// Overwrite every victim key while the migrator copies stale records.
	for _, k := range victimKeys {
		if err := c.Put(k, val(int(k)+5000)); err != nil {
			t.Fatalf("Put(%d) during drain: %v", k, err)
		}
	}
	c.Quiesce()
	for _, k := range victimKeys {
		v, ok, err := c.Get(k)
		if err != nil || !ok || !bytes.Equal(v, val(int(k)+5000)) {
			t.Fatalf("Get(%d) = (%q,%v,%v), want the drain-time overwrite", k, v, ok, err)
		}
	}
}

func TestGroupDownWhenNoTargets(t *testing.T) {
	c := newCluster(t, 1, 1, 32, 64) // one group, no followers, nowhere to go
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	fence(t, c.groups[0].nodes[0].dev)
	if err := c.Put(99, val(99)); !errors.Is(err, ErrGroupDown) {
		t.Fatalf("Put on down group error = %v, want ErrGroupDown", err)
	}
	// Reads still serve the surviving content of the dead device.
	for i := 0; i < 10; i++ {
		v, ok, err := c.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) on down group = (%q,%v,%v)", i, v, ok, err)
		}
	}
	if c.Status()[0].State != StateDown {
		t.Fatalf("state = %s, want down", c.Status()[0].State)
	}
}

func TestCheckHealthFailsOverDegradedLeader(t *testing.T) {
	// A low degrade threshold and a partially fenced zone: the leader
	// degrades without an operation ever failing hard, and CheckHealth
	// notices before clients do.
	specs := []GroupSpec{newSpec(t, 32, 64, 2, 50)}
	specs[0].Opts.DegradeThreshold = 0.05
	st := specs[0].Leader
	c, err := New(specs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Put(uint64(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Fence a slice of the data zone and scrub it so retirement crosses
	// the degradation threshold.
	for a := 0; a < 8; a++ {
		if err := st.Device().FailSegment(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Scrub(60); err != nil {
		t.Fatal(err)
	}
	if !st.Health().Degraded {
		t.Skip("zone did not degrade under this geometry")
	}
	if err := c.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	if c.Failovers() != 1 {
		t.Fatalf("Failovers after CheckHealth = %d, want 1", c.Failovers())
	}
	for i := 0; i < 20; i++ {
		v, ok, err := c.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after proactive failover = (%q,%v,%v)", i, v, ok, err)
		}
	}
}

func TestScrubRotatesAcrossGroups(t *testing.T) {
	c := newCluster(t, 4, 1, 32, 16)
	defer c.Close()
	for g := 0; g < 4; g++ {
		if err := c.groups[g].nodes[0].dev.FailSegment(0); err != nil {
			t.Fatal(err)
		}
	}
	for call := 0; call < 4; call++ {
		rep, err := c.Scrub(1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scanned != 1 {
			t.Fatalf("call %d scanned %d, want 1", call, rep.Scanned)
		}
	}
	for g := 0; g < 4; g++ {
		if got := c.groups[g].nodes[0].store.Health().Retired; got != 1 {
			t.Fatalf("group %d retired %d, want 1 (remainder not rotated)", g, got)
		}
	}
}
