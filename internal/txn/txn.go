// Package txn provides crash-consistent transactional writes over the
// simulated NVM device — the role PMDK's libpmemobj transactions play in
// the paper's evaluation ("We use PMDK's transactions to persist writes").
//
// The design is a classic redo log: a transaction stages segment writes in
// DRAM, persists them to a log region with a commit record, applies them
// to their home segments, and finally invalidates the log. Recovery after
// a crash replays committed-but-unapplied logs and discards torn ones, so
// a segment write is always all-or-nothing even if the "power" fails
// between cache-line writes.
//
// The log layout per transaction slot:
//
//	segment 0 of the slot: header
//	  [0]     state byte (free / staged / committed)
//	  [1:5]   magic (distinguishes log headers from pre-use garbage)
//	  [5:7]   entry count (uint16 LE)
//	  [7:15]  transaction id (uint64 LE)
//	  [15:19] header CRC-32C over [1:15] and the entry table
//	  [19:..] per-entry records: target address (uint32 LE) followed by
//	          the CRC-32C of the staged image (uint32 LE)
//	segments 1..n: the staged images, one per entry
//
// The checksums exist because the log lives on the same wear-prone medium
// as the data: a worn-out log segment can corrupt the bits of a commit
// record in place. Recovery trusts a header only if its CRC matches, and
// replays an entry only if its staged image's CRC matches — checksum-
// corrupt entries are skipped rather than replayed as garbage. Log slots
// whose cells report stuck bits on write are retired and never reused.
//
// Crash injection is built in (FailAfter), and the tests drive
// write-crash-recover cycles against a reference model.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"e2nvm/internal/nvm"
)

// Log states.
const (
	slotFree      = 0x00
	slotStaged    = 0x5a
	slotCommitted = 0xc3
)

// logMagic tags valid log headers so pre-use garbage in the reserved
// region can never be mistaken for a transaction.
var logMagic = [4]byte{'E', '2', 'T', 'X'}

const (
	hdrCRCOff = 15 // header checksum offset
	hdrFixed  = 19 // state + magic + count + id + header CRC
	entrySize = 8  // target address + image CRC
)

// crcTable is the Castagnoli polynomial table shared by header and image
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// headerCRC computes the checksum over the header's stable bytes: magic,
// count, id and the entry table. The state byte is excluded so the
// staged → committed → free flips keep the checksum valid, and the CRC
// field itself is excluded.
func headerCRC(hdr []byte, count int) uint32 {
	crc := crc32.Checksum(hdr[1:hdrCRCOff], crcTable)
	return crc32.Update(crc, crcTable, hdr[hdrFixed:hdrFixed+entrySize*count])
}

// ErrCrashed is returned when an injected crash point fires; the device is
// left exactly as the crash left it and Recover must be run.
var ErrCrashed = errors.New("txn: injected crash")

// ErrTxTooLarge is returned when a transaction has more entries than one
// log slot can describe.
var ErrTxTooLarge = errors.New("txn: transaction exceeds log slot capacity")

// ErrAborted is returned when a transaction is used after Abort (or after
// a successful Commit recycled it).
var ErrAborted = errors.New("txn: transaction aborted")

// ErrLogFull is returned by Commit when every log slot is occupied.
var ErrLogFull = errors.New("txn: no free log slot")

// ErrCorruptLog identifies a log slot whose header failed validation.
// Recovery discards such slots rather than erroring, so this sentinel is
// retained only for callers that classify historical errors.
var ErrCorruptLog = errors.New("txn: corrupt log slot")

// ErrBadConfig is returned by NewManager for an unusable log geometry.
var ErrBadConfig = errors.New("txn: invalid log config")

// Shipper observes every transaction at its commit point: the commit
// record is durable on this manager's device, the home segments are not
// yet written. It is the replication hook — a Put acked after Commit is
// exactly a Put whose entries a Shipper has seen. The callback runs with
// the manager's lock held, so it must not call back into the manager; the
// addrs and images slices are only valid for the duration of the call and
// must be copied if retained.
type Shipper func(id uint64, addrs []int, images [][]byte)

// Manager coordinates transactions over a device. The log occupies the
// device's tail segments; callers must not write those directly.
type Manager struct {
	dev      *nvm.Device
	logStart int // first log segment
	slotSegs int // segments per slot (1 header + maxEntries)
	maxEnt   int
	slots    int // number of log slots

	mu      sync.Mutex
	nextID  uint64
	shipper Shipper

	// badSlots marks log slots whose segments reported stuck bits on a
	// write; they are skipped by findFreeSlotLocked forever after.
	badSlots []bool
	retired  int

	// failAfter > 0 injects a crash after that many more device writes
	// issued through this manager; -1 means disabled.
	failAfter int
	writes    int

	txFree  []*Tx  // recycled transactions for Begin
	hdrBuf  []byte // Commit header scratch (one segment)
	slotBuf []byte // findFreeSlotLocked peek scratch (one segment)
}

// NewManager reserves logSlots transaction slots of maxEntries each at the
// top of the device's address space and returns the manager plus the
// number of data segments that remain usable [0, dataSegs).
func NewManager(dev *nvm.Device, logSlots, maxEntries int) (*Manager, int, error) {
	if logSlots <= 0 || maxEntries <= 0 {
		return nil, 0, fmt.Errorf("txn: logSlots %d / maxEntries %d must be positive: %w", logSlots, maxEntries, ErrBadConfig)
	}
	headerNeeds := hdrFixed + entrySize*maxEntries
	if headerNeeds > dev.SegmentSize() {
		return nil, 0, fmt.Errorf("txn: %d entries need a %d-byte header, segment is %d: %w",
			maxEntries, headerNeeds, dev.SegmentSize(), ErrBadConfig)
	}
	slotSegs := 1 + maxEntries
	logSegs := logSlots * slotSegs
	if logSegs >= dev.NumSegments() {
		return nil, 0, fmt.Errorf("txn: log (%d segments) does not fit device (%d): %w", logSegs, dev.NumSegments(), ErrBadConfig)
	}
	m := &Manager{
		dev:       dev,
		logStart:  dev.NumSegments() - logSegs,
		slotSegs:  slotSegs,
		maxEnt:    maxEntries,
		slots:     logSlots,
		badSlots:  make([]bool, logSlots),
		failAfter: -1,
	}
	return m, m.logStart, nil
}

// RetiredSlots returns how many log slots have been retired because their
// segments wore out.
func (m *Manager) RetiredSlots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retired
}

// retireSlotLocked permanently removes slot s from the free-slot rotation.
// Callers hold m.mu.
func (m *Manager) retireSlotLocked(s int) {
	if !m.badSlots[s] {
		m.badSlots[s] = true
		m.retired++
	}
}

// Format clears every log slot, discarding any pending transactions. Call
// it when creating a fresh store; use Recover instead to preserve and
// replay committed work after a crash.
func (m *Manager) Format() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	zero := make([]byte, m.dev.SegmentSize())
	for s := 0; s < m.slots; s++ {
		if err := m.dev.FillSegment(m.logStart+s*m.slotSegs, zero); err != nil {
			return err
		}
	}
	return nil
}

// hasMagic reports whether hdr carries a valid log header tag.
func hasMagic(hdr []byte) bool {
	return hdr[1] == logMagic[0] && hdr[2] == logMagic[1] && hdr[3] == logMagic[2] && hdr[4] == logMagic[3]
}

// SetShipper installs (or, with nil, removes) the commit-point observer.
// The swap synchronizes with in-flight commits: once SetShipper returns,
// no further calls to a previously installed shipper are in flight.
func (m *Manager) SetShipper(fn Shipper) {
	m.mu.Lock()
	m.shipper = fn
	m.mu.Unlock()
}

// FailAfter arms crash injection: the n-th subsequent device write issued
// by this manager fails with ErrCrashed, leaving the device in the state a
// real power failure would. Pass a negative n to disarm.
func (m *Manager) FailAfter(n int) {
	m.mu.Lock()
	m.failAfter = n
	m.writes = 0
	m.mu.Unlock()
}

// write issues one device write, honoring crash injection and surfacing
// worn-out cells (stuck bits left the stored data different from the
// intent) as an ErrWornOut-wrapped error. Callers hold m.mu.
func (m *Manager) write(addr int, data []byte) error {
	if m.failAfter >= 0 {
		m.writes++
		if m.writes > m.failAfter {
			return ErrCrashed
		}
	}
	res, err := m.dev.Write(addr, data)
	if err != nil {
		return err
	}
	if res.FaultyBits > 0 {
		return fmt.Errorf("txn: write left %d faulty bits at segment %d: %w", res.FaultyBits, addr, nvm.ErrWornOut)
	}
	return nil
}

// Tx is an open transaction. A Tx must not be used after a successful
// Commit: the manager recycles it for a later Begin (further calls fail
// with ErrAborted until then).
type Tx struct {
	m       *Manager
	id      uint64
	addrs   []int
	images  [][]byte
	staged  map[int]int // addr → index in addrs
	aborted bool
}

// Begin opens a transaction, reusing a recycled Tx when one is available
// so steady-state commit traffic does not allocate.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	var t *Tx
	if n := len(m.txFree); n > 0 {
		t = m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		t.id = id
		t.aborted = false
	} else {
		// lint:allow hotpathalloc — pool warm-up; recycled on every commit after the first
		t = &Tx{m: m, id: id, staged: make(map[int]int, m.maxEnt)}
	}
	m.mu.Unlock()
	return t
}

// releaseLocked resets a finished transaction and returns it to the reuse
// pool. The staged images keep their backing arrays (Write re-fills them
// with the append(buf[:0], ...) idiom). Callers hold m.mu.
func (m *Manager) releaseLocked(t *Tx) {
	clear(t.staged)
	t.addrs = t.addrs[:0]
	t.images = t.images[:0]
	t.aborted = true // poison until Begin hands it out again
	m.txFree = append(m.txFree, t) // lint:allow hotpathalloc — bounded by the number of concurrent transactions
}

// Write stages a full-segment image for addr. Staging the same address
// twice keeps the latest image. The data is copied.
func (t *Tx) Write(addr int, data []byte) error {
	if t.aborted {
		return fmt.Errorf("txn: write on aborted transaction: %w", ErrAborted)
	}
	if addr < 0 || addr >= t.m.logStart {
		return fmt.Errorf("txn: address %d outside data region [0,%d): %w", addr, t.m.logStart, nvm.ErrBadAddress)
	}
	if len(data) != t.m.dev.SegmentSize() {
		return fmt.Errorf("txn: image of %d bytes, want %d: %w", len(data), t.m.dev.SegmentSize(), nvm.ErrSegmentSize)
	}
	if i, ok := t.staged[addr]; ok {
		t.images[i] = append(t.images[i][:0], data...)
		return nil
	}
	if len(t.addrs) >= t.m.maxEnt {
		return ErrTxTooLarge
	}
	t.staged[addr] = len(t.addrs)
	t.addrs = append(t.addrs, addr) // lint:allow hotpathalloc — capacity bounded by maxEntries, reused across commits
	if len(t.images) < cap(t.images) {
		// Reclaim the buffer a previous incarnation left in the slice's
		// spare capacity.
		t.images = t.images[:len(t.images)+1]
		last := len(t.images) - 1
		t.images[last] = append(t.images[last][:0], data...)
	} else {
		// lint:allow hotpathalloc — image buffer warm-up; reused across commits afterwards
		t.images = append(t.images, append([]byte(nil), data...))
	}
	return nil
}

// Read returns the transaction's view of addr: the staged image if one
// exists, else the device content.
func (t *Tx) Read(addr int) ([]byte, error) {
	if i, ok := t.staged[addr]; ok {
		out := append([]byte(nil), t.images[i]...)
		return out, nil
	}
	return t.m.dev.Read(addr)
}

// Abort discards the transaction (nothing was persisted before Commit).
func (t *Tx) Abort() { t.aborted = true }

// Commit persists the transaction: stage → commit record → apply →
// invalidate. If an injected crash interrupts it, the device state is
// recoverable by Recover, which either completes the transaction (commit
// record persisted) or discards it entirely.
//
// A log slot whose segments report stuck bits during staging is retired
// and the transaction moves to another slot; when the worn segment is one
// of the transaction's home locations, the slot is invalidated (so
// recovery will not replay into dead cells) and the ErrWornOut-wrapped
// error is surfaced for the caller to place the data elsewhere.
func (t *Tx) Commit() error {
	if t.aborted {
		return fmt.Errorf("txn: commit on aborted transaction: %w", ErrAborted)
	}
	m := t.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(t.addrs) == 0 {
		m.releaseLocked(t)
		return nil
	}

	// 1+2. Stage the images and persist the commit record, retrying in a
	// fresh slot when the current one's cells are worn out. Finite slots
	// bound the loop: every worn slot is retired, and findFreeSlotLocked
	// fails with ErrLogFull once none remain.
	var base int
	for {
		slot, err := m.findFreeSlotLocked()
		if err != nil {
			return err
		}
		base = m.logStart + slot*m.slotSegs
		serr := m.stageSlotLocked(base, t)
		if serr == nil {
			break
		}
		if !errors.Is(serr, nvm.ErrWornOut) {
			return serr
		}
		m.retireSlotLocked(slot)
	}
	// The commit record is durable: this is the acknowledgement boundary,
	// so ship the entries to followers before the home applies (a crash
	// between here and the applies is recovered from the log, and the
	// shipped copy has already left the building).
	if m.shipper != nil {
		// Nil on unreplicated stores, so the single-store hot path never
		// takes this branch; a replicated store's shipper buffers the
		// entry for its followers, which inherently allocates.
		// lint:allow hotpathalloc
		m.shipper(t.id, t.addrs, t.images)
	}
	hdr := m.hdrBuf
	// 3. Apply to home locations.
	for i, a := range t.addrs {
		if aerr := m.write(a, t.images[i]); aerr != nil {
			if errors.Is(aerr, nvm.ErrWornOut) {
				hdr[0] = slotFree
				if ierr := m.write(base, hdr); ierr != nil {
					return fmt.Errorf("txn: slot invalidation after worn apply failed (%v): %w", ierr, aerr)
				}
			}
			return aerr
		}
	}
	// 4. Invalidate the slot.
	hdr[0] = slotFree
	if err := m.write(base, hdr); err != nil {
		return err
	}
	m.releaseLocked(t)
	return nil
}

// stageSlotLocked writes the transaction's images into the slot at base and
// persists its header: first in the staged state (addresses, image CRCs,
// count, header CRC), then a second small write flips the state byte to
// committed — the atomic commit point. On success m.hdrBuf holds the
// committed header. Callers hold m.mu.
func (m *Manager) stageSlotLocked(base int, t *Tx) error {
	for i, img := range t.images {
		if err := m.write(base+1+i, img); err != nil {
			return err
		}
	}
	if len(m.hdrBuf) != m.dev.SegmentSize() {
		m.hdrBuf = make([]byte, m.dev.SegmentSize()) // lint:allow hotpathalloc — one-time scratch sized at first commit
	}
	hdr := m.hdrBuf
	clear(hdr)
	hdr[0] = slotStaged
	copy(hdr[1:5], logMagic[:])
	binary.LittleEndian.PutUint16(hdr[5:], uint16(len(t.addrs)))
	binary.LittleEndian.PutUint64(hdr[7:], t.id)
	for i, a := range t.addrs {
		off := hdrFixed + entrySize*i
		binary.LittleEndian.PutUint32(hdr[off:], uint32(a))
		binary.LittleEndian.PutUint32(hdr[off+4:], crc32.Checksum(t.images[i], crcTable))
	}
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], headerCRC(hdr, len(t.addrs)))
	if err := m.write(base, hdr); err != nil {
		return err
	}
	hdr[0] = slotCommitted
	return m.write(base, hdr)
}

func (m *Manager) findFreeSlotLocked() (int, error) {
	if len(m.slotBuf) != m.dev.SegmentSize() {
		m.slotBuf = make([]byte, m.dev.SegmentSize()) // lint:allow hotpathalloc — one-time scratch sized at first commit
	}
	for s := 0; s < m.slots; s++ {
		if m.badSlots[s] {
			continue
		}
		if err := m.dev.PeekInto(m.logStart+s*m.slotSegs, m.slotBuf); err != nil {
			return 0, err
		}
		if m.slotBuf[0] == slotFree || !hasMagic(m.slotBuf) {
			return s, nil
		}
	}
	return 0, ErrLogFull
}

// Recover scans the log and finishes crash recovery: committed slots are
// re-applied (idempotent) and freed; staged (torn) slots are discarded.
// It returns the number of transactions replayed and discarded.
//
// Wear corruption is handled conservatively: a committed header whose
// checksum does not match is discarded rather than trusted, an entry whose
// staged image fails its CRC is skipped rather than replayed as garbage,
// and an entry whose home segment refuses the write is skipped (the data
// is lost, but nothing wrong is written). A slot whose own header cells
// are worn is retired from the rotation.
func (m *Manager) Recover() (replayed, discarded int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAfter = -1 // recovery itself is not crash-injected
	for s := 0; s < m.slots; s++ {
		base := m.logStart + s*m.slotSegs
		hdr, err := m.dev.Peek(base)
		if err != nil {
			return replayed, discarded, err
		}
		if !hasMagic(hdr) {
			// Pre-use garbage in the reserved region: clear it.
			if err := m.dev.FillSegment(base, make([]byte, m.dev.SegmentSize())); err != nil {
				return replayed, discarded, err
			}
			continue
		}
		switch hdr[0] {
		case slotFree:
			continue
		case slotCommitted:
			n := int(binary.LittleEndian.Uint16(hdr[5:]))
			if n > m.maxEnt || binary.LittleEndian.Uint32(hdr[hdrCRCOff:]) != headerCRC(hdr, n) {
				// The commit record itself is checksum-corrupt: its entry
				// table cannot be trusted, so the transaction is discarded.
				discarded++
				break
			}
			applied := 0
			for i := 0; i < n; i++ {
				off := hdrFixed + entrySize*i
				addr := int(binary.LittleEndian.Uint32(hdr[off:]))
				img, err := m.dev.Peek(base + 1 + i)
				if err != nil {
					return replayed, discarded, err
				}
				if crc32.Checksum(img, crcTable) != binary.LittleEndian.Uint32(hdr[off+4:]) {
					continue // checksum-corrupt staged image: skip the entry
				}
				if werr := m.write(addr, img); werr != nil {
					if errors.Is(werr, nvm.ErrWornOut) {
						continue // home segment is dead: the entry is lost
					}
					return replayed, discarded, werr
				}
				applied++
			}
			if applied > 0 {
				replayed++
			} else {
				discarded++
			}
		default: // staged or torn: discard
			discarded++
		}
		clearBuf := make([]byte, m.dev.SegmentSize())
		copy(clearBuf, hdr)
		clearBuf[0] = slotFree
		if werr := m.write(base, clearBuf); werr != nil {
			if errors.Is(werr, nvm.ErrWornOut) {
				// The slot's own header cells are worn; take it out of the
				// rotation instead of failing recovery.
				m.retireSlotLocked(s)
				continue
			}
			return replayed, discarded, werr
		}
	}
	return replayed, discarded, nil
}

// ApplyShipped applies a shipped transaction on a follower device with the
// full crash-atomic stage → commit → apply → invalidate cycle, preserving
// the leader's transaction id in the follower's log so the two redo
// streams stay correlated. The images are copied; the caller's slices are
// not retained. It is the follower-side entry point of log shipping: an
// entry either lands atomically or the follower's own Recover discards it.
func (m *Manager) ApplyShipped(id uint64, addrs []int, images [][]byte) error {
	if len(addrs) != len(images) {
		return fmt.Errorf("txn: shipped entry has %d addrs but %d images: %w", len(addrs), len(images), ErrBadConfig)
	}
	t := m.Begin()
	for i, addr := range addrs {
		if err := t.Write(addr, images[i]); err != nil {
			t.Abort()
			return err
		}
	}
	t.id = id
	return t.Commit()
}

// IterateCommitted walks the log's committed slots and yields each
// recoverable transaction — the same headers and CRC-verified images
// Recover would replay — without modifying the log. It is the log-shipping
// iterator: after a leader restart, the committed-but-unapplied tail is
// exactly what must be re-shipped to followers before new traffic flows
// (followers dedup by transaction id and record seq numbers, so re-
// shipping an already-applied entry is safe). Checksum-corrupt headers and
// images are skipped, mirroring Recover. The yielded slices are only valid
// during the callback; return false to stop early.
func (m *Manager) IterateCommitted(fn func(id uint64, addrs []int, images [][]byte) bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for s := 0; s < m.slots; s++ {
		base := m.logStart + s*m.slotSegs
		hdr, err := m.dev.Peek(base)
		if err != nil {
			return err
		}
		if !hasMagic(hdr) || hdr[0] != slotCommitted {
			continue
		}
		n := int(binary.LittleEndian.Uint16(hdr[5:]))
		if n > m.maxEnt || binary.LittleEndian.Uint32(hdr[hdrCRCOff:]) != headerCRC(hdr, n) {
			continue // corrupt commit record: Recover will discard it
		}
		id := binary.LittleEndian.Uint64(hdr[7:])
		addrs := make([]int, 0, n)
		images := make([][]byte, 0, n)
		for i := 0; i < n; i++ {
			off := hdrFixed + entrySize*i
			img, err := m.dev.Peek(base + 1 + i)
			if err != nil {
				return err
			}
			if crc32.Checksum(img, crcTable) != binary.LittleEndian.Uint32(hdr[off+4:]) {
				continue // corrupt staged image: Recover will skip it too
			}
			addrs = append(addrs, int(binary.LittleEndian.Uint32(hdr[off:])))
			images = append(images, img)
		}
		if len(addrs) == 0 {
			continue
		}
		if !fn(id, addrs, images) {
			return nil
		}
	}
	return nil
}
