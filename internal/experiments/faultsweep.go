package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("exp-fault", FaultSweep) }

// FaultSweep measures effective device lifetime under cell wear-out. The
// device is configured with a deliberately small endurance budget and a
// seeded stuck-at fault process (cells begin sticking once a segment's
// write count crosses the onset fraction), and the same update-heavy
// workload runs under the four corners of {E2-NVM, arbitrary} placement ×
// {retirement on, off}, with the retirement variants scrubbing
// incrementally.
//
// Reported per mode: how many puts the store served, when the first put
// failed, when capacity degradation (ErrDegraded) ended the run, how many
// segments were retired, and — the correctness bar — how many reads
// returned wrong bytes (must be zero everywhere; a read of a record the
// medium destroyed may surface ErrCorrupt and is counted as lost instead).
// Arbitrary placement hammers each hot key's segment in place, reaching
// the endurance cliff quickly; E2-NVM's pool rotation spreads the same
// traffic across the device, and retirement converts worn segments from
// put failures into capacity loss.
func FaultSweep(cfg RunConfig) (*Result, error) {
	const segSize = 64
	const k = 6
	numSegs := cfg.scaleInt(256, 64)
	maxOps := cfg.scaleInt(12000, 1600)
	keys := numSegs / 4

	vg := workload.NewValueGen(segSize-kvstore.RecordOverhead, k, 0.03, cfg.Seed)
	devCfg := nvm.DefaultConfig(segSize, numSegs)
	devCfg.EnduranceWrites = 120
	devCfg.Fault = nvm.FaultConfig{
		Seed:         cfg.Seed + 9,
		ProbPerWrite: 0.05,
		// Cells start failing after 50% of the endurance budget.
		OnsetFraction: 0.5,
		BitsPerFault:  2,
	}
	seed := func(dev *nvm.Device) error {
		for a := 0; a < numSegs; a++ {
			img := make([]byte, segSize)
			copy(img[kvstore.RecordOverhead:], vg.For(uint64(a)))
			if err := dev.FillSegment(a, img); err != nil {
				return err
			}
		}
		return nil
	}

	// One model shared by every mode: identical clustering decisions.
	sampleDev, err := nvm.NewDevice(devCfg)
	if err != nil {
		return nil, err
	}
	if err := seed(sampleDev); err != nil {
		return nil, err
	}
	imgs := make([][]float64, numSegs)
	for a := 0; a < numSegs; a++ {
		b, err := sampleDev.Peek(a)
		if err != nil {
			return nil, err
		}
		imgs[a] = core.BytesToBits(b)
	}
	model, err := core.Train(imgs, core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	modes := []struct {
		name      string
		placement kvstore.Placement
		retire    bool
	}{
		{"e2nvm + retirement", kvstore.PlaceE2NVM, true},
		{"e2nvm, no retirement", kvstore.PlaceE2NVM, false},
		{"arbitrary + retirement", kvstore.PlaceArbitrary, true},
		{"arbitrary, no retirement", kvstore.PlaceArbitrary, false},
	}
	table := stats.NewTable("mode", "served_puts", "first_fail_op", "degraded_at",
		"retired", "worn_writes", "relocated", "lost_reads", "wrong_reads")
	for _, mode := range modes {
		dev, err := nvm.NewDevice(devCfg)
		if err != nil {
			return nil, err
		}
		if err := seed(dev); err != nil {
			return nil, err
		}
		st, err := kvstore.OpenWith(dev, model, kvstore.Options{
			Placement:         mode.placement,
			DisableRetirement: !mode.retire,
			DegradeThreshold:  0.25,
		})
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		r := rand.New(rand.NewSource(cfg.Seed + 3))
		shadow := make([][]byte, keys)
		served, firstFail, degradedAt := 0, -1, -1
		wrong, lost := 0, 0
		for op := 0; op < maxOps; op++ {
			key := uint64(r.Intn(keys))
			v := vg.ForVersion(key, op)
			if perr := st.Put(key, v); perr != nil {
				switch {
				case errors.Is(perr, kvstore.ErrDegraded):
					if degradedAt < 0 {
						degradedAt = op
					}
				case errors.Is(perr, kvstore.ErrWornOut), errors.Is(perr, kvstore.ErrNoSpace):
					// A worn or exhausted target: the put is refused, the
					// shadow keeps the previous value.
				default:
					return nil, perr
				}
				if firstFail < 0 {
					firstFail = op
				}
				if degradedAt >= 0 {
					break // capacity is gone: end of the device's service life
				}
			} else {
				shadow[key] = append(shadow[key][:0], v...)
				served++
			}
			if mode.retire && op%64 == 63 {
				if _, serr := st.Scrub(numSegs / 8); serr != nil {
					return nil, serr
				}
			}
			if op%251 == 250 {
				w, l := verifyShadow(st, shadow)
				wrong += w
				lost += l
			}
		}
		w, l := verifyShadow(st, shadow)
		wrong += w
		lost += l
		if wrong != 0 {
			return nil, fmt.Errorf("experiments: %s served %d wrong reads", mode.name, wrong)
		}
		sst := st.Stats()
		table.AddRow(mode.name, served, firstFail, degradedAt,
			sst.Retired, sst.WornWrites, sst.Relocations, lost, wrong)
	}
	return &Result{
		ID:    "exp-fault",
		Title: "Fault sweep: lifetime under cell wear-out, by placement and retirement",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d ops over %d segments × %d B, endurance %.0f writes/segment, fault onset at %.0f%%",
				maxOps, numSegs, segSize, devCfg.EnduranceWrites, devCfg.Fault.OnsetFraction*100),
			"first_fail_op / degraded_at are op indices (-1: never); wrong_reads must be 0 in every mode",
			"arbitrary placement updates hot keys in place and hits the endurance cliff first; E2-NVM's pool rotation spreads wear; retirement turns worn segments into capacity loss instead of put failures",
		},
	}, nil
}

// verifyShadow reads every live key back and classifies mismatches: a read
// serving bytes that differ from the reference is wrong (the failure mode
// the CRC pipeline must prevent); a read surfacing ErrCorrupt is lost but
// honest.
func verifyShadow(st *kvstore.Store, shadow [][]byte) (wrong, lost int) {
	for key := range shadow {
		want := shadow[key]
		if want == nil {
			continue
		}
		got, ok, err := st.Get(uint64(key))
		if err != nil {
			if errors.Is(err, kvstore.ErrCorrupt) {
				lost++
				continue
			}
			wrong++
			continue
		}
		if !ok || !bytes.Equal(got, want) {
			wrong++
		}
	}
	return wrong, lost
}
