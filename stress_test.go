package e2nvm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentStress hammers one store from many goroutines mixing every
// public entry point. Each writer owns a disjoint key stripe and mirrors
// its own writes, so any cross-thread interference shows up as a wrong
// read; -race covers the memory-model side. Runs on both an unsharded and
// a sharded store.
func TestConcurrentStress(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := shardedConfig(shards)
			cfg.NumSegments = 192 * shards
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			const (
				workers = 4
				keysPer = 32
				rounds  = 40
			)
			// Worker w owns keys [w*keysPer, (w+1)*keysPer). Values carry
			// the key and a generation stamp so a read can verify it got
			// some complete version of its own key's value.
			encode := func(buf []byte, key uint64, gen uint32) []byte {
				buf = buf[:0]
				buf = binary.LittleEndian.AppendUint64(buf, key)
				return binary.LittleEndian.AppendUint32(buf, gen)
			}
			check := func(key uint64, v []byte) error {
				if len(v) != 12 {
					return fmt.Errorf("key %d: value len %d", key, len(v))
				}
				if got := binary.LittleEndian.Uint64(v); got != key {
					return fmt.Errorf("key %d: value stamped for key %d", key, got)
				}
				return nil
			}

			var wg sync.WaitGroup
			errs := make(chan error, workers+3)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w * keysPer)
					live := map[uint64]bool{}
					buf := make([]byte, 0, 16)
					for r := 0; r < rounds; r++ {
						for i := uint64(0); i < keysPer; i++ {
							k := base + i
							switch (r + int(i)) % 4 {
							case 0, 1: // write / overwrite
								if err := s.Put(k, encode(buf, k, uint32(r))); err != nil {
									errs <- fmt.Errorf("Put(%d): %w", k, err)
									return
								}
								live[k] = true
							case 2: // read own key
								v, ok, err := s.GetInto(k, buf)
								if err != nil {
									errs <- fmt.Errorf("GetInto(%d): %w", k, err)
									return
								}
								if ok != live[k] {
									errs <- fmt.Errorf("GetInto(%d) found=%v, want %v", k, ok, live[k])
									return
								}
								if ok {
									if err := check(k, v); err != nil {
										errs <- err
										return
									}
									buf = v
								}
							case 3: // delete
								ok, err := s.Delete(k)
								if err != nil {
									errs <- fmt.Errorf("Delete(%d): %w", k, err)
									return
								}
								if ok != live[k] {
									errs <- fmt.Errorf("Delete(%d) found=%v, want %v", k, ok, live[k])
									return
								}
								delete(live, k)
							}
						}
					}
					// Settle each stripe into a known final state: every
					// key present with its final generation.
					for i := uint64(0); i < keysPer; i++ {
						k := base + i
						if err := s.Put(k, encode(buf, k, rounds)); err != nil {
							errs <- fmt.Errorf("final Put(%d): %w", k, err)
							return
						}
					}
				}(w)
			}

			// Background readers exercising the aggregate entry points
			// while the writers run.
			stop := make(chan struct{})
			var bg sync.WaitGroup
			bg.Add(3)
			go func() { // scanner
				defer bg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := s.Scan(0, workers*keysPer, func(k uint64, v []byte) bool {
						if err := check(k, v); err != nil {
							errs <- fmt.Errorf("scan: %w", err)
							return false
						}
						return true
					})
					if err != nil {
						errs <- fmt.Errorf("Scan: %w", err)
						return
					}
				}
			}()
			go func() { // scrubber + metrics
				defer bg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := s.Scrub(32); err != nil {
						errs <- fmt.Errorf("Scrub: %w", err)
						return
					}
					_ = s.Metrics()
					_ = s.Health()
					_ = s.Len()
				}
			}()
			go func() { // retrainer
				defer bg.Done()
				for i := 0; i < 2; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := s.Retrain(); err != nil {
						errs <- fmt.Errorf("Retrain: %w", err)
						return
					}
				}
			}()

			wg.Wait()
			close(stop)
			bg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if t.Failed() {
				return
			}

			// Final state: every stripe fully present and correct.
			if s.Len() != workers*keysPer {
				t.Fatalf("final Len = %d, want %d", s.Len(), workers*keysPer)
			}
			for k := uint64(0); k < workers*keysPer; k++ {
				v, ok, err := s.Get(k)
				if err != nil || !ok {
					t.Fatalf("final Get(%d) = (%v,%v)", k, ok, err)
				}
				if err := check(k, v); err != nil {
					t.Fatal(err)
				}
				if gen := binary.LittleEndian.Uint32(v[8:]); gen != rounds {
					t.Fatalf("key %d generation %d, want %d", k, gen, rounds)
				}
			}
		})
	}
}

// TestConcurrentStressZipfCache hammers a replicated, cache-enabled store
// with a zipfian mixed workload: hot keys are read over and over (served
// from DRAM) while their owners keep overwriting them, with scrubbing,
// retraining, and a mid-run leader fence (failover) underneath. Each key
// has a single writer publishing the highest acknowledged generation, so
// any cache read older than an acknowledged write — a stale hit surviving
// invalidation — is detected, under -race for the memory-model side.
func TestConcurrentStressZipfCache(t *testing.T) {
	cfg := replConfig(2, 2)
	cfg.NumSegments = 128 * 2
	cfg.CacheEnabled = true
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		workers = 4
		keysPer = 16
		rounds  = 30
		nKeys   = workers * keysPer
	)
	// acked[k] is the highest generation whose Put has returned. Put
	// invalidates the cache before acknowledging, so once a reader loads
	// acked[k] any subsequent read must observe that generation or newer.
	acked := make([]atomic.Uint32, nKeys)
	encode := func(buf []byte, key uint64, gen uint32) []byte {
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint64(buf, key)
		return binary.LittleEndian.AppendUint32(buf, gen)
	}
	check := func(key uint64, floor uint32, v []byte) error {
		if len(v) != 12 {
			return fmt.Errorf("key %d: value len %d", key, len(v))
		}
		if got := binary.LittleEndian.Uint64(v); got != key {
			return fmt.Errorf("key %d: value stamped for key %d", key, got)
		}
		if gen := binary.LittleEndian.Uint32(v[8:]); gen < floor {
			return fmt.Errorf("key %d: stale read: generation %d < acknowledged %d", key, gen, floor)
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers+4)
	fence := make(chan struct{}) // closed by writer 0 at the half-way mark
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * keysPer)
			r := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(r, 1.3, 1, keysPer-1)
			gens := make([]uint32, keysPer)
			buf := make([]byte, 0, 16)
			for round := 0; round < rounds; round++ {
				if w == 0 && round == rounds/2 {
					close(fence)
				}
				for i := 0; i < keysPer; i++ {
					off := zipf.Uint64() // hot-skewed pick within the stripe
					k := base + off
					if i%3 == 0 { // overwrite a (likely hot) key
						gens[off]++
						if err := s.Put(k, encode(buf, k, gens[off])); err != nil {
							errs <- fmt.Errorf("Put(%d): %w", k, err)
							return
						}
						acked[k].Store(gens[off])
						continue
					}
					floor := acked[k].Load()
					v, ok, err := s.GetInto(k, buf)
					if err != nil {
						errs <- fmt.Errorf("GetInto(%d): %w", k, err)
						return
					}
					if !ok {
						if floor > 0 {
							errs <- fmt.Errorf("GetInto(%d) lost acknowledged generation %d", k, floor)
							return
						}
						continue
					}
					if err := check(k, floor, v); err != nil {
						errs <- err
						return
					}
					buf = v
				}
			}
			// Settle the stripe: every key present at a final generation.
			for i := uint64(0); i < keysPer; i++ {
				k := base + i
				gens[i] = rounds * keysPer // above anything the loop produced
				if err := s.Put(k, encode(buf, k, gens[i])); err != nil {
					errs <- fmt.Errorf("final Put(%d): %w", k, err)
					return
				}
				acked[k].Store(gens[i])
			}
		}(w)
	}

	stop := make(chan struct{})
	var bg sync.WaitGroup
	bg.Add(3)
	go func() { // cross-stripe zipfian reader: cache hits vs acked floors
		defer bg.Done()
		r := rand.New(rand.NewSource(99))
		zipf := rand.NewZipf(r, 1.3, 1, nKeys-1)
		buf := make([]byte, 0, 16)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := zipf.Uint64()
			floor := acked[k].Load()
			v, ok, err := s.GetInto(k, buf)
			if err != nil {
				errs <- fmt.Errorf("reader GetInto(%d): %w", k, err)
				return
			}
			if !ok {
				if floor > 0 {
					errs <- fmt.Errorf("reader GetInto(%d) lost acknowledged generation %d", k, floor)
					return
				}
				continue
			}
			if err := check(k, floor, v); err != nil {
				errs <- fmt.Errorf("reader: %w", err)
				return
			}
			buf = v
		}
	}()
	go func() { // scrubber + metrics
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Scrub(16); err != nil {
				errs <- fmt.Errorf("Scrub: %w", err)
				return
			}
			_ = s.Metrics()
			_ = s.Health()
		}
	}()
	go func() { // retrainer, then a mid-run leader fence (failover)
		defer bg.Done()
		if err := s.Retrain(); err != nil {
			errs <- fmt.Errorf("Retrain: %w", err)
			return
		}
		select {
		case <-fence:
		case <-stop:
			return
		}
		for addr := s.starts[0]; addr < s.starts[1]; addr++ {
			if err := s.FailSegment(addr); err != nil {
				errs <- fmt.Errorf("FailSegment(%d): %w", addr, err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	bg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	// Final coherence pass: every key's cached read matches the store's
	// authoritative bytes and carries at least its acknowledged generation.
	for k := uint64(0); k < nKeys; k++ {
		cv, cok, cerr := s.Get(k)
		uv, uok, uerr := s.uncachedGetInto(k, nil)
		if cerr != nil || uerr != nil || cok != uok || !bytes.Equal(cv, uv) {
			t.Fatalf("cache/store divergence on %d: (%q,%v,%v) vs (%q,%v,%v)", k, cv, cok, cerr, uv, uok, uerr)
		}
		if !cok {
			t.Fatalf("final Get(%d) missing", k)
		}
		if err := check(k, acked[k].Load(), cv); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.CacheHits == 0 {
		t.Fatalf("zipfian workload produced no cache hits: %+v", m)
	}
}
