package experiments

import (
	"fmt"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/padding"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig14", Fig14) }

// padWord is the word size (bits) the paper's "bit flips per word" metric
// divides by.
const padWord = 32

// Fig14 reproduces Figure 14: the average number of bit flips per word
// after applying each of the seven padding types (0, 1, rand, IB, DB, MB,
// LB) at the three padding positions. The model is trained on 80% of the
// dataset at full width; test items have one third of their bits cropped
// at the position the padding restores. Expected ordering: learned >
// data-aware (IB/DB/MB) > data-agnostic (0/1/rand).
func Fig14(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	n := cfg.scaleInt(500, 150)
	const k = 8

	sets := []*workload.Dataset{
		workload.MNISTLike(n, bits, cfg.Seed),
		workload.CCTVLike(n, bits, cfg.Seed+1),
	}
	table := stats.NewTable("dataset", "position", "type", "flips/word")
	notes := []string{"model trained on 80% at full width; test items cropped by 1/2 at the padding position"}

	for _, ds := range sets {
		split := len(ds.Items) * 8 / 10
		train := ds.Items[:split]
		testFull := ds.Items[split:]
		seedImgs := toBytesAll(train, segSize)

		model, err := core.Train(train, core.Config{
			InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
			Epochs: 10, JointEpochs: 2, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		// One learned-padding LSTM per dataset, shared across positions.
		lstmNet, err := padding.TrainLearnedModel(train, 32, 8, 24, cfg.scaleInt(30, 12), cfg.Seed+2)
		if err != nil {
			return nil, err
		}

		for _, loc := range []padding.Location{padding.Begin, padding.Middle, padding.End} {
			for _, kind := range padding.Types() {
				p := padding.New(loc, kind, cfg.Seed+3)
				for _, it := range train {
					p.Observe(it)
				}
				p.SetMemoryDensity(func() float64 { return densityOf(train) })
				if kind == padding.Learned {
					p.SetModel(lstmNet, 32, 8)
				}
				model.SetPadder(p)

				dev, err := seededDevice(nvm.DefaultConfig(segSize, len(train)), seedImgs)
				if err != nil {
					return nil, err
				}
				placerP, err := newClusterPlacer(model, k, dev, addrRange(len(train)))
				if err != nil {
					return nil, err
				}
				totalFlips, words := 0, 0
				for _, full := range testFull {
					item := crop(full, loc)
					cluster := mustPredict(model.PredictPadded(item))
					addr, _, ok := placerP.pool.Get(cluster)
					if !ok {
						return nil, fmt.Errorf("fig14: pool exhausted")
					}
					old, err := dev.Peek(addr)
					if err != nil {
						return nil, err
					}
					// Only the actual data bits are written (padded bits
					// are never stored): flips over the data region.
					oldBits := core.BytesToBits(old)[:len(item)]
					totalFlips += bitvec.HammingFloats(oldBits, item)
					words += len(item) / padWord
					// Write the region back and recycle the segment.
					img := append([]float64(nil), core.BytesToBits(old)...)
					copy(img[:len(item)], item)
					if err := dev.FillSegment(addr, core.BitsToBytes(img)); err != nil {
						return nil, err
					}
					placerP.recycle(addr, core.BitsToBytes(img))
				}
				table.AddRow(ds.Name, loc.String(), kind.String(), float64(totalFlips)/float64(words))
			}
		}
	}
	return &Result{
		ID:    "fig14",
		Title: "Bit flips per word for 7 padding types × 3 positions",
		Table: table,
		Notes: notes,
	}, nil
}

// crop removes half of the item's bits at the position the padding
// strategy will restore. (The paper crops one third of its real images;
// the synthetic datasets are more separable, so a deeper crop is needed to
// make the padding decision load-bearing.)
func crop(item []float64, loc padding.Location) []float64 {
	n := len(item)
	cut := n / 2
	switch loc {
	case padding.Begin: // padding goes before the data → the head is missing
		return append([]float64(nil), item[cut:]...)
	case padding.End: // padding goes after the data → the tail is missing
		return append([]float64(nil), item[:n-cut]...)
	default: // Middle/Edges: the middle third is missing
		head := item[:(n-cut)/2]
		tail := item[n-(n-cut)+len(head):]
		out := append([]float64(nil), head...)
		return append(out, tail...)
	}
}

func densityOf(items [][]float64) float64 {
	ones, total := 0, 0
	for _, it := range items {
		for _, b := range it {
			total++
			if b >= 0.5 {
				ones++
			}
		}
	}
	if total == 0 {
		return 0.5
	}
	return float64(ones) / float64(total)
}
