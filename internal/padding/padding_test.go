package padding

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// d1 is the paper's running example input (Figure 5 / Table 1).
var d1 = []float64{0, 0, 0, 1}

func bitsOf(v []float64) []int {
	out := make([]int, len(v))
	for i, b := range v {
		if b >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

func eq(a []int, b ...int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperFigure5ZeroAndOne reproduces the deterministic rows of the
// paper's Figure 5 for the input d1 = [0,0,0,1] padded to 8 bits.
func TestPaperFigure5ZeroAndOne(t *testing.T) {
	cases := []struct {
		loc  Location
		kind Type
		want []int
	}{
		{Begin, Zero, []int{0, 0, 0, 0, 0, 0, 0, 1}},
		{Begin, One, []int{1, 1, 1, 1, 0, 0, 0, 1}},
		{Middle, Zero, []int{0, 0, 0, 0, 0, 0, 0, 1}},
		{Middle, One, []int{0, 0, 1, 1, 1, 1, 0, 1}},
		{End, Zero, []int{0, 0, 0, 1, 0, 0, 0, 0}},
		{End, One, []int{0, 0, 0, 1, 1, 1, 1, 1}},
	}
	for _, c := range cases {
		p := New(c.loc, c.kind, 1)
		got := bitsOf(p.Pad(d1, 8))
		if !eq(got, c.want...) {
			t.Errorf("%v/%v: got %v, want %v", c.loc, c.kind, got, c.want)
		}
	}
}

func TestLocationStrings(t *testing.T) {
	names := map[Location]string{Begin: "begin", Middle: "middle", End: "end", Edges: "edges"}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("Location %d String = %q", int(l), l.String())
		}
	}
	if len(Locations()) != 4 {
		t.Fatal("Locations() wrong length")
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{Zero: "0", One: "1", Random: "rand", InputBased: "IB", DatasetBased: "DB", MemoryBased: "MB", Learned: "LB"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Type %d String = %q", int(k), k.String())
		}
	}
	if len(Types()) != 7 {
		t.Fatal("Types() wrong length")
	}
}

func TestPadExactWidthIsCopy(t *testing.T) {
	p := New(Begin, One, 1)
	out := p.Pad(d1, 4)
	if !eq(bitsOf(out), 0, 0, 0, 1) {
		t.Fatalf("exact width pad = %v", out)
	}
	out[0] = 1
	if d1[0] != 0 {
		t.Fatal("Pad aliases input")
	}
}

func TestPadOversizedPanics(t *testing.T) {
	p := New(Begin, Zero, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Pad(make([]float64, 10), 8)
}

func TestEdgesLocation(t *testing.T) {
	p := New(Edges, One, 1)
	got := bitsOf(p.Pad(d1, 8))
	// q=4, half=2 → [1,1, data, 1,1]
	if !eq(got, 1, 1, 0, 0, 0, 1, 1, 1) {
		t.Fatalf("edges pad = %v", got)
	}
}

func TestEdgesOddSplit(t *testing.T) {
	p := New(Edges, One, 1)
	got := bitsOf(p.Pad([]float64{0, 0, 0}, 8))
	// q=5, half=2 → 2 ones before, 3 after
	if !eq(got, 1, 1, 0, 0, 0, 1, 1, 1) {
		t.Fatalf("edges odd pad = %v", got)
	}
}

func TestInputBasedDensity(t *testing.T) {
	p := New(End, InputBased, 7)
	// Input of all ones → IB padding must be all ones.
	ones := []float64{1, 1, 1, 1}
	got := bitsOf(p.Pad(ones, 12))
	for _, b := range got {
		if b != 1 {
			t.Fatalf("IB with density 1 produced a zero: %v", got)
		}
	}
	// Input of all zeros → all-zero padding.
	got = bitsOf(p.Pad([]float64{0, 0, 0, 0}, 12))
	for _, b := range got {
		if b != 0 {
			t.Fatalf("IB with density 0 produced a one: %v", got)
		}
	}
}

func TestDatasetBasedUsesObservedDensity(t *testing.T) {
	p := New(End, DatasetBased, 3)
	for i := 0; i < 50; i++ {
		p.Observe([]float64{1, 1, 1, 1}) // dataset is all ones
	}
	got := bitsOf(p.Pad([]float64{0, 0}, 10))
	for i := 2; i < 10; i++ {
		if got[i] != 1 {
			t.Fatalf("DB with all-ones dataset emitted a zero: %v", got)
		}
	}
}

func TestDatasetBasedDefaultsHalf(t *testing.T) {
	p := New(End, DatasetBased, 5)
	// No observations: density 0.5; over many bits both values appear.
	got := bitsOf(p.Pad([]float64{0}, 201))
	ones := 0
	for _, b := range got[1:] {
		ones += b
	}
	if ones == 0 || ones == 200 {
		t.Fatalf("unobserved DB padding not ~Bernoulli(0.5): %d ones", ones)
	}
}

func TestMemoryBasedUsesCallback(t *testing.T) {
	p := New(Begin, MemoryBased, 5)
	p.SetMemoryDensity(func() float64 { return 1 })
	got := bitsOf(p.Pad([]float64{0, 0}, 8))
	for i := 0; i < 6; i++ {
		if got[i] != 1 {
			t.Fatalf("MB with density 1 emitted zero: %v", got)
		}
	}
}

func TestMemoryBasedDefault(t *testing.T) {
	p := New(Begin, MemoryBased, 5)
	got := bitsOf(p.Pad([]float64{0}, 401))
	ones := 0
	for _, b := range got[:400] {
		ones += b
	}
	if ones < 120 || ones > 280 {
		t.Fatalf("default MB density not ≈0.5: %d/400 ones", ones)
	}
}

func TestLearnedWithoutModelPanics(t *testing.T) {
	p := New(End, Learned, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Pad(d1, 8)
}

// TestLearnedPaddingReproducesPattern trains the sliding-window LSTM on
// items whose bits alternate 1,0,1,0,… and checks the generated padding
// continues the pattern.
func TestLearnedPaddingReproducesPattern(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	_ = r
	items := make([][]float64, 40)
	for i := range items {
		item := make([]float64, 64)
		for j := range item {
			item[j] = float64((j + i%2) % 2)
		}
		items[i] = item
	}
	net, err := TrainLearnedModel(items, 16, 4, 12, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := New(End, Learned, 1)
	p.SetModel(net, 16, 4)
	// Item ends ...0,1 → padding should continue 0,1,0,1.
	data := make([]float64, 32)
	for j := range data {
		data[j] = float64(j % 2) // 0,1,0,1,...,0,1
	}
	out := bitsOf(p.Pad(data, 44))
	for i := 32; i < 44; i++ {
		want := i % 2
		if out[i] != want {
			t.Fatalf("learned pad bit %d = %d, want %d (pattern continuation): %v", i, out[i], want, out[32:])
		}
	}
}

func TestTrainLearnedModelValidation(t *testing.T) {
	if _, err := TrainLearnedModel(nil, 0, 8, 10, 5, 1); err == nil {
		t.Fatal("expected error for invalid window")
	}
	short := [][]float64{make([]float64, 4)}
	if _, err := TrainLearnedModel(short, 64, 8, 10, 5, 1); err == nil {
		t.Fatal("expected error when items are too short")
	}
}

// Property: padded output always has width w, contains the original data
// bits in order at the location's offsets, and Pad never mutates its input.
func TestPadPreservesData(t *testing.T) {
	f := func(seed int64, locByte, kindByte, sizeByte uint8) bool {
		loc := Locations()[int(locByte)%4]
		kinds := []Type{Zero, One, Random, InputBased, DatasetBased, MemoryBased}
		kind := kinds[int(kindByte)%len(kinds)]
		w := 32
		n := int(sizeByte)%w + 1
		r := rand.New(rand.NewSource(seed))
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(r.Intn(2))
		}
		orig := append([]float64(nil), data...)
		p := New(loc, kind, seed)
		out := p.Pad(data, w)
		if len(out) != w {
			return false
		}
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		// Recover the data bits from the padded layout.
		q := w - n
		var recovered []float64
		switch loc {
		case Begin:
			recovered = out[q:]
		case End:
			recovered = out[:n]
		case Middle:
			half := n / 2
			recovered = append(append([]float64(nil), out[:half]...), out[half+q:]...)
		case Edges:
			recovered = out[q/2 : q/2+n]
		}
		for i := range data {
			if recovered[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPadIB(b *testing.B) {
	p := New(End, InputBased, 1)
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i % 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Pad(data, 256)
	}
}

// TestPadBytesToMatchesFloatPath: for every byte-capable type, PadBytesTo
// from a fresh seed must produce exactly the bits PadTo produces from the
// same seed — same RNG draws, same order, packed LSB-first.
func TestPadBytesToMatchesFloatPath(t *testing.T) {
	for _, kind := range []Type{Zero, One, Random, InputBased, DatasetBased, MemoryBased} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			data := make([]byte, 5)
			for trial := 0; trial < 20; trial++ {
				rng.Read(data)
				pf := New(End, kind, 77)
				pb := New(End, kind, 77)
				pf.SetDatasetStats(13, 40)
				pb.SetDatasetStats(13, 40)
				pf.SetMemoryDensity(func() float64 { return 0.3 })
				pb.SetMemoryDensity(func() float64 { return 0.3 })
				if !pb.CanPadBytes() {
					t.Fatalf("CanPadBytes false for End/%v", kind)
				}
				// Drain both padders twice so RNG state advances in lockstep.
				for round := 0; round < 2; round++ {
					bits := make([]float64, len(data)*8)
					for i := range bits {
						bits[i] = float64(data[i>>3] >> (uint(i) & 7) & 1)
					}
					want := pf.PadTo(nil, bits, 96)
					got, err := pb.PadBytesTo(nil, data, 96)
					if err != nil {
						t.Fatalf("PadBytesTo: %v", err)
					}
					for i, wv := range want {
						gv := got[i>>3] >> (uint(i) & 7) & 1
						if byte(wv) != gv {
							t.Fatalf("round %d bit %d: float path %v, byte path %d", round, i, wv, gv)
						}
					}
				}
			}
		})
	}
}

// TestPadBytesToRejectsMisuse: unsupported shapes and strategies fail
// with an error, never a wrong image.
func TestPadBytesToRejectsMisuse(t *testing.T) {
	if _, err := New(Begin, Zero, 1).PadBytesTo(nil, []byte{1}, 16); err == nil {
		t.Fatal("Begin placement must be rejected")
	}
	if _, err := New(End, Learned, 1).PadBytesTo(nil, []byte{1}, 16); err == nil {
		t.Fatal("Learned type must be rejected")
	}
	if _, err := New(End, Zero, 1).PadBytesTo(nil, []byte{1}, 12); err == nil {
		t.Fatal("non-byte-aligned width must be rejected")
	}
	if _, err := New(End, Zero, 1).PadBytesTo(nil, []byte{1, 2, 3}, 16); err == nil {
		t.Fatal("oversized item must be rejected")
	}
}
