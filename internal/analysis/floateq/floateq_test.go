package floateq

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "floateq")
}
