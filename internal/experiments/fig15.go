package experiments

import (
	"fmt"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/padding"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig15", Fig15) }

// Fig15 reproduces Figure 15: bit flips per word when different
// percentages of the CCTV frame are padded by the learned padding scheme.
// 0% padding (full frames) is the floor; small padded fractions (~10%)
// cost little; accuracy degrades as the padded fraction grows.
func Fig15(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	frames := cfg.scaleInt(600, 200)
	const k = 6

	ds := workload.CCTVLike(frames, bits, cfg.Seed)
	split := len(ds.Items) * 8 / 10
	train := ds.Items[:split]
	test := ds.Items[split:]
	seedImgs := toBytesAll(train, segSize)

	model, err := core.Train(train, core.Config{
		InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 10, JointEpochs: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	lstmNet, err := padding.TrainLearnedModel(train, 32, 8, 10, cfg.scaleInt(20, 8), cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	table := stats.NewTable("padded_%", "flips/word")
	var series stats.Series
	series.Name = "flips_per_word_vs_padded_fraction"
	for _, pct := range []int{0, 10, 20, 30, 40, 50} {
		p := padding.New(padding.End, padding.Learned, cfg.Seed+2)
		p.SetModel(lstmNet, 32, 8)
		model.SetPadder(p)

		dev, err := seededDevice(nvm.DefaultConfig(segSize, len(train)), seedImgs)
		if err != nil {
			return nil, err
		}
		cp, err := newClusterPlacer(model, k, dev, addrRange(len(train)))
		if err != nil {
			return nil, err
		}
		totalFlips, words := 0, 0
		for _, full := range test {
			keep := bits * (100 - pct) / 100
			item := append([]float64(nil), full[:keep]...)
			cluster := mustPredict(model.PredictPadded(item))
			addr, _, ok := cp.pool.Get(cluster)
			if !ok {
				return nil, fmt.Errorf("fig15: pool exhausted")
			}
			old, err := dev.Peek(addr)
			if err != nil {
				return nil, err
			}
			oldBits := core.BytesToBits(old)[:len(item)]
			totalFlips += bitvec.HammingFloats(oldBits, item)
			words += len(item) / padWord
			img := append([]float64(nil), core.BytesToBits(old)...)
			copy(img[:len(item)], item)
			if err := dev.FillSegment(addr, core.BitsToBytes(img)); err != nil {
				return nil, err
			}
			cp.recycle(addr, core.BitsToBytes(img))
		}
		fw := float64(totalFlips) / float64(words)
		table.AddRow(pct, fw)
		series.Add(float64(pct), fw)
	}
	return &Result{
		ID:     "fig15",
		Title:  "Bit flips per word vs padded fraction (learned padding, CCTV)",
		Table:  table,
		Series: []stats.Series{series},
		Notes: []string{
			fmt.Sprintf("%d frames of %d bits, k=%d; flips measured on written bits only", frames, bits, k),
			"expected shape: 0%% padding is best; ≤10%% costs little; accuracy degrades as padding grows",
		},
	}, nil
}
