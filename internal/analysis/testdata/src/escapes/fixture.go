// Package escapes is the golden fixture for the escapes analyzer: the
// sibling gcdiag.txt holds canned compiler output whose positions point
// into this file, so the test exercises resolution, reachability,
// cold-range and lint:allow handling without invoking a compiler.
package escapes

// Serve is the hot entry point; gcdiag.txt reports a deliberate heap
// escape on its make call and a moved-to-heap in the helper it calls.
// lint:hotpath
func Serve(dst []byte, n int) int { // want "hot path escapes\.Serve reaches compiler-verified escape \(tmp moved to heap\) in escapes\.fill"
	if n < 0 {
		msg := make([]byte, 32) // cold: the block ends in panic, so this escape is exempt
		panic(string(msg))
	}
	buf := make([]byte, n) // want "compiler: make\(\[\]byte, n\) escapes to heap on hot path escapes\.Serve"
	scratch := make([]byte, 8) // lint:allow hotpathalloc — amortized via pool in real code
	_ = scratch
	spare := grow(nil, n) // inlined copy of grow's allowed make: silent
	_ = spare
	q := box(n) // want "compiler: n \(inlined from box\) moved to heap on hot path escapes\.Serve"
	_ = q
	return fill(dst, buf)
}

// grow is an amortized scratch helper: its make is allowed where it is
// written, and that allow must carry to inlined copies at call sites.
func grow(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n) // lint:allow hotpathalloc — scratch grows once
	}
	return s[:n]
}

// box leaks its argument and carries no allow: the inlined copy at the
// call site stays a finding, attributed back to the callee by name.
func box(n int) *int {
	return &n
}

// fill is reached from Serve; its moved-to-heap diagnostic is attributed
// back to the root.
func fill(dst, src []byte) int {
	tmp := 0
	for i := range src {
		tmp += int(src[i])
	}
	p := &tmp // forces tmp to the heap in the canned output
	_ = p
	if len(dst) > 0 {
		dst[0] = byte(tmp)
	}
	return tmp
}

// Quantize is a kernel root; its escape is reported with kernel wording.
// lint:kernelpure
func Quantize(v []float64) []float64 {
	out := make([]float64, len(v)) // want "compiler: make\(\[\]float64, len\(v\)\) escapes to heap on kernel escapes\.Quantize"
	copy(out, v)
	return out
}

// Audit allocates freely but is unreachable from any root: no findings.
func Audit(rows [][]byte) []byte {
	joined := make([]byte, 0, 64)
	for _, r := range rows {
		joined = append(joined, r...)
	}
	return joined
}
