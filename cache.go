package e2nvm

import (
	"e2nvm/internal/dap"
	"e2nvm/internal/hotcache"
	"e2nvm/internal/shard"
)

// This file is the facade's read-side integration of the hot-key cache
// (internal/hotcache). The write side is in the Put/PutBatch/Delete
// methods: every write invalidates the key after the store write and
// before returning, so an acknowledged write can never be shadowed by a
// stale cached value. Replication events below the facade — failover
// replays acknowledged writes, live migration copies records verbatim —
// never change a key's value, so facade-level invalidation is sufficient
// even on a replicated store.

// cacheKeyTemp bridges the cache's hotness statistics into the placement
// policy (kvstore.Options.KeyTemp): hot keys — by total touch frequency,
// reads and writes — steer to low-wear segment clusters, keys the cache
// holds but does not consider hot are cold and soak up worn clusters,
// and unknown keys keep the pure content-similarity placement.
func cacheKeyTemp(c *hotcache.Cache) func(uint64) dap.Temp {
	return func(key uint64) dap.Temp {
		present, hot := c.Hotness(key)
		switch {
		case hot:
			return dap.TempHot
		case present:
			return dap.TempCold
		default:
			return dap.TempNone
		}
	}
}

// uncachedGetInto is the pre-cache read path: route to the replica
// cluster or the shard router.
func (s *Store) uncachedGetInto(key uint64, dst []byte) ([]byte, bool, error) {
	if s.cluster != nil {
		return s.cluster.GetInto(key, dst)
	}
	return s.router.GetInto(key, dst)
}

func (s *Store) uncachedGetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if s.cluster != nil {
		return s.clusterGetBatch(keys, dsts, oks, errs)
	}
	return s.router.GetBatch(keys, dsts, oks, errs)
}

// cachedGetInto serves key from the cache when possible; a miss reads the
// store under a fill token taken before the store read, so a fill racing
// a concurrent write self-demotes instead of caching a stale value (see
// the hotcache package docs for the full protocol).
func (s *Store) cachedGetInto(key uint64, dst []byte) ([]byte, bool, error) {
	if v, ok := s.cache.GetInto(key, dst); ok {
		return v, true, nil
	}
	token := s.cache.BeginFill(key)
	v, ok, err := s.uncachedGetInto(key, dst)
	if err != nil || !ok {
		return v, ok, err
	}
	s.cache.CompleteFill(key, v, token)
	return v, true, nil
}

// cachedGetBatch serves what it can from the cache and reads only the
// missing keys from the store in one underlying batch, filling them back
// under per-key tokens.
func (s *Store) cachedGetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if len(dsts) != len(keys) || len(oks) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return shard.ErrBadBatch
	}
	var missIdx []int
	for i, k := range keys {
		if v, ok := s.cache.GetInto(k, dsts[i]); ok {
			dsts[i], oks[i] = v, true
			if errs != nil {
				errs[i] = nil
			}
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return nil
	}
	mKeys := make([]uint64, len(missIdx))
	mDsts := make([][]byte, len(missIdx))
	mOks := make([]bool, len(missIdx))
	var mErrs []error
	if errs != nil {
		mErrs = make([]error, len(missIdx))
	}
	tokens := make([]uint64, len(missIdx))
	for j, i := range missIdx {
		mKeys[j] = keys[i]
		mDsts[j] = dsts[i]
		tokens[j] = s.cache.BeginFill(keys[i])
	}
	err := s.uncachedGetBatch(mKeys, mDsts, mOks, mErrs)
	for j, i := range missIdx {
		dsts[i], oks[i] = mDsts[j], mOks[j]
		if errs != nil {
			errs[i] = mErrs[j]
		}
		if mOks[j] && (mErrs == nil || mErrs[j] == nil) {
			s.cache.CompleteFill(mKeys[j], mDsts[j], tokens[j])
		}
	}
	return err
}
