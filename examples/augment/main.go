// Augment: plug existing NVM data structures (a persistent B+-Tree and a
// Path Hashing table) into E2-NVM, reproducing the Figure 12 flow. The
// stores' value placement is redirected through E2-NVM's content-aware
// allocator; everything else about them is unchanged.
//
//	go run ./examples/augment
package main

import (
	"fmt"
	"log"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/index"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/workload"
)

const (
	segSize  = 256
	numSegs  = 1024
	metaSegs = 384
	valSize  = 32
	ops      = 3000
	clusters = 8
)

func main() {
	vg := workload.NewValueGen(valSize, clusters, 0.03, 1)

	fmt.Println("store         placement      flips/data-bit")
	for _, name := range []string{"B+-Tree", "Path Hashing"} {
		base, err := run(name, vg, false)
		if err != nil {
			log.Fatal(err)
		}
		aug, err := run(name, vg, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s native         %.4f\n", name, base)
		fmt.Printf("%-13s via E2-NVM     %.4f   (%.0f%% fewer flips)\n", name, aug, (1-aug/base)*100)
	}
}

func run(name string, vg *workload.ValueGen, augmented bool) (float64, error) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
	if err != nil {
		return 0, err
	}
	// The value region holds old data from the same distribution.
	r := rand.New(rand.NewSource(2))
	for a := metaSegs; a < numSegs; a++ {
		img := make([]byte, segSize)
		copy(img[2:], vg.For(uint64(r.Intn(500))))
		if err := dev.FillSegment(a, img); err != nil {
			return 0, err
		}
	}

	meta := index.NewFreeList(addrs(0, metaSegs))
	var values index.Allocator
	if augmented {
		// Train the model on the value region and hand the store a
		// content-aware allocator.
		sample := make([][]float64, 0, 256)
		for a := metaSegs; a < metaSegs+256; a++ {
			img, err := dev.Peek(a)
			if err != nil {
				return 0, err
			}
			sample = append(sample, core.BytesToBits(img))
		}
		model, err := core.Train(sample, core.Config{
			InputBits: segSize * 8, K: clusters, LatentDim: 10, HiddenDim: 48,
			Epochs: 8, JointEpochs: 1, Seed: 1,
		})
		if err != nil {
			return 0, err
		}
		pool, err := dap.New(clusters)
		if err != nil {
			return 0, err
		}
		for a := metaSegs; a < numSegs; a++ {
			img, err := dev.Peek(a)
			if err != nil {
				return 0, err
			}
			pool.Add(model.MustPredictBytes(img), a)
		}
		values = kvstore.NewClusteredAllocator(core.NewManager(model), pool)
	}

	var st index.Store
	switch name {
	case "B+-Tree":
		st, err = index.NewBPTree(dev, meta, values) // nil values = inline leaves
	default:
		slot := valSize
		if augmented {
			slot = 8
		}
		st, err = index.NewPathHash(dev, meta, values, metaSegs/2, 3, slot)
	}
	if err != nil {
		return 0, err
	}
	dev.ResetStats()
	wr := rand.New(rand.NewSource(3))
	keySpace := ops / 6
	for i := 0; i < ops; i++ {
		key := uint64(wr.Intn(keySpace))
		if wr.Intn(10) == 0 {
			if _, err := st.Delete(key); err != nil {
				return 0, err
			}
			continue
		}
		if err := st.Put(key, vg.For(key)); err != nil {
			return 0, err
		}
	}
	return float64(dev.Stats().BitsFlipped) / float64(st.DataBitsWritten()), nil
}

func addrs(off, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = off + i
	}
	return out
}
