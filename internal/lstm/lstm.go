// Package lstm implements the Long Short-Term Memory network E2-NVM uses
// for its learned padding strategy (§4.1.3, Figure 6): a single LSTM layer
// followed by a linear head, trained with MSE and Adam, applied with a
// sliding window that consumes WindowBits of context and predicts
// PredictBits padding bits per step.
//
// The cell is the standard Hochreiter–Schmidhuber formulation with forget,
// input, and output gates; training uses full backpropagation through time.
package lstm

import (
	"fmt"
	"math"
	"math/rand"

	"e2nvm/internal/mat"
	"e2nvm/internal/nn"
)

// gate indices.
const (
	gi  = iota // input gate
	gf         // forget gate
	gg         // candidate
	go_        // output gate
	ngates
)

// Network is an LSTM layer plus a linear output head.
type Network struct {
	InSize, Hidden, OutSize int

	wx [ngates]*mat.Matrix // Hidden×InSize
	wh [ngates]*mat.Matrix // Hidden×Hidden
	b  [ngates][]float64

	gwx [ngates]*mat.Matrix
	gwh [ngates]*mat.Matrix
	gb  [ngates][]float64

	head *nn.Dense // Hidden → OutSize, identity

	opt *nn.Adam
	rng *rand.Rand
}

// New constructs a network with the given sizes. hidden defaults to 10 (the
// paper's configuration) when ≤ 0.
func New(inSize, hidden, outSize int, seed int64) (*Network, error) {
	if inSize <= 0 || outSize <= 0 {
		return nil, fmt.Errorf("lstm: invalid sizes in=%d out=%d", inSize, outSize)
	}
	if hidden <= 0 {
		hidden = 10
	}
	rng := rand.New(rand.NewSource(seed))
	n := &Network{InSize: inSize, Hidden: hidden, OutSize: outSize, rng: rng}
	for g := 0; g < ngates; g++ {
		n.wx[g] = mat.NewRandom(hidden, inSize, rng)
		n.wh[g] = mat.NewRandom(hidden, hidden, rng)
		n.b[g] = make([]float64, hidden)
		n.gwx[g] = mat.NewMatrix(hidden, inSize)
		n.gwh[g] = mat.NewMatrix(hidden, hidden)
		n.gb[g] = make([]float64, hidden)
	}
	// Forget-gate bias initialized positive, the standard trick for
	// stable early training.
	mat.Fill(n.b[gf], 1)
	n.head = nn.NewDense(hidden, outSize, nn.Identity, rng)
	n.opt = nn.NewAdam(1e-2)
	for g := 0; g < ngates; g++ {
		n.opt.Register(
			nn.Param{W: n.wx[g].Data, G: n.gwx[g].Data},
			nn.Param{W: n.wh[g].Data, G: n.gwh[g].Data},
			nn.Param{W: n.b[g], G: n.gb[g]},
		)
	}
	n.opt.Register(n.head.Params()...)
	return n, nil
}

// SetLearningRate overrides the default Adam learning rate (1e-2).
func (n *Network) SetLearningRate(lr float64) { n.opt.LR = lr }

// ParamCount returns the number of trainable scalars.
func (n *Network) ParamCount() int {
	c := n.head.ParamCount()
	for g := 0; g < ngates; g++ {
		c += len(n.wx[g].Data) + len(n.wh[g].Data) + len(n.b[g])
	}
	return c
}

// stepCache stores one timestep's activations for BPTT.
type stepCache struct {
	x          []float64
	hPrev      []float64
	cPrev      []float64
	gates      [ngates][]float64 // post-activation gate values
	c, h, tanc []float64
}

// forward runs the sequence and returns the per-step hidden states along
// with the caches needed for BPTT.
func (n *Network) forward(seq [][]float64) []stepCache {
	h := make([]float64, n.Hidden)
	c := make([]float64, n.Hidden)
	caches := make([]stepCache, len(seq))
	tmp := make([]float64, n.Hidden)
	for t, x := range seq {
		if len(x) != n.InSize {
			panic(fmt.Sprintf("lstm: step %d input %d, want %d", t, len(x), n.InSize))
		}
		sc := stepCache{
			x:     append([]float64(nil), x...),
			hPrev: append([]float64(nil), h...),
			cPrev: append([]float64(nil), c...),
		}
		for g := 0; g < ngates; g++ {
			act := make([]float64, n.Hidden)
			n.wx[g].MulVec(x, act)
			n.wh[g].MulVec(sc.hPrev, tmp)
			for i := range act {
				act[i] += tmp[i] + n.b[g][i]
			}
			if g == gg {
				for i := range act {
					act[i] = math.Tanh(act[i])
				}
			} else {
				for i := range act {
					act[i] = sigmoid(act[i])
				}
			}
			sc.gates[g] = act
		}
		newC := make([]float64, n.Hidden)
		newH := make([]float64, n.Hidden)
		tanc := make([]float64, n.Hidden)
		for i := 0; i < n.Hidden; i++ {
			newC[i] = sc.gates[gf][i]*sc.cPrev[i] + sc.gates[gi][i]*sc.gates[gg][i]
			tanc[i] = math.Tanh(newC[i])
			newH[i] = sc.gates[go_][i] * tanc[i]
		}
		sc.c, sc.h, sc.tanc = newC, newH, tanc
		caches[t] = sc
		h, c = newH, newC
	}
	return caches
}

// Predict runs seq through the network and returns the head output at the
// final timestep.
func (n *Network) Predict(seq [][]float64) []float64 {
	caches := n.forward(seq)
	last := caches[len(caches)-1].h
	out := n.head.Forward(last)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// PredictStep is the single-window form used by learned padding (the
// paper's LSTM consumes one window per step).
func (n *Network) PredictStep(window []float64) []float64 {
	return n.Predict([][]float64{window})
}

func (n *Network) zeroGrad() {
	for g := 0; g < ngates; g++ {
		n.gwx[g].Zero()
		n.gwh[g].Zero()
		mat.Fill(n.gb[g], 0)
	}
	n.head.ZeroGrad()
}

// TrainBatch performs one Adam step on a batch of (sequence, target) pairs
// with MSE loss on the final-step output, returning the batch-average loss.
func (n *Network) TrainBatch(seqs [][][]float64, targets [][]float64) float64 {
	if len(seqs) == 0 {
		return 0
	}
	if len(seqs) != len(targets) {
		panic("lstm: sequence/target count mismatch")
	}
	n.zeroGrad()
	scale := 1.0 / float64(len(seqs))
	total := 0.0
	for s := range seqs {
		total += n.backprop(seqs[s], targets[s], scale)
	}
	n.opt.Step()
	return total * scale
}

// backprop accumulates gradients for one sequence and returns its loss.
func (n *Network) backprop(seq [][]float64, target []float64, gradScale float64) float64 {
	if len(target) != n.OutSize {
		panic(fmt.Sprintf("lstm: target %d, want %d", len(target), n.OutSize))
	}
	caches := n.forward(seq)
	last := caches[len(caches)-1]

	out := n.head.Forward(last.h)
	loss := 0.0
	gradOut := make([]float64, n.OutSize)
	for i := range out {
		d := out[i] - target[i]
		loss += d * d
		gradOut[i] = 2 * d * gradScale
	}
	dh := n.head.Backward(gradOut)
	dc := make([]float64, n.Hidden)

	for t := len(caches) - 1; t >= 0; t-- {
		sc := caches[t]
		dhPrev := make([]float64, n.Hidden)
		dcPrev := make([]float64, n.Hidden)
		var dGate [ngates][]float64
		for g := 0; g < ngates; g++ {
			dGate[g] = make([]float64, n.Hidden)
		}
		for i := 0; i < n.Hidden; i++ {
			do := dh[i] * sc.tanc[i]
			dci := dh[i]*sc.gates[go_][i]*(1-sc.tanc[i]*sc.tanc[i]) + dc[i]
			dGate[go_][i] = do * sc.gates[go_][i] * (1 - sc.gates[go_][i])
			dGate[gf][i] = dci * sc.cPrev[i] * sc.gates[gf][i] * (1 - sc.gates[gf][i])
			dGate[gi][i] = dci * sc.gates[gg][i] * sc.gates[gi][i] * (1 - sc.gates[gi][i])
			dGate[gg][i] = dci * sc.gates[gi][i] * (1 - sc.gates[gg][i]*sc.gates[gg][i])
			dcPrev[i] = dci * sc.gates[gf][i]
		}
		tmp := make([]float64, n.Hidden)
		for g := 0; g < ngates; g++ {
			n.gwx[g].AddOuter(1, dGate[g], sc.x)
			n.gwh[g].AddOuter(1, dGate[g], sc.hPrev)
			mat.AddScaled(n.gb[g], 1, dGate[g])
			n.wh[g].MulVecT(dGate[g], tmp)
			mat.AddScaled(dhPrev, 1, tmp)
		}
		dh, dc = dhPrev, dcPrev
	}
	return loss
}

// Fit trains on the sample set for the given number of epochs, shuffling
// each epoch, and returns per-epoch average losses.
func (n *Network) Fit(seqs [][][]float64, targets [][]float64, epochs, batchSize int) ([]float64, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("lstm: empty training set")
	}
	if len(seqs) != len(targets) {
		return nil, fmt.Errorf("lstm: %d sequences but %d targets", len(seqs), len(targets))
	}
	if epochs <= 0 {
		epochs = 20
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	idx := make([]int, len(seqs))
	for i := range idx {
		idx[i] = i
	}
	losses := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		n.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		total, batches := 0.0, 0
		for lo := 0; lo < len(idx); lo += batchSize {
			hi := lo + batchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			bs := make([][][]float64, 0, hi-lo)
			bt := make([][]float64, 0, hi-lo)
			for _, i := range idx[lo:hi] {
				bs = append(bs, seqs[i])
				bt = append(bt, targets[i])
			}
			total += n.TrainBatch(bs, bt)
			batches++
		}
		losses = append(losses, total/float64(batches))
	}
	return losses, nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
