package replica

import (
	"errors"
	"sync"
	"sync/atomic"

	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/txn"
)

// Node roles. A node is born leader or follower; death (its device or log
// wore out, or it failed to promote) is terminal.
const (
	roleFollower int32 = iota
	roleLeader
	roleDead
)

// Group lifecycle states. Transitions only move right: active → draining →
// drained, or active → down when a dead group has no migration targets.
const (
	stateActive int32 = iota
	stateDraining
	stateDrained
	stateDown
)

// shipEntry is one committed transaction in flight to a follower: the
// addresses plus the images concatenated into a single buffer. One entry
// is built per commit and shared read-only by every follower's queue.
type shipEntry struct {
	id    uint64
	addrs []int
	data  []byte
}

// node is one replica of a group's keyspace: a device plus either a full
// serving store (leader) or an apply-side txn manager (follower).
type node struct {
	dev   *nvm.Device
	store *kvstore.Store // non-nil once the node has (ever) been leader
	mgr   *txn.Manager   // follower apply manager; unused after promotion

	role    atomic.Int32
	shipped atomic.Uint64 // entries enqueued to this follower
	applied atomic.Uint64 // entries durably applied by this follower

	// queue carries shipped entries to applyLoop. Closed exactly once —
	// at promotion or cluster close — under the group's write lock;
	// closed tracks that so the two sites cannot double-close.
	queue  chan shipEntry
	closed bool
	wg     sync.WaitGroup
}

// applyLoop drains the ship queue, applying each entry crash-atomically
// through the follower's own redo log. A failed apply (the follower's
// device or log wore out) marks the node dead; the loop keeps draining so
// shipper sends never block on a dead follower, discarding entries until
// the queue is closed.
func (n *node) applyLoop(segSize int) {
	defer n.wg.Done()
	for e := range n.queue {
		if n.role.Load() != roleFollower {
			continue
		}
		images := make([][]byte, len(e.addrs))
		for i := range e.addrs {
			images[i] = e.data[i*segSize : (i+1)*segSize]
		}
		if err := n.mgr.ApplyShipped(e.id, e.addrs, images); err != nil {
			n.role.Store(roleDead)
			continue
		}
		n.applied.Add(1)
	}
}

// drainState is a draining group's migration protocol state; see
// migrate.go for the protocol.
type drainState struct {
	// redirect and source are written once — under the group's write lock,
	// before state publishes stateDraining/stateDown — and are immutable
	// afterwards, so the serving paths read them without any lock. downErr
	// is built at construction, so the down paths return it without
	// locking or allocating.
	redirect []int
	source   *kvstore.Store
	downErr  error

	// mu guards the fields below it (the lockdiscipline convention).
	mu         sync.Mutex
	tombs      map[uint64]struct{}
	migRunning bool
	migErr     error
}

// Group is one keyspace partition: a replica set with one serving leader,
// or — once every replica has died — a draining source whose records are
// migrating into the other groups.
type Group struct {
	c    *Cluster
	id   int
	opts kvstore.Options

	state     atomic.Int32
	failovers atomic.Uint64
	migrated  atomic.Uint64
	migLost   atomic.Uint64

	// Reported counters are the raw atomics net of these base snapshots,
	// so Cluster.ResetCounters can zero what Status/Failovers report
	// without disturbing the raw values (drain bookkeeping derives live
	// record counts from the raw migrated counter).
	failoverBase atomic.Uint64
	migratedBase atomic.Uint64
	migLostBase  atomic.Uint64

	// drain carries the migration fields; see migrate.go.
	drain drainState

	// nodes is built at construction and never reassigned; the mutable
	// per-replica state lives in each node's own atomics.
	nodes []*node

	// mu orders serving operations (read lock, held across the leader
	// store call) against failover (write lock). Holding the read lock
	// across the store operation is what makes an acknowledged write
	// durable on the replica set: promotion cannot begin until every
	// in-flight commit has shipped.
	mu     sync.RWMutex
	leader int // index into nodes; valid while state == stateActive
}

// shipperFor builds the commit-point observer for the group's current
// leader. It runs under the leader's txn lock, inside an operation that
// holds g.mu: the node list and roles it reads cannot be mutated
// concurrently (failover requires the write lock).
func (g *Group) shipperFor() txn.Shipper {
	segSize := g.nodes[0].dev.SegmentSize()
	return func(id uint64, addrs []int, images [][]byte) {
		var e shipEntry
		for _, n := range g.nodes {
			if n.role.Load() != roleFollower {
				continue
			}
			if e.data == nil {
				e = shipEntry{id: id, addrs: append([]int(nil), addrs...)}
				e.data = make([]byte, 0, len(images)*segSize)
				for _, img := range images {
					e.data = append(e.data, img...)
				}
			}
			n.queue <- e
			n.shipped.Add(1)
		}
	}
}

// deviceDead classifies an operation error as the leader's medium dying —
// wear-out that survived the store's internal retire-and-retry machinery,
// capacity degraded past the threshold, or a redo log with no usable
// slots left (every slot of a fenced log zone retires) — as opposed to an
// ordinary full store or a caller error, which failover cannot fix
// (followers hold the same data).
func deviceDead(err error) bool {
	return errors.Is(err, nvm.ErrWornOut) ||
		errors.Is(err, kvstore.ErrDegraded) ||
		errors.Is(err, txn.ErrLogFull)
}

// failoverFrom demotes the leader the caller observed failing and
// promotes a follower (or, with none left, starts draining the keyspace).
// The failed store identifies the observation: if another operation
// already failed over, the current leader differs and this is a no-op.
// Returns nil when the group is serving again in some form (new leader or
// draining); an error only when the group is terminally down.
func (g *Group) failoverFrom(failed *kvstore.Store) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state.Load() != stateActive || g.nodes[g.leader].store != failed {
		return nil
	}
	return g.promoteLocked()
}

// promoteLocked retires the current leader and installs the first live
// follower in its place: stop shipping, drain the candidate's queue so
// every acknowledged entry is on its device, then rebuild a serving store
// over that device with the standard crash-recovery scan (the follower's
// own log replays its committed tail). Falls through to migration when no
// follower survives. Callers hold g.mu.
func (g *Group) promoteLocked() error {
	old := g.nodes[g.leader]
	old.store.TxnManager().SetShipper(nil)
	old.role.Store(roleDead)
	for i, cand := range g.nodes {
		if cand.role.Load() != roleFollower {
			continue
		}
		if !cand.closed {
			cand.closed = true
			close(cand.queue)
		}
		cand.wg.Wait()
		if cand.role.Load() != roleFollower {
			continue // died applying its final entries
		}
		st, err := kvstore.RecoverWith(cand.dev, old.store.Model(), g.opts)
		if err != nil {
			cand.role.Store(roleDead)
			continue
		}
		cand.store = st
		cand.role.Store(roleLeader)
		g.leader = i
		st.TxnManager().SetShipper(g.shipperFor())
		g.failovers.Add(1)
		return nil
	}
	return g.startDrainLocked(old.store)
}

// put serves one write, following the group through failover: a write
// that dies with the leader's device is retried on the promoted leader
// (or re-routed into the drain path), so the caller only ever sees an
// error the replica set could not absorb.
//
// lint:hotpath
func (g *Group) put(key uint64, value []byte) error {
	for {
		switch g.state.Load() {
		case stateDrained:
			return errMoved
		case stateDown:
			return g.drain.downErr
		case stateDraining:
			return g.drainPut(key, value)
		}
		g.mu.RLock()
		if g.state.Load() != stateActive {
			g.mu.RUnlock()
			continue
		}
		st := g.nodes[g.leader].store
		err := st.Put(key, value)
		g.mu.RUnlock()
		if err == nil || !deviceDead(err) {
			return err
		}
		// Failover is the cold branch: it runs once per device death,
		// rebuilding a store over the survivor. lint:allow hotpathalloc
		if ferr := g.failoverFrom(st); ferr != nil {
			return ferr
		}
	}
}

// putIfAbsent is put with put-if-absent semantics, used by migrators
// copying records into this group. The keys are always foreign (hashed to
// the migrating group, not this one), so the draining path forwards
// without consulting this group's own tombstones.
func (g *Group) putIfAbsent(key uint64, value []byte) (bool, error) {
	for {
		switch g.state.Load() {
		case stateDrained:
			return false, errMoved
		case stateDown:
			return false, g.drain.downErr
		case stateDraining:
			tgt := g.targetGroup(key)
			wrote, err := tgt.putIfAbsent(key, value)
			if errors.Is(err, errMoved) {
				continue
			}
			return wrote, err
		}
		g.mu.RLock()
		if g.state.Load() != stateActive {
			g.mu.RUnlock()
			continue
		}
		st := g.nodes[g.leader].store
		wrote, err := st.PutIfAbsent(key, value)
		g.mu.RUnlock()
		if err == nil || !deviceDead(err) {
			return wrote, err
		}
		// Failover is the cold branch: it runs once per device death,
		// rebuilding a store over the survivor. lint:allow hotpathalloc
		if ferr := g.failoverFrom(st); ferr != nil {
			return false, ferr
		}
	}
}

// getInto serves one read. Reads never trigger failover: fenced and worn
// segments still serve their stored content, so a read error is a data
// problem (ErrCorrupt), not a routing problem.
//
// lint:hotpath
func (g *Group) getInto(key uint64, dst []byte) ([]byte, bool, error) {
	for {
		switch g.state.Load() {
		case stateDrained:
			return nil, false, errMoved
		case stateDraining:
			return g.drainGet(key, dst)
		case stateDown:
			return g.drain.source.GetInto(key, dst)
		}
		g.mu.RLock()
		if g.state.Load() != stateActive {
			g.mu.RUnlock()
			continue
		}
		v, ok, err := g.nodes[g.leader].store.GetInto(key, dst)
		g.mu.RUnlock()
		return v, ok, err
	}
}

// delete serves one delete, with the same failover-and-retry contract as
// put (invalidation writes die with the device too).
//
// lint:hotpath
func (g *Group) delete(key uint64) (bool, error) {
	for {
		switch g.state.Load() {
		case stateDrained:
			return false, errMoved
		case stateDown:
			return false, g.drain.downErr
		case stateDraining:
			return g.drainDelete(key)
		}
		g.mu.RLock()
		if g.state.Load() != stateActive {
			g.mu.RUnlock()
			continue
		}
		st := g.nodes[g.leader].store
		ok, err := st.Delete(key)
		g.mu.RUnlock()
		if err == nil || !deviceDead(err) {
			return ok, err
		}
		// Failover is the cold branch: it runs once per device death,
		// rebuilding a store over the survivor. lint:allow hotpathalloc
		if ferr := g.failoverFrom(st); ferr != nil {
			return false, ferr
		}
	}
}

// leaderStore returns the serving store while the group is active, else
// nil.
func (g *Group) leaderStore() *kvstore.Store {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.state.Load() != stateActive {
		return nil
	}
	return g.nodes[g.leader].store
}

// servingStore returns whichever store still answers reads for the
// group's remaining records: the active leader, or the draining/down
// source. Nil once drained.
func (g *Group) servingStore() *kvstore.Store {
	if st := g.leaderStore(); st != nil {
		return st
	}
	switch g.state.Load() {
	case stateDraining, stateDown:
		return g.drain.source
	}
	return nil
}
