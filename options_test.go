package e2nvm

import (
	"bytes"
	"testing"
)

func TestSaveAndOpenWithModel(t *testing.T) {
	cfg := smallConfig()
	cfg.SeedContent = func(addr int, seg []byte) {
		for i := range seg {
			seg[i] = byte(addr % 7)
		}
	}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenWithModel(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Clusters() != s1.Clusters() {
		t.Fatalf("clusters %d vs %d", s2.Clusters(), s1.Clusters())
	}
	if err := s2.Put(1, []byte("restored")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s2.Get(1)
	if !ok || string(v) != "restored" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
}

func TestOpenWithModelWidthMismatch(t *testing.T) {
	s1, err := Open(smallConfig()) // 32 B segments
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.SegmentSize = 64
	if _, err := OpenWithModel(cfg, &buf); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestOpenWithModelGarbage(t *testing.T) {
	if _, err := OpenWithModel(smallConfig(), bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestBatcherOverStore(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentSize = 128 // MaxValue 117 → ~10 tiny entries per batch
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewBatcher(0)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetMetrics()
	// 40 tiny puts should reach the device as far fewer segment writes.
	for k := uint64(0); k < 40; k++ {
		if err := b.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Writes >= 40 {
		t.Fatalf("batching issued %d device writes for 40 puts", m.Writes)
	}
	if b.Len() != 40 || b.Batches() == 0 {
		t.Fatalf("Len=%d Batches=%d", b.Len(), b.Batches())
	}
	for k := uint64(0); k < 40; k++ {
		v, ok, err := b.Get(k)
		if err != nil || !ok || v[0] != byte(k) {
			t.Fatalf("Get(%d) = (%v,%v,%v)", k, v, ok, err)
		}
	}
	// Delete most of a batch and confirm survivors persist through GC.
	for k := uint64(0); k < 39; k++ {
		if _, err := b.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := b.Get(39)
	if err != nil || !ok || v[0] != 39 {
		t.Fatalf("survivor Get = (%v,%v,%v)", v, ok, err)
	}
}
