// Package infer provides a bit-native inference kernel for the serving
// path: cluster prediction straight from segment *bytes*, with no
// bytes→bits→float64 expansion and no per-bit multiply.
//
// The encoder's input is strictly binary, so the first Dense layer's
// matvec Σ_j w[i][j]·x[j] only ever adds or skips weight columns. The
// kernel exploits this by precomputing, for each group of g consecutive
// input bits, the 2^g possible partial column-sums over the hidden layer
// (table[group][value][hidden]); the first-layer forward then becomes
//
//	h = bias + Σ_groups table[group][bits(group)]
//
// — pure float64 adds indexed by the raw segment bytes. The remaining
// small layer (hidden → latent) stays a tight fused matvec over the
// kernel's own flat weight copy, and nearest-centroid search keeps a
// running best with early-exit partial distances.
//
// Numerics: the kernel is fully deterministic (same bytes → bit-identical
// μ across calls and across rebuilds from the same weights), but its
// group-wise accumulation order differs from the naive left-to-right
// matvec, so μ may differ from vae.EncodeInto by a few ulps. Cluster
// assignments are insensitive to this in practice (centroid distance gaps
// dwarf ulp noise); the equivalence suite asserts exact assignment
// agreement on random models. See DESIGN.md §11.
//
// A Kernel is immutable after New: it copies every weight, bias and
// centroid it needs, so a retrain that swaps the underlying model can
// never tear a table out from under a concurrent Forward. Each kernel
// carries a process-unique Version so callers can observe swaps.
package infer

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"e2nvm/internal/nn"
)

// MaxTableBytes caps the first-layer lookup table. Group width adapts
// downward (8 → 4 → 2 → 1 bits) until the table fits; if even 1-bit
// groups (a plain column copy) exceed the budget, New declines.
const MaxTableBytes = 64 << 20

// ErrGeometry reports encoder/centroid shapes the kernel cannot serve.
var ErrGeometry = errors.New("infer: kernel geometry mismatch")

// version is the process-wide kernel generation counter. Monotonic, so
// two kernels built from different trainings never share a Version.
var version atomic.Uint64

// Kernel is an immutable byte-LUT inference engine for one trained
// encoder + centroid set. Safe for concurrent use; callers supply their
// own h/mu scratch.
type Kernel struct {
	inBits    int
	hidden    int
	latent    int
	k         int
	groupBits int // g: input bits per table group (8, 4, 2 or 1)

	// table holds the precomputed first-layer partial sums, flat:
	// row ((group<<g)|value) starts at ((group<<g)|value)*hidden.
	table []float64
	b1    []float64     // first-layer bias, len hidden
	act1  nn.Activation // first-layer activation

	w2   []float64     // second layer, row-major latent×hidden
	b2   []float64     // second-layer bias, len latent
	act2 nn.Activation // second-layer activation

	cents []float64 // centroids, flat k×latent

	ver uint64
}

// New builds a kernel from the encoder's two dense layers and the
// cluster centroids, copying all parameters. It returns (nil, nil) —
// decline, not error — when no group width fits MaxTableBytes, so
// callers keep their float fallback; it errors on incoherent shapes
// (input not byte-aligned, layer widths that do not chain, centroid
// width ≠ latent width).
func New(encH, encMu *nn.Dense, centroids [][]float64) (*Kernel, error) {
	if encH == nil || encMu == nil || len(centroids) == 0 {
		return nil, fmt.Errorf("%w: nil layer or no centroids", ErrGeometry)
	}
	inBits, hidden, latent := encH.In, encH.Out, encMu.Out
	if inBits <= 0 || inBits%8 != 0 {
		return nil, fmt.Errorf("%w: input %d bits not byte-aligned", ErrGeometry, inBits)
	}
	if encMu.In != hidden {
		return nil, fmt.Errorf("%w: trunk out %d, head in %d", ErrGeometry, hidden, encMu.In)
	}
	for _, c := range centroids {
		if len(c) != latent {
			return nil, fmt.Errorf("%w: centroid width %d, latent %d", ErrGeometry, len(c), latent)
		}
	}
	g := 0
	for _, cand := range [...]int{8, 4, 2, 1} {
		if (inBits/cand)*(1<<cand)*hidden*8 <= MaxTableBytes {
			g = cand
			break
		}
	}
	if g == 0 {
		return nil, nil
	}

	k := &Kernel{
		inBits:    inBits,
		hidden:    hidden,
		latent:    latent,
		k:         len(centroids),
		groupBits: g,
		table:     make([]float64, (inBits/g)*(1<<g)*hidden),
		b1:        append([]float64(nil), encH.B...),
		act1:      encH.Act,
		w2:        append([]float64(nil), encMu.W.Data...),
		b2:        append([]float64(nil), encMu.B...),
		act2:      encMu.Act,
		cents:     make([]float64, len(centroids)*latent),
		ver:       version.Add(1),
	}
	for c, cent := range centroids {
		copy(k.cents[c*latent:], cent)
	}
	// Build each group's 2^g rows by MSB chaining: row(v) = row(v without
	// its top set bit) + the weight column of that bit. Every row is then
	// the ascending-bit-order sum of its columns, done in 2^g adds per
	// hidden unit instead of g·2^(g-1).
	vals := 1 << g
	for grp := 0; grp < inBits/g; grp++ {
		base := grp * vals * hidden
		for v := 1; v < vals; v++ {
			msb := bits.Len(uint(v)) - 1
			prev := k.table[base+(v^(1<<msb))*hidden:][:hidden]
			row := k.table[base+v*hidden:][:hidden]
			col := msb // bit index within the group
			j := grp*g + col
			for i := 0; i < hidden; i++ {
				row[i] = prev[i] + encH.W.At(i, j)
			}
		}
	}
	return k, nil
}

// InBits returns the kernel's input width in bits.
func (k *Kernel) InBits() int { return k.inBits }

// HiddenDim returns the hidden width (the h scratch size Forward needs).
func (k *Kernel) HiddenDim() int { return k.hidden }

// LatentDim returns the latent width (the mu scratch size Forward needs).
func (k *Kernel) LatentDim() int { return k.latent }

// K returns the number of centroids.
func (k *Kernel) K() int { return k.k }

// GroupBits returns the table group width g in bits.
func (k *Kernel) GroupBits() int { return k.groupBits }

// TableBytes returns the lookup table's size in bytes.
func (k *Kernel) TableBytes() int { return len(k.table) * 8 }

// Version returns the kernel's process-unique generation number. Kernels
// built from different trainings always differ, so a caller holding a
// kernel pointer can tell whether a retrain swapped the model under it.
func (k *Kernel) Version() uint64 { return k.ver }

// Forward runs the encoder over one full-width segment image, writing the
// hidden activations into h and the latent mean into mu (both
// caller-provided scratch, capacity ≥ HiddenDim / LatentDim). It returns
// mu resliced to LatentDim. Safe for concurrent use with distinct
// scratch. Zero allocations.
//
// Bounds discipline (lint:nobce): scratch and bias slices are resliced to
// the same length expression before the loops so every indexed access is
// provable, and the second-layer matvec consumes k.w2 from the front under
// a loop condition instead of strided `i*hidden` slicing (which prove
// cannot bound). The only checks left in loops are the table-row lookups,
// whose offsets depend on the segment bytes themselves.
//
// lint:hotpath
// lint:kernelpure
// lint:nobce
func (k *Kernel) Forward(seg []byte, h, mu []float64) []float64 {
	if len(seg)*8 != k.inBits {
		panic(fmt.Sprintf("infer: Forward input %d bits, want %d", len(seg)*8, k.inBits))
	}
	hidden, latent := k.hidden, k.latent
	h = h[:hidden]
	mu = mu[:latent]
	if k.groupBits == 8 {
		// One table row per byte; seed h with the first row instead of
		// zeroing.
		copy(h, k.table[int(seg[0])*hidden:][:hidden])
		for p := 1; p < len(seg); p++ {
			row := k.table[(p<<8|int(seg[p]))*hidden:][:hidden] // lint:allow nobce — row offset is data-dependent (segment byte value)
			for i, v := range row {
				h[i] += v
			}
		}
	} else {
		g := uint(k.groupBits)
		perByte := 8 / k.groupBits
		mask := byte(1<<g - 1)
		for i := range h {
			h[i] = 0
		}
		grp := 0
		for _, by := range seg {
			for q := 0; q < perByte; q++ {
				val := int((by >> (uint(q) * g)) & mask)
				row := k.table[(grp<<g|val)*hidden:][:hidden] // lint:allow nobce — row offset is data-dependent (group bit value)
				for i, v := range row {
					h[i] += v
				}
				grp++
			}
		}
	}
	act1 := k.act1
	b1 := k.b1[:hidden]
	for i := range h {
		h[i] = act1.Apply(h[i] + b1[i])
	}
	act2 := k.act2
	b2 := k.b2[:latent]
	w2 := k.w2
	for i := 0; i < latent && len(w2) >= hidden; i++ {
		row := w2[:hidden]
		w2 = w2[hidden:]
		s := 0.0
		for j, v := range row {
			s += v * h[j]
		}
		mu[i] = act2.Apply(s + b2[i])
	}
	return mu
}

// Assign returns the index of the centroid nearest to mu (squared
// Euclidean, first wins ties — identical to a full kmeans.Predict scan).
// The per-centroid distance accumulates term by term and bails as soon as
// the running sum reaches the best seen: squared terms only grow, and the
// winner update below is strict-<, so the early exit changes nothing.
// Zero allocations.
//
// lint:hotpath
// lint:kernelpure
// lint:nobce
func (k *Kernel) Assign(mu []float64) int {
	latent := k.latent
	mu = mu[:latent]
	best, bestD := 0, math.Inf(1)
	// Walk the flat centroid matrix front-to-back: `len(cents) >= latent`
	// proves the row slice (strided `c*latent` indexing would not), and the
	// reslice above ties len(mu) to len(cent) for the inner loop.
	cents := k.cents
	for c := 0; c < k.k && len(cents) >= latent; c++ {
		cent := cents[:latent]
		cents = cents[latent:]
		d := 0.0
		for i, cv := range cent {
			diff := mu[i] - cv
			d += diff * diff
			if d >= bestD {
				break
			}
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Predict maps one full-width segment image to its cluster, using h and
// mu as scratch. Zero allocations.
//
// lint:hotpath
// lint:kernelpure
func (k *Kernel) Predict(seg []byte, h, mu []float64) int {
	return k.Assign(k.Forward(seg, h, mu))
}

// BlockSamples is the number of segments ForwardBlock interleaves per
// inner block, and the scratch multiplier PredictBlock requires: h must
// hold BlockSamples·HiddenDim floats and mu BlockSamples·LatentDim.
const BlockSamples = 8

// ForwardBlock runs the encoder over up to BlockSamples full-width
// segments at once, writing sample s's hidden activations into
// h[s·HiddenDim:] and its latent mean into mu[s·LatentDim:]. Per sample
// the arithmetic order is identical to Forward, so results are
// bit-identical to len(segs) single calls — the win is purely in the
// memory system: each table group's lookups for all samples issue
// back-to-back, so their cache misses overlap (memory-level parallelism
// a single accumulator chain cannot express). Zero allocations.
//
// Bounds discipline (lint:nobce): the seed copies and the per-sample
// finale consume h/mu front-to-back under loop conditions, so their slice
// bounds are all compiler-provable. The interleaved lookup loops are the
// exception: both the table row (data-dependent offset) and the per-sample
// scratch window (strided by s inside the group loop) are beyond prove and
// carry explicit allows — they are also the memory-bound part, where a
// bounds check is noise next to the cache misses being overlapped.
//
// lint:hotpath
// lint:kernelpure
// lint:nobce
func (k *Kernel) ForwardBlock(segs [][]byte, h, mu []float64) {
	n := len(segs)
	if n > BlockSamples {
		panic(fmt.Sprintf("infer: ForwardBlock of %d segments, max %d", n, BlockSamples))
	}
	for _, seg := range segs {
		if len(seg)*8 != k.inBits {
			panic(fmt.Sprintf("infer: ForwardBlock input %d bits, want %d", len(seg)*8, k.inBits))
		}
	}
	hidden, latent := k.hidden, k.latent
	h = h[:n*hidden]
	mu = mu[:n*latent]
	if k.groupBits == 8 {
		hh := h
		for s := 0; s < n && len(hh) >= hidden; s++ {
			copy(hh[:hidden], k.table[int(segs[s][0])*hidden:][:hidden]) // lint:allow nobce — table row offset is data-dependent
			hh = hh[hidden:]
		}
		for p := 1; p < k.inBits/8; p++ {
			for s, seg := range segs {
				row := k.table[(p<<8|int(seg[p]))*hidden:][:hidden] // lint:allow nobce — data-dependent row, prologue-checked seg[p]
				hs := h[s*hidden:][:hidden]                         // lint:allow nobce — sample-strided scratch window inside the group loop
				for i, v := range row {
					hs[i] += v
				}
			}
		}
	} else {
		g := uint(k.groupBits)
		perByte := 8 / k.groupBits
		mask := byte(1<<g - 1)
		for i := range h {
			h[i] = 0
		}
		for p := 0; p < k.inBits/8; p++ {
			for q := 0; q < perByte; q++ {
				grp := p*perByte + q
				for s, seg := range segs {
					val := int((seg[p] >> (uint(q) * g)) & mask)       // lint:allow nobce — prologue-checked seg[p]
					row := k.table[(grp<<g|val)*hidden:][:hidden]      // lint:allow nobce — data-dependent row offset
					hs := h[s*hidden:][:hidden]                        // lint:allow nobce — sample-strided scratch window inside the group loop
					for i, v := range row {
						hs[i] += v
					}
				}
			}
		}
	}
	act1, act2 := k.act1, k.act2
	b1, b2 := k.b1[:hidden], k.b2[:latent]
	hrest, mrest := h, mu
	for s := 0; s < n && len(hrest) >= hidden && len(mrest) >= latent; s++ {
		hs := hrest[:hidden]
		hrest = hrest[hidden:]
		for i := range hs {
			hs[i] = act1.Apply(hs[i] + b1[i])
		}
		ms := mrest[:latent]
		mrest = mrest[latent:]
		w2 := k.w2
		for i := 0; i < latent && len(w2) >= hidden; i++ {
			row := w2[:hidden]
			w2 = w2[hidden:]
			sum := 0.0
			for j, v := range row {
				sum += v * hs[j]
			}
			ms[i] = act2.Apply(sum + b2[i])
		}
	}
}

// PredictBlock predicts every image in segs into out (len(out) must be ≥
// len(segs)), chunking through ForwardBlock so the table lookups of up to
// BlockSamples images overlap in the memory system. h and mu are
// caller-provided scratch of capacity ≥ BlockSamples·HiddenDim and
// BlockSamples·LatentDim. All images must be full-width. Results are
// bit-identical to per-image Predict calls. Zero allocations.
//
// lint:hotpath
// lint:kernelpure
func (k *Kernel) PredictBlock(segs [][]byte, out []int, h, mu []float64) {
	latent := k.latent
	for lo := 0; lo < len(segs); lo += BlockSamples {
		hi := lo + BlockSamples
		if hi > len(segs) {
			hi = len(segs)
		}
		k.ForwardBlock(segs[lo:hi], h, mu)
		for s := 0; s < hi-lo; s++ {
			out[lo+s] = k.Assign(mu[s*latent:][:latent])
		}
	}
}
