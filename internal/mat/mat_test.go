package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.R != 2 || m.C != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %dx%d len %d", m.R, m.C, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("matrix not zeroed")
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(1, 0, 5)
	if m.At(1, 0) != 5 {
		t.Fatal("At/Set mismatch")
	}
	row := m.Row(1)
	row[1] = 7 // Row aliases storage
	if m.At(1, 1) != 7 {
		t.Fatal("Row does not alias")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 0, -1}, y)
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", y)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, y)
	want := []float64{5, 7, 9}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 2))
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, []float64{1, 3}, []float64{4, 5})
	want := []float64{8, 10, 24, 30}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter = %v, want %v", m.Data, want)
		}
	}
}

// Property: ⟨M·x, y⟩ == ⟨x, Mᵀ·y⟩ (adjoint identity) — the identity the
// backprop code relies on.
func TestAdjointIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := r.Intn(6)+1, r.Intn(6)+1
		m := NewRandom(rows, cols, r)
		x := randVec(r, cols)
		y := randVec(r, rows)
		mx := make([]float64, rows)
		m.MulVec(x, mx)
		mty := make([]float64, cols)
		m.MulVecT(y, mty)
		return math.Abs(Dot(mx, y)-Dot(x, mty)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestCloneAndZero(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewRandom(3, 3, r)
	c := m.Clone()
	m.Zero()
	if Dot(c.Data, c.Data) == 0 {
		t.Fatal("clone was zeroed with original")
	}
	if Dot(m.Data, m.Data) != 0 {
		t.Fatal("Zero did not zero")
	}
}

func TestNewRandomRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := NewRandom(10, 10, r)
	limit := math.Sqrt(6.0 / 20.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("init value %v outside Glorot limit %v", v, limit)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	c := append([]float64(nil), a...)
	AddScaled(c, 2, b)
	if c[0] != 9 || c[2] != 15 {
		t.Fatalf("AddScaled = %v", c)
	}
	Scale(c, 0)
	if Norm2(c) != 0 {
		t.Fatal("Scale(0) should zero")
	}
	Fill(c, 3)
	if Mean(c) != 3 {
		t.Fatalf("Mean = %v", Mean(c))
	}
	if SqDist(a, b) != 27 {
		t.Fatalf("SqDist = %v", SqDist(a, b))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestArgMin(t *testing.T) {
	if ArgMin(nil) != -1 {
		t.Fatal("ArgMin(nil) != -1")
	}
	if ArgMin([]float64{3, 1, 2, 1}) != 1 {
		t.Fatal("ArgMin should return first minimum")
	}
}

func BenchmarkMulVec256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m := NewRandom(256, 256, r)
	x := randVec(r, 256)
	y := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(x, y)
	}
}

func TestEqualWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 1e-9, true},
		{1.0, 1.0 + 1e-12, 1e-9, true},      // absolute tolerance
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative tolerance at scale
		{1.0, 1.1, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
