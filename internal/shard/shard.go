// Package shard hash-partitions the keyspace across N independent
// kvstore.Store instances so that operations on different shards never
// contend on a lock, a device, or a model.
//
// E2-NVM's placement state — VAE/K-means model, dynamic address pool,
// RB-tree index, device zone, redo log — partitions cleanly by keyspace:
// a key's placement depends only on its own value and the free segments of
// the shard it hashes to, so per-shard models preserve every per-segment
// bit-flip and endurance invariant while the aggregate store scales with
// the shard count (the same observation Predict-and-Write exploits with
// per-group clustering pools).
//
// The router itself is stateless apart from the shard table: routing is a
// pure hash of the key, so Put/Get/GetInto/Delete add no locks and no
// allocations on top of the per-shard serving path.
package shard

import (
	"errors"
	"sync"

	"e2nvm/internal/kvstore"
)

// ErrNoStores reports a router constructed over an empty store list.
var ErrNoStores = errors.New("shard: need at least one store")

// Router routes operations across independent stores by key hash.
type Router struct {
	stores []*kvstore.Store

	// scrubMu guards scrubStart, the shard that receives the first unit of
	// the next Scrub budget's remainder (see Scrub).
	scrubMu    sync.Mutex
	scrubStart int
}

// New builds a router over the given stores. The slice is copied; len 1 is
// valid and makes every method a thin delegation.
func New(stores []*kvstore.Store) (*Router, error) {
	if len(stores) == 0 {
		return nil, ErrNoStores
	}
	return &Router{stores: append([]*kvstore.Store(nil), stores...)}, nil
}

// N returns the shard count.
func (r *Router) N() int { return len(r.stores) }

// Store returns shard i's store, for per-shard inspection.
func (r *Router) Store(i int) *kvstore.Store { return r.stores[i] }

// mix64 is the SplitMix64 finalizer: a full-avalanche permutation of the
// key space, so dense sequential keys still spread uniformly over shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mix64 exposes the router's key permutation so layers above (the replica
// cluster) route and re-route with the same hash: the low bits pick a
// key's home group exactly like Of, and the untouched high bits are free
// for an independent second-level choice such as a migration target.
func Mix64(x uint64) uint64 { return mix64(x) }

// Of returns the shard index serving key. It sits inside every routed
// operation, so it must stay inlinable (mix64 folds into it).
//
// lint:inline
func (r *Router) Of(key uint64) int {
	if len(r.stores) == 1 {
		return 0
	}
	return int(mix64(key) % uint64(len(r.stores)))
}

// Put routes the write to key's shard.
//
// lint:hotpath
func (r *Router) Put(key uint64, value []byte) error {
	return r.stores[r.Of(key)].Put(key, value)
}

// Get routes the read to key's shard.
//
// lint:hotpath
func (r *Router) Get(key uint64) ([]byte, bool, error) {
	return r.stores[r.Of(key)].Get(key)
}

// GetInto routes the zero-alloc read to key's shard.
//
// lint:hotpath
func (r *Router) GetInto(key uint64, dst []byte) ([]byte, bool, error) {
	return r.stores[r.Of(key)].GetInto(key, dst)
}

// Delete routes the delete to key's shard.
//
// lint:hotpath
func (r *Router) Delete(key uint64) (bool, error) {
	return r.stores[r.Of(key)].Delete(key)
}

// Scan calls fn for each key in [lo, hi] in ascending global key order,
// merging the shards' ordered streams. Each element is pulled from its
// shard at visit time (kvstore.Store.NextInto), so like the single-store
// Scan the result is not one atomic snapshot, the callback runs with no
// store lock held, and the value slice is only valid during the callback.
func (r *Router) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if len(r.stores) == 1 {
		return r.stores[0].Scan(lo, hi, fn)
	}
	type cursor struct {
		key uint64
		val []byte
		ok  bool
	}
	curs := make([]cursor, len(r.stores))
	for i, st := range r.stores {
		k, v, ok, err := st.NextInto(lo, hi, nil)
		if err != nil {
			return err
		}
		curs[i] = cursor{key: k, val: v, ok: ok}
	}
	for {
		best := -1
		for i := range curs {
			if curs[i].ok && (best < 0 || curs[i].key < curs[best].key) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		k := curs[best].key
		if !fn(k, curs[best].val) {
			return nil
		}
		if k >= hi || k == ^uint64(0) {
			// k was the global minimum, so every other shard's next key is
			// also past hi: the scan is complete.
			return nil
		}
		nk, v, ok, err := r.stores[best].NextInto(k+1, hi, curs[best].val[:0])
		if err != nil {
			return err
		}
		curs[best] = cursor{key: nk, val: v, ok: ok}
	}
}

// Len sums live keys over all shards.
func (r *Router) Len() int {
	n := 0
	for _, st := range r.stores {
		n += st.Len()
	}
	return n
}

// Stats sums the per-shard counters.
func (r *Router) Stats() kvstore.Stats {
	var agg kvstore.Stats
	for _, st := range r.stores {
		s := st.Stats()
		agg.Puts += s.Puts
		agg.Gets += s.Gets
		agg.Deletes += s.Deletes
		agg.Scans += s.Scans
		agg.Fallbacks += s.Fallbacks
		agg.Retrains += s.Retrains
		agg.WornWrites += s.WornWrites
		agg.Retired += s.Retired
		agg.Relocations += s.Relocations
	}
	return agg
}

// StatsPerShard returns each shard's own counter snapshot.
func (r *Router) StatsPerShard() []kvstore.Stats {
	out := make([]kvstore.Stats, len(r.stores))
	for i, st := range r.stores {
		out[i] = st.Stats()
	}
	return out
}

// ResetStats resets every shard's store-level counters.
func (r *Router) ResetStats() {
	for _, st := range r.stores {
		st.ResetStats()
	}
}

// Health aggregates capacity over all shards. Degraded is true when ANY
// shard has crossed its degradation threshold: keys hashing to a degraded
// shard fail allocation even while other shards have room, so the
// aggregate must surface the weakest shard, not the average.
func (r *Router) Health() kvstore.Health {
	var agg kvstore.Health
	for _, st := range r.stores {
		h := st.Health()
		agg.DataSegments += h.DataSegments
		agg.Retired += h.Retired
		agg.LiveKeys += h.LiveKeys
		agg.PoolFree += h.PoolFree
		agg.Degraded = agg.Degraded || h.Degraded
	}
	return agg
}

// HealthPerShard returns each shard's own capacity snapshot.
func (r *Router) HealthPerShard() []kvstore.Health {
	out := make([]kvstore.Health, len(r.stores))
	for i, st := range r.stores {
		out[i] = st.Health()
	}
	return out
}

// Scrub examines up to n segments in total, splitting the budget evenly
// across shards. The n%N remainder units are handed out round-robin,
// starting one past where the previous call's remainder ended: with a
// budget smaller than the shard count the even share rounds to zero, and a
// fixed remainder assignment would scrub the first shards forever while
// later shards' zones rot unexamined. Each shard also keeps its own
// segment cursor, so repeated calls sweep every shard's whole zone. The
// aggregated report is returned; on error the partial report and the first
// error are.
func (r *Router) Scrub(n int) (kvstore.ScrubReport, error) {
	var agg kvstore.ScrubReport
	per, rem := n/len(r.stores), n%len(r.stores)
	r.scrubMu.Lock()
	start := r.scrubStart
	r.scrubStart = (start + rem) % len(r.stores)
	r.scrubMu.Unlock()
	for i, st := range r.stores {
		quota := per
		if d := i - start; (d+len(r.stores))%len(r.stores) < rem {
			quota++
		}
		if quota == 0 {
			continue
		}
		rep, err := st.Scrub(quota)
		agg.Scanned += rep.Scanned
		agg.Relocated += rep.Relocated
		agg.Retired += rep.Retired
		agg.Lost += rep.Lost
		if err != nil {
			return agg, err
		}
	}
	return agg, nil
}

// NeedsRetrain reports whether any shard's pool is running low.
func (r *Router) NeedsRetrain() bool {
	for _, st := range r.stores {
		if st.NeedsRetrain() {
			return true
		}
	}
	return false
}

// Retrain retrains every shard's model concurrently (each shard trains on
// its own device zone only) and returns the joined errors, if any. Shards
// keep serving while their retrain is in flight — see
// kvstore.Store.Retrain for the per-shard contract.
func (r *Router) Retrain() error {
	if len(r.stores) == 1 {
		return r.stores[0].Retrain()
	}
	errs := make([]error, len(r.stores))
	var wg sync.WaitGroup
	for i, st := range r.stores {
		wg.Add(1)
		go func(i int, st *kvstore.Store) {
			defer wg.Done()
			errs[i] = st.Retrain()
		}(i, st)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Quiesce blocks until every shard's in-flight background retrain has
// completed; see kvstore.Store.Quiesce.
func (r *Router) Quiesce() {
	for _, st := range r.stores {
		st.Quiesce()
	}
}
