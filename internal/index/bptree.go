package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"e2nvm/internal/nvm"
)

// BPTree is a persistent B+-Tree in the style the paper cites (Chen & Jin,
// "Persistent B+-Trees in Non-Volatile Main Memory"): leaf pages live in
// NVM with their entries kept *sorted*, so every insert shifts the tail of
// the leaf and rewrites it — the movement that makes the unaugmented
// B+-Tree the worst performer in Figure 12. Inner nodes are volatile
// (rebuilt from leaves on recovery), as in FP-Tree-era designs.
//
// In inline mode values are embedded in leaves (the classic design). When
// constructed with a value Allocator, values are placed out-of-line through
// it — the "plugged into E2-NVM" configuration when the allocator is
// content-aware.
type BPTree struct {
	baseStats
	dev   *nvm.Device
	meta  *FreeList
	pages pageWriter
	vals  *valueZone // nil in inline mode

	leaves []*bpLeaf // sorted by minimum key; acts as the volatile inner level
}

type bpLeaf struct {
	addr    int
	keys    []uint64
	payload [][]byte // inline: value bytes; out-of-line: 8-byte address
}

// NewBPTree creates a B+-Tree storing pages through meta. values selects
// out-of-line value placement; pass nil for the classic inline design.
func NewBPTree(dev *nvm.Device, meta *FreeList, values Allocator) (*BPTree, error) {
	t := &BPTree{dev: dev, meta: meta, pages: pageWriter{dev}}
	if values != nil {
		t.vals = &valueZone{dev: dev, alloc: values}
	}
	addr, err := meta.Place(nil)
	if err != nil {
		return nil, fmt.Errorf("bptree: allocating first leaf: %w", err)
	}
	t.leaves = []*bpLeaf{{addr: addr}}
	return t, nil
}

// Name implements Store.
func (t *BPTree) Name() string { return "B+-Tree" }

// leafFor locates the leaf that should hold key.
func (t *BPTree) leafFor(key uint64) int {
	i := sort.Search(len(t.leaves), func(i int) bool {
		l := t.leaves[i]
		return len(l.keys) > 0 && l.keys[0] > key
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// entryBytes returns the serialized size of one entry.
func entryBytes(payload []byte) int { return 8 + 2 + len(payload) }

func (t *BPTree) leafSize(l *bpLeaf) int {
	n := 2 // count header
	for _, p := range l.payload {
		n += entryBytes(p)
	}
	return n
}

func (t *BPTree) serializeLeaf(l *bpLeaf) []byte {
	out := make([]byte, 2, t.leafSize(l))
	binary.LittleEndian.PutUint16(out, uint16(len(l.keys)))
	var tmp [10]byte
	for i, k := range l.keys {
		binary.LittleEndian.PutUint64(tmp[:8], k)
		binary.LittleEndian.PutUint16(tmp[8:], uint16(len(l.payload[i])))
		out = append(out, tmp[:]...)
		out = append(out, l.payload[i]...)
	}
	return out
}

// Put implements Store.
func (t *BPTree) Put(key uint64, value []byte) error {
	t.countValue(value)
	payload := value
	if t.vals != nil {
		addr, err := t.vals.writeValue(value)
		if err != nil {
			return err
		}
		payload = make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(addr))
	}
	li := t.leafFor(key)
	l := t.leaves[li]
	pos := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if pos < len(l.keys) && l.keys[pos] == key {
		// Update: out-of-line mode recycles the old value segment.
		if t.vals != nil {
			old := int(binary.LittleEndian.Uint64(l.payload[pos]))
			if err := t.vals.freeValue(old); err != nil {
				return err
			}
		}
		l.payload[pos] = payload
	} else {
		l.keys = append(l.keys, 0)
		copy(l.keys[pos+1:], l.keys[pos:])
		l.keys[pos] = key
		l.payload = append(l.payload, nil)
		copy(l.payload[pos+1:], l.payload[pos:])
		l.payload[pos] = payload
	}
	if t.leafSize(l) > t.dev.SegmentSize() {
		return t.split(li)
	}
	return t.pages.writePage(l.addr, t.serializeLeaf(l))
}

// split divides leaf li in half and persists both halves.
func (t *BPTree) split(li int) error {
	l := t.leaves[li]
	mid := len(l.keys) / 2
	if mid == 0 {
		return fmt.Errorf("bptree: entry larger than a page")
	}
	addr, err := t.meta.Place(nil)
	if err != nil {
		return fmt.Errorf("bptree: split allocation: %w", err)
	}
	right := &bpLeaf{
		addr:    addr,
		keys:    append([]uint64(nil), l.keys[mid:]...),
		payload: append([][]byte(nil), l.payload[mid:]...),
	}
	l.keys = l.keys[:mid]
	l.payload = l.payload[:mid]
	t.leaves = append(t.leaves, nil)
	copy(t.leaves[li+2:], t.leaves[li+1:])
	t.leaves[li+1] = right
	if err := t.pages.writePage(l.addr, t.serializeLeaf(l)); err != nil {
		return err
	}
	return t.pages.writePage(right.addr, t.serializeLeaf(right))
}

// Get implements Store.
func (t *BPTree) Get(key uint64) ([]byte, bool, error) {
	l := t.leaves[t.leafFor(key)]
	pos := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if pos >= len(l.keys) || l.keys[pos] != key {
		return nil, false, nil
	}
	if t.vals == nil {
		out := append([]byte(nil), l.payload[pos]...)
		return out, true, nil
	}
	v, err := t.vals.readValue(int(binary.LittleEndian.Uint64(l.payload[pos])))
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Delete implements Store.
func (t *BPTree) Delete(key uint64) (bool, error) {
	li := t.leafFor(key)
	l := t.leaves[li]
	pos := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if pos >= len(l.keys) || l.keys[pos] != key {
		return false, nil
	}
	if t.vals != nil {
		addr := int(binary.LittleEndian.Uint64(l.payload[pos]))
		if err := t.vals.freeValue(addr); err != nil {
			return false, err
		}
	}
	l.keys = append(l.keys[:pos], l.keys[pos+1:]...)
	l.payload = append(l.payload[:pos], l.payload[pos+1:]...)
	return true, t.pages.writePage(l.addr, t.serializeLeaf(l))
}

// Len returns the number of live keys (test helper).
func (t *BPTree) Len() int {
	n := 0
	for _, l := range t.leaves {
		n += len(l.keys)
	}
	return n
}
