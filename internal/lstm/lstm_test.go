package lstm

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 1, 0); err == nil {
		t.Fatal("expected error for inSize 0")
	}
	if _, err := New(4, 10, 0, 0); err == nil {
		t.Fatal("expected error for outSize 0")
	}
	n, err := New(4, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Hidden != 10 {
		t.Fatalf("default hidden = %d, want 10 (the paper's)", n.Hidden)
	}
}

func TestPredictShapes(t *testing.T) {
	n, err := New(3, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := n.Predict([][]float64{{1, 0, 1}, {0, 1, 0}})
	if len(out) != 2 {
		t.Fatalf("output len = %d, want 2", len(out))
	}
	step := n.PredictStep([]float64{1, 1, 0})
	if len(step) != 2 {
		t.Fatalf("PredictStep len = %d, want 2", len(step))
	}
}

func TestPredictWrongSizePanics(t *testing.T) {
	n, _ := New(3, 4, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Predict([][]float64{{1, 0}})
}

func TestParamCount(t *testing.T) {
	n, _ := New(3, 4, 2, 0)
	// 4 gates × (4×3 Wx + 4×4 Wh + 4 b) + head (4×2 + 2)
	want := 4*(12+16+4) + 10
	if got := n.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

// TestGradientCheck verifies BPTT against numerical gradients on a 3-step
// sequence.
func TestGradientCheck(t *testing.T) {
	n, err := New(2, 3, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	seq := [][]float64{{r.NormFloat64(), r.NormFloat64()}, {r.NormFloat64(), r.NormFloat64()}, {r.NormFloat64(), r.NormFloat64()}}
	target := []float64{0.7}

	loss := func() float64 {
		out := n.Predict(seq)
		d := out[0] - target[0]
		return d * d
	}

	n.zeroGrad()
	n.backprop(seq, target, 1)

	check := func(name string, w, g []float64) {
		t.Helper()
		const h = 1e-6
		for i := 0; i < len(w); i += 2 {
			orig := w[i]
			w[i] = orig + h
			lp := loss()
			w[i] = orig - h
			lm := loss()
			w[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, g[i], num)
			}
		}
	}
	for g := 0; g < ngates; g++ {
		check("wx", n.wx[g].Data, n.gwx[g].Data)
		check("wh", n.wh[g].Data, n.gwh[g].Data)
		check("b", n.b[g], n.gb[g])
	}
	check("headW", n.head.W.Data, n.head.GW.Data)
	check("headB", n.head.B, n.head.GB)
}

func TestTrainBatchMismatchPanics(t *testing.T) {
	n, _ := New(2, 3, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.TrainBatch([][][]float64{{{1, 0}}}, nil)
}

func TestFitValidation(t *testing.T) {
	n, _ := New(2, 3, 1, 0)
	if _, err := n.Fit(nil, nil, 5, 4); err == nil {
		t.Fatal("expected error for empty fit")
	}
	if _, err := n.Fit([][][]float64{{{1, 0}}}, nil, 5, 4); err == nil {
		t.Fatal("expected error for count mismatch")
	}
}

// TestLearnsNextBitRule reproduces the paper's §4.1.3 example: the LSTM
// sees a 7-bit window and must predict the 8th bit. The rule planted here:
// the next bit equals the first bit of the window.
func TestLearnsNextBitRule(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	var seqs [][][]float64
	var targets [][]float64
	for i := 0; i < 300; i++ {
		w := make([]float64, 7)
		for j := range w {
			w[j] = float64(r.Intn(2))
		}
		seqs = append(seqs, [][]float64{w})
		targets = append(targets, []float64{w[0]})
	}
	n, err := New(7, 10, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	losses, err := n.Fit(seqs, targets, 40, 32)
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] >= losses[0]*0.2 {
		t.Fatalf("loss did not drop enough: %v -> %v", losses[0], losses[len(losses)-1])
	}
	correct := 0
	for i := 0; i < 100; i++ {
		w := make([]float64, 7)
		for j := range w {
			w[j] = float64(r.Intn(2))
		}
		p := n.PredictStep(w)[0]
		if (p >= 0.5) == (w[0] >= 0.5) {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("rule accuracy %d/100, want ≥90", correct)
	}
}

// TestLearnsSequenceDependence checks the recurrent state matters: the
// target is the first step's bit, observable only through memory.
func TestLearnsSequenceDependence(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var seqs [][][]float64
	var targets [][]float64
	for i := 0; i < 400; i++ {
		b := float64(r.Intn(2))
		seq := [][]float64{{b}, {float64(r.Intn(2))}, {float64(r.Intn(2))}}
		seqs = append(seqs, seq)
		targets = append(targets, []float64{b})
	}
	n, err := New(1, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Fit(seqs, targets, 60, 32); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		b := float64(r.Intn(2))
		seq := [][]float64{{b}, {float64(r.Intn(2))}, {float64(r.Intn(2))}}
		if (n.Predict(seq)[0] >= 0.5) == (b >= 0.5) {
			correct++
		}
	}
	if correct < 85 {
		t.Fatalf("memory accuracy %d/100, want ≥85", correct)
	}
}

func TestSetLearningRate(t *testing.T) {
	n, _ := New(2, 3, 1, 0)
	n.SetLearningRate(0.5)
	if n.opt.LR != 0.5 {
		t.Fatal("SetLearningRate did not apply")
	}
}

func TestEmptyTrainBatch(t *testing.T) {
	n, _ := New(2, 3, 1, 0)
	if l := n.TrainBatch(nil, nil); l != 0 {
		t.Fatalf("empty batch loss = %v, want 0", l)
	}
}

func BenchmarkPredictWindow64(b *testing.B) {
	n, err := New(64, 10, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i % 2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.PredictStep(w)
	}
}
